# Tier-1 gate: build + tests (what CI and the roadmap require).
.PHONY: test
test:
	go build ./...
	go test ./...

# Full verification: vet and the race detector on top of tier-1. The
# race pass matters here — the fault simulator and the resilient runner
# are the concurrent parts of the codebase.
.PHONY: verify
verify: test
	go vet ./...
	go test -race ./...

# Benchmarks. The JSON stream (including the distributed-simulation
# benchmark and its coordinator stats metrics) lands in BENCH_dist.json
# for machine consumption; the human-readable output still prints.
.PHONY: bench
bench:
	go test -bench . -benchtime 1x -run '^$$' -json . | tee BENCH_dist.json
	go test -bench . -benchtime 1x -run '^$$' ./internal/...
