# Tier-1 gate: build + tests (what CI and the roadmap require).
.PHONY: test
test:
	go build ./...
	go test ./...

# Lint: formatting drift and vet findings fail the build. gofmt -l
# prints offending files; the grep inverts that into an exit code.
.PHONY: lint
lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi
	go vet ./...

# Full verification: lint, the race detector, the crash-recovery
# durability tests, and a short fuzz smoke of every hostile-input
# decoder. The race pass matters here — the fault simulator, the
# resilient runner and the metrics registry are the concurrent parts
# of the codebase (the obs registry gets an explicit high-contention
# race run); the fuzz smoke keeps the journal/STL/assembly parsers
# honest against corrupt bytes without the cost of a long fuzzing
# session. The explicit metrics-lint pass scrapes a live server's
# /metrics and fails on any Prometheus text-format hygiene problem.
.PHONY: verify
verify: test lint chaos-smoke chaos-overload chaos-server
	go test -race ./...
	go test -race -run 'TestRegistryConcurrent' -count=1 ./internal/obs
	go test -run 'TestMetricsLint' -count=1 .
	go test -run 'TestCrashRecovery|TestTornFinalRecord|TestFlippedCRCByte' -count=1 ./internal/run
	go test -fuzz '^FuzzAssemble$$' -fuzztime 10s -run '^$$' ./internal/asm
	go test -fuzz '^FuzzDecode$$' -fuzztime 10s -run '^$$' ./internal/isa
	go test -fuzz '^FuzzReadPTP$$' -fuzztime 10s -run '^$$' ./internal/stl
	go test -fuzz '^FuzzReadSTL$$' -fuzztime 10s -run '^$$' ./internal/stl
	go test -fuzz '^FuzzDecodeRecord$$' -fuzztime 10s -run '^$$' ./internal/journal
	go test -fuzz '^FuzzRead$$' -fuzztime 10s -run '^$$' ./internal/vcde
	go test -fuzz '^FuzzShardReply$$' -fuzztime 10s -run '^$$' ./internal/dist
	go test -fuzz '^FuzzWideBlockEquiv$$' -fuzztime 10s -run '^$$' ./internal/fault

# Chaos soak: every canonical fault schedule (torn journal writes,
# mid-commit crashes, stage panics, lossy wire, Byzantine worker,
# heartbeat flaps) runs concurrently against whole compaction
# campaigns, each asserted byte-identical to a fault-free reference
# and the Byzantine worker quarantined. chaos is the full 30s soak;
# chaos-smoke is the short CI version under the race detector.
.PHONY: chaos
chaos:
	go run ./cmd/chaossoak -duration 30s

# -iters bounds the smoke by work, not wall-clock: every schedule
# completes two campaigns (however slow the race-instrumented build
# is), with -duration only as a hard cap.
.PHONY: chaos-smoke
chaos-smoke:
	go run -race ./cmd/chaossoak -duration 120s -iters 2

# Overload smoke: just the overload schedule (3× load against an
# admission pool sized for one, brownout worker, injected admission
# faults), two rounds under the race detector. Each round admits and
# byte-verifies three campaigns and asserts at least one deterministic
# shed plus the retry-budget inequality.
.PHONY: chaos-overload
chaos-overload:
	go run -race ./cmd/chaossoak -schedule overload -duration 120s -iters 2

# Control-plane smoke: just the server schedule under the race
# detector. Each round submits campaigns across two tenants to an
# in-process stlserver, kills it at journaled cut points (injected
# append failures, lease loss, one deliberate kill) and restarts it
# until every campaign is done with artifacts byte-identical to the
# fault-free reference; resubmitted content must come from the
# verified result cache, and a corrupt-injected cache entry must be a
# detected miss that re-simulates — never served bytes.
.PHONY: chaos-server
chaos-server:
	go run -race ./cmd/chaossoak -schedule server -duration 180s -iters 4

# Benchmarks. The JSON streams land in BENCH_dist.json (distributed
# simulation + coordinator stats), BENCH_journal.json (per-record
# fsync append cost, journal replay), BENCH_obs.json (telemetry
# hot paths plus the fault-sim with/without-metrics pair proving <1%
# instrumentation overhead) and BENCH_fault.json (the optimized
# fault-simulation engine's guarded baselines — see bench-compare)
# for machine consumption; the human-readable output still prints.
.PHONY: bench
bench:
	go test -bench . -benchtime 1x -run '^$$' -json . | tee BENCH_dist.json
	go test -bench 'BenchmarkJournal' -benchtime 1x -run '^$$' -json ./internal/journal | tee BENCH_journal.json
	go test -bench 'BenchmarkObs' -benchtime 1000x -run '^$$' -json ./internal/obs | tee BENCH_obs.json
	go test -bench 'BenchmarkSimulateSP(Metrics)?$$' -benchtime 3x -run '^$$' -json ./internal/fault | tee -a BENCH_obs.json
	go test -bench $(FAULT_BENCHES) -benchtime 10x -count=3 -run '^$$' -json . | tee BENCH_fault.json
	go test -bench $(EVAL_BENCHES) -benchtime 100x -count=3 -run '^$$' -json ./internal/netlist | tee BENCH_eval.json
	go test -bench $(OVERLOAD_BENCHES) -benchtime 10x -run '^$$' -json . | tee BENCH_overload.json
	go test -bench 'BenchmarkAdmission|BenchmarkRetryBudget|BenchmarkBreaker' -benchtime 1000x -run '^$$' -json ./internal/overload | tee -a BENCH_overload.json
	go test -bench . -benchtime 1x -run '^$$' ./internal/...

# The engine benchmarks guarded against regression, and the committed
# baseline they are compared to.
FAULT_BENCHES = 'BenchmarkFaultSimulation$$|BenchmarkTableI$$'

# The levelized-plan evaluator sweeps, scalar and wide (BENCH_eval.json):
# the per-block cost of the SoA plan at W = 1/4/8/16.
EVAL_BENCHES = 'BenchmarkEvalRun$$|BenchmarkEvalRunWide/'

# The overload pair: the fault-sim benchmark with and without the
# unlimited admission/deadline plumbing. BENCH_overload.json also
# carries the shed-latency and admission micro-benchmarks from
# internal/overload; TestOverloadPlumbingOverhead asserts the <1%
# disarmed-overhead bound in plain `go test`.
OVERLOAD_BENCHES = 'BenchmarkFaultSimulation(Overload)?$$'

# bench-compare reruns the guarded engine benchmarks and fails if any
# is more than 15% slower (ns/op) than the committed BENCH_fault.json
# baseline. Run it on the baseline's hardware; for a portable sanity
# check use bench-smoke.
.PHONY: bench-compare
bench-compare:
	go test -bench $(FAULT_BENCHES) -benchtime 10x -count=3 -run '^$$' -json . > .bench_new.json
	go run ./cmd/benchdiff -old BENCH_fault.json -new .bench_new.json \
		-bench $(FAULT_BENCHES) -threshold 15
	rm -f .bench_new.json
	go test -bench $(EVAL_BENCHES) -benchtime 100x -count=3 -run '^$$' -json ./internal/netlist > .bench_new_eval.json
	go run ./cmd/benchdiff -old BENCH_eval.json -new .bench_new_eval.json \
		-bench $(EVAL_BENCHES) -threshold 15
	rm -f .bench_new_eval.json
	go test -bench $(OVERLOAD_BENCHES) -benchtime 10x -run '^$$' -json . > .bench_new_overload.json
	go run ./cmd/benchdiff -old BENCH_overload.json -new .bench_new_overload.json \
		-bench $(OVERLOAD_BENCHES) -threshold 15
	rm -f .bench_new_overload.json

# bench-smoke is the CI version of bench-compare: one short run of the
# fault-simulation benchmark through the same diff pipeline, with a
# threshold loose enough for unrelated CI hardware. It catches
# order-of-magnitude regressions and keeps the baseline file parseable,
# without making CI judge absolute wall-clock.
.PHONY: bench-smoke
bench-smoke:
	go test -bench 'BenchmarkFaultSimulation$$' -benchtime 2x -run '^$$' -json . > .bench_smoke.json
	go run ./cmd/benchdiff -old BENCH_fault.json -new .bench_smoke.json \
		-bench 'BenchmarkFaultSimulation$$' -threshold 400
	rm -f .bench_smoke.json
	# Width pinning: the same benchmark at W=1 and W=8 (GPUSTL_BLOCK_WORDS
	# overrides the auto width) — catches a regression that only one side
	# of the scalar/wide split would see.
	GPUSTL_BLOCK_WORDS=1 go test -bench 'BenchmarkFaultSimulation$$' -benchtime 2x -run '^$$' -json . > .bench_smoke_w1.json
	go run ./cmd/benchdiff -old BENCH_fault.json -new .bench_smoke_w1.json \
		-bench 'BenchmarkFaultSimulation$$' -threshold 900
	rm -f .bench_smoke_w1.json
	GPUSTL_BLOCK_WORDS=8 go test -bench 'BenchmarkFaultSimulation$$' -benchtime 2x -run '^$$' -json . > .bench_smoke_w8.json
	go run ./cmd/benchdiff -old BENCH_fault.json -new .bench_smoke_w8.json \
		-bench 'BenchmarkFaultSimulation$$' -threshold 400
	rm -f .bench_smoke_w8.json
