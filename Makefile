# Tier-1 gate: build + tests (what CI and the roadmap require).
.PHONY: test
test:
	go build ./...
	go test ./...

# Full verification: vet, the race detector, the crash-recovery
# durability tests, and a short fuzz smoke of every hostile-input
# decoder. The race pass matters here — the fault simulator and the
# resilient runner are the concurrent parts of the codebase; the fuzz
# smoke keeps the journal/STL/assembly parsers honest against corrupt
# bytes without the cost of a long fuzzing session.
.PHONY: verify
verify: test
	go vet ./...
	go test -race ./...
	go test -run 'TestCrashRecovery|TestTornFinalRecord|TestFlippedCRCByte' -count=1 ./internal/run
	go test -fuzz '^FuzzAssemble$$' -fuzztime 10s -run '^$$' ./internal/asm
	go test -fuzz '^FuzzDecode$$' -fuzztime 10s -run '^$$' ./internal/isa
	go test -fuzz '^FuzzReadPTP$$' -fuzztime 10s -run '^$$' ./internal/stl
	go test -fuzz '^FuzzReadSTL$$' -fuzztime 10s -run '^$$' ./internal/stl
	go test -fuzz '^FuzzDecodeRecord$$' -fuzztime 10s -run '^$$' ./internal/journal
	go test -fuzz '^FuzzRead$$' -fuzztime 10s -run '^$$' ./internal/vcde

# Benchmarks. The JSON streams land in BENCH_dist.json (distributed
# simulation + coordinator stats) and BENCH_journal.json (per-record
# fsync append cost, journal replay) for machine consumption; the
# human-readable output still prints.
.PHONY: bench
bench:
	go test -bench . -benchtime 1x -run '^$$' -json . | tee BENCH_dist.json
	go test -bench 'BenchmarkJournal' -benchtime 1x -run '^$$' -json ./internal/journal | tee BENCH_journal.json
	go test -bench . -benchtime 1x -run '^$$' ./internal/...
