// Benchmarks regenerating the paper's evaluation artifacts, one per table
// or in-text claim. Each benchmark runs a full experiment and reports the
// headline quantities as custom metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces Tables I-III, the STL summary, the ablations and the
// one-fault-sim cost claim in a single run. Set GPUSTL_BENCH_SCALE to
// small|medium|paper to change the experiment size (default: small).
package gpustl

import (
	"context"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"
)

var (
	benchEnvOnce sync.Once
	benchEnv     *Env
	benchEnvErr  error
)

// benchBlockWords reads the GPUSTL_BLOCK_WORDS override for the
// fault-simulation benchmarks: CI pins the same benchmark at W=1 and W=8
// to watch both sides of the scalar/wide split. Empty or invalid = 0
// (auto width).
func benchBlockWords() int {
	n, err := strconv.Atoi(os.Getenv("GPUSTL_BLOCK_WORDS"))
	if err != nil || n < 0 || n > 16 {
		return 0
	}
	return n
}

func env(b *testing.B) *Env {
	b.Helper()
	benchEnvOnce.Do(func() {
		scale := Small
		if s := os.Getenv("GPUSTL_BENCH_SCALE"); s != "" {
			scale, benchEnvErr = ScaleByName(s)
			if benchEnvErr != nil {
				return
			}
		}
		benchEnv, benchEnvErr = BuildEnv(ParamsFor(scale))
	})
	if benchEnvErr != nil {
		b.Fatal(benchEnvErr)
	}
	return benchEnv
}

// BenchmarkTableI regenerates Table I: size, ARC %, duration and FC of the
// six PTPs plus the combined rows.
func BenchmarkTableI(b *testing.B) {
	e := env(b)
	var last *TableIResult
	for i := 0; i < b.N; i++ {
		t1, err := TableI(e)
		if err != nil {
			b.Fatal(err)
		}
		last = t1
	}
	for _, r := range last.Rows {
		b.ReportMetric(r.FC, "FC%/"+r.Name)
	}
}

// BenchmarkTableII regenerates Table II: Decoder Unit compaction with
// cross-PTP fault dropping (IMM, MEM, CNTRL, combined).
func BenchmarkTableII(b *testing.B) {
	e := env(b)
	var last *CompactionTables
	for i := 0; i < b.N; i++ {
		t2, err := TableII(e)
		if err != nil {
			b.Fatal(err)
		}
		last = t2
	}
	for _, r := range last.Rows {
		b.ReportMetric(-r.SizePct, "size-red%/"+r.Name)
		b.ReportMetric(r.DiffFC, "diffFC/"+r.Name)
	}
}

// BenchmarkTableIII regenerates Table III: functional-unit compaction
// (TPGEN, RAND, combined, SFU_IMM with reverse-order patterns).
func BenchmarkTableIII(b *testing.B) {
	e := env(b)
	var last *CompactionTables
	for i := 0; i < b.N; i++ {
		t3, err := TableIII(e)
		if err != nil {
			b.Fatal(err)
		}
		last = t3
	}
	for _, r := range last.Rows {
		b.ReportMetric(-r.SizePct, "size-red%/"+r.Name)
		b.ReportMetric(r.DiffFC, "diffFC/"+r.Name)
	}
}

// BenchmarkSTLSummary regenerates the Section IV whole-STL claims: the
// candidate PTPs' share of the STL and the overall size/duration reduction.
func BenchmarkSTLSummary(b *testing.B) {
	e := env(b)
	var last *STLSummaryResult
	for i := 0; i < b.N; i++ {
		t2, err := TableII(e)
		if err != nil {
			b.Fatal(err)
		}
		t3, err := TableIII(e)
		if err != nil {
			b.Fatal(err)
		}
		sum, err := STLSummary(e, t2, t3)
		if err != nil {
			b.Fatal(err)
		}
		last = sum
	}
	b.ReportMetric(last.CandidateSizeShare, "cand-size-share%")
	b.ReportMetric(last.CandidateDurShare, "cand-dur-share%")
	b.ReportMetric(last.STLSizeReduction, "stl-size-red%")
	b.ReportMetric(last.STLDurReduction, "stl-dur-red%")
}

// BenchmarkBaselineCompare quantifies the one-fault-simulation claim
// against the iterative prior-work baseline.
func BenchmarkBaselineCompare(b *testing.B) {
	e := env(b)
	var last *BaselineCompareResult
	for i := 0; i < b.N; i++ {
		bc, err := BaselineCompare(e)
		if err != nil {
			b.Fatal(err)
		}
		last = bc
	}
	b.ReportMetric(float64(last.BaselineFaultSims), "baseline-fault-sims")
	b.ReportMetric(last.BaselineMillis/last.ProposedMillis, "speedup-x")
}

// BenchmarkAblations runs the design-choice studies: fault dropping,
// reverse-order patterns, SB vs instruction granularity.
func BenchmarkAblations(b *testing.B) {
	e := env(b)
	var last *AblationResult
	for i := 0; i < b.N; i++ {
		ab, err := Ablations(e)
		if err != nil {
			b.Fatal(err)
		}
		last = ab
	}
	b.ReportMetric(last.MEMWithDropPct, "MEM-drop%")
	b.ReportMetric(last.MEMWithoutDropPct, "MEM-alone%")
	b.ReportMetric(last.SFUReversePct, "SFU-reverse%")
	b.ReportMetric(last.SFUForwardPct, "SFU-forward%")
	b.ReportMetric(last.SBGranPct, "SB-gran%")
	b.ReportMetric(last.InsGranPct, "instr-gran%")
}

// BenchmarkCompactOnePTP measures the compactor's raw throughput on a
// single mid-size PTP (the unit of work behind every table row).
func BenchmarkCompactOnePTP(b *testing.B) {
	mod, err := BuildModule(ModuleDU)
	if err != nil {
		b.Fatal(err)
	}
	faults := SampleFaults(mod, 4000, 1)
	ptp := GenerateIMM(200, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := NewCompactor(DefaultGPUConfig(), mod, faults, CompactorOptions{})
		if _, err := c.CompactPTP(ptp); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompactToBudget measures the budget-constrained extension (one
// knapsack selection on top of the single logic + fault simulation).
func BenchmarkCompactToBudget(b *testing.B) {
	mod, err := BuildModule(ModuleDU)
	if err != nil {
		b.Fatal(err)
	}
	faults := SampleFaults(mod, 4000, 1)
	ptp := GenerateIMM(200, 1)
	ref, err := NewCompactor(DefaultGPUConfig(), mod, faults, CompactorOptions{}).CompactPTP(ptp)
	if err != nil {
		b.Fatal(err)
	}
	budget := ref.OrigDuration / 10
	b.ResetTimer()
	var fc float64
	for i := 0; i < b.N; i++ {
		c := NewCompactor(DefaultGPUConfig(), mod, faults, CompactorOptions{})
		res, err := c.CompactToBudget(ptp, budget)
		if err != nil {
			b.Fatal(err)
		}
		fc = res.CompFC
	}
	b.ReportMetric(fc, "FC%@10%budget")
	b.ReportMetric(ref.OrigFC, "FC%unconstrained")
}

// BenchmarkLogicSimulation measures the GPU simulator's throughput on the
// IMM PTP (instructions simulated per op).
func BenchmarkLogicSimulation(b *testing.B) {
	ptp := GenerateIMM(300, 1)
	g, err := NewGPU(DefaultGPUConfig(), nil)
	if err != nil {
		b.Fatal(err)
	}
	k := Kernel{
		Prog: ptp.Prog, Blocks: 1, ThreadsPerBlock: 32,
		GlobalBase: ptp.Data.Base, GlobalData: ptp.Data.Words,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.Run(k); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFaultSimulation measures the optimized module-level fault
// simulator on the DU with the IMM pattern stream.
func BenchmarkFaultSimulation(b *testing.B) {
	mod, err := BuildModule(ModuleDU)
	if err != nil {
		b.Fatal(err)
	}
	ptp := GenerateIMM(300, 1)
	col := NewTraceCollector(ModuleDU)
	col.LiteRows = true
	g, err := NewGPU(DefaultGPUConfig(), col)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := g.Run(Kernel{
		Prog: ptp.Prog, Blocks: 1, ThreadsPerBlock: 32,
		GlobalBase: ptp.Data.Base, GlobalData: ptp.Data.Words,
	}); err != nil {
		b.Fatal(err)
	}
	faults := AllFaults(mod)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		camp := NewFaultCampaign(mod, faults)
		camp.Simulate(col.Patterns, SimOptions{BlockWords: benchBlockWords()})
	}
}

// BenchmarkDistSimulation runs the same campaign as
// BenchmarkFaultSimulation, but sharded through the distributed
// coordinator over three in-process workers — measuring the overhead
// of partitioning, dispatch, reply validation and report merging on
// top of the raw simulation.
func BenchmarkDistSimulation(b *testing.B) {
	mod, err := BuildModule(ModuleDU)
	if err != nil {
		b.Fatal(err)
	}
	ptp := GenerateIMM(300, 1)
	col := NewTraceCollector(ModuleDU)
	col.LiteRows = true
	g, err := NewGPU(DefaultGPUConfig(), col)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := g.Run(Kernel{
		Prog: ptp.Prog, Blocks: 1, ThreadsPerBlock: 32,
		GlobalBase: ptp.Data.Base, GlobalData: ptp.Data.Words,
	}); err != nil {
		b.Fatal(err)
	}
	faults := AllFaults(mod)
	co, err := NewDistCoordinator(DistOptions{},
		NewLocalWorker("w1"), NewLocalWorker("w2"), NewLocalWorker("w3"))
	if err != nil {
		b.Fatal(err)
	}
	defer co.Close()
	ctx := context.Background()
	b.ResetTimer()
	var shards, dispatches int
	for i := 0; i < b.N; i++ {
		camp := NewFaultCampaign(mod, faults)
		res, err := co.Run(ctx, camp, col.Patterns, SimOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if res.Degraded() {
			b.Fatalf("degraded run: %d shards failed", res.FailedShards)
		}
		shards += res.Stats.Shards
		dispatches += res.Stats.Dispatches
	}
	b.ReportMetric(float64(shards)/float64(b.N), "shards/op")
	b.ReportMetric(float64(dispatches)/float64(b.N), "dispatches/op")
}

// overloadPlumbing is exactly the per-campaign work the resilient
// runner adds for overload protection when no limits are configured: a
// deadline check on the context, the campaign cost estimate, and an
// acquire/release round-trip on a nil admission pool. The benchmarks
// and the overhead test below share it so they measure the same code.
func overloadPlumbing(ctx context.Context, pool *AdmissionPool, progLen int) error {
	if dl, ok := ctx.Deadline(); ok && !time.Now().Before(dl) {
		return context.DeadlineExceeded
	}
	cost := int64(progLen)
	release, err := pool.Acquire(ctx, cost)
	if err != nil {
		return err
	}
	release()
	return nil
}

// BenchmarkFaultSimulationOverload is BenchmarkFaultSimulation with the
// unlimited overload plumbing wrapped around every campaign — the
// "no limits configured" configuration every run uses by default.
// Paired with BenchmarkFaultSimulation in BENCH_overload.json it keeps
// the admission + deadline cost visible to benchdiff;
// TestOverloadPlumbingOverhead asserts the pair differ by <1%.
func BenchmarkFaultSimulationOverload(b *testing.B) {
	mod, err := BuildModule(ModuleDU)
	if err != nil {
		b.Fatal(err)
	}
	ptp := GenerateIMM(300, 1)
	col := NewTraceCollector(ModuleDU)
	col.LiteRows = true
	g, err := NewGPU(DefaultGPUConfig(), col)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := g.Run(Kernel{
		Prog: ptp.Prog, Blocks: 1, ThreadsPerBlock: 32,
		GlobalBase: ptp.Data.Base, GlobalData: ptp.Data.Words,
	}); err != nil {
		b.Fatal(err)
	}
	faults := AllFaults(mod)
	var pool *AdmissionPool // nil: no limits configured
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := overloadPlumbing(ctx, pool, len(ptp.Prog)); err != nil {
			b.Fatal(err)
		}
		camp := NewFaultCampaign(mod, faults)
		camp.Simulate(col.Patterns, SimOptions{BlockWords: benchBlockWords()})
	}
}

// TestOverloadPlumbingOverhead asserts the acceptance bound directly:
// the admission checks and deadline plumbing cost <1% of one fault
// simulation when no limits are configured. The plumbing is measured
// in isolation (nanoseconds) against a timed simulation (milliseconds),
// so the bound holds by orders of magnitude and the test is immune to
// run-to-run variance of the heavy simulation itself.
func TestOverloadPlumbingOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	mod, err := BuildModule(ModuleDU)
	if err != nil {
		t.Fatal(err)
	}
	ptp := GenerateIMM(300, 1)
	col := NewTraceCollector(ModuleDU)
	col.LiteRows = true
	g, err := NewGPU(DefaultGPUConfig(), col)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Run(Kernel{
		Prog: ptp.Prog, Blocks: 1, ThreadsPerBlock: 32,
		GlobalBase: ptp.Data.Base, GlobalData: ptp.Data.Words,
	}); err != nil {
		t.Fatal(err)
	}
	faults := AllFaults(mod)

	// Fastest of three simulations: the denominator.
	simTime := time.Duration(1<<62 - 1)
	for i := 0; i < 3; i++ {
		camp := NewFaultCampaign(mod, faults)
		start := time.Now()
		camp.Simulate(col.Patterns, SimOptions{BlockWords: benchBlockWords()})
		if d := time.Since(start); d < simTime {
			simTime = d
		}
	}

	// Amortized plumbing cost: the numerator.
	var pool *AdmissionPool
	ctx := context.Background()
	const iters = 100_000
	start := time.Now()
	for i := 0; i < iters; i++ {
		if err := overloadPlumbing(ctx, pool, len(ptp.Prog)); err != nil {
			t.Fatal(err)
		}
	}
	perOp := time.Since(start) / iters

	if perOp*100 >= simTime {
		t.Fatalf("overload plumbing %v per campaign is not <1%% of a %v fault simulation", perOp, simTime)
	}
	t.Logf("plumbing %v/campaign vs simulation %v (%.4f%%)",
		perOp, simTime, 100*float64(perOp)/float64(simTime))
}
