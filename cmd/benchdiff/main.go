// Command benchdiff compares benchmark results against a committed
// baseline and fails on regressions.
//
// Usage:
//
//	benchdiff -old BENCH_fault.json -new run.json [-bench REGEX] [-threshold PCT]
//
// Both files may be `go test -json` streams (the BENCH_*.json artifacts
// `make bench` commits) or plain `go test -bench` text output. For every
// benchmark matching -bench that appears in the baseline, the best
// (minimum) ns/op of each file is compared; a new result more than
// -threshold percent slower fails the diff. A matching benchmark missing
// from the new run also fails: a deleted benchmark must be removed from
// the baseline deliberately, not silently stop being compared.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

func main() {
	var (
		oldPath   = flag.String("old", "", "baseline benchmark file (go test -json stream or plain text)")
		newPath   = flag.String("new", "", "new benchmark file to compare against the baseline")
		benchRe   = flag.String("bench", ".", "regexp selecting which benchmarks to compare")
		threshold = flag.Float64("threshold", 15, "max allowed ns/op regression in percent")
	)
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	re, err := regexp.Compile(*benchRe)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: bad -bench regexp: %v\n", err)
		os.Exit(2)
	}

	oldNs, err := readBench(*oldPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	newNs, err := readBench(*newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}

	names := make([]string, 0, len(oldNs))
	for name := range oldNs {
		if re.MatchString(name) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: no benchmark in %s matches %q\n", *oldPath, *benchRe)
		os.Exit(2)
	}

	failed := false
	for _, name := range names {
		old := oldNs[name]
		cur, ok := newNs[name]
		if !ok {
			fmt.Printf("FAIL  %-40s missing from %s\n", name, *newPath)
			failed = true
			continue
		}
		delta := 100 * (cur - old) / old
		status := "ok  "
		if delta > *threshold {
			status = "FAIL"
			failed = true
		}
		fmt.Printf("%s  %-40s %14.0f -> %14.0f ns/op  %+7.2f%%\n", status, name, old, cur, delta)
	}
	if failed {
		fmt.Printf("benchdiff: regression beyond %.0f%% (or missing benchmark)\n", *threshold)
		os.Exit(1)
	}
}

// readBench extracts the best (minimum) ns/op per benchmark from a file
// that is either a `go test -json` stream or plain benchmark text.
func readBench(path string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	var text strings.Builder
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "{") {
			// test2json event: benchmark result lines arrive as Output
			// chunks, possibly split mid-line, so re-assemble the raw text.
			var ev struct {
				Action string `json:"Action"`
				Output string `json:"Output"`
			}
			if err := json.Unmarshal([]byte(line), &ev); err == nil && ev.Action == "output" {
				text.WriteString(ev.Output)
			}
			continue
		}
		text.WriteString(line)
		text.WriteString("\n")
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("reading %s: %w", path, err)
	}
	ns, err := parseBench(text.String())
	if err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	return ns, nil
}

// benchLine matches one benchmark result line: name (with optional
// -GOMAXPROCS suffix), iteration count, ns/op.
var benchLine = regexp.MustCompile(`(?m)^(Benchmark[^\s-]+)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

// parseBench returns the minimum ns/op per benchmark name found in the
// assembled plain-text output. Minimum, not mean: repeated -count runs
// scatter upward under machine noise, and the fastest run is the best
// estimate of the code's actual cost.
func parseBench(text string) (map[string]float64, error) {
	out := map[string]float64{}
	for _, m := range benchLine.FindAllStringSubmatch(text, -1) {
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("bad ns/op in %q: %w", m[0], err)
		}
		if best, ok := out[m[1]]; !ok || ns < best {
			out[m[1]] = ns
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no benchmark result lines found")
	}
	return out, nil
}
