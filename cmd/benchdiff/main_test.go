package main

import "testing"

func TestParseBenchPlainText(t *testing.T) {
	text := `goos: linux
BenchmarkFaultSimulation 	      50	   4290765 ns/op
BenchmarkFaultSimulation 	      50	   4100000 ns/op
BenchmarkTableI-8 	       1	9328316481 ns/op	        64.07 FC%/CNTRL
PASS
`
	ns, err := parseBench(text)
	if err != nil {
		t.Fatal(err)
	}
	if got := ns["BenchmarkFaultSimulation"]; got != 4100000 {
		t.Errorf("FaultSimulation best ns/op = %v, want 4100000 (minimum of repeats)", got)
	}
	if got := ns["BenchmarkTableI"]; got != 9328316481 {
		t.Errorf("TableI ns/op = %v (GOMAXPROCS suffix must be stripped)", got)
	}
}

func TestParseBenchEmpty(t *testing.T) {
	if _, err := parseBench("PASS\nok gpustl 1.2s\n"); err == nil {
		t.Fatal("want error on output without benchmark lines")
	}
}
