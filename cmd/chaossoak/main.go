// Command chaossoak runs the chaos soak: every canonical fault schedule
// (torn journal writes, mid-commit crashes, stage panics, a lossy wire,
// a Byzantine worker, dying heartbeats, an overload storm, a control
// plane killed at journaled cut points) concurrently against whole
// compaction campaigns for -duration, asserting every campaign's
// compacted STL is byte-identical to a fault-free reference run and
// that the Byzantine worker is quarantined. Exits non-zero if
// ANY schedule diverged, however many others passed. A failing schedule
// logs a "repro" line carrying the seed, iteration and the exact
// -failpoints spec that reproduces it; replay it with
// `chaossoak -schedule NAME -seed S -iters 1` (or arm the printed spec
// on stlcompact/stlworker directly). This is `make chaos`;
// `make chaos-smoke` is the same binary, shorter and under the race
// detector; `make chaos-overload` soaks only the overload schedule.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"sort"
	"strings"
	"time"

	"gpustl/internal/chaos"
	"gpustl/internal/obs"
)

func main() {
	var (
		duration = flag.Duration("duration", 30*time.Second, "how long to soak")
		seed     = flag.Int64("seed", 1, "base seed for failpoint fates and coordinator jitter")
		iters    = flag.Int("iters", 0, "campaigns per schedule (0 = as many as fit in -duration)")
		only     = flag.String("schedule", "", "run only this named schedule (repro of a reported failure)")
		verbose  = flag.Bool("v", false, "log every crash, restart and campaign")
	)
	flag.Parse()
	logger := obs.NewLogger(os.Stderr, "chaossoak", slog.LevelInfo, false)

	h := chaos.NewHarness(*seed)
	h.Metrics = obs.NewRegistry()
	if *verbose {
		h.Logf = func(format string, args ...any) {
			logger.Info(fmt.Sprintf(format, args...))
		}
	}

	schedules := chaos.Schedules()
	if *only != "" {
		kept := schedules[:0]
		for _, s := range schedules {
			if s.Name == *only {
				kept = append(kept, s)
			}
		}
		if len(kept) == 0 {
			logger.Error("unknown schedule", "schedule", *only)
			os.Exit(2)
		}
		schedules = kept
	}
	logger.Info("soak starting", "schedules", len(schedules), "duration", *duration, "seed", *seed)
	ctx, cancel := context.WithTimeout(context.Background(), *duration)
	defer cancel()
	start := time.Now()
	results, err := h.Soak(ctx, schedules, *iters)
	elapsed := time.Since(start)

	byName := make(map[string]chaos.Schedule, len(schedules))
	for _, s := range schedules {
		byName[s.Name] = s
	}
	// failed latches: a schedule that broke early keeps the exit code
	// non-zero no matter how many later (or concurrent) schedules pass.
	failed := false
	total := 0
	quarantineRan := false // a quarantine-expecting schedule completed campaigns
	for _, r := range results {
		total += r.Campaigns
		if s, ok := byName[r.Schedule]; ok && s.ExpectQuarantine && r.Campaigns > 0 {
			quarantineRan = true
		}
		if r.Err != nil {
			failed = true
			logger.Error("schedule failed", "schedule", r.Schedule,
				"campaigns_before_failure", r.Campaigns, "err", r.Err)
			// Everything needed to reproduce the failing campaign
			// standalone: the harness seed plus the exact -failpoints
			// arming (including the failing iteration's seed offset).
			if s, ok := byName[r.Schedule]; ok {
				logger.Error("repro",
					"schedule", r.Schedule,
					"seed", *seed,
					"iteration", r.Iter,
					"failpoints", s.Spec(r.Iter))
			}
			continue
		}
		if r.Campaigns == 0 {
			failed = true
			logger.Error("schedule completed no campaign", "schedule", r.Schedule)
			continue
		}
		logger.Info("schedule ok",
			"schedule", r.Schedule, "campaigns", r.Campaigns,
			"crashes", r.Crashes, "restarts", r.Restarts, "banned", r.Banned,
			"admitted", r.Admitted, "shed", r.Shed)
	}
	if err != nil {
		failed = true
	}

	// The Byzantine evidence trail: quarantine must be visible in the
	// gpustl_* metrics, not just in the harness's own accounting. Only
	// meaningful when a quarantine-expecting schedule actually completed
	// a campaign — a short -duration that starved it is not a soak bug
	// (zero campaigns is already flagged above).
	snap := h.Metrics.Snapshot()
	var names []string
	for name := range snap.Counters {
		if strings.Contains(name, "byzantine") || strings.Contains(name, "quarantin") ||
			strings.Contains(name, "verif") || strings.Contains(name, "requeued") ||
			strings.Contains(name, "overload") || strings.Contains(name, "server_cache") ||
			strings.Contains(name, "adopted") || strings.Contains(name, "lease") {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		logger.Info("metric", "name", name, "value", snap.Counters[name])
	}
	if quarantineRan && snap.Counters["gpustl_dist_quarantined_workers_total"] == 0 {
		failed = true
		logger.Error("no quarantine recorded in gpustl_* metrics")
	}

	logger.Info("soak finished", "campaigns", total, "elapsed", elapsed.Round(time.Millisecond))
	if failed {
		os.Exit(1)
	}
}
