// Command chaossoak runs the chaos soak: every canonical fault schedule
// (torn journal writes, mid-commit crashes, stage panics, a lossy wire,
// a Byzantine worker, dying heartbeats) concurrently against whole
// compaction campaigns for -duration, asserting every campaign's
// compacted STL is byte-identical to a fault-free reference run and
// that the Byzantine worker is quarantined. Exits non-zero on the
// first divergence. This is `make chaos`; `make chaos-smoke` is the
// same binary, shorter and under the race detector.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"sort"
	"strings"
	"time"

	"gpustl/internal/chaos"
	"gpustl/internal/obs"
)

func main() {
	var (
		duration = flag.Duration("duration", 30*time.Second, "how long to soak")
		seed     = flag.Int64("seed", 1, "base seed for failpoint fates and coordinator jitter")
		iters    = flag.Int("iters", 0, "campaigns per schedule (0 = as many as fit in -duration)")
		verbose  = flag.Bool("v", false, "log every crash, restart and campaign")
	)
	flag.Parse()
	logger := obs.NewLogger(os.Stderr, "chaossoak", slog.LevelInfo, false)

	h := chaos.NewHarness(*seed)
	h.Metrics = obs.NewRegistry()
	if *verbose {
		h.Logf = func(format string, args ...any) {
			logger.Info(fmt.Sprintf(format, args...))
		}
	}

	schedules := chaos.Schedules()
	logger.Info("soak starting", "schedules", len(schedules), "duration", *duration, "seed", *seed)
	ctx, cancel := context.WithTimeout(context.Background(), *duration)
	defer cancel()
	start := time.Now()
	results, err := h.Soak(ctx, schedules, *iters)
	elapsed := time.Since(start)

	failed := false
	total := 0
	for _, r := range results {
		total += r.Campaigns
		if r.Err != nil {
			failed = true
			logger.Error("schedule failed", "schedule", r.Schedule, "err", r.Err)
			continue
		}
		if r.Campaigns == 0 {
			failed = true
			logger.Error("schedule completed no campaign", "schedule", r.Schedule)
			continue
		}
		logger.Info("schedule ok",
			"schedule", r.Schedule, "campaigns", r.Campaigns,
			"crashes", r.Crashes, "restarts", r.Restarts, "banned", r.Banned)
	}
	if err != nil {
		failed = true
	}

	// The Byzantine evidence trail: quarantine must be visible in the
	// gpustl_* metrics, not just in the harness's own accounting.
	snap := h.Metrics.Snapshot()
	var names []string
	for name := range snap.Counters {
		if strings.Contains(name, "byzantine") || strings.Contains(name, "quarantin") ||
			strings.Contains(name, "verif") || strings.Contains(name, "requeued") {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		logger.Info("metric", "name", name, "value", snap.Counters[name])
	}
	if snap.Counters["gpustl_dist_quarantined_workers_total"] == 0 {
		failed = true
		logger.Error("no quarantine recorded in gpustl_* metrics")
	}

	logger.Info("soak finished", "campaigns", total, "elapsed", elapsed.Round(time.Millisecond))
	if failed {
		os.Exit(1)
	}
}
