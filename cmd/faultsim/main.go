// Command faultsim runs the optimized module-level stuck-at fault
// simulation on a test-pattern file, printing the Fault Sim Report
// summary: coverage, detections per pattern-block, and the first
// detections.
//
// Usage:
//
//	faultsim -patterns FILE.vcde [-sample N] [-seed S] [-reverse] [-top K]
//	         [-workers W] [-cpuprofile FILE] [-memprofile FILE]
//
// -workers parallelizes the simulation across W goroutines (0 selects
// GOMAXPROCS); results are bit-identical at any setting. -cpuprofile and
// -memprofile write pprof profiles of the run. Ctrl-C or SIGTERM cancels
// a long campaign cleanly.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"syscall"

	"gpustl"
	"gpustl/internal/obs"
	"gpustl/internal/prof"
)

func main() {
	var (
		patFile = flag.String("patterns", "", "VCDE pattern file (from ptpgen -vcde)")
		sample  = flag.Int("sample", 0, "sample the fault list to N faults (0 = full)")
		seed    = flag.Int64("seed", 1, "sampling seed")
		reverse = flag.Bool("reverse", false, "apply patterns in reverse order")
		top     = flag.Int("top", 10, "print the K most effective patterns")
		workers = flag.Int("workers", 0, "parallel simulation workers (0 = GOMAXPROCS, 1 = serial)")
		blockW  = flag.Int("block-words", 0, "block width in 64-pattern words (0 = auto, max 16)")
		logJSON = flag.Bool("log-json", false, "emit logs as JSON instead of text")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf = flag.String("memprofile", "", "write an allocation profile to this file on exit")
	)
	flag.Parse()
	logger := obs.NewLogger(os.Stderr, "faultsim", slog.LevelInfo, *logJSON)
	fatal := func(err error) {
		logger.Error(err.Error())
		os.Exit(1)
	}
	if *patFile == "" {
		flag.Usage()
		os.Exit(2)
	}
	stopCPU, err := prof.Start(*cpuProf)
	if err != nil {
		fatal(err)
	}
	defer stopCPU()
	defer func() {
		if err := prof.WriteHeap(*memProf); err != nil {
			logger.Error(err.Error())
		}
	}()

	// Ctrl-C / SIGTERM abort the simulation mid-campaign, matching
	// stlcompact's signal handling.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	f, err := os.Open(*patFile)
	if err != nil {
		fatal(err)
	}
	h, patterns, err := gpustl.ReadVCDE(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("patterns: %d for module %v (%d lanes)\n", len(patterns), h.Module, h.Lanes)

	mod, err := gpustl.BuildModule(h.Module)
	if err != nil {
		fatal(err)
	}
	var faults []gpustl.Fault
	if *sample > 0 {
		faults = gpustl.SampleFaults(mod, *sample, *seed)
	} else {
		faults = gpustl.AllFaults(mod)
	}
	fmt.Printf("fault list: %d stuck-at faults (%d gates x %d lanes)\n",
		len(faults), mod.NL.NumGates(), mod.Lanes)

	camp := gpustl.NewFaultCampaign(mod, faults)
	rep, err := camp.SimulateCtx(ctx, patterns, gpustl.SimOptions{
		Reverse:    *reverse,
		Workers:    *workers,
		BlockWords: *blockW,
	})
	if err != nil {
		fatal(err)
	}

	fmt.Printf("detected: %d / %d faults (FC %.2f%%)\n",
		camp.Detected(), camp.Total(), camp.Coverage())

	fmt.Println("coverage by functional group:")
	for _, g := range camp.CoverageByGroup() {
		name := g.Group
		if name == "" {
			name = "(ungrouped)"
		}
		fmt.Printf("  %-18s %6d / %6d  (%.2f%%)\n", name, g.Detected, g.Total, g.Pct())
	}

	// Most effective patterns.
	type eff struct {
		idx int
		n   int32
	}
	var best []eff
	for i, n := range rep.DetectedPerPattern {
		if n > 0 {
			best = append(best, eff{i, n})
		}
	}
	fmt.Printf("effective patterns: %d of %d\n", len(best), rep.NumPatterns)
	for i := 0; i < len(best)-1; i++ {
		for j := i + 1; j < len(best); j++ {
			if best[j].n > best[i].n {
				best[i], best[j] = best[j], best[i]
			}
		}
	}
	if len(best) > *top {
		best = best[:*top]
	}
	for _, b := range best {
		fmt.Printf("  pattern %6d  cc %10d  lane %d  pc %6d: %5d faults\n",
			b.idx, rep.CCs[b.idx], rep.Lanes[b.idx], rep.PCs[b.idx], b.n)
	}
}
