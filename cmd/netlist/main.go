// Command netlist inspects the generated gate-level modules: size, depth,
// functional-group inventory, fault universe, and optional structural
// Verilog export for external EDA tools.
//
// Usage:
//
//	netlist -module DU|SP|SFU|FP32 [-verilog out.v]
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"

	"gpustl"
	"gpustl/internal/obs"
)

func main() {
	var (
		module  = flag.String("module", "SP", "module: DU|SP|SFU|FP32")
		verilog = flag.String("verilog", "", "write structural Verilog to this file")
		logJSON = flag.Bool("log-json", false, "emit logs as JSON instead of text")
	)
	flag.Parse()
	logger := obs.NewLogger(os.Stderr, "netlist", slog.LevelInfo, *logJSON)
	fatal := func(err error) {
		logger.Error(err.Error())
		os.Exit(1)
	}

	var kind gpustl.ModuleKind
	switch *module {
	case "DU":
		kind = gpustl.ModuleDU
	case "SP":
		kind = gpustl.ModuleSP
	case "SFU":
		kind = gpustl.ModuleSFU
	case "FP32":
		kind = gpustl.ModuleFP32
	default:
		fatal(fmt.Errorf("unknown module %q", *module))
	}
	m, err := gpustl.BuildModule(kind)
	if err != nil {
		fatal(err)
	}
	nl := m.NL
	faults := gpustl.AllFaults(m)
	fmt.Printf("module %s: %d gates, %d nets, depth %d, %d inputs, %d outputs, %d lanes\n",
		nl.Name, nl.NumGates(), nl.NumNets(), nl.Levels(),
		len(nl.Inputs), len(nl.Outputs), m.Lanes)
	fmt.Printf("stuck-at fault universe: %d per lane, %d total\n",
		len(faults)/m.Lanes, len(faults))

	// Group inventory.
	counts := map[string]int{}
	for id := int32(0); id < int32(len(nl.Gates)); id++ {
		g := nl.Gates[id]
		if g.NumIn() == 0 {
			continue
		}
		counts[nl.GroupOf(id)]++
	}
	fmt.Println("functional groups:")
	for _, name := range nl.Groups() {
		if counts[name] == 0 {
			continue
		}
		label := name
		if label == "" {
			label = "(ungrouped)"
		}
		fmt.Printf("  %-18s %6d gates\n", label, counts[name])
	}

	if *verilog != "" {
		f, err := os.Create(*verilog)
		if err != nil {
			fatal(err)
		}
		if err := gpustl.WriteVerilog(f, nl); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *verilog)
	}
}
