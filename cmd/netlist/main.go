// Command netlist inspects the generated gate-level modules: size, depth,
// functional-group inventory, fault universe, and optional structural
// Verilog export for external EDA tools.
//
// Usage:
//
//	netlist -module DU|SP|SFU|FP32 [-verilog out.v]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"gpustl"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("netlist: ")
	var (
		module  = flag.String("module", "SP", "module: DU|SP|SFU|FP32")
		verilog = flag.String("verilog", "", "write structural Verilog to this file")
	)
	flag.Parse()

	var kind gpustl.ModuleKind
	switch *module {
	case "DU":
		kind = gpustl.ModuleDU
	case "SP":
		kind = gpustl.ModuleSP
	case "SFU":
		kind = gpustl.ModuleSFU
	case "FP32":
		kind = gpustl.ModuleFP32
	default:
		log.Fatalf("unknown module %q", *module)
	}
	m, err := gpustl.BuildModule(kind)
	if err != nil {
		log.Fatal(err)
	}
	nl := m.NL
	faults := gpustl.AllFaults(m)
	fmt.Printf("module %s: %d gates, %d nets, depth %d, %d inputs, %d outputs, %d lanes\n",
		nl.Name, nl.NumGates(), nl.NumNets(), nl.Levels(),
		len(nl.Inputs), len(nl.Outputs), m.Lanes)
	fmt.Printf("stuck-at fault universe: %d per lane, %d total\n",
		len(faults)/m.Lanes, len(faults))

	// Group inventory.
	counts := map[string]int{}
	for id := int32(0); id < int32(len(nl.Gates)); id++ {
		g := nl.Gates[id]
		if g.NumIn() == 0 {
			continue
		}
		counts[nl.GroupOf(id)]++
	}
	fmt.Println("functional groups:")
	for _, name := range nl.Groups() {
		if counts[name] == 0 {
			continue
		}
		label := name
		if label == "" {
			label = "(ungrouped)"
		}
		fmt.Printf("  %-18s %6d gates\n", label, counts[name])
	}

	if *verilog != "" {
		f, err := os.Create(*verilog)
		if err != nil {
			log.Fatal(err)
		}
		if err := gpustl.WriteVerilog(f, nl); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *verilog)
	}
}
