// Command ptpgen generates the Parallel Test Programs of the STL and
// writes them as assembly text, optionally with their extracted
// test-pattern streams in the VCDE-like format.
//
// Usage:
//
//	ptpgen -ptp IMM|MEM|CNTRL|RAND|TPGEN|SFU_IMM|all [-n N] [-seed S]
//	       [-out DIR] [-vcde]
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"

	"gpustl"
	"gpustl/internal/obs"
)

func main() {
	var (
		which   = flag.String("ptp", "all", "PTP to generate: IMM|MEM|CNTRL|RAND|TPGEN|SFU_IMM|FP_RAND|all")
		n       = flag.Int("n", 100, "scale: SB count (IMM/MEM/RAND), sections (CNTRL), ATPG fault sample (TPGEN/SFU_IMM)")
		seed    = flag.Int64("seed", 1, "generator seed")
		out     = flag.String("out", ".", "output directory")
		emitV   = flag.Bool("vcde", false, "also extract and write the test-pattern stream (.vcde)")
		logJSON = flag.Bool("log-json", false, "emit logs as JSON instead of text")
	)
	flag.Parse()
	logger := obs.NewLogger(os.Stderr, "ptpgen", slog.LevelInfo, *logJSON)
	fatal := func(err error) {
		logger.Error(err.Error())
		os.Exit(1)
	}

	gen := func(name string) *gpustl.PTP {
		switch name {
		case "IMM":
			return gpustl.GenerateIMM(*n, *seed)
		case "MEM":
			return gpustl.GenerateMEM(*n, *seed)
		case "CNTRL":
			return gpustl.GenerateCNTRL(max(2, *n/10), *seed)
		case "RAND":
			return gpustl.GenerateRAND(*n, *seed)
		case "FP_RAND":
			return gpustl.GenerateFPRAND(*n, *seed)
		case "TPGEN":
			mod, err := gpustl.BuildModule(gpustl.ModuleSP)
			if err != nil {
				fatal(err)
			}
			opt := gpustl.DefaultATPGOptions(*seed)
			opt.SampleFaults = *n * 10
			res := gpustl.GenerateATPG(mod, opt)
			p, dropped := gpustl.ConvertTPGEN(res, *seed)
			logger.Info("TPGEN generated", "atpg_coverage_pct", res.Coverage(),
				"patterns", len(res.Patterns), "unconvertible", dropped)
			return p
		case "SFU_IMM":
			mod, err := gpustl.BuildModule(gpustl.ModuleSFU)
			if err != nil {
				fatal(err)
			}
			opt := gpustl.DefaultATPGOptions(*seed)
			opt.SampleFaults = *n * 10
			res := gpustl.GenerateATPG(mod, opt)
			p, dropped := gpustl.ConvertSFUIMM(res, *seed)
			logger.Info("SFU_IMM generated", "atpg_coverage_pct", res.Coverage(),
				"patterns", len(res.Patterns), "unconvertible", dropped)
			return p
		}
		logger.Error(fmt.Sprintf("unknown PTP %q", name))
		os.Exit(1)
		return nil
	}

	names := []string{*which}
	if *which == "all" {
		names = []string{"IMM", "MEM", "CNTRL", "RAND", "TPGEN", "SFU_IMM"}
	}
	for _, name := range names {
		p := gen(name)
		path := filepath.Join(*out, p.Name+".sass")
		if err := os.WriteFile(path, []byte(gpustl.Disassemble(p.Prog)), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("%-8s %6d instructions, %3d SBs, ARC %6.2f%%, kernel %dx%d -> %s\n",
			p.Name, len(p.Prog), len(p.SBs), 100*p.ARCFraction(),
			p.Kernel.Blocks, p.Kernel.ThreadsPerBlock, path)

		if *emitV {
			col := gpustl.NewTraceCollector(p.Target)
			col.LiteRows = true
			g, err := gpustl.NewGPU(gpustl.DefaultGPUConfig(), col)
			if err != nil {
				fatal(err)
			}
			if _, err := g.Run(gpustl.Kernel{
				Prog: p.Prog, Blocks: p.Kernel.Blocks,
				ThreadsPerBlock: p.Kernel.ThreadsPerBlock,
				GlobalBase:      p.Data.Base, GlobalData: p.Data.Words,
			}); err != nil {
				fatal(err)
			}
			mod, err := gpustl.BuildModule(p.Target)
			if err != nil {
				fatal(err)
			}
			vpath := filepath.Join(*out, p.Name+".vcde")
			f, err := os.Create(vpath)
			if err != nil {
				fatal(err)
			}
			h := gpustl.VCDEHeader{Module: p.Target, Lanes: mod.Lanes, Inputs: len(mod.NL.Inputs)}
			if err := gpustl.WriteVCDE(f, h, col.Patterns); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("         %d %v patterns -> %s\n", len(col.Patterns), p.Target, vpath)
		}
	}
}
