// Command stlcompact runs the five-stage compaction method over the STL's
// PTPs for one target module, with cross-PTP fault dropping, and prints a
// Table II/III-style report.
//
// Usage:
//
//	stlcompact -target DU|SP|SFU [-n N] [-seed S] [-faults K] [-reverse]
//	           [-instr] [-baseline] [-load FILE.json] [-save DIR]
//
// With -load, the PTPs are read from a saved STL file (see -save and the
// gpustl.WriteSTL format) instead of being generated.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"gpustl"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("stlcompact: ")
	var (
		target   = flag.String("target", "DU", "target module: DU|SP|SFU")
		n        = flag.Int("n", 120, "PTP scale (SB count / ATPG sample base)")
		seed     = flag.Int64("seed", 1, "seed")
		nFaults  = flag.Int("faults", 4000, "fault-list sample (0 = full list)")
		reverse  = flag.Bool("reverse", false, "apply patterns in reverse order (paper: SFU_IMM)")
		instrG   = flag.Bool("instr", false, "instruction-granularity removal (ablation)")
		baseline = flag.Bool("baseline", false, "also run the iterative prior-work baseline")
		loadPath = flag.String("load", "", "load PTPs from a saved STL JSON file instead of generating")
		saveDir  = flag.String("save", "", "write original and compacted PTPs to this directory")
	)
	flag.Parse()

	var kind gpustl.ModuleKind
	switch *target {
	case "DU":
		kind = gpustl.ModuleDU
	case "SP":
		kind = gpustl.ModuleSP
	case "SFU":
		kind = gpustl.ModuleSFU
	default:
		log.Fatalf("unknown target %q", *target)
	}

	mod, err := gpustl.BuildModule(kind)
	if err != nil {
		log.Fatal(err)
	}
	var faults []gpustl.Fault
	if *nFaults > 0 {
		faults = gpustl.SampleFaults(mod, *nFaults, *seed)
	} else {
		faults = gpustl.AllFaults(mod)
	}

	var ptps []*gpustl.PTP
	if *loadPath != "" {
		f, err := os.Open(*loadPath)
		if err != nil {
			log.Fatal(err)
		}
		lib, err := gpustl.ReadSTL(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		for _, p := range lib.PTPs {
			if p.Target == kind {
				ptps = append(ptps, p)
			}
		}
		if len(ptps) == 0 {
			log.Fatalf("no PTPs targeting %v in %s", kind, *loadPath)
		}
		runCompaction(kind, mod, faults, ptps, *reverse, *instrG, *baseline, *saveDir)
		return
	}
	switch kind {
	case gpustl.ModuleDU:
		ptps = []*gpustl.PTP{
			gpustl.GenerateIMM(*n, *seed+1),
			gpustl.GenerateMEM(*n, *seed+2),
			gpustl.GenerateCNTRL(max(2, *n/10), *seed+3),
		}
	case gpustl.ModuleSP:
		opt := gpustl.DefaultATPGOptions(*seed + 4)
		opt.SampleFaults = *n * 10
		res := gpustl.GenerateATPG(mod, opt)
		tpgen, dropped := gpustl.ConvertTPGEN(res, *seed+4)
		log.Printf("TPGEN: %d ATPG patterns, %d unconvertible", len(res.Patterns), dropped)
		ptps = []*gpustl.PTP{tpgen, gpustl.GenerateRAND(*n, *seed+5)}
	case gpustl.ModuleSFU:
		opt := gpustl.DefaultATPGOptions(*seed + 6)
		opt.SampleFaults = *n * 10
		res := gpustl.GenerateATPG(mod, opt)
		sfu, dropped := gpustl.ConvertSFUIMM(res, *seed+6)
		log.Printf("SFU_IMM: %d ATPG patterns, %d unconvertible", len(res.Patterns), dropped)
		ptps = []*gpustl.PTP{sfu}
	}

	runCompaction(kind, mod, faults, ptps, *reverse, *instrG, *baseline, *saveDir)
}

func runCompaction(kind gpustl.ModuleKind, mod *gpustl.Module, faults []gpustl.Fault,
	ptps []*gpustl.PTP, reverse, instrG, baseline bool, saveDir string) {

	comp := gpustl.NewCompactor(gpustl.DefaultGPUConfig(), mod, faults, gpustl.CompactorOptions{
		ReversePatterns:        reverse,
		InstructionGranularity: instrG,
	})
	fmt.Printf("compacting %d PTP(s) for %v (%d faults, %d gates x %d lanes)\n\n",
		len(ptps), kind, len(faults), mod.NL.NumGates(), mod.Lanes)
	fmt.Printf("%-8s  %10s  %8s  %12s  %8s  %8s  %10s\n",
		"PTP", "size", "(%)", "duration", "(%)", "DiffFC", "time")
	compacted := gpustl.STL{}
	original := gpustl.STL{}
	for _, p := range ptps {
		res, err := comp.CompactPTP(p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s  %4d->%-4d  %+8.2f  %6d->%-6d  %+8.2f  %+8.2f  %10v\n",
			p.Name, res.OrigSize, res.CompSize, -res.SizeReduction(),
			res.OrigDuration, res.CompDuration, -res.DurationReduction(),
			res.FCDiff(), res.CompactionTime)
		original.PTPs = append(original.PTPs, p)
		compacted.PTPs = append(compacted.PTPs, res.Compacted)
	}

	if saveDir != "" {
		save := func(name string, lib *gpustl.STL) {
			path := filepath.Join(saveDir, name)
			f, err := os.Create(path)
			if err != nil {
				log.Fatal(err)
			}
			if err := gpustl.WriteSTL(f, lib); err != nil {
				log.Fatal(err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("wrote %s\n", path)
		}
		save("stl_original.json", &original)
		save("stl_compacted.json", &compacted)
	}

	if baseline {
		fmt.Println("\niterative baseline (one fault sim per candidate Small Block):")
		b := gpustl.NewBaseline(gpustl.DefaultGPUConfig(), mod, faults)
		for _, p := range ptps {
			res, err := b.CompactPTP(p)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-8s  %4d->%-4d  %+8.2f  FC %.2f->%.2f  %4d fault sims  %10v\n",
				p.Name, res.OrigSize, res.CompSize, -res.SizeReduction(),
				res.OrigFC, res.CompFC, res.FaultSims, res.Time)
		}
	}
}
