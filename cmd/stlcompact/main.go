// Command stlcompact runs the five-stage compaction method over the STL's
// PTPs for one target module, with cross-PTP fault dropping, and prints a
// Table II/III-style report.
//
// Usage:
//
//	stlcompact -target DU|SP|SFU [-n N] [-seed S] [-faults K] [-reverse]
//	           [-instr] [-baseline] [-load FILE.json] [-save DIR]
//	           [-checkpoint DIR] [-stage-timeout D] [-fctol PTS]
//	           [-max-ptp-retries N] [-fsck] [-deadline D]
//	           [-workers-addr HOST:PORT,HOST:PORT,...] [-verify-frac F]
//	           [-retry-budget F] [-retry-burst N]
//	           [-breaker-threshold N] [-breaker-open D]
//	           [-trace-out FILE.jsonl] [-metrics-out FILE.json] [-log-json]
//	           [-cpuprofile FILE] [-memprofile FILE] [-failpoints SPEC]
//
// With -load, the PTPs are read from a saved STL file (see -save and the
// gpustl.WriteSTL format) instead of being generated.
//
// With -workers-addr, every fault simulation is sharded across the given
// stlworker daemons instead of running in-process. Results are identical
// by contract; a worker that crashes, straggles or corrupts replies is
// retried, hedged or declared dead, and a PTP whose campaign still
// cannot complete reverts to its original form while the run continues.
// With -verify-frac F, that fraction of shards is re-executed on a
// second worker and settled by checksum vote: a worker returning
// plausible-but-wrong results (Byzantine) is outvoted, quarantined and
// blacklisted for the rest of the run (see docs/ROBUSTNESS.md).
//
// With -failpoints, named fault-injection sites are armed for chaos
// drills (same spec syntax as stlworker; see internal/failpoint).
//
// With -deadline, the whole campaign is bounded: the deadline
// propagates through every tier down to the workers (X-Gpustl-Deadline
// header), so nothing burns cycles once time is up, and a checkpointed
// campaign that hits it resumes on the next invocation. The overload
// knobs bound distributed retry behavior: -retry-budget caps retries to
// a fraction of dispatches (plus a -retry-burst bank), and
// -breaker-threshold consecutive failures open a per-worker circuit
// breaker for -breaker-open (see docs/ROBUSTNESS.md, "Overload &
// degradation"). A campaign stopped by overload or deadline exits with
// a "transient" note — re-run with the same -checkpoint to resume; the
// journal holds everything finished.
//
// The compaction runs under the resilience layer: a PTP that fails (or
// whose compacted form loses more than -fctol points of fault coverage)
// is kept in its original form and the run continues; a PTP whose
// pipeline crashes or stalls is retried up to -max-ptp-retries times and
// then quarantined (original kept, campaign continues). With
// -checkpoint, every finished PTP is appended to a checksummed, fsync'd
// write-ahead journal (campaign.wal) and an interrupted run (Ctrl-C,
// SIGTERM, power loss) resumes after the last intact record. Whatever
// happens, the report and -save outputs reflect every PTP finished so
// far.
//
// With -cpuprofile/-memprofile, pprof profiles of the whole campaign are
// written — the way the fault-simulation engine's hot path is measured
// outside microbenchmarks (see docs/PERFORMANCE.md).
//
// With -trace-out, the campaign -> PTP -> stage span hierarchy is
// written as a JSONL trace (atomically — an interrupted run still
// leaves a parseable trace, with in-flight spans marked interrupted)
// and a per-stage latency / critical-path summary prints after the
// report. With -metrics-out, the final metrics snapshot (simulation
// throughput, outcome counters, coordinator stats) is written as JSON.
// While running, a TTY gets a live progress line (PTPs done/
// quarantined, current stage, ETA); a pipe gets one plain line per PTP.
//
// With -fsck, nothing is compacted: the journal in -checkpoint and the
// -save artifacts are verified — record CRCs and sequence, the config
// hash against the given flags, the journaled PTP hashes against the
// (generated or -load'ed) library, and artifact checksum sidecars —
// and the findings are printed, exiting non-zero on any issue.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"gpustl"
	"gpustl/internal/failpoint"
	"gpustl/internal/obs"
	"gpustl/internal/prof"
)

// logger is the process-wide structured logger, configured in main
// after flags are parsed.
var logger *slog.Logger

func fatalf(format string, args ...any) {
	logger.Error(fmt.Sprintf(format, args...))
	os.Exit(1)
}

func main() {
	var (
		target     = flag.String("target", "DU", "target module: DU|SP|SFU")
		n          = flag.Int("n", 120, "PTP scale (SB count / ATPG sample base)")
		seed       = flag.Int64("seed", 1, "seed")
		nFaults    = flag.Int("faults", 4000, "fault-list sample (0 = full list)")
		reverse    = flag.Bool("reverse", false, "apply patterns in reverse order (paper: SFU_IMM)")
		blockWords = flag.Int("block-words", 0, "fault-simulation block width in 64-pattern words (0 = auto, max 16)")
		instrG     = flag.Bool("instr", false, "instruction-granularity removal (ablation)")
		baseline   = flag.Bool("baseline", false, "also run the iterative prior-work baseline")
		loadPath   = flag.String("load", "", "load PTPs from a saved STL JSON file instead of generating")
		saveDir    = flag.String("save", "", "write original and compacted PTPs to this directory")
		ckDir      = flag.String("checkpoint", "", "persist progress here and resume interrupted runs")
		stageTO    = flag.Duration("stage-timeout", 0, "per-stage watchdog timeout (0 = off)")
		fcTol      = flag.Float64("fctol", 5, "max FC loss (points) before a compacted PTP reverts")
		retries    = flag.Int("max-ptp-retries", 2, "retries before a crashing/stalling PTP is quarantined")
		fsck       = flag.Bool("fsck", false, "verify checkpoint journal and -save artifacts instead of compacting")
		workers    = flag.String("workers-addr", "", "comma-separated stlworker addresses; distribute fault simulations across them")
		traceOut   = flag.String("trace-out", "", "write the campaign's JSONL span trace here and print a per-stage summary")
		metricsOut = flag.String("metrics-out", "", "write the final metrics snapshot (JSON) here")
		logJSON    = flag.Bool("log-json", false, "emit logs as JSON instead of text")
		cpuProf    = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf    = flag.String("memprofile", "", "write an allocation profile to this file on exit")
		verifyFrac = flag.Float64("verify-frac", 0, "fraction of shards re-executed on a second worker and settled by checksum vote (Byzantine tolerance; 0 = trust, 1 = verify all)")
		failpoints = flag.String("failpoints", "", "arm fault-injection sites: name=action[|p=|after=|times=|seed=],... (chaos drills)")
		deadline   = flag.Duration("deadline", 0, "whole-campaign deadline, propagated down to workers (0 = none)")
		retryBud   = flag.Float64("retry-budget", 0, "distributed retries earned per dispatch (0 = default 0.1, negative = unlimited)")
		retryBurst = flag.Int("retry-burst", 0, "banked retry tokens before the budget bites (0 = default 64)")
		brkThresh  = flag.Int("breaker-threshold", 0, "consecutive failures opening a per-worker circuit breaker (0 = default 5, negative = off)")
		brkOpen    = flag.Duration("breaker-open", 0, "breaker cool-down before a half-open probe (0 = default 2s)")
	)
	flag.Parse()
	logger = obs.NewLogger(os.Stderr, "stlcompact", slog.LevelInfo, *logJSON)

	if *failpoints != "" {
		if err := failpoint.EnableSpec(*failpoints); err != nil {
			fatalf("bad -failpoints: %v", err)
		}
		logger.Info("failpoints armed", "names", failpoint.Armed())
	}

	stopCPU, err := prof.Start(*cpuProf)
	if err != nil {
		fatalf("%v", err)
	}
	profFlush := func() {
		stopCPU()
		if err := prof.WriteHeap(*memProf); err != nil {
			logger.Error(err.Error())
		}
	}

	var kind gpustl.ModuleKind
	switch *target {
	case "DU":
		kind = gpustl.ModuleDU
	case "SP":
		kind = gpustl.ModuleSP
	case "SFU":
		kind = gpustl.ModuleSFU
	default:
		fatalf("unknown target %q", *target)
	}

	// Validate output directories before any simulation work, so a typo
	// fails in milliseconds instead of after the compaction.
	for _, dir := range []string{*saveDir, *ckDir} {
		if dir == "" {
			continue
		}
		if err := os.MkdirAll(dir, 0o777); err != nil {
			fatalf("output directory: %v", err)
		}
	}

	// Ctrl-C / SIGTERM cancel the run cleanly: the in-flight PTP aborts,
	// the report, -save, -trace-out and -metrics-out outputs flush with
	// everything finished so far, and -checkpoint lets the next
	// invocation resume.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	mod, err := gpustl.BuildModule(kind)
	if err != nil {
		fatalf("%v", err)
	}
	var faults []gpustl.Fault
	if *nFaults > 0 {
		faults = gpustl.SampleFaults(mod, *nFaults, *seed)
	} else {
		faults = gpustl.AllFaults(mod)
	}

	var ptps []*gpustl.PTP
	if *loadPath != "" {
		// ReadSTLFile verifies the checksum sidecar when one exists, so
		// a silently corrupted library fails here, not mid-campaign.
		lib, err := gpustl.ReadSTLFile(*loadPath)
		if err != nil {
			fatalf("%v", err)
		}
		for _, p := range lib.PTPs {
			if p.Target == kind {
				ptps = append(ptps, p)
			}
		}
		if len(ptps) == 0 {
			fatalf("no PTPs targeting %v in %s", kind, *loadPath)
		}
	} else {
		switch kind {
		case gpustl.ModuleDU:
			ptps = []*gpustl.PTP{
				gpustl.GenerateIMM(*n, *seed+1),
				gpustl.GenerateMEM(*n, *seed+2),
				gpustl.GenerateCNTRL(max(2, *n/10), *seed+3),
			}
		case gpustl.ModuleSP:
			opt := gpustl.DefaultATPGOptions(*seed + 4)
			opt.SampleFaults = *n * 10
			res := gpustl.GenerateATPG(mod, opt)
			tpgen, dropped := gpustl.ConvertTPGEN(res, *seed+4)
			logger.Info("TPGEN generated", "patterns", len(res.Patterns), "unconvertible", dropped)
			ptps = []*gpustl.PTP{tpgen, gpustl.GenerateRAND(*n, *seed+5)}
		case gpustl.ModuleSFU:
			opt := gpustl.DefaultATPGOptions(*seed + 6)
			opt.SampleFaults = *n * 10
			res := gpustl.GenerateATPG(mod, opt)
			sfu, dropped := gpustl.ConvertSFUIMM(res, *seed+6)
			logger.Info("SFU_IMM generated", "patterns", len(res.Patterns), "unconvertible", dropped)
			ptps = []*gpustl.PTP{sfu}
		}
	}

	if *fsck {
		if *ckDir == "" {
			fatalf("-fsck requires -checkpoint DIR (pass the campaign's original flags so the config hash matches)")
		}
		code := runFsck(kind, mod, faults, ptps, runFlags{
			reverse: *reverse, instrG: *instrG,
			saveDir: *saveDir, ckDir: *ckDir,
		})
		profFlush()
		os.Exit(code)
	}

	metrics := gpustl.NewMetricsRegistry()
	obs.RegisterBuildInfo(metrics, "stlcompact")
	// One tracer for the whole process so the coordinator's shard spans
	// land in the same file (and trace) as the campaign/PTP/stage spans.
	var tracer *gpustl.SpanTracer
	if *traceOut != "" {
		tracer = gpustl.NewSpanTracer(*traceOut)
	}
	var sim gpustl.FaultSimulator
	var co *gpustl.DistCoordinator
	if *workers != "" {
		var transports []gpustl.WorkerTransport
		for _, addr := range strings.Split(*workers, ",") {
			if addr = strings.TrimSpace(addr); addr != "" {
				transports = append(transports, gpustl.NewWorkerTransport(addr))
			}
		}
		var err error
		co, err = gpustl.NewDistCoordinator(gpustl.DistOptions{
			Logf:             obs.Logf(logger, slog.LevelInfo),
			Metrics:          metrics,
			Tracer:           tracer,
			VerifyFraction:   *verifyFrac,
			RetryBudget:      *retryBud,
			RetryBurst:       *retryBurst,
			BreakerThreshold: *brkThresh,
			BreakerOpenFor:   *brkOpen,
		}, transports...)
		if err != nil {
			fatalf("%v", err)
		}
		logger.Info("distributing fault simulations", "workers", len(transports))
		sim = co
	}

	code := runCompaction(ctx, kind, mod, faults, ptps, runFlags{
		reverse: *reverse, instrG: *instrG, baseline: *baseline, blockWords: *blockWords,
		saveDir: *saveDir, ckDir: *ckDir, stageTO: *stageTO, fcTol: *fcTol,
		retries: *retries, sim: sim, deadline: *deadline,
		metrics: metrics, tracer: tracer, traceOut: *traceOut, metricsOut: *metricsOut,
	})
	if co != nil {
		co.Close()
	}
	profFlush()
	os.Exit(code)
}

type runFlags struct {
	reverse, instrG, baseline bool
	blockWords                int
	saveDir, ckDir            string
	stageTO                   time.Duration
	deadline                  time.Duration
	fcTol                     float64
	retries                   int
	sim                       gpustl.FaultSimulator

	metrics              *gpustl.MetricsRegistry
	tracer               *gpustl.SpanTracer
	traceOut, metricsOut string
}

// buildCampaign assembles the shared inputs of a compaction or fsck run.
func buildCampaign(kind gpustl.ModuleKind, mod *gpustl.Module, faults []gpustl.Fault,
	ptps []*gpustl.PTP, fl runFlags) (gpustl.GPUConfig, gpustl.CompactorOptions, *gpustl.ModuleSet, *gpustl.STL) {

	cfg := gpustl.DefaultGPUConfig()
	copt := gpustl.CompactorOptions{
		ReversePatterns:        fl.reverse,
		InstructionGranularity: fl.instrG,
		BlockWords:             fl.blockWords,
		Simulator:              fl.sim,
		Metrics:                fl.metrics,
	}
	ms := &gpustl.ModuleSet{
		Modules: map[gpustl.ModuleKind]*gpustl.Module{kind: mod},
		Faults:  map[gpustl.ModuleKind][]gpustl.Fault{kind: faults},
	}
	return cfg, copt, ms, &gpustl.STL{PTPs: ptps}
}

// runFsck verifies the campaign journal and any -save artifacts against
// the configuration the flags describe, prints the findings, and
// returns the process exit code (non-zero on any issue).
func runFsck(kind gpustl.ModuleKind, mod *gpustl.Module, faults []gpustl.Fault,
	ptps []*gpustl.PTP, fl runFlags) int {

	cfg, copt, ms, lib := buildCampaign(kind, mod, faults, ptps, fl)
	hash, err := gpustl.CampaignConfigHash(cfg, ms, lib, copt)
	if err != nil {
		logger.Error(err.Error())
		return 1
	}
	var artifacts []string
	if fl.saveDir != "" {
		for _, name := range []string{"stl_original.json", "stl_compacted.json"} {
			path := filepath.Join(fl.saveDir, name)
			if _, err := os.Stat(path); err == nil {
				artifacts = append(artifacts, path)
			}
		}
	}
	rep, err := gpustl.FsckCampaign(fl.ckDir, hash, lib, artifacts)
	if err != nil {
		logger.Error(err.Error())
		return 1
	}
	rep.Render(os.Stdout)
	if !rep.Clean() {
		return 1
	}
	return 0
}

// runCompaction compacts the PTPs under the resilience layer and returns
// the process exit code. Even on failure or interruption it flushes the
// report, the -save outputs, the -trace-out span trace (in-flight spans
// marked interrupted) and the -metrics-out snapshot, so no completed
// work — and no telemetry about the incomplete work — is lost.
func runCompaction(ctx context.Context, kind gpustl.ModuleKind, mod *gpustl.Module,
	faults []gpustl.Fault, ptps []*gpustl.PTP, fl runFlags) int {

	cfg, copt, ms, lib := buildCampaign(kind, mod, faults, ptps, fl)

	fmt.Printf("compacting %d PTP(s) for %v (%d faults, %d gates x %d lanes)\n\n",
		len(ptps), kind, len(faults), mod.NL.NumGates(), mod.Lanes)

	tracer := fl.tracer
	prog := newProgress(os.Stderr, len(ptps))
	rep, err := gpustl.CompactWholeSTLResilient(ctx, cfg, ms, lib, copt,
		gpustl.RunnerOptions{
			CheckpointDir: fl.ckDir,
			StageTimeout:  fl.stageTO,
			Deadline:      fl.deadline,
			FCTolerance:   fl.fcTol,
			MaxPTPRetries: fl.retries,
			Logf:          obs.Logf(logger, slog.LevelInfo),
			Tracer:        tracer,
			Metrics:       fl.metrics,
			StageHook: func(ptp string, stage gpustl.Stage) error {
				prog.onStage(ptp, stage)
				return nil
			},
			OnOutcome: prog.onOutcome,
		})
	prog.finish()
	exit := 0
	if err != nil {
		// A canceled or failed run still produced outcomes for every
		// finished PTP; report them and exit non-zero after flushing.
		logger.Error("run stopped", "err", err)
		if gpustl.IsTransientFailure(err) && fl.ckDir != "" {
			logger.Info("failure is transient (overload/deadline); re-run with the same -checkpoint to resume")
		}
		exit = 1
	}
	flushTelemetry(fl, tracer)
	if rep == nil || len(rep.Outcomes) == 0 {
		return 1
	}
	rep.Render(os.Stdout)
	renderTraceSummary(fl.traceOut)

	if fl.saveDir != "" {
		original := &gpustl.STL{PTPs: lib.PTPs[:len(rep.Outcomes)]}
		if werr := saveSTL(fl.saveDir, "stl_original.json", original); werr != nil {
			logger.Error(werr.Error())
			exit = 1
		}
		if werr := saveSTL(fl.saveDir, "stl_compacted.json", rep.Compacted); werr != nil {
			logger.Error(werr.Error())
			exit = 1
		}
	}

	if fl.baseline && err == nil {
		fmt.Println("\niterative baseline (one fault sim per candidate Small Block):")
		b := gpustl.NewBaseline(cfg, mod, faults)
		for _, p := range ptps {
			res, berr := b.CompactPTP(p)
			if berr != nil {
				logger.Error("baseline failed", "ptp", p.Name, "err", berr)
				exit = 1
				continue
			}
			fmt.Printf("%-8s  %4d->%-4d  %+8.2f  FC %.2f->%.2f  %4d fault sims  %10v\n",
				p.Name, res.OrigSize, res.CompSize, -res.SizeReduction(),
				res.OrigFC, res.CompFC, res.FaultSims, res.Time)
		}
	}
	return exit
}

// flushTelemetry writes the span trace and metrics snapshot. It runs on
// every exit path of a compaction — clean, failed, or interrupted — so
// a SIGINT'd campaign still leaves a parseable trace (open spans
// snapshotted with interrupted=true) and its final counters.
func flushTelemetry(fl runFlags, tracer *gpustl.SpanTracer) {
	if err := tracer.Flush(); err != nil {
		logger.Error("flushing trace", "err", err)
	} else if fl.traceOut != "" {
		logger.Info("trace written", "path", fl.traceOut)
	}
	if fl.metricsOut == "" {
		return
	}
	data, err := gpustl.MarshalMetrics(fl.metrics)
	if err == nil {
		err = os.WriteFile(fl.metricsOut, append(data, '\n'), 0o666)
	}
	if err != nil {
		logger.Error("writing metrics snapshot", "err", err)
		return
	}
	logger.Info("metrics written", "path", fl.metricsOut)
}

// renderTraceSummary prints the per-stage latency and critical-path
// summary of the trace file just flushed.
func renderTraceSummary(path string) {
	if path == "" {
		return
	}
	events, err := gpustl.ReadTraceFile(path)
	if err != nil {
		logger.Error("reading trace back", "err", err)
		return
	}
	fmt.Println()
	gpustl.SummarizeTrace(events).Render(os.Stdout)
}

// saveSTL writes one STL JSON file into dir, durably (fsync'd atomic
// replace) and with a checksum sidecar for later -fsck verification.
func saveSTL(dir, name string, lib *gpustl.STL) error {
	path := filepath.Join(dir, name)
	if err := gpustl.WriteSTLFile(path, lib); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}
