package main

import (
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"time"

	"gpustl"
)

// progress renders the campaign's live status. On a TTY it maintains a
// single rewritten line (PTPs done/quarantined, the PTP+stage currently
// running, ETA); on a pipe or file it degrades to one plain line per
// settled PTP, so logs stay readable. All methods are safe from the
// runner's callbacks.
type progress struct {
	mu      sync.Mutex
	w       io.Writer
	tty     bool
	start   time.Time
	total   int
	done    int
	quar    int
	current string // "name@stage" of the PTP in flight
	active  bool   // a live line is on screen and needs clearing
}

// newProgress builds a reporter writing to w. TTY behavior is detected
// from os.Stderr (the writer the CLI passes), not assumed.
func newProgress(w io.Writer, total int) *progress {
	tty := false
	if f, ok := w.(*os.File); ok {
		if st, err := f.Stat(); err == nil {
			tty = st.Mode()&os.ModeCharDevice != 0
		}
	}
	return &progress{w: w, tty: tty, start: time.Now(), total: total}
}

// onStage is wired into RunnerOptions.StageHook: it updates the
// current PTP+stage and repaints the live line.
func (p *progress) onStage(ptp string, stage gpustl.Stage) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.current = ptp + "@" + string(stage)
	p.paintLocked()
}

// onOutcome is wired into RunnerOptions.OnOutcome: it advances the
// counters and, without a TTY, logs one plain line per settled PTP.
func (p *progress) onOutcome(o gpustl.RunOutcome, done, total int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.done, p.total = done, total
	p.current = ""
	if o.Status == gpustl.RunQuarantined {
		p.quar++
	}
	if p.tty {
		p.paintLocked()
		return
	}
	fmt.Fprintf(p.w, "[%d/%d] %s: %s\n", done, total, o.Name, o.Status)
}

// finish clears the live line so the final report starts on a clean row.
func (p *progress) finish() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.active {
		fmt.Fprint(p.w, "\r\x1b[K")
		p.active = false
	}
}

// paintLocked redraws the live line; p.mu must be held. No-op off-TTY.
func (p *progress) paintLocked() {
	if !p.tty {
		return
	}
	var b strings.Builder
	fmt.Fprintf(&b, "\r\x1b[K%d/%d PTPs", p.done, p.total)
	if p.quar > 0 {
		fmt.Fprintf(&b, " (%d quarantined)", p.quar)
	}
	if p.current != "" {
		fmt.Fprintf(&b, "  %s", p.current)
	}
	if eta := p.eta(); eta > 0 {
		fmt.Fprintf(&b, "  ETA %s", eta.Round(time.Second))
	}
	fmt.Fprint(p.w, b.String())
	p.active = true
}

// eta projects the remaining wall-clock from the mean settled-PTP time
// (0 until at least one PTP settled).
func (p *progress) eta() time.Duration {
	if p.done == 0 || p.done >= p.total {
		return 0
	}
	per := time.Since(p.start) / time.Duration(p.done)
	return per * time.Duration(p.total-p.done)
}
