// Command stldiff compares two saved STL files (see stlcompact -save):
// per-PTP instruction counts, Small Blocks, data segments, and measured
// durations and fault coverage — the before/after view of a compaction.
//
// Usage:
//
//	stldiff -a stl_original.json -b stl_compacted.json [-faults N] [-seed S]
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"

	"gpustl"
	"gpustl/internal/obs"
)

// logger is configured in main after flags are parsed.
var logger *slog.Logger

func fatal(err error) {
	logger.Error(err.Error())
	os.Exit(1)
}

// load reads one STL, verifying its checksum sidecar when one exists so
// a corrupted artifact fails with an integrity error instead of a
// confusing diff.
func load(path string) *gpustl.STL {
	lib, err := gpustl.ReadSTLFile(path)
	if err != nil {
		fatal(err)
	}
	return lib
}

// measure runs the PTP and returns (cycles, coverage) on a fresh campaign.
func measure(p *gpustl.PTP, nFaults int, seed int64) (uint64, float64) {
	col := gpustl.NewTraceCollector(p.Target)
	col.LiteRows = true
	g, err := gpustl.NewGPU(gpustl.DefaultGPUConfig(), col)
	if err != nil {
		fatal(err)
	}
	res, err := g.Run(gpustl.Kernel{
		Prog: p.Prog, Blocks: p.Kernel.Blocks,
		ThreadsPerBlock: p.Kernel.ThreadsPerBlock,
		GlobalBase:      p.Data.Base, GlobalData: p.Data.Words,
	})
	if err != nil {
		fatal(err)
	}
	mod, err := gpustl.BuildModule(p.Target)
	if err != nil {
		fatal(err)
	}
	camp := gpustl.NewFaultCampaign(mod, gpustl.SampleFaults(mod, nFaults, seed))
	camp.Simulate(col.Patterns, gpustl.SimOptions{})
	return res.Cycles, camp.Coverage()
}

func main() {
	var (
		aPath   = flag.String("a", "", "first STL file (typically the original)")
		bPath   = flag.String("b", "", "second STL file (typically the compacted)")
		nFaults = flag.Int("faults", 3000, "fault sample for the FC measurement")
		seed    = flag.Int64("seed", 1, "fault sampling seed")
		logJSON = flag.Bool("log-json", false, "emit logs as JSON instead of text")
	)
	flag.Parse()
	logger = obs.NewLogger(os.Stderr, "stldiff", slog.LevelInfo, *logJSON)
	if *aPath == "" || *bPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	a, b := load(*aPath), load(*bPath)

	fmt.Printf("%-8s %22s %13s %26s %18s\n", "PTP", "instructions", "SBs", "duration (cc)", "FC (%)")
	for _, pa := range a.PTPs {
		pb := b.ByName(pa.Name)
		if pb == nil {
			fmt.Printf("%-8s only in %s\n", pa.Name, *aPath)
			continue
		}
		ccA, fcA := measure(pa, *nFaults, *seed)
		ccB, fcB := measure(pb, *nFaults, *seed)
		fmt.Printf("%-8s %8d -> %8d %5d -> %4d %11d -> %11d %7.2f -> %7.2f\n",
			pa.Name, len(pa.Prog), len(pb.Prog), len(pa.SBs), len(pb.SBs),
			ccA, ccB, fcA, fcB)
	}
	for _, pb := range b.PTPs {
		if a.ByName(pb.Name) == nil {
			fmt.Printf("%-8s only in %s\n", pb.Name, *bPath)
		}
	}
	fmt.Printf("%-8s %8d -> %8d\n", "total", a.TotalSize(), b.TotalSize())
}
