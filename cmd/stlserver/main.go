// Command stlserver is the crash-only campaign control plane: a
// long-running HTTP service that accepts STL compaction campaigns,
// runs them (optionally across a distributed stlworker fleet), and
// survives being killed at any instant.
//
// Usage:
//
//	stlserver -state DIR [-listen :9200] [-name NAME]
//	          [-workers-addr HOST:PORT,...] [-max-active N]
//	          [-tenant-quota N] [-heartbeat D] [-lease-ttl D]
//	          [-drain-grace D] [-sim-workers N] [-stage-timeout D]
//	          [-metrics-addr ADDR] [-trace-out FILE] [-trace-max-bytes N]
//	          [-trace-keep N] [-log-json] [-failpoints SPEC]
//
// The API:
//
//	POST /api/v1/campaigns               submit {"id": ..., "spec": {...}}
//	GET  /api/v1/campaigns               list campaigns
//	GET  /api/v1/campaigns/{id}          campaign state
//	POST /api/v1/campaigns/{id}/cancel   request cancellation
//	GET  /api/v1/campaigns/{id}/results  the compacted STL (verified)
//	GET  /v1/usage                       per-tenant usage accounting
//	GET  /livez, /readyz                 health (readyz carries queue JSON)
//
// Everything durable lives under -state: the campaign queue journal
// (every state transition is journaled before it is visible), the
// per-campaign run WALs (finished PTPs are never re-simulated), and
// the content-addressed result cache (checksummed artifacts, verified
// on every read). Kill the process — even kill -9 — and restart it on
// the same -state: it replays the journal, re-adopts its campaigns at
// their last journaled stage, and finishes them. A second stlserver
// pointed at the same -state waits for the first one's lease to expire
// and then takes over the same way.
//
// Submissions are attributed to tenants; each tenant has a concurrent
// campaign quota — a submit over quota gets 429 + Retry-After — and a
// retry budget bounding automatic re-execution of its transiently
// failed campaigns. On SIGTERM the server drains: intake stops,
// /readyz flips, in-flight campaigns get -drain-grace to finish and
// are checkpoint-canceled (resumable) past it. A second signal exits
// immediately.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"gpustl"
	"gpustl/internal/failpoint"
	"gpustl/internal/obs"
	"gpustl/internal/server"
)

func main() {
	var (
		listen      = flag.String("listen", ":9200", "address to serve the campaign API on")
		stateDir    = flag.String("state", "", "durable state directory (journal, run WALs, result cache); required")
		name        = flag.String("name", "", "server name in leases and logs (default: host#pid)")
		workers     = flag.String("workers-addr", "", "comma-separated stlworker addresses; distribute fault simulations across them")
		maxActive   = flag.Int("max-active", 2, "campaigns executing concurrently")
		tenantQuota = flag.Int64("tenant-quota", 8, "max live (queued+running) campaigns per tenant; past it submits get 429")
		heartbeat   = flag.Duration("heartbeat", time.Second, "lease renewal period")
		leaseTTL    = flag.Duration("lease-ttl", 0, "lease validity after the last renewal (default 3x heartbeat)")
		drainGrace  = flag.Duration("drain-grace", 30*time.Second, "how long a SIGTERM drain waits before checkpoint-canceling campaigns")
		simWorkers  = flag.Int("sim-workers", 4, "per-campaign fault-simulation parallelism")
		stageTO     = flag.Duration("stage-timeout", 0, "per-stage watchdog timeout per PTP (0 = off)")
		verifyFrac  = flag.Float64("verify-frac", 0, "fraction of shards re-executed for Byzantine verification (fleet mode)")
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics, /debug/vars, /debug/slo and /debug/pprof on this address (empty = off)")
		traceOut    = flag.String("trace-out", "", "write span trace JSONL here (campaign executions, shards); merge with stltrace")
		traceMaxB   = flag.Int64("trace-max-bytes", 64<<20, "rotate the trace file past this size (0 = unbounded)")
		traceKeep   = flag.Int("trace-keep", 2, "rotated trace files kept (trace.1 .. trace.N)")
		sloLatency  = flag.Duration("slo-campaign-latency", 5*time.Minute, "campaign latency SLO threshold: 99% of campaigns should finish within this")
		logJSON     = flag.Bool("log-json", false, "emit logs as JSON instead of text")
		failpoints  = flag.String("failpoints", "", "arm fault-injection sites: name=action[|p=|after=|times=|seed=],... (chaos drills)")
	)
	flag.Parse()

	logger := obs.NewLogger(os.Stderr, "stlserver", slog.LevelInfo, *logJSON)
	if *stateDir == "" {
		logger.Error("-state is required")
		os.Exit(2)
	}
	if *failpoints != "" {
		if err := failpoint.EnableSpec(*failpoints); err != nil {
			logger.Error("bad -failpoints", "err", err)
			os.Exit(2)
		}
		logger.Info("failpoints armed", "names", failpoint.Armed())
	}
	if *name == "" {
		host, err := os.Hostname()
		if err != nil {
			host = "stlserver"
		}
		*name = fmt.Sprintf("%s#%d", host, os.Getpid())
	}

	reg := gpustl.NewMetricsRegistry()
	obs.RegisterBuildInfo(reg, "stlserver")
	usage := obs.NewUsageMeter(reg)

	// The tracer records campaign execution spans (remote children of
	// the submitting client's span when the submit carried trace
	// context) plus the coordinator's per-shard spans. Size-bounded:
	// rotated past -trace-max-bytes, keeping -trace-keep old files.
	var tracer *obs.Tracer
	if *traceOut != "" {
		tracer = obs.NewTracerOptions(*traceOut, obs.TracerOptions{
			MaxBytes: *traceMaxB, KeepFiles: *traceKeep,
		})
	}
	flushTrace := func() {
		if tracer == nil {
			return
		}
		if err := tracer.Flush(); err != nil {
			logger.Error("trace flush failed", "path", *traceOut, "err", err)
		}
	}

	// The fleet factory: shared HTTP transports, one Coordinator per
	// campaign execution. Coordinators are sequential-use; transports
	// are the shared, long-lived part and are never closed per
	// campaign.
	var fleet func() (gpustl.FaultSimulator, error)
	if *workers != "" {
		var transports []gpustl.WorkerTransport
		for _, addr := range strings.Split(*workers, ",") {
			if addr = strings.TrimSpace(addr); addr != "" {
				transports = append(transports, gpustl.NewWorkerTransport(addr))
			}
		}
		logf := obs.Logf(logger, slog.LevelInfo)
		fleet = func() (gpustl.FaultSimulator, error) {
			return gpustl.NewDistCoordinator(gpustl.DistOptions{
				Logf:           logf,
				Metrics:        reg,
				Tracer:         tracer,
				VerifyFraction: *verifyFrac,
			}, transports...)
		}
		logger.Info("fleet configured", "workers", len(transports))
	}

	srv := server.New(server.Options{
		StateDir:       *stateDir,
		Holder:         *name,
		MaxActive:      *maxActive,
		TenantQuota:    *tenantQuota,
		HeartbeatEvery: *heartbeat,
		LeaseTTL:       *leaseTTL,
		DrainGrace:     *drainGrace,
		SimWorkers:     *simWorkers,
		StageTimeout:   *stageTO,
		Fleet:          fleet,
		Metrics:        reg,
		Tracer:         tracer,
		Usage:          usage,
		Logf:           obs.Logf(logger, slog.LevelInfo),
	})

	// The SLO engine tracks the control plane's three objectives and
	// publishes gpustl_slo_* burn-rate gauges plus the /debug/slo page.
	// Bad/total functions read the registry directly; the engine samples
	// them on a fixed cadence so multi-window burn rates are comparable.
	rejected := obs.CounterSeriesValue(reg, "gpustl_server_submit_rejected_total")
	submitted := obs.CounterSeriesValue(reg, "gpustl_server_campaigns_submitted_total")
	mismatches := obs.CounterSeriesValue(reg, "gpustl_dist_verify_mismatches_total")
	verifyDispatches := obs.CounterSeriesValue(reg, "gpustl_dist_verify_dispatches_total")
	slo := obs.NewSLOEngine(reg, []obs.SLO{
		obs.LatencySLO(reg, "campaign-latency", "gpustl_server_campaign_seconds",
			(*sloLatency).Seconds(), 0.99,
			fmt.Sprintf("99%% of campaigns finish within %s", *sloLatency)),
		obs.RatioSLO("submit-shed", 0.99,
			rejected,
			func() float64 { return submitted() + rejected() },
			"99% of submits admitted (not shed by tenant quota)"),
		obs.RatioSLO("verify-mismatch", 0.999,
			mismatches, verifyDispatches,
			"99.9% of Byzantine verification re-executions agree"),
	})

	hsrv := &http.Server{Addr: *listen, Handler: srv.Handler()}
	var msrv *http.Server
	if *metricsAddr != "" {
		msrv = &http.Server{Addr: *metricsAddr, Handler: obs.NewDebugMuxSLO(reg, "gpustl_server", slo)}
		go func() {
			if err := msrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("metrics listener failed", "addr", *metricsAddr, "err", err)
			}
		}()
		logger.Info("metrics listening", "addr", *metricsAddr)
	}

	// SIGINT/SIGTERM cancel ctx → the server drains; a second signal
	// (stop() restores default handling) kills the process.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Background telemetry: the SLO engine samples its objectives every
	// 10s; the tracer flushes every 15s so a kill -9 loses at most that
	// much span history. Both stop with ctx; the final flush below
	// covers the drain path.
	bgCtx, bgStop := context.WithCancel(context.Background())
	defer bgStop()
	go slo.Run(bgCtx, 10*time.Second)
	if tracer != nil {
		go func() {
			tick := time.NewTicker(15 * time.Second)
			defer tick.Stop()
			for {
				select {
				case <-bgCtx.Done():
					return
				case <-tick.C:
					flushTrace()
				}
			}
		}()
	}

	httpErr := make(chan error, 1)
	go func() { httpErr <- hsrv.ListenAndServe() }()
	logger.Info("control plane listening", "name", *name, "addr", *listen, "state", *stateDir)

	srvErr := make(chan error, 1)
	go func() { srvErr <- srv.Run(ctx) }()

	exit := 0
	select {
	case err := <-httpErr:
		logger.Error("listener failed", "err", err)
		srv.Kill()
		<-srvErr
		exit = 1
	case err := <-srvErr:
		// Run returned on its own: a fail-stop crash (journal append
		// failure, lease loss) or a drain completed.
		if err != nil {
			logger.Error("server stopped", "err", err)
			exit = 1
		}
	case <-ctx.Done():
		stop()
		logger.Info("draining: intake stopped, waiting for in-flight campaigns", "grace", *drainGrace)
		if err := <-srvErr; err != nil {
			logger.Error("drain failed", "err", err)
			exit = 1
		} else {
			logger.Info("drained")
		}
	}

	// Final span flush on every exit path — notably the SIGTERM drain,
	// where campaigns that finished during the grace period ended spans
	// after the last periodic flush. Without this the tail of the trace
	// (often the interesting part: what was slow enough to still be
	// running at drain time) never reaches disk.
	bgStop()
	flushTrace()

	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if msrv != nil {
		msrv.Shutdown(shutCtx)
	}
	hsrv.Shutdown(shutCtx)
	os.Exit(exit)
}
