// Command stltrace merges the per-process JSONL trace files of a
// distributed campaign — stlserver's, and one per stlworker — into a
// single fleet-wide waterfall on one corrected clock.
//
// Usage:
//
//	stltrace [-trace ID] [-width N] [-html FILE] [-list] FILE...
//
// Each FILE is a JSONL trace written by a daemon's -trace-out flag (or
// stlcompact's). The process name shown in the waterfall defaults to
// the file's base name; use NAME=FILE to pick it explicitly:
//
//	stltrace server=server.jsonl w1=worker1.jsonl w2=worker2.jsonl
//
// stltrace links spans across files through the propagated trace
// context (every shard executed for a campaign carries the campaign's
// 128-bit trace ID), estimates per-process clock skew from the RPC
// send/recv span pairs and shifts every process onto the reference
// clock, then prints:
//
//   - the skew table (what offset was applied to each process, and
//     which process pairs had inconsistent RPC constraints);
//   - the campaign waterfall (depth-indented span tree with
//     proportional bars and the owning process per row);
//   - the critical-path decomposition: the campaign's wall-clock split
//     into queue-wait, transport, simulate, verify, journal and
//     orchestration self-time. The categories tile the wall exactly,
//     so "where did the time go" always sums to 100%.
//
// With -html the same campaign is rendered as a static HTML flame
// view (one lane per tree depth, hover for span details). With
// multiple campaigns in the merged files, -trace selects one by ID
// and -list enumerates them; the default is the dominant trace (most
// spans).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"gpustl/internal/obs"
)

func main() {
	var (
		traceID = flag.String("trace", "", "campaign trace ID to render (default: the trace with the most spans)")
		width   = flag.Int("width", 72, "waterfall bar width in columns")
		htmlOut = flag.String("html", "", "also write a static HTML flame view here")
		list    = flag.Bool("list", false, "list the trace IDs in the merged files and exit")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: stltrace [flags] [NAME=]FILE...\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	procs, err := loadTraces(flag.Args())
	if err != nil {
		fatalf("%v", err)
	}
	m, err := obs.MergeTraces(procs)
	if err != nil {
		fatalf("%v", err)
	}

	ids := m.TraceIDs()
	if len(ids) == 0 {
		fatalf("no traced spans in %d file(s)", len(procs))
	}
	if *list {
		for _, id := range ids {
			fmt.Println(id)
		}
		return
	}
	id := *traceID
	if id == "" {
		id = ids[0]
	}

	// Skew table first: it qualifies everything below it. A reader who
	// sees a worker bar slightly outside expectation should know what
	// correction was applied and whether the estimate was consistent.
	if len(m.Skew) > 1 {
		fmt.Println("clock skew (offsets applied to reach the reference clock):")
		for _, p := range procNames(procs) {
			fmt.Printf("  %-20s %+v\n", p, m.Skew[p])
		}
		for _, pair := range m.SkewInconsistent {
			fmt.Printf("  warning: inconsistent RPC constraints for %s (midpoint used)\n", pair)
		}
		fmt.Println()
	}

	m.RenderWaterfall(os.Stdout, id, *width)
	fmt.Println()

	if cp := m.CriticalPath(id); cp != nil {
		fmt.Printf("critical path (wall %v):\n", cp.Wall)
		for _, c := range cp.Categories {
			pct := 0.0
			if cp.Wall > 0 {
				pct = 100 * float64(c.Dur) / float64(cp.Wall)
			}
			fmt.Printf("  %-18s %12v  %5.1f%%\n", c.Category, c.Dur, pct)
		}
	}
	if len(ids) > 1 {
		fmt.Printf("\n%d more trace(s) in these files; -list to enumerate, -trace ID to select\n", len(ids)-1)
	}

	if *htmlOut != "" {
		f, err := os.Create(*htmlOut)
		if err != nil {
			fatalf("%v", err)
		}
		if err := m.RenderHTML(f, id); err != nil {
			f.Close()
			fatalf("rendering HTML: %v", err)
		}
		if err := f.Close(); err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("\nflame view written to %s\n", *htmlOut)
	}
}

// loadTraces reads each NAME=FILE (or bare FILE) argument into a
// ProcessTrace. Process names must be unique: the merge attributes
// clock skew per process, so two files under one name would be
// corrected as if one clock produced them.
func loadTraces(args []string) ([]obs.ProcessTrace, error) {
	seen := map[string]bool{}
	var procs []obs.ProcessTrace
	for _, arg := range args {
		name, path, ok := strings.Cut(arg, "=")
		if !ok {
			path = arg
			name = strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
		}
		if seen[name] {
			return nil, fmt.Errorf("duplicate process name %q; use NAME=FILE to disambiguate", name)
		}
		seen[name] = true
		events, err := obs.ReadTraceFile(path)
		if err != nil {
			return nil, fmt.Errorf("reading %s: %w", path, err)
		}
		procs = append(procs, obs.ProcessTrace{Proc: name, Events: events})
	}
	return procs, nil
}

func procNames(procs []obs.ProcessTrace) []string {
	names := make([]string, len(procs))
	for i, p := range procs {
		names[i] = p.Proc
	}
	return names
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "stltrace: "+format+"\n", args...)
	os.Exit(1)
}
