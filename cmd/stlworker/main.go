// Command stlworker is the fault-simulation worker daemon of the
// distributed campaign service. It serves shard requests over HTTP/JSON:
// POST /simulate executes one shard (a fault subset plus the pattern
// stream) on an in-process simulator, GET /healthz answers the
// coordinator's heartbeats.
//
// Usage:
//
//	stlworker -listen :9123 [-name NAME] [-metrics-addr :9124] [-log-json]
//
// Point stlcompact's -workers-addr at one or more daemons to
// distribute the campaign. Workers are stateless — the
// coordinator retries, hedges and redistributes shards — so daemons can
// be added, restarted or killed mid-run.
//
// With -metrics-addr, a second listener serves the operator endpoints:
// /metrics (Prometheus text: shards served, faults/patterns/detections,
// service latency histogram), /debug/vars (expvar JSON) and
// /debug/pprof/* (live profiling).
package main

import (
	"context"
	"errors"
	"flag"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gpustl"
	"gpustl/internal/obs"
)

func main() {
	var (
		listen      = flag.String("listen", ":9123", "address to serve shard requests on")
		name        = flag.String("name", "", "worker name in replies and logs (default: host:listen)")
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address (empty = off)")
		logJSON     = flag.Bool("log-json", false, "emit logs as JSON instead of text")
	)
	flag.Parse()

	logger := obs.NewLogger(os.Stderr, "stlworker", slog.LevelInfo, *logJSON)

	if *name == "" {
		host, err := os.Hostname()
		if err != nil {
			host = "stlworker"
		}
		*name = host + *listen
	}

	reg := gpustl.NewMetricsRegistry()
	srv := &http.Server{
		Addr:    *listen,
		Handler: gpustl.NewWorkerHandlerMetrics(*name, obs.Logf(logger, slog.LevelInfo), reg),
	}

	var msrv *http.Server
	if *metricsAddr != "" {
		msrv = &http.Server{
			Addr:    *metricsAddr,
			Handler: gpustl.NewDebugMux(reg, "gpustl_worker"),
		}
		go func() {
			if err := msrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("metrics listener failed", "addr", *metricsAddr, "err", err)
			}
		}()
		logger.Info("metrics listening", "addr", *metricsAddr)
	}

	// SIGINT/SIGTERM drain in-flight shards and exit cleanly; the
	// coordinator's heartbeats notice the death and redistribute.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	logger.Info("worker listening", "name", *name, "addr", *listen)

	select {
	case err := <-errc:
		logger.Error("listener failed", "err", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	logger.Info("shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if msrv != nil {
		msrv.Shutdown(shutCtx)
	}
	if err := srv.Shutdown(shutCtx); err != nil {
		logger.Error("shutdown failed", "err", err)
		os.Exit(1)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Error("listener failed", "err", err)
		os.Exit(1)
	}
}
