// Command stlworker is the fault-simulation worker daemon of the
// distributed campaign service. It serves shard requests over HTTP/JSON:
// POST /simulate executes one shard (a fault subset plus the pattern
// stream) on an in-process simulator, GET /healthz answers the
// coordinator's heartbeats.
//
// Usage:
//
//	stlworker -listen :9123 [-name NAME] [-metrics-addr :9124] [-log-json]
//	          [-max-concurrent N] [-max-queue N] [-max-inflight-bytes B]
//	          [-retry-after D] [-trace-out FILE] [-trace-max-bytes N]
//	          [-trace-keep N]
//
// With -trace-out, shard executions whose requests carry X-Gpustl-Trace
// context are recorded as remote child spans of the submitting
// campaign's trace; merge the file with the server's and coordinator's
// via stltrace for the cross-process waterfall.
//
// Point stlcompact's -workers-addr at one or more daemons to
// distribute the campaign. Workers are stateless — the
// coordinator retries, hedges and redistributes shards — so daemons can
// be added, restarted or killed mid-run.
//
// With -max-concurrent, at most N shards simulate at once and up to
// -max-queue more wait in a bounded accept queue; with
// -max-inflight-bytes, admitted request bodies are capped by summed
// size. A shard past either bound is bounced immediately with 429 +
// Retry-After (-retry-after tunes the hint) — backpressure, not
// failure: the coordinator reroutes it without charging an attempt.
// /livez answers liveness (always OK while the process serves HTTP);
// /readyz answers readiness (503 while draining or saturated), and
// both statuses carry a JSON body with the worker's queue depth,
// in-flight shard count and draining flag. A saturated worker is
// not-ready but live — orchestrators should stop routing to it, never
// kill it.
//
// On SIGTERM/SIGINT the worker drains gracefully: in-flight shards
// finish, new ones are rejected with 503 + X-Gpustl-Draining (the
// coordinator redistributes them without charging a failure), health
// checks go unhealthy, and then the process exits. A second signal
// aborts immediately.
//
// With -failpoints, named fault-injection sites are armed at startup
// (same spec syntax as stlcompact; see internal/failpoint) — the knob
// chaos drills use to make a live worker lie, stall or drop replies.
//
// With -metrics-addr, a second listener serves the operator endpoints:
// /metrics (Prometheus text: shards served, faults/patterns/detections,
// service latency histogram), /debug/vars (expvar JSON) and
// /debug/pprof/* (live profiling).
package main

import (
	"context"
	"errors"
	"flag"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gpustl"
	"gpustl/internal/failpoint"
	"gpustl/internal/obs"
)

func main() {
	var (
		listen      = flag.String("listen", ":9123", "address to serve shard requests on")
		name        = flag.String("name", "", "worker name in replies and logs (default: host:listen)")
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address (empty = off)")
		logJSON     = flag.Bool("log-json", false, "emit logs as JSON instead of text")
		failpoints  = flag.String("failpoints", "", "arm fault-injection sites: name=action[|p=|after=|times=|seed=],... (chaos drills)")
		maxConc     = flag.Int("max-concurrent", 0, "max shards simulating at once (0 = unlimited)")
		maxQueue    = flag.Int("max-queue", 0, "bounded accept queue beyond -max-concurrent; past it shards bounce with 429")
		maxBytes    = flag.Int64("max-inflight-bytes", 0, "cap summed request-body bytes of admitted shards (0 = unlimited)")
		retryAfter  = flag.Duration("retry-after", time.Second, "Retry-After hint sent with 429 bounces (whole seconds)")
		traceOut    = flag.String("trace-out", "", "write span trace JSONL here (remote shard spans); merge with stltrace")
		traceMaxB   = flag.Int64("trace-max-bytes", 64<<20, "rotate the trace file past this size (0 = unbounded)")
		traceKeep   = flag.Int("trace-keep", 2, "rotated trace files kept (trace.1 .. trace.N)")
	)
	flag.Parse()

	logger := obs.NewLogger(os.Stderr, "stlworker", slog.LevelInfo, *logJSON)

	if *failpoints != "" {
		if err := failpoint.EnableSpec(*failpoints); err != nil {
			logger.Error("bad -failpoints", "err", err)
			os.Exit(2)
		}
		logger.Info("failpoints armed", "names", failpoint.Armed())
	}

	if *name == "" {
		host, err := os.Hostname()
		if err != nil {
			host = "stlworker"
		}
		*name = host + *listen
	}

	reg := gpustl.NewMetricsRegistry()
	obs.RegisterBuildInfo(reg, "stlworker")
	var tracer *obs.Tracer
	if *traceOut != "" {
		tracer = obs.NewTracerOptions(*traceOut, obs.TracerOptions{
			MaxBytes: *traceMaxB, KeepFiles: *traceKeep,
		})
	}
	flushTrace := func() {
		if tracer == nil {
			return
		}
		if err := tracer.Flush(); err != nil {
			logger.Error("trace flush failed", "path", *traceOut, "err", err)
		}
	}
	handler := gpustl.NewWorkerHandlerOptions(*name, gpustl.WorkerServiceOptions{
		MaxConcurrent:    *maxConc,
		MaxQueue:         *maxQueue,
		MaxInflightBytes: *maxBytes,
		RetryAfter:       *retryAfter,
		Metrics:          reg,
		Tracer:           tracer,
		Logf:             obs.Logf(logger, slog.LevelInfo),
	})
	if *maxConc > 0 || *maxBytes > 0 {
		logger.Info("backpressure armed",
			"max_concurrent", *maxConc, "max_queue", *maxQueue,
			"max_inflight_bytes", *maxBytes, "retry_after", *retryAfter)
	}
	srv := &http.Server{
		Addr:    *listen,
		Handler: handler,
	}

	var msrv *http.Server
	if *metricsAddr != "" {
		msrv = &http.Server{
			Addr:    *metricsAddr,
			Handler: gpustl.NewDebugMux(reg, "gpustl_worker"),
		}
		go func() {
			if err := msrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("metrics listener failed", "addr", *metricsAddr, "err", err)
			}
		}()
		logger.Info("metrics listening", "addr", *metricsAddr)
	}

	// SIGINT/SIGTERM start a graceful drain: in-flight shards finish,
	// new ones get 503 + X-Gpustl-Draining (the coordinator retries
	// them elsewhere without charging a failure), health checks go
	// unhealthy so heartbeats steer new work away, then the listeners
	// shut down. A second signal kills the process immediately.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	logger.Info("worker listening", "name", *name, "addr", *listen)

	// Periodic span flush so a hard kill loses at most 15s of shard
	// spans; the post-drain flush below writes the tail.
	flushDone := make(chan struct{})
	if tracer != nil {
		go func() {
			tick := time.NewTicker(15 * time.Second)
			defer tick.Stop()
			for {
				select {
				case <-flushDone:
					return
				case <-tick.C:
					flushTrace()
				}
			}
		}()
	}

	select {
	case err := <-errc:
		logger.Error("listener failed", "err", err)
		flushTrace()
		os.Exit(1)
	case <-ctx.Done():
	}
	logger.Info("draining: finishing in-flight shards, rejecting new ones")
	handler.StartDrain()
	stop()
	drained := make(chan struct{})
	go func() { handler.DrainWait(); close(drained) }()
	select {
	case <-drained:
		logger.Info("drained")
	case <-time.After(30 * time.Second):
		logger.Error("drain timed out after 30s; shutting down anyway")
	}
	// Flush after the drain: the in-flight shards that just finished
	// ended their spans after the last periodic flush.
	close(flushDone)
	flushTrace()
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if msrv != nil {
		msrv.Shutdown(shutCtx)
	}
	if err := srv.Shutdown(shutCtx); err != nil {
		logger.Error("shutdown failed", "err", err)
		os.Exit(1)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Error("listener failed", "err", err)
		os.Exit(1)
	}
}
