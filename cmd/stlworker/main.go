// Command stlworker is the fault-simulation worker daemon of the
// distributed campaign service. It serves shard requests over HTTP/JSON:
// POST /simulate executes one shard (a fault subset plus the pattern
// stream) on an in-process simulator, GET /healthz answers the
// coordinator's heartbeats.
//
// Usage:
//
//	stlworker -listen :9123 [-name NAME] [-metrics-addr :9124] [-log-json]
//
// Point stlcompact's -workers-addr at one or more daemons to
// distribute the campaign. Workers are stateless — the
// coordinator retries, hedges and redistributes shards — so daemons can
// be added, restarted or killed mid-run.
//
// On SIGTERM/SIGINT the worker drains gracefully: in-flight shards
// finish, new ones are rejected with 503 + X-Gpustl-Draining (the
// coordinator redistributes them without charging a failure), health
// checks go unhealthy, and then the process exits. A second signal
// aborts immediately.
//
// With -failpoints, named fault-injection sites are armed at startup
// (same spec syntax as stlcompact; see internal/failpoint) — the knob
// chaos drills use to make a live worker lie, stall or drop replies.
//
// With -metrics-addr, a second listener serves the operator endpoints:
// /metrics (Prometheus text: shards served, faults/patterns/detections,
// service latency histogram), /debug/vars (expvar JSON) and
// /debug/pprof/* (live profiling).
package main

import (
	"context"
	"errors"
	"flag"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gpustl"
	"gpustl/internal/failpoint"
	"gpustl/internal/obs"
)

func main() {
	var (
		listen      = flag.String("listen", ":9123", "address to serve shard requests on")
		name        = flag.String("name", "", "worker name in replies and logs (default: host:listen)")
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address (empty = off)")
		logJSON     = flag.Bool("log-json", false, "emit logs as JSON instead of text")
		failpoints  = flag.String("failpoints", "", "arm fault-injection sites: name=action[|p=|after=|times=|seed=],... (chaos drills)")
	)
	flag.Parse()

	logger := obs.NewLogger(os.Stderr, "stlworker", slog.LevelInfo, *logJSON)

	if *failpoints != "" {
		if err := failpoint.EnableSpec(*failpoints); err != nil {
			logger.Error("bad -failpoints", "err", err)
			os.Exit(2)
		}
		logger.Info("failpoints armed", "names", failpoint.Armed())
	}

	if *name == "" {
		host, err := os.Hostname()
		if err != nil {
			host = "stlworker"
		}
		*name = host + *listen
	}

	reg := gpustl.NewMetricsRegistry()
	handler := gpustl.NewWorkerHandlerMetrics(*name, obs.Logf(logger, slog.LevelInfo), reg)
	srv := &http.Server{
		Addr:    *listen,
		Handler: handler,
	}

	var msrv *http.Server
	if *metricsAddr != "" {
		msrv = &http.Server{
			Addr:    *metricsAddr,
			Handler: gpustl.NewDebugMux(reg, "gpustl_worker"),
		}
		go func() {
			if err := msrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("metrics listener failed", "addr", *metricsAddr, "err", err)
			}
		}()
		logger.Info("metrics listening", "addr", *metricsAddr)
	}

	// SIGINT/SIGTERM start a graceful drain: in-flight shards finish,
	// new ones get 503 + X-Gpustl-Draining (the coordinator retries
	// them elsewhere without charging a failure), health checks go
	// unhealthy so heartbeats steer new work away, then the listeners
	// shut down. A second signal kills the process immediately.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	logger.Info("worker listening", "name", *name, "addr", *listen)

	select {
	case err := <-errc:
		logger.Error("listener failed", "err", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	logger.Info("draining: finishing in-flight shards, rejecting new ones")
	handler.StartDrain()
	stop()
	drained := make(chan struct{})
	go func() { handler.DrainWait(); close(drained) }()
	select {
	case <-drained:
		logger.Info("drained")
	case <-time.After(30 * time.Second):
		logger.Error("drain timed out after 30s; shutting down anyway")
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if msrv != nil {
		msrv.Shutdown(shutCtx)
	}
	if err := srv.Shutdown(shutCtx); err != nil {
		logger.Error("shutdown failed", "err", err)
		os.Exit(1)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Error("listener failed", "err", err)
		os.Exit(1)
	}
}
