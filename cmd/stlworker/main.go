// Command stlworker is the fault-simulation worker daemon of the
// distributed campaign service. It serves shard requests over HTTP/JSON:
// POST /simulate executes one shard (a fault subset plus the pattern
// stream) on an in-process simulator, GET /healthz answers the
// coordinator's heartbeats.
//
// Usage:
//
//	stlworker -listen :9123 [-name NAME]
//
// Point stlcompact's -workers-addr at one or more daemons to
// distribute the campaign. Workers are stateless — the
// coordinator retries, hedges and redistributes shards — so daemons can
// be added, restarted or killed mid-run.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gpustl"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("stlworker: ")
	var (
		listen = flag.String("listen", ":9123", "address to serve on")
		name   = flag.String("name", "", "worker name in replies and logs (default: host:listen)")
	)
	flag.Parse()

	if *name == "" {
		host, err := os.Hostname()
		if err != nil {
			host = "stlworker"
		}
		*name = host + *listen
	}

	srv := &http.Server{
		Addr:    *listen,
		Handler: gpustl.NewWorkerHandler(*name, log.Printf),
	}

	// SIGINT/SIGTERM drain in-flight shards and exit cleanly; the
	// coordinator's heartbeats notice the death and redistribute.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("worker %q listening on %s", *name, *listen)

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	log.Print("shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		log.Fatal(err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
}
