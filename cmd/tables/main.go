// Command tables regenerates the paper's evaluation artifacts: Table I
// (PTP features), Table II (Decoder Unit compaction), Table III
// (functional-unit compaction), the whole-STL summary, the ablation
// studies, and the proposed-vs-baseline cost comparison.
//
// Usage:
//
//	tables [-scale small|medium|paper] [-table 1|2|3|all] [-summary]
//	       [-ablations] [-baseline] [-seed N] [-csv DIR]
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"time"

	"gpustl"
	"gpustl/internal/obs"
)

func main() {
	var (
		scaleName = flag.String("scale", "small", "experiment scale: small|medium|paper")
		table     = flag.String("table", "all", "which table to regenerate: 1|2|3|all")
		summary   = flag.Bool("summary", false, "print the whole-STL summary (runs tables 2 and 3)")
		ablations = flag.Bool("ablations", false, "run the ablation studies")
		baseline  = flag.Bool("baseline", false, "run the proposed-vs-iterative-baseline comparison")
		exts      = flag.Bool("extensions", false, "run the beyond-the-paper studies (FP32, pipeline registers)")
		seed      = flag.Int64("seed", 1, "experiment seed")
		csvDir    = flag.String("csv", "", "also write each table as CSV into this directory")
		logJSON   = flag.Bool("log-json", false, "emit logs as JSON instead of text")
	)
	flag.Parse()
	logger := obs.NewLogger(os.Stderr, "tables", slog.LevelInfo, *logJSON)
	fatal := func(err error) {
		logger.Error(err.Error())
		os.Exit(1)
	}

	writeCSV := func(name string, tb interface{ WriteCSV(w io.Writer) error }) {
		if *csvDir == "" {
			return
		}
		// Durable atomic write: a crash mid-table leaves the previous CSV
		// intact instead of a torn file.
		var buf bytes.Buffer
		if err := tb.WriteCSV(&buf); err != nil {
			fatal(err)
		}
		path := filepath.Join(*csvDir, name)
		if err := gpustl.WriteFileAtomic(path, buf.Bytes()); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", path)
	}

	scale, err := gpustl.ScaleByName(*scaleName)
	if err != nil {
		fatal(err)
	}
	params := gpustl.ParamsFor(scale)
	params.Seed = *seed

	start := time.Now()
	fmt.Printf("building %s-scale environment (modules, fault lists, ATPG, six PTPs)...\n", scale)
	env, err := gpustl.BuildEnv(params)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("environment ready in %v (TPGEN dropped %d patterns, SFU_IMM dropped %d)\n\n",
		time.Since(start).Round(time.Millisecond), env.TPGENDropped, env.SFUIMMDropped)

	runT1 := *table == "1" || *table == "all"
	runT2 := *table == "2" || *table == "all" || *summary
	runT3 := *table == "3" || *table == "all" || *summary

	if runT1 {
		t1, err := gpustl.TableI(env)
		if err != nil {
			fatal(err)
		}
		t1.Render(os.Stdout)
		tb := t1.Table()
		writeCSV("table1.csv", &tb)
		fmt.Println()
	}
	var t2, t3 *gpustl.CompactionTables
	if runT2 {
		t2, err = gpustl.TableII(env)
		if err != nil {
			fatal(err)
		}
		t2.Render(os.Stdout, "TABLE II. COMPACTION RESULTS, TEST PROGRAMS FOR THE DECODER UNIT")
		tb := t2.Table("")
		writeCSV("table2.csv", &tb)
		fmt.Println()
	}
	if runT3 {
		t3, err = gpustl.TableIII(env)
		if err != nil {
			fatal(err)
		}
		t3.Render(os.Stdout, "TABLE III. COMPACTION RESULTS, TEST PROGRAMS FOR THE FUNCTIONAL UNITS")
		tb := t3.Table("")
		writeCSV("table3.csv", &tb)
		fmt.Println()
	}
	if *summary {
		sum, err := gpustl.STLSummary(env, t2, t3)
		if err != nil {
			fatal(err)
		}
		sum.Render(os.Stdout)
		fmt.Println()
	}
	if *ablations {
		ab, err := gpustl.Ablations(env)
		if err != nil {
			fatal(err)
		}
		ab.Render(os.Stdout)
		fmt.Println()
	}
	if *baseline {
		bc, err := gpustl.BaselineCompare(env)
		if err != nil {
			fatal(err)
		}
		bc.Render(os.Stdout)
	}
	if *exts {
		x, err := gpustl.Extensions(env)
		if err != nil {
			fatal(err)
		}
		x.Render(os.Stdout)
	}
}
