package gpustl

import (
	"testing"
)

// TestEngineEquivalenceOnExamplePTPs is the end-to-end equivalence
// harness the optimized fault-simulation engine is held to: for every
// example PTP of the paper's STL (IMM, MEM, CNTRL, TPGEN, RAND, SFU_IMM)
// and every block width W ∈ {auto, 1, 4, 8, 16}, the optimized engine
// must produce a Report with byte-identical Detections — same fault,
// same first-detecting pattern index, same clock cycle — and identical
// per-group coverage as the NoOptimize reference engine. SFU_IMM is
// additionally checked with Reverse ordering, the way the paper
// applies it.
func TestEngineEquivalenceOnExamplePTPs(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the full experiment environment")
	}
	e, err := BuildEnv(ParamsFor(Small))
	if err != nil {
		t.Fatal(err)
	}
	widths := []int{0, 1, 4, 8, 16}
	for _, ptp := range e.PTPs() {
		opts := []SimOptions{{}}
		if ptp.Name == "SFU_IMM" {
			opts = append(opts, SimOptions{Reverse: true})
		}
		for _, opt := range opts {
			name := ptp.Name
			if opt.Reverse {
				name += "_reverse"
			}
			t.Run(name, func(t *testing.T) {
				col, _, err := e.RunPTP(ptp)
				if err != nil {
					t.Fatal(err)
				}
				mod := e.ModuleOf(ptp)
				faults := e.FaultsOf(ptp)

				run := func(noOpt bool, w int) (*FaultSimReport, []GroupCoverage) {
					camp := NewFaultCampaign(mod, faults)
					o := opt
					o.NoOptimize = noOpt
					o.BlockWords = w
					rep := camp.Simulate(col.Patterns, o)
					return rep, camp.CoverageByGroup()
				}
				ref, refCov := run(true, 0)
				for _, w := range widths {
					got, gotCov := run(false, w)

					if len(ref.Detections) != len(got.Detections) {
						t.Fatalf("w=%d: detection counts differ: reference %d, optimized %d",
							w, len(ref.Detections), len(got.Detections))
					}
					for i := range ref.Detections {
						if ref.Detections[i] != got.Detections[i] {
							t.Fatalf("w=%d: detection %d differs: reference %+v, optimized %+v",
								w, i, ref.Detections[i], got.Detections[i])
						}
					}
					if len(refCov) != len(gotCov) {
						t.Fatalf("w=%d: group counts differ: %d vs %d", w, len(refCov), len(gotCov))
					}
					for i := range refCov {
						if refCov[i] != gotCov[i] {
							t.Fatalf("w=%d: group %d coverage differs: reference %+v, optimized %+v",
								w, i, refCov[i], gotCov[i])
						}
					}
				}
			})
		}
	}
}
