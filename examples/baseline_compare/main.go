// Baseline comparison: the paper's headline cost claim. Prior-work
// iterative compaction fault-simulates every candidate removal; the
// proposed method runs ONE logic simulation and ONE fault simulation per
// PTP. This example compacts the same PTP with both and prints the cost
// and quality of each.
package main

import (
	"fmt"
	"log"

	"gpustl"
)

func main() {
	log.SetFlags(0)

	mod, err := gpustl.BuildModule(gpustl.ModuleDU)
	if err != nil {
		log.Fatal(err)
	}
	faults := gpustl.SampleFaults(mod, 2500, 3)

	for _, sbs := range []int{25, 50, 100} {
		ptp := gpustl.GenerateIMM(sbs, 9)

		prop := gpustl.NewCompactor(gpustl.DefaultGPUConfig(), mod, faults,
			gpustl.CompactorOptions{})
		pres, err := prop.CompactPTP(ptp)
		if err != nil {
			log.Fatal(err)
		}

		base := gpustl.NewBaseline(gpustl.DefaultGPUConfig(), mod, faults)
		bres, err := base.CompactPTP(ptp)
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("PTP with %3d Small Blocks (%d instructions):\n", sbs, len(ptp.Prog))
		fmt.Printf("  proposed:  1 fault sim      %10v   %5d instrs left (FC %+.2f)\n",
			pres.CompactionTime, pres.CompSize, pres.FCDiff())
		fmt.Printf("  baseline:  %3d fault sims   %10v   %5d instrs left (FC %+.2f)\n",
			bres.FaultSims, bres.Time, bres.CompSize, bres.CompFC-bres.OrigFC)
		speedup := float64(bres.Time) / float64(pres.CompactionTime)
		fmt.Printf("  speedup: %.1fx; the gap grows linearly with PTP size\n\n", speedup)
	}
}
