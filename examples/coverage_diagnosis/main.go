// Coverage diagnosis: which datapath blocks does a PTP actually test?
// The gate-level modules tag every gate with its functional group
// (multiplier, shifter, comparator, ...), and the fault campaign can
// aggregate coverage per group — the view a test engineer uses to decide
// what the next PTP should target. This example compares the RAND and
// TPGEN programs' group profiles on the SP datapath.
package main

import (
	"fmt"
	"log"

	"gpustl"
)

func groupProfile(mod *gpustl.Module, faults []gpustl.Fault, p *gpustl.PTP) []gpustl.GroupCoverage {
	col := gpustl.NewTraceCollector(p.Target)
	col.LiteRows = true
	g, err := gpustl.NewGPU(gpustl.DefaultGPUConfig(), col)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := g.Run(gpustl.Kernel{
		Prog: p.Prog, Blocks: p.Kernel.Blocks,
		ThreadsPerBlock: p.Kernel.ThreadsPerBlock,
		GlobalBase:      p.Data.Base, GlobalData: p.Data.Words,
	}); err != nil {
		log.Fatal(err)
	}
	camp := gpustl.NewFaultCampaign(mod, faults)
	camp.Simulate(col.Patterns, gpustl.SimOptions{})
	return camp.CoverageByGroup()
}

func main() {
	log.SetFlags(0)

	mod, err := gpustl.BuildModule(gpustl.ModuleSP)
	if err != nil {
		log.Fatal(err)
	}
	faults := gpustl.SampleFaults(mod, 10000, 3)

	rand := gpustl.GenerateRAND(150, 4)

	opt := gpustl.DefaultATPGOptions(5)
	opt.SampleFaults = 2500
	tpgen, _ := gpustl.ConvertTPGEN(gpustl.GenerateATPG(mod, opt), 5)

	randProf := groupProfile(mod, faults, rand)
	tpgenProf := groupProfile(mod, faults, tpgen)

	fmt.Printf("SP datapath coverage by functional group (%d sampled faults)\n\n", len(faults))
	fmt.Printf("%-16s %10s %12s %12s\n", "group", "faults", "RAND", "TPGEN")
	for i, g := range randProf {
		name := g.Group
		if name == "" {
			name = "(ungrouped)"
		}
		fmt.Printf("%-16s %10d %11.2f%% %11.2f%%\n",
			name, g.Total, g.Pct(), tpgenProf[i].Pct())
	}
	fmt.Println("\nThe weak spot jumps out: comparator faults are only observable")
	fmt.Println("while a SET-class operation executes, so both PTPs leave a large")
	fmt.Println("share of them untested — the diagnosis a test engineer turns into")
	fmt.Println("the next PTP (comparison-heavy Small Blocks over all six conditions).")
}
