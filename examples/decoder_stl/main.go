// Decoder-unit STL compaction: reproduces the Table II scenario at demo
// scale. The three DU PTPs (IMM, MEM, CNTRL) are compacted in order on a
// shared fault campaign, so each PTP only keeps instructions that detect
// faults the previous PTPs missed — the paper's fault-dropping mechanism,
// which is why MEM compacts harder than IMM.
package main

import (
	"fmt"
	"log"

	"gpustl"
)

func main() {
	log.SetFlags(0)

	mod, err := gpustl.BuildModule(gpustl.ModuleDU)
	if err != nil {
		log.Fatal(err)
	}
	faults := gpustl.SampleFaults(mod, 4000, 7)

	ptps := []*gpustl.PTP{
		gpustl.GenerateIMM(200, 1),
		gpustl.GenerateMEM(200, 2),
		gpustl.GenerateCNTRL(20, 3),
	}

	comp := gpustl.NewCompactor(gpustl.DefaultGPUConfig(), mod, faults,
		gpustl.CompactorOptions{})

	fmt.Println("Decoder Unit STL compaction (IMM -> MEM -> CNTRL, shared fault list)")
	fmt.Printf("%-7s %22s %26s %9s %12s\n", "PTP", "size", "duration (cc)", "Diff FC", "time")
	var totalOrig, totalComp int
	var totalOrigCC, totalCompCC uint64
	stl := gpustl.STL{}
	for _, p := range ptps {
		res, err := comp.CompactPTP(p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-7s %8d -> %5d (%6.2f%%) %9d -> %8d (%6.2f%%) %+8.2f %12v\n",
			p.Name, res.OrigSize, res.CompSize, -res.SizeReduction(),
			res.OrigDuration, res.CompDuration, -res.DurationReduction(),
			res.FCDiff(), res.CompactionTime)
		totalOrig += res.OrigSize
		totalComp += res.CompSize
		totalOrigCC += res.OrigDuration
		totalCompCC += res.CompDuration
		stl.PTPs = append(stl.PTPs, res.Compacted)
	}
	fmt.Printf("%-7s %8d -> %5d (%6.2f%%) %9d -> %8d (%6.2f%%)\n",
		"total", totalOrig, totalComp,
		-100*(1-float64(totalComp)/float64(totalOrig)),
		totalOrigCC, totalCompCC,
		-100*(1-float64(totalCompCC)/float64(totalOrigCC)))

	// The reassembled STL: combined coverage of the compacted PTPs.
	camp := gpustl.NewFaultCampaign(mod, faults)
	for _, p := range stl.PTPs {
		col := gpustl.NewTraceCollector(p.Target)
		col.LiteRows = true
		g, err := gpustl.NewGPU(gpustl.DefaultGPUConfig(), col)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := g.Run(gpustl.Kernel{
			Prog: p.Prog, Blocks: p.Kernel.Blocks,
			ThreadsPerBlock: p.Kernel.ThreadsPerBlock,
			GlobalBase:      p.Data.Base, GlobalData: p.Data.Words,
		}); err != nil {
			log.Fatal(err)
		}
		camp.Simulate(col.Patterns, gpustl.SimOptions{})
	}
	fmt.Printf("\nreassembled STL combined FC on the Decoder Unit: %.2f%% (%d/%d faults)\n",
		camp.Coverage(), camp.Detected(), camp.Total())
}
