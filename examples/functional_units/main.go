// Functional-unit STL compaction: reproduces the Table III scenario at
// demo scale. TPGEN is built by running ATPG (random patterns + PODEM) on
// the SP-core netlist and parsing the patterns into instructions; RAND is
// pseudorandom; both are compacted on a shared SP fault campaign. SFU_IMM
// is ATPG-derived for the SFU and compacted with the reverse-order pattern
// replay the paper uses for it.
package main

import (
	"fmt"
	"log"

	"gpustl"
)

func main() {
	log.SetFlags(0)

	// --- SP cores: TPGEN (ATPG-based) then RAND (pseudorandom). ---
	sp, err := gpustl.BuildModule(gpustl.ModuleSP)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SP datapath: %d gates x %d lanes\n", sp.NL.NumGates(), sp.Lanes)

	atpgOpt := gpustl.DefaultATPGOptions(11)
	atpgOpt.SampleFaults = 2500
	atpgRes := gpustl.GenerateATPG(sp, atpgOpt)
	fmt.Printf("SP ATPG: %d patterns, coverage %.2f%% of %d targeted faults\n",
		len(atpgRes.Patterns), atpgRes.Coverage(), atpgRes.TotalFaults)

	tpgen, dropped := gpustl.ConvertTPGEN(atpgRes, 11)
	fmt.Printf("TPGEN: %d instructions (%d patterns had no instruction equivalent)\n",
		len(tpgen.Prog), dropped)
	rand := gpustl.GenerateRAND(250, 12)

	spFaults := gpustl.SampleFaults(sp, 8000, 13)
	spComp := gpustl.NewCompactor(gpustl.DefaultGPUConfig(), sp, spFaults,
		gpustl.CompactorOptions{})

	fmt.Println("\nSP-core PTPs (shared campaign, TPGEN first):")
	for _, p := range []*gpustl.PTP{tpgen, rand} {
		res, err := spComp.CompactPTP(p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-6s %6d -> %5d instrs (%6.2f%%), %8d -> %7d cc, FC %.2f -> %.2f (%+.2f)\n",
			p.Name, res.OrigSize, res.CompSize, -res.SizeReduction(),
			res.OrigDuration, res.CompDuration, res.OrigFC, res.CompFC, res.FCDiff())
	}

	// --- SFU: ATPG-derived SFU_IMM with reverse-order pattern replay. ---
	sfu, err := gpustl.BuildModule(gpustl.ModuleSFU)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nSFU datapath: %d gates x %d lanes\n", sfu.NL.NumGates(), sfu.Lanes)

	sfuOpt := gpustl.DefaultATPGOptions(14)
	sfuOpt.SampleFaults = 1500
	sfuRes := gpustl.GenerateATPG(sfu, sfuOpt)
	sfuImm, sfuDropped := gpustl.ConvertSFUIMM(sfuRes, 14)
	fmt.Printf("SFU_IMM: %d instructions from %d ATPG patterns (%d unconvertible)\n",
		len(sfuImm.Prog), len(sfuRes.Patterns), sfuDropped)

	sfuFaults := gpustl.SampleFaults(sfu, 5000, 15)
	for _, reverse := range []bool{true, false} {
		comp := gpustl.NewCompactor(gpustl.DefaultGPUConfig(), sfu, sfuFaults,
			gpustl.CompactorOptions{ReversePatterns: reverse})
		res, err := comp.CompactPTP(sfuImm)
		if err != nil {
			log.Fatal(err)
		}
		order := "reverse"
		if !reverse {
			order = "forward"
		}
		fmt.Printf("  SFU_IMM (%s patterns): %6d -> %5d instrs (%6.2f%%), FC diff %+.2f\n",
			order, res.OrigSize, res.CompSize, -res.SizeReduction(), res.FCDiff())
	}
	fmt.Println("\n(SFU_IMM Small Blocks are data-independent: its FC diff stays ~0,")
	fmt.Println(" matching the paper's observation for this PTP.)")
}
