// Pipeline-register testing: the sequential side of the library. The SM's
// fetch/decode pipeline register bank only reveals faults across clock
// cycles, so it needs the sequential fault simulator rather than the
// combinational one. This example runs a PTP, replays its fetch stream on
// the register bank, reports coverage per functional group, and shows the
// Fig. 2 labeling working unchanged on the sequential report.
package main

import (
	"fmt"
	"log"

	"gpustl"
)

func main() {
	log.SetFlags(0)

	pipe, err := gpustl.BuildModule(gpustl.ModulePIPE)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pipeline register bank: %d gates, %d flip-flops\n",
		pipe.NL.NumGates(), pipe.NL.NumDFFs())

	// Any fetch-heavy PTP exercises the registers; use IMM.
	ptp := gpustl.GenerateIMM(60, 7)
	col := gpustl.NewTraceCollector(gpustl.ModulePIPE)
	g, err := gpustl.NewGPU(gpustl.DefaultGPUConfig(), col)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := g.Run(gpustl.Kernel{
		Prog: ptp.Prog, Blocks: 1, ThreadsPerBlock: 32,
		GlobalBase: ptp.Data.Base, GlobalData: ptp.Data.Words,
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fetch stream: %d registered cycles from %s\n", len(col.Patterns), ptp.Name)

	camp, err := gpustl.NewSeqFaultCampaign(pipe)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := camp.Simulate(col.Patterns)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sequential fault simulation: %d/%d stem faults detected (%.2f%%)\n",
		camp.Detected(), camp.Total(), camp.Coverage())

	// The same labeling algorithm consumes the sequential report.
	essential := gpustl.LabelDetailed(len(ptp.Prog), rep, col.CCToPC())
	fmt.Printf("Fig. 2 labeling on the sequential report: %s\n", essential)
	fmt.Println("\nRegister faults are detected by the first few distinct instruction")
	fmt.Println("words, so almost the whole PTP is unessential for this target —")
	fmt.Println("pipeline registers need only a handful of carefully varied fetches.")
}
