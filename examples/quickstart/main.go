// Quickstart: generate one Decoder Unit test program, compact it with the
// five-stage method, and print what happened — the smallest end-to-end use
// of the library.
package main

import (
	"fmt"
	"log"

	"gpustl"
)

func main() {
	log.SetFlags(0)

	// 1. Build the gate-level model of the target module (the instruction
	//    Decoder Unit of the FlexGripPlus-like GPU).
	mod, err := gpustl.BuildModule(gpustl.ModuleDU)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Decoder Unit: %d gates, %d inputs, %d outputs\n",
		mod.NL.NumGates(), len(mod.NL.Inputs), len(mod.NL.Outputs))

	// 2. Enumerate its stuck-at faults (sampled here to keep the demo
	//    fast; pass AllFaults(mod) for the full campaign).
	faults := gpustl.SampleFaults(mod, 3000, 42)
	fmt.Printf("fault list: %d stuck-at faults\n", len(faults))

	// 3. Generate a pseudorandom test program in the style of the paper's
	//    IMM PTP: 150 Small Blocks of immediate-format instructions, each
	//    folding its results into a per-thread signature.
	ptp := gpustl.GenerateIMM(150, 42)
	fmt.Printf("PTP %s: %d instructions, %d Small Blocks, ARC %.1f%%\n",
		ptp.Name, len(ptp.Prog), len(ptp.SBs), 100*ptp.ARCFraction())

	// 4. Compact it: one logic simulation + one fault simulation.
	comp := gpustl.NewCompactor(gpustl.DefaultGPUConfig(), mod, faults,
		gpustl.CompactorOptions{})
	res, err := comp.CompactPTP(ptp)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\ncompaction (took %v):\n", res.CompactionTime)
	fmt.Printf("  size:     %6d -> %6d instructions (-%.2f%%)\n",
		res.OrigSize, res.CompSize, res.SizeReduction())
	fmt.Printf("  duration: %6d -> %6d clock cycles (-%.2f%%)\n",
		res.OrigDuration, res.CompDuration, res.DurationReduction())
	fmt.Printf("  FC:       %6.2f%% -> %6.2f%% (diff %+.2f)\n",
		res.OrigFC, res.CompFC, res.FCDiff())
	fmt.Printf("  Small Blocks removed: %d of %d\n", res.RemovedSBs, res.TotalSBs)

	// 5. The compacted PTP is a complete, runnable program.
	g, err := gpustl.NewGPU(gpustl.DefaultGPUConfig(), nil)
	if err != nil {
		log.Fatal(err)
	}
	out, err := g.Run(gpustl.Kernel{
		Prog:            res.Compacted.Prog,
		Blocks:          res.Compacted.Kernel.Blocks,
		ThreadsPerBlock: res.Compacted.Kernel.ThreadsPerBlock,
		GlobalBase:      res.Compacted.Data.Base,
		GlobalData:      res.Compacted.Data.Words,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncompacted PTP re-ran in %d cc; thread-0 signature: %#08x\n",
		out.Cycles, out.Global[0x10000/4])
}
