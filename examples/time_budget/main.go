// Time-budget compaction: the paper's motivation is that in-field test
// windows are short — "application constraints might limit the available
// execution time". This example uses CompactToBudget, the library's
// extension of the five-stage method, to fit one PTP into progressively
// tighter clock-cycle budgets and shows the coverage/time trade-off curve,
// still paying only one logic simulation and one fault simulation per
// point.
package main

import (
	"fmt"
	"log"

	"gpustl"
)

func main() {
	log.SetFlags(0)

	mod, err := gpustl.BuildModule(gpustl.ModuleDU)
	if err != nil {
		log.Fatal(err)
	}
	faults := gpustl.SampleFaults(mod, 4000, 5)
	ptp := gpustl.GenerateIMM(200, 5)

	// Reference: the unconstrained five-stage compaction.
	ref, err := gpustl.NewCompactor(gpustl.DefaultGPUConfig(), mod, faults,
		gpustl.CompactorOptions{}).CompactPTP(ptp)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PTP %s: %d instructions, %d cc, FC %.2f%%\n",
		ptp.Name, ref.OrigSize, ref.OrigDuration, ref.OrigFC)
	fmt.Printf("unconstrained compaction: %d cc, FC %.2f%%\n\n",
		ref.CompDuration, ref.CompFC)

	fmt.Printf("%-12s %12s %10s %10s\n", "budget", "achieved cc", "instrs", "FC (%)")
	for _, frac := range []float64{1.0, 0.5, 0.25, 0.10, 0.05} {
		budget := uint64(float64(ref.OrigDuration) * frac)
		c := gpustl.NewCompactor(gpustl.DefaultGPUConfig(), mod, faults,
			gpustl.CompactorOptions{})
		res, err := c.CompactToBudget(ptp, budget)
		if err != nil {
			fmt.Printf("%5.0f%% %35v\n", 100*frac, err)
			continue
		}
		fmt.Printf("%5.0f%% %19d %10d %10.2f\n",
			100*frac, res.CompDuration, res.CompSize, res.CompFC)
	}
	fmt.Println("\nThe curve shows the classic test-economics shape: most of the")
	fmt.Println("coverage survives even under a 10% time budget, because a few")
	fmt.Println("Small Blocks detect the bulk of the faults.")
}
