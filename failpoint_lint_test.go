package gpustl

import (
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"gpustl/internal/chaos"
	"gpustl/internal/failpoint"
)

// TestEveryFailpointIsTested lints the failpoint registry: every name
// registered by the packages this module links together must be
// referenced by at least one _test.go file somewhere in the repo. A
// failpoint nobody arms in a test is a fault path nobody has ever
// exercised — exactly the blind spot the registry exists to remove.
//
// (The failpoint package's own test-only names — "test.*"/"bench.*",
// registered from its _test.go files — exist only in that package's
// test binary and are invisible here, so this registry snapshot is
// exactly the production site list.)
func TestEveryFailpointIsTested(t *testing.T) {
	_, self, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("cannot locate repo root")
	}
	root := filepath.Dir(self)

	var tests []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == ".git" || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, "_test.go") && path != self {
			b, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			tests = append(tests, string(b))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tests) == 0 {
		t.Fatal("no _test.go files found under the repo root")
	}

	names := failpoint.Names()
	if len(names) == 0 {
		t.Fatal("no failpoints registered — did the import graph change?")
	}
	for _, name := range names {
		quoted := `"` + name + `"`
		found := false
		for _, src := range tests {
			if strings.Contains(src, quoted) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("failpoint %s is registered but no _test.go references %s", name, quoted)
		}
	}
}

// TestChaosSchedulesCoverEverySite: the canonical soak set must arm
// every registered failpoint — a site missing from every schedule
// never runs under `make chaos`.
func TestChaosSchedulesCoverEverySite(t *testing.T) {
	armed := map[string]bool{}
	for _, s := range chaos.Schedules() {
		for name := range s.Failpoints {
			armed[name] = true
		}
	}
	for _, name := range failpoint.Names() {
		if !armed[name] {
			t.Errorf("failpoint %s is not armed by any canonical chaos schedule", name)
		}
	}
}
