module gpustl

go 1.22
