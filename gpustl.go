// Package gpustl is a library for building, analyzing and — above all —
// compacting Self-Test Libraries (STLs) for GPU in-field testing. It is an
// open reimplementation of the method of Guerrero-Balaguera, Rodriguez
// Condia and Sonza Reorda, "A Compaction Method for STLs for GPU in-field
// test" (DATE 2022), together with every substrate the method needs:
//
//   - a FlexGripPlus-like SIMT GPU simulator with a 52-opcode SASS-like
//     ISA, an assembler, and per-cycle tracing hooks;
//   - gate-level models of the Decoder Unit, SP datapath and SFU datapath,
//     with a bit-parallel stuck-at fault simulator and a PODEM-based ATPG;
//   - the STL itself: pseudorandom and ATPG-derived Parallel Test Programs
//     (PTPs) following the paper's Table I recipes;
//   - the five-stage compaction method (partitioning, logic tracing, one
//     fault simulation + labeling, Small-Block reduction, reassembly) and
//     the iterative prior-work baseline it is compared against;
//   - experiment drivers that regenerate the paper's Tables I–III, the
//     whole-STL summary, and ablation studies.
//
// Quick start:
//
//	env, _ := gpustl.BuildEnv(gpustl.ParamsFor(gpustl.Small))
//	t2, _ := gpustl.TableII(env) // compacts IMM, MEM, CNTRL
//	t2.Render(os.Stdout, "Decoder Unit compaction")
//
// or, one PTP at a time:
//
//	mod, _ := gpustl.BuildModule(gpustl.ModuleDU)
//	comp := gpustl.NewCompactor(gpustl.DefaultGPUConfig(), mod,
//		gpustl.AllFaults(mod), gpustl.CompactorOptions{})
//	res, _ := comp.CompactPTP(gpustl.GenerateIMM(500, 1))
//	fmt.Printf("-%.2f%% size, FC %+.2f\n", res.SizeReduction(), res.FCDiff())
package gpustl

import (
	"context"
	"net/http"
	"time"

	"gpustl/internal/asm"
	"gpustl/internal/atpg"
	"gpustl/internal/baseline"
	"gpustl/internal/circuits"
	"gpustl/internal/core"
	"gpustl/internal/dist"
	"gpustl/internal/experiments"
	"gpustl/internal/fault"
	"gpustl/internal/gpu"
	"gpustl/internal/isa"
	"gpustl/internal/journal"
	"gpustl/internal/netlist"
	"gpustl/internal/obs"
	"gpustl/internal/overload"
	"gpustl/internal/ptpgen"
	"gpustl/internal/run"
	"gpustl/internal/signature"
	"gpustl/internal/stl"
	"gpustl/internal/trace"
	"gpustl/internal/vcde"
)

// ---------------------------------------------------------------------------
// ISA and assembler.

// Instruction is one decoded GPU instruction.
type Instruction = isa.Instruction

// Opcode identifies one of the 52 SASS-like instructions.
type Opcode = isa.Opcode

// Assemble parses assembly text into a program.
func Assemble(src string) ([]Instruction, error) { return asm.Assemble(src) }

// Disassemble renders a program as assembly text.
func Disassemble(prog []Instruction) string { return asm.Disassemble(prog) }

// ---------------------------------------------------------------------------
// GPU simulator.

// GPUConfig configures the simulated SM (lanes, memories, timing).
type GPUConfig = gpu.Config

// Kernel is a program plus launch configuration.
type Kernel = gpu.Kernel

// GPU is the FlexGripPlus-like simulator.
type GPU = gpu.GPU

// Monitor receives per-cycle execution events.
type Monitor = gpu.Monitor

// DefaultGPUConfig returns the paper's configuration: one SM, 8 SP cores,
// 2 SFUs.
func DefaultGPUConfig() GPUConfig { return gpu.DefaultConfig() }

// NewGPU creates a simulator; mon may be nil.
func NewGPU(cfg GPUConfig, mon Monitor) (*GPU, error) { return gpu.New(cfg, mon) }

// ---------------------------------------------------------------------------
// Gate-level modules and faults.

// ModuleKind selects a GPU module (DU, SP, SFU).
type ModuleKind = circuits.ModuleKind

// Module kinds.
const (
	ModuleDU   = circuits.ModuleDU
	ModuleSP   = circuits.ModuleSP
	ModuleSFU  = circuits.ModuleSFU
	ModuleFP32 = circuits.ModuleFP32
	ModulePIPE = circuits.ModulePIPE // sequential: fetch/decode pipeline registers
)

// Module is a gate-level netlist plus its lane count in the SM.
type Module = circuits.Module

// Fault is one stuck-at fault in one module lane.
type Fault = fault.Fault

// FaultCampaign is a persistent fault-simulation context with dropping.
type FaultCampaign = fault.Campaign

// GroupCoverage is the per-functional-group campaign outcome returned by
// FaultCampaign.CoverageByGroup.
type GroupCoverage = fault.GroupCoverage

// TimedPattern is a module test pattern with tracing metadata.
type TimedPattern = fault.TimedPattern

// SimOptions tunes a fault-simulation run.
type SimOptions = fault.SimOptions

// FaultSimReport is the Fault Sim Report of one simulation run.
type FaultSimReport = fault.Report

// BuildModule elaborates the gate-level model of a module with its default
// lane count (DU: 1, SP: 8, SFU: 2).
func BuildModule(kind ModuleKind) (*Module, error) { return circuits.Build(kind, 0) }

// AllFaults returns the module's full lane-expanded stuck-at fault list.
func AllFaults(m *Module) []Fault {
	return fault.ExpandLanes(fault.AllSites(m.NL), m.Lanes)
}

// SampleFaults returns a deterministic random sample of the module's
// faults, for tractable medium-scale campaigns.
func SampleFaults(m *Module, n int, seed int64) []Fault {
	c := fault.NewCampaign(m)
	c.SampleFaults(n, seed)
	return c.Faults()
}

// NewFaultCampaign creates a campaign over an explicit fault list.
func NewFaultCampaign(m *Module, faults []Fault) *FaultCampaign {
	return fault.NewCampaignWithFaults(m, faults)
}

// SeqFaultCampaign fault-simulates a sequential module (ModulePIPE):
// the pattern stream is one ordered test sequence and faulty state
// persists across clock cycles.
type SeqFaultCampaign = fault.SeqCampaign

// NewSeqFaultCampaign creates a sequential campaign over the module's
// stem stuck-at faults.
func NewSeqFaultCampaign(m *Module) (*SeqFaultCampaign, error) {
	return fault.NewSeqCampaign(m)
}

// ---------------------------------------------------------------------------
// STL model and generators.

// PTP is a Parallel Test Program.
type PTP = stl.PTP

// STL is an ordered set of PTPs.
type STL = stl.STL

// SB is a Small Block (the removal granularity of the reduction stage).
type SB = stl.SB

// Region is a half-open instruction index range.
type Region = stl.Region

// WritePTP / ReadPTP serialize a PTP as JSON with the program embedded as
// assembly text; WriteSTL / ReadSTL handle whole libraries.
var (
	WritePTP = stl.WritePTP
	ReadPTP  = stl.ReadPTP
	WriteSTL = stl.WriteSTL
	ReadSTL  = stl.ReadSTL
)

// WriteSTLFile writes an STL durably (fsync'd atomic replace) together
// with a CRC32C checksum sidecar; ReadSTLFile verifies the sidecar when
// present and tolerates its absence; VerifySTLFile only checks.
var (
	WriteSTLFile  = stl.WriteSTLFile
	ReadSTLFile   = stl.ReadSTLFile
	VerifySTLFile = stl.VerifySTLFile
)

// WriteFileAtomic writes a file durably: temp file in the same
// directory, fsync, rename over the destination, directory fsync. Every
// artifact writer in this module goes through it.
var WriteFileAtomic = journal.WriteFileAtomic

// SegmentSBs derives a Small Block structure from code, for externally
// authored PTPs without generator metadata.
func SegmentSBs(prog []Instruction, regions []Region) []SB {
	return stl.SegmentSBs(prog, regions)
}

// GenerateIMM builds the pseudorandom immediate-format DU PTP.
func GenerateIMM(numSBs int, seed int64) *PTP { return ptpgen.IMM(numSBs, seed) }

// GenerateMEM builds the memory-access DU PTP.
func GenerateMEM(numSBs int, seed int64) *PTP { return ptpgen.MEM(numSBs, seed) }

// GenerateCNTRL builds the control-flow DU PTP (1024 threads, parametric
// loops).
func GenerateCNTRL(sections int, seed int64) *PTP { return ptpgen.CNTRL(sections, seed) }

// GenerateRAND builds the pseudorandom SP-core PTP.
func GenerateRAND(numSBs int, seed int64) *PTP { return ptpgen.RAND(numSBs, seed) }

// GenerateFPRAND builds a pseudorandom PTP for the FP32 units (an
// extension beyond the paper's STL, enabled by the FP32 gate model).
func GenerateFPRAND(numSBs int, seed int64) *PTP { return ptpgen.FPRAND(numSBs, seed) }

// GenerateDIVG builds a divergence-stack test PTP: nested divergence on
// the thread-id bits to the given depth, fully protected from compaction
// (the control-unit STL parts the paper excludes).
func GenerateDIVG(depth, repeats int, seed int64) *PTP {
	return ptpgen.DIVG(depth, repeats, seed)
}

// ATPGOptions tunes the test pattern generator.
type ATPGOptions = atpg.Options

// ATPGResult is the outcome of a generation run.
type ATPGResult = atpg.Result

// DefaultATPGOptions returns a reasonable ATPG configuration.
func DefaultATPGOptions(seed int64) ATPGOptions { return atpg.DefaultOptions(seed) }

// GenerateATPG runs random-pattern + PODEM test generation on a module.
func GenerateATPG(m *Module, opt ATPGOptions) *ATPGResult { return atpg.Generate(m, opt) }

// StaticCompactPatterns performs classic reverse-order static test-set
// compaction, preserving the pattern set's coverage exactly.
var StaticCompactPatterns = atpg.StaticCompact

// ConvertTPGEN parses ATPG SP patterns into the TPGEN PTP; the second
// result counts patterns without an instruction equivalent.
func ConvertTPGEN(res *ATPGResult, seed int64) (*PTP, int) {
	return ptpgen.TPGEN(res.Patterns, seed)
}

// ConvertSFUIMM parses ATPG SFU patterns into the SFU_IMM PTP.
func ConvertSFUIMM(res *ATPGResult, seed int64) (*PTP, int) {
	return ptpgen.SFUIMM(res.Patterns, seed)
}

// ---------------------------------------------------------------------------
// Tracing.

// TraceCollector is the hardware-monitor equivalent: attach it to a GPU
// run to obtain the Tracing Report and the module test-pattern stream.
type TraceCollector = trace.Collector

// NewTraceCollector creates a collector extracting patterns for target.
func NewTraceCollector(target ModuleKind) *TraceCollector {
	return trace.NewCollector(target)
}

// GLReport summarizes a gate-level logic simulation of a pattern stream.
type GLReport = trace.GLReport

// VerifyGL replays an extracted pattern stream on the module's gate-level
// netlist and cross-checks the outputs against the golden reference — the
// paper's stage-2 gate-level logic simulation.
func VerifyGL(m *Module, patterns []TimedPattern) (*GLReport, error) {
	return trace.VerifyGL(m, patterns)
}

// ---------------------------------------------------------------------------
// The compaction method and the baseline.

// CompactorOptions tunes the five-stage method.
type CompactorOptions = core.Options

// Compactor runs the paper's five-stage compaction with a persistent
// (fault-dropping) campaign.
type Compactor = core.Compactor

// CompactionResult reports one PTP's compaction.
type CompactionResult = core.Result

// NewCompactor creates a compactor over the module's fault list. Besides
// CompactPTP (the paper's five stages), the Compactor offers
// CompactToBudget, which fits a PTP into a clock-cycle budget by greedy
// detections-per-cycle selection — an implemented extension of the paper's
// in-field time-constraint motivation.
func NewCompactor(cfg GPUConfig, m *Module, faults []Fault, opt CompactorOptions) *Compactor {
	return core.New(cfg, m, faults, opt)
}

// LabelDetail is the inspectable output of the Fig. 2 labeling algorithm,
// with per-warp attribution of fault detections to instructions.
type LabelDetail = core.LabelDetail

// LabelDetailed runs the labeling algorithm keeping per-warp detail.
var LabelDetailed = core.LabelDetailed

// Propagates computes, per instruction, whether its result can reach an
// observable point (backward liveness toward stores).
func Propagates(prog []Instruction) []bool { return core.Propagates(prog) }

// CollapseEquivalent removes structurally equivalent stuck-at faults.
var CollapseEquivalent = fault.CollapseEquivalent

// WriteVerilog emits a netlist as structural Verilog for external tools.
var WriteVerilog = netlist.WriteVerilog

// STLCompactionResult is the outcome of compacting a whole STL.
type STLCompactionResult = core.STLResult

// ModuleSet supplies modules and fault lists for STL-wide compaction.
type ModuleSet = core.ModuleSet

// NewModuleSet builds modules and (optionally sampled) fault lists for
// the module kinds an STL targets.
func NewModuleSet(lib *STL, sample int, seed int64) (*ModuleSet, error) {
	return core.NewModuleSet(lib, sample, seed)
}

// CompactWholeSTL runs the five-stage method over every candidate PTP,
// sharing one fault campaign per target module, and reassembles the STL;
// PTPs with no admissible regions pass through untouched.
func CompactWholeSTL(cfg GPUConfig, ms *ModuleSet, lib *STL, opt CompactorOptions) (*STLCompactionResult, error) {
	return core.CompactSTL(cfg, ms, lib, opt)
}

// Stage identifies one stage of the compaction pipeline, for stage
// hooks and failure attribution.
type Stage = core.Stage

// The pipeline stages, in execution order.
const (
	StagePartition  = core.StagePartition
	StageTrace      = core.StageTrace
	StageFaultSim   = core.StageFaultSim
	StageReduce     = core.StageReduce
	StageReassemble = core.StageReassemble
	StageEvaluate   = core.StageEvaluate
)

// StageError attributes a compaction failure to a pipeline stage.
type StageError = run.StageError

// RunnerOptions tunes the resilient STL runner: checkpoint directory,
// per-stage watchdog timeout, FC-safety tolerance, and stage hooks.
type RunnerOptions = run.Options

// RunReport is the outcome of a resilient STL compaction run.
type RunReport = run.Report

// RunOutcome is one PTP's row of a resilient run report.
type RunOutcome = run.Outcome

// RunStatus classifies one PTP's outcome in a resilient run.
type RunStatus = run.Status

// The per-PTP outcomes of a resilient run.
const (
	RunCompacted     = run.StatusCompacted
	RunRevertedError = run.StatusRevertedError
	RunRevertedFC    = run.StatusRevertedFC
	RunExcluded      = run.StatusExcluded
	RunQuarantined   = run.StatusQuarantined
)

// CompactWholeSTLResilient is CompactWholeSTL under the resilience
// layer: per-PTP panic isolation, cooperative cancellation through ctx,
// per-stage watchdog timeouts, a checksummed write-ahead journal for
// checkpoint/resume, a poison-PTP quarantine policy (crashing or
// stalling PTPs are retried up to RunnerOptions.MaxPTPRetries times,
// then kept in their original form while the run continues), and an
// FC-safety guard that keeps the original PTP when compaction fails or
// costs more coverage than the tolerance allows.
func CompactWholeSTLResilient(ctx context.Context, cfg GPUConfig, ms *ModuleSet,
	lib *STL, opt CompactorOptions, ropt RunnerOptions) (*RunReport, error) {
	return run.Run(ctx, cfg, ms, lib, opt, ropt)
}

// FsckReport is the outcome of a campaign-state integrity check.
type FsckReport = run.FsckReport

// FsckIssue is one integrity finding; FsckKind classifies it (CRC
// mismatch, torn tail, config-hash mismatch, PTP hash drift, artifact
// checksum failure, ...).
type (
	FsckIssue = run.FsckIssue
	FsckKind  = run.FsckKind
)

// FsckCampaign verifies the durable state of a checkpointed campaign —
// the write-ahead journal's record CRCs and schema, the config hash
// against wantHash (skipped when empty), the journaled PTP hashes
// against lib (skipped when nil), and each artifact's checksum sidecar —
// without modifying anything.
func FsckCampaign(dir, wantHash string, lib *STL, artifacts []string) (*FsckReport, error) {
	return run.Fsck(dir, wantHash, lib, artifacts)
}

// CampaignConfigHash fingerprints everything that determines a run's
// results; the resilient runner refuses to resume a journal written
// under a different hash, and FsckCampaign cross-checks it.
func CampaignConfigHash(cfg GPUConfig, ms *ModuleSet, lib *STL, opt CompactorOptions) (string, error) {
	return run.ConfigHash(cfg, ms, lib, opt)
}

// ---------------------------------------------------------------------------
// Distributed fault simulation.

// FaultSimulator abstracts the engine behind the compactor's fault
// simulations; set CompactorOptions.Simulator to replace the in-process
// engine (e.g. with a DistCoordinator).
type FaultSimulator = core.FaultSimulator

// DistCoordinator shards fault campaigns across worker transports with
// retries, hedging, heartbeat health checks and graceful degradation.
// Its SimulateCampaign method satisfies FaultSimulator.
type DistCoordinator = dist.Coordinator

// DistOptions tunes the coordinator's robustness machinery (attempts,
// backoff, deadlines, hedging, heartbeats, shard count).
type DistOptions = dist.Options

// DistResult is the outcome of one distributed campaign run, including
// the fault-coverage lower/upper bounds of a degraded (partially
// failed) run.
type DistResult = dist.Result

// WorkerTransport carries shard requests to one worker.
type WorkerTransport = dist.Transport

// NewDistCoordinator creates a coordinator over worker transports.
func NewDistCoordinator(opt DistOptions, workers ...WorkerTransport) (*DistCoordinator, error) {
	return dist.New(opt, workers...)
}

// NewLocalWorker returns an in-process worker transport (tests,
// single-machine distribution).
func NewLocalWorker(name string) WorkerTransport { return dist.NewLocal(name) }

// NewWorkerTransport returns an HTTP/JSON transport to a stlworker
// daemon at addr ("host:port" or a full URL).
func NewWorkerTransport(addr string) WorkerTransport { return dist.NewHTTP(addr) }

// NewWorkerHandler returns the worker daemon's HTTP handler (cmd/
// stlworker serves this; tests can mount it on httptest servers).
func NewWorkerHandler(name string, logf func(format string, args ...any)) http.Handler {
	return dist.NewHandler(name, logf)
}

// WorkerHandler is the worker daemon's handler with graceful-drain
// controls (StartDrain / DrainWait) for clean SIGTERM shutdown.
type WorkerHandler = dist.WorkerHandler

// NewWorkerHandlerMetrics is NewWorkerHandler with worker-side shard
// telemetry recorded into the given registry, returned as the concrete
// drainable handler.
func NewWorkerHandlerMetrics(name string, logf func(format string, args ...any), m *MetricsRegistry) *WorkerHandler {
	return dist.NewHandlerMetrics(name, logf, m)
}

// WorkerServiceOptions tunes the worker daemon's backpressure: bounded
// concurrency and accept queue, in-flight request-byte accounting, and
// the Retry-After hint sent with 429 bounces. The zero value disables
// every limit.
type WorkerServiceOptions = dist.WorkerOptions

// NewWorkerHandlerOptions is the fully tunable worker handler
// constructor: telemetry plus WorkerServiceOptions backpressure. A
// saturated worker answers 429 + Retry-After (the coordinator reroutes
// without charging a failure), reports not-ready on /readyz, and stays
// alive on /livez.
func NewWorkerHandlerOptions(name string, o WorkerServiceOptions) *WorkerHandler {
	return dist.NewHandlerOptions(name, o)
}

// ---------------------------------------------------------------------------
// Overload resilience: admission control, retry budgets, breakers.

// ErrOverloaded marks work shed by admission control rather than
// attempted: a fast, explicit refusal that left no partial artifact.
// Retry later (or resume a checkpointed campaign) once load eases.
var ErrOverloaded = overload.ErrOverloaded

// AdmissionPool is a weighted semaphore with a bounded FIFO wait queue
// and deadline-aware shedding — the campaign-level admission gate. Wire
// one into RunnerOptions.Admission and/or DistOptions.Admission; a nil
// pool admits everything instantly.
type AdmissionPool = overload.Admission

// AdmissionPoolOptions configures an AdmissionPool.
type AdmissionPoolOptions = overload.AdmissionOptions

// NewAdmissionPool creates an admission pool bounding the summed cost
// of concurrently admitted campaigns.
func NewAdmissionPool(o AdmissionPoolOptions) *AdmissionPool {
	return overload.NewAdmission(o)
}

// EstimateCampaignCost estimates one campaign's admission cost from its
// shape (gates × lanes × PTPs × pattern words). Costs are proportional
// across campaigns, not absolute bytes.
func EstimateCampaignCost(gates, lanes, ptps, patternWords int) int64 {
	return overload.CampaignCost(gates, lanes, ptps, patternWords)
}

// IsTransientFailure reports whether a campaign error is environmental
// and retry-worthy — an overload shed, an expired deadline or
// cancellation, a full disk — rather than corruption or a logic error.
// A transient failure on a checkpointed campaign means "re-run to
// resume", never "quarantine" or "fsck".
func IsTransientFailure(err error) bool { return journal.IsTransient(err) }

// ---------------------------------------------------------------------------
// Observability: metrics registry, span tracing, structured logging.

// MetricsRegistry is the process's metric namespace: counters, gauges
// and histograms with atomic hot paths, rendered as Prometheus text or
// an expvar-compatible JSON snapshot. A nil *MetricsRegistry (and every
// handle it returns) is a valid no-op, so instrumented code needs no
// conditionals.
type MetricsRegistry = obs.Registry

// MetricsSnapshot is a point-in-time copy of a registry's values.
type MetricsSnapshot = obs.Snapshot

// NewMetricsRegistry creates an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// MarshalMetrics renders a registry's current snapshot as indented
// JSON (the `stlcompact -metrics-out` format). A nil registry yields
// an empty snapshot.
func MarshalMetrics(r *MetricsRegistry) ([]byte, error) {
	return obs.MarshalSnapshot(r.Snapshot())
}

// SpanTracer records hierarchical campaign -> PTP -> stage -> shard
// spans and flushes them atomically as a JSONL trace file. A nil tracer
// is a valid no-op.
type SpanTracer = obs.Tracer

// TraceSpan is one in-flight span of a SpanTracer.
type TraceSpan = obs.Span

// TraceEvent is one line of a JSONL trace file.
type TraceEvent = obs.Event

// TraceSummary is the per-stage latency / critical-path digest of one
// campaign trace.
type TraceSummary = obs.TraceSummary

// NewSpanTracer creates a tracer whose Flush writes path.
func NewSpanTracer(path string) *SpanTracer { return obs.NewTracer(path) }

// SpanTracerOptions bounds a tracer's on-disk footprint: past MaxBytes
// the flushed file rotates (path.1 .. path.KeepFiles).
type SpanTracerOptions = obs.TracerOptions

// NewSpanTracerOptions creates a size-bounded, rotating tracer.
func NewSpanTracerOptions(path string, o SpanTracerOptions) *SpanTracer {
	return obs.NewTracerOptions(path, o)
}

// TraceContextHeader is the HTTP header carrying trace context between
// processes (`traceid-spanid-flags`, hex). Submits to stlserver and
// shard requests to stlworker both propagate it.
const TraceContextHeader = obs.TraceHeader

// TraceSpanContext is the propagated identity of one span — enough for
// a remote process to open child spans in the same campaign trace.
type TraceSpanContext = obs.SpanContext

// ParseTraceContext parses the TraceContextHeader wire format.
func ParseTraceContext(s string) (TraceSpanContext, error) { return obs.ParseTraceHeader(s) }

// ReadTraceFile parses a JSONL trace written by SpanTracer.Flush.
func ReadTraceFile(path string) ([]TraceEvent, error) { return obs.ReadTraceFile(path) }

// SummarizeTrace folds trace events into the per-stage summary.
func SummarizeTrace(events []TraceEvent) *TraceSummary { return obs.Summarize(events) }

// ProcessTrace is one process's trace file, named for the merge.
type ProcessTrace = obs.ProcessTrace

// MergedTrace is the fleet-wide view of one or more campaigns: every
// process's spans on one skew-corrected clock, linked into span trees
// via the propagated trace context. cmd/stltrace is a thin CLI over it.
type MergedTrace = obs.MergedTrace

// TraceCriticalPath decomposes one merged campaign's wall-clock into
// queue-wait / transport / simulate / verify / journal / orchestration
// self-time; the categories tile the wall exactly.
type TraceCriticalPath = obs.CriticalPathSummary

// MergeTraces merges per-process traces onto one corrected timeline,
// estimating per-process clock skew from RPC send/recv span pairs.
func MergeTraces(procs []ProcessTrace) (*MergedTrace, error) { return obs.MergeTraces(procs) }

// UsageMeter accumulates per-tenant consumption (campaigns, fault
// blocks, worker-seconds, cache hits/misses, journal bytes) as
// tenant-labeled counters; stlserver exposes it at GET /v1/usage.
type UsageMeter = obs.UsageMeter

// TenantUsage is one tenant's accumulated consumption snapshot.
type TenantUsage = obs.TenantUsage

// NewUsageMeter creates a usage meter recording into reg.
func NewUsageMeter(reg *MetricsRegistry) *UsageMeter { return obs.NewUsageMeter(reg) }

// SLO is one service-level objective: an objective ratio plus bad/total
// event counters read from the registry.
type SLO = obs.SLO

// SLOEngine samples SLOs on a fixed cadence and derives multi-window
// burn rates, published as gpustl_slo_* gauges and /debug/slo.
type SLOEngine = obs.SLOEngine

// SLOStatus is one objective's current burn-rate picture.
type SLOStatus = obs.SLOStatus

// NewSLOEngine creates an engine over the given objectives; windows
// default to 5m/30m/1h/6h.
func NewSLOEngine(reg *MetricsRegistry, slos []SLO, windows ...time.Duration) *SLOEngine {
	return obs.NewSLOEngine(reg, slos, windows...)
}

// LatencySLO builds an SLO over a latency histogram: good events are
// observations at or under threshold seconds.
var LatencySLO = obs.LatencySLO

// RatioSLO builds an SLO from explicit bad/total counter readers.
var RatioSLO = obs.RatioSLO

// RegisterBuildInfo publishes the gpustl_build_info gauge (component,
// version, Go version) every daemon exposes.
var RegisterBuildInfo = obs.RegisterBuildInfo

// MetricsLintProblem is one finding of LintMetricsText.
type MetricsLintProblem = obs.LintProblem

// LintMetricsText checks Prometheus text-format output for the
// promlint-style defects the repo's own exporters must not have.
var LintMetricsText = obs.LintPrometheusText

// NewDebugMux builds the operator endpoint a daemon serves on its
// metrics address: /metrics (Prometheus text), /debug/vars (expvar) and
// /debug/pprof/*.
func NewDebugMux(reg *MetricsRegistry, publishName string) *http.ServeMux {
	return obs.NewDebugMux(reg, publishName)
}

// NewDebugMuxSLO is NewDebugMux plus the SLO engine's /debug/slo page
// and burn-rate gauges; /metrics also answers OpenMetrics (with
// histogram exemplars linking buckets to trace IDs) when the scraper
// asks for it via Accept.
func NewDebugMuxSLO(reg *MetricsRegistry, publishName string, slo *SLOEngine) *http.ServeMux {
	return obs.NewDebugMuxSLO(reg, publishName, slo)
}

// BaselineCompactor is the iterative prior-work method (one fault
// simulation per candidate removal).
type BaselineCompactor = baseline.Compactor

// BaselineResult reports an iterative compaction run.
type BaselineResult = baseline.Result

// NewBaseline creates the iterative baseline compactor.
func NewBaseline(cfg GPUConfig, m *Module, faults []Fault) *BaselineCompactor {
	return baseline.New(cfg, m, faults)
}

// ---------------------------------------------------------------------------
// Signatures.

// SignatureFold is one Signature-per-Thread update step (rotate-left-1
// XOR), as the generated PTPs compute it.
func SignatureFold(sig, value uint32) uint32 { return signature.Fold(sig, value) }

// MISR is a 32-bit multiple-input signature register.
type MISR = signature.MISR

// NewMISR creates a MISR (poly 0 selects the default polynomial).
func NewMISR(seed, poly uint32) *MISR { return signature.NewMISR(seed, poly) }

// ---------------------------------------------------------------------------
// Pattern files.

// VCDEHeader describes a pattern file.
type VCDEHeader = vcde.Header

// WriteVCDE and ReadVCDE serialize pattern streams in the VCDE-like text
// format used between the tracing stage and the fault injector.
var (
	WriteVCDE = vcde.Write
	ReadVCDE  = vcde.Read
)

// ---------------------------------------------------------------------------
// Experiments (paper tables).

// Scale selects the experiment size (Small, Medium, Paper).
type Scale = experiments.Scale

// Experiment scales.
const (
	Small  = experiments.Small
	Medium = experiments.Medium
	Paper  = experiments.Paper
)

// ExperimentParams holds the experiment knobs.
type ExperimentParams = experiments.Params

// Env is a built experiment environment (modules, faults, the six PTPs).
type Env = experiments.Env

// ParamsFor returns a scale's default parameters.
func ParamsFor(s Scale) ExperimentParams { return experiments.ParamsFor(s) }

// ScaleByName parses "small", "medium" or "paper".
func ScaleByName(name string) (Scale, error) { return experiments.ScaleByName(name) }

// BuildEnv constructs the experiment environment.
func BuildEnv(p ExperimentParams) (*Env, error) { return experiments.BuildEnv(p) }

// TableIResult holds the Table I rows.
type TableIResult = experiments.TableIResult

// CompactionTables holds the rows of Table II or Table III.
type CompactionTables = experiments.CompactionResult

// STLSummaryResult holds the whole-STL summary claims.
type STLSummaryResult = experiments.STLSummaryResult

// AblationResult holds the ablation studies.
type AblationResult = experiments.AblationResult

// BaselineCompareResult holds the proposed-vs-baseline cost comparison.
type BaselineCompareResult = experiments.BaselineCompareResult

// ExtensionsResult holds the beyond-the-paper studies (FP32 compaction,
// sequential pipeline-register coverage).
type ExtensionsResult = experiments.ExtensionsResult

// Experiment drivers, one per paper artifact.
var (
	TableI          = experiments.TableI
	TableII         = experiments.TableII
	TableIII        = experiments.TableIII
	STLSummary      = experiments.STLSummary
	Ablations       = experiments.Ablations
	BaselineCompare = experiments.BaselineCompare
	Extensions      = experiments.Extensions
)
