package gpustl

import (
	"bytes"
	"strings"
	"testing"
)

// TestFacadeEndToEnd exercises the public API the way the README's
// quickstart does: build a module, generate a PTP, compact it, and check
// the result.
func TestFacadeEndToEnd(t *testing.T) {
	mod, err := BuildModule(ModuleDU)
	if err != nil {
		t.Fatal(err)
	}
	faults := SampleFaults(mod, 2000, 1)
	if len(faults) != 2000 {
		t.Fatalf("sampled %d faults", len(faults))
	}
	comp := NewCompactor(DefaultGPUConfig(), mod, faults, CompactorOptions{})
	res, err := comp.CompactPTP(GenerateIMM(40, 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.SizeReduction() <= 0 {
		t.Errorf("no compaction: %.2f%%", res.SizeReduction())
	}
}

func TestFacadeAssembler(t *testing.T) {
	prog, err := Assemble("MVI R1, 42\nGST [R0+0], R1\nEXIT")
	if err != nil {
		t.Fatal(err)
	}
	text := Disassemble(prog)
	if !strings.Contains(text, "MVI R1, 42") {
		t.Errorf("disassembly: %q", text)
	}
	g, err := NewGPU(DefaultGPUConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	out, err := g.Run(Kernel{Prog: prog, Blocks: 1, ThreadsPerBlock: 32})
	if err != nil {
		t.Fatal(err)
	}
	if out.Global[0] != 42 {
		t.Errorf("kernel stored %d", out.Global[0])
	}
}

func TestFacadeATPGAndConvert(t *testing.T) {
	mod, err := BuildModule(ModuleSP)
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultATPGOptions(1)
	opt.SampleFaults = 600
	opt.UsePodem = false
	res := GenerateATPG(mod, opt)
	if len(res.Patterns) == 0 {
		t.Fatal("no ATPG patterns")
	}
	ptp, _ := ConvertTPGEN(res, 1)
	if len(ptp.Prog) == 0 {
		t.Fatal("empty TPGEN")
	}
}

func TestFacadeSignature(t *testing.T) {
	if SignatureFold(0, 5) != 5 {
		t.Error("fold")
	}
	m := NewMISR(1, 0)
	m.Update(2)
	if m.Value() == 1 {
		t.Error("MISR did not advance")
	}
}

func TestFacadeWholeSTL(t *testing.T) {
	lib := &STL{PTPs: []*PTP{
		GenerateIMM(15, 1),
		GenerateDIVG(3, 1, 2),
	}}
	ms, err := NewModuleSet(lib, 1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := CompactWholeSTL(DefaultGPUConfig(), ms, lib, CompactorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Excluded != 1 || res.SizeReduction() <= 0 {
		t.Fatalf("excluded=%d reduction=%.2f", res.Excluded, res.SizeReduction())
	}
}

func TestFacadeSequentialCampaign(t *testing.T) {
	pipe, err := BuildModule(ModulePIPE)
	if err != nil {
		t.Fatal(err)
	}
	camp, err := NewSeqFaultCampaign(pipe)
	if err != nil {
		t.Fatal(err)
	}
	if camp.Total() == 0 {
		t.Fatal("empty sequential fault list")
	}
}

func TestFacadeVCDE(t *testing.T) {
	var buf bytes.Buffer
	h := VCDEHeader{Module: ModuleSP, Lanes: 8, Inputs: 103}
	if err := WriteVCDE(&buf, h, nil); err != nil {
		t.Fatal(err)
	}
	h2, pats, err := ReadVCDE(&buf)
	if err != nil || h2 != h || len(pats) != 0 {
		t.Fatalf("round trip: %+v %d %v", h2, len(pats), err)
	}
}

// TestReadSTLMalformed drives ReadSTL through the broken inputs an
// operator can plausibly produce — a truncated file, an unknown target
// module, an empty library, duplicate PTP names — and demands a
// descriptive error for each, never a panic.
func TestReadSTLMalformed(t *testing.T) {
	valid := `{"name":"x","target":"DU","kernel":{"Blocks":1,"ThreadsPerBlock":32},"program":"EXIT"}`
	cases := []struct {
		name, src, want string
	}{
		{"empty input", "", "decoding STL"},
		{"truncated JSON", `{"ptps":[{"name":"x","tar`, "decoding STL"},
		{"unknown module kind", `{"ptps":[{"name":"x","target":"GX9","kernel":{"Blocks":1,"ThreadsPerBlock":32},"program":"EXIT"}]}`, "unknown target module"},
		{"empty PTP list", `{"ptps":[]}`, "no PTPs"},
		{"missing ptps key", `{}`, "no PTPs"},
		{"duplicate PTP names", `{"ptps":[` + valid + `,` + valid + `]}`, "duplicate PTP name"},
	}
	for _, tc := range cases {
		_, err := ReadSTL(strings.NewReader(tc.src))
		if err == nil {
			t.Errorf("%s: ReadSTL succeeded", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}

	// The valid single-PTP library still loads.
	lib, err := ReadSTL(strings.NewReader(`{"ptps":[` + valid + `]}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(lib.PTPs) != 1 || lib.PTPs[0].Name != "x" {
		t.Fatalf("library: %+v", lib.PTPs)
	}
}
