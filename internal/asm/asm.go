// Package asm implements a textual assembler and disassembler for the
// SASS-like ISA in package isa.
//
// The accepted syntax, one instruction per line:
//
//	; full-line comment (also # and //)
//	start:                      ; label
//	    MVI   R1, 0x10          ; immediate move
//	    IADD  R3, R1, R2        ; register format
//	    ISETI R5, R4, 100, LT, P1
//	    @P1  BRA start          ; guarded branch to a label
//	    @!P0 IADDI R1, R1, 1    ; inverted guard
//	    GLD  R2, [R1+16]        ; memory operand
//	    GST  [R1+16], R2
//	    S2R  R0, SR_TID
//	    EXIT
//
// Branch-like instructions (SSY, BRA, CAL) take a label or a numeric
// displacement; labels are resolved to relative displacements in
// instruction units.
package asm

import (
	"fmt"
	"strconv"
	"strings"

	"gpustl/internal/isa"
)

// Error describes an assembly failure with its source line number.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg) }

func errf(line int, format string, args ...any) error {
	return &Error{Line: line, Msg: fmt.Sprintf(format, args...)}
}

var specialRegs = map[string]int32{
	"SR_TID":   isa.SRTid,
	"SR_NTID":  isa.SRNTid,
	"SR_CTAID": isa.SRCTAid,
	"SR_WARP":  isa.SRWarp,
	"SR_LANE":  isa.SRLane,
}

var specialRegNames = map[int32]string{
	isa.SRTid:   "SR_TID",
	isa.SRNTid:  "SR_NTID",
	isa.SRCTAid: "SR_CTAID",
	isa.SRWarp:  "SR_WARP",
	isa.SRLane:  "SR_LANE",
}

// Assemble parses the program text and returns the instruction sequence.
func Assemble(src string) ([]isa.Instruction, error) {
	lines := strings.Split(src, "\n")

	type pending struct {
		srcLine int
		pc      int
		label   string
	}
	var (
		prog    []isa.Instruction
		labels  = make(map[string]int)
		fixups  []pending
		lineNum int
	)
	for _, raw := range lines {
		lineNum++
		line := stripComment(raw)
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// Labels, possibly followed by an instruction on the same line.
		for {
			colon := strings.Index(line, ":")
			if colon < 0 {
				break
			}
			name := strings.TrimSpace(line[:colon])
			if !isIdent(name) {
				return nil, errf(lineNum, "invalid label %q", name)
			}
			if _, dup := labels[name]; dup {
				return nil, errf(lineNum, "duplicate label %q", name)
			}
			labels[name] = len(prog)
			line = strings.TrimSpace(line[colon+1:])
			if line == "" {
				break
			}
		}
		if line == "" {
			continue
		}
		in, labelRef, err := parseInstruction(line, lineNum)
		if err != nil {
			return nil, err
		}
		if labelRef != "" {
			fixups = append(fixups, pending{lineNum, len(prog), labelRef})
		}
		prog = append(prog, in)
	}
	for _, f := range fixups {
		target, ok := labels[f.label]
		if !ok {
			return nil, errf(f.srcLine, "undefined label %q", f.label)
		}
		// Displacement is relative to the next instruction.
		prog[f.pc].Imm = int32(target - (f.pc + 1))
	}
	return prog, nil
}

func stripComment(line string) string {
	for _, marker := range []string{";", "#", "//"} {
		if i := strings.Index(line, marker); i >= 0 {
			line = line[:i]
		}
	}
	return line
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == '.':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// parseInstruction parses one instruction line. It returns the instruction
// and, for label-referencing branches, the label name to fix up.
func parseInstruction(line string, lineNum int) (isa.Instruction, string, error) {
	in := isa.Instruction{Pg: isa.PredAlways, PSense: true}

	// Optional @P guard prefix.
	if strings.HasPrefix(line, "@") {
		sp := strings.IndexAny(line, " \t")
		if sp < 0 {
			return in, "", errf(lineNum, "guard with no instruction")
		}
		guard := line[1:sp]
		line = strings.TrimSpace(line[sp:])
		sense := true
		if strings.HasPrefix(guard, "!") {
			sense = false
			guard = guard[1:]
		}
		p, err := parsePred(guard)
		if err != nil {
			return in, "", errf(lineNum, "%v", err)
		}
		in.Pg, in.PSense = p, sense
	}

	sp := strings.IndexAny(line, " \t")
	mnem := line
	rest := ""
	if sp >= 0 {
		mnem = line[:sp]
		rest = strings.TrimSpace(line[sp:])
	}
	op, ok := isa.OpcodeByName(strings.ToUpper(mnem))
	if !ok {
		return in, "", errf(lineNum, "unknown mnemonic %q", mnem)
	}
	in.Op = op

	ops := splitOperands(rest)
	lbl, err := parseOperands(&in, ops, lineNum)
	return in, lbl, err
}

func splitOperands(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func parseReg(s string) (uint8, error) {
	if len(s) < 2 || (s[0] != 'R' && s[0] != 'r') {
		return 0, fmt.Errorf("expected register, got %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n >= isa.NumGPR {
		return 0, fmt.Errorf("bad register %q", s)
	}
	return uint8(n), nil
}

func parsePred(s string) (uint8, error) {
	if len(s) != 2 || (s[0] != 'P' && s[0] != 'p') {
		return 0, fmt.Errorf("expected predicate register, got %q", s)
	}
	n := int(s[1] - '0')
	if n < 0 || n >= isa.NumPred {
		return 0, fmt.Errorf("bad predicate %q", s)
	}
	return uint8(n), nil
}

func parseImm(s string) (int32, error) {
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad immediate %q", s)
	}
	if v > 0xffffffff || v < -0x80000000 {
		return 0, fmt.Errorf("immediate %q out of 32-bit range", s)
	}
	return int32(uint32(v)), nil
}

// parseMem parses "[Rn+off]" or "[Rn]" memory operands.
func parseMem(s string) (uint8, int32, error) {
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return 0, 0, fmt.Errorf("expected memory operand [Rn+off], got %q", s)
	}
	body := s[1 : len(s)-1]
	reg := body
	off := ""
	if i := strings.IndexAny(body, "+-"); i > 0 {
		reg, off = body[:i], body[i:]
	}
	r, err := parseReg(strings.TrimSpace(reg))
	if err != nil {
		return 0, 0, err
	}
	var imm int32
	if off != "" {
		imm, err = parseImm(strings.TrimSpace(strings.TrimPrefix(off, "+")))
		if err != nil {
			return 0, 0, err
		}
	}
	return r, imm, nil
}

func parseCond(s string) (isa.Cond, error) {
	for c := isa.Cond(0); int(c) < isa.NumConds; c++ {
		if strings.EqualFold(c.String(), s) {
			return c, nil
		}
	}
	return 0, fmt.Errorf("bad condition %q", s)
}

func parseOperands(in *isa.Instruction, ops []string, line int) (string, error) {
	need := func(n int) error {
		if len(ops) != n {
			return errf(line, "%v expects %d operands, got %d", in.Op, n, len(ops))
		}
		return nil
	}
	var err error
	switch in.Op {
	case isa.OpNOP, isa.OpRET, isa.OpEXIT, isa.OpBAR:
		return "", need(0)

	case isa.OpMOV, isa.OpNOT, isa.OpINEG,
		isa.OpF2I, isa.OpI2F,
		isa.OpRCP, isa.OpRSQ, isa.OpSIN, isa.OpCOS, isa.OpLG2, isa.OpEX2:
		if err = need(2); err != nil {
			return "", err
		}
		if in.Rd, err = parseReg(ops[0]); err != nil {
			return "", errf(line, "%v", err)
		}
		if in.Ra, err = parseReg(ops[1]); err != nil {
			return "", errf(line, "%v", err)
		}
		return "", nil

	case isa.OpMVI:
		if err = need(2); err != nil {
			return "", err
		}
		if in.Rd, err = parseReg(ops[0]); err != nil {
			return "", errf(line, "%v", err)
		}
		if in.Imm, err = parseImm(ops[1]); err != nil {
			return "", errf(line, "%v", err)
		}
		return "", nil

	case isa.OpS2R:
		if err = need(2); err != nil {
			return "", err
		}
		if in.Rd, err = parseReg(ops[0]); err != nil {
			return "", errf(line, "%v", err)
		}
		sr, ok := specialRegs[strings.ToUpper(ops[1])]
		if !ok {
			return "", errf(line, "unknown special register %q", ops[1])
		}
		in.Imm = sr
		return "", nil

	case isa.OpIADD, isa.OpISUB, isa.OpIMUL, isa.OpIMAD, isa.OpIMIN, isa.OpIMAX,
		isa.OpAND, isa.OpOR, isa.OpXOR, isa.OpSHL, isa.OpSHR,
		isa.OpFADD, isa.OpFMUL, isa.OpFFMA, isa.OpFMIN, isa.OpFMAX:
		if err = need(3); err != nil {
			return "", err
		}
		if in.Rd, err = parseReg(ops[0]); err != nil {
			return "", errf(line, "%v", err)
		}
		if in.Ra, err = parseReg(ops[1]); err != nil {
			return "", errf(line, "%v", err)
		}
		if in.Rb, err = parseReg(ops[2]); err != nil {
			return "", errf(line, "%v", err)
		}
		return "", nil

	case isa.OpIADDI, isa.OpISUBI, isa.OpIMULI, isa.OpANDI, isa.OpORI,
		isa.OpXORI, isa.OpSHLI, isa.OpSHRI:
		if err = need(3); err != nil {
			return "", err
		}
		if in.Rd, err = parseReg(ops[0]); err != nil {
			return "", errf(line, "%v", err)
		}
		if in.Ra, err = parseReg(ops[1]); err != nil {
			return "", errf(line, "%v", err)
		}
		if in.Imm, err = parseImm(ops[2]); err != nil {
			return "", errf(line, "%v", err)
		}
		return "", nil

	case isa.OpISET, isa.OpFSET:
		// ISET Rd, Ra, Rb, COND, Pd
		if err = need(5); err != nil {
			return "", err
		}
		if in.Rd, err = parseReg(ops[0]); err != nil {
			return "", errf(line, "%v", err)
		}
		if in.Ra, err = parseReg(ops[1]); err != nil {
			return "", errf(line, "%v", err)
		}
		if in.Rb, err = parseReg(ops[2]); err != nil {
			return "", errf(line, "%v", err)
		}
		if in.Cond, err = parseCond(ops[3]); err != nil {
			return "", errf(line, "%v", err)
		}
		p, err := parsePred(ops[4])
		if err != nil {
			return "", errf(line, "%v", err)
		}
		in.Pd = p & 1
		return "", nil

	case isa.OpISETI:
		// ISETI Rd, Ra, imm, COND, Pd
		if err = need(5); err != nil {
			return "", err
		}
		if in.Rd, err = parseReg(ops[0]); err != nil {
			return "", errf(line, "%v", err)
		}
		if in.Ra, err = parseReg(ops[1]); err != nil {
			return "", errf(line, "%v", err)
		}
		if in.Imm, err = parseImm(ops[2]); err != nil {
			return "", errf(line, "%v", err)
		}
		if in.Cond, err = parseCond(ops[3]); err != nil {
			return "", errf(line, "%v", err)
		}
		p, err := parsePred(ops[4])
		if err != nil {
			return "", errf(line, "%v", err)
		}
		in.Pd = p & 1
		return "", nil

	case isa.OpGLD, isa.OpSLD, isa.OpLDC:
		// GLD Rd, [Ra+off]
		if err = need(2); err != nil {
			return "", err
		}
		if in.Rd, err = parseReg(ops[0]); err != nil {
			return "", errf(line, "%v", err)
		}
		if in.Ra, in.Imm, err = parseMem(ops[1]); err != nil {
			return "", errf(line, "%v", err)
		}
		return "", nil

	case isa.OpGST, isa.OpSST:
		// GST [Ra+off], Rb
		if err = need(2); err != nil {
			return "", err
		}
		if in.Ra, in.Imm, err = parseMem(ops[0]); err != nil {
			return "", errf(line, "%v", err)
		}
		if in.Rb, err = parseReg(ops[1]); err != nil {
			return "", errf(line, "%v", err)
		}
		return "", nil

	case isa.OpSSY, isa.OpBRA, isa.OpCAL:
		if err = need(1); err != nil {
			return "", err
		}
		if isIdent(ops[0]) {
			return ops[0], nil // label fixup
		}
		if in.Imm, err = parseImm(ops[0]); err != nil {
			return "", errf(line, "%v", err)
		}
		return "", nil
	}
	return "", errf(line, "unhandled opcode %v", in.Op)
}

// Disassemble renders the program as assembly text, one instruction per
// line, with branch displacements shown numerically.
func Disassemble(prog []isa.Instruction) string {
	var b strings.Builder
	for _, in := range prog {
		b.WriteString(Format(in))
		b.WriteByte('\n')
	}
	return b.String()
}

// Format renders a single instruction in the assembler's input syntax.
func Format(in isa.Instruction) string {
	var b strings.Builder
	if in.Pg != isa.PredAlways {
		if in.PSense {
			fmt.Fprintf(&b, "@P%d ", in.Pg)
		} else {
			fmt.Fprintf(&b, "@!P%d ", in.Pg)
		}
	}
	b.WriteString(in.Op.String())
	switch in.Op {
	case isa.OpNOP, isa.OpRET, isa.OpEXIT, isa.OpBAR:
	case isa.OpMOV, isa.OpNOT, isa.OpINEG, isa.OpF2I, isa.OpI2F,
		isa.OpRCP, isa.OpRSQ, isa.OpSIN, isa.OpCOS, isa.OpLG2, isa.OpEX2:
		fmt.Fprintf(&b, " R%d, R%d", in.Rd, in.Ra)
	case isa.OpMVI:
		fmt.Fprintf(&b, " R%d, %d", in.Rd, in.Imm)
	case isa.OpS2R:
		name, ok := specialRegNames[in.Imm]
		if !ok {
			name = fmt.Sprintf("SR_%d", in.Imm)
		}
		fmt.Fprintf(&b, " R%d, %s", in.Rd, name)
	case isa.OpIADD, isa.OpISUB, isa.OpIMUL, isa.OpIMAD, isa.OpIMIN,
		isa.OpIMAX, isa.OpAND, isa.OpOR, isa.OpXOR, isa.OpSHL, isa.OpSHR,
		isa.OpFADD, isa.OpFMUL, isa.OpFFMA, isa.OpFMIN, isa.OpFMAX:
		fmt.Fprintf(&b, " R%d, R%d, R%d", in.Rd, in.Ra, in.Rb)
	case isa.OpIADDI, isa.OpISUBI, isa.OpIMULI, isa.OpANDI, isa.OpORI,
		isa.OpXORI, isa.OpSHLI, isa.OpSHRI:
		fmt.Fprintf(&b, " R%d, R%d, %d", in.Rd, in.Ra, in.Imm)
	case isa.OpISET, isa.OpFSET:
		fmt.Fprintf(&b, " R%d, R%d, R%d, %v, P%d", in.Rd, in.Ra, in.Rb, in.Cond, in.Pd)
	case isa.OpISETI:
		fmt.Fprintf(&b, " R%d, R%d, %d, %v, P%d", in.Rd, in.Ra, in.Imm, in.Cond, in.Pd)
	case isa.OpGLD, isa.OpSLD, isa.OpLDC:
		fmt.Fprintf(&b, " R%d, [R%d+%d]", in.Rd, in.Ra, in.Imm)
	case isa.OpGST, isa.OpSST:
		fmt.Fprintf(&b, " [R%d+%d], R%d", in.Ra, in.Imm, in.Rb)
	case isa.OpSSY, isa.OpBRA, isa.OpCAL:
		fmt.Fprintf(&b, " %d", in.Imm)
	}
	return b.String()
}
