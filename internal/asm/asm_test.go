package asm

import (
	"math/rand"
	"strings"
	"testing"

	"gpustl/internal/isa"
)

func mustAssemble(t *testing.T, src string) []isa.Instruction {
	t.Helper()
	prog, err := Assemble(src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	return prog
}

func TestAssembleBasic(t *testing.T) {
	prog := mustAssemble(t, `
		; a tiny kernel
		MVI  R1, 5
		MVI  R2, 0x10
		IADD R3, R1, R2
		GST  [R3+4], R1
		EXIT
	`)
	if len(prog) != 5 {
		t.Fatalf("len = %d, want 5", len(prog))
	}
	if prog[0].Op != isa.OpMVI || prog[0].Rd != 1 || prog[0].Imm != 5 {
		t.Errorf("instr 0 = %+v", prog[0])
	}
	if prog[2].Op != isa.OpIADD || prog[2].Rd != 3 || prog[2].Ra != 1 || prog[2].Rb != 2 {
		t.Errorf("instr 2 = %+v", prog[2])
	}
	if prog[3].Op != isa.OpGST || prog[3].Ra != 3 || prog[3].Imm != 4 || prog[3].Rb != 1 {
		t.Errorf("instr 3 = %+v", prog[3])
	}
}

func TestAssembleLabels(t *testing.T) {
	prog := mustAssemble(t, `
	start:
		IADDI R1, R1, 1
		ISETI R2, R1, 10, LT, P0
		@P0 BRA start
		EXIT
	`)
	if prog[2].Op != isa.OpBRA {
		t.Fatalf("instr 2 op = %v", prog[2].Op)
	}
	// Branch at pc=2, target=0 → displacement relative to pc+1 is -3.
	if prog[2].Imm != -3 {
		t.Errorf("branch displacement = %d, want -3", prog[2].Imm)
	}
	if prog[2].Pg != 0 || !prog[2].PSense {
		t.Errorf("guard = P%d sense=%v", prog[2].Pg, prog[2].PSense)
	}
}

func TestAssembleForwardLabelAndNegGuard(t *testing.T) {
	prog := mustAssemble(t, `
		ISETI R2, R1, 0, EQ, P1
		@!P1 BRA done
		MVI R5, 1
	done:
		EXIT
	`)
	if prog[1].Imm != 1 { // from pc=1, target pc=3, rel to 2 → +1
		t.Errorf("forward displacement = %d, want 1", prog[1].Imm)
	}
	if prog[1].Pg != 1 || prog[1].PSense {
		t.Errorf("guard = P%d sense=%v, want !P1", prog[1].Pg, prog[1].PSense)
	}
}

func TestAssembleS2RAndSpecial(t *testing.T) {
	prog := mustAssemble(t, "S2R R0, SR_TID\nS2R R1, SR_CTAID\nBAR\nRET")
	if prog[0].Imm != isa.SRTid || prog[1].Imm != isa.SRCTAid {
		t.Errorf("special registers: %d %d", prog[0].Imm, prog[1].Imm)
	}
}

func TestAssembleISET(t *testing.T) {
	prog := mustAssemble(t, "ISET R1, R2, R3, GE, P1\nFSET R4, R5, R6, NE, P0")
	if prog[0].Cond != isa.CondGE || prog[0].Pd != 1 {
		t.Errorf("ISET parsed %+v", prog[0])
	}
	if prog[1].Cond != isa.CondNE || prog[1].Pd != 0 {
		t.Errorf("FSET parsed %+v", prog[1])
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []string{
		"BOGUS R1, R2",
		"IADD R1, R2",             // wrong arity
		"MVI R99, 1",              // bad register
		"BRA nowhere",             // undefined label
		"x: x: EXIT",              // duplicate label (same line)
		"GLD R1, R2",              // missing brackets
		"ISETI R1, R2, 3, XX, P0", // bad cond
		"@P9 EXIT",                // bad guard
		"MVI R1, 0x1ffffffff",     // imm out of range
		"1bad: EXIT",              // invalid label
	}
	for _, src := range cases {
		if _, err := Assemble(src); err == nil {
			t.Errorf("Assemble(%q) succeeded, want error", src)
		}
	}
}

func TestAssembleErrorHasLine(t *testing.T) {
	_, err := Assemble("NOP\nNOP\nBOGUS\n")
	aerr, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type %T, want *Error", err)
	}
	if aerr.Line != 3 {
		t.Errorf("error line = %d, want 3", aerr.Line)
	}
	if !strings.Contains(aerr.Error(), "line 3") {
		t.Errorf("error text %q lacks line info", aerr.Error())
	}
}

func TestDisassembleRoundTrip(t *testing.T) {
	src := `
		MVI R1, 5
		MVI R2, -7
		IADD R3, R1, R2
		IMAD R4, R3, R1
		NOT R6, R3
		SHLI R7, R6, 3
		ISETI R8, R7, 64, GT, P1
		@P1 IADDI R9, R9, 1
		@!P0 MOV R10, R9
		S2R R0, SR_TID
		GLD R11, [R0+128]
		SST [R0+0], R11
		LDC R12, [R0+8]
		SIN R13, R12
		FFMA R14, R13, R12
		SSY 2
		BRA 1
		BAR
		EXIT
	`
	prog := mustAssemble(t, src)
	text := Disassemble(prog)
	prog2 := mustAssemble(t, text)
	if len(prog) != len(prog2) {
		t.Fatalf("round trip length %d != %d", len(prog2), len(prog))
	}
	for i := range prog {
		if prog[i] != prog2[i] {
			t.Errorf("instr %d: %+v != %+v\ntext: %s", i, prog[i], prog2[i], Format(prog[i]))
		}
	}
}

// TestFormatAssembleProperty checks Assemble(Format(x)) == x for random
// well-formed instructions of every non-branch opcode.
func TestFormatAssembleProperty(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 3000; trial++ {
		in := isa.Instruction{
			Op:     isa.Opcode(r.Intn(isa.NumOpcodes)),
			Rd:     uint8(r.Intn(isa.NumGPR)),
			Ra:     uint8(r.Intn(isa.NumGPR)),
			Rb:     uint8(r.Intn(isa.NumGPR)),
			Imm:    int32(r.Uint32()),
			Cond:   isa.Cond(r.Intn(isa.NumConds)),
			Pd:     uint8(r.Intn(2)),
			Pg:     isa.PredAlways,
			PSense: true,
		}
		if r.Intn(2) == 0 {
			in.Pg = uint8(r.Intn(isa.NumPred))
		}
		if in.Pg != isa.PredAlways {
			in.PSense = r.Intn(2) == 1
		}
		// Normalize fields the textual format does not carry for this op.
		canon := canonical(in)
		text := Format(canon)
		prog, err := Assemble(text)
		if err != nil {
			t.Fatalf("Assemble(Format(%+v)) = %q: %v", canon, text, err)
		}
		if len(prog) != 1 || prog[0] != canon {
			t.Fatalf("property failed:\n in: %+v\ntxt: %s\nout: %+v", canon, text, prog[0])
		}
	}
}

// canonical zeroes instruction fields that the opcode's textual syntax does
// not express, so Format/Assemble round trips are comparable.
func canonical(in isa.Instruction) isa.Instruction {
	out := isa.Instruction{Op: in.Op, Pg: in.Pg, PSense: in.PSense}
	op := in.Op
	if isa.WritesRd(op) {
		out.Rd = in.Rd
	}
	if isa.ReadsRa(op) || op == isa.OpGST || op == isa.OpSST {
		out.Ra = in.Ra
	}
	if isa.ReadsRb(op) {
		out.Rb = in.Rb
	}
	switch {
	case op == isa.OpS2R:
		out.Imm = int32(uint32(in.Imm) % 5)
	case op == isa.OpSSY || op == isa.OpBRA || op == isa.OpCAL:
		out.Imm = in.Imm
	case isa.HasImm(op):
		out.Imm = in.Imm
	}
	if isa.SetsPred(op) {
		out.Cond = in.Cond
		out.Pd = in.Pd
	}
	return out
}

func TestStripCommentVariants(t *testing.T) {
	prog := mustAssemble(t, "NOP ; c1\nNOP # c2\nNOP // c3\n")
	if len(prog) != 3 {
		t.Fatalf("len = %d, want 3", len(prog))
	}
}

func TestLabelOnInstructionLine(t *testing.T) {
	prog := mustAssemble(t, "loop: IADDI R1, R1, 1\nBRA loop")
	if prog[1].Imm != -2 {
		t.Errorf("displacement = %d, want -2", prog[1].Imm)
	}
}

func TestNegativeMemOffset(t *testing.T) {
	prog := mustAssemble(t, "GLD R1, [R2-8]")
	if prog[0].Imm != -8 {
		t.Errorf("offset = %d, want -8", prog[0].Imm)
	}
}
