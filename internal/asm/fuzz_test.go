package asm

import "testing"

// FuzzAssemble checks the assembler never panics on arbitrary text, and
// that whatever it accepts survives a disassemble/assemble round trip.
func FuzzAssemble(f *testing.F) {
	f.Add("MVI R1, 5\nIADD R2, R1, R1\nGST [R2+0], R1\nEXIT")
	f.Add("loop: IADDI R1, R1, 1\n@P0 BRA loop")
	f.Add("x: y: EXIT")
	f.Add("@!P3 SIN R9, R8 ; comment")
	f.Add("S2R R0, SR_TID # c")
	f.Add("ISETI R1, R2, -3, GE, P1")
	f.Add("BRA 0\nSSY -1\nCAL 2\nRET")
	f.Add("\x00\xff broken")
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Assemble(src)
		if err != nil {
			return
		}
		text := Disassemble(prog)
		prog2, err := Assemble(text)
		if err != nil {
			t.Fatalf("disassembly does not reassemble: %v\n%s", err, text)
		}
		if len(prog2) != len(prog) {
			t.Fatalf("round trip length %d != %d", len(prog2), len(prog))
		}
	})
}
