package atpg

import (
	"math/rand"

	"gpustl/internal/circuits"
	"gpustl/internal/fault"
	"gpustl/internal/netlist"
)

// Options tunes a generation run.
type Options struct {
	Seed int64

	// RandomBlocks is the maximum number of 64-pattern random blocks.
	RandomBlocks int
	// UselessLimit stops the random phase after this many consecutive
	// blocks that detect nothing new.
	UselessLimit int
	// UsePodem enables the deterministic phase for the random-resistant
	// remainder.
	UsePodem bool
	// MaxBacktracks bounds each PODEM run.
	MaxBacktracks int
	// SampleFaults caps the targeted fault list (0 = all faults). Fault
	// sampling keeps medium-scale campaigns tractable.
	SampleFaults int
	// Collapse applies structural fault collapsing before generation.
	Collapse bool
	// KeepAllBlocks emits every pattern of the first N useful random
	// blocks instead of only the first-detecting ones. Commercial ATPG
	// pattern files carry exactly this kind of early redundancy (easy
	// faults are detected by many patterns); the paper's TPGEN/SFU_IMM
	// compaction rates presuppose it. 0 keeps strict selection.
	KeepAllBlocks int
}

// DefaultOptions returns a reasonable configuration.
func DefaultOptions(seed int64) Options {
	return Options{
		Seed:          seed,
		RandomBlocks:  256,
		UselessLimit:  8,
		UsePodem:      true,
		MaxBacktracks: 300,
	}
}

// Result is the outcome of a generation run.
type Result struct {
	Patterns []circuits.Pattern

	TotalFaults  int // faults targeted
	RandomDet    int // detected in the random phase
	PodemDet     int // detected by PODEM-generated patterns
	Untestable   int // PODEM proved/abandoned without a pattern
	RandPatterns int // patterns kept from the random phase
}

// Coverage returns the achieved fault coverage over the targeted list.
func (r *Result) Coverage() float64 {
	if r.TotalFaults == 0 {
		return 0
	}
	return 100 * float64(r.RandomDet+r.PodemDet) / float64(r.TotalFaults)
}

// Generate produces a compact detecting pattern set for the module's
// stuck-at faults: a random phase keeps only patterns that first-detect at
// least one fault; PODEM then targets the remainder, fault-simulating each
// new pattern to drop collateral detections.
//
// ATPG works on a single lane of the module (the same patterns reach every
// lane when the converted PTP executes across all threads).
func Generate(m *circuits.Module, opt Options) *Result {
	rng := rand.New(rand.NewSource(opt.Seed))
	oneLane := &circuits.Module{Kind: m.Kind, NL: m.NL, Lanes: 1}

	sites := fault.AllSites(m.NL)
	if opt.Collapse {
		sites = fault.CollapseEquivalent(m.NL, sites)
	}
	camp := fault.NewCampaignWithFaults(oneLane, fault.ExpandLanes(sites, 1))
	if opt.SampleFaults > 0 {
		camp.SampleFaults(opt.SampleFaults, opt.Seed)
	}
	res := &Result{TotalFaults: camp.Total()}

	numIn := len(m.NL.Inputs)
	randomPattern := func() circuits.Pattern {
		var p circuits.Pattern
		p.W[0] = rng.Uint64()
		p.W[1] = rng.Uint64()
		// Mask to the input count.
		if numIn < 64 {
			p.W[0] &= 1<<uint(numIn) - 1
			p.W[1] = 0
		} else if numIn < 128 {
			p.W[1] &= 1<<uint(numIn-64) - 1
		}
		return p
	}

	// Random phase.
	useless := 0
	usefulBlocks := 0
	for blk := 0; blk < opt.RandomBlocks && useless < opt.UselessLimit; blk++ {
		stream := make([]fault.TimedPattern, 64)
		for i := range stream {
			stream[i] = fault.TimedPattern{CC: uint64(blk*64 + i), Pat: randomPattern()}
		}
		rep := camp.Simulate(stream, fault.SimOptions{})
		if rep.DetectedThisRun() == 0 {
			useless++
			continue
		}
		useless = 0
		res.RandomDet += rep.DetectedThisRun()
		if usefulBlocks < opt.KeepAllBlocks {
			for i := range stream {
				res.Patterns = append(res.Patterns, stream[i].Pat)
				res.RandPatterns++
			}
		} else {
			for i, n := range rep.DetectedPerPattern {
				if n > 0 {
					res.Patterns = append(res.Patterns, stream[i].Pat)
					res.RandPatterns++
				}
			}
		}
		usefulBlocks++
	}

	// Deterministic phase.
	if opt.UsePodem {
		for id, f := range camp.Faults() {
			if camp.IsDetected(fault.ID(id)) {
				continue
			}
			pd := newPodem(m.NL, f.Site, opt.MaxBacktracks)
			pat, ok := pd.run()
			if !ok {
				res.Untestable++
				continue
			}
			rep := camp.Simulate([]fault.TimedPattern{{Pat: pat}}, fault.SimOptions{})
			if rep.DetectedThisRun() == 0 {
				// The PODEM pattern must detect its target; a miss means a
				// modeling bug — treat conservatively as untestable.
				res.Untestable++
				continue
			}
			res.PodemDet += rep.DetectedThisRun()
			res.Patterns = append(res.Patterns, pat)
		}
	}
	return res
}

// StaticCompact performs classic static test-set compaction: the patterns
// are replayed in reverse order against a fresh campaign over the same
// fault list, and only patterns that first-detect at least one fault are
// kept (reverse-order fault simulation drops the early redundancy that
// greedy generation accumulates). The kept patterns preserve the original
// set's coverage exactly.
func StaticCompact(m *circuits.Module, patterns []circuits.Pattern, opt Options) []circuits.Pattern {
	oneLane := &circuits.Module{Kind: m.Kind, NL: m.NL, Lanes: 1}
	sites := fault.AllSites(m.NL)
	if opt.Collapse {
		sites = fault.CollapseEquivalent(m.NL, sites)
	}
	camp := fault.NewCampaignWithFaults(oneLane, fault.ExpandLanes(sites, 1))
	if opt.SampleFaults > 0 {
		camp.SampleFaults(opt.SampleFaults, opt.Seed)
	}
	stream := make([]fault.TimedPattern, len(patterns))
	for i, p := range patterns {
		stream[i] = fault.TimedPattern{CC: uint64(i), Pat: p}
	}
	rep := camp.Simulate(stream, fault.SimOptions{Reverse: true})
	// rep is in reversed order; keep detecting patterns, restoring the
	// original relative order.
	keepRev := make([]bool, len(patterns))
	for i, n := range rep.DetectedPerPattern {
		if n > 0 {
			keepRev[i] = true
		}
	}
	var out []circuits.Pattern
	for i := range patterns {
		// Stream entry j in the reversed order corresponds to original
		// index len-1-j.
		if keepRev[len(patterns)-1-i] {
			out = append(out, patterns[i])
		}
	}
	return out
}

// GenerateForSites runs PODEM for an explicit list of fault sites and
// returns one pattern per testable fault (no random phase, no dropping) —
// a building block for tests and focused campaigns.
func GenerateForSites(nl *netlist.Netlist, sites []netlist.FaultSite, maxBacktracks int) (pats []circuits.Pattern, untestable int) {
	for _, s := range sites {
		pd := newPodem(nl, s, maxBacktracks)
		if pat, ok := pd.run(); ok {
			pats = append(pats, pat)
		} else {
			untestable++
		}
	}
	return pats, untestable
}
