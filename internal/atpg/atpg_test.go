package atpg

import (
	"testing"

	"gpustl/internal/circuits"
	"gpustl/internal/fault"
	"gpustl/internal/netlist"
)

// buildTestCircuit returns a small circuit with redundancy-free logic:
// y = (a AND b) OR (NOT c), z = a XOR c.
func buildTestCircuit(t testing.TB) *netlist.Netlist {
	t.Helper()
	b := netlist.NewBuilder("small")
	a := b.Input("a")
	c := b.Input("b")
	d := b.Input("c")
	b.Output("y", b.Or(b.And(a, c), b.Not(d)))
	b.Output("z", b.Xor(a, d))
	nl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return nl
}

// buildRedundant returns a circuit with an untestable fault: y = a OR
// (a AND NOT a) — the AND output is constant 0, its sa0 is undetectable.
func buildRedundant(t testing.TB) *netlist.Netlist {
	t.Helper()
	b := netlist.NewBuilder("red")
	a := b.Input("a")
	and := b.And(a, b.Not(a))
	b.Output("y", b.Or(a, and))
	nl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return nl
}

// verifyPatternDetects checks with the fault simulator that pat detects f.
func verifyPatternDetects(t *testing.T, nl *netlist.Netlist, f netlist.FaultSite, pat circuits.Pattern) {
	t.Helper()
	ev, err := netlist.NewEvaluator(nl)
	if err != nil {
		t.Fatal(err)
	}
	in := make([]uint64, len(nl.Inputs))
	pat.ApplyTo(in, 0)
	if err := ev.Run(in); err != nil {
		t.Fatal(err)
	}
	if ev.FaultDetect(f)&1 != 1 {
		t.Fatalf("PODEM pattern %+v does not detect %v", pat, f)
	}
}

func TestPodemSmallCircuitAllFaults(t *testing.T) {
	nl := buildTestCircuit(t)
	for _, f := range fault.AllSites(nl) {
		pd := newPodem(nl, f, 100)
		pat, ok := pd.run()
		if !ok {
			t.Fatalf("fault %v reported untestable in an irredundant circuit", f)
		}
		verifyPatternDetects(t, nl, f, pat)
	}
}

func TestPodemUntestableFault(t *testing.T) {
	nl := buildRedundant(t)
	// The AND gate drives constant 0; its output sa0 is untestable.
	var andGate int32 = -1
	for id, g := range nl.Gates {
		if g.Kind == netlist.KAnd {
			andGate = int32(id)
		}
	}
	if andGate < 0 {
		t.Fatal("no AND gate")
	}
	pd := newPodem(nl, netlist.FaultSite{Gate: andGate, Pin: -1, SA1: false}, 100)
	if _, ok := pd.run(); ok {
		t.Fatal("untestable fault got a pattern")
	}
	// The same gate's sa1 IS testable (forces y=1 when a=0).
	pd = newPodem(nl, netlist.FaultSite{Gate: andGate, Pin: -1, SA1: true}, 100)
	pat, ok := pd.run()
	if !ok {
		t.Fatal("testable sa1 not found")
	}
	verifyPatternDetects(t, nl, netlist.FaultSite{Gate: andGate, Pin: -1, SA1: true}, pat)
}

func TestPodemOnSPSample(t *testing.T) {
	m, err := circuits.Build(circuits.ModuleSP, 1)
	if err != nil {
		t.Fatal(err)
	}
	sites := fault.AllSites(m.NL)
	// Deterministically spread a sample across the whole circuit.
	step := len(sites) / 60
	ok, bad := 0, 0
	for i := 0; i < len(sites); i += step {
		pd := newPodem(m.NL, sites[i], 500)
		pat, found := pd.run()
		if !found {
			bad++
			continue
		}
		verifyPatternDetects(t, m.NL, sites[i], pat)
		ok++
	}
	if ok < bad {
		t.Fatalf("PODEM solved only %d/%d sampled SP faults", ok, ok+bad)
	}
	t.Logf("PODEM on SP sample: %d found, %d untestable/aborted", ok, bad)
}

func TestGenerateOnSP(t *testing.T) {
	m, err := circuits.Build(circuits.ModuleSP, 1)
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions(1)
	opt.SampleFaults = 3000
	res := Generate(m, opt)
	if res.Coverage() < 85 {
		t.Errorf("ATPG coverage = %.1f%%, want >= 85%%", res.Coverage())
	}
	if len(res.Patterns) == 0 || res.RandomDet == 0 {
		t.Fatal("no patterns / no random detections")
	}
	// ATPG pattern sets must be far smaller than the fault list.
	if len(res.Patterns) > res.TotalFaults/2 {
		t.Errorf("pattern set too large: %d patterns for %d faults",
			len(res.Patterns), res.TotalFaults)
	}
	t.Logf("SP ATPG: %d faults, %d patterns (%d random, %d PODEM-era), cov %.2f%%, untestable %d",
		res.TotalFaults, len(res.Patterns), res.RandPatterns,
		len(res.Patterns)-res.RandPatterns, res.Coverage(), res.Untestable)
}

func TestGenerateOnSFU(t *testing.T) {
	m, err := circuits.Build(circuits.ModuleSFU, 1)
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions(2)
	opt.SampleFaults = 1500
	opt.RandomBlocks = 128
	res := Generate(m, opt)
	if res.Coverage() < 75 {
		t.Errorf("SFU ATPG coverage = %.1f%%", res.Coverage())
	}
	t.Logf("SFU ATPG: %d faults, %d patterns, cov %.2f%%, untestable %d",
		res.TotalFaults, len(res.Patterns), res.Coverage(), res.Untestable)
}

func TestKeepAllBlocksAddsRedundancy(t *testing.T) {
	m, err := circuits.Build(circuits.ModuleSP, 1)
	if err != nil {
		t.Fatal(err)
	}
	strict := DefaultOptions(7)
	strict.SampleFaults = 1200
	strict.UsePodem = false
	sres := Generate(m, strict)

	keep := strict
	keep.KeepAllBlocks = 4
	kres := Generate(m, keep)

	// Same coverage (the fault campaign is identical), more patterns (the
	// early blocks are emitted wholesale, like a raw ATPG pattern file).
	if kres.Coverage() != sres.Coverage() {
		t.Errorf("coverage changed: %.2f vs %.2f", kres.Coverage(), sres.Coverage())
	}
	if len(kres.Patterns) <= len(sres.Patterns) {
		t.Errorf("keep-all produced %d patterns, strict %d", len(kres.Patterns), len(sres.Patterns))
	}
	t.Logf("strict %d patterns, keep-all(4) %d patterns, coverage %.2f%%",
		len(sres.Patterns), len(kres.Patterns), kres.Coverage())
}

func TestGenerateDeterminism(t *testing.T) {
	m, err := circuits.Build(circuits.ModuleSP, 1)
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions(5)
	opt.SampleFaults = 500
	opt.UsePodem = false
	a := Generate(m, opt)
	b := Generate(m, opt)
	if len(a.Patterns) != len(b.Patterns) || a.RandomDet != b.RandomDet {
		t.Fatalf("nondeterministic: %d/%d vs %d/%d",
			len(a.Patterns), a.RandomDet, len(b.Patterns), b.RandomDet)
	}
	for i := range a.Patterns {
		if a.Patterns[i] != b.Patterns[i] {
			t.Fatalf("pattern %d differs", i)
		}
	}
}

func TestStaticCompactPreservesCoverage(t *testing.T) {
	m, err := circuits.Build(circuits.ModuleSP, 1)
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions(9)
	opt.SampleFaults = 1200
	opt.KeepAllBlocks = 4 // deliberately redundant pattern set
	opt.UsePodem = false
	res := Generate(m, opt)

	compacted := StaticCompact(m, res.Patterns, opt)
	if len(compacted) >= len(res.Patterns) {
		t.Fatalf("no static compaction: %d -> %d", len(res.Patterns), len(compacted))
	}

	coverage := func(pats []circuits.Pattern) int {
		camp := fault.NewCampaignWithFaults(m, fault.ExpandLanes(fault.AllSites(m.NL), 1))
		camp.SampleFaults(opt.SampleFaults, opt.Seed)
		stream := make([]fault.TimedPattern, len(pats))
		for i, p := range pats {
			stream[i] = fault.TimedPattern{CC: uint64(i), Pat: p}
		}
		camp.Simulate(stream, fault.SimOptions{})
		return camp.Detected()
	}
	before, after := coverage(res.Patterns), coverage(compacted)
	if after != before {
		t.Fatalf("coverage changed: %d -> %d faults", before, after)
	}
	t.Logf("static compaction: %d -> %d patterns, coverage preserved (%d faults)",
		len(res.Patterns), len(compacted), before)
}

func TestGenerateForSites(t *testing.T) {
	nl := buildTestCircuit(t)
	sites := fault.AllSites(nl)[:6]
	pats, untestable := GenerateForSites(nl, sites, 100)
	if untestable != 0 || len(pats) != 6 {
		t.Fatalf("pats=%d untestable=%d", len(pats), untestable)
	}
}

func TestThreeValuedOps(t *testing.T) {
	if and3(v0, vX) != v0 || and3(v1, vX) != vX || and3(v1, v1) != v1 {
		t.Error("and3")
	}
	if or3(v1, vX) != v1 || or3(v0, vX) != vX || or3(v0, v0) != v0 {
		t.Error("or3")
	}
	if xor3(v1, v0) != v1 || xor3(vX, v0) != vX || xor3(v1, v1) != v0 {
		t.Error("xor3")
	}
	if not3(vX) != vX || not3(v0) != v1 {
		t.Error("not3")
	}
	if mux3(vX, v1, v1) != v1 || mux3(vX, v0, v1) != vX || mux3(v1, v0, v1) != v1 {
		t.Error("mux3")
	}
}
