// Package atpg implements automatic test pattern generation for the
// gate-level modules of package circuits: a random-pattern phase with
// fault dropping followed by PODEM path sensitization for the
// random-resistant remainder.
//
// It stands in for the commercial ATPG tool the paper uses to build the
// TPGEN and SFU_IMM PTPs; the generated patterns feed the
// pattern-to-instruction parsers of package ptpgen.
package atpg

import (
	"gpustl/internal/circuits"
	"gpustl/internal/netlist"
)

// Three-valued logic constants for the good/faulty circuit pair.
const (
	v0 byte = 0
	v1 byte = 1
	vX byte = 2
)

// tval is a net's value in the composite (good, faulty) circuit. The five
// classic PODEM values map as: 0=(0,0), 1=(1,1), D=(1,0), D'=(0,1),
// X=anything containing vX.
type tval struct{ g, f byte }

func (t tval) isD() bool { return t.g != vX && t.f != vX && t.g != t.f }

// podem is one PODEM run for a single fault.
type podem struct {
	nl    *netlist.Netlist
	fault netlist.FaultSite

	pi   []byte // primary-input assignments (v0/v1/vX), indexed like Inputs
	val  []tval // per-net composite values after imply
	inIx map[int32]int

	backtracks    int
	maxBacktracks int
}

// newPodem prepares a run.
func newPodem(nl *netlist.Netlist, f netlist.FaultSite, maxBacktracks int) *podem {
	p := &podem{
		nl:            nl,
		fault:         f,
		pi:            make([]byte, len(nl.Inputs)),
		val:           make([]tval, len(nl.Gates)),
		inIx:          make(map[int32]int, len(nl.Inputs)),
		maxBacktracks: maxBacktracks,
	}
	for i, net := range nl.Inputs {
		p.pi[i] = vX
		p.inIx[net] = i
	}
	return p
}

func not3(a byte) byte {
	switch a {
	case v0:
		return v1
	case v1:
		return v0
	}
	return vX
}

func and3(a, b byte) byte {
	if a == v0 || b == v0 {
		return v0
	}
	if a == v1 && b == v1 {
		return v1
	}
	return vX
}

func or3(a, b byte) byte {
	if a == v1 || b == v1 {
		return v1
	}
	if a == v0 && b == v0 {
		return v0
	}
	return vX
}

func xor3(a, b byte) byte {
	if a == vX || b == vX {
		return vX
	}
	if a == b {
		return v0
	}
	return v1
}

func mux3(s, lo, hi byte) byte {
	switch s {
	case v0:
		return lo
	case v1:
		return hi
	}
	if lo == hi && lo != vX {
		return lo
	}
	return vX
}

func eval3(k netlist.Kind, a, b, s byte) byte {
	switch k {
	case netlist.KBuf:
		return a
	case netlist.KNot:
		return not3(a)
	case netlist.KAnd:
		return and3(a, b)
	case netlist.KOr:
		return or3(a, b)
	case netlist.KXor:
		return xor3(a, b)
	case netlist.KNand:
		return not3(and3(a, b))
	case netlist.KNor:
		return not3(or3(a, b))
	case netlist.KXnor:
		return not3(xor3(a, b))
	case netlist.KMux:
		return mux3(a, b, s)
	case netlist.KConst1:
		return v1
	}
	return v0 // KConst0
}

// imply forward-simulates the composite circuit from the current PI
// assignments.
func (p *podem) imply() {
	sa := v0
	if p.fault.SA1 {
		sa = v1
	}
	for _, id := range p.nl.Order() {
		g := &p.nl.Gates[id]
		var t tval
		switch g.Kind {
		case netlist.KInput:
			v := p.pi[p.inIx[id]]
			t = tval{v, v}
		case netlist.KConst0:
			t = tval{v0, v0}
		case netlist.KConst1:
			t = tval{v1, v1}
		default:
			var ig, fg [3]byte
			for pin := 0; pin < g.NumIn(); pin++ {
				in := p.val[g.In[pin]]
				ig[pin] = in.g
				fg[pin] = in.f
				if id == p.fault.Gate && int8(pin) == p.fault.Pin {
					fg[pin] = sa
				}
			}
			t = tval{eval3(g.Kind, ig[0], ig[1], ig[2]), eval3(g.Kind, fg[0], fg[1], fg[2])}
		}
		if id == p.fault.Gate && p.fault.Pin < 0 {
			t.f = sa
		}
		p.val[id] = t
	}
}

// sa returns the stuck value in three-valued encoding.
func (p *podem) sa() byte {
	if p.fault.SA1 {
		return v1
	}
	return v0
}

// siteNet returns the net whose fault-free value activates the fault: the
// gate output for stem faults, the driving net of the pin for pin faults.
func (p *podem) siteNet() int32 {
	if p.fault.Pin < 0 {
		return p.fault.Gate
	}
	return p.nl.Gates[p.fault.Gate].In[p.fault.Pin]
}

// siteGood returns the current fault-free value at the fault site.
func (p *podem) siteGood() byte { return p.val[p.siteNet()].g }

// detected reports whether a D/D' reaches a primary output.
func (p *podem) detected() bool {
	for _, o := range p.nl.Outputs {
		if p.val[o].isD() {
			return true
		}
	}
	return false
}

// dFrontier returns gates whose output is X in the good or faulty circuit
// while at least one input carries a D. For input-pin faults the faulted
// gate itself joins the frontier as soon as the pin is activated (the pin
// discrepancy is a D that exists on no net).
func (p *podem) dFrontier() []int32 {
	var out []int32
	for _, id := range p.nl.Order() {
		g := &p.nl.Gates[id]
		if g.NumIn() == 0 {
			continue
		}
		v := p.val[id]
		if v.g != vX && v.f != vX {
			continue
		}
		if p.fault.Pin >= 0 && id == p.fault.Gate {
			if sg := p.siteGood(); sg != vX && sg != p.sa() {
				out = append(out, id)
				continue
			}
		}
		for pin := 0; pin < g.NumIn(); pin++ {
			if p.val[g.In[pin]].isD() {
				out = append(out, id)
				break
			}
		}
	}
	return out
}

// objective returns the next (net, value) goal: justify the activation
// value at the fault site, then advance the D-frontier.
func (p *podem) objective() (int32, byte, bool) {
	switch p.siteGood() {
	case vX:
		return p.siteNet(), not3(p.sa()), true
	case p.sa():
		return 0, 0, false // activation impossible under current assignments
	}
	df := p.dFrontier()
	for _, id := range df {
		g := &p.nl.Gates[id]
		// Find an X input and demand the non-controlling value.
		for pin := 0; pin < g.NumIn(); pin++ {
			in := g.In[pin]
			if p.val[in].g != vX {
				continue
			}
			var want byte
			switch g.Kind {
			case netlist.KAnd, netlist.KNand:
				want = v1
			case netlist.KOr, netlist.KNor:
				want = v0
			case netlist.KXor, netlist.KXnor:
				want = v0
			case netlist.KMux:
				if pin == 0 {
					// Select the side carrying the D.
					if p.val[g.In[2]].isD() {
						want = v1
					} else {
						want = v0
					}
				} else {
					want = v0
				}
			default:
				want = v1
			}
			return in, want, true
		}
	}
	return 0, 0, false
}

// backtrace maps an objective to a primary-input assignment by walking
// X-paths backwards, accounting for inversions.
func (p *podem) backtrace(net int32, v byte) (int, byte, bool) {
	for hops := 0; hops < len(p.nl.Gates); hops++ {
		g := &p.nl.Gates[net]
		if g.Kind == netlist.KInput {
			return p.inIx[net], v, true
		}
		if g.NumIn() == 0 {
			return 0, 0, false // constant: cannot justify
		}
		// Pick the first X input.
		next := int32(-1)
		for pin := 0; pin < g.NumIn(); pin++ {
			if p.val[g.In[pin]].g == vX {
				next = g.In[pin]
				break
			}
		}
		if next < 0 {
			return 0, 0, false
		}
		switch g.Kind {
		case netlist.KNot, netlist.KNand, netlist.KNor:
			v = not3(v)
		}
		net = next
	}
	return 0, 0, false
}

// decision is one PI assignment on the implicit decision stack.
type decision struct {
	pi      int
	value   byte
	flipped bool
}

// run executes the PODEM search. It returns the generated pattern and
// true on success; (zero, false) when the fault is untestable or the
// backtrack budget is exhausted.
func (p *podem) run() (circuits.Pattern, bool) {
	var stack []decision
	p.imply()
	for {
		if p.detected() {
			return p.pattern(), true
		}
		net, want, ok := p.objective()
		feasible := ok
		var pi int
		var v byte
		if feasible {
			pi, v, feasible = p.backtrace(net, want)
		}
		if feasible {
			stack = append(stack, decision{pi: pi, value: v})
			p.pi[pi] = v
			p.imply()
			continue
		}
		// Backtrack.
		for {
			if len(stack) == 0 {
				return circuits.Pattern{}, false
			}
			d := &stack[len(stack)-1]
			if !d.flipped {
				d.flipped = true
				d.value = not3(d.value)
				p.pi[d.pi] = d.value
				p.backtracks++
				if p.backtracks > p.maxBacktracks {
					return circuits.Pattern{}, false
				}
				p.imply()
				break
			}
			p.pi[d.pi] = vX
			stack = stack[:len(stack)-1]
		}
		if p.detected() {
			return p.pattern(), true
		}
	}
}

// pattern freezes the current PI assignment, filling X's with 0.
func (p *podem) pattern() circuits.Pattern {
	var pat circuits.Pattern
	for i, v := range p.pi {
		if v == v1 {
			pat.W[i/64] |= 1 << (uint(i) % 64)
		}
	}
	return pat
}
