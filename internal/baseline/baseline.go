// Package baseline implements the prior-work compaction approach the paper
// compares against (refs [13]–[16]): iteratively produce compacted-PTP
// candidates by tentatively removing one block at a time and re-running a
// full fault simulation to check that the fault coverage is preserved.
//
// Its cost is one logic simulation plus one fault simulation per candidate
// removal — versus the paper's single logic + single fault simulation —
// which is exactly the gap the evaluation's compaction-time discussion and
// our BenchmarkBaselineCompare quantify.
package baseline

import (
	"fmt"
	"time"

	"gpustl/internal/circuits"
	"gpustl/internal/core"
	"gpustl/internal/fault"
	"gpustl/internal/gpu"
	"gpustl/internal/stl"
	"gpustl/internal/trace"
)

// Result summarizes an iterative compaction run.
type Result struct {
	Original  *stl.PTP
	Compacted *stl.PTP

	OrigSize, CompSize         int
	OrigDuration, CompDuration uint64
	OrigFC, CompFC             float64

	FaultSims int // fault simulations performed (the cost metric)
	LogicSims int
	Time      time.Duration
}

// SizeReduction returns the size compaction percentage.
func (r *Result) SizeReduction() float64 {
	return 100 * (1 - float64(r.CompSize)/float64(r.OrigSize))
}

// DurationReduction returns the duration compaction percentage.
func (r *Result) DurationReduction() float64 {
	return 100 * (1 - float64(r.CompDuration)/float64(r.OrigDuration))
}

// Compactor runs the iterative baseline over one module.
type Compactor struct {
	GPU    gpu.Config
	Module *circuits.Module
	Faults []fault.Fault

	// Tolerance is the FC loss (percentage points) a removal may cause and
	// still be committed; 0 reproduces the strict "maintain the FC" rule.
	Tolerance float64
}

// New creates a baseline compactor.
func New(cfg gpu.Config, m *circuits.Module, faults []fault.Fault) *Compactor {
	return &Compactor{GPU: cfg, Module: m, Faults: faults}
}

// simulateFC runs one logic simulation plus one fault simulation of the
// PTP and returns its fault coverage.
func (c *Compactor) simulateFC(p *stl.PTP) (float64, uint64, error) {
	col := trace.NewCollector(c.Module.Kind)
	col.LiteRows = true
	g, err := gpu.New(c.GPU, col)
	if err != nil {
		return 0, 0, err
	}
	res, err := g.Run(gpu.Kernel{
		Prog:            p.Prog,
		Blocks:          p.Kernel.Blocks,
		ThreadsPerBlock: p.Kernel.ThreadsPerBlock,
		GlobalBase:      p.Data.Base,
		GlobalData:      p.Data.Words,
	})
	if err != nil {
		return 0, 0, fmt.Errorf("baseline: %s: %w", p.Name, err)
	}
	camp := fault.NewCampaignWithFaults(c.Module, c.Faults)
	camp.Simulate(col.Patterns, fault.SimOptions{})
	return camp.Coverage(), res.Cycles, nil
}

// CompactPTP iteratively removes candidate Small Blocks from the PTP,
// re-fault-simulating after every tentative removal and keeping only the
// removals that preserve the fault coverage (within Tolerance).
func (c *Compactor) CompactPTP(p *stl.PTP) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	start := time.Now()

	origFC, origCC, err := c.simulateFC(p)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Original: p, OrigSize: len(p.Prog), OrigDuration: origCC, OrigFC: origFC,
		FaultSims: 1, LogicSims: 1,
	}

	arcs := p.ARCs()
	cur := p
	// Walk candidate SBs last-to-first so indices into the current program
	// stay valid after each committed removal.
	for i := len(cur.SBs) - 1; i >= 0; i-- {
		sb := cur.SBs[i]
		candidate := false
		for _, r := range arcs {
			if sb.Start >= r.Start && sb.End <= r.End {
				candidate = true
				break
			}
		}
		if !candidate {
			continue
		}
		var rm []int
		for pc := sb.Start; pc < sb.End; pc++ {
			rm = append(rm, pc)
		}
		cand, err := core.Reassemble(cur, cur.SBs, rm)
		if err != nil {
			continue
		}
		fc, _, err := c.simulateFC(cand)
		res.FaultSims++
		res.LogicSims++
		if err != nil {
			continue
		}
		if fc >= origFC-c.Tolerance {
			cur = cand
			arcs = cur.ARCs()
		}
	}

	finalFC, finalCC, err := c.simulateFC(cur)
	if err != nil {
		return nil, err
	}
	res.FaultSims++
	res.LogicSims++
	res.Compacted = cur
	res.CompSize = len(cur.Prog)
	res.CompDuration = finalCC
	res.CompFC = finalFC
	res.Time = time.Since(start)
	return res, nil
}
