package baseline

import (
	"testing"

	"gpustl/internal/circuits"
	"gpustl/internal/core"
	"gpustl/internal/fault"
	"gpustl/internal/gpu"
	"gpustl/internal/ptpgen"
)

func setup(t testing.TB, kind circuits.ModuleKind, nFaults int, seed int64) (*circuits.Module, []fault.Fault) {
	t.Helper()
	m, err := circuits.Build(kind, 0)
	if err != nil {
		t.Fatal(err)
	}
	c := fault.NewCampaign(m)
	c.SampleFaults(nFaults, seed)
	return m, c.Faults()
}

func TestBaselineCompacts(t *testing.T) {
	m, faults := setup(t, circuits.ModuleDU, 1500, 1)
	p := ptpgen.IMM(25, 2)
	b := New(gpu.DefaultConfig(), m, faults)
	res, err := b.CompactPTP(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.CompSize >= res.OrigSize {
		t.Errorf("no compaction: %d -> %d", res.OrigSize, res.CompSize)
	}
	// The defining property: one fault simulation per candidate plus the
	// initial and final evaluations.
	if res.FaultSims < len(p.SBs) {
		t.Errorf("fault sims = %d, want >= %d (one per SB)", res.FaultSims, len(p.SBs))
	}
	// Strict tolerance: FC must be preserved.
	if res.CompFC < res.OrigFC {
		t.Errorf("FC lost: %.3f -> %.3f", res.OrigFC, res.CompFC)
	}
	t.Logf("baseline IMM: %d->%d instrs, FC %.2f->%.2f, %d fault sims, %v",
		res.OrigSize, res.CompSize, res.OrigFC, res.CompFC, res.FaultSims, res.Time)
}

func TestBaselineVsProposedCost(t *testing.T) {
	m, faults := setup(t, circuits.ModuleDU, 1200, 3)
	p := ptpgen.IMM(20, 4)

	b := New(gpu.DefaultConfig(), m, faults)
	bres, err := b.CompactPTP(p)
	if err != nil {
		t.Fatal(err)
	}

	c := core.New(gpu.DefaultConfig(), m, faults, core.Options{})
	cres, err := c.CompactPTP(p)
	if err != nil {
		t.Fatal(err)
	}

	// The proposed method must be far cheaper (it runs one fault sim; the
	// baseline runs one per SB) while achieving comparable compaction.
	if bres.Time < cres.CompactionTime {
		t.Logf("warning: baseline wall-time %v below proposed %v at this tiny scale",
			bres.Time, cres.CompactionTime)
	}
	if bres.FaultSims <= 2 {
		t.Errorf("baseline did not iterate: %d fault sims", bres.FaultSims)
	}
	t.Logf("cost: baseline %d fault sims in %v; proposed 1 fault sim in %v; sizes %d vs %d",
		bres.FaultSims, bres.Time, cres.CompactionTime, bres.CompSize, cres.CompSize)
}

func TestBaselineToleranceTradesFC(t *testing.T) {
	m, faults := setup(t, circuits.ModuleDU, 1000, 5)
	p := ptpgen.IMM(15, 6)

	strict := New(gpu.DefaultConfig(), m, faults)
	sres, err := strict.CompactPTP(p)
	if err != nil {
		t.Fatal(err)
	}
	loose := New(gpu.DefaultConfig(), m, faults)
	loose.Tolerance = 2.0
	lres, err := loose.CompactPTP(p)
	if err != nil {
		t.Fatal(err)
	}
	if lres.CompSize > sres.CompSize {
		t.Errorf("loose tolerance removed less: %d vs %d", lres.CompSize, sres.CompSize)
	}
}

func TestBaselineRespectsProtected(t *testing.T) {
	m, faults := setup(t, circuits.ModuleDU, 800, 7)
	p := ptpgen.IMM(10, 8)
	b := New(gpu.DefaultConfig(), m, faults)
	res, err := b.CompactPTP(p)
	if err != nil {
		t.Fatal(err)
	}
	// Prologue and epilogue must survive.
	got := res.Compacted.Prog
	if got[0].Op != p.Prog[0].Op || got[len(got)-1].Op != p.Prog[len(p.Prog)-1].Op {
		t.Error("protected scaffolding damaged")
	}
}
