package chaos

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"gpustl/internal/core"
	"gpustl/internal/dist"
	"gpustl/internal/journal"
	"gpustl/internal/obs"
	"gpustl/internal/overload"
	"gpustl/internal/run"
)

// Overload-round tuning: the admission pool admits exactly one campaign
// at a time with a one-deep wait queue, and the distributed retry
// budget is deliberately tight so the budget-inequality assertion below
// has teeth.
const (
	overloadMaxQueue   = 1
	overloadRetryRatio = 0.1
	overloadRetryBurst = 4
)

// RunOverloadRound drives one round of the overload scenario: three
// campaigns offered against an admission pool sized for exactly one,
// under brownout workers (dist.reply.busy) and injected admission
// faults (overload.admit.shed / overload.admit.delay). The round
// asserts the whole overload contract:
//
//   - deterministic shed: with the pool saturated and its queue full, a
//     third offered campaign is refused fast with ErrOverloaded and
//     leaves no artifact — not even its checkpoint directory;
//   - shed is transient: a refused campaign retried once capacity frees
//     completes normally;
//   - admitted campaigns are byte-identical to the fault-free
//     reference, brownouts and injected sheds notwithstanding;
//   - retries stay within budget: over the round's dedicated metrics
//     registry, retries_total ≤ ratio×dispatches_total + burst×coordinators.
func (h *Harness) RunOverloadRound(ctx context.Context, s Schedule, res *Result) error {
	ref, err := h.Reference(ctx)
	if err != nil {
		return err
	}
	lib, _, err := h.env()
	if err != nil {
		return err
	}
	var campaignCost int64
	for _, p := range lib.PTPs {
		campaignCost += int64(len(p.Prog))
	}

	reg := obs.NewRegistry() // per-round: the budget inequality needs clean counters
	pool := overload.NewAdmission(overload.AdmissionOptions{
		Capacity: campaignCost,
		MaxQueue: overloadMaxQueue,
		Metrics:  reg,
		Name:     "campaign",
	})
	var coordinators atomic.Uint64

	dirs := make([]string, 3)
	for i := range dirs {
		d, err := os.MkdirTemp("", fmt.Sprintf("chaossoak-overload-c%d-*", i))
		if err != nil {
			return err
		}
		defer os.RemoveAll(d)
		dirs[i] = d
	}
	// run.Run creates CheckpointDir lazily *after* admission; hand each
	// campaign a path that does not exist yet so "no artifact on shed"
	// is observable.
	for i, d := range dirs {
		dirs[i] = d + "/ck"
	}

	// Saturate the pool as a long-running admitted campaign would, then
	// queue campaign B behind it. Both states are deterministic: B
	// cannot be admitted while the hold is in place.
	hold, ok := pool.TryAcquire(campaignCost)
	if !ok {
		return fmt.Errorf("chaos: %s: fresh pool refused the hold", s.Name)
	}
	var wg sync.WaitGroup
	outcomes := make([]offerOutcome, 3)
	offer := func(idx int) {
		defer wg.Done()
		outcomes[idx] = h.offerCampaign(ctx, s, pool, dirs[idx], reg, &coordinators)
	}
	wg.Add(1)
	go offer(1)
	if err := waitFor(ctx, 10*time.Second, func() bool { return pool.QueueLen() >= 1 }); err != nil {
		return fmt.Errorf("chaos: %s: campaign B never queued: %w", s.Name, err)
	}

	// Queue full + pool saturated: offering campaign C now MUST shed,
	// fast, with ErrOverloaded, leaving nothing on disk.
	start := time.Now()
	_, cerr := h.runOverloadCampaignOnce(ctx, s, pool, dirs[2], reg, &coordinators)
	shedLatency := time.Since(start)
	if !errors.Is(cerr, overload.ErrOverloaded) {
		return fmt.Errorf("chaos: %s: saturated pool did not shed campaign C: %v", s.Name, cerr)
	}
	if !journal.IsTransient(cerr) {
		return fmt.Errorf("chaos: %s: shed did not classify as transient: %v", s.Name, cerr)
	}
	if shedLatency > 5*time.Second {
		return fmt.Errorf("chaos: %s: shed took %v — not a fast refusal", s.Name, shedLatency)
	}
	if _, serr := os.Stat(dirs[2]); !os.IsNotExist(serr) {
		return fmt.Errorf("chaos: %s: shed campaign C left an artifact at %s", s.Name, dirs[2])
	}
	res.Shed++

	// Free the hold: B is granted FIFO; A and C (retried — the "come
	// back later" an overloaded service owes its clients) now contend
	// for the remaining capacity. All three must complete.
	hold()
	wg.Add(2)
	go offer(0)
	go offer(2)
	wg.Wait()

	for i, o := range outcomes {
		if o.err != nil {
			return fmt.Errorf("chaos: %s: campaign %c: %w", s.Name, 'A'+i, o.err)
		}
		if !bytes.Equal(o.got, ref) {
			return fmt.Errorf("chaos: %s: campaign %c produced %d bytes differing from the %d-byte reference",
				s.Name, 'A'+i, len(o.got), len(ref))
		}
		res.Admitted++
		res.Shed += o.shed
		res.Crashes += o.crashes
	}

	// The budget inequality, over this round's dedicated registry:
	// every coordinator banks overloadRetryBurst tokens and earns
	// overloadRetryRatio per dispatch, so total retries can never
	// exceed ratio×dispatches + burst×coordinators. Busy bounces and
	// injected sheds must not have charged it.
	snap := reg.Snapshot()
	retries := float64(snap.Counters["gpustl_dist_retries_total"])
	dispatches := float64(snap.Counters["gpustl_dist_dispatches_total"])
	bound := overloadRetryRatio*dispatches + overloadRetryBurst*float64(coordinators.Load())
	if retries > bound {
		return fmt.Errorf("chaos: %s: retries %v exceed budget bound %v (dispatches %v, coordinators %d)",
			s.Name, retries, bound, dispatches, coordinators.Load())
	}
	if shed := snap.Counters[`gpustl_overload_shed_total{pool="campaign",reason="queue_full"}`]; shed < 1 {
		return fmt.Errorf("chaos: %s: forced shed not visible in gpustl_overload_shed_total", s.Name)
	}
	// The brownout worker (dist.reply.busy, Times-bounded) must have
	// bounced at least one shard — and the round still converged with
	// zero degradation, proving busy replies reroute without charge.
	if busy := snap.Counters["gpustl_dist_busy_replies_total"]; busy < 1 {
		return fmt.Errorf("chaos: %s: brownout worker never bounced a shard", s.Name)
	}
	return nil
}

type offerOutcome struct {
	got     []byte
	shed    int
	crashes int
	err     error
}

// offerCampaign runs one campaign to completion against the shared
// admission pool, absorbing overload refusals (retry after a short
// backoff — capacity is about to free) and injected crashes (resume
// from the checkpoint) up to the harness crash budget.
func (h *Harness) offerCampaign(ctx context.Context, s Schedule, pool *overload.Admission,
	dir string, reg *obs.Registry, coordinators *atomic.Uint64) offerOutcome {

	// Sheds are expected to repeat while another campaign holds the pool
	// (retry cadence × campaign duration), so they get their own generous
	// cap; only crashes count against the harness crash budget.
	const maxShedRetries = 2000
	var out offerOutcome
	for {
		if err := ctx.Err(); err != nil {
			out.err = err
			return out
		}
		rep, err := h.runOverloadCampaignOnce(ctx, s, pool, dir, reg, coordinators)
		switch {
		case err == nil:
			if degraded(rep) {
				// Nothing in the overload schedule may degrade a
				// campaign: busy bounces reroute and sheds abort.
				out.err = fmt.Errorf("chaos: %s: overload round degraded a campaign", s.Name)
				return out
			}
			out.got, out.err = stlBytes(rep.Compacted)
			return out
		case errors.Is(err, overload.ErrOverloaded):
			if !journal.IsTransient(err) {
				out.err = fmt.Errorf("chaos: %s: shed not transient: %w", s.Name, err)
				return out
			}
			out.shed++
			if out.shed > maxShedRetries {
				out.err = fmt.Errorf("chaos: %s: still shed after %d retries", s.Name, out.shed)
				return out
			}
			select { // capacity frees when the current holder completes
			case <-time.After(25 * time.Millisecond):
			case <-ctx.Done():
				out.err = ctx.Err()
				return out
			}
		default:
			out.crashes++ // injected journal/commit crash: resume
			if out.crashes > h.MaxCrashes {
				out.err = fmt.Errorf("chaos: %s: campaign still failing after %d crashes: %w",
					s.Name, out.crashes, err)
				return out
			}
		}
	}
}

// runOverloadCampaignOnce is one run.Run attempt of the overload
// scenario: brownout-capable workers, tight retry budget, small breaker
// cool-down, the shared admission pool gating the campaign.
func (h *Harness) runOverloadCampaignOnce(ctx context.Context, s Schedule,
	pool *overload.Admission, dir string, reg *obs.Registry,
	coordinators *atomic.Uint64) (*run.Report, error) {

	lib, ms, err := h.env()
	if err != nil {
		return nil, err
	}
	transports := make([]dist.Transport, s.Workers)
	for i := range transports {
		t := dist.Transport(dist.NewLocal(fmt.Sprintf("%s-w%d", s.Name, i)))
		if i < s.FaultyWorkers {
			t = dist.WithFailpoints(t, s.distNames()...)
		}
		transports[i] = t
	}
	co, err := dist.New(dist.Options{
		MaxAttempts:       8,
		BaseBackoff:       2 * time.Millisecond,
		MaxBackoff:        25 * time.Millisecond,
		HeartbeatInterval: 15 * time.Millisecond,
		HeartbeatMisses:   2,
		Seed:              h.Seed,
		VerifyFraction:    s.VerifyFraction,
		RetryBudget:       overloadRetryRatio,
		RetryBurst:        overloadRetryBurst,
		BreakerOpenFor:    50 * time.Millisecond,
		Metrics:           reg,
	}, transports...)
	if err != nil {
		return nil, err
	}
	defer co.Close()
	coordinators.Add(1)
	return run.Run(ctx, h.Cfg, ms, lib,
		core.Options{Workers: 4, Simulator: co},
		run.Options{
			CheckpointDir: dir,
			FCTolerance:   5,
			MaxPTPRetries: s.MaxPTPRetries,
			Admission:     pool,
			Metrics:       h.Metrics,
		})
}

// waitFor polls cond (1ms cadence) until it holds, ctx dies, or the
// bound elapses.
func waitFor(ctx context.Context, bound time.Duration, cond func() bool) error {
	deadline := time.Now().Add(bound)
	for !cond() {
		if err := ctx.Err(); err != nil {
			return err
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("condition not reached within %v", bound)
		}
		time.Sleep(time.Millisecond)
	}
	return nil
}
