package chaos

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"time"

	"gpustl/internal/server"
)

// Control-plane chaos: the server round kills a live stlserver control
// plane at journaled cut points and asserts the crash-only contract.
//
// One round:
//
//  1. starts an in-process server.Server on a fresh state dir with
//     aggressive lease timing, under the schedule's armed failpoints —
//     server.journal.append (append failures are fail-stop, so each
//     fire is a kill at a journaled cut point), server.lease.expire
//     (a suppressed heartbeat renewal is lease loss, also fail-stop)
//     and server.cache.corrupt (one artifact is corrupted as written);
//  2. submits three campaigns of the harness workload across two
//     tenants, retrying submissions through crashes exactly like a
//     real client whose reply was lost;
//  3. kills the server once deliberately as soon as a campaign is
//     running, then keeps restarting it (same holder, same state dir)
//     after every crash until all campaigns reach done — each restart
//     replays the queue journal, re-adopts the orphans, and resumes
//     their run WALs (no finished PTP is simulated twice);
//  4. asserts every campaign's artifact is byte-identical to the
//     fault-free reference, repairing a corrupt-injected cache entry
//     through the designed path: a verified miss and a re-simulation,
//     never served rot;
//  5. resubmits the completed content under fresh ids until one is
//     served from the verified result cache, and asserts the
//     cache-hit metric moved.
type serverRound struct {
	h   *Harness
	s   Schedule
	res *Result
	ctx context.Context

	dir    string
	srv    *server.Server
	runErr chan error

	crashes int
}

// RunServerRound is the Schedule.Server round entry point.
func (h *Harness) RunServerRound(ctx context.Context, s Schedule, res *Result) error {
	ref, err := h.Reference(ctx)
	if err != nil {
		return err
	}
	dir, err := os.MkdirTemp("", "chaossoak-server-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	r := &serverRound{h: h, s: s, res: res, ctx: ctx, dir: dir}
	r.start()
	defer func() {
		// Reap whatever incarnation is live so no executor outlives the
		// round (the journal must have exactly one writer).
		r.srv.Kill()
		<-r.runErr
	}()

	lib, _, err := h.env()
	if err != nil {
		return err
	}
	libBytes, err := stlBytes(lib)
	if err != nil {
		return err
	}
	fcTol := 5.0
	spec := func(tenant string) *server.Spec {
		return &server.Spec{Tenant: tenant, STL: libBytes, Faults: h.Sample, FCTol: &fcTol}
	}

	// Three campaigns, two tenants, one content hash: concurrent
	// executions of the same configuration must converge on one cache
	// entry and identical bytes.
	type camp struct{ id, tenant string }
	campaigns := []camp{
		{fmt.Sprintf("i%d-a0", res.Iter), "tenant-a"},
		{fmt.Sprintf("i%d-a1", res.Iter), "tenant-a"},
		{fmt.Sprintf("i%d-b0", res.Iter), "tenant-b"},
	}
	for _, c := range campaigns {
		if err := r.submit(c.id, spec(c.tenant)); err != nil {
			return err
		}
	}

	// The deterministic kill: as soon as any campaign is running, die.
	if err := r.waitState(campaigns[0].id, func(v server.CampaignView) bool {
		return v.State == server.StateRunning || v.State.Terminal()
	}); err != nil {
		return err
	}
	r.h.logf("chaos: %s: deliberate kill at first running campaign", r.s.Name)
	r.srv.Kill()

	// Drive everything to done, restarting through every crash.
	for _, c := range campaigns {
		if err := r.waitState(c.id, func(v server.CampaignView) bool { return v.State.Terminal() }); err != nil {
			return err
		}
		v, ok := r.srv.Get(c.id)
		if !ok || v.State != server.StateDone {
			return fmt.Errorf("chaos: %s: campaign %s ended %s (%s), want done", r.s.Name, c.id, v.State, v.Error)
		}
	}

	// Resubmit the same content under fresh ids until one comes from
	// the verified cache. A corrupt-injected entry costs exactly one
	// extra re-simulation (the repair), so three tries are plenty.
	hit := false
	for k := 0; k < 3 && !hit; k++ {
		id := fmt.Sprintf("i%d-r%d", res.Iter, k)
		if err := r.submit(id, spec("tenant-a")); err != nil {
			return err
		}
		if err := r.waitState(id, func(v server.CampaignView) bool { return v.State.Terminal() }); err != nil {
			return err
		}
		v, _ := r.srv.Get(id)
		if v.State != server.StateDone {
			return fmt.Errorf("chaos: %s: resubmission %s ended %s (%s)", r.s.Name, id, v.State, v.Error)
		}
		hit = v.FromCache
	}
	if !hit {
		return fmt.Errorf("chaos: %s: no resubmission was served from the result cache", r.s.Name)
	}
	if m := r.h.Metrics; m != nil {
		if m.Counter("gpustl_server_cache_hits_total").Value() == 0 {
			return fmt.Errorf("chaos: %s: cache served a hit but the hit counter is zero", r.s.Name)
		}
	}

	// Every campaign's artifact must now read back verified and
	// byte-identical to the fault-free reference (the repair loop above
	// already re-simulated past any corrupt-injected entry).
	for _, c := range campaigns {
		got, err := r.result(c.id)
		if err != nil {
			return fmt.Errorf("chaos: %s: campaign %s artifact: %w", r.s.Name, c.id, err)
		}
		if !bytes.Equal(got, ref) {
			return fmt.Errorf("chaos: %s: campaign %s artifact is %d bytes differing from the %d-byte fault-free reference",
				r.s.Name, c.id, len(got), len(ref))
		}
	}
	return nil
}

// start launches a fresh server incarnation on the round's state dir.
// The holder name is constant, so a restart re-acquires its own lease
// immediately instead of waiting out the TTL.
func (r *serverRound) start() {
	r.srv = server.New(server.Options{
		StateDir:       r.dir,
		Holder:         "chaos-" + r.s.Name,
		MaxActive:      2,
		HeartbeatEvery: 20 * time.Millisecond,
		LeaseTTL:       80 * time.Millisecond,
		DrainGrace:     2 * time.Second,
		SimWorkers:     4,
		Metrics:        r.h.Metrics,
		Logf:           r.h.Logf,
	})
	r.runErr = make(chan error, 1)
	srv := r.srv
	go func() { r.runErr <- srv.Run(r.ctx) }()
}

// alive restarts the server if its current incarnation has died,
// charging one crash against the budget. It returns only with a live
// (possibly not-yet-ready) incarnation, or an error past MaxCrashes.
func (r *serverRound) alive() error {
	select {
	case err := <-r.runErr:
		r.crashes++
		r.res.Crashes++
		if r.crashes > r.h.MaxCrashes {
			return fmt.Errorf("chaos: %s: server still crashing after %d restarts: %w", r.s.Name, r.crashes, err)
		}
		r.h.logf("chaos: %s: server crash %d (%v); restarting", r.s.Name, r.crashes, err)
		r.start()
	default:
	}
	return nil
}

// submit retries until the campaign is accepted, riding through
// crashes and not-ready windows like a real client re-sending a lost
// request — idempotent by campaign id.
func (r *serverRound) submit(id string, sp *server.Spec) error {
	for {
		if err := r.ctx.Err(); err != nil {
			return err
		}
		if err := r.alive(); err != nil {
			return err
		}
		_, err := r.srv.Submit(id, sp)
		switch {
		case err == nil:
			return nil
		case errors.Is(err, server.ErrSpecConflict):
			return err // a real bug: ids are unique per iteration
		default:
			// Not ready yet, crashed mid-append, or over quota: wait a
			// beat and resubmit. Idempotency makes the retry safe.
			time.Sleep(10 * time.Millisecond)
		}
	}
}

// waitState polls one campaign until pred holds, restarting the server
// through crashes.
func (r *serverRound) waitState(id string, pred func(server.CampaignView) bool) error {
	for {
		if err := r.ctx.Err(); err != nil {
			return err
		}
		if err := r.alive(); err != nil {
			return err
		}
		if r.srv.Ready() {
			if v, ok := r.srv.Get(id); ok && pred(v) {
				return nil
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// result fetches a campaign's verified artifact, restarting through
// crashes (reads hit the cache, but a crash can land between poll and
// read).
func (r *serverRound) result(id string) ([]byte, error) {
	for {
		if err := r.ctx.Err(); err != nil {
			return nil, err
		}
		if err := r.alive(); err != nil {
			return nil, err
		}
		if !r.srv.Ready() {
			time.Sleep(10 * time.Millisecond)
			continue
		}
		return r.srv.Result(id)
	}
}
