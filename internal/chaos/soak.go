// Package chaos is the soak harness behind `make chaos` and
// cmd/chaossoak: it runs whole compaction campaigns under seeded
// failpoint schedules — torn journal writes, mid-commit crashes, stage
// panics, lossy and Byzantine worker fleets — and asserts that every
// campaign's compacted STL is byte-identical to a fault-free reference
// run. The harness is the executable form of the repo's durability
// contract: whatever the failpoints do, recovery (journal self-heal,
// checkpoint resume, shard retry, verification quarantine) must converge
// on the same output bytes.
package chaos

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"gpustl/internal/core"
	"gpustl/internal/dist"
	"gpustl/internal/failpoint"
	"gpustl/internal/gpu"
	"gpustl/internal/obs"
	"gpustl/internal/ptpgen"
	"gpustl/internal/run"
	"gpustl/internal/stl"
)

// Schedule is one named fault scenario: which failpoints to arm, and
// what execution topology the campaign runs under. Schedules meant to
// run concurrently must arm disjoint failpoint names (Soak rejects
// conflicts): the registry is process-global, so two schedules arming
// the same site with different configs would fight over it.
type Schedule struct {
	Name string
	// Failpoints maps registered failpoint names to the config armed
	// for every campaign iteration of this schedule. Each iteration
	// re-arms them, refreshing Times budgets.
	Failpoints map[string]failpoint.Config
	// Workers > 0 distributes fault simulations across that many
	// in-process worker transports via a dist.Coordinator; 0 simulates
	// in-process (journal/run faults only).
	Workers int
	// FaultyWorkers is how many of the Workers are wrapped with this
	// schedule's dist.* failpoints (restricted to exactly those names,
	// so a concurrent schedule's dist sites do not fire here).
	FaultyWorkers int
	// VerifyFraction is passed to the coordinator (Byzantine
	// re-execution + vote). Schedules arming dist.reply.byzantine need
	// it > 0 — nothing else can catch a plausible lie.
	VerifyFraction float64
	// ExpectQuarantine asserts that at least one worker is banned by
	// the end of each campaign.
	ExpectQuarantine bool
	// MaxPTPRetries for the resilient runner (crash-class PTP retries).
	MaxPTPRetries int
	// Overload switches the schedule to the overload round (see
	// RunOverloadRound): three campaigns offered against an admission
	// pool sized for one, instead of RunCampaign's single campaign.
	Overload bool
	// Server switches the schedule to the control-plane round (see
	// RunServerRound): campaigns submitted to an in-process stlserver
	// that is killed and restarted at journaled cut points.
	Server bool
}

// distNames returns the schedule's armed dist.* failpoint names — the
// allow-list for its faulty workers' transport wrappers.
func (s Schedule) distNames() []string {
	var names []string
	for n := range s.Failpoints {
		if len(n) > 5 && n[:5] == "dist." {
			names = append(names, n)
		}
	}
	return names
}

// Spec renders the schedule's failpoint arming for iteration iter as
// the comma-separated `-failpoints` spec string stlcompact, stlworker
// and chaossoak accept — the exact line that reproduces a failing
// campaign standalone (arm includes the per-iteration seed offset).
func (s Schedule) Spec(iter int) string {
	names := make([]string, 0, len(s.Failpoints))
	for n := range s.Failpoints {
		names = append(names, n)
	}
	sort.Strings(names)
	entries := make([]string, 0, len(names))
	for _, n := range names {
		cfg := s.Failpoints[n]
		cfg.Seed += int64(iter) * 7919
		entries = append(entries, n+"="+cfg.Spec())
	}
	return strings.Join(entries, ",")
}

// Result is one schedule's soak outcome.
type Result struct {
	Schedule  string
	Campaigns int // campaigns that finished and matched the reference
	Crashes   int // Run aborts (injected journal/commit errors) resumed from checkpoint
	Restarts  int // campaigns wiped and redone after injected-quarantine divergence
	Banned    int // workers quarantined across all campaigns
	Admitted  int // overload rounds: campaigns admitted and completed
	Shed      int // overload rounds: ErrOverloaded refusals (forced + injected)
	// Iter is the schedule iteration running when Err was set (its seed
	// offset is what Spec(Iter) reproduces); meaningless when Err is nil.
	Iter int
	Err  error
}

// Harness owns the reference workload: a small DU-class STL library
// (the same shape internal/run's own tests compact) and its fault-free
// compacted bytes.
type Harness struct {
	Cfg    gpu.Config
	Sample int   // per-module fault sample for core.NewModuleSet
	Seed   int64 // base seed: failpoint fates and coordinator jitter derive from it
	// MaxCrashes bounds the crash-resume-retry loop per campaign;
	// exceeding it fails the schedule (an injected fault that recovery
	// cannot converge past is a bug).
	MaxCrashes int
	Logf       func(format string, args ...any)
	Metrics    *obs.Registry

	refOnce sync.Once
	refErr  error
	ref     []byte
}

// NewHarness returns a harness over the canonical small workload.
func NewHarness(seed int64) *Harness {
	return &Harness{Cfg: gpu.DefaultConfig(), Sample: 1500, Seed: seed, MaxCrashes: 50}
}

func (h *Harness) logf(format string, args ...any) {
	if h.Logf != nil {
		h.Logf(format, args...)
	}
}

// env rebuilds the library and module set. Campaign state inside the
// module set is mutated by a run, so every campaign gets a fresh one.
func (h *Harness) env() (*stl.STL, *core.ModuleSet, error) {
	lib := &stl.STL{PTPs: []*stl.PTP{
		ptpgen.IMM(20, 61),
		ptpgen.MEM(20, 62),
		ptpgen.DIVG(3, 2, 63), // excluded: exercises the passthrough path
	}}
	ms, err := core.NewModuleSet(lib, h.Sample, 1)
	if err != nil {
		return nil, nil, err
	}
	return lib, ms, nil
}

// Reference computes (once) the fault-free compacted STL bytes every
// chaos campaign must reproduce.
func (h *Harness) Reference(ctx context.Context) ([]byte, error) {
	h.refOnce.Do(func() {
		lib, ms, err := h.env()
		if err != nil {
			h.refErr = err
			return
		}
		rep, err := run.Run(ctx, h.Cfg, ms, lib,
			core.Options{Workers: 4}, run.Options{FCTolerance: 5})
		if err != nil {
			h.refErr = fmt.Errorf("chaos: fault-free reference run: %w", err)
			return
		}
		h.ref, h.refErr = stlBytes(rep.Compacted)
	})
	return h.ref, h.refErr
}

func stlBytes(s *stl.STL) ([]byte, error) {
	var buf bytes.Buffer
	if err := stl.WriteSTL(&buf, s); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// arm (re-)enables the schedule's failpoints, offsetting each seed by
// the iteration so consecutive campaigns draw different (but still
// deterministic) fate sequences.
func (s Schedule) arm(iter int) error {
	for name, cfg := range s.Failpoints {
		cfg.Seed += int64(iter) * 7919
		if err := failpoint.Enable(name, cfg); err != nil {
			return fmt.Errorf("chaos: schedule %s: %w", s.Name, err)
		}
	}
	return nil
}

// disarm disables only this schedule's failpoints (concurrent
// schedules keep theirs).
func (s Schedule) disarm() {
	for name := range s.Failpoints {
		failpoint.Disable(name)
	}
}

// RunCampaign runs one chaos campaign under the (already armed)
// schedule and returns when the compacted output byte-matches ref.
//
// The loop has two recovery tiers, mirroring production operation:
//
//   - An error from run.Run (injected journal/commit failure) is a
//     crash: the process would die and restart, so the loop re-invokes
//     Run against the same checkpoint dir and the campaign resumes
//     after the last durable PTP.
//   - A report whose outcomes contain quarantined or errored PTPs is a
//     designed-in degradation (stage-panic budgets exceeded, shards
//     permanently failed): the output legitimately differs from the
//     reference, so the campaign is wiped and redone from scratch —
//     failpoint Times budgets are finite, so a clean pass follows.
//
// A byte mismatch on a campaign whose outcomes are all clean is a real
// divergence and fails immediately: recovery produced different bytes
// than the fault-free pipeline.
func (h *Harness) RunCampaign(ctx context.Context, s Schedule, res *Result) error {
	ref, err := h.Reference(ctx)
	if err != nil {
		return err
	}
	dir, err := os.MkdirTemp("", "chaossoak-"+strings.Map(func(r rune) rune {
		if r == '/' || r == os.PathSeparator {
			return '_'
		}
		return r
	}, s.Name)+"-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	banned := 0 // cumulative over crash-resume attempts of this campaign
	for crashes := 0; ; {
		if err := ctx.Err(); err != nil {
			return err
		}
		lib, ms, err := h.env()
		if err != nil {
			return err
		}
		copt := core.Options{Workers: 4}
		ropt := run.Options{
			CheckpointDir: dir,
			FCTolerance:   5,
			MaxPTPRetries: s.MaxPTPRetries,
			Metrics:       h.Metrics,
		}
		var co *dist.Coordinator
		if s.Workers > 0 {
			transports := make([]dist.Transport, s.Workers)
			for i := range transports {
				t := dist.Transport(dist.NewLocal(fmt.Sprintf("%s-w%d", s.Name, i)))
				if i < s.FaultyWorkers {
					t = dist.WithFailpoints(t, s.distNames()...)
				}
				transports[i] = t
			}
			co, err = dist.New(dist.Options{
				MaxAttempts:       8,
				BaseBackoff:       2 * time.Millisecond,
				MaxBackoff:        25 * time.Millisecond,
				HeartbeatInterval: 15 * time.Millisecond,
				HeartbeatMisses:   2,
				Seed:              h.Seed,
				VerifyFraction:    s.VerifyFraction,
				Metrics:           h.Metrics,
			}, transports...)
			if err != nil {
				return err
			}
			copt.Simulator = co
		}
		rep, err := run.Run(ctx, h.Cfg, ms, lib, copt, ropt)
		if co != nil {
			// Bans are per-coordinator, and a crash-resume attempt builds a
			// fresh one (a resumed run may even replay every PTP from the
			// checkpoint and simulate nothing) — so quarantine is asserted
			// cumulatively over the campaign, after it succeeds.
			banned += len(co.Banned())
			res.Banned += len(co.Banned())
			co.Close()
		}
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			// Injected crash: resume from the checkpoint, like a
			// restarted process would.
			crashes++
			res.Crashes++
			if crashes > h.MaxCrashes {
				return fmt.Errorf("chaos: %s: campaign still failing after %d crashes: %w",
					s.Name, crashes, err)
			}
			h.logf("chaos: %s: crash %d (%v); resuming", s.Name, crashes, err)
			continue
		}
		if degraded(rep) {
			// Quarantined/errored PTPs keep their originals — a
			// legitimate, designed-in divergence. Redo from scratch;
			// the injected budgets that caused it are spent.
			crashes++
			res.Restarts++
			if crashes > h.MaxCrashes {
				return fmt.Errorf("chaos: %s: campaign still degraded after %d attempts", s.Name, crashes)
			}
			h.logf("chaos: %s: degraded campaign (restart %d)", s.Name, res.Restarts)
			if err := wipe(dir); err != nil {
				return err
			}
			continue
		}
		got, err := stlBytes(rep.Compacted)
		if err != nil {
			return err
		}
		if !bytes.Equal(got, ref) {
			return fmt.Errorf("chaos: %s: clean campaign produced %d bytes differing from the %d-byte fault-free reference",
				s.Name, len(got), len(ref))
		}
		if s.ExpectQuarantine && banned == 0 {
			return fmt.Errorf("chaos: %s: Byzantine worker was never quarantined", s.Name)
		}
		return nil
	}
}

// degraded reports whether any PTP settled in a state the fault-free
// reference run cannot contain (quarantine or error-revert).
func degraded(rep *run.Report) bool {
	for _, o := range rep.Outcomes {
		if o.Status == run.StatusQuarantined || o.Status == run.StatusRevertedError {
			return true
		}
	}
	return false
}

func wipe(dir string) error {
	if err := os.RemoveAll(dir); err != nil {
		return err
	}
	return os.MkdirAll(dir, 0o777)
}

// SoakSchedule loops campaigns of one schedule until ctx expires or
// iters campaigns completed (iters <= 0 means until ctx expires),
// re-arming the schedule's failpoints before each campaign.
func (h *Harness) SoakSchedule(ctx context.Context, s Schedule, iters int) Result {
	res := Result{Schedule: s.Name}
	// The reference must never see an armed failpoint: compute it (once)
	// before the first arm, not lazily mid-campaign.
	if _, err := h.Reference(ctx); err != nil {
		res.Err = err
		return res
	}
	defer s.disarm()
	for i := 0; iters <= 0 || res.Campaigns < iters; i++ {
		if ctx.Err() != nil {
			break
		}
		res.Iter = i
		if err := s.arm(i); err != nil {
			res.Err = err
			break
		}
		round := h.RunCampaign
		if s.Overload {
			round = h.RunOverloadRound
		}
		if s.Server {
			round = h.RunServerRound
		}
		if err := round(ctx, s, &res); err != nil {
			if ctx.Err() != nil {
				break // deadline hit mid-campaign: not a failure
			}
			res.Err = err
			break
		}
		res.Campaigns++
		h.logf("chaos: %s: campaign %d ok (crashes %d, restarts %d)",
			s.Name, res.Campaigns, res.Crashes, res.Restarts)
	}
	return res
}

// Soak runs every schedule concurrently until ctx expires (or iters
// campaigns per schedule). It rejects schedule sets whose failpoint
// names overlap: the registry is process-global, and concurrent
// schedules fighting over one site would make both meaningless.
func (h *Harness) Soak(ctx context.Context, schedules []Schedule, iters int) ([]Result, error) {
	owner := map[string]string{}
	for _, s := range schedules {
		for name := range s.Failpoints {
			if prev, ok := owner[name]; ok {
				return nil, fmt.Errorf("chaos: schedules %s and %s both arm %s", prev, s.Name, name)
			}
			owner[name] = s.Name
		}
	}
	// Compute the reference before the storm: it must never run with
	// failpoints armed.
	if _, err := h.Reference(ctx); err != nil {
		return nil, err
	}
	results := make([]Result, len(schedules))
	var wg sync.WaitGroup
	for i, s := range schedules {
		wg.Add(1)
		go func(i int, s Schedule) {
			defer wg.Done()
			results[i] = h.SoakSchedule(ctx, s, iters)
		}(i, s)
	}
	wg.Wait()
	var firstErr error
	for _, r := range results {
		if r.Err != nil && firstErr == nil {
			firstErr = r.Err
		}
	}
	return results, firstErr
}

// Schedules is the canonical soak set: eight concurrent schedules with
// disjoint failpoint names covering every registered site — journal
// torn writes and disk-full, commit-bracket crashes, stage panics, a
// lossy wire, a Byzantine liar, a worker whose heartbeats die, a
// 3×-load overload storm against a saturated admission pool, and a
// control plane killed and restarted at journaled cut points.
func Schedules() []Schedule {
	return []Schedule{
		{
			Name: "journal-torn",
			Failpoints: map[string]failpoint.Config{
				"journal.append.write": {Kind: failpoint.KindShortWrite, Times: 3, Seed: 11},
				"journal.append.sync":  {Kind: failpoint.KindError, Times: 2, Seed: 12},
			},
		},
		{
			Name: "crash-commit",
			Failpoints: map[string]failpoint.Config{
				"run.precommit.crash":  {Kind: failpoint.KindError, Times: 2, Seed: 21},
				"run.postcommit.crash": {Kind: failpoint.KindError, Times: 2, Seed: 22},
			},
		},
		{
			Name:          "stage-panic",
			MaxPTPRetries: 3,
			Failpoints: map[string]failpoint.Config{
				// Times < MaxPTPRetries: even if every fire lands on one
				// PTP, retry absorbs it without quarantine. (A concurrent
				// pile-up can still quarantine; RunCampaign restarts.)
				"run.stage.panic": {Kind: failpoint.KindPanic, Times: 2, Seed: 31},
			},
		},
		{
			Name:          "wire-chaos",
			Workers:       3,
			FaultyWorkers: 1,
			Failpoints: map[string]failpoint.Config{
				"dist.reply.drop":      {Kind: failpoint.KindDrop, Prob: 0.2, Seed: 41},
				"dist.reply.dup":       {Kind: failpoint.KindDuplicate, Prob: 0.2, Seed: 42},
				"dist.reply.reorder":   {Kind: failpoint.KindReorder, Prob: 0.3, Seed: 43},
				"dist.reply.delay":     {Kind: failpoint.KindDelay, Delay: 3 * time.Millisecond, Prob: 0.3, Seed: 44},
				"dist.transport.error": {Kind: failpoint.KindError, Prob: 0.15, Seed: 45},
			},
		},
		{
			Name:             "byzantine",
			Workers:          4,
			FaultyWorkers:    1,
			VerifyFraction:   1,
			ExpectQuarantine: true,
			Failpoints: map[string]failpoint.Config{
				"dist.reply.byzantine": {Kind: failpoint.KindCorrupt, Prob: 1, Seed: 51},
			},
		},
		{
			Name:          "heartbeat-flap",
			Workers:       2,
			FaultyWorkers: 1,
			Failpoints: map[string]failpoint.Config{
				"dist.ping.error": {Kind: failpoint.KindError, Times: 4, Seed: 61},
			},
		},
		{
			Name:          "overload",
			Workers:       3,
			FaultyWorkers: 1,
			Overload:      true,
			Failpoints: map[string]failpoint.Config{
				// After: 1 — the round's own saturating hold evaluates the
				// site first and must pass; the injected shed then lands on
				// a real campaign's admission check, which must retry it.
				"overload.admit.shed": {Kind: failpoint.KindError, After: 1, Times: 1, Seed: 71},
				// A sluggish admission decision on the first few campaigns
				// must not change any outcome.
				"overload.admit.delay": {Kind: failpoint.KindDelay, Delay: 2 * time.Millisecond, Times: 8, Seed: 72},
				// Brownout worker: its first three shards bounce with
				// 429-equivalent busy replies (Delay doubles as the
				// Retry-After hint); the coordinator must reroute them
				// without charging failures or retry budget.
				"dist.reply.busy": {Kind: failpoint.KindError, Delay: time.Millisecond, Times: 3, Seed: 73},
			},
		},
		{
			Name:   "server",
			Server: true,
			Failpoints: map[string]failpoint.Config{
				// A failed queue-journal append is fail-stop: each fire
				// kills the control plane at a journaled cut point. Prob
				// spreads the two kills across the round's many appends
				// (submits, leases, heartbeat renewals, terminal records).
				"server.journal.append": {Kind: failpoint.KindError, Prob: 0.05, Times: 2, Seed: 81},
				// One suppressed heartbeat renewal = lease loss = another
				// fail-stop kill, a few heartbeats in.
				"server.lease.expire": {Kind: failpoint.KindError, After: 2, Times: 1, Seed: 82},
				// One result-cache artifact is silently corrupted as
				// written; reads must detect it (checksum mismatch), log a
				// miss and re-simulate — never serve the rot.
				"server.cache.corrupt": {Kind: failpoint.KindCorrupt, Times: 1, Seed: 83},
			},
		},
	}
}
