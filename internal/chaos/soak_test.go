package chaos

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"gpustl/internal/failpoint"
	"gpustl/internal/obs"
)

// TestSchedulesAreDisjointAndRegistered: the canonical schedule set
// must arm only registered failpoint names, with no name owned by two
// schedules (Soak runs them concurrently against one global registry).
func TestSchedulesAreDisjointAndRegistered(t *testing.T) {
	registered := map[string]bool{}
	for _, n := range failpoint.Names() {
		registered[n] = true
	}
	owner := map[string]string{}
	for _, s := range Schedules() {
		if len(s.Failpoints) == 0 {
			t.Errorf("schedule %s arms nothing", s.Name)
		}
		for name := range s.Failpoints {
			if !registered[name] {
				t.Errorf("schedule %s arms unregistered failpoint %s", s.Name, name)
			}
			if prev, ok := owner[name]; ok {
				t.Errorf("failpoint %s armed by both %s and %s", name, prev, s.Name)
			}
			owner[name] = s.Name
		}
	}
}

// TestSoakEachSchedule runs every canonical schedule for two campaigns,
// one schedule at a time, so a failure names its scenario directly.
func TestSoakEachSchedule(t *testing.T) {
	defer failpoint.Reset()
	for _, s := range Schedules() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			h := NewHarness(1)
			h.Logf = t.Logf
			h.Metrics = obs.NewRegistry()
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			defer cancel()
			res := h.SoakSchedule(ctx, s, 2)
			if res.Err != nil {
				t.Fatal(res.Err)
			}
			if res.Campaigns != 2 {
				t.Fatalf("completed %d campaigns, want 2", res.Campaigns)
			}
			if s.ExpectQuarantine {
				if res.Banned == 0 {
					t.Fatal("byzantine schedule never banned a worker")
				}
				snap := h.Metrics.Snapshot()
				if snap.Counters["gpustl_dist_quarantined_workers_total"] == 0 {
					t.Error("quarantine not visible in metrics")
				}
				if snap.Counters["gpustl_dist_byzantine_replies_total"] == 0 {
					t.Error("byzantine replies not visible in metrics")
				}
			}
		})
	}
}

// TestSoakConcurrentSchedules is the in-tree slice of `make chaos`: all
// canonical schedules at once — journal faults, commit crashes, stage
// panics and three worker-fleet scenarios firing concurrently — one
// campaign each, every output byte-identical to the reference.
func TestSoakConcurrentSchedules(t *testing.T) {
	if testing.Short() {
		t.Skip("soak: skipped in -short mode")
	}
	defer failpoint.Reset()
	h := NewHarness(2)
	h.Logf = t.Logf
	h.Metrics = obs.NewRegistry()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	results, err := h.Soak(ctx, Schedules(), 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Campaigns != 1 {
			t.Errorf("%s: %d campaigns, want 1", r.Schedule, r.Campaigns)
		}
	}
}

// TestEquivalenceMatrix is the chaos-seeded equivalence matrix from the
// issue: journal/commit crash-points × dist fault schedules × worker
// counts, every cell asserting the compacted STL byte-matches the
// fault-free reference. Cells run sequentially — each owns the whole
// registry — so crash-points here may overlap schedule names freely.
func TestEquivalenceMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix: skipped in -short mode")
	}
	defer failpoint.Reset()

	crashPoints := []struct {
		name string
		fps  map[string]failpoint.Config
	}{
		{"clean", nil},
		{"journal-short-write", map[string]failpoint.Config{
			"journal.append.write": {Kind: failpoint.KindShortWrite, Times: 2, Seed: 101},
		}},
		{"journal-sync-error", map[string]failpoint.Config{
			"journal.append.sync": {Kind: failpoint.KindError, Times: 1, Seed: 102},
		}},
		{"precommit-crash", map[string]failpoint.Config{
			"run.precommit.crash": {Kind: failpoint.KindError, Times: 2, Seed: 103},
		}},
		{"postcommit-crash", map[string]failpoint.Config{
			"run.postcommit.crash": {Kind: failpoint.KindError, Times: 2, Seed: 104},
		}},
		{"stage-panic", map[string]failpoint.Config{
			"run.stage.panic": {Kind: failpoint.KindPanic, Times: 2, Seed: 105},
		}},
	}
	distFaults := []struct {
		name    string
		fps     map[string]failpoint.Config
		workers []int
		verify  float64
		expectQ bool
		faultyW int
	}{
		{name: "local", workers: []int{0}},
		{name: "wire", workers: []int{2, 4}, faultyW: 1, fps: map[string]failpoint.Config{
			"dist.reply.drop":      {Kind: failpoint.KindDrop, Prob: 0.25, Seed: 201},
			"dist.reply.delay":     {Kind: failpoint.KindDelay, Delay: 2 * time.Millisecond, Prob: 0.25, Seed: 202},
			"dist.transport.error": {Kind: failpoint.KindError, Prob: 0.2, Seed: 203},
		}},
		{name: "byzantine", workers: []int{3, 4}, faultyW: 1, verify: 1, expectQ: true,
			fps: map[string]failpoint.Config{
				"dist.reply.byzantine": {Kind: failpoint.KindCorrupt, Prob: 1, Seed: 204},
			}},
	}

	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()
	h := NewHarness(3)
	for _, cp := range crashPoints {
		for _, df := range distFaults {
			for _, w := range df.workers {
				name := fmt.Sprintf("%s/%s/workers=%d", cp.name, df.name, w)
				t.Run(name, func(t *testing.T) {
					fps := map[string]failpoint.Config{}
					for k, v := range cp.fps {
						fps[k] = v
					}
					for k, v := range df.fps {
						fps[k] = v
					}
					s := Schedule{
						Name:             name,
						Failpoints:       fps,
						Workers:          w,
						FaultyWorkers:    df.faultyW,
						VerifyFraction:   df.verify,
						ExpectQuarantine: df.expectQ,
						MaxPTPRetries:    3,
					}
					res := h.SoakSchedule(ctx, s, 1)
					if res.Err != nil {
						t.Fatal(res.Err)
					}
					if res.Campaigns != 1 {
						t.Fatalf("completed %d campaigns, want 1", res.Campaigns)
					}
				})
			}
		}
	}
}

// TestRunCampaignDetectsRealDivergence: a harness whose reference bytes
// are wrong must fail the campaign, not absorb it — the byte comparison
// is the assertion everything else hangs on.
func TestRunCampaignDetectsRealDivergence(t *testing.T) {
	h := NewHarness(4)
	if _, err := h.Reference(context.Background()); err != nil {
		t.Fatal(err)
	}
	h.ref = append([]byte("corrupted"), h.ref...)
	var res Result
	err := h.RunCampaign(context.Background(), Schedule{Name: "divergence"}, &res)
	if err == nil {
		t.Fatal("campaign matched a corrupted reference")
	}
}

// TestOverloadRoundCounts pins down the overload round's bookkeeping:
// one round admits and completes all three campaigns, and sheds at
// least twice — the deterministic queue-full refusal of campaign C plus
// the injected overload.admit.shed that lands on campaign B.
func TestOverloadRoundCounts(t *testing.T) {
	var overloadSched *Schedule
	for _, s := range Schedules() {
		if s.Overload {
			s := s
			overloadSched = &s
			break
		}
	}
	if overloadSched == nil {
		t.Fatal("no overload schedule in Schedules()")
	}
	h := NewHarness(99)
	res := h.SoakSchedule(context.Background(), *overloadSched, 1)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Campaigns != 1 {
		t.Fatalf("rounds = %d, want 1", res.Campaigns)
	}
	if res.Admitted != 3 {
		t.Fatalf("admitted = %d, want 3 (every offered campaign must complete)", res.Admitted)
	}
	if res.Shed < 2 {
		t.Fatalf("shed = %d, want >= 2 (forced queue-full + injected)", res.Shed)
	}
	if res.Restarts != 0 {
		t.Fatalf("restarts = %d; overload must never degrade a campaign", res.Restarts)
	}
}

// TestScheduleSpecRoundTrips: every canonical schedule's printed repro
// spec must re-arm the same configs (including the per-iteration seed
// offset) through the same EnableSpec path the CLIs use.
func TestScheduleSpecRoundTrips(t *testing.T) {
	for _, s := range Schedules() {
		for _, iter := range []int{0, 3} {
			spec := s.Spec(iter)
			if err := failpoint.EnableSpec(spec); err != nil {
				t.Fatalf("schedule %s iter %d: spec %q does not re-arm: %v", s.Name, iter, spec, err)
			}
			s.disarm()
			for name, cfg := range s.Failpoints {
				want := cfg
				want.Seed += int64(iter) * 7919
				entry := name + "=" + want.Spec()
				if !strings.Contains(spec, entry) {
					t.Fatalf("schedule %s iter %d: spec %q missing entry %q", s.Name, iter, spec, entry)
				}
			}
		}
	}
}
