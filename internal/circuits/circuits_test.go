package circuits

import (
	"math/rand"
	"testing"

	"gpustl/internal/isa"
	"gpustl/internal/netlist"
)

func buildSP(t testing.TB) *netlist.Netlist {
	t.Helper()
	nl, err := BuildSP()
	if err != nil {
		t.Fatalf("BuildSP: %v", err)
	}
	return nl
}

func buildDU(t testing.TB) *netlist.Netlist {
	t.Helper()
	nl, err := BuildDU()
	if err != nil {
		t.Fatalf("BuildDU: %v", err)
	}
	return nl
}

func buildSFU(t testing.TB) *netlist.Netlist {
	t.Helper()
	nl, err := BuildSFU()
	if err != nil {
		t.Fatalf("BuildSFU: %v", err)
	}
	return nl
}

func TestModuleSizes(t *testing.T) {
	// The netlists must be in the same size ballpark as the paper's
	// synthesized units (DU ~2k gates, SP ~4k/lane, SFU ~10k/lane).
	du, sp, sfu := buildDU(t), buildSP(t), buildSFU(t)
	if n := du.NumGates(); n < 500 || n > 10000 {
		t.Errorf("DU gates = %d, want 500..10000", n)
	}
	if n := sp.NumGates(); n < 2000 || n > 20000 {
		t.Errorf("SP gates = %d, want 2000..20000", n)
	}
	if n := sfu.NumGates(); n < 5000 || n > 50000 {
		t.Errorf("SFU gates = %d, want 5000..50000", n)
	}
	t.Logf("gates: DU=%d SP=%d SFU=%d", du.NumGates(), sp.NumGates(), sfu.NumGates())
	if len(du.Inputs) != duInputs {
		t.Errorf("DU inputs = %d, want %d", len(du.Inputs), duInputs)
	}
	if len(sp.Inputs) != spInputs {
		t.Errorf("SP inputs = %d, want %d", len(sp.Inputs), spInputs)
	}
	if len(sfu.Inputs) != sfuInputs {
		t.Errorf("SFU inputs = %d, want %d", len(sfu.Inputs), sfuInputs)
	}
}

// mustEval builds a combinational evaluator, panicking on failure (test
// netlists are combinational by construction).
func mustEval(nl *netlist.Netlist) *netlist.Evaluator {
	ev, err := netlist.NewEvaluator(nl)
	if err != nil {
		panic(err)
	}
	return ev
}

// evalOnce evaluates one pattern, panicking on failure.
func evalOnce(ev *netlist.Evaluator, pattern []bool) []bool {
	out, err := ev.EvalOnce(pattern)
	if err != nil {
		panic(err)
	}
	return out
}

// evalSP runs the SP netlist on one pattern and returns (result, pred).
func evalSP(ev *netlist.Evaluator, fn SPFn, cond isa.Cond, a, b, c uint32) (uint32, bool) {
	p := EncodeSPPattern(fn, cond, a, b, c)
	out := evalOnce(ev, p.Bools(spInputs))
	var r uint32
	for i := 0; i < 32; i++ {
		if out[i] {
			r |= 1 << uint(i)
		}
	}
	return r, out[32]
}

func TestSPAgainstGolden(t *testing.T) {
	ev := mustEval(buildSP(t))
	r := rand.New(rand.NewSource(11))
	interesting := []uint32{0, 1, 2, 0xffffffff, 0x80000000, 0x7fffffff, 31, 32, 33}
	check := func(fn SPFn, cond isa.Cond, a, b, c uint32) {
		t.Helper()
		gotR, gotP := evalSP(ev, fn, cond, a, b, c)
		wantR, wantP := SPGolden(fn, cond, a, b, c)
		if gotR != wantR || gotP != wantP {
			t.Fatalf("SP fn=%d cond=%v a=%#x b=%#x c=%#x: netlist (%#x,%v) != golden (%#x,%v)",
				fn, cond, a, b, c, gotR, gotP, wantR, wantP)
		}
	}
	for fn := SPFn(0); int(fn) < NumSPFns; fn++ {
		for _, a := range interesting {
			for _, b := range interesting {
				check(fn, isa.CondLT, a, b, 5)
			}
		}
		for i := 0; i < 200; i++ {
			check(fn, isa.Cond(r.Intn(isa.NumConds)), r.Uint32(), r.Uint32(), r.Uint32())
		}
	}
}

func TestSPSetAllConds(t *testing.T) {
	ev := mustEval(buildSP(t))
	pairs := [][2]uint32{{5, 5}, {3, 9}, {9, 3}, {0x80000000, 1}, {1, 0x80000000},
		{0xffffffff, 0}, {0, 0xffffffff}}
	for cond := isa.Cond(0); int(cond) < isa.NumConds; cond++ {
		for _, p := range pairs {
			gotR, gotP := evalSP(ev, SPSet, cond, p[0], p[1], 0)
			wantR, wantP := SPGolden(SPSet, cond, p[0], p[1], 0)
			if gotR != wantR || gotP != wantP {
				t.Fatalf("SET %v (%#x,%#x): got (%#x,%v), want (%#x,%v)",
					cond, p[0], p[1], gotR, gotP, wantR, wantP)
			}
		}
	}
}

func TestSPFnOfRouting(t *testing.T) {
	// INEG must route as 0-a.
	fn, a, b, _, ok := SPFnOf(isa.OpINEG, 42, 0, 0)
	if !ok || fn != SPSub || a != 0 || b != 42 {
		t.Errorf("INEG routing: fn=%d a=%d b=%d ok=%v", fn, a, b, ok)
	}
	// MOV routes its source into the pass operand.
	fn, _, b, _, ok = SPFnOf(isa.OpMOV, 7, 0, 0)
	if !ok || fn != SPPass || b != 7 {
		t.Errorf("MOV routing: fn=%d b=%d ok=%v", fn, b, ok)
	}
	// FP ops do not enter the SP integer datapath.
	if _, _, _, _, ok := SPFnOf(isa.OpFADD, 1, 2, 3); ok {
		t.Error("FADD mapped to SP datapath")
	}
	if _, _, _, _, ok := SPFnOf(isa.OpGLD, 1, 2, 3); ok {
		t.Error("GLD mapped to SP datapath")
	}
}

func duOutIndex(nl *netlist.Netlist, name string) int {
	for i, n := range nl.OutputNames {
		if n == name {
			return i
		}
	}
	return -1
}

func duBusValue(nl *netlist.Netlist, out []bool, name string, width int) uint32 {
	var v uint32
	for i := 0; i < width; i++ {
		idx := duOutIndex(nl, name+"["+itoa(i)+"]")
		if idx < 0 {
			panic("missing output " + name)
		}
		if out[idx] {
			v |= 1 << uint(i)
		}
	}
	return v
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

func TestDUAgainstGolden(t *testing.T) {
	nl := buildDU(t)
	ev := mustEval(nl)
	r := rand.New(rand.NewSource(5))

	check := func(word isa.Word, pc int) {
		t.Helper()
		p := EncodeDUPattern(word, pc)
		out := evalOnce(ev, p.Bools(duInputs))
		want := DUGolden(word, pc)

		if got := out[duOutIndex(nl, "valid")]; got != want.Valid {
			t.Fatalf("word %#x: valid = %v, want %v", word, got, want.Valid)
		}
		for cl := 0; cl < 5; cl++ {
			name := "class_" + isa.Class(cl).String()
			if got := out[duOutIndex(nl, name)]; got != want.Class[cl] {
				t.Fatalf("word %#x: %s = %v, want %v", word, name, got, want.Class[cl])
			}
		}
		if got := uint16(duBusValue(nl, out, "ctrl", 16)); got != want.Ctrl {
			t.Fatalf("word %#x: ctrl = %#x, want %#x", word, got, want.Ctrl)
		}
		if got := uint8(duBusValue(nl, out, "rd", 6)); got != want.Rd {
			t.Fatalf("word %#x: rd = %d, want %d", word, got, want.Rd)
		}
		if got := uint8(duBusValue(nl, out, "ra", 6)); got != want.Ra {
			t.Fatalf("word %#x: ra = %d, want %d", word, got, want.Ra)
		}
		if got := uint8(duBusValue(nl, out, "rb", 6)); got != want.Rb {
			t.Fatalf("word %#x: rb = %d, want %d", word, got, want.Rb)
		}
		if got := out[duOutIndex(nl, "imm_par")]; got != want.ImmPar {
			t.Fatalf("word %#x: imm_par = %v, want %v", word, got, want.ImmPar)
		}
		if got := duBusValue(nl, out, "branch_pc", duPCWidth); got != want.BranchPC {
			t.Fatalf("word %#x pc %d: branch_pc = %#x, want %#x", word, pc, got, want.BranchPC)
		}
	}

	// All opcodes with random fields.
	for op := 0; op < isa.NumOpcodes; op++ {
		in := isa.Instruction{
			Op: isa.Opcode(op), Rd: uint8(r.Intn(64)), Ra: uint8(r.Intn(64)),
			Rb: uint8(r.Intn(64)), Imm: int32(r.Uint32()),
			Cond: isa.Cond(r.Intn(isa.NumConds)), Pg: isa.PredAlways,
		}
		check(isa.Encode(in), r.Intn(1<<16))
	}
	// Illegal opcodes must decode as invalid with zero ctrl.
	for op := isa.NumOpcodes; op < 64; op++ {
		check(isa.Word(uint64(op)<<58|uint64(r.Uint32())<<8), 0)
	}
	// Fully random words.
	for i := 0; i < 300; i++ {
		check(isa.Word(r.Uint64()), r.Intn(1<<20))
	}
}

func TestSFUAgainstGolden(t *testing.T) {
	ev := mustEval(buildSFU(t))
	r := rand.New(rand.NewSource(3))
	check := func(fn SFUFn, a uint32) {
		t.Helper()
		p := EncodeSFUPattern(fn, a)
		out := evalOnce(ev, p.Bools(sfuInputs))
		var got uint32
		for i := 0; i < 32; i++ {
			if out[i] {
				got |= 1 << uint(i)
			}
		}
		if want := SFUGolden(fn, a); got != want {
			t.Fatalf("SFU fn=%d a=%#x: netlist %#x != golden %#x", fn, a, got, want)
		}
	}
	for fn := SFUFn(0); int(fn) < NumSFUFns; fn++ {
		check(fn, 0)
		check(fn, 0xffffffff)
		check(fn, 0x3f800000) // 1.0f
		check(fn, 0xbf800000) // -1.0f
		for i := 0; i < 300; i++ {
			check(fn, r.Uint32())
		}
	}
}

func TestSFUMonotoneSegments(t *testing.T) {
	// The 2^x coefficient table must be strictly increasing in c0.
	c0, c1, c2 := sfuROMTables()
	for i := 1; i < len(c0); i++ {
		if c0[i] <= c0[i-1] {
			t.Fatalf("c0[%d]=%d not increasing", i, c0[i])
		}
	}
	for i := range c1 {
		if c1[i] >= 1<<sfuC1Bits {
			t.Fatalf("c1[%d]=%d overflows %d bits", i, c1[i], sfuC1Bits)
		}
		if c2[i] >= 1<<sfuC2Bits {
			t.Fatalf("c2[%d]=%d overflows %d bits", i, c2[i], sfuC2Bits)
		}
	}
	if c0[len(c0)-1] >= 1<<sfuC0Bits {
		t.Fatalf("c0 overflows %d bits", sfuC0Bits)
	}
}

func TestBuildModuleKinds(t *testing.T) {
	for k := ModuleKind(0); int(k) < NumModuleKinds; k++ {
		m, err := Build(k, 0)
		if err != nil {
			t.Fatalf("Build(%v): %v", k, err)
		}
		wantLanes := map[ModuleKind]int{ModuleDU: 1, ModuleSP: 8, ModuleSFU: 2,
			ModuleFP32: 8, ModulePIPE: 1}[k]
		if m.Lanes != wantLanes {
			t.Errorf("%v lanes = %d, want %d", k, m.Lanes, wantLanes)
		}
		if m.NL == nil || m.Kind != k {
			t.Errorf("%v malformed module", k)
		}
	}
	if _, err := Build(ModuleKind(99), 0); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestPatternApplyTo(t *testing.T) {
	p := EncodeSPPattern(SPXor, isa.CondEQ, 0xdeadbeef, 0x12345678, 0xffffffff)
	dst := make([]uint64, spInputs)
	p.ApplyTo(dst, 5)
	for i := 0; i < spInputs; i++ {
		want := uint64(0)
		if p.Bit(i) {
			want = 1 << 5
		}
		if dst[i] != want {
			t.Fatalf("input %d: %#x, want %#x", i, dst[i], want)
		}
	}
	// a occupies bits 0..31.
	for i := 0; i < 32; i++ {
		if p.Bit(i) != (0xdeadbeef>>uint(i)&1 == 1) {
			t.Fatalf("a bit %d wrong", i)
		}
	}
	// fn occupies bits 96..99.
	for i := 0; i < 4; i++ {
		if p.Bit(96+i) != (uint8(SPXor)>>uint(i)&1 == 1) {
			t.Fatalf("fn bit %d wrong", i)
		}
	}
}

func TestPackPatternsMatchesApplyTo(t *testing.T) {
	r := rand.New(rand.NewSource(67))
	for _, numIn := range []int{1, 17, 63, 64, 65, 100, 128} {
		for _, count := range []int{1, 5, 63, 64} {
			pats := make([]Pattern, count)
			for s := range pats {
				pats[s] = Pattern{W: [2]uint64{r.Uint64(), r.Uint64()}}
			}
			want := make([]uint64, numIn)
			for s, p := range pats {
				p.ApplyTo(want, uint(s))
			}
			got := make([]uint64, numIn)
			PackPatterns(pats, got)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("numIn=%d count=%d input %d: PackPatterns %#x, ApplyTo %#x",
						numIn, count, i, got[i], want[i])
				}
			}
		}
	}
}
