// Package circuits builds the gate-level models of the GPU modules the
// paper fault-simulates: the Decoder Unit (DU), the SP integer datapath and
// the SFU transcendental datapath. It stands in for the synthesis step the
// authors performed with the Nangate 15 nm OpenCell library: each generator
// elaborates a realistic structural netlist over the primitives of package
// netlist.
//
// The package also defines the per-module test-pattern encoding: the
// mapping from microarchitectural events (a fetched instruction word, an
// operand tuple entering an SP lane, an SFU operation) to the bit vector
// applied to the module's primary inputs.
package circuits

import "gpustl/internal/netlist"

// bus helpers ---------------------------------------------------------------

// constBus returns a bus driving the binary value v over width bits.
func constBus(b *netlist.Builder, v uint64, width int) []int32 {
	bus := make([]int32, width)
	for i := range bus {
		if v>>uint(i)&1 == 1 {
			bus[i] = b.Const1()
		} else {
			bus[i] = b.Const0()
		}
	}
	return bus
}

// notBus inverts every bit of a bus.
func notBus(b *netlist.Builder, a []int32) []int32 {
	out := make([]int32, len(a))
	for i := range a {
		out[i] = b.Not(a[i])
	}
	return out
}

// xorBus computes a ^ b bitwise.
func xorBus(b *netlist.Builder, x, y []int32) []int32 {
	out := make([]int32, len(x))
	for i := range x {
		out[i] = b.Xor(x[i], y[i])
	}
	return out
}

// andBus computes a & b bitwise.
func andBus(b *netlist.Builder, x, y []int32) []int32 {
	out := make([]int32, len(x))
	for i := range x {
		out[i] = b.And(x[i], y[i])
	}
	return out
}

// orBus computes a | b bitwise.
func orBus(b *netlist.Builder, x, y []int32) []int32 {
	out := make([]int32, len(x))
	for i := range x {
		out[i] = b.Or(x[i], y[i])
	}
	return out
}

// muxBus selects hi when sel=1, else lo, bitwise.
func muxBus(b *netlist.Builder, sel int32, lo, hi []int32) []int32 {
	out := make([]int32, len(lo))
	for i := range lo {
		out[i] = b.Mux(sel, lo[i], hi[i])
	}
	return out
}

// fanBus replicates a single net across width bits.
func fanBus(b *netlist.Builder, n int32, width int) []int32 {
	out := make([]int32, width)
	for i := range out {
		out[i] = b.Buf(n)
	}
	return out
}

// fullAdder returns (sum, carry) of a+b+c.
func fullAdder(b *netlist.Builder, x, y, c int32) (sum, carry int32) {
	axb := b.Xor(x, y)
	sum = b.Xor(axb, c)
	carry = b.Or(b.And(x, y), b.And(axb, c))
	return sum, carry
}

// rippleAdder returns a+b+cin over len(a) bits plus the carry out.
func rippleAdder(b *netlist.Builder, x, y []int32, cin int32) (sum []int32, cout int32) {
	sum = make([]int32, len(x))
	c := cin
	for i := range x {
		sum[i], c = fullAdder(b, x[i], y[i], c)
	}
	return sum, c
}

// addSub computes a+b when sub=0 and a-b when sub=1; also returns the final
// carry (i.e. NOT borrow for subtraction) and the overflow flag.
func addSub(b *netlist.Builder, x, y []int32, sub int32) (sum []int32, cout, ovf int32) {
	yx := make([]int32, len(y))
	for i := range y {
		yx[i] = b.Xor(y[i], sub)
	}
	sum = make([]int32, len(x))
	c := sub
	var cPrev int32
	for i := range x {
		cPrev = c
		sum[i], c = fullAdder(b, x[i], yx[i], c)
	}
	// Signed overflow = carry-into-MSB XOR carry-out-of-MSB.
	ovf = b.Xor(cPrev, c)
	return sum, c, ovf
}

// shiftLeft builds a logical barrel left-shifter: out = a << (amt[0..k-1]).
func shiftLeft(b *netlist.Builder, a []int32, amt []int32) []int32 {
	cur := a
	for s, sel := range amt {
		shift := 1 << uint(s)
		next := make([]int32, len(cur))
		for i := range cur {
			var shifted int32
			if i >= shift {
				shifted = cur[i-shift]
			} else {
				shifted = b.Const0()
			}
			next[i] = b.Mux(sel, cur[i], shifted)
		}
		cur = next
	}
	return cur
}

// shiftRight builds a logical barrel right-shifter.
func shiftRight(b *netlist.Builder, a []int32, amt []int32) []int32 {
	cur := a
	for s, sel := range amt {
		shift := 1 << uint(s)
		next := make([]int32, len(cur))
		for i := range cur {
			var shifted int32
			if i+shift < len(cur) {
				shifted = cur[i+shift]
			} else {
				shifted = b.Const0()
			}
			next[i] = b.Mux(sel, cur[i], shifted)
		}
		cur = next
	}
	return cur
}

// mulLow builds an array multiplier producing the low len(a) bits of a*b.
func mulLow(b *netlist.Builder, x, y []int32) []int32 {
	w := len(x)
	// acc starts as the first partial product row.
	acc := make([]int32, w)
	for i := range acc {
		acc[i] = b.And(x[i], y[0])
	}
	for row := 1; row < w; row++ {
		// Partial product row: (x & y[row]) << row, truncated to w bits.
		width := w - row
		pp := make([]int32, width)
		for i := 0; i < width; i++ {
			pp[i] = b.And(x[i], y[row])
		}
		// Add into acc[row:].
		c := b.Const0()
		for i := 0; i < width; i++ {
			acc[row+i], c = fullAdder(b, acc[row+i], pp[i], c)
		}
	}
	return acc
}

// mulFull builds an array multiplier producing all len(x)+len(y) bits.
func mulFull(b *netlist.Builder, x, y []int32) []int32 {
	wx, wy := len(x), len(y)
	out := make([]int32, wx+wy)
	for i := range out {
		out[i] = b.Const0()
	}
	for row := 0; row < wy; row++ {
		pp := make([]int32, wx)
		for i := range pp {
			pp[i] = b.And(x[i], y[row])
		}
		c := b.Const0()
		for i := 0; i < wx; i++ {
			out[row+i], c = fullAdder(b, out[row+i], pp[i], c)
		}
		// Propagate the final carry up.
		for i := row + wx; i < len(out) && c != b.Const0(); i++ {
			out[i], c = fullAdder(b, out[i], b.Const0(), c)
		}
	}
	return out
}

// isZero returns a net that is 1 when the whole bus is 0.
func isZero(b *netlist.Builder, a []int32) int32 {
	return b.Not(b.OrN(a...))
}

// equalBus returns a net that is 1 when the two buses are equal.
func equalBus(b *netlist.Builder, x, y []int32) int32 {
	diffs := make([]int32, len(x))
	for i := range x {
		diffs[i] = b.Xor(x[i], y[i])
	}
	return isZero(b, diffs)
}

// decodeField builds a one-hot decoder over the given field bits: output n
// is 1 when the field's binary value equals n. Inverted literals are shared.
func decodeField(b *netlist.Builder, field []int32, count int) []int32 {
	inv := notBus(b, field)
	out := make([]int32, count)
	for v := 0; v < count; v++ {
		lits := make([]int32, len(field))
		for i := range field {
			if v>>uint(i)&1 == 1 {
				lits[i] = field[i]
			} else {
				lits[i] = inv[i]
			}
		}
		out[v] = b.AndN(lits...)
	}
	return out
}
