package circuits

import (
	"gpustl/internal/isa"
	"gpustl/internal/netlist"
)

// DU module input layout (bit index within a Pattern):
//
//	iw[64]  bits  0..63   raw instruction word from the fetch stage
//	pc[24]  bits 64..87   program counter of the fetched instruction
const (
	duPCWidth = 24
	duInputs  = 64 + duPCWidth
)

// EncodeDUPattern packs a fetched instruction word and its PC into a DU
// test pattern. Every decoded warp instruction applies one such pattern.
func EncodeDUPattern(word isa.Word, pc int) Pattern {
	var p Pattern
	p.W[0] = uint64(word)
	p.W[1] = uint64(uint32(pc)) & (1<<duPCWidth - 1)
	return p
}

// duCtrlWord is the 16-bit microcode control word the DU emits per opcode:
//
//	[3:0]  SP function (SPFn) for ALU-class ops
//	[5:4]  memory space (0 global, 1 shared, 2 constant)
//	[8:6]  SFU function
//	[9]    register write enable
//	[10]   predicate write enable
//	[11]   immediate operand select
//	[12]   branch/control redirect
//	[13]   memory-unit dispatch
//	[14]   SFU dispatch
//	[15]   store (memory write)
func duCtrlWord(op isa.Opcode) uint16 {
	var w uint16
	if fn, _, _, _, ok := SPFnOf(op, 0, 0, 0); ok {
		w |= uint16(fn) & 0xf
	}
	switch op {
	case isa.OpGLD, isa.OpGST:
		// space 0
	case isa.OpSLD, isa.OpSST:
		w |= 1 << 4
	case isa.OpLDC:
		w |= 2 << 4
	}
	if fn, ok := SFUFnOf(op); ok {
		w |= uint16(fn&0x7) << 6
	}
	if isa.WritesRd(op) {
		w |= 1 << 9
	}
	if isa.SetsPred(op) {
		w |= 1 << 10
	}
	if isa.HasImm(op) || op == isa.OpMVI {
		w |= 1 << 11
	}
	if isa.IsBranch(op) || op == isa.OpSSY {
		w |= 1 << 12
	}
	if isa.ClassOf(op) == isa.ClassMem {
		w |= 1 << 13
	}
	if isa.ClassOf(op) == isa.ClassSFU {
		w |= 1 << 14
	}
	if op == isa.OpGST || op == isa.OpSST {
		w |= 1 << 15
	}
	return w
}

// DUOutputs is the golden reference of the DU netlist outputs for one
// pattern, used by tests.
type DUOutputs struct {
	Valid    bool
	Class    [5]bool // one-hot by isa.Class
	Ctrl     uint16
	Rd       uint8
	Ra       uint8
	Rb       uint8
	Pg       uint8
	PSense   bool
	Cond     uint8
	Pd       uint8
	ImmPar   bool   // parity of the 32-bit immediate field
	BranchPC uint32 // pc + 1 + imm, truncated to 24 bits
}

// DUGolden computes the reference decode of a raw word.
func DUGolden(word isa.Word, pc int) DUOutputs {
	u := uint64(word)
	op := isa.Opcode(u >> 58 & 0x3f)
	imm := uint32(u >> 8)
	var out DUOutputs
	out.Rd = uint8(u >> 52 & 0x3f)
	out.Ra = uint8(u >> 46 & 0x3f)
	out.Rb = uint8(u >> 40 & 0x3f)
	out.Pg = uint8(u >> 5 & 0x7)
	out.PSense = u>>4&1 == 1
	out.Cond = uint8(u >> 1 & 0x7)
	out.Pd = uint8(u & 1)
	var par uint32
	for i := 0; i < 32; i++ {
		par ^= imm >> uint(i) & 1
	}
	out.ImmPar = par == 1
	out.BranchPC = (uint32(pc) + 1 + imm) & (1<<duPCWidth - 1)
	if int(op) >= isa.NumOpcodes {
		return out // Valid=false, no class, zero ctrl
	}
	out.Valid = true
	out.Class[isa.ClassOf(op)] = true
	out.Ctrl = duCtrlWord(op)
	return out
}

// BuildDU elaborates the instruction Decoder Unit: a full one-hot opcode
// decoder, the class- and microcode-generation OR planes, register/
// predicate field extraction, an immediate parity tree and the branch
// target adder. Its inputs (the raw fetched word and PC) are the patterns
// every instruction of a PTP applies once per warp — which is why the
// decoder-unit PTPs exercise all instruction formats.
func BuildDU() (*netlist.Netlist, error) {
	b := netlist.NewBuilder("DU")

	iw := b.InputBus("iw", 64)
	pc := b.InputBus("pc", duPCWidth)

	opBits := iw[58:64]
	rd := iw[52:58]
	ra := iw[46:52]
	rb := iw[40:46]
	imm := iw[8:40]
	pg := iw[5:8]
	psen := iw[4]
	cond := iw[1:4]
	pd := iw[0]

	// One-hot opcode decode (64 minterms; the upper 12 feed only Valid).
	b.SetGroup("opcode-decode")
	opHot := decodeField(b, opBits, 64)
	valid := b.OrN(opHot[:isa.NumOpcodes]...)

	// Class one-hot OR planes.
	b.SetGroup("class-plane")
	var classTerms [5][]int32
	for op := 0; op < isa.NumOpcodes; op++ {
		cl := isa.ClassOf(isa.Opcode(op))
		classTerms[cl] = append(classTerms[cl], opHot[op])
	}
	for cl := 0; cl < 5; cl++ {
		b.Output("class_"+isa.Class(cl).String(), b.OrN(classTerms[cl]...))
	}

	// Microcode control-word OR planes.
	b.SetGroup("ctrl-plane")
	ctrl := make([]int32, 16)
	for bit := 0; bit < 16; bit++ {
		var terms []int32
		for op := 0; op < isa.NumOpcodes; op++ {
			if duCtrlWord(isa.Opcode(op))>>uint(bit)&1 == 1 {
				terms = append(terms, opHot[op])
			}
		}
		ctrl[bit] = b.OrN(terms...)
	}

	// Field extraction buffers (the DU drives these to the operand-read
	// stage; buffering makes the field wires observable fault sites).
	b.SetGroup("fields")
	b.Output("valid", valid)
	b.OutputBus("ctrl", ctrl)
	b.OutputBus("rd", fanOutBus(b, rd))
	b.OutputBus("ra", fanOutBus(b, ra))
	b.OutputBus("rb", fanOutBus(b, rb))
	b.OutputBus("pg", fanOutBus(b, pg))
	b.Output("psense", b.Buf(psen))
	b.OutputBus("cond", fanOutBus(b, cond))
	b.Output("pd", b.Buf(pd))

	// Immediate parity tree (ECC-style check bit over the 32-bit field).
	b.SetGroup("imm-parity")
	b.Output("imm_par", b.XorN(imm...))

	// Branch target adder: pc + 1 + imm[0:24].
	b.SetGroup("branch-adder")
	one := constBus(b, 1, duPCWidth)
	pc1, _ := rippleAdder(b, pc, one, b.Const0())
	tgt, _ := rippleAdder(b, pc1, imm[:duPCWidth], b.Const0())
	b.OutputBus("branch_pc", tgt)

	return b.Build()
}

func fanOutBus(b *netlist.Builder, bus []int32) []int32 {
	out := make([]int32, len(bus))
	for i, n := range bus {
		out[i] = b.Buf(n)
	}
	return out
}
