package circuits

import (
	"math/bits"

	"gpustl/internal/isa"
)

// The FP32 datapath models the 8 single-precision floating-point units the
// FlexGripPlus SM contains alongside the SP cores. The paper's STL does not
// target them, but the unit is part of the described GPU; building it makes
// the substrate complete and lets downstream users craft FP-targeted PTPs.
//
// Arithmetic follows a simplified, fully specified "FP32-T" semantics that
// the netlist and the golden model implement bit-identically:
//
//   - round toward zero (truncate) everywhere;
//   - denormal inputs are treated as zero, denormal results flush to zero;
//   - exponent overflow saturates to infinity (exp=255, mantissa=0);
//   - exp=255 carries no NaN/Inf special cases — it behaves as a huge
//     finite value (in-field test patterns care about toggling datapath
//     bits, not IEEE corner semantics);
//   - FMA is "truncate-then-add": the product is truncated to FP32-T and
//     then added, sharing the adder (fused-lite).

// FP32Fn selects the FP32 datapath function.
type FP32Fn uint8

// FP32 datapath functions.
const (
	FPAdd FP32Fn = iota // r = a + b
	FPMul               // r = a * b
	FPMa                // r = a*b + c (truncate-then-add)
	FPMin               // r = min(a, b)
	FPMax               // r = max(a, b)
	FPF2I               // r = int32(a), truncate, clamp
	FPI2F               // r = float32(int32(a)), truncate
	fpFnCount
)

// NumFP32Fns is the number of FP32 datapath functions.
const NumFP32Fns = int(fpFnCount)

// FP32 module input layout (bit index within a Pattern):
//
//	a[32]  bits  0..31
//	b[32]  bits 32..63
//	c[32]  bits 64..95
//	fn[3]  bits 96..98
const fp32Inputs = 99

// EncodeFP32Pattern packs an FP32 operation into a test pattern.
func EncodeFP32Pattern(fn FP32Fn, a, b, c uint32) Pattern {
	var p Pattern
	p.W[0] = uint64(a) | uint64(b)<<32
	p.W[1] = uint64(c) | uint64(fn&0x7)<<32
	return p
}

// DecodeFP32Pattern unpacks an FP32 pattern.
func DecodeFP32Pattern(p Pattern) (fnRaw uint8, a, b, c uint32) {
	return uint8(p.W[1] >> 32 & 0x7), uint32(p.W[0]), uint32(p.W[0] >> 32), uint32(p.W[1])
}

// FP32FnOf maps an FPU-class opcode to its datapath function with operand
// routing. ok=false for opcodes outside the FP32 unit.
func FP32FnOf(op isa.Opcode, a, b, c uint32) (fn FP32Fn, ra, rb, rc uint32, ok bool) {
	switch op {
	case isa.OpFADD:
		return FPAdd, a, b, 0, true
	case isa.OpFMUL:
		return FPMul, a, b, 0, true
	case isa.OpFFMA:
		return FPMa, a, b, c, true
	case isa.OpFMIN:
		return FPMin, a, b, 0, true
	case isa.OpFMAX:
		return FPMax, a, b, 0, true
	case isa.OpF2I:
		return FPF2I, a, 0, 0, true
	case isa.OpI2F:
		return FPI2F, a, 0, 0, true
	}
	return 0, 0, 0, 0, false
}

// ---------------------------------------------------------------------------
// Golden model (bit-exact reference of the netlist).

type fpUnpacked struct {
	zero bool
	sign uint32 // 0/1
	exp  int32  // biased, 1..255
	man  uint32 // 24 bits with implicit leading 1
}

func fpUnpack(x uint32) fpUnpacked {
	e := int32(x >> 23 & 0xff)
	if e == 0 {
		return fpUnpacked{zero: true, sign: x >> 31}
	}
	return fpUnpacked{
		sign: x >> 31,
		exp:  e,
		man:  1<<23 | x&0x7fffff,
	}
}

func fpPack(sign uint32, exp int32, man23 uint32) uint32 {
	switch {
	case exp <= 0:
		return 0 // flush to zero (keep sign out: +0)
	case exp >= 255:
		return sign<<31 | 255<<23
	}
	return sign<<31 | uint32(exp)<<23 | man23&0x7fffff
}

// fpMulT computes a*b in FP32-T.
func fpMulT(a, b uint32) uint32 {
	x, y := fpUnpack(a), fpUnpack(b)
	sign := x.sign ^ y.sign
	if x.zero || y.zero {
		return 0
	}
	p := uint64(x.man) * uint64(y.man) // 48 bits
	e := x.exp + y.exp - 127
	var man uint32
	if p>>47&1 == 1 {
		man = uint32(p >> 24)
		e++
	} else {
		man = uint32(p >> 23)
	}
	return fpPack(sign, e, man)
}

// fpAddT computes a+b in FP32-T.
func fpAddT(a, b uint32) uint32 {
	x, y := fpUnpack(a), fpUnpack(b)
	if x.zero && y.zero {
		return 0
	}
	if x.zero {
		return b
	}
	if y.zero {
		return a
	}
	// Order by magnitude: big = max(|a|, |b|).
	bigFirst := x.exp > y.exp || (x.exp == y.exp && x.man >= y.man)
	big, small := x, y
	if !bigFirst {
		big, small = y, x
	}
	d := big.exp - small.exp
	if d > 31 {
		d = 31
	}
	mbig := big.man << 2                  // 26 bits
	msmall := (small.man << 2) >> uint(d) // aligned, guard bits
	sub := x.sign != y.sign
	var sum uint32 // 27 bits
	if sub {
		sum = mbig - msmall
	} else {
		sum = mbig + msmall
	}
	if sum == 0 {
		return 0
	}
	lz := int32(bits.LeadingZeros32(sum)) - 5 // zeros within the 27-bit frame
	norm := sum << uint(lz)                   // leading 1 at bit 26
	man := norm >> 3                          // 24 bits
	e := big.exp + 1 - lz
	return fpPack(big.sign, e, man)
}

// fpMinMaxT computes min or max using the order-flip comparison.
func fpMinMaxT(a, b uint32, wantMax bool) uint32 {
	key := func(v uint32) uint32 {
		if v>>31 == 1 {
			return ^v
		}
		return v ^ 0x80000000
	}
	aLess := key(a) < key(b)
	if aLess != wantMax {
		return a
	}
	return b
}

// fpF2IT converts to int32 with truncation and clamping.
func fpF2IT(a uint32) uint32 {
	x := fpUnpack(a)
	if x.zero {
		return 0
	}
	t := x.exp - 127 - 23 // shift applied to the 24-bit mantissa
	var mag uint32
	switch {
	case t >= 8:
		// |value| >= 2^31: clamp.
		if x.sign == 1 {
			return 0x80000000
		}
		return 0x7fffffff
	case t >= 0:
		mag = x.man << uint(t)
	case t > -32:
		mag = x.man >> uint(-t)
	default:
		mag = 0
	}
	if x.sign == 1 {
		return -mag
	}
	return mag
}

// fpI2FT converts int32 to FP32-T with truncation.
func fpI2FT(a uint32) uint32 {
	if a == 0 {
		return 0
	}
	sign := a >> 31
	mag := a
	if sign == 1 {
		mag = -a
	}
	lz := int32(bits.LeadingZeros32(mag))
	norm := mag << uint(lz) // leading 1 at bit 31
	man := norm >> 8        // 24 bits
	e := 158 - lz
	return fpPack(sign, e, man)
}

// FP32Golden is the bit-exact reference model of the FP32 netlist.
func FP32Golden(fn FP32Fn, a, b, c uint32) uint32 {
	switch fn {
	case FPAdd:
		return fpAddT(a, b)
	case FPMul:
		return fpMulT(a, b)
	case FPMa:
		return fpAddT(fpMulT(a, b), c)
	case FPMin:
		return fpMinMaxT(a, b, false)
	case FPMax:
		return fpMinMaxT(a, b, true)
	case FPF2I:
		return fpF2IT(a)
	case FPI2F:
		return fpI2FT(a)
	}
	return 0
}
