package circuits

import (
	"math"
	"math/rand"
	"testing"

	"gpustl/internal/isa"
	"gpustl/internal/netlist"
)

func buildFP32(t testing.TB) *netlist.Netlist {
	t.Helper()
	nl, err := BuildFP32()
	if err != nil {
		t.Fatalf("BuildFP32: %v", err)
	}
	return nl
}

func evalFP32(ev *netlist.Evaluator, fn FP32Fn, a, b, c uint32) uint32 {
	p := EncodeFP32Pattern(fn, a, b, c)
	out := evalOnce(ev, p.Bools(fp32Inputs))
	var r uint32
	for i := 0; i < 32; i++ {
		if out[i] {
			r |= 1 << uint(i)
		}
	}
	return r
}

// fpInteresting draws operands biased toward FP corner structures.
func fpInteresting(r *rand.Rand) uint32 {
	switch r.Intn(6) {
	case 0:
		return 0
	case 1: // denormal
		return uint32(r.Intn(2))<<31 | uint32(r.Intn(1<<23))
	case 2: // exp 255
		return uint32(r.Intn(2))<<31 | 255<<23 | uint32(r.Intn(1<<23))
	case 3: // small integers as floats
		return math.Float32bits(float32(r.Intn(64) - 32))
	default:
		return r.Uint32()
	}
}

func TestFP32AgainstGolden(t *testing.T) {
	ev := mustEval(buildFP32(t))
	r := rand.New(rand.NewSource(51))
	check := func(fn FP32Fn, a, b, c uint32) {
		t.Helper()
		got := evalFP32(ev, fn, a, b, c)
		want := FP32Golden(fn, a, b, c)
		if got != want {
			t.Fatalf("FP32 fn=%d a=%#x b=%#x c=%#x: netlist %#x != golden %#x",
				fn, a, b, c, got, want)
		}
	}
	for fn := FP32Fn(0); int(fn) < NumFP32Fns; fn++ {
		// Directed corners.
		corners := []uint32{0, 0x80000000, 0x3f800000, 0xbf800000, // ±0, ±1
			0x7f7fffff, 0x00800000, 0x7f800000, 0x00000001, 0x7fffffff}
		for _, a := range corners {
			for _, b := range corners {
				check(fn, a, b, 0x40490fdb) // c = pi
			}
		}
		for i := 0; i < 2000; i++ {
			check(fn, fpInteresting(r), fpInteresting(r), fpInteresting(r))
		}
	}
}

// TestFP32AddCancellation stresses the normalize path with near-equal
// operands of opposite sign.
func TestFP32AddCancellation(t *testing.T) {
	ev := mustEval(buildFP32(t))
	r := rand.New(rand.NewSource(53))
	for i := 0; i < 3000; i++ {
		a := r.Uint32()&0x7fffff | uint32(64+r.Intn(128))<<23
		// b = a with a few low mantissa bits flipped, opposite sign.
		b := a ^ uint32(r.Intn(1<<uint(1+r.Intn(8)))) | 1<<31
		got := evalFP32(ev, FPAdd, a, b, 0)
		want := FP32Golden(FPAdd, a, b, 0)
		if got != want {
			t.Fatalf("cancel a=%#x b=%#x: %#x != %#x", a, b, got, want)
		}
	}
}

// TestFP32AddAlignment stresses large exponent differences.
func TestFP32AddAlignment(t *testing.T) {
	ev := mustEval(buildFP32(t))
	r := rand.New(rand.NewSource(55))
	for i := 0; i < 2000; i++ {
		ea := 1 + r.Intn(254)
		eb := 1 + r.Intn(254)
		a := uint32(ea)<<23 | uint32(r.Intn(1<<23)) | uint32(r.Intn(2))<<31
		b := uint32(eb)<<23 | uint32(r.Intn(1<<23)) | uint32(r.Intn(2))<<31
		got := evalFP32(ev, FPAdd, a, b, 0)
		want := FP32Golden(FPAdd, a, b, 0)
		if got != want {
			t.Fatalf("align a=%#x b=%#x: %#x != %#x", a, b, got, want)
		}
	}
}

// TestFP32TruncationSemantics spot-checks FP32-T against IEEE float32 on
// values where truncation and round-to-nearest agree.
func TestFP32TruncationSemantics(t *testing.T) {
	cases := [][2]float32{{1, 2}, {3.5, -1.25}, {-5, 3}, {1024, 0.5}}
	for _, c := range cases {
		got := math.Float32frombits(FP32Golden(FPAdd,
			math.Float32bits(c[0]), math.Float32bits(c[1]), 0))
		if got != c[0]+c[1] {
			t.Errorf("add(%g,%g) = %g", c[0], c[1], got)
		}
		gotm := math.Float32frombits(FP32Golden(FPMul,
			math.Float32bits(c[0]), math.Float32bits(c[1]), 0))
		if gotm != c[0]*c[1] {
			t.Errorf("mul(%g,%g) = %g", c[0], c[1], gotm)
		}
	}
	// F2I truncates toward zero; I2F is exact for small ints.
	if int32(FP32Golden(FPF2I, math.Float32bits(-7.99), 0, 0)) != -7 {
		t.Error("f2i(-7.99)")
	}
	for i := int32(-300); i <= 300; i += 17 {
		got := math.Float32frombits(FP32Golden(FPI2F, uint32(i), 0, 0))
		if got != float32(i) {
			t.Errorf("i2f(%d) = %g", i, got)
		}
	}
}

func TestFP32FnOfRouting(t *testing.T) {
	fn, a, b, c, ok := FP32FnOf(isa.OpFFMA, 1, 2, 3)
	if !ok || fn != FPMa || a != 1 || b != 2 || c != 3 {
		t.Errorf("FFMA routing: %d %d %d %d %v", fn, a, b, c, ok)
	}
	if _, _, _, _, ok := FP32FnOf(isa.OpIADD, 1, 2, 3); ok {
		t.Error("IADD mapped to FP32")
	}
	if _, _, _, _, ok := FP32FnOf(isa.OpSIN, 1, 2, 3); ok {
		t.Error("SIN mapped to FP32")
	}
}

func TestFP32ModuleBuild(t *testing.T) {
	m, err := Build(ModuleFP32, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Lanes != 8 {
		t.Errorf("lanes = %d, want 8 (FlexGripPlus has 8 FP32 units)", m.Lanes)
	}
	n := m.NL.NumGates()
	if n < 5000 || n > 40000 {
		t.Errorf("FP32 gates = %d", n)
	}
	t.Logf("FP32: %d gates, %d inputs", n, len(m.NL.Inputs))
	if len(m.NL.Inputs) != fp32Inputs {
		t.Errorf("inputs = %d, want %d", len(m.NL.Inputs), fp32Inputs)
	}
}

func TestFP32PatternRoundTrip(t *testing.T) {
	p := EncodeFP32Pattern(FPMa, 0xdeadbeef, 0x12345678, 0xcafebabe)
	fn, a, b, c := DecodeFP32Pattern(p)
	if FP32Fn(fn) != FPMa || a != 0xdeadbeef || b != 0x12345678 || c != 0xcafebabe {
		t.Fatalf("round trip: %d %#x %#x %#x", fn, a, b, c)
	}
}
