package circuits

import "gpustl/internal/netlist"

// Gate-level elaboration of the FP32 datapath. Every step mirrors the
// golden model in fp32.go bit for bit; see that file for the FP32-T
// semantics.

// fpBus is an unpacked operand in gates.
type fpBus struct {
	zero int32
	sign int32
	exp  []int32 // 8 bits, biased
	man  []int32 // 24 bits with the implicit leading 1
}

func fpUnpackNet(b *netlist.Builder, x []int32) fpBus {
	exp := x[23:31]
	z := isZero(b, exp)
	man := make([]int32, 24)
	copy(man, x[0:23])
	man[23] = b.Not(z) // implicit bit for normals
	return fpBus{zero: z, sign: x[31], exp: exp, man: man}
}

// zext widens a bus with constant zeros.
func zext(b *netlist.Builder, bus []int32, w int) []int32 {
	out := make([]int32, w)
	for i := range out {
		if i < len(bus) {
			out[i] = bus[i]
		} else {
			out[i] = b.Const0()
		}
	}
	return out
}

// subConst computes bus - k over len(bus) bits (two's complement).
func subConst(b *netlist.Builder, bus []int32, k uint64) []int32 {
	kc := constBus(b, (^k)&(1<<uint(len(bus))-1), len(bus))
	sum, _ := rippleAdder(b, bus, kc, b.Const1())
	return sum
}

// addConst computes bus + k.
func addConst(b *netlist.Builder, bus []int32, k uint64) []int32 {
	sum, _ := rippleAdder(b, bus, constBus(b, k, len(bus)), b.Const0())
	return sum
}

// ltUnsigned returns the borrow of x - y: 1 when x < y (equal widths).
func ltUnsigned(b *netlist.Builder, x, y []int32) int32 {
	_, cout, _ := addSub(b, x, y, b.Const1())
	return b.Not(cout)
}

// negate computes two's complement of the bus.
func negate(b *netlist.Builder, bus []int32) []int32 {
	return addConst(b, notBus(b, bus), 1)
}

// normalizeLeft32 shifts the 32-bit bus left until bit 31 is the leading 1
// and returns the normalized bus plus the 5-bit shift count (31 when the
// input is zero; callers gate that case).
func normalizeLeft32(b *netlist.Builder, bus []int32) (norm []int32, count []int32) {
	cur := bus
	count = make([]int32, 5)
	for s := 4; s >= 0; s-- {
		k := 1 << uint(s)
		topZero := b.Not(b.OrN(cur[32-k:]...))
		next := make([]int32, 32)
		for i := 0; i < 32; i++ {
			var shifted int32
			if i >= k {
				shifted = cur[i-k]
			} else {
				shifted = b.Const0()
			}
			next[i] = b.Mux(topZero, cur[i], shifted)
		}
		cur = next
		count[s] = topZero
	}
	return cur, count
}

// ge255 reports e10 >= 255 for a 10-bit non-negative value.
func ge255(b *netlist.Builder, e10 []int32) int32 {
	return b.And(b.Not(e10[9]), b.Or(e10[8], b.AndN(e10[0:8]...)))
}

// packFP assembles the 32-bit result word: flush-to-+0 when forceZero or
// the exponent is <= 0, saturate to inf when the exponent is >= 255.
func packFP(b *netlist.Builder, sign int32, e10 []int32, man24 []int32, forceZero int32) []int32 {
	under := b.Or(e10[9], isZero(b, e10))
	z := b.Or(forceZero, under)
	over := b.And(ge255(b, e10), b.Not(z))
	nz := b.Not(z)
	keepMan := b.And(nz, b.Not(over))
	out := make([]int32, 32)
	for i := 0; i < 23; i++ {
		out[i] = b.And(man24[i], keepMan)
	}
	for i := 0; i < 8; i++ {
		out[23+i] = b.And(nz, b.Or(over, e10[i]))
	}
	out[31] = b.And(sign, nz)
	return out
}

// fpMulNet elaborates the FP32-T multiplier; returns the packed word.
func fpMulNet(b *netlist.Builder, x, y fpBus) []int32 {
	sign := b.Xor(x.sign, y.sign)
	z := b.Or(x.zero, y.zero)
	p := mulFull(b, x.man, y.man) // 48 bits
	norm := p[47]
	man := muxBus(b, norm, p[23:47], p[24:48])
	eSum, _ := rippleAdder(b, zext(b, x.exp, 10), zext(b, y.exp, 10), norm)
	e10 := subConst(b, eSum, 127)
	return packFP(b, sign, e10, man, z)
}

// fpAddNet elaborates the FP32-T adder on two raw 32-bit words.
func fpAddNet(b *netlist.Builder, xw, yw []int32) []int32 {
	x := fpUnpackNet(b, xw)
	y := fpUnpackNet(b, yw)

	// Magnitude order on {exp, frac} (31 bits).
	xKey := append(append([]int32{}, xw[0:23]...), x.exp...)
	yKey := append(append([]int32{}, yw[0:23]...), y.exp...)
	xLess := ltUnsigned(b, xKey, yKey)

	bigSign := b.Mux(xLess, x.sign, y.sign)
	bigExp := muxBus(b, xLess, x.exp, y.exp)
	bigMan := muxBus(b, xLess, x.man, y.man)
	smallExp := muxBus(b, xLess, y.exp, x.exp)
	smallMan := muxBus(b, xLess, y.man, x.man)

	d, _, _ := addSub(b, bigExp, smallExp, b.Const1())
	dge32 := b.OrN(d[5:]...)
	amt := make([]int32, 5)
	for i := range amt {
		amt[i] = b.Or(d[i], dge32) // saturate to 31
	}

	mbig := zext(b, bigMan, 26) // << 2 by wiring
	copy(mbig[2:], bigMan)
	mbig[0], mbig[1] = b.Const0(), b.Const0()
	msmallFull := zext(b, smallMan, 26)
	copy(msmallFull[2:], smallMan)
	msmallFull[0], msmallFull[1] = b.Const0(), b.Const0()
	msmall := shiftRight(b, msmallFull, amt)

	sub := b.Xor(x.sign, y.sign)
	sum, _, _ := addSub(b, zext(b, mbig, 27), zext(b, msmall, 27), sub)
	zeroSum := isZero(b, sum)

	norm32, lz5 := normalizeLeft32(b, zext(b, sum, 32))
	man24 := norm32[8:32]
	// e = ebig + 6 - lz32, computed in 10 bits.
	e10 := addConst(b, zext(b, bigExp, 10), 6)
	eAdj, _, _ := addSub(b, e10, zext(b, lz5, 10), b.Const1())

	core := packFP(b, bigSign, eAdj, man24, zeroSum)

	// Zero-operand bypasses: both zero -> 0, x zero -> y raw, y zero -> x raw.
	out := make([]int32, 32)
	zeroBoth := b.And(x.zero, y.zero)
	for i := 0; i < 32; i++ {
		v := b.Mux(x.zero, core[i], yw[i])
		v = b.Mux(y.zero, v, xw[i])
		out[i] = b.And(v, b.Not(zeroBoth))
	}
	return out
}

// fpMinMaxNet elaborates the order-flip comparator selection.
func fpMinMaxNet(b *netlist.Builder, aw, bw []int32) (minv, maxv []int32) {
	key := func(w []int32) []int32 {
		k := make([]int32, 32)
		for i := 0; i < 31; i++ {
			k[i] = b.Xor(w[i], w[31])
		}
		k[31] = b.Not(w[31])
		return k
	}
	aLess := ltUnsigned(b, key(aw), key(bw))
	minv = muxBus(b, aLess, bw, aw)
	maxv = muxBus(b, aLess, aw, bw)
	return minv, maxv
}

// fpF2INet elaborates float-to-int32 with truncation and clamping.
func fpF2INet(b *netlist.Builder, aw []int32) []int32 {
	x := fpUnpackNet(b, aw)
	t := subConst(b, zext(b, x.exp, 10), 150)
	tneg := t[9]
	geClamp := b.And(b.Not(tneg), b.OrN(t[3:9]...)) // t >= 8

	man32 := zext(b, x.man, 32)
	shl := shiftLeft(b, man32, t[0:3])
	nt := negate(b, t)
	ntSat := b.OrN(nt[5:]...)
	amt := make([]int32, 5)
	for i := range amt {
		amt[i] = b.Or(nt[i], ntSat)
	}
	shr := shiftRight(b, man32, amt)
	mag := muxBus(b, tneg, shl, shr)
	neg := negate(b, mag)
	val := muxBus(b, x.sign, mag, neg)

	out := make([]int32, 32)
	for i := 0; i < 32; i++ {
		var clampBit int32
		if i == 31 {
			clampBit = x.sign // 0x7fffffff / 0x80000000
		} else {
			clampBit = b.Not(x.sign)
		}
		v := b.Mux(geClamp, val[i], clampBit)
		out[i] = b.And(v, b.Not(x.zero))
	}
	return out
}

// fpI2FNet elaborates int32-to-float with truncation.
func fpI2FNet(b *netlist.Builder, aw []int32) []int32 {
	sign := aw[31]
	neg := negate(b, aw)
	mag := muxBus(b, sign, aw, neg)
	z := isZero(b, aw)
	norm32, lz5 := normalizeLeft32(b, mag)
	man24 := norm32[8:32]
	e10, _, _ := addSub(b, constBus(b, 158, 10), zext(b, lz5, 10), b.Const1())
	return packFP(b, sign, e10, man24, z)
}

// BuildFP32 elaborates the full FP32 unit with its function-select plane.
func BuildFP32() (*netlist.Netlist, error) {
	b := netlist.NewBuilder("FP32")
	a := b.InputBus("a", 32)
	bb := b.InputBus("b", 32)
	cc := b.InputBus("c", 32)
	fn := b.InputBus("fn", 3)

	b.SetGroup("fn-decode")
	fnHot := decodeField(b, fn, NumFP32Fns)

	b.SetGroup("unpack")
	xa := fpUnpackNet(b, a)
	xb := fpUnpackNet(b, bb)
	b.SetGroup("fp-multiplier")
	mulOut := fpMulNet(b, xa, xb)

	// The adder serves FADD (a+b) and FMA (mul+c) through input muxes.
	b.SetGroup("fp-adder")
	isMa := fnHot[FPMa]
	addX := muxBus(b, isMa, a, mulOut)
	addY := muxBus(b, isMa, bb, cc)
	addOut := fpAddNet(b, addX, addY)

	b.SetGroup("fp-minmax")
	minOut, maxOut := fpMinMaxNet(b, a, bb)
	b.SetGroup("f2i")
	f2iOut := fpF2INet(b, a)
	b.SetGroup("i2f")
	i2fOut := fpI2FNet(b, a)

	b.SetGroup("result-select")
	cands := [NumFP32Fns][]int32{
		FPAdd: addOut, FPMul: mulOut, FPMa: addOut,
		FPMin: minOut, FPMax: maxOut, FPF2I: f2iOut, FPI2F: i2fOut,
	}
	out := make([]int32, 32)
	for i := 0; i < 32; i++ {
		terms := make([]int32, 0, NumFP32Fns)
		for f := 0; f < NumFP32Fns; f++ {
			terms = append(terms, b.And(fnHot[f], cands[f][i]))
		}
		out[i] = b.OrN(terms...)
	}
	b.OutputBus("y", out)
	return b.Build()
}
