package circuits

import (
	"fmt"

	"gpustl/internal/netlist"
)

// ModuleKind identifies one of the GPU modules targeted by the STL.
type ModuleKind uint8

// The three target modules of the paper's experiments, plus the FP32 unit
// (part of the described SM; not targeted by the paper's STL).
const (
	ModuleDU   ModuleKind = iota // instruction Decoder Unit
	ModuleSP                     // SP core integer datapath (8 lanes)
	ModuleSFU                    // Special Function Unit datapath (2 lanes)
	ModuleFP32                   // FP32 floating-point datapath (8 lanes)
	ModulePIPE                   // fetch/decode pipeline registers (sequential)
	moduleKinds
)

// NumModuleKinds is the number of defined module kinds.
const NumModuleKinds = int(moduleKinds)

// String returns the module's short name.
func (k ModuleKind) String() string {
	switch k {
	case ModuleDU:
		return "DU"
	case ModuleSP:
		return "SP"
	case ModuleSFU:
		return "SFU"
	case ModuleFP32:
		return "FP32"
	case ModulePIPE:
		return "PIPE"
	}
	return fmt.Sprintf("ModuleKind(%d)", uint8(k))
}

// Module pairs a gate-level netlist with its place in the SM.
type Module struct {
	Kind  ModuleKind
	NL    *netlist.Netlist
	Lanes int // identical instances in the SM (DU: 1, SP: 8, SFU: 2)
}

// Build constructs the module of the given kind with the given lane count
// (0 selects the FlexGripPlus default: 1 DU, 8 SPs, 2 SFUs).
func Build(kind ModuleKind, lanes int) (*Module, error) {
	switch kind {
	case ModuleDU:
		if lanes == 0 {
			lanes = 1
		}
		nl, err := BuildDU()
		if err != nil {
			return nil, err
		}
		return &Module{Kind: kind, NL: nl, Lanes: lanes}, nil
	case ModuleSP:
		if lanes == 0 {
			lanes = 8
		}
		nl, err := BuildSP()
		if err != nil {
			return nil, err
		}
		return &Module{Kind: kind, NL: nl, Lanes: lanes}, nil
	case ModuleSFU:
		if lanes == 0 {
			lanes = 2
		}
		nl, err := BuildSFU()
		if err != nil {
			return nil, err
		}
		return &Module{Kind: kind, NL: nl, Lanes: lanes}, nil
	case ModuleFP32:
		if lanes == 0 {
			lanes = 8
		}
		nl, err := BuildFP32()
		if err != nil {
			return nil, err
		}
		return &Module{Kind: kind, NL: nl, Lanes: lanes}, nil
	case ModulePIPE:
		if lanes == 0 {
			lanes = 1
		}
		nl, err := BuildPIPE()
		if err != nil {
			return nil, err
		}
		return &Module{Kind: kind, NL: nl, Lanes: lanes}, nil
	}
	return nil, fmt.Errorf("circuits: unknown module kind %d", kind)
}

// Pattern is one test pattern for a module: the values applied to its
// primary inputs on one clock cycle, packed LSB-first into two words
// (every module has at most 128 inputs).
type Pattern struct {
	W [2]uint64
}

// Bit returns input bit i of the pattern.
func (p Pattern) Bit(i int) bool { return p.W[i/64]>>(uint(i)%64)&1 == 1 }

// ApplyTo ORs the pattern's bits into the packed 64-way input vectors at
// bit position slot. dst must have one entry per module input.
func (p Pattern) ApplyTo(dst []uint64, slot uint) {
	bit := uint64(1) << slot
	for i := range dst {
		if p.W[i>>6]>>(uint(i)&63)&1 == 1 {
			dst[i] |= bit
		}
	}
}

// Bools expands the pattern into one bool per module input.
func (p Pattern) Bools(numInputs int) []bool {
	out := make([]bool, numInputs)
	for i := range out {
		out[i] = p.Bit(i)
	}
	return out
}

// DecodeSPPattern unpacks an SP pattern into its raw fields. Fn and cond
// are returned unvalidated (ATPG may produce encodings outside the legal
// instruction set; the pattern-to-instruction parser rejects those).
func DecodeSPPattern(p Pattern) (fnRaw, condRaw uint8, a, b, c uint32) {
	a = uint32(p.W[0])
	b = uint32(p.W[0] >> 32)
	c = uint32(p.W[1])
	fnRaw = uint8(p.W[1] >> 32 & 0xf)
	condRaw = uint8(p.W[1] >> 36 & 0x7)
	return fnRaw, condRaw, a, b, c
}

// DecodeSFUPattern unpacks an SFU pattern into its raw fields.
func DecodeSFUPattern(p Pattern) (fnRaw uint8, a uint32) {
	return uint8(p.W[0] >> 32 & 0x7), uint32(p.W[0])
}

// DecodeDUPattern unpacks a DU pattern.
func DecodeDUPattern(p Pattern) (word uint64, pc uint32) {
	return p.W[0], uint32(p.W[1]) & (1<<duPCWidth - 1)
}
