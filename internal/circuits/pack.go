package circuits

// PackPatterns packs up to 64 patterns into per-input bit vectors:
// dst[i] bit s is pattern s's value of module input i. It is equivalent
// to calling pats[s].ApplyTo(dst, s) for every slot on a zeroed dst, but
// runs as two 64×64 bit-matrix transposes instead of one branch per
// (pattern, input) pair. Slots past len(pats) come out zero.
func PackPatterns(pats []Pattern, dst []uint64) {
	var t [2][64]uint64
	for s := range pats {
		t[0][63-s] = pats[s].W[0]
		t[1][63-s] = pats[s].W[1]
	}
	transpose64(&t[0])
	if len(dst) > 64 {
		transpose64(&t[1])
	}
	for i := range dst {
		dst[i] = t[i>>6][63-i&63]
	}
}

// PackPatternsAt is PackPatterns for one 64-pattern word of a stride-w
// input block: input i's packed word lands in dst[i*w+word], with the
// other words of each input row left untouched. dst holds w words per
// input; nin is the number of module inputs packed.
func PackPatternsAt(pats []Pattern, dst []uint64, nin, w, word int) {
	var t [2][64]uint64
	for s := range pats {
		t[0][63-s] = pats[s].W[0]
		t[1][63-s] = pats[s].W[1]
	}
	transpose64(&t[0])
	if nin > 64 {
		transpose64(&t[1])
	}
	for i := 0; i < nin; i++ {
		dst[i*w+word] = t[i>>6][63-i&63]
	}
}

// transpose64 transposes a 64×64 bit matrix in place, under the matrix
// convention where row r's leftmost column is bit 63: afterwards row
// 63-b bit 63-r holds what row r bit b held. Classic recursive
// block-swap (Hacker's Delight fig. 7-3 scaled to 64 bits): swap the
// off-diagonal 32×32 blocks, then the 16×16 blocks inside each half,
// and so on. Callers load rows mirrored, as PackPatterns does, to get a
// plain bit-index transpose.
func transpose64(a *[64]uint64) {
	m := uint64(0x00000000FFFFFFFF)
	for j := 32; j != 0; j, m = j>>1, m^(m<<uint(j>>1)) {
		for k := 0; k < 64; k = (k + j + 1) &^ j {
			t := (a[k] ^ a[k+j]>>uint(j)) & m
			a[k] ^= t
			a[k+j] ^= t << uint(j)
		}
	}
}
