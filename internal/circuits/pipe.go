package circuits

import "gpustl/internal/netlist"

// The PIPE module is the SM's fetch→decode pipeline register bank — the
// sequential element class the paper's companion work (its ref [21],
// "Testing permanent faults in pipeline registers of GPGPUs") targets.
// It registers the fetched instruction word, its PC and a valid bit, with
// stall (enable) and flush controls:
//
//	valid' = !flush AND (en ? 1 : valid)
//	iw'    = en ? iw_in : iw
//	pc'    = en ? pc_in : pc
//
// Faults in the register bank are only observable across clock cycles, so
// this module exercises the sequential fault-simulation path
// (fault.SeqCampaign over netlist.SeqEvaluator).

// PIPE module input layout (bit index within a Pattern):
//
//	iw[64]  bits  0..63
//	pc[24]  bits 64..87
//	en      bit  88
//	flush   bit  89
const pipeInputs = 90

// EncodePIPEPattern packs one pipeline cycle.
func EncodePIPEPattern(word uint64, pc uint32, en, flush bool) Pattern {
	var p Pattern
	p.W[0] = word
	p.W[1] = uint64(pc) & (1<<duPCWidth - 1)
	if en {
		p.W[1] |= 1 << 24
	}
	if flush {
		p.W[1] |= 1 << 25
	}
	return p
}

// DecodePIPEPattern unpacks a pipeline cycle.
func DecodePIPEPattern(p Pattern) (word uint64, pc uint32, en, flush bool) {
	return p.W[0], uint32(p.W[1]) & (1<<duPCWidth - 1),
		p.W[1]>>24&1 == 1, p.W[1]>>25&1 == 1
}

// PipeState is the golden model of the pipeline register bank.
type PipeState struct {
	IW    uint64
	PC    uint32
	Valid bool
}

// Step advances the golden model one clock and returns the registered
// outputs visible *after* the clock edge.
func (s *PipeState) Step(word uint64, pc uint32, en, flush bool) PipeState {
	next := *s
	if en {
		next.IW = word
		next.PC = pc & (1<<duPCWidth - 1)
		next.Valid = true
	}
	if flush {
		next.Valid = false
	}
	*s = next
	return next
}

// BuildPIPE elaborates the pipeline register bank.
func BuildPIPE() (*netlist.Netlist, error) {
	b := netlist.NewBuilder("PIPE")
	iw := b.InputBus("iw", 64)
	pc := b.InputBus("pc", duPCWidth)
	en := b.Input("en")
	flush := b.Input("flush")

	b.SetGroup("data-regs")
	qIW := b.DFFBus(64)
	qPC := b.DFFBus(duPCWidth)
	for i, q := range qIW {
		b.ConnectD(q, b.Mux(en, q, iw[i]))
	}
	for i, q := range qPC {
		b.ConnectD(q, b.Mux(en, q, pc[i]))
	}

	b.SetGroup("valid-logic")
	qValid := b.DFF()
	b.ConnectD(qValid, b.And(b.Not(flush), b.Or(en, qValid)))

	b.OutputBus("q_iw", qIW)
	b.OutputBus("q_pc", qPC)
	b.Output("q_valid", qValid)
	return b.Build()
}
