package circuits

import (
	"math/rand"
	"testing"

	"gpustl/internal/netlist"
)

func buildPIPE(t testing.TB) *netlist.Netlist {
	t.Helper()
	nl, err := BuildPIPE()
	if err != nil {
		t.Fatal(err)
	}
	return nl
}

// pipeOutputs reads the registered word/pc/valid from the evaluator.
func pipeOutputs(e *netlist.SeqEvaluator) (uint64, uint32, bool) {
	var iw uint64
	for i := 0; i < 64; i++ {
		if e.OutputBit(i) {
			iw |= 1 << uint(i)
		}
	}
	var pc uint32
	for i := 0; i < duPCWidth; i++ {
		if e.OutputBit(64 + i) {
			pc |= 1 << uint(i)
		}
	}
	return iw, pc, e.OutputBit(64 + duPCWidth)
}

func TestPIPEAgainstGolden(t *testing.T) {
	nl := buildPIPE(t)
	if nl.NumDFFs() != 64+duPCWidth+1 {
		t.Fatalf("DFFs = %d", nl.NumDFFs())
	}
	e := netlist.NewSeqEvaluator(nl)
	var golden PipeState // state entering the next step
	r := rand.New(rand.NewSource(81))
	for step := 0; step < 500; step++ {
		word := r.Uint64()
		pc := r.Uint32() & (1<<duPCWidth - 1)
		en := r.Intn(4) != 0
		flush := r.Intn(8) == 0
		p := EncodePIPEPattern(word, pc, en, flush)
		in := make([]bool, pipeInputs)
		for i := range in {
			in[i] = p.Bit(i)
		}
		visible := golden // the pre-clock state the outputs show
		e.Step(in)
		gotIW, gotPC, gotValid := pipeOutputs(e)
		if gotIW != visible.IW || gotPC != visible.PC || gotValid != visible.Valid {
			t.Fatalf("step %d: netlist (%#x,%#x,%v) != golden (%#x,%#x,%v)",
				step, gotIW, gotPC, gotValid, visible.IW, visible.PC, visible.Valid)
		}
		golden.Step(word, pc, en, flush)
	}
}

func TestPIPEPatternRoundTrip(t *testing.T) {
	p := EncodePIPEPattern(0xdeadbeefcafebabe, 0x123456, true, false)
	w, pc, en, flush := DecodePIPEPattern(p)
	if w != 0xdeadbeefcafebabe || pc != 0x123456 || !en || flush {
		t.Fatalf("round trip: %#x %#x %v %v", w, pc, en, flush)
	}
}

func TestPIPEModuleBuild(t *testing.T) {
	m, err := Build(ModulePIPE, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Lanes != 1 || m.NL.NumDFFs() == 0 {
		t.Fatalf("lanes=%d dffs=%d", m.Lanes, m.NL.NumDFFs())
	}
	if len(m.NL.Inputs) != pipeInputs {
		t.Fatalf("inputs = %d, want %d", len(m.NL.Inputs), pipeInputs)
	}
}
