package circuits

import (
	"math"

	"gpustl/internal/isa"
	"gpustl/internal/netlist"
)

// SFUFn selects the SFU operation.
type SFUFn uint8

// SFU operations.
const (
	SFURcp SFUFn = iota
	SFURsq
	SFUSin
	SFUCos
	SFULg2
	SFUEx2
	sfuFnCount
)

// NumSFUFns is the number of SFU operations.
const NumSFUFns = int(sfuFnCount)

// SFUFnOf maps an SFU-class opcode to its function code.
func SFUFnOf(op isa.Opcode) (SFUFn, bool) {
	switch op {
	case isa.OpRCP:
		return SFURcp, true
	case isa.OpRSQ:
		return SFURsq, true
	case isa.OpSIN:
		return SFUSin, true
	case isa.OpCOS:
		return SFUCos, true
	case isa.OpLG2:
		return SFULg2, true
	case isa.OpEX2:
		return SFUEx2, true
	}
	return 0, false
}

// SFU module input layout (bit index within a Pattern):
//
//	a[32]  bits  0..31   FP32 operand
//	fn[3]  bits 32..34   SFU function select
const sfuInputs = 35

// EncodeSFUPattern packs an SFU operation into a test pattern.
func EncodeSFUPattern(fn SFUFn, a uint32) Pattern {
	var p Pattern
	p.W[0] = uint64(a) | uint64(fn&0x7)<<32
	return p
}

// The SFU datapath models the quadratic-interpolation scheme real special
// function units use: a segment table indexed by the top mantissa bits
// supplies coefficients (c0, c1, c2); the low mantissa bits form the
// in-segment offset d; the core computes
//
//	y = c0 + (c1*d)>>16 + (c2*((d*d)>>16))>>16
//
// in fixed point, and per-function pre/post scaling adjusts the exponent
// and sign. The shared table approximates 2^x over one octave; the fn
// input steers the exponent bias and sign-flip planes.
const (
	sfuSegBits = 7 // 128 segments
	sfuC0Bits  = 26
	sfuC1Bits  = 18
	sfuC2Bits  = 10
)

// sfuROM returns the coefficient tables of the interpolator.
func sfuROM() (c0, c1, c2 []uint32) {
	n := 1 << sfuSegBits
	c0 = make([]uint32, n)
	c1 = make([]uint32, n)
	c2 = make([]uint32, n)
	ln2 := math.Ln2
	for i := 0; i < n; i++ {
		x0 := float64(i) / float64(n)
		f := math.Exp2(x0)
		c0[i] = uint32(math.Round(f * (1 << 24)))
		c1[i] = uint32(math.Round(ln2 * f * (1 << 24) / float64(n)))
		c2[i] = uint32(math.Round(0.5 * ln2 * ln2 * f * (1 << 24) / float64(n*n)))
	}
	return c0, c1, c2
}

// Per-function exponent bias and sign-flip constants (the fn-dependent
// pre/post scaling plane).
var sfuBias = [NumSFUFns]uint32{
	SFURcp: 0x81, SFURsq: 0x7e, SFUSin: 0x7f,
	SFUCos: 0x80, SFULg2: 0x7d, SFUEx2: 0x82,
}

var sfuFlip = [NumSFUFns]bool{
	SFUSin: true, SFULg2: true,
}

// SFUGolden is the bit-exact reference model of the SFU netlist.
func SFUGolden(fn SFUFn, a uint32) uint32 {
	c0t, c1t, c2t := sfuROMTables()
	sign := a >> 31 & 1
	exp := a >> 23 & 0xff
	man := a & 0x7fffff
	idx := man >> 16
	d := uint64(man & 0xffff)

	dd := (d * d) >> 16
	y := uint64(c0t[idx]) + (uint64(c1t[idx])*d)>>16 + (uint64(c2t[idx])*dd)>>16
	y &= 1<<sfuC0Bits - 1

	eo := (exp + sfuBias[fn]) & 0xff
	so := sign
	if int(fn) < NumSFUFns && sfuFlip[fn] {
		so ^= 1
	}
	mant := uint32(y>>1) & 0x7fffff
	return mant | eo<<23 | so<<31
}

var romC0, romC1, romC2 []uint32

func sfuROMTables() (c0, c1, c2 []uint32) {
	if romC0 == nil {
		romC0, romC1, romC2 = sfuROM()
	}
	return romC0, romC1, romC2
}

// BuildSFU elaborates the SFU transcendental datapath.
func BuildSFU() (*netlist.Netlist, error) {
	b := netlist.NewBuilder("SFU")

	a := b.InputBus("a", 32)
	fn := b.InputBus("fn", 3)

	sign := a[31]
	exp := a[23:31]
	man := a[0:23]
	idx := man[16:23]
	d := man[0:16]

	c0t, c1t, c2t := sfuROMTables()

	// Segment-table one-hot decode and coefficient OR planes.
	b.SetGroup("segment-decode")
	segHot := decodeField(b, idx, 1<<sfuSegBits)
	romPlane := func(table []uint32, bits int) []int32 {
		out := make([]int32, bits)
		for bit := 0; bit < bits; bit++ {
			var terms []int32
			for i, v := range table {
				if v>>uint(bit)&1 == 1 {
					terms = append(terms, segHot[i])
				}
			}
			out[bit] = b.OrN(terms...)
		}
		return out
	}
	b.SetGroup("coefficient-rom")
	c0 := romPlane(c0t, sfuC0Bits)
	c1 := romPlane(c1t, sfuC1Bits)
	c2 := romPlane(c2t, sfuC2Bits)

	// dd = (d*d) >> 16, 16 bits.
	b.SetGroup("squarer")
	ddFull := mulFull(b, d, d)
	dd := ddFull[16:32]

	// t1 = (c1*d) >> 16, sized to the c0 width.
	b.SetGroup("linear-mul")
	t1Full := mulFull(b, c1, d)
	t1 := t1Full[16:]
	// t2 = (c2*dd) >> 16.
	b.SetGroup("quadratic-mul")
	t2Full := mulFull(b, c2, dd)
	t2 := t2Full[16:]

	zext := func(bus []int32, w int) []int32 {
		out := make([]int32, w)
		for i := range out {
			if i < len(bus) {
				out[i] = bus[i]
			} else {
				out[i] = b.Const0()
			}
		}
		return out
	}
	b.SetGroup("accumulate")
	s1, _ := rippleAdder(b, c0, zext(t1, sfuC0Bits), b.Const0())
	y, _ := rippleAdder(b, s1, zext(t2, sfuC0Bits), b.Const0())

	// Exponent bias plane: per-fn 8-bit constant.
	b.SetGroup("exponent-path")
	fnHot := decodeField(b, fn, NumSFUFns)
	bias := make([]int32, 8)
	for bit := 0; bit < 8; bit++ {
		var terms []int32
		for f := 0; f < NumSFUFns; f++ {
			if sfuBias[f]>>uint(bit)&1 == 1 {
				terms = append(terms, fnHot[f])
			}
		}
		bias[bit] = b.OrN(terms...)
	}
	eo, _ := rippleAdder(b, exp, bias, b.Const0())

	var flipTerms []int32
	for f := 0; f < NumSFUFns; f++ {
		if sfuFlip[f] {
			flipTerms = append(flipTerms, fnHot[f])
		}
	}
	so := b.Xor(sign, b.OrN(flipTerms...))

	out := make([]int32, 32)
	for i := 0; i < 23; i++ {
		out[i] = b.Buf(y[i+1])
	}
	copy(out[23:31], eo)
	out[31] = so
	b.OutputBus("y", out)

	return b.Build()
}
