package circuits

import (
	"gpustl/internal/isa"
	"gpustl/internal/netlist"
)

// SPFn selects the SP datapath function. It is the control word the Decoder
// Unit hands to the SP cores and the first input field of SP test patterns.
type SPFn uint8

// SP datapath functions.
const (
	SPAdd  SPFn = iota // r = a + b
	SPSub              // r = a - b
	SPMul              // r = a * b (low 32)
	SPMad              // r = a * b + c
	SPMin              // r = min(a, b) signed
	SPMax              // r = max(a, b) signed
	SPAnd              // r = a & b
	SPOr               // r = a | b
	SPXor              // r = a ^ b
	SPNot              // r = ^a
	SPShl              // r = a << (b & 31)
	SPShr              // r = a >> (b & 31)
	SPSet              // r = (a <cond> b) ? ~0 : 0 ; pr = comparison
	SPPass             // r = b
	spFnCount
)

// NumSPFns is the number of SP datapath functions.
const NumSPFns = int(spFnCount)

// SP module input layout (bit index within a Pattern):
//
//	a[32]    bits   0..31
//	b[32]    bits  32..63
//	c[32]    bits  64..95
//	fn[4]    bits  96..99
//	cond[3]  bits 100..102
const (
	spInputs = 103
)

// EncodeSPPattern packs an SP operand tuple into a test pattern.
func EncodeSPPattern(fn SPFn, cond isa.Cond, a, b, c uint32) Pattern {
	var p Pattern
	p.W[0] = uint64(a) | uint64(b)<<32
	p.W[1] = uint64(c) | uint64(fn&0xf)<<32 | uint64(cond&0x7)<<36
	return p
}

// SPFnOf maps an ALU-class opcode to its SP datapath function and performs
// operand routing (e.g. INEG becomes 0-a). It reports ok=false for opcodes
// that do not enter the SP integer datapath (the FP32 ops, which execute in
// the separate FP units that the paper does not fault-simulate).
func SPFnOf(op isa.Opcode, a, b, c uint32) (fn SPFn, ra, rb, rc uint32, ok bool) {
	switch op {
	case isa.OpIADD, isa.OpIADDI:
		return SPAdd, a, b, 0, true
	case isa.OpISUB, isa.OpISUBI:
		return SPSub, a, b, 0, true
	case isa.OpIMUL, isa.OpIMULI:
		return SPMul, a, b, 0, true
	case isa.OpIMAD:
		return SPMad, a, b, c, true
	case isa.OpIMIN:
		return SPMin, a, b, 0, true
	case isa.OpIMAX:
		return SPMax, a, b, 0, true
	case isa.OpINEG:
		return SPSub, 0, a, 0, true
	case isa.OpAND, isa.OpANDI:
		return SPAnd, a, b, 0, true
	case isa.OpOR, isa.OpORI:
		return SPOr, a, b, 0, true
	case isa.OpXOR, isa.OpXORI:
		return SPXor, a, b, 0, true
	case isa.OpNOT:
		return SPNot, a, 0, 0, true
	case isa.OpSHL, isa.OpSHLI:
		return SPShl, a, b, 0, true
	case isa.OpSHR, isa.OpSHRI:
		return SPShr, a, b, 0, true
	case isa.OpISET, isa.OpISETI:
		return SPSet, a, b, 0, true
	case isa.OpMOV:
		return SPPass, 0, a, 0, true
	case isa.OpMVI, isa.OpS2R:
		return SPPass, 0, b, 0, true
	}
	return 0, 0, 0, 0, false
}

// SPGolden is the bit-exact reference model of the SP netlist, used by
// tests and by the functional-unit PTP generators' expected-value logic.
func SPGolden(fn SPFn, cond isa.Cond, a, b, c uint32) (r uint32, pr bool) {
	switch fn {
	case SPAdd:
		r = a + b
	case SPSub:
		r = a - b
	case SPMul:
		r = a * b
	case SPMad:
		r = a*b + c
	case SPMin:
		if int32(a) < int32(b) {
			r = a
		} else {
			r = b
		}
	case SPMax:
		if int32(a) > int32(b) {
			r = a
		} else {
			r = b
		}
	case SPAnd:
		r = a & b
	case SPOr:
		r = a | b
	case SPXor:
		r = a ^ b
	case SPNot:
		r = ^a
	case SPShl:
		r = a << (b & 31)
	case SPShr:
		r = a >> (b & 31)
	case SPSet:
		switch cond {
		case isa.CondEQ:
			pr = a == b
		case isa.CondNE:
			pr = a != b
		case isa.CondLT:
			pr = int32(a) < int32(b)
		case isa.CondLE:
			pr = int32(a) <= int32(b)
		case isa.CondGT:
			pr = int32(a) > int32(b)
		case isa.CondGE:
			pr = int32(a) >= int32(b)
		}
		if pr {
			r = 0xffffffff
		}
	case SPPass:
		r = b
	}
	return r, pr
}

// BuildSP elaborates the SP core integer datapath: a 32-bit adder/
// subtractor with flags, an array multiplier with multiply-add, a logic
// unit, a barrel shifter, a comparator with the six ISA conditions, and the
// result-select plane. Outputs are the 32-bit result and the predicate bit
// — the values the SP writes back, i.e. the module-level observation
// points used by the optimized fault simulation.
func BuildSP() (*netlist.Netlist, error) {
	b := netlist.NewBuilder("SP")

	a := b.InputBus("a", 32)
	bb := b.InputBus("b", 32)
	cc := b.InputBus("c", 32)
	fn := b.InputBus("fn", 4)
	cond := b.InputBus("cond", 3)

	b.SetGroup("fn-decode")
	fnHot := decodeField(b, fn, NumSPFns)
	sel := func(f SPFn) int32 { return fnHot[f] }

	// Adder/subtractor. Subtraction serves SUB and all comparisons.
	b.SetGroup("addsub")
	isSub := b.OrN(sel(SPSub), sel(SPMin), sel(SPMax), sel(SPSet))
	sum, coutAS, ovf := addSub(b, a, bb, isSub)

	// Comparator flags from a-b.
	b.SetGroup("comparator")
	zero := isZero(b, sum)
	neg := sum[31]
	ltS := b.Xor(neg, ovf) // signed a < b
	eq := zero
	ne := b.Not(zero)
	le := b.Or(ltS, eq)
	gt := b.Not(le)
	ge := b.Not(ltS)
	_ = coutAS

	condHot := decodeField(b, cond, isa.NumConds)
	cmp := b.OrN(
		b.And(condHot[isa.CondEQ], eq),
		b.And(condHot[isa.CondNE], ne),
		b.And(condHot[isa.CondLT], ltS),
		b.And(condHot[isa.CondLE], le),
		b.And(condHot[isa.CondGT], gt),
		b.And(condHot[isa.CondGE], ge),
	)

	// Multiplier and multiply-add.
	b.SetGroup("multiplier")
	prod := mulLow(b, a, bb)
	mad, _ := rippleAdder(b, prod, cc, b.Const0())

	// Logic unit.
	b.SetGroup("logic")
	landv := andBus(b, a, bb)
	lorv := orBus(b, a, bb)
	lxorv := xorBus(b, a, bb)
	lnotv := notBus(b, a)

	// Barrel shifter on b[0..4].
	b.SetGroup("shifter")
	amt := bb[:5]
	shl := shiftLeft(b, a, amt)
	shr := shiftRight(b, a, amt)

	// Min/max via the comparator.
	b.SetGroup("minmax")
	minv := muxBus(b, ltS, bb, a) // lt ? a : b
	maxv := muxBus(b, ltS, a, bb)

	setv := fanBus(b, cmp, 32)

	// Result-select plane: r[i] = OR over fn candidates.
	b.SetGroup("result-select")
	cands := [NumSPFns][]int32{
		SPAdd: sum, SPSub: sum, SPMul: prod, SPMad: mad,
		SPMin: minv, SPMax: maxv,
		SPAnd: landv, SPOr: lorv, SPXor: lxorv, SPNot: lnotv,
		SPShl: shl, SPShr: shr, SPSet: setv, SPPass: bb,
	}
	result := make([]int32, 32)
	for i := 0; i < 32; i++ {
		terms := make([]int32, 0, NumSPFns)
		for f := 0; f < NumSPFns; f++ {
			terms = append(terms, b.And(fnHot[f], cands[f][i]))
		}
		result[i] = b.OrN(terms...)
	}

	b.OutputBus("r", result)
	b.Output("pr", b.And(sel(SPSet), cmp))
	return b.Build()
}
