package core

import (
	"context"
	"fmt"
	"sort"
	"time"

	"gpustl/internal/fault"
	"gpustl/internal/stl"
)

// CompactToBudget is an extension of the paper's method for its own
// motivating scenario: "application constraints might limit the available
// execution time" (§I). Instead of removing only all-unessential Small
// Blocks, it selects the subset of candidate SBs that fits a clock-cycle
// budget while maximizing the number of faults detected, using the same
// single logic simulation and single fault simulation.
//
// Selection is greedy by detections-per-cycle, which is the classic
// knapsack heuristic; mandatory code (protected regions, non-candidate
// instructions) is always kept and its cost charged against the budget.
// The returned Result is as in CompactPTP; Result.CompDuration reports the
// re-simulated duration of the selected program.
func (c *Compactor) CompactToBudget(p *stl.PTP, budgetCC uint64) (*Result, error) {
	if p.Target != c.Module.Kind {
		return nil, fmt.Errorf("core: PTP %s targets %v, compactor owns %v",
			p.Name, p.Target, c.Module.Kind)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	start := time.Now()

	arcs := p.ARCs()
	sbs := p.SBs
	if len(sbs) == 0 {
		sbs = stl.SegmentSBs(p.Prog, arcs)
	}
	candidates := make([]bool, len(sbs))
	for i, sb := range sbs {
		for _, r := range arcs {
			if sb.Start >= r.Start && sb.End <= r.End {
				candidates[i] = true
				break
			}
		}
	}

	ctx := context.Background()
	col, res, err := c.runTrace(ctx, p, false)
	if err != nil {
		return nil, err
	}
	origFC, err := c.evaluateFC(ctx, p, col.Patterns)
	if err != nil {
		return nil, err
	}

	rep, err := c.simulate(ctx, c.Campaign, col.Patterns, fault.SimOptions{
		Reverse:    c.Opt.ReversePatterns,
		NoDrop:     c.Opt.KeepCampaign,
		Workers:    c.Opt.Workers,
		BlockWords: c.Opt.BlockWords,
	})
	if err != nil {
		return nil, fmt.Errorf("core: fault simulation of %s: %w", p.Name, err)
	}

	// Per-instruction cost (total cc across warps) and detection counts.
	cost := make([]uint64, len(p.Prog))
	for _, s := range col.Spans {
		if int(s.PC) < len(cost) {
			cost[s.PC] += s.CCEnd - s.CCStart + 1
		}
	}
	det := make([]int64, len(p.Prog))
	idx := col.CCToPC()
	for i, n := range rep.DetectedPerPattern {
		if n == 0 {
			continue
		}
		if _, pc, ok := idx.Lookup(rep.CCs[i]); ok && int(pc) < len(det) {
			det[pc] += int64(n)
		}
	}

	// Mandatory cost: everything outside candidate SBs.
	inCandidate := make([]bool, len(p.Prog))
	for i, sb := range sbs {
		if !candidates[i] {
			continue
		}
		for pc := sb.Start; pc < sb.End; pc++ {
			inCandidate[pc] = true
		}
	}
	var mandatory uint64
	for pc := range p.Prog {
		if !inCandidate[pc] {
			mandatory += cost[pc]
		}
	}
	if mandatory > budgetCC {
		return nil, fmt.Errorf("core: budget %d cc below the mandatory cost %d cc of %s",
			budgetCC, mandatory, p.Name)
	}

	// Greedy knapsack over candidate SBs by detections per cycle.
	type sbScore struct {
		idx  int
		det  int64
		cost uint64
	}
	var scored []sbScore
	for i, sb := range sbs {
		if !candidates[i] {
			continue
		}
		s := sbScore{idx: i}
		for pc := sb.Start; pc < sb.End; pc++ {
			s.det += det[pc]
			s.cost += cost[pc]
		}
		scored = append(scored, s)
	}
	sort.SliceStable(scored, func(a, b int) bool {
		// detections-per-cycle, descending; zero-cost guards.
		da := float64(scored[a].det) / float64(scored[a].cost+1)
		db := float64(scored[b].det) / float64(scored[b].cost+1)
		if da != db {
			return da > db
		}
		return scored[a].idx < scored[b].idx
	})
	remainingBudget := budgetCC - mandatory
	keep := make([]bool, len(sbs))
	for _, s := range scored {
		if s.det == 0 {
			continue // never spend budget on undetecting SBs
		}
		if s.cost <= remainingBudget {
			keep[s.idx] = true
			remainingBudget -= s.cost
		}
	}

	var removed []int
	removedSBs := 0
	for i, sb := range sbs {
		if !candidates[i] || keep[i] {
			continue
		}
		removedSBs++
		for pc := sb.Start; pc < sb.End; pc++ {
			removed = append(removed, pc)
		}
	}
	comp, err := Reassemble(p, sbs, removed)
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start)

	compCol, compRes, err := c.runTrace(ctx, comp, true)
	if err != nil {
		return nil, fmt.Errorf("core: budget-compacted %s does not run: %w", p.Name, err)
	}
	compFC, err := c.evaluateFC(ctx, comp, compCol.Patterns)
	if err != nil {
		return nil, err
	}

	return &Result{
		Original:        p,
		Compacted:       comp,
		OrigSize:        len(p.Prog),
		CompSize:        len(comp.Prog),
		OrigDuration:    res.Cycles,
		CompDuration:    compRes.Cycles,
		OrigFC:          origFC,
		CompFC:          compFC,
		TotalSBs:        len(sbs),
		RemovedSBs:      removedSBs,
		DetectedThisRun: rep.DetectedThisRun(),
		CompactionTime:  elapsed,
	}, nil
}
