package core

import (
	"testing"

	"gpustl/internal/circuits"
	"gpustl/internal/gpu"
	"gpustl/internal/ptpgen"
)

func TestCompactToBudgetRespectsBudget(t *testing.T) {
	m := module(t, circuits.ModuleDU)
	faults := sampledFaults(t, m, 3000, 1)
	p := ptpgen.IMM(80, 2)

	// Full duration of the original PTP.
	full, err := New(gpu.DefaultConfig(), m, faults, Options{}).CompactPTP(p)
	if err != nil {
		t.Fatal(err)
	}

	for _, frac := range []float64{0.5, 0.25, 0.10} {
		budget := uint64(float64(full.OrigDuration) * frac)
		c := New(gpu.DefaultConfig(), m, faults, Options{})
		res, err := c.CompactToBudget(p, budget)
		if err != nil {
			t.Fatalf("budget %.0f%%: %v", 100*frac, err)
		}
		// The selected program must fit the budget (small slack for the
		// scheduler's fixed overheads).
		if res.CompDuration > budget+budget/10 {
			t.Errorf("budget %d: duration %d", budget, res.CompDuration)
		}
		if res.CompFC <= 0 {
			t.Errorf("budget %.0f%%: no coverage", 100*frac)
		}
		t.Logf("budget %3.0f%%: %5d cc (%d instrs), FC %.2f (orig %.2f)",
			100*frac, res.CompDuration, res.CompSize, res.CompFC, res.OrigFC)
	}
}

func TestCompactToBudgetMonotoneFC(t *testing.T) {
	m := module(t, circuits.ModuleDU)
	faults := sampledFaults(t, m, 2500, 3)
	p := ptpgen.IMM(60, 4)
	full, err := New(gpu.DefaultConfig(), m, faults, Options{}).CompactPTP(p)
	if err != nil {
		t.Fatal(err)
	}
	var prev float64 = -1
	for _, frac := range []float64{0.10, 0.40, 1.0} {
		c := New(gpu.DefaultConfig(), m, faults, Options{})
		res, err := c.CompactToBudget(p, uint64(float64(full.OrigDuration)*frac))
		if err != nil {
			t.Fatal(err)
		}
		if res.CompFC+0.5 < prev { // small tolerance: greedy is not optimal
			t.Errorf("FC decreased with a larger budget: %.2f after %.2f", res.CompFC, prev)
		}
		prev = res.CompFC
	}
}

func TestCompactToBudgetFullBudgetMatchesCompaction(t *testing.T) {
	// With the full original duration as budget, the selection keeps every
	// detecting SB — the result must compact at least as much as plain
	// CompactPTP (it also drops detecting-nothing SBs).
	m := module(t, circuits.ModuleDU)
	faults := sampledFaults(t, m, 2000, 5)
	p := ptpgen.IMM(50, 6)

	plain, err := New(gpu.DefaultConfig(), m, faults, Options{}).CompactPTP(p)
	if err != nil {
		t.Fatal(err)
	}
	budget, err := New(gpu.DefaultConfig(), m, faults, Options{}).CompactToBudget(p, plain.OrigDuration)
	if err != nil {
		t.Fatal(err)
	}
	if budget.CompSize > plain.CompSize {
		t.Errorf("full-budget selection kept more than plain compaction: %d vs %d",
			budget.CompSize, plain.CompSize)
	}
	if d := budget.CompFC - plain.CompFC; d < -0.5 || d > 0.5 {
		t.Errorf("full-budget FC %.2f deviates from plain %.2f", budget.CompFC, plain.CompFC)
	}
}

func TestCompactToBudgetTooSmall(t *testing.T) {
	m := module(t, circuits.ModuleDU)
	faults := sampledFaults(t, m, 500, 7)
	p := ptpgen.CNTRL(10, 8) // large mandatory (loops, scaffolding)
	c := New(gpu.DefaultConfig(), m, faults, Options{})
	if _, err := c.CompactToBudget(p, 10); err == nil {
		t.Fatal("impossible budget accepted")
	}
}
