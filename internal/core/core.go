// Package core implements the paper's contribution: the five-stage
// compaction method for Parallel Test Programs of GPU Self-Test Libraries.
//
//	stage 1 — PTP partitioning: basic blocks, CFG, Admissible Regions for
//	          Compaction (package stl), candidate Small Blocks;
//	stage 2 — logic tracing: one RTL-style simulation with the hardware
//	          monitor (package trace) collecting the Tracing Report and the
//	          target module's test-pattern stream;
//	stage 3 — ONE optimized gate-level fault simulation of the target
//	          module (package fault), with cross-PTP fault dropping, and
//	          the instruction-labeling algorithm of Fig. 2;
//	stage 4 — PTP reduction: the Fig. 3 algorithm removes Small Blocks
//	          whose instructions are all unessential;
//	stage 5 — reassembling: rebuild the program, relocate input data,
//	          repair branch displacements, and re-evaluate fault coverage.
//
// The headline property is preserved: compacting a PTP costs one logic
// simulation and one fault simulation, instead of one fault simulation per
// candidate removal as in prior CPU-oriented methods (package baseline).
package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"gpustl/internal/circuits"
	"gpustl/internal/fault"
	"gpustl/internal/gpu"
	"gpustl/internal/isa"
	"gpustl/internal/obs"
	"gpustl/internal/stl"
	"gpustl/internal/trace"
)

// FaultSimulator abstracts how the compactor runs its gate-level fault
// simulations. The zero behavior (nil Simulator) is the campaign's own
// in-process simulator; a distributed coordinator (internal/dist)
// satisfies this interface to run the same simulations across sharded
// workers. Implementations must preserve the in-process contract:
// identical Report (first detections per fault over the stream) and
// identical campaign mutation (detected faults dropped unless
// opt.NoDrop) — or fail with an error rather than return partial data.
type FaultSimulator interface {
	SimulateCampaign(ctx context.Context, camp *fault.Campaign, stream []fault.TimedPattern, opt fault.SimOptions) (*fault.Report, error)
}

// Options tunes the compactor.
type Options struct {
	// ReversePatterns applies the extracted pattern stream in reverse
	// order during the stage-3 fault simulation (the paper uses this for
	// SFU_IMM, where it improves the compaction rate).
	ReversePatterns bool
	// InstructionGranularity removes individual unessential instructions
	// instead of whole Small Blocks (an ablation of the SB design choice;
	// unsound for programs with cross-instruction operand dependences
	// inside SBs, but useful to quantify why the paper removes SBs).
	InstructionGranularity bool
	// KeepCampaign prevents the stage-3 fault simulation from dropping
	// faults in the shared campaign (ablation of cross-PTP dropping).
	KeepCampaign bool
	// ObservableFC filters the FC evaluation to patterns of instructions
	// whose results propagate to an observable point (stores/signature),
	// approximating the paper's system-level fault coverage.
	ObservableFC bool
	// Workers parallelizes the fault simulations across this many
	// goroutines (0/1 = serial). Results are identical at any setting.
	Workers int
	// BlockWords sets the fault simulator's block width in 64-pattern
	// machine words (fault.SimOptions.BlockWords): 0 auto-selects from
	// the pattern stream. Results are byte-identical at any width.
	BlockWords int
	// Simulator, when non-nil, executes every fault simulation (the
	// stage-3 run and the standalone FC evaluations) instead of the
	// in-process engine — e.g. a dist.Coordinator spreading shards over
	// worker daemons. Results are identical by contract.
	Simulator FaultSimulator
	// Metrics, when non-nil, is threaded into every fault simulation so
	// the simulator's batched counters (patterns/sec, drops, coverage)
	// land in one registry. Never consulted on the compaction hot path.
	Metrics *obs.Registry
}

// simulate runs one fault simulation over camp through the configured
// engine: Opt.Simulator when set, the campaign's in-process simulator
// otherwise.
func (c *Compactor) simulate(ctx context.Context, camp *fault.Campaign, stream []fault.TimedPattern, opt fault.SimOptions) (*fault.Report, error) {
	if c.Opt.Simulator != nil {
		return c.Opt.Simulator.SimulateCampaign(ctx, camp, stream, opt)
	}
	return camp.SimulateCtx(ctx, stream, opt)
}

// Compactor compacts the PTPs of an STL that target one GPU module. It
// owns the persistent fault campaign, so PTPs compacted in sequence drop
// each other's faults exactly as the paper's fault list report prescribes.
type Compactor struct {
	GPU      gpu.Config
	Module   *circuits.Module
	Campaign *fault.Campaign
	Opt      Options
}

// New creates a compactor over the module's given fault list.
func New(cfg gpu.Config, m *circuits.Module, faults []fault.Fault, opt Options) *Compactor {
	return &Compactor{
		GPU:      cfg,
		Module:   m,
		Campaign: fault.NewCampaignWithFaults(m, faults),
		Opt:      opt,
	}
}

// Stage identifies one stage of the compaction pipeline. Resilient
// callers (package run) receive stage transitions through the onStage
// hook of CompactPTPCtx and use them for error attribution and per-stage
// watchdog timeouts.
type Stage string

// The pipeline stages, in execution order. StageEvaluate covers the
// final re-simulation of the compacted PTP (duration + standalone FC),
// which is measurement rather than one of the paper's five stages.
const (
	StagePartition  Stage = "partition"
	StageTrace      Stage = "trace"
	StageFaultSim   Stage = "faultsim"
	StageReduce     Stage = "reduce"
	StageReassemble Stage = "reassemble"
	StageEvaluate   Stage = "evaluate"
)

// CommitStage reports whether a failure at stage s may already have
// committed fault drops to the shared campaign: the stage-3 fault
// simulation commits its detections when it completes, so stages after
// it run against a mutated campaign. A resilient caller deciding
// whether a crashed PTP can be retried must not re-run it once drops
// committed — a second labeling would see the already-dropped campaign
// and over-compact. Reverting or quarantining the PTP stays sound
// either way, because the original program detects a superset of the
// dropped faults.
func CommitStage(s Stage) bool {
	switch s {
	case StageReduce, StageReassemble, StageEvaluate:
		return true
	}
	return false
}

// Result reports one PTP's compaction, mirroring the columns of Tables II
// and III.
type Result struct {
	Original  *stl.PTP
	Compacted *stl.PTP

	OrigSize, CompSize         int
	OrigDuration, CompDuration uint64
	OrigFC, CompFC             float64 // standalone FC (%), fresh fault list

	TotalSBs, RemovedSBs   int
	Essential, Unessential int // labeled instructions inside candidate SBs
	DetectedThisRun        int // faults newly detected in the shared campaign
	CompactionTime         time.Duration
}

// SizeReduction returns the size compaction percentage (positive =
// smaller).
func (r *Result) SizeReduction() float64 {
	return 100 * (1 - float64(r.CompSize)/float64(r.OrigSize))
}

// DurationReduction returns the duration compaction percentage.
func (r *Result) DurationReduction() float64 {
	return 100 * (1 - float64(r.CompDuration)/float64(r.OrigDuration))
}

// FCDiff returns CompFC - OrigFC in percentage points (the "Diff FC"
// column: negative = coverage lost).
func (r *Result) FCDiff() float64 { return r.CompFC - r.OrigFC }

// runTrace executes the PTP with the tracing monitor attached.
func (c *Compactor) runTrace(ctx context.Context, p *stl.PTP, lite bool) (*trace.Collector, gpu.Result, error) {
	col := trace.NewCollector(c.Module.Kind)
	col.LiteRows = lite
	g, err := gpu.New(c.GPU, col)
	if err != nil {
		return nil, gpu.Result{}, err
	}
	res, err := g.RunCtx(ctx, gpu.Kernel{
		Prog:            p.Prog,
		Blocks:          p.Kernel.Blocks,
		ThreadsPerBlock: p.Kernel.ThreadsPerBlock,
		GlobalBase:      p.Data.Base,
		GlobalData:      p.Data.Words,
	})
	if err != nil {
		return nil, res, fmt.Errorf("core: logic simulation of %s: %w", p.Name, err)
	}
	return col, res, nil
}

// evaluateFC runs a standalone fault simulation of the PTP's pattern
// stream against a fresh copy of the campaign's fault list and returns the
// coverage percentage. With ObservableFC, only patterns from instructions
// whose results reach an observable point count.
func (c *Compactor) evaluateFC(ctx context.Context, p *stl.PTP, patterns []fault.TimedPattern) (float64, error) {
	stream := patterns
	if c.Opt.ObservableFC {
		prop := Propagates(p.Prog)
		stream = make([]fault.TimedPattern, 0, len(patterns))
		for _, tp := range patterns {
			if int(tp.PC) < len(prop) && prop[tp.PC] {
				stream = append(stream, tp)
			}
		}
	}
	fc := fault.NewCampaignWithFaults(c.Module, c.Campaign.Faults())
	if _, err := c.simulate(ctx, fc, stream, fault.SimOptions{Workers: c.Opt.Workers, BlockWords: c.Opt.BlockWords, Metrics: c.Opt.Metrics}); err != nil {
		return 0, fmt.Errorf("core: FC evaluation of %s: %w", p.Name, err)
	}
	return fc.Coverage(), nil
}

// CompactPTP runs the five stages on one PTP and returns the result. The
// shared campaign is updated with the faults this PTP detects (unless
// KeepCampaign is set).
func (c *Compactor) CompactPTP(p *stl.PTP) (*Result, error) {
	return c.CompactPTPCtx(context.Background(), p, nil)
}

// CompactPTPCtx is CompactPTP with cooperative cancellation and stage
// reporting. The context is checked at every stage boundary and threaded
// into the logic and fault simulations, so a cancel mid-stage aborts
// within microseconds. onStage (optional) is invoked as each stage is
// entered; returning an error aborts the compaction with that error —
// this is how package run attributes failures and arms per-stage
// watchdogs. An error before or during stage 3 leaves the shared
// campaign untouched (fault dropping commits only when the stage-3
// simulation completes); an error after stage 3 keeps the drops, which
// is sound because a caller that reverts to the original PTP keeps a
// program that detects a superset of those faults.
func (c *Compactor) CompactPTPCtx(ctx context.Context, p *stl.PTP, onStage func(Stage) error) (*Result, error) {
	if p.Target != c.Module.Kind {
		return nil, fmt.Errorf("core: PTP %s targets %v, compactor owns %v",
			p.Name, p.Target, c.Module.Kind)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := c.Campaign.Err(); err != nil {
		return nil, err
	}
	enter := func(s Stage) error {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("core: compaction of %s canceled at stage %s: %w",
				p.Name, s, err)
		}
		if onStage != nil {
			if err := onStage(s); err != nil {
				return fmt.Errorf("core: stage hook at %s for %s: %w", s, p.Name, err)
			}
		}
		return nil
	}
	start := time.Now()

	// Stage 1 — partitioning: candidate SBs are those fully inside ARCs.
	if err := enter(StagePartition); err != nil {
		return nil, err
	}
	arcs := p.ARCs()
	sbs := p.SBs
	if len(sbs) == 0 {
		sbs = stl.SegmentSBs(p.Prog, arcs)
	}
	candidates := make([]bool, len(sbs))
	for i, sb := range sbs {
		for _, r := range arcs {
			if sb.Start >= r.Start && sb.End <= r.End {
				candidates[i] = true
				break
			}
		}
	}

	// Stage 2 — logic tracing (the ONE logic simulation).
	if err := enter(StageTrace); err != nil {
		return nil, err
	}
	col, res, err := c.runTrace(ctx, p, false)
	if err != nil {
		return nil, err
	}

	// Standalone FC of the original PTP (fresh fault list) for the Diff FC
	// column; this is the paper's reference fault-injection campaign, not
	// part of the compaction loop itself.
	origFC, err := c.evaluateFC(ctx, p, col.Patterns)
	if err != nil {
		return nil, err
	}

	// Stage 3 — the ONE optimized fault simulation, with fault dropping on
	// the shared campaign, followed by instruction labeling (Fig. 2).
	if err := enter(StageFaultSim); err != nil {
		return nil, err
	}
	rep, err := c.simulate(ctx, c.Campaign, col.Patterns, fault.SimOptions{
		Reverse:    c.Opt.ReversePatterns,
		NoDrop:     c.Opt.KeepCampaign,
		Workers:    c.Opt.Workers,
		BlockWords: c.Opt.BlockWords,
		Metrics:    c.Opt.Metrics,
	})
	if err != nil {
		return nil, fmt.Errorf("core: fault simulation of %s: %w", p.Name, err)
	}
	essential := Label(len(p.Prog), rep, col.CCToPC())

	// Stage 4 — reduction (Fig. 3).
	if err := enter(StageReduce); err != nil {
		return nil, err
	}
	var removed []int
	nEss, nUness := 0, 0
	if c.Opt.InstructionGranularity {
		for i, sb := range sbs {
			if !candidates[i] {
				continue
			}
			for pc := sb.Start; pc < sb.End; pc++ {
				if essential[pc] {
					nEss++
				} else {
					nUness++
					removed = append(removed, pc)
				}
			}
		}
	} else {
		for i, sb := range sbs {
			if !candidates[i] {
				continue
			}
			allUness := true
			for pc := sb.Start; pc < sb.End; pc++ {
				if essential[pc] {
					nEss++
					allUness = false
				} else {
					nUness++
				}
			}
			if allUness {
				for pc := sb.Start; pc < sb.End; pc++ {
					removed = append(removed, pc)
				}
			}
		}
	}
	// Stage 5 — reassembling.
	if err := enter(StageReassemble); err != nil {
		return nil, err
	}
	comp, err := Reassemble(p, sbs, removed)
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start)

	// Final evaluation: re-simulate the compacted PTP to measure its
	// duration and standalone FC.
	if err := enter(StageEvaluate); err != nil {
		return nil, err
	}
	compCol, compRes, err := c.runTrace(ctx, comp, true)
	if err != nil {
		return nil, fmt.Errorf("core: compacted %s does not run: %w", p.Name, err)
	}
	compFC, err := c.evaluateFC(ctx, comp, compCol.Patterns)
	if err != nil {
		return nil, err
	}

	nRemovedSBs := countRemovedSBs(sbs, removed)
	return &Result{
		Original:        p,
		Compacted:       comp,
		OrigSize:        len(p.Prog),
		CompSize:        len(comp.Prog),
		OrigDuration:    res.Cycles,
		CompDuration:    compRes.Cycles,
		OrigFC:          origFC,
		CompFC:          compFC,
		TotalSBs:        len(sbs),
		RemovedSBs:      nRemovedSBs,
		Essential:       nEss,
		Unessential:     nUness,
		DetectedThisRun: rep.DetectedThisRun(),
		CompactionTime:  elapsed,
	}, nil
}

func countRemovedSBs(sbs []stl.SB, removed []int) int {
	rm := make(map[int]bool, len(removed))
	for _, pc := range removed {
		rm[pc] = true
	}
	n := 0
	for _, sb := range sbs {
		all := true
		for pc := sb.Start; pc < sb.End; pc++ {
			if !rm[pc] {
				all = false
				break
			}
		}
		if all {
			n++
		}
	}
	return n
}

// Label implements the instruction-labeling algorithm of Fig. 2: an
// instruction is essential when at least one clock cycle of its execution
// (any warp) carries a pattern that detected a fault in the Fault Sim
// Report; otherwise it is unessential. The FSR is joined to instructions
// through the clock-cycle index of the Tracing Report.
func Label(progLen int, rep *fault.Report, idx *trace.CCIndex) []bool {
	essential := make([]bool, progLen)
	for i, n := range rep.DetectedPerPattern {
		if n == 0 {
			continue
		}
		_, pc, ok := idx.Lookup(rep.CCs[i])
		if !ok || int(pc) >= progLen {
			continue
		}
		essential[pc] = true
	}
	return essential
}

// Propagates computes, per instruction, whether its result can reach an
// observable point (a global/shared store), via backward liveness over the
// program. Control-flow boundaries are treated conservatively (everything
// live), so instructions in and around loops always count as propagating.
func Propagates(prog []isa.Instruction) []bool {
	out := make([]bool, len(prog))
	live := make([]bool, isa.NumGPR)
	allLive := func() {
		for i := range live {
			live[i] = true
		}
	}
	allLive() // conservative at the program tail
	for pc := len(prog) - 1; pc >= 0; pc-- {
		in := prog[pc]
		switch {
		case in.Op == isa.OpGST || in.Op == isa.OpSST:
			out[pc] = true
			live[in.Ra] = true
			live[in.Rb] = true
		case isa.ClassOf(in.Op) == isa.ClassCtrl:
			out[pc] = true // not removable anyway
			allLive()      // join point: be conservative
		case isa.WritesRd(in.Op):
			if in.Pg != isa.PredAlways {
				// Predicated write: the old value may survive; stay
				// conservative and keep the register live.
				out[pc] = true
				if isa.ReadsRa(in.Op) {
					live[in.Ra] = true
				}
				if isa.ReadsRb(in.Op) {
					live[in.Rb] = true
				}
				continue
			}
			if live[in.Rd] {
				out[pc] = true
				live[in.Rd] = false
				if isa.ReadsRa(in.Op) {
					live[in.Ra] = true
				}
				if isa.ReadsRb(in.Op) {
					live[in.Rb] = true
				}
				if isa.ReadsRd(in.Op) {
					live[in.Rd] = true
				}
			}
		default:
			// Loads to dead registers, NOPs: not propagating.
		}
	}
	return out
}

// Reassemble builds the compacted PTP: instructions in removed (indices
// into p.Prog) are deleted, branch displacements are repaired, the data
// segment is rebuilt with only the surviving SBs' data (relocating their
// address immediates), and the SB/protected metadata is remapped.
func Reassemble(p *stl.PTP, sbs []stl.SB, removed []int) (*stl.PTP, error) {
	n := len(p.Prog)
	rm := make([]bool, n)
	for _, pc := range removed {
		if pc < 0 || pc >= n {
			return nil, fmt.Errorf("core: removed index %d out of range", pc)
		}
		rm[pc] = true
	}

	// newIdx maps old pc -> new pc for survivors; nextIdx maps any old pc
	// (and n) to the next surviving instruction's new index, for branch
	// targets that pointed into removed code.
	newIdx := make([]int, n+1)
	cnt := 0
	for pc := 0; pc < n; pc++ {
		if rm[pc] {
			newIdx[pc] = -1
		} else {
			newIdx[pc] = cnt
			cnt++
		}
	}
	newIdx[n] = cnt
	nextIdx := make([]int, n+1)
	next := cnt
	for pc := n; pc >= 0; pc-- {
		if pc < n && !rm[pc] {
			next = newIdx[pc]
		}
		nextIdx[pc] = next
	}

	comp := &stl.PTP{
		Name:   p.Name,
		Target: p.Target,
		Kernel: p.Kernel,
		Data:   stl.DataSegment{Base: p.Data.Base},
	}

	// Rebuild the data segment from surviving SBs, tracking relocations.
	type reloc struct {
		addrOld int // old instruction index to patch
		newOff  int
	}
	var relocs []reloc
	for _, sb := range sbs {
		if sb.DataLen == 0 || rm[sb.AddrInstr] {
			continue
		}
		newOff := len(comp.Data.Words)
		comp.Data.Words = append(comp.Data.Words,
			p.Data.Words[sb.DataOff:sb.DataOff+sb.DataLen]...)
		relocs = append(relocs, reloc{addrOld: sb.AddrInstr, newOff: newOff})
	}
	relocOf := make(map[int]int, len(relocs))
	for _, r := range relocs {
		relocOf[r.addrOld] = r.newOff
	}

	// Emit surviving instructions with repaired branches and relocated
	// data addresses.
	for pc := 0; pc < n; pc++ {
		if rm[pc] {
			continue
		}
		in := p.Prog[pc]
		switch in.Op {
		case isa.OpBRA, isa.OpSSY, isa.OpCAL:
			oldTgt := pc + 1 + int(in.Imm)
			if oldTgt < 0 {
				oldTgt = 0
			}
			if oldTgt > n {
				oldTgt = n
			}
			var newTgt int
			if oldTgt == n {
				newTgt = cnt
			} else if newIdx[oldTgt] >= 0 {
				newTgt = newIdx[oldTgt]
			} else {
				newTgt = nextIdx[oldTgt]
			}
			in.Imm = int32(newTgt - (newIdx[pc] + 1))
		default:
			if off, ok := relocOf[pc]; ok {
				in.Imm = int32(p.Data.Base + uint32(off)*4)
			}
		}
		comp.Prog = append(comp.Prog, in)
	}

	// Remap SB metadata (SBs with at least one surviving instruction).
	for _, sb := range sbs {
		lastNew := -1
		for pc := sb.End - 1; pc >= sb.Start; pc-- {
			if !rm[pc] {
				lastNew = newIdx[pc]
				break
			}
		}
		if lastNew < 0 {
			continue // fully removed
		}
		ns := stl.SB{Start: nextIdx[sb.Start], End: lastNew + 1, AddrInstr: -1}
		if sb.DataLen > 0 && !rm[sb.AddrInstr] {
			ns.DataOff = relocOf[sb.AddrInstr]
			ns.DataLen = sb.DataLen
			ns.AddrInstr = newIdx[sb.AddrInstr]
		}
		comp.SBs = append(comp.SBs, ns)
	}

	// Remap protected regions.
	for _, r := range p.Protected {
		ns := stl.Region{Start: nextIdx[r.Start], End: newIdx[r.End-1] + 1}
		if ns.End > ns.Start {
			comp.Protected = append(comp.Protected, ns)
		}
	}

	if len(comp.Prog) == 0 {
		return nil, errors.New("core: compaction removed the whole program")
	}
	if err := comp.Validate(); err != nil {
		return nil, fmt.Errorf("core: reassembled PTP invalid: %w", err)
	}
	return comp, nil
}
