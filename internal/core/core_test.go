package core

import (
	"testing"

	"gpustl/internal/asm"
	"gpustl/internal/circuits"
	"gpustl/internal/fault"
	"gpustl/internal/gpu"
	"gpustl/internal/isa"
	"gpustl/internal/ptpgen"
	"gpustl/internal/stl"
	"gpustl/internal/trace"
)

func module(t testing.TB, k circuits.ModuleKind) *circuits.Module {
	t.Helper()
	m, err := circuits.Build(k, 0)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func sampledFaults(t testing.TB, m *circuits.Module, n int, seed int64) []fault.Fault {
	t.Helper()
	c := fault.NewCampaign(m)
	c.SampleFaults(n, seed)
	return c.Faults()
}

func TestPropagates(t *testing.T) {
	prog, err := asm.Assemble(`
		MVI R1, 5          ; feeds R3 -> stored: propagates
		MVI R2, 7          ; dead: overwritten before any use
		MVI R2, 8          ; feeds R3
		IADD R3, R1, R2    ; stored
		GST [R0+0], R3
		MVI R4, 9          ; dead at exit? conservative tail keeps it live
		EXIT
	`)
	if err != nil {
		t.Fatal(err)
	}
	p := Propagates(prog)
	if !p[0] || !p[2] || !p[3] || !p[4] {
		t.Errorf("propagation chain broken: %v", p)
	}
	if p[1] {
		t.Errorf("dead MVI marked propagating: %v", p)
	}
	// EXIT (ctrl) always marked.
	if !p[6] {
		t.Error("EXIT not marked")
	}
}

func TestLabelJoinsOnCC(t *testing.T) {
	rep := &fault.Report{
		NumPatterns:        3,
		DetectedPerPattern: []int32{0, 2, 0},
		CCs:                []uint64{10, 20, 30},
	}
	col := &trace.Collector{Spans: []trace.Span{
		{Warp: 0, PC: 0, CCStart: 5, CCEnd: 14},
		{Warp: 0, PC: 1, CCStart: 15, CCEnd: 24},
		{Warp: 0, PC: 2, CCStart: 25, CCEnd: 34},
	}}
	ess := Label(3, rep, col.CCToPC())
	if ess[0] || !ess[1] || ess[2] {
		t.Fatalf("labeling = %v, want only pc 1 essential", ess)
	}
}

// makeRedundantPTP builds an SP-targeted PTP whose SBs are exact copies of
// each other (same operand values, no signature chaining): every SB after
// the first applies an identical SP pattern set, detects nothing new, and
// must be removed. (A DU-targeted version of this test cannot exist: the
// decoder's PC input makes instruction copies at different addresses apply
// different patterns — which the DU compaction results reflect.)
func makeRedundantPTP(t *testing.T) *stl.PTP {
	t.Helper()
	src := `
		S2R  R0, SR_TID
		SHLI R1, R0, 2
		MVI  R2, 65536
		IADD R2, R2, R1
	`
	for i := 0; i < 10; i++ {
		src += `
		MVI  R4, 0x12345678
		MVI  R5, 0x0F0FF0F0
		IADD R6, R4, R5
		GST  [R2+0], R6
		`
	}
	src += "EXIT\n"
	prog, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	p := &stl.PTP{
		Name: "REDUNDANT", Target: circuits.ModuleSP, Prog: prog,
		Kernel: stl.KernelConfig{Blocks: 1, ThreadsPerBlock: 32},
		Protected: []stl.Region{
			{Start: 0, End: 4},
			{Start: len(prog) - 1, End: len(prog)},
		},
	}
	for i := 0; i < 10; i++ {
		p.SBs = append(p.SBs, stl.SB{Start: 4 + i*4, End: 4 + (i+1)*4, AddrInstr: -1})
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCompactRemovesRedundantSBs(t *testing.T) {
	m := module(t, circuits.ModuleSP)
	c := New(gpu.DefaultConfig(), m, sampledFaults(t, m, 4000, 1), Options{})
	p := makeRedundantPTP(t)
	res, err := c.CompactPTP(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.RemovedSBs != 9 {
		t.Errorf("removed %d/%d SBs, want exactly 9 (identical copies)",
			res.RemovedSBs, res.TotalSBs)
	}
	if res.CompSize >= res.OrigSize || res.CompDuration >= res.OrigDuration {
		t.Errorf("no compaction: size %d->%d, cc %d->%d",
			res.OrigSize, res.CompSize, res.OrigDuration, res.CompDuration)
	}
	// Identical patterns detect identical faults: FC must not drop at all.
	if res.FCDiff() < -0.01 {
		t.Errorf("FC dropped by %.3f on pure redundancy", res.FCDiff())
	}
}

func TestCompactIMMEndToEnd(t *testing.T) {
	m := module(t, circuits.ModuleDU)
	c := New(gpu.DefaultConfig(), m, sampledFaults(t, m, 4000, 2), Options{})
	p := ptpgen.IMM(80, 3)
	res, err := c.CompactPTP(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.SizeReduction() <= 0 {
		t.Errorf("size reduction %.2f%%", res.SizeReduction())
	}
	if res.DurationReduction() <= 0 {
		t.Errorf("duration reduction %.2f%%", res.DurationReduction())
	}
	// FC loss must be small (the method's selling point).
	if res.FCDiff() < -5 {
		t.Errorf("FC diff %.2f too negative", res.FCDiff())
	}
	// The compacted PTP must still be a valid, runnable program with the
	// protected prologue/epilogue intact.
	if res.Compacted.Prog[0].Op != isa.OpS2R {
		t.Error("prologue damaged")
	}
	if res.Compacted.Prog[len(res.Compacted.Prog)-1].Op != isa.OpEXIT {
		t.Error("epilogue damaged")
	}
	t.Logf("IMM: %d->%d instrs (-%.2f%%), %d->%d cc (-%.2f%%), FC %.2f->%.2f (%+.2f), %v",
		res.OrigSize, res.CompSize, res.SizeReduction(),
		res.OrigDuration, res.CompDuration, res.DurationReduction(),
		res.OrigFC, res.CompFC, res.FCDiff(), res.CompactionTime)
}

func TestCrossPTPDroppingIncreasesCompaction(t *testing.T) {
	m := module(t, circuits.ModuleDU)
	faults := sampledFaults(t, m, 3000, 4)

	// Compact MEM after IMM (shared campaign, dropping).
	c1 := New(gpu.DefaultConfig(), m, faults, Options{})
	imm := ptpgen.IMM(60, 5)
	mem := ptpgen.MEM(60, 6)
	if _, err := c1.CompactPTP(imm); err != nil {
		t.Fatal(err)
	}
	after, err := c1.CompactPTP(mem)
	if err != nil {
		t.Fatal(err)
	}

	// Compact MEM alone (fresh campaign).
	c2 := New(gpu.DefaultConfig(), m, faults, Options{})
	alone, err := c2.CompactPTP(mem)
	if err != nil {
		t.Fatal(err)
	}

	if after.SizeReduction() < alone.SizeReduction() {
		t.Errorf("dropping did not help: after IMM %.2f%% vs alone %.2f%%",
			after.SizeReduction(), alone.SizeReduction())
	}
	t.Logf("MEM compaction: alone -%.2f%%, after IMM -%.2f%%",
		alone.SizeReduction(), after.SizeReduction())
}

func TestCompactCNTRLPreservesControlFlow(t *testing.T) {
	m := module(t, circuits.ModuleDU)
	c := New(gpu.DefaultConfig(), m, sampledFaults(t, m, 2000, 7), Options{})
	p := ptpgen.CNTRL(12, 8)
	res, err := c.CompactPTP(p)
	if err != nil {
		t.Fatal(err)
	}
	// The compacted program must still run (branch repair correctness) —
	// CompactPTP already re-runs it; check it retains control flow and
	// compacts less than the straight-line PTPs.
	hasBranch := false
	for _, in := range res.Compacted.Prog {
		if in.Op == isa.OpBRA {
			hasBranch = true
		}
	}
	if !hasBranch {
		t.Error("compaction removed all branches")
	}
	t.Logf("CNTRL: -%.2f%% size, -%.2f%% cc, FC %+.2f",
		res.SizeReduction(), res.DurationReduction(), res.FCDiff())
}

func TestCompactMEMRelocatesData(t *testing.T) {
	m := module(t, circuits.ModuleDU)
	c := New(gpu.DefaultConfig(), m, sampledFaults(t, m, 2500, 9), Options{})
	p := ptpgen.MEM(50, 10)
	res, err := c.CompactPTP(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.RemovedSBs == 0 {
		t.Skip("nothing removed; cannot exercise relocation")
	}
	comp := res.Compacted
	if len(comp.Data.Words) >= len(p.Data.Words) {
		t.Errorf("data segment not compacted: %d -> %d words",
			len(p.Data.Words), len(comp.Data.Words))
	}
	// Every surviving SB's address instruction must point at its relocated
	// data.
	for i, sb := range comp.SBs {
		if sb.DataLen == 0 {
			continue
		}
		in := comp.Prog[sb.AddrInstr]
		want := comp.Data.Base + uint32(sb.DataOff)*4
		if in.Op != isa.OpMVI || uint32(in.Imm) != want {
			t.Fatalf("SB %d address not relocated: %+v, want imm %#x", i, in, want)
		}
	}
	// The relocated data must preserve the surviving SBs' original words:
	// the compacted program's pattern stream was already validated by the
	// FC re-simulation inside CompactPTP.
	if err := comp.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReassembleBranchRepair(t *testing.T) {
	prog, err := asm.Assemble(`
		ISETI R1, R0, 3, LT, P0
		SSY endif
		@P0 BRA else_
		MVI R2, 1          ; SB to remove
		GST [R0+0], R2     ; SB to remove
		BRA endif
	else_:
		MVI R2, 2
	endif:
		GST [R0+4], R2
		EXIT
	`)
	if err != nil {
		t.Fatal(err)
	}
	p := &stl.PTP{
		Name: "br", Target: circuits.ModuleDU, Prog: prog,
		Kernel: stl.KernelConfig{Blocks: 1, ThreadsPerBlock: 32},
	}
	sbs := []stl.SB{{Start: 3, End: 5, AddrInstr: -1}}
	comp, err := Reassemble(p, sbs, []int{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(comp.Prog) != len(prog)-2 {
		t.Fatalf("size %d", len(comp.Prog))
	}
	// Re-run and make sure the control flow still reconverges.
	g, _ := gpu.New(gpu.DefaultConfig(), nil)
	res, err := g.Run(gpu.Kernel{Prog: comp.Prog, Blocks: 1, ThreadsPerBlock: 32})
	if err != nil {
		t.Fatalf("repaired program does not run: %v", err)
	}
	// Threads with tid<3 took else (R2=2); others fell through the removed
	// then-arm, so R2 stays 2 from the else path only for tid<3; the rest
	// keep R2's prior value (0). Final store at [R0+4]: thread 0 writes.
	_ = res
	// Structural check: every branch target lands inside the program.
	for pc, in := range comp.Prog {
		if in.Op == isa.OpBRA || in.Op == isa.OpSSY {
			tgt := pc + 1 + int(in.Imm)
			if tgt < 0 || tgt > len(comp.Prog) {
				t.Fatalf("branch at %d targets %d", pc, tgt)
			}
		}
	}
}

func TestInstructionGranularityAblation(t *testing.T) {
	m := module(t, circuits.ModuleDU)
	faults := sampledFaults(t, m, 2500, 11)
	p := ptpgen.IMM(50, 12)

	sbRes, err := New(gpu.DefaultConfig(), m, faults, Options{}).CompactPTP(p)
	if err != nil {
		t.Fatal(err)
	}
	inRes, err := New(gpu.DefaultConfig(), m, faults,
		Options{InstructionGranularity: true}).CompactPTP(p)
	if err != nil {
		t.Fatal(err)
	}
	// Instruction granularity always removes at least as much code...
	if inRes.CompSize > sbRes.CompSize {
		t.Errorf("instruction granularity removed less: %d vs %d",
			inRes.CompSize, sbRes.CompSize)
	}
	t.Logf("SB: -%.2f%% FC%+.2f | instr: -%.2f%% FC%+.2f",
		sbRes.SizeReduction(), sbRes.FCDiff(),
		inRes.SizeReduction(), inRes.FCDiff())
}

func TestCompactSPWithRAND(t *testing.T) {
	m := module(t, circuits.ModuleSP)
	c := New(gpu.DefaultConfig(), m, sampledFaults(t, m, 6000, 13), Options{})
	p := ptpgen.RAND(60, 14)
	res, err := c.CompactPTP(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.SizeReduction() <= 0 {
		t.Errorf("no SP compaction: %.2f%%", res.SizeReduction())
	}
	t.Logf("RAND: -%.2f%% size, -%.2f%% cc, FC %.2f->%.2f",
		res.SizeReduction(), res.DurationReduction(), res.OrigFC, res.CompFC)
}

func TestCompactFP32WithFPRAND(t *testing.T) {
	m := module(t, circuits.ModuleFP32)
	c := New(gpu.DefaultConfig(), m, sampledFaults(t, m, 6000, 17), Options{})
	p := ptpgen.FPRAND(60, 18)
	res, err := c.CompactPTP(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.SizeReduction() <= 0 {
		t.Errorf("no FP32 compaction: %.2f%%", res.SizeReduction())
	}
	if res.OrigFC < 40 {
		t.Errorf("FPRAND coverage only %.2f%%", res.OrigFC)
	}
	t.Logf("FP_RAND: -%.2f%% size, -%.2f%% cc, FC %.2f->%.2f",
		res.SizeReduction(), res.DurationReduction(), res.OrigFC, res.CompFC)
}

func TestCompactWrongTarget(t *testing.T) {
	m := module(t, circuits.ModuleDU)
	c := New(gpu.DefaultConfig(), m, sampledFaults(t, m, 100, 1), Options{})
	p := ptpgen.RAND(5, 1) // targets SP
	if _, err := c.CompactPTP(p); err == nil {
		t.Fatal("mismatched target accepted")
	}
}

func TestCompactDeterminism(t *testing.T) {
	m := module(t, circuits.ModuleDU)
	faults := sampledFaults(t, m, 2000, 15)
	p := ptpgen.IMM(40, 16)
	a, err := New(gpu.DefaultConfig(), m, faults, Options{}).CompactPTP(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(gpu.DefaultConfig(), m, faults, Options{}).CompactPTP(p)
	if err != nil {
		t.Fatal(err)
	}
	if a.CompSize != b.CompSize || a.OrigFC != b.OrigFC || a.CompFC != b.CompFC {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
	for i := range a.Compacted.Prog {
		if a.Compacted.Prog[i] != b.Compacted.Prog[i] {
			t.Fatalf("compacted instruction %d differs", i)
		}
	}
}
