package core

import (
	"testing"

	"gpustl/internal/circuits"
	"gpustl/internal/gpu"
	"gpustl/internal/ptpgen"
)

// TestCompactWithoutSBMetadata exercises the SegmentSBs fallback: an
// externally authored PTP arrives without generator metadata, so stage 1
// derives the Small Blocks from the code (store-terminated runs).
func TestCompactWithoutSBMetadata(t *testing.T) {
	m := module(t, circuits.ModuleDU)
	p := ptpgen.IMM(40, 71)
	p.SBs = nil // simulate an external PTP

	c := New(gpu.DefaultConfig(), m, sampledFaults(t, m, 2500, 72), Options{})
	res, err := c.CompactPTP(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalSBs == 0 {
		t.Fatal("SegmentSBs derived nothing")
	}
	if res.SizeReduction() <= 0 {
		t.Errorf("no compaction via derived SBs: %.2f%%", res.SizeReduction())
	}
	// The compacted PTP must still run and keep the protected scaffolding.
	if err := res.Compacted.Validate(); err != nil {
		t.Fatal(err)
	}
	t.Logf("derived %d SBs, removed %d, -%.2f%% size, FC %+.2f",
		res.TotalSBs, res.RemovedSBs, res.SizeReduction(), res.FCDiff())
}
