package core

import (
	"fmt"
	"sort"

	"gpustl/internal/fault"
	"gpustl/internal/trace"
)

// LabelDetail is the full output of the Fig. 2 labeling algorithm: per
// instruction, whether it is essential, and which warps' executions made
// it so — the "for each warp Wj ... for each clock cycle k" loop of the
// paper made inspectable.
type LabelDetail struct {
	Essential []bool
	// WarpHits[pc] maps warp id -> number of fault-detecting patterns that
	// warp's execution of pc applied; nil when the instruction detected
	// nothing.
	WarpHits []map[int16]int

	// Detections is the total number of fault detections attributed.
	Detections int
	// UnmatchedCCs counts FSR entries whose clock cycle did not resolve to
	// any traced instruction span (should be zero on a consistent trace).
	UnmatchedCCs int
}

// EssentialCount returns how many instructions are essential.
func (d *LabelDetail) EssentialCount() int {
	n := 0
	for _, e := range d.Essential {
		if e {
			n++
		}
	}
	return n
}

// Warps returns the sorted warp ids that made pc essential.
func (d *LabelDetail) Warps(pc int) []int16 {
	if pc >= len(d.WarpHits) || d.WarpHits[pc] == nil {
		return nil
	}
	out := make([]int16, 0, len(d.WarpHits[pc]))
	for w := range d.WarpHits[pc] {
		out = append(out, w)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// String summarizes the labeling.
func (d *LabelDetail) String() string {
	return fmt.Sprintf("labeling: %d/%d essential, %d detections, %d unmatched ccs",
		d.EssentialCount(), len(d.Essential), d.Detections, d.UnmatchedCCs)
}

// LabelDetailed runs the Fig. 2 algorithm keeping the per-warp attribution.
// It is the inspectable variant of Label; both agree on the Essential
// vector.
func LabelDetailed(progLen int, rep *fault.Report, idx *trace.CCIndex) *LabelDetail {
	d := &LabelDetail{
		Essential: make([]bool, progLen),
		WarpHits:  make([]map[int16]int, progLen),
	}
	for i, n := range rep.DetectedPerPattern {
		if n == 0 {
			continue
		}
		warp, pc, ok := idx.Lookup(rep.CCs[i])
		if !ok || int(pc) >= progLen {
			d.UnmatchedCCs++
			continue
		}
		d.Detections += int(n)
		d.Essential[pc] = true
		if d.WarpHits[pc] == nil {
			d.WarpHits[pc] = make(map[int16]int)
		}
		d.WarpHits[pc][warp] += int(n)
	}
	return d
}
