package core

import (
	"testing"

	"gpustl/internal/circuits"
	"gpustl/internal/fault"
	"gpustl/internal/gpu"
	"gpustl/internal/ptpgen"
	"gpustl/internal/trace"
)

func TestLabelDetailedAgreesWithLabel(t *testing.T) {
	m := module(t, circuits.ModuleDU)
	p := ptpgen.IMM(30, 3)

	col := trace.NewCollector(circuits.ModuleDU)
	g, err := gpu.New(gpu.DefaultConfig(), col)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Run(gpu.Kernel{
		Prog: p.Prog, Blocks: 1, ThreadsPerBlock: 32,
		GlobalBase: p.Data.Base, GlobalData: p.Data.Words,
	}); err != nil {
		t.Fatal(err)
	}

	camp := fault.NewCampaignWithFaults(m, sampledFaults(t, m, 2000, 1))
	rep := camp.Simulate(col.Patterns, fault.SimOptions{})

	idx := col.CCToPC()
	plain := Label(len(p.Prog), rep, idx)
	detail := LabelDetailed(len(p.Prog), rep, idx)

	for pc := range plain {
		if plain[pc] != detail.Essential[pc] {
			t.Fatalf("pc %d: Label=%v LabelDetailed=%v", pc, plain[pc], detail.Essential[pc])
		}
	}
	if detail.UnmatchedCCs != 0 {
		t.Errorf("unmatched ccs: %d", detail.UnmatchedCCs)
	}
	if detail.Detections != rep.DetectedThisRun() {
		t.Errorf("attributed %d of %d detections", detail.Detections, rep.DetectedThisRun())
	}
	if detail.EssentialCount() == 0 {
		t.Error("nothing essential")
	}
	// A single-warp kernel: all attributions must be warp 0.
	for pc := range detail.Essential {
		for _, w := range detail.Warps(pc) {
			if w != 0 {
				t.Fatalf("pc %d attributed to warp %d in a 1-warp kernel", pc, w)
			}
		}
	}
	t.Logf("%s", detail)
}

func TestLabelDetailedMultiWarp(t *testing.T) {
	m := module(t, circuits.ModuleDU)
	p := ptpgen.CNTRL(8, 4) // 1024 threads = 32 warps

	col := trace.NewCollector(circuits.ModuleDU)
	g, err := gpu.New(gpu.DefaultConfig(), col)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Run(gpu.Kernel{
		Prog: p.Prog, Blocks: 1, ThreadsPerBlock: 1024,
	}); err != nil {
		t.Fatal(err)
	}
	camp := fault.NewCampaignWithFaults(m, sampledFaults(t, m, 2000, 2))
	rep := camp.Simulate(col.Patterns, fault.SimOptions{})
	detail := LabelDetailed(len(p.Prog), rep, col.CCToPC())

	// At least one instruction must have been made essential by a warp
	// other than warp 0 (warp-level attribution really varies).
	other := false
	for pc := range detail.Essential {
		for _, w := range detail.Warps(pc) {
			if w != 0 {
				other = true
			}
		}
	}
	if !other {
		t.Error("no attribution beyond warp 0 in a 32-warp kernel")
	}
}
