package core

import (
	"runtime"
	"testing"

	"gpustl/internal/circuits"
	"gpustl/internal/gpu"
	"gpustl/internal/ptpgen"
)

func TestKeepCampaignOption(t *testing.T) {
	m := module(t, circuits.ModuleDU)
	faults := sampledFaults(t, m, 2000, 21)
	imm := ptpgen.IMM(40, 22)
	mem := ptpgen.MEM(40, 23)

	// With KeepCampaign, compacting IMM must not drop faults, so MEM
	// compacts exactly as it would alone.
	keep := New(gpu.DefaultConfig(), m, faults, Options{KeepCampaign: true})
	if _, err := keep.CompactPTP(imm); err != nil {
		t.Fatal(err)
	}
	if keep.Campaign.Detected() != 0 {
		t.Fatalf("KeepCampaign dropped %d faults", keep.Campaign.Detected())
	}
	memAfter, err := keep.CompactPTP(mem)
	if err != nil {
		t.Fatal(err)
	}

	alone, err := New(gpu.DefaultConfig(), m, faults, Options{}).CompactPTP(mem)
	if err != nil {
		t.Fatal(err)
	}
	if memAfter.CompSize != alone.CompSize {
		t.Errorf("KeepCampaign MEM size %d != standalone %d", memAfter.CompSize, alone.CompSize)
	}
}

func TestWorkersOptionDeterminism(t *testing.T) {
	m := module(t, circuits.ModuleSP)
	faults := sampledFaults(t, m, 4000, 24)
	p := ptpgen.RAND(40, 25)

	serial, err := New(gpu.DefaultConfig(), m, faults, Options{}).CompactPTP(p)
	if err != nil {
		t.Fatal(err)
	}
	par, err := New(gpu.DefaultConfig(), m, faults,
		Options{Workers: runtime.GOMAXPROCS(0)}).CompactPTP(p)
	if err != nil {
		t.Fatal(err)
	}
	if serial.CompSize != par.CompSize || serial.OrigFC != par.OrigFC || serial.CompFC != par.CompFC {
		t.Fatalf("workers changed the outcome: %+v vs %+v", serial, par)
	}
	for i := range serial.Compacted.Prog {
		if serial.Compacted.Prog[i] != par.Compacted.Prog[i] {
			t.Fatalf("instruction %d differs", i)
		}
	}
}

func TestObservableFCOption(t *testing.T) {
	m := module(t, circuits.ModuleSP)
	faults := sampledFaults(t, m, 3000, 26)
	p := ptpgen.RAND(40, 27)

	plain, err := New(gpu.DefaultConfig(), m, faults, Options{}).CompactPTP(p)
	if err != nil {
		t.Fatal(err)
	}
	obs, err := New(gpu.DefaultConfig(), m, faults, Options{ObservableFC: true}).CompactPTP(p)
	if err != nil {
		t.Fatal(err)
	}
	// Observable FC counts only detections whose instruction results reach
	// a store; it can never exceed the module-level FC.
	if obs.OrigFC > plain.OrigFC+1e-9 {
		t.Errorf("observable FC %.2f > module-level %.2f", obs.OrigFC, plain.OrigFC)
	}
	// The gap between the two is the module-level-observability optimism
	// the paper's §III discusses: RAND SBs contain architecturally dead
	// operations (random chains where only one result is folded into the
	// signature) whose patterns toggle the module but never reach a store.
	// The gap must be substantial but not total.
	gap := plain.OrigFC - obs.OrigFC
	if gap < 1 || gap > 60 {
		t.Errorf("module-vs-observable gap %.2f implausible", gap)
	}
	t.Logf("module-level FC %.2f, observable FC %.2f (gap %.2f)",
		plain.OrigFC, obs.OrigFC, gap)
}
