package core

import (
	"math/rand"
	"testing"

	"gpustl/internal/gpu"
	"gpustl/internal/isa"
	"gpustl/internal/ptpgen"
	"gpustl/internal/stl"
)

// TestReassembleRandomRemovalsProperty removes random SB subsets from
// generated PTPs and checks the structural invariants of the result:
// valid PTP, correct size, surviving SBs unchanged in content, branch
// targets in range, data relocation consistent, and the program still runs.
func TestReassembleRandomRemovalsProperty(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	gens := []func() *stl.PTP{
		func() *stl.PTP { return ptpgen.IMM(20+r.Intn(30), r.Int63()) },
		func() *stl.PTP { return ptpgen.MEM(15+r.Intn(25), r.Int63()) },
		func() *stl.PTP { return ptpgen.CNTRL(6+r.Intn(8), r.Int63()) },
		func() *stl.PTP { return ptpgen.RAND(20+r.Intn(30), r.Int63()) },
	}
	for trial := 0; trial < 40; trial++ {
		p := gens[trial%len(gens)]()
		// Random subset of SBs to remove.
		var removed []int
		var removedSBs int
		for _, sb := range p.SBs {
			if r.Intn(3) != 0 {
				continue
			}
			removedSBs++
			for pc := sb.Start; pc < sb.End; pc++ {
				removed = append(removed, pc)
			}
		}
		comp, err := Reassemble(p, p.SBs, removed)
		if err != nil {
			t.Fatalf("trial %d (%s): %v", trial, p.Name, err)
		}
		if got, want := len(comp.Prog), len(p.Prog)-len(removed); got != want {
			t.Fatalf("trial %d: size %d, want %d", trial, got, want)
		}
		if got, want := len(comp.SBs), len(p.SBs)-removedSBs; got != want {
			t.Fatalf("trial %d: SBs %d, want %d", trial, got, want)
		}
		// Branch targets stay in range.
		for pc, in := range comp.Prog {
			if in.Op == isa.OpBRA || in.Op == isa.OpSSY || in.Op == isa.OpCAL {
				tgt := pc + 1 + int(in.Imm)
				if tgt < 0 || tgt > len(comp.Prog) {
					t.Fatalf("trial %d: branch at %d targets %d (len %d)",
						trial, pc, tgt, len(comp.Prog))
				}
			}
		}
		// Surviving SBs' instructions are identical to the originals
		// except for relocated data addresses.
		oi := 0
		for _, sb := range p.SBs {
			rm := false
			for _, x := range removed {
				if x == sb.Start {
					rm = true
					break
				}
			}
			if rm {
				continue
			}
			ns := comp.SBs[oi]
			oi++
			if ns.Len() != sb.Len() {
				t.Fatalf("trial %d: surviving SB length %d != %d", trial, ns.Len(), sb.Len())
			}
			for k := 0; k < sb.Len(); k++ {
				a, b := p.Prog[sb.Start+k], comp.Prog[ns.Start+k]
				if sb.DataLen > 0 && sb.Start+k == sb.AddrInstr {
					// Only the immediate may change (relocation).
					a.Imm, b.Imm = 0, 0
				}
				if a != b {
					t.Fatalf("trial %d: SB instruction changed: %+v != %+v", trial, a, b)
				}
			}
		}
		// Data relocation: surviving SBs' words must match the originals.
		for i, ns := range comp.SBs {
			if ns.DataLen == 0 {
				continue
			}
			in := comp.Prog[ns.AddrInstr]
			if uint32(in.Imm) != comp.Data.Base+uint32(ns.DataOff)*4 {
				t.Fatalf("trial %d SB %d: address %#x, want %#x",
					trial, i, uint32(in.Imm), comp.Data.Base+uint32(ns.DataOff)*4)
			}
		}
		// The compacted PTP must still run to completion.
		g, err := gpu.New(gpu.DefaultConfig(), nil)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := g.Run(gpu.Kernel{
			Prog: comp.Prog, Blocks: comp.Kernel.Blocks,
			ThreadsPerBlock: comp.Kernel.ThreadsPerBlock,
			GlobalBase:      comp.Data.Base, GlobalData: comp.Data.Words,
		}); err != nil {
			t.Fatalf("trial %d (%s): compacted program failed: %v", trial, p.Name, err)
		}
	}
}

// TestReassembleNoRemovalIsIdentity checks that an empty removal set is a
// faithful copy.
func TestReassembleNoRemovalIsIdentity(t *testing.T) {
	p := ptpgen.MEM(10, 5)
	comp, err := Reassemble(p, p.SBs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(comp.Prog) != len(p.Prog) {
		t.Fatalf("size changed: %d != %d", len(comp.Prog), len(p.Prog))
	}
	for i := range p.Prog {
		if comp.Prog[i] != p.Prog[i] {
			t.Fatalf("instruction %d changed", i)
		}
	}
	if len(comp.Data.Words) != len(p.Data.Words) {
		t.Fatalf("data changed: %d != %d words", len(comp.Data.Words), len(p.Data.Words))
	}
}

// TestReassembleRejectsBadIndices checks input validation.
func TestReassembleRejectsBadIndices(t *testing.T) {
	p := ptpgen.IMM(5, 1)
	if _, err := Reassemble(p, p.SBs, []int{-1}); err == nil {
		t.Error("negative index accepted")
	}
	if _, err := Reassemble(p, p.SBs, []int{len(p.Prog)}); err == nil {
		t.Error("out-of-range index accepted")
	}
	// Removing everything must fail, not produce an empty program.
	all := make([]int, len(p.Prog))
	for i := range all {
		all[i] = i
	}
	if _, err := Reassemble(p, p.SBs, all); err == nil {
		t.Error("whole-program removal accepted")
	}
}
