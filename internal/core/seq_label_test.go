package core

import (
	"testing"

	"gpustl/internal/circuits"
	"gpustl/internal/fault"
	"gpustl/internal/gpu"
	"gpustl/internal/ptpgen"
	"gpustl/internal/trace"
)

// TestSequentialLabelingFlow exercises the stage-2/3 pipeline against the
// sequential pipeline-register module: run a PTP, extract the PIPE cycle
// stream, sequential-fault-simulate it, and join the detections back to
// instructions with the Fig. 2 labeling — demonstrating that the
// compaction analysis extends to sequential targets.
func TestSequentialLabelingFlow(t *testing.T) {
	m, err := circuits.Build(circuits.ModulePIPE, 0)
	if err != nil {
		t.Fatal(err)
	}
	p := ptpgen.IMM(40, 51) // any fetch-heavy PTP exercises the pipe

	col := trace.NewCollector(circuits.ModulePIPE)
	g, err := gpu.New(gpu.DefaultConfig(), col)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Run(gpu.Kernel{
		Prog: p.Prog, Blocks: 1, ThreadsPerBlock: 32,
		GlobalBase: p.Data.Base, GlobalData: p.Data.Words,
	}); err != nil {
		t.Fatal(err)
	}
	if len(col.Patterns) != len(p.Prog) {
		t.Fatalf("PIPE patterns = %d, want %d", len(col.Patterns), len(p.Prog))
	}

	camp, err := fault.NewSeqCampaign(m)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := camp.Simulate(col.Patterns)
	if err != nil {
		t.Fatal(err)
	}
	if rep.DetectedThisRun() == 0 {
		t.Fatal("no detections")
	}

	essential := Label(len(p.Prog), rep, col.CCToPC())
	nEss := 0
	for _, e := range essential {
		if e {
			nEss++
		}
	}
	if nEss == 0 || nEss == len(p.Prog) {
		t.Fatalf("labeling degenerate: %d/%d essential", nEss, len(p.Prog))
	}
	// Register faults are toggled by the first few distinct words; the
	// essential set concentrates early in the program.
	firstHalfEss := 0
	for pc := 0; pc < len(p.Prog)/2; pc++ {
		if essential[pc] {
			firstHalfEss++
		}
	}
	if firstHalfEss*2 < nEss {
		t.Errorf("essential instructions not front-loaded: %d of %d in first half",
			firstHalfEss, nEss)
	}

	// The reduction/reassembly stages consume the labeling unchanged.
	var removed []int
	for _, sb := range p.SBs {
		all := true
		for pc := sb.Start; pc < sb.End; pc++ {
			if essential[pc] {
				all = false
				break
			}
		}
		if all {
			for pc := sb.Start; pc < sb.End; pc++ {
				removed = append(removed, pc)
			}
		}
	}
	comp, err := Reassemble(p, p.SBs, removed)
	if err != nil {
		t.Fatal(err)
	}
	if len(comp.Prog) >= len(p.Prog) {
		t.Errorf("sequential labeling removed nothing: %d -> %d", len(p.Prog), len(comp.Prog))
	}
	t.Logf("sequential flow: %d/%d essential, %d -> %d instructions, PIPE coverage %.2f%%",
		nEss, len(p.Prog), len(p.Prog), len(comp.Prog), camp.Coverage())
}
