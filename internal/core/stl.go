package core

import (
	"fmt"

	"gpustl/internal/circuits"
	"gpustl/internal/fault"
	"gpustl/internal/gpu"
	"gpustl/internal/stl"
)

// STLResult is the outcome of compacting a whole Self-Test Library.
type STLResult struct {
	// PerPTP holds one compaction result per candidate PTP, in the STL's
	// order; excluded PTPs (no admissible regions) have a nil entry.
	PerPTP []*Result
	// Compacted is the reassembled STL: compacted candidates plus the
	// untouched excluded PTPs, in the original order.
	Compacted *stl.STL

	OrigSize, CompSize int
	Excluded           int // PTPs left untouched
}

// SizeReduction returns the whole-STL size compaction percentage.
func (r *STLResult) SizeReduction() float64 {
	return 100 * (1 - float64(r.CompSize)/float64(r.OrigSize))
}

// ModuleSet supplies the gate-level modules and fault lists per target
// module kind for an STL-wide compaction.
type ModuleSet struct {
	Modules map[circuits.ModuleKind]*circuits.Module
	Faults  map[circuits.ModuleKind][]fault.Fault
}

// NewModuleSet builds the modules and (optionally sampled) fault lists
// for the module kinds the STL targets.
func NewModuleSet(lib *stl.STL, sample int, seed int64) (*ModuleSet, error) {
	ms := &ModuleSet{
		Modules: map[circuits.ModuleKind]*circuits.Module{},
		Faults:  map[circuits.ModuleKind][]fault.Fault{},
	}
	for _, p := range lib.PTPs {
		if _, ok := ms.Modules[p.Target]; ok {
			continue
		}
		m, err := circuits.Build(p.Target, 0)
		if err != nil {
			return nil, err
		}
		if m.NL.NumDFFs() > 0 {
			continue // sequential targets are not compaction candidates here
		}
		ms.Modules[p.Target] = m
		c := fault.NewCampaign(m)
		if sample > 0 {
			c.SampleFaults(sample, seed)
		}
		ms.Faults[p.Target] = c.Faults()
	}
	return ms, nil
}

// CompactSTL runs the five-stage method over every candidate PTP of the
// library, sharing one fault campaign per target module (cross-PTP fault
// dropping within each module, as the paper's stage-3 fault list report
// prescribes), and reassembles the STL. PTPs with no admissible regions —
// the carefully devised control-unit tests — pass through untouched.
func CompactSTL(cfg gpu.Config, ms *ModuleSet, lib *stl.STL, opt Options) (*STLResult, error) {
	compactors := map[circuits.ModuleKind]*Compactor{}
	for kind, m := range ms.Modules {
		compactors[kind] = New(cfg, m, ms.Faults[kind], opt)
	}

	out := &STLResult{Compacted: &stl.STL{}}
	for _, p := range lib.PTPs {
		out.OrigSize += len(p.Prog)
		c := compactors[p.Target]
		if c == nil || len(p.ARCs()) == 0 {
			out.Excluded++
			out.PerPTP = append(out.PerPTP, nil)
			out.Compacted.PTPs = append(out.Compacted.PTPs, p)
			out.CompSize += len(p.Prog)
			continue
		}
		res, err := c.CompactPTP(p)
		if err != nil {
			return nil, fmt.Errorf("core: STL compaction of %s: %w", p.Name, err)
		}
		out.PerPTP = append(out.PerPTP, res)
		out.Compacted.PTPs = append(out.Compacted.PTPs, res.Compacted)
		out.CompSize += res.CompSize
	}
	return out, nil
}
