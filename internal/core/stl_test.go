package core

import (
	"testing"

	"gpustl/internal/gpu"
	"gpustl/internal/ptpgen"
	"gpustl/internal/stl"
)

func TestCompactSTLEndToEnd(t *testing.T) {
	lib := &stl.STL{PTPs: []*stl.PTP{
		ptpgen.IMM(30, 61),
		ptpgen.MEM(30, 62),
		ptpgen.RAND(30, 63),
		ptpgen.DIVG(4, 2, 64), // excluded: no admissible regions
	}}
	ms, err := NewModuleSet(lib, 2500, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := CompactSTL(gpu.DefaultConfig(), ms, lib, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Compacted.PTPs) != 4 || len(res.PerPTP) != 4 {
		t.Fatalf("PTP counts: %d compacted, %d results",
			len(res.Compacted.PTPs), len(res.PerPTP))
	}
	if res.Excluded != 1 || res.PerPTP[3] != nil {
		t.Errorf("DIVG not excluded: excluded=%d", res.Excluded)
	}
	// The excluded PTP passes through identically.
	if res.Compacted.PTPs[3] != lib.PTPs[3] {
		t.Error("excluded PTP was replaced")
	}
	if res.SizeReduction() <= 0 {
		t.Errorf("no STL reduction: %.2f%%", res.SizeReduction())
	}
	// Cross-PTP dropping within the DU module: MEM (second DU PTP) must
	// compact harder than IMM.
	if res.PerPTP[1].SizeReduction() < res.PerPTP[0].SizeReduction() {
		t.Errorf("MEM -%.2f%% < IMM -%.2f%%: dropping not shared",
			res.PerPTP[1].SizeReduction(), res.PerPTP[0].SizeReduction())
	}
	// Size bookkeeping.
	wantComp := 0
	for _, p := range res.Compacted.PTPs {
		wantComp += len(p.Prog)
	}
	if res.CompSize != wantComp {
		t.Errorf("CompSize %d != %d", res.CompSize, wantComp)
	}
	t.Logf("STL: %d -> %d instructions (-%.2f%%), %d excluded",
		res.OrigSize, res.CompSize, res.SizeReduction(), res.Excluded)
}

func TestNewModuleSetSkipsSequential(t *testing.T) {
	lib := &stl.STL{PTPs: []*stl.PTP{ptpgen.DIVG(3, 1, 65)}}
	// DIVG targets the DU module kind; build a set for it anyway and make
	// sure a sequential-only library degrades gracefully (DU is
	// combinational, so it IS included — exercise the path with no error).
	ms, err := NewModuleSet(lib, 500, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms.Modules) != 1 {
		t.Fatalf("modules = %d", len(ms.Modules))
	}
}
