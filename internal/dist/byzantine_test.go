package dist

import (
	"context"
	"errors"
	"math/rand"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"gpustl/internal/failpoint"
	"gpustl/internal/fault"
	"gpustl/internal/obs"
)

// byzOptions: full verification so every shard gets a second opinion —
// the configuration a Byzantine worker cannot hide from.
func byzOptions(reg *obs.Registry) Options {
	opt := fastOptions()
	opt.VerifyFraction = 1
	opt.Metrics = reg
	return opt
}

// TestByzantineWorkerQuarantined is the acceptance scenario: one worker
// of four returns plausible-but-wrong results (valid indices, matching
// CCs, self-consistent checksum). The checksum vote must out it, the
// campaign must still be byte-identical to a serial run, and the
// quarantine must surface in Stats and gpustl_* metrics.
func TestByzantineWorkerQuarantined(t *testing.T) {
	defer failpoint.Reset()
	m := spModule(t)
	stream := randomSPStream(rand.New(rand.NewSource(61)), m.Lanes, 512)

	serial := newSPCampaign(t, m, 800, 67)
	wantRep := serial.Simulate(stream, fault.SimOptions{Workers: 1})

	// Arm the Byzantine failpoint globally, but only the liar's
	// transport is wrapped to act on it.
	if err := failpoint.Enable("dist.reply.byzantine", failpoint.Config{
		Kind: failpoint.KindCorrupt, Prob: 1, Seed: 11,
	}); err != nil {
		t.Fatal(err)
	}
	liar := WithFailpoints(NewLocal("liar"), "dist.reply.byzantine")
	reg := obs.NewRegistry()
	co, err := New(byzOptions(reg), liar, NewLocal("w1"), NewLocal("w2"), NewLocal("w3"))
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()

	camp := newSPCampaign(t, m, 800, 67)
	res, err := co.Run(context.Background(), camp, stream, fault.SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded() {
		t.Fatalf("campaign degraded despite three honest workers: %v", res.ShardErrors)
	}
	assertSameReport(t, res.Report, wantRep)

	st := res.Stats
	if st.ByzantineReplies == 0 {
		t.Fatalf("liar's replies never outvoted: %+v", st)
	}
	if st.QuarantinedWorkers != 1 {
		t.Fatalf("QuarantinedWorkers = %d, want 1: %+v", st.QuarantinedWorkers, st)
	}
	if st.VerifiedShards == 0 || st.VerifyMismatches == 0 {
		t.Fatalf("verification never ran: %+v", st)
	}
	if got := co.Banned(); len(got) != 1 || got[0] != "liar" {
		t.Fatalf("Banned() = %v, want [liar]", got)
	}

	snap := reg.Snapshot()
	if n := snap.Counters["gpustl_dist_byzantine_replies_total"]; n != uint64(st.ByzantineReplies) {
		t.Errorf("gpustl_dist_byzantine_replies_total = %d, want %d", n, st.ByzantineReplies)
	}
	if n := snap.Counters["gpustl_dist_quarantined_workers_total"]; n != 1 {
		t.Errorf("gpustl_dist_quarantined_workers_total = %d, want 1", n)
	}
	if n := snap.Counters["gpustl_dist_verified_shards_total"]; n != uint64(st.VerifiedShards) {
		t.Errorf("gpustl_dist_verified_shards_total = %d, want %d", n, st.VerifiedShards)
	}
	if g := snap.Gauges[`gpustl_dist_worker_quarantined{worker="liar"}`]; g != 1 {
		t.Errorf("quarantine gauge = %v, want 1", g)
	}
	if g := snap.Gauges[`gpustl_dist_worker_up{worker="liar"}`]; g != 0 {
		t.Errorf("liar still reads up: gauge = %v", g)
	}

	// The blacklist persists across runs on the same coordinator: the
	// liar is never consulted again, so the next campaign sees zero
	// Byzantine replies and stays exact.
	failpoint.Reset()
	if err := failpoint.Enable("dist.reply.byzantine", failpoint.Config{
		Kind: failpoint.KindCorrupt, Prob: 1, Seed: 12,
	}); err != nil {
		t.Fatal(err)
	}
	serial2 := newSPCampaign(t, m, 600, 71)
	wantRep2 := serial2.Simulate(stream, fault.SimOptions{Workers: 1})
	camp2 := newSPCampaign(t, m, 600, 71)
	res2, err := co.Run(context.Background(), camp2, stream, fault.SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	assertSameReport(t, res2.Report, wantRep2)
	if res2.Stats.ByzantineReplies != 0 {
		t.Fatalf("banned liar still answered: %+v", res2.Stats)
	}
}

// slowTransport delays every simulate reply; it keeps the honest
// workers behind the liar so the liar demonstrably settles unverified
// shards before its first lie is caught.
type slowTransport struct {
	Transport
	delay time.Duration
}

func (s *slowTransport) Simulate(ctx context.Context, req *ShardRequest) (*ShardResult, error) {
	select {
	case <-time.After(s.delay):
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return s.Transport.Simulate(ctx, req)
}

// TestQuarantineRequeuesUnverifiedShards: with partial verification a
// liar can settle some shards unnoticed — until one verified shard outs
// it. Every shard it settled unverified must then be re-executed, so
// the final result is still byte-identical. The liar is fast and starts
// honest (After budget), the honest workers are slow: the liar settles
// its unverified shards first, then lies on a later verification
// execution and is caught.
func TestQuarantineRequeuesUnverifiedShards(t *testing.T) {
	defer failpoint.Reset()
	m := spModule(t)
	stream := randomSPStream(rand.New(rand.NewSource(62)), m.Lanes, 384)

	serial := newSPCampaign(t, m, 700, 73)
	wantRep := serial.Simulate(stream, fault.SimOptions{Workers: 1})

	// Honest for its first 4 replies — long enough to settle its share
	// of the initial dispatch wave — then every reply is a lie.
	if err := failpoint.Enable("dist.reply.byzantine", failpoint.Config{
		Kind: failpoint.KindCorrupt, Prob: 1, After: 4, Seed: 21,
	}); err != nil {
		t.Fatal(err)
	}
	liar := WithFailpoints(NewLocal("liar"), "dist.reply.byzantine")
	opt := fastOptions()
	opt.VerifyFraction = 0.5
	opt.Shards = 9
	co, err := New(opt, liar,
		&slowTransport{Transport: NewLocal("w1"), delay: 30 * time.Millisecond},
		&slowTransport{Transport: NewLocal("w2"), delay: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()

	camp := newSPCampaign(t, m, 700, 73)
	res, err := co.Run(context.Background(), camp, stream, fault.SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded() {
		t.Fatalf("degraded: %v", res.ShardErrors)
	}
	assertSameReport(t, res.Report, wantRep)
	if res.Stats.QuarantinedWorkers != 1 {
		t.Fatalf("liar not quarantined: %+v", res.Stats)
	}
	if res.Stats.RequeuedShards == 0 {
		t.Fatalf("no unverified shard was requeued after the quarantine: %+v", res.Stats)
	}
}

// TestVerificationCleanPath: with honest workers and full verification
// the vote always agrees on the first two replies — no mismatches, no
// quarantines, exact output, and one extra execution per shard.
func TestVerificationCleanPath(t *testing.T) {
	m := spModule(t)
	stream := randomSPStream(rand.New(rand.NewSource(63)), m.Lanes, 256)

	serial := newSPCampaign(t, m, 500, 79)
	wantRep := serial.Simulate(stream, fault.SimOptions{Workers: 1})

	co, err := New(byzOptions(nil), NewLocal("w1"), NewLocal("w2"), NewLocal("w3"))
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()

	camp := newSPCampaign(t, m, 500, 79)
	res, err := co.Run(context.Background(), camp, stream, fault.SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	assertSameReport(t, res.Report, wantRep)
	st := res.Stats
	if st.VerifiedShards != res.Shards {
		t.Fatalf("VerifiedShards = %d, want every one of %d: %+v", st.VerifiedShards, res.Shards, st)
	}
	if st.VerifyMismatches != 0 || st.ByzantineReplies != 0 || st.QuarantinedWorkers != 0 {
		t.Fatalf("honest fleet produced byzantine accounting: %+v", st)
	}
	if st.VerifyDispatches == 0 {
		t.Fatalf("verification dispatched no second executions: %+v", st)
	}
}

// TestChecksumMismatchRejected: a reply whose payload does not match
// its own checksum is accidental corruption — rejected by validation
// and retried, never escalated to a Byzantine vote.
func TestChecksumMismatchRejected(t *testing.T) {
	res := &ShardResult{Shard: 1, Attempt: 2, Detections: []Detection{{Fault: 0, Pattern: 3, CC: 21}}}
	res.Checksum = ChecksumDetections(res.Detections)
	if err := res.VerifyChecksum(); err != nil {
		t.Fatalf("consistent checksum rejected: %v", err)
	}
	res.Checksum = strings.Repeat("0", 64)
	if err := res.VerifyChecksum(); err == nil {
		t.Fatal("inconsistent checksum accepted")
	}
	res.Checksum = ""
	if err := res.VerifyChecksum(); err != nil {
		t.Fatalf("legacy empty checksum rejected: %v", err)
	}
}

// TestDrainingWorkerRedistributes: a worker in drain mode bounces new
// shards with a retryable 503. The transport surfaces ErrUnavailable
// and the coordinator redistributes without charging a failed attempt.
func TestDrainingWorkerRedistributes(t *testing.T) {
	m := spModule(t)
	stream := randomSPStream(rand.New(rand.NewSource(64)), m.Lanes, 256)

	serial := newSPCampaign(t, m, 400, 83)
	wantRep := serial.Simulate(stream, fault.SimOptions{Workers: 1})

	handler := NewHandlerMetrics("draining", nil, nil)
	handler.StartDrain()
	srv := httptest.NewServer(handler)
	defer srv.Close()

	// Transport level: the bounce is ErrUnavailable, not a generic
	// HTTP failure.
	ht := NewHTTP(srv.URL)
	_, err := ht.Simulate(context.Background(), &ShardRequest{})
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("draining worker bounce = %v, want ErrUnavailable", err)
	}
	// And its heartbeat reads unhealthy, so the coordinator will stop
	// picking it.
	if err := ht.Ping(context.Background()); err == nil {
		t.Fatal("draining worker still answers healthz healthy")
	}

	co, err := New(fastOptions(), NewHTTP(srv.URL), NewLocal("steady"))
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	camp := newSPCampaign(t, m, 400, 83)
	res, err := co.Run(context.Background(), camp, stream, fault.SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded() {
		t.Fatalf("degraded: %v", res.ShardErrors)
	}
	assertSameReport(t, res.Report, wantRep)
}

// TestWorkerDrainLifecycle covers the full drain handshake the
// stlworker daemon performs on SIGTERM: accept, StartDrain, reject,
// DrainWait returns once in-flight work is done.
func TestWorkerDrainLifecycle(t *testing.T) {
	handler := NewHandlerMetrics("w", nil, nil)
	srv := httptest.NewServer(handler)
	defer srv.Close()
	ht := NewHTTP(srv.URL)
	defer ht.Close()

	if handler.Draining() {
		t.Fatal("fresh handler reports draining")
	}
	if err := ht.Ping(context.Background()); err != nil {
		t.Fatalf("healthy ping: %v", err)
	}
	handler.StartDrain()
	if !handler.Draining() {
		t.Fatal("StartDrain did not latch")
	}
	done := make(chan struct{})
	go func() { handler.DrainWait(); close(done) }()
	<-done // nothing in flight: DrainWait returns immediately
}
