package dist

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// ErrChaosKilled is returned by a chaos-killed worker's Simulate and
// Ping calls; the coordinator's heartbeat loop turns it into a worker
// death and redistributes the worker's in-flight shards.
var ErrChaosKilled = errors.New("dist: chaos: worker killed")

// ChaosOptions selects the failures a Chaos transport injects. All
// randomness is seeded, so a chaos run is reproducible.
type ChaosOptions struct {
	Seed int64
	// KillAfter kills the worker permanently when its Nth Simulate call
	// arrives (0 = never): that call and every later Simulate or Ping
	// fails with ErrChaosKilled, modeling a crashed worker process.
	KillAfter int
	// DelayProb delays a reply by Delay before the simulation runs,
	// modeling stragglers (and triggering coordinator hedging).
	DelayProb float64
	Delay     time.Duration
	// DropProb computes the shard but discards the reply and returns an
	// error, modeling a response lost on the wire: the work happened,
	// the coordinator must retry, and the retried work must not
	// double-count.
	DropProb float64
	// DupProb answers with a stale copy of a previously computed reply
	// (a duplicated/misdirected response); reply validation must reject
	// it through the shard/attempt echo.
	DupProb float64
	// CorruptProb mangles the reply payload — out-of-range indices,
	// wrong clock cycles, duplicated or reordered detections — which
	// reply validation must reject.
	CorruptProb float64
}

// Chaos wraps a transport with seeded fault injection. It is the chaos
// harness's instrument: every failure mode the coordinator claims to
// survive can be injected deterministically.
type Chaos struct {
	t   Transport
	opt ChaosOptions

	mu    sync.Mutex
	rng   *rand.Rand
	calls int
	dead  bool
	stale *ShardResult
}

// NewChaos decorates t with chaos injection.
func NewChaos(t Transport, opt ChaosOptions) *Chaos {
	return &Chaos{t: t, opt: opt, rng: rand.New(rand.NewSource(opt.Seed))}
}

// Name implements Transport.
func (c *Chaos) Name() string { return c.t.Name() }

// Killed reports whether the chaos kill has fired.
func (c *Chaos) Killed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dead
}

// Simulate implements Transport, rolling the injection dice in a fixed
// order under the lock so a given seed always yields the same fate
// sequence regardless of scheduling.
func (c *Chaos) Simulate(ctx context.Context, req *ShardRequest) (*ShardResult, error) {
	c.mu.Lock()
	c.calls++
	if c.opt.KillAfter > 0 && c.calls >= c.opt.KillAfter {
		c.dead = true
	}
	dead := c.dead
	delay := c.rng.Float64() < c.opt.DelayProb
	drop := c.rng.Float64() < c.opt.DropProb
	dup := c.rng.Float64() < c.opt.DupProb
	corrupt := c.rng.Float64() < c.opt.CorruptProb
	variant := c.rng.Intn(4)
	stale := c.stale
	c.mu.Unlock()

	if dead {
		return nil, ErrChaosKilled
	}
	if delay && c.opt.Delay > 0 {
		select {
		case <-time.After(c.opt.Delay):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	if dup && stale != nil {
		return cloneResult(stale), nil
	}
	res, err := c.t.Simulate(ctx, req)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.stale = cloneResult(res)
	c.mu.Unlock()
	if drop {
		return nil, fmt.Errorf("dist: chaos: reply for shard %d dropped", req.Shard)
	}
	if corrupt {
		return corruptResult(cloneResult(res), variant), nil
	}
	return res, nil
}

// Ping implements Transport; a killed worker stops answering heartbeats.
func (c *Chaos) Ping(ctx context.Context) error {
	c.mu.Lock()
	dead := c.dead
	c.mu.Unlock()
	if dead {
		return ErrChaosKilled
	}
	return c.t.Ping(ctx)
}

// Close implements Transport.
func (c *Chaos) Close() error { return c.t.Close() }

func cloneResult(r *ShardResult) *ShardResult {
	cp := *r
	cp.Detections = append([]Detection(nil), r.Detections...)
	return &cp
}

// corruptResult mangles a reply in one of the ways reply validation must
// catch. With no detections to mangle, it appends a bogus one.
func corruptResult(r *ShardResult, variant int) *ShardResult {
	if len(r.Detections) == 0 {
		r.Detections = append(r.Detections, Detection{Fault: 1 << 20, Pattern: 0, CC: 0})
		return r
	}
	switch variant {
	case 0: // out-of-range fault index
		r.Detections[0].Fault = 1 << 20
	case 1: // clock cycle no longer matching the stream
		r.Detections[len(r.Detections)/2].CC++
	case 2: // duplicated detection
		r.Detections = append(r.Detections, r.Detections[0])
	default: // order violation (also a duplicate when only one entry)
		r.Detections = append(r.Detections, r.Detections[len(r.Detections)-1])
	}
	return r
}
