package dist

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"gpustl/internal/fault"
)

// chaosOptions: aggressive timing so chaos recovery paths run in
// milliseconds, generous attempt budget so seeded wire chaos cannot
// exhaust a shard.
func chaosOptions() Options {
	return Options{
		MaxAttempts:       8,
		BaseBackoff:       2 * time.Millisecond,
		MaxBackoff:        25 * time.Millisecond,
		ShardBaseTimeout:  30 * time.Second,
		HeartbeatInterval: 15 * time.Millisecond,
		HeartbeatMisses:   2,
		Shards:            8,
		Seed:              7,
	}
}

// TestChaosMergeByteIdentical is the acceptance chaos run: a worker that
// crashes mid-campaign, a straggler, a worker with a lossy/corrupting
// wire, and one steady worker. Whatever the scheduling, the merged
// detected-fault set must be byte-identical to a serial Simulate.
func TestChaosMergeByteIdentical(t *testing.T) {
	m := spModule(t)
	stream := randomSPStream(rand.New(rand.NewSource(51)), m.Lanes, 768)

	serial := newSPCampaign(t, m, 1000, 41)
	wantRep := serial.Simulate(stream, fault.SimOptions{Workers: 1})

	kill := NewChaos(NewLocal("chaos-kill"), ChaosOptions{Seed: 101, KillAfter: 3})
	straggle := NewChaos(NewLocal("chaos-delay"), ChaosOptions{
		Seed: 102, DelayProb: 0.5, Delay: 40 * time.Millisecond,
	})
	wire := NewChaos(NewLocal("chaos-wire"), ChaosOptions{
		Seed: 103, DropProb: 0.35, DupProb: 0.25, CorruptProb: 0.3,
	})
	co, err := New(chaosOptions(), kill, straggle, wire, NewLocal("steady"))
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()

	camp := newSPCampaign(t, m, 1000, 41)
	res, err := co.Run(context.Background(), camp, stream, fault.SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded() {
		t.Fatalf("chaos run degraded with a steady worker present: %+v", res.ShardErrors)
	}
	assertSameReport(t, res.Report, wantRep)
	if !reflect.DeepEqual(camp.DetectedIDs(), serial.DetectedIDs()) {
		t.Fatal("chaos run: detected-ID set differs from serial")
	}
	if !kill.Killed() {
		t.Fatal("chaos kill never fired; test exercised nothing")
	}
	if res.Stats.WorkerDeaths == 0 {
		t.Fatalf("killed worker was never declared dead: %+v", res.Stats)
	}
	if res.Stats.Retries == 0 {
		t.Fatalf("lossy wire never caused a retry: %+v", res.Stats)
	}
	t.Logf("chaos stats: %+v", res.Stats)
}

// failShards makes a transport permanently fail chosen shards — the
// knob for forcing graceful degradation.
type failShards struct {
	Transport
	bad map[int]bool
}

func (f *failShards) Simulate(ctx context.Context, req *ShardRequest) (*ShardResult, error) {
	if f.bad[req.Shard] {
		return nil, errors.New("injected permanent shard failure")
	}
	return f.Transport.Simulate(ctx, req)
}

// TestDegradedBounds: when one shard fails on every worker for
// MaxAttempts attempts, the campaign must complete without error and
// report FC as an interval exactly as wide as the unknown faults.
func TestDegradedBounds(t *testing.T) {
	m := spModule(t)
	stream := randomSPStream(rand.New(rand.NewSource(52)), m.Lanes, 512)

	opt := fastOptions()
	opt.Shards = 4
	opt.HedgeFraction = -1
	co, err := New(opt,
		&failShards{Transport: NewLocal("w1"), bad: map[int]bool{0: true}},
		&failShards{Transport: NewLocal("w2"), bad: map[int]bool{0: true}},
	)
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()

	camp := newSPCampaign(t, m, 800, 43)
	total := camp.Total()
	res, err := co.Run(context.Background(), camp, stream, fault.SimOptions{})
	if err != nil {
		t.Fatalf("degraded run must complete, got error: %v", err)
	}
	if !res.Degraded() || res.FailedShards != 1 {
		t.Fatalf("want exactly one failed shard, got %+v", res)
	}
	if res.FailedFaults == 0 {
		t.Fatal("failed shard reported zero faults")
	}
	wantWidth := 100 * float64(res.FailedFaults) / float64(total)
	if width := res.FCUpper - res.FCLower; !closeTo(width, wantWidth) {
		t.Fatalf("FC interval width = %v, want %v", width, wantWidth)
	}
	if got, want := res.FCLower, camp.Coverage(); !closeTo(got, want) {
		t.Fatalf("FCLower = %v, want committed coverage %v", got, want)
	}
	if len(res.ShardErrors) != 1 || !strings.Contains(res.ShardErrors[0], "injected") {
		t.Fatalf("shard errors not propagated: %q", res.ShardErrors)
	}
	// The successful shards' detections must still be committed.
	if camp.Detected() != res.DetectedThisRun {
		t.Fatalf("committed %d detections, result says %d", camp.Detected(), res.DetectedThisRun)
	}

	// The compactor-facing adapter must refuse partial data instead:
	// compaction decisions on an incomplete fault list would be unsound.
	camp2 := newSPCampaign(t, m, 800, 43)
	if _, err := co.SimulateCampaign(context.Background(), camp2, stream, fault.SimOptions{}); err == nil {
		t.Fatal("SimulateCampaign must surface degradation as an error")
	} else if !strings.Contains(err.Error(), "FC bounds") {
		t.Fatalf("degradation error should name the FC bounds, got: %v", err)
	}
}

// TestChaosInjectionsRejectedByValidation pins down, deterministically,
// that each wire-chaos injection is caught by the layer meant to catch
// it: corrupted payloads and stale duplicated replies fail Validate,
// dropped replies surface as transport errors.
func TestChaosInjectionsRejectedByValidation(t *testing.T) {
	m := spModule(t)
	stream := randomSPStream(rand.New(rand.NewSource(56)), m.Lanes, 128)
	camp := newSPCampaign(t, m, 300, 61)
	req := &ShardRequest{
		Shard: 0, Attempt: 0,
		Module: m.Kind, Lanes: m.Lanes,
		Faults: camp.Faults(), Stream: stream,
	}

	corrupting := NewChaos(NewLocal("w"), ChaosOptions{Seed: 1, CorruptProb: 1})
	for i := 0; i < 6; i++ { // several rounds to hit multiple corruption variants
		res, err := corrupting.Simulate(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		if res.Validate(req) == nil {
			t.Fatalf("round %d: corrupted reply passed validation", i)
		}
	}

	duping := NewChaos(NewLocal("w"), ChaosOptions{Seed: 2, DupProb: 1})
	first, err := duping.Simulate(context.Background(), req) // primes the stale copy
	if err != nil {
		t.Fatal(err)
	}
	if err := first.Validate(req); err != nil {
		t.Fatalf("first (real) reply rejected: %v", err)
	}
	retry := *req
	retry.Attempt = 1
	stale, err := duping.Simulate(context.Background(), &retry)
	if err != nil {
		t.Fatal(err)
	}
	if stale.Validate(&retry) == nil {
		t.Fatal("stale duplicated reply passed validation despite wrong attempt echo")
	}

	dropping := NewChaos(NewLocal("w"), ChaosOptions{Seed: 3, DropProb: 1})
	if _, err := dropping.Simulate(context.Background(), req); err == nil {
		t.Fatal("dropped reply did not error")
	}
}

func closeTo(a, b float64) bool {
	d := a - b
	return d < 1e-9 && d > -1e-9
}

// hangTransport hangs every Simulate until canceled and fails pings once
// dead — the deterministic stand-in for a machine that stops responding
// mid-shard.
type hangTransport struct {
	name string
	dead atomic.Bool
}

func (h *hangTransport) Name() string { return h.name }
func (h *hangTransport) Simulate(ctx context.Context, req *ShardRequest) (*ShardResult, error) {
	<-ctx.Done()
	return nil, context.Cause(ctx)
}
func (h *hangTransport) Ping(ctx context.Context) error {
	if h.dead.Load() {
		return errors.New("dead")
	}
	return ctx.Err()
}
func (h *hangTransport) Close() error { return nil }

// TestWorkerDeathRedistributes: a worker goes silent while holding an
// in-flight shard; the heartbeat must declare it dead and the shard must
// complete on the survivor.
func TestWorkerDeathRedistributes(t *testing.T) {
	m := spModule(t)
	stream := randomSPStream(rand.New(rand.NewSource(53)), m.Lanes, 512)

	serial := newSPCampaign(t, m, 800, 47)
	wantRep := serial.Simulate(stream, fault.SimOptions{Workers: 1})

	hang := &hangTransport{name: "silent"}
	hang.dead.Store(true) // pings fail from the start; Simulate just hangs
	opt := fastOptions()
	opt.Shards = 2
	opt.HedgeFraction = -1 // isolate the worker-death path from hedging
	co, err := New(opt, hang, NewLocal("survivor"))
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()

	camp := newSPCampaign(t, m, 800, 47)
	res, err := co.Run(context.Background(), camp, stream, fault.SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded() {
		t.Fatalf("survivor should have absorbed the dead worker's shards: %+v", res.ShardErrors)
	}
	assertSameReport(t, res.Report, wantRep)
	if res.Stats.WorkerDeaths != 1 {
		t.Fatalf("WorkerDeaths = %d, want 1", res.Stats.WorkerDeaths)
	}
	if res.Stats.Redispatches == 0 {
		t.Fatalf("dead worker's in-flight shard was never redistributed: %+v", res.Stats)
	}
}

// TestHedgedStraggler: with one very slow and one fast worker, the hedge
// timer must duplicate the straggling dispatch and the fast reply must
// win.
func TestHedgedStraggler(t *testing.T) {
	m := spModule(t)
	stream := randomSPStream(rand.New(rand.NewSource(54)), m.Lanes, 256)

	serial := newSPCampaign(t, m, 500, 53)
	wantRep := serial.Simulate(stream, fault.SimOptions{Workers: 1})

	slow := NewChaos(NewLocal("slow"), ChaosOptions{
		Seed: 201, DelayProb: 1.0, Delay: 10 * time.Second,
	})
	opt := fastOptions()
	opt.Shards = 1 // a single shard must land on the slow worker first
	opt.ShardBaseTimeout = 20 * time.Second
	opt.ShardPatternTimeout = time.Microsecond
	opt.HedgeFraction = 0.002 // hedge after ~40ms
	co, err := New(opt, slow, NewLocal("fast"))
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()

	camp := newSPCampaign(t, m, 500, 53)
	start := time.Now()
	res, err := co.Run(context.Background(), camp, stream, fault.SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Hedges == 0 {
		t.Fatalf("straggler was never hedged: %+v", res.Stats)
	}
	assertSameReport(t, res.Report, wantRep)
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("hedging did not rescue the straggler: run took %v", elapsed)
	}
}

// TestAllWorkersDead: when every worker is gone the coordinator must
// degrade promptly — all shards failed, full-width FC bounds — instead
// of hanging until test timeout.
func TestAllWorkersDead(t *testing.T) {
	m := spModule(t)
	stream := randomSPStream(rand.New(rand.NewSource(55)), m.Lanes, 256)

	hang := &hangTransport{name: "gone"}
	hang.dead.Store(true)
	opt := fastOptions()
	opt.Shards = 3
	opt.HedgeFraction = -1
	co, err := New(opt, hang)
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()

	camp := newSPCampaign(t, m, 400, 59)
	done := make(chan struct{})
	var res *Result
	go func() {
		defer close(done)
		res, err = co.Run(context.Background(), camp, stream, fault.SimOptions{})
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("coordinator hung with all workers dead")
	}
	if err != nil {
		t.Fatalf("all-dead run must degrade, not error: %v", err)
	}
	if res.FailedShards != res.Shards || !res.Degraded() {
		t.Fatalf("want every shard failed, got %+v", res)
	}
	if res.FCLower != 0 || res.FCUpper != 100 {
		t.Fatalf("FC bounds = [%v, %v], want [0, 100]", res.FCLower, res.FCUpper)
	}
	if camp.Detected() != 0 {
		t.Fatal("no shard succeeded but detections were committed")
	}
}
