package dist

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"gpustl/internal/circuits"
	"gpustl/internal/fault"
	"gpustl/internal/obs"
	"gpustl/internal/overload"
)

// Options tunes the coordinator's robustness machinery. The zero value
// selects sensible defaults (noted per field).
type Options struct {
	// MaxAttempts is how many failed simulation attempts a shard may
	// accumulate before it is declared permanently failed and the
	// campaign degrades to FC bounds (default 4). Coordinator-initiated
	// cancellations — hedge losers, dead-worker redistributions — do not
	// count against it.
	MaxAttempts int
	// BaseBackoff is the delay before the first retry (default 25ms);
	// it doubles per failure, capped at MaxBackoff (default 2s), with
	// ±50% deterministic jitter from Seed.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Per-shard deadline = ShardBaseTimeout + n_patterns ×
	// ShardPatternTimeout (defaults 10s + 2ms/pattern): a dispatch that
	// exceeds it is canceled and counts as a failed attempt.
	ShardBaseTimeout    time.Duration
	ShardPatternTimeout time.Duration
	// HedgeFraction × deadline is how long a lone dispatch may run
	// before a hedged duplicate is sent to a different worker; first
	// reply wins, the loser is canceled. Default 0.25; negative
	// disables hedging.
	HedgeFraction float64
	// Heartbeats: every HeartbeatInterval (default 250ms) each worker is
	// pinged; HeartbeatMisses consecutive failures (default 3) declare
	// it dead, canceling and redistributing its in-flight shards. A dead
	// worker that answers again is revived.
	HeartbeatInterval time.Duration
	HeartbeatMisses   int
	// Shards is the target shard count (default 2 × workers): more
	// shards than workers keeps everyone busy and bounds the work lost
	// to any single failure.
	Shards int
	// VerifyFraction selects what fraction of shards is re-executed on a
	// second worker and settled by checksum vote (Byzantine tolerance):
	// 0 trusts every reply (default), 1 verifies everything. Selection
	// is a deterministic hash of (Seed, shard), so the same run verifies
	// the same shards. Verified shards cost one extra execution; a
	// checksum mismatch escalates to a third worker and majority vote,
	// and outvoted workers accumulate strikes toward quarantine.
	VerifyFraction float64
	// QuarantineAfter is how many outvoted (Byzantine) replies a worker
	// may produce before it is quarantined: banned for the rest of this
	// run AND every later Run on the same Coordinator, its in-flight
	// shards redistributed, and every shard it settled *unverified*
	// requeued (default 1 — a single proven lie is disqualifying,
	// mirroring the poison-PTP quarantine).
	QuarantineAfter int
	// RetryBudget bounds genuine-failure retries to this fraction of
	// dispatches, with RetryBurst tokens banked for cold-start bursts
	// (token bucket; defaults 0.1 and 64). The bucket is shared across
	// every Run on the coordinator, so a sick fleet cannot be melted by
	// a sustained retry storm no matter how many campaigns are offered:
	// once the budget is spent, a shard that would retry fails fast and
	// the campaign degrades to FC bounds instead. A negative RetryBudget
	// disables budgeting (unbounded retries up to MaxAttempts, the
	// pre-overload behavior). Coordinator-initiated redispatches —
	// hedges, drain/busy bounces, dead-worker redistributions — never
	// consume budget; only failure-driven retries do.
	RetryBudget float64
	RetryBurst  int
	// BreakerThreshold consecutive genuine failures trip a worker's
	// circuit breaker open for BreakerOpenFor (with seeded jitter), after
	// which a single half-open probe decides recovery (defaults 5, 2s).
	// Breaker state persists across Runs on the same coordinator, like
	// the Byzantine ban list; unlike it, an open breaker heals. A
	// negative BreakerThreshold disables breakers.
	BreakerThreshold int
	BreakerOpenFor   time.Duration
	// Admission, if non-nil, gates each Run behind the given admission
	// pool: the run's estimated simulation weight (remaining faults ×
	// stream patterns) must be admitted before any shard is dispatched,
	// and ErrOverloaded is returned — fast, with nothing dispatched —
	// when the pool sheds it. Share one pool across coordinators to
	// bound a whole process's in-flight simulation bytes. Do not gate a
	// Run with a pool its caller already holds a slot on (self-deadlock
	// at capacity).
	Admission *overload.Admission
	// Seed drives backoff jitter (results never depend on it).
	Seed int64
	// Logf receives coordinator progress lines (nil = silent).
	Logf func(format string, args ...any)
	// Metrics receives the coordinator's telemetry: per-worker liveness
	// gauges, shard latency histograms, and counters mirroring Stats.
	// nil disables metric recording.
	Metrics *obs.Registry
	// Tracer, when set, records one client-side shard span per dispatch
	// (parented on whatever span the caller's context carries — the
	// runner's PTP span) and propagates its context to HTTP workers via
	// the X-Gpustl-Trace header, so remote shard executions land in the
	// submitting campaign's trace.
	Tracer *obs.Tracer
}

func (o Options) withDefaults(numWorkers int) Options {
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 4
	}
	if o.BaseBackoff <= 0 {
		o.BaseBackoff = 25 * time.Millisecond
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = 2 * time.Second
	}
	if o.ShardBaseTimeout <= 0 {
		o.ShardBaseTimeout = 10 * time.Second
	}
	if o.ShardPatternTimeout <= 0 {
		o.ShardPatternTimeout = 2 * time.Millisecond
	}
	if o.HedgeFraction == 0 {
		o.HedgeFraction = 0.25
	}
	if o.HeartbeatInterval <= 0 {
		o.HeartbeatInterval = 250 * time.Millisecond
	}
	if o.HeartbeatMisses <= 0 {
		o.HeartbeatMisses = 3
	}
	if o.Shards <= 0 {
		o.Shards = 2 * numWorkers
	}
	if o.VerifyFraction < 0 {
		o.VerifyFraction = 0
	}
	if o.VerifyFraction > 1 {
		o.VerifyFraction = 1
	}
	if o.QuarantineAfter <= 0 {
		o.QuarantineAfter = 1
	}
	if o.RetryBudget == 0 {
		o.RetryBudget = 0.1
	}
	if o.RetryBurst <= 0 {
		o.RetryBurst = 64
	}
	if o.BreakerThreshold == 0 {
		o.BreakerThreshold = 5
	}
	if o.BreakerOpenFor <= 0 {
		o.BreakerOpenFor = 2 * time.Second
	}
	return o
}

// Stats counts what the robustness machinery actually did during a run.
// Coordinator-initiated cancellations are attributed separately from
// genuine failures: a hedge loser or a dead-worker preemption must never
// read as a worker error, or retry accounting (and any alerting built on
// it) is inflated by the coordinator's own scheduling decisions.
type Stats struct {
	Shards, Dispatches int
	Retries, Hedges    int
	Redispatches       int // dead-worker shard redistributions
	DuplicateReplies   int // successful replies for shards already settled
	InvalidReplies     int // replies rejected by validation (corruption)
	WorkerDeaths       int
	WorkerRevivals     int
	HedgeWins          int // hedged duplicate settled the shard first
	HedgeLosses        int // attempts canceled because the sibling won
	Preempted          int // attempts canceled by a dead-worker declaration

	// Byzantine verification accounting.
	VerifiedShards     int // shards settled by a checksum majority
	VerifyDispatches   int // extra executions dispatched for verification
	VerifyMismatches   int // checksum votes where replies disagreed
	VerifySkipped      int // verify shards settled unverified (no second worker)
	ByzantineReplies   int // valid-looking replies outvoted by the majority
	QuarantinedWorkers int // workers banned for Byzantine replies this run
	RequeuedShards     int // settled shards re-run after their worker was quarantined
	UnavailableReplies int // dispatches bounced by a draining worker (redistributed)

	// Overload accounting.
	BusyReplies  int // dispatches bounced by a saturated worker (429; rerouted, no charge)
	RetryDenied  int // retries refused by the retry budget (shard failed fast)
	BreakerOpens int // circuit-breaker trips during this run
}

// Result is the outcome of one distributed campaign run.
type Result struct {
	// Report is the merged Fault Sim Report, bit-identical to a serial
	// Campaign.Simulate when every shard succeeded. With failed shards
	// it covers the successful shards only.
	Report          *fault.Report
	DetectedThisRun int
	Shards          int
	// Degraded mode: faults of permanently failed shards have UNKNOWN
	// status — the campaign completes, reporting cumulative
	// fault-coverage bounds instead of aborting. FCLower counts them
	// undetected, FCUpper counts them all detected; the true coverage
	// lies in between. FCLower == FCUpper iff nothing failed.
	FailedShards int
	FailedFaults int
	FCLower      float64
	FCUpper      float64
	ShardErrors  []string
	Stats        Stats
	// SimStats aggregates the engine counters of every accepted shard
	// reply: dedup dictionary hit rate, activation pre-screen and
	// unchanged-cone skips. Failed shards contribute nothing.
	SimStats fault.SimStats
}

// Degraded reports whether any shard permanently failed, making the
// FC bounds an interval rather than a point.
func (r *Result) Degraded() bool { return r.FailedShards > 0 }

// Coordinator shards fault campaigns across a fixed set of workers.
// It is safe for sequential reuse across many Run calls (one per PTP
// and FC evaluation); each run spins up its own heartbeats and state.
// The Byzantine blacklist is the exception: a worker quarantined in one
// run stays banned for every later run on the same coordinator — a
// proven liar does not get a second chance just because the next PTP
// started.
type Coordinator struct {
	opt        Options
	autoShards bool // Shards was defaulted, not requested: sizing may shrink it
	transports []Transport
	budget     *overload.RetryBudget
	breakers   map[string]*overload.Breaker

	mu     sync.Mutex
	banned map[string]bool
}

// New creates a coordinator over the given worker transports.
func New(opt Options, transports ...Transport) (*Coordinator, error) {
	if len(transports) == 0 {
		return nil, errors.New("dist: coordinator needs at least one worker transport")
	}
	autoShards := opt.Shards <= 0
	opt = opt.withDefaults(len(transports))
	c := &Coordinator{
		opt:        opt,
		autoShards: autoShards,
		transports: transports,
		budget:     overload.NewRetryBudget(opt.RetryBudget, opt.RetryBurst, opt.Metrics),
		breakers:   map[string]*overload.Breaker{},
	}
	if opt.BreakerThreshold > 0 {
		for _, t := range transports {
			// Seed each worker's jitter from the coordinator seed and the
			// worker name, so a restarted coordinator reproduces the same
			// probe schedule and no two workers probe in lockstep.
			h := fnv.New64a()
			fmt.Fprintf(h, "%d:%s", opt.Seed, t.Name())
			c.breakers[t.Name()] = overload.NewBreaker(overload.BreakerOptions{
				FailureThreshold: opt.BreakerThreshold,
				OpenFor:          opt.BreakerOpenFor,
				Seed:             int64(h.Sum64()),
			})
		}
	}
	c.banned = map[string]bool{}
	return c, nil
}

// Banned returns the names of workers quarantined for Byzantine
// replies, sorted.
func (c *Coordinator) Banned() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	names := make([]string, 0, len(c.banned))
	for n := range c.banned {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func (c *Coordinator) ban(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.banned[name] = true
}

func (c *Coordinator) isBanned(name string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.banned[name]
}

// Close closes every transport.
func (c *Coordinator) Close() error {
	var first error
	for _, t := range c.transports {
		if err := t.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.opt.Logf != nil {
		c.opt.Logf(format, args...)
	}
}

// errLostRace and errWorkerDown are cancellation causes the coordinator
// attaches to dispatch contexts, so the result handler can tell a
// genuine failure (counts toward MaxAttempts) from its own preemptions
// (immediate redistribution, no penalty).
var (
	errLostRace    = errors.New("dist: hedged race lost")
	errWorkerDown  = errors.New("dist: worker declared dead")
	errQuarantined = errors.New("dist: worker quarantined for byzantine replies")
)

// Run distributes the campaign's remaining faults across the workers
// and merges the result, committing detections of successful shards to
// the campaign (unless opt.NoDrop). It returns an error only for a
// canceled context or an unusable campaign; permanently failed shards
// degrade the Result to explicit FC bounds instead.
// opt.RecordActivations cannot be sharded and falls back to the
// in-process simulator.
func (c *Coordinator) Run(ctx context.Context, camp *fault.Campaign, stream []fault.TimedPattern, opt fault.SimOptions) (*Result, error) {
	if err := camp.Err(); err != nil {
		return nil, fmt.Errorf("dist: campaign unusable: %w", err)
	}
	if err := ctx.Err(); err != nil {
		// Surface the cause (admission shed, campaign deadline, stage
		// watchdog) rather than the bare Canceled sentinel.
		return nil, context.Cause(ctx)
	}
	usable := 0
	for _, t := range c.transports {
		if !c.isBanned(t.Name()) {
			usable++
		}
	}
	if usable == 0 {
		return nil, fmt.Errorf("dist: every worker is quarantined for byzantine replies (%s)",
			strings.Join(c.Banned(), ", "))
	}
	if opt.RecordActivations {
		rep, err := camp.SimulateCtx(ctx, stream, opt)
		if err != nil {
			return nil, err
		}
		cov := camp.Coverage()
		return &Result{
			Report: rep, DetectedThisRun: rep.DetectedThisRun(),
			FCLower: cov, FCUpper: cov,
		}, nil
	}

	ordered := stream
	if opt.Reverse {
		ordered = make([]fault.TimedPattern, len(stream))
		for i, p := range stream {
			ordered[len(stream)-1-i] = p
		}
	}

	// Wide blocks amortize each 64×W-pattern sweep over a shard's whole
	// fault list, so shards below a few hundred faults waste most of the
	// width. Cap the shard count to keep at least 256×W faults per shard
	// at the width the stream auto-selects.
	shards := c.opt.Shards
	if minFaults := 256 * fault.AutoBlockWords(len(ordered)); c.autoShards && minFaults > 0 {
		if rem := camp.Total() - camp.Detected(); rem/minFaults < shards {
			shards = rem / minFaults
			if shards < 1 {
				shards = 1
			}
		}
	}
	parts := camp.PartitionRemaining(shards)
	if len(parts) == 0 {
		cov := camp.Coverage()
		return &Result{Report: BuildReport(ordered, nil), FCLower: cov, FCUpper: cov}, nil
	}

	// Admission gate: the run's weight is remaining faults × stream
	// patterns, the same proportional simulation-bytes estimate
	// overload.CampaignCost uses. A shed returns ErrOverloaded with
	// nothing dispatched. Nil Admission admits instantly.
	nf := 0
	for _, p := range parts {
		nf += len(p)
	}
	npat := len(ordered)
	if npat == 0 {
		npat = 1
	}
	release, aerr := c.opt.Admission.Acquire(ctx, int64(nf)*int64(npat))
	if aerr != nil {
		return nil, fmt.Errorf("dist: campaign run shed by admission control: %w", aerr)
	}
	defer release()

	rl := newRunLoop(c, ctx, camp, ordered, parts)
	defer rl.shutdown()
	if err := rl.run(); err != nil {
		return nil, err
	}
	return rl.finish(camp, ordered, opt)
}

// SimulateCampaign adapts the coordinator to the compactor's
// FaultSimulator contract (core.Options.Simulator). Compaction decisions
// must not act on partial detection data — an unessential label derived
// from a missing shard would remove instructions that do detect faults —
// so a degraded run comes back as an error here; the resilient runner
// then reverts that one PTP while the rest of the STL continues.
func (c *Coordinator) SimulateCampaign(ctx context.Context, camp *fault.Campaign, stream []fault.TimedPattern, opt fault.SimOptions) (*fault.Report, error) {
	res, err := c.Run(ctx, camp, stream, opt)
	if err != nil {
		return nil, err
	}
	if res.Degraded() {
		return nil, fmt.Errorf("dist: degraded campaign: %d of %d shards failed permanently, %d faults unknown (FC bounds %.2f%%..%.2f%%): %s",
			res.FailedShards, res.Shards, res.FailedFaults, res.FCLower, res.FCUpper,
			strings.Join(res.ShardErrors, "; "))
	}
	return res.Report, nil
}

// BuildReport assembles the Fault Sim Report from merged per-fault
// detections over the ordered stream. Given the union of any
// shard-partitioned simulation's detections, the result is
// bit-identical to the report of one serial Campaign.Simulate run —
// first detections are per-fault, so the partition does not matter.
func BuildReport(ordered []fault.TimedPattern, dets []fault.Detection) *fault.Report {
	rep := &fault.Report{
		NumPatterns:        len(ordered),
		DetectedPerPattern: make([]int32, len(ordered)),
		CCs:                make([]uint64, len(ordered)),
		Lanes:              make([]int16, len(ordered)),
		PCs:                make([]int32, len(ordered)),
		Warps:              make([]int16, len(ordered)),
	}
	for i, p := range ordered {
		rep.CCs[i] = p.CC
		rep.Lanes[i] = p.Lane
		rep.PCs[i] = p.PC
		rep.Warps[i] = p.Warp
	}
	if len(dets) > 0 {
		rep.Detections = append(rep.Detections, dets...)
	}
	sort.Slice(rep.Detections, func(i, j int) bool {
		if rep.Detections[i].Pattern != rep.Detections[j].Pattern {
			return rep.Detections[i].Pattern < rep.Detections[j].Pattern
		}
		return rep.Detections[i].Fault < rep.Detections[j].Fault
	})
	for _, d := range rep.Detections {
		rep.DetectedPerPattern[d.Pattern]++
	}
	return rep
}

// ---------------------------------------------------------------------------
// The run loop: one goroutine owns all scheduling state; dispatches,
// timers and heartbeats communicate with it exclusively through events.

type eventKind int

const (
	evResult eventKind = iota
	evRetry
	evHedge
	evWorkerDown
	evWorkerUp
	evStrand
)

type event struct {
	kind    eventKind
	d       *dispatch // evResult
	res     *ShardResult
	err     error
	s       *shardState // evRetry / evHedge
	attempt int         // evHedge: attempt the timer was armed for
	w       *worker     // evWorkerDown / evWorkerUp
}

type worker struct {
	t        Transport
	alive    bool
	inflight int
	// strikes counts this run's outvoted replies; quarantined marks the
	// worker banned (never picked, never revived by heartbeats).
	strikes     int
	quarantined bool
	// breaker is the worker's circuit breaker, shared across Runs on the
	// coordinator (nil when disabled — nil-safe, permanently closed).
	breaker *overload.Breaker
}

type dispatch struct {
	shard   int
	attempt int
	w       *worker
	req     *ShardRequest
	ctx     context.Context
	cancel  context.CancelCauseFunc
	hedged  bool // dispatched as a duplicate while a sibling was in flight
	started time.Time
	span    *obs.Span // client-side shard span (nil when untraced)
}

// shardState walks pending → dispatched (1–2 in-flight attempts) →
// done | failed. Attempt numbers (seq) are unique per dispatch so reply
// echoes distinguish every try; failures counts only genuine failures.
type shardState struct {
	id     int
	ids    []fault.ID
	faults []fault.Fault

	seq      int
	failures int
	inflight map[int]*dispatch
	tried    map[string]bool
	parked   bool

	done   bool
	failed bool
	dets   []Detection
	stats  fault.SimStats
	errs   []string

	// Byzantine verification state. verify marks the shard as selected
	// for re-execution on a second worker; replies accumulates the valid
	// replies cast as checksum votes, replied the workers that cast
	// them (never asked twice); by is the worker whose reply settled the
	// shard, verified whether a checksum majority backed it.
	verify   bool
	verified bool
	by       string
	replies  []vote
	replied  map[string]bool
}

// vote is one valid reply held for a checksum vote on a verify shard.
type vote struct {
	w   *worker
	d   *dispatch
	res *ShardResult
	sum string
}

type runLoop struct {
	co      *Coordinator
	opt     Options
	ctx     context.Context // parent (caller cancellation)
	loopCtx context.Context
	cancel  context.CancelFunc
	rng     *rand.Rand

	events chan event
	wg     sync.WaitGroup
	timers []*time.Timer

	workers     []*worker
	shards      []*shardState
	ordered     []fault.TimedPattern
	modKind     circuits.ModuleKind
	modLanes    int
	deadline    time.Duration
	pending     []*shardState
	remaining   int
	strandArmed bool
	stats       Stats
	opensStart  uint64 // breaker trips before this run, for Stats delta
}

func newRunLoop(c *Coordinator, ctx context.Context, camp *fault.Campaign, ordered []fault.TimedPattern, parts [][]fault.ID) *runLoop {
	loopCtx, cancel := context.WithCancel(ctx)
	rl := &runLoop{
		co:      c,
		opt:     c.opt,
		ctx:     ctx,
		loopCtx: loopCtx,
		cancel:  cancel,
		rng:     rand.New(rand.NewSource(c.opt.Seed)),
		events:  make(chan event, 16),
		ordered: ordered,
		deadline: c.opt.ShardBaseTimeout +
			time.Duration(len(ordered))*c.opt.ShardPatternTimeout,
	}
	for _, t := range c.transports {
		w := &worker{t: t, alive: true, breaker: c.breakers[t.Name()]}
		rl.opensStart += w.breaker.Opens()
		if c.isBanned(t.Name()) {
			// Quarantined in an earlier run on this coordinator: present
			// but never picked, never pinged, never revived.
			w.alive, w.quarantined = false, true
		}
		rl.workers = append(rl.workers, w)
		if w.alive {
			rl.workerUpGauge(w, 1)
		} else {
			rl.workerUpGauge(w, 0)
		}
	}
	all := camp.Faults()
	for i, ids := range parts {
		fs := make([]fault.Fault, len(ids))
		for j, id := range ids {
			fs[j] = all[id]
		}
		rl.shards = append(rl.shards, &shardState{
			id: i, ids: ids, faults: fs,
			inflight: map[int]*dispatch{},
			tried:    map[string]bool{},
			verify:   rl.verifySelected(i),
			replied:  map[string]bool{},
		})
	}
	rl.remaining = len(rl.shards)
	rl.stats.Shards = len(rl.shards)
	rl.modKind, rl.modLanes = camp.Module.Kind, camp.Module.Lanes
	return rl
}

// run drives the event loop to completion (every shard done or failed)
// or parent-context cancellation.
// verifySelected decides whether shard id is re-executed for
// verification: a deterministic hash of (Seed, shard) against
// VerifyFraction, so the same seed verifies the same shards regardless
// of scheduling order.
func (rl *runLoop) verifySelected(id int) bool {
	f := rl.opt.VerifyFraction
	if f <= 0 || len(rl.workers) < 2 {
		return false
	}
	if f >= 1 {
		return true
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%d:%d", rl.opt.Seed, id)
	// FNV of a short string leaves the high bits poorly mixed (adjacent
	// shard ids would all select identically); run the sum through a
	// 64-bit avalanche finalizer before thresholding.
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return float64(x)/float64(math.MaxUint64) < f
}

func (rl *runLoop) run() error {
	for _, w := range rl.workers {
		if w.quarantined {
			continue
		}
		rl.wg.Add(1)
		go rl.heartbeat(w)
	}
	for _, s := range rl.shards {
		rl.dispatchOrPark(s)
	}
	rl.checkStranded()
	for rl.remaining > 0 {
		select {
		case <-rl.ctx.Done():
			return fmt.Errorf("dist: campaign canceled with %d of %d shards unfinished: %w",
				rl.remaining, len(rl.shards), context.Cause(rl.ctx))
		case ev := <-rl.events:
			rl.handle(ev)
			rl.checkStranded()
		}
	}
	return nil
}

// shutdown cancels everything still moving and waits for all goroutines,
// so a finished Run leaks nothing into the next one.
func (rl *runLoop) shutdown() {
	rl.cancel()
	for _, t := range rl.timers {
		t.Stop()
	}
	// Drain events so in-flight senders blocked on the channel can exit
	// (send also selects on loopCtx, so this is belt and braces).
	go func() {
		for range rl.events {
		}
	}()
	rl.wg.Wait()
	close(rl.events)
}

func (rl *runLoop) send(ev event) {
	select {
	case rl.events <- ev:
	case <-rl.loopCtx.Done():
	}
}

func (rl *runLoop) afterFunc(d time.Duration, ev event) {
	rl.timers = append(rl.timers, time.AfterFunc(d, func() { rl.send(ev) }))
}

func (rl *runLoop) handle(ev event) {
	switch ev.kind {
	case evResult:
		rl.onResult(ev.d, ev.res, ev.err)
	case evRetry:
		if !ev.s.done && !ev.s.failed && len(ev.s.inflight) == 0 {
			rl.dispatchOrPark(ev.s)
		}
	case evHedge:
		rl.onHedge(ev.s, ev.attempt)
	case evWorkerDown:
		rl.onWorkerDown(ev.w)
	case evWorkerUp:
		rl.onWorkerUp(ev.w)
	case evStrand:
		rl.strandArmed = false
		rl.failStranded()
	}
}

func (rl *runLoop) heartbeat(w *worker) {
	defer rl.wg.Done()
	tick := time.NewTicker(rl.opt.HeartbeatInterval)
	defer tick.Stop()
	misses, down := 0, false
	for {
		select {
		case <-rl.loopCtx.Done():
			return
		case <-tick.C:
		}
		// A ping may take up to the full miss budget: a slow-but-alive
		// worker (its CPU busy simulating) must not read as dead.
		pctx, pcancel := context.WithTimeout(rl.loopCtx,
			time.Duration(rl.opt.HeartbeatMisses)*rl.opt.HeartbeatInterval)
		err := w.t.Ping(pctx)
		pcancel()
		if rl.loopCtx.Err() != nil {
			return
		}
		if err != nil {
			misses++
			if misses >= rl.opt.HeartbeatMisses && !down {
				down = true
				rl.send(event{kind: evWorkerDown, w: w})
			}
			continue
		}
		misses = 0
		if down {
			down = false
			rl.send(event{kind: evWorkerUp, w: w})
		}
	}
}

// pickWorker chooses an alive worker for a shard: one the shard has not
// tried yet when possible ("retry on a different worker"), least loaded
// as the tie-break, never one that already has this shard in flight —
// and for verify shards, never one whose reply is already a cast vote
// (independent re-execution is the whole point).
func (rl *runLoop) pickWorker(s *shardState) *worker {
	busy := map[string]bool{}
	for _, d := range s.inflight {
		busy[d.w.t.Name()] = true
	}
	var best *worker
	bestFresh := false
	for _, w := range rl.workers {
		if !w.alive || busy[w.t.Name()] || s.replied[w.t.Name()] {
			continue
		}
		// Ready is non-consuming: scanning ten candidates must not burn
		// ten half-open probe slots. The winner claims its slot via
		// Acquire in dispatch.
		if !w.breaker.Ready() {
			continue
		}
		fresh := !s.tried[w.t.Name()]
		switch {
		case best == nil,
			fresh && !bestFresh,
			fresh == bestFresh && w.inflight < best.inflight:
			best, bestFresh = w, fresh
		}
	}
	return best
}

// dispatch sends one attempt of the shard to a worker; false when no
// eligible worker is alive.
func (rl *runLoop) dispatch(s *shardState) bool {
	w := rl.pickWorker(s)
	if w == nil {
		return false
	}
	if !w.breaker.Acquire() {
		// The probe slot vanished between Ready and Acquire (possible
		// only through a racing OnCancel); treat as no worker available.
		return false
	}
	rl.co.budget.OnRequest()
	attempt := s.seq
	s.seq++
	req := &ShardRequest{
		Shard:   s.id,
		Attempt: attempt,
		Module:  rl.modKind,
		Lanes:   rl.modLanes,
		Faults:  s.faults,
		Stream:  rl.ordered,
	}
	dctx, cancelCause := context.WithCancelCause(rl.loopCtx)
	tctx, tcancel := context.WithTimeout(dctx, rl.deadline)
	d := &dispatch{
		shard: s.id, attempt: attempt, w: w, req: req, ctx: tctx, cancel: cancelCause,
		hedged: len(s.inflight) > 0, started: time.Now(),
	}
	if sp := rl.opt.Tracer.Start(obs.SpanFromContext(rl.loopCtx), obs.KindShard,
		fmt.Sprintf("shard:%d", s.id)); sp != nil {
		sp.Annotate("side", "client")
		sp.Annotate("worker", w.t.Name())
		sp.Annotate("attempt", fmt.Sprintf("%d", attempt))
		if d.hedged {
			sp.Annotate("hedged", "true")
		}
		if s.verify && len(s.replies) > 0 {
			sp.Annotate("verify", "true")
		}
		d.span = sp
	}
	s.inflight[attempt] = d
	s.tried[w.t.Name()] = true
	w.inflight++
	rl.stats.Dispatches++
	rl.wg.Add(1)
	go func() {
		defer rl.wg.Done()
		defer tcancel()
		res, err := w.t.Simulate(obs.ContextWithSpan(tctx, d.span), req)
		if err != nil {
			d.span.Annotate("error", err.Error())
		}
		d.span.End()
		rl.send(event{kind: evResult, d: d, res: res, err: err})
	}()
	if rl.opt.HedgeFraction > 0 && len(s.inflight) == 1 {
		rl.afterFunc(time.Duration(float64(rl.deadline)*rl.opt.HedgeFraction),
			event{kind: evHedge, s: s, attempt: attempt})
	}
	return true
}

func (rl *runLoop) dispatchOrPark(s *shardState) {
	if rl.dispatch(s) {
		s.parked = false
		return
	}
	if !s.parked {
		s.parked = true
		rl.pending = append(rl.pending, s)
	}
	// Parked shards are normally revived by evWorkerUp. A worker held
	// back only by its breaker never goes through the heartbeat
	// down/up cycle, so arm a retry for when the cool-down may have
	// elapsed (bounded poll at base-backoff granularity).
	if rl.breakerBlocked() {
		rl.afterFunc(rl.opt.BaseBackoff, event{kind: evRetry, s: s})
	}
}

// breakerBlocked reports whether some alive worker is currently
// ineligible only because of its circuit breaker — capacity that will
// come back without a heartbeat transition.
func (rl *runLoop) breakerBlocked() bool {
	for _, w := range rl.workers {
		if w.alive && !w.breaker.Ready() {
			return true
		}
	}
	return false
}

func (rl *runLoop) onResult(d *dispatch, res *ShardResult, err error) {
	s := rl.shards[d.shard]
	delete(s.inflight, d.attempt)
	d.w.inflight--
	if s.done || s.failed {
		if err == nil {
			// A duplicated reply for a settled shard: the hedge loser
			// finishing anyway, or chaos replaying. Counted once, merged
			// never — but still evidence the worker is healthy.
			rl.stats.DuplicateReplies++
			d.w.breaker.OnSuccess()
			return
		}
		// The attempt erred after the shard settled. A canceled hedge
		// loser or dead-worker preemption was already attributed at
		// cancellation time (the run may end before the victim ever
		// reports back); anything else is a genuine late failure worth
		// a log line, but the shard's outcome no longer depends on it.
		switch cause := context.Cause(d.ctx); {
		case errors.Is(cause, errLostRace), errors.Is(cause, errWorkerDown):
			d.w.breaker.OnCancel()
		case errors.Is(err, ErrBusy), errors.Is(err, ErrUnavailable):
			// Backpressure bounces carry no health verdict.
			d.w.breaker.OnCancel()
		default:
			d.w.breaker.OnFailure()
			rl.co.logf("dist: shard %d attempt %d on %s: late failure after settle: %v",
				s.id, d.attempt, d.w.t.Name(), err)
		}
		return
	}
	if err == nil {
		if verr := res.Validate(d.req); verr != nil {
			rl.stats.InvalidReplies++
			rl.co.logf("dist: shard %d attempt %d on %s: rejecting reply: %v",
				s.id, d.attempt, d.w.t.Name(), verr)
			err = verr
		}
	}
	if err == nil {
		// The reply's own checksum catches accidental corruption in
		// flight (a lying worker sums its lie consistently; the vote
		// below exists for that).
		if verr := res.VerifyChecksum(); verr != nil {
			rl.stats.InvalidReplies++
			rl.co.logf("dist: shard %d attempt %d on %s: rejecting reply: %v",
				s.id, d.attempt, d.w.t.Name(), verr)
			err = verr
		}
	}
	if err == nil {
		d.w.breaker.OnSuccess()
		// The exemplar pins the campaign's trace ID to the latency
		// bucket, so a burning latency SLO links straight to a trace.
		var traceID string
		if d.span != nil {
			traceID = d.span.TraceID().String()
		}
		rl.opt.Metrics.Histogram(
			fmt.Sprintf("gpustl_dist_shard_seconds{worker=%q}", d.w.t.Name()),
			obs.DefLatencyBuckets()).ObserveExemplar(time.Since(d.started).Seconds(), traceID)
		if s.verify {
			rl.onVerifyReply(s, d, res)
		} else {
			rl.settle(s, d, res)
		}
		return
	}
	switch cause := context.Cause(d.ctx); {
	case errors.Is(cause, errLostRace):
		// Normally the shard settled (handled above). Reaching here
		// means the settle was undone — the shard was requeued after its
		// worker's quarantine — and this canceled loser may be the last
		// in-flight attempt, so restart the shard if nothing else is.
		d.w.breaker.OnCancel()
		if len(s.inflight) == 0 {
			rl.dispatchOrPark(s)
		}
		return
	case errors.Is(cause, errWorkerDown), errors.Is(cause, errQuarantined):
		d.w.breaker.OnCancel()
		if len(s.inflight) > 0 {
			return // the sibling attempt is still racing
		}
		rl.stats.Redispatches++
		rl.dispatchOrPark(s)
		return
	}
	if errors.Is(err, ErrUnavailable) {
		// A draining worker bounced the shard: redistribution, not
		// failure. Back off one base interval — with a single worker
		// mid-drain an immediate retry would spin.
		d.w.breaker.OnCancel()
		rl.stats.UnavailableReplies++
		rl.stats.Redispatches++
		rl.co.logf("dist: shard %d attempt %d: worker %s draining, redistributing",
			s.id, d.attempt, d.w.t.Name())
		if len(s.inflight) == 0 {
			rl.afterFunc(rl.opt.BaseBackoff, event{kind: evRetry, s: s})
		}
		return
	}
	if errors.Is(err, ErrBusy) {
		// A saturated worker pushed back (429 + Retry-After):
		// backpressure, not failure — same contract as the drain path.
		// Reroute after the worker's own hint (or one base interval),
		// with no failure charge, no breaker charge, no retry budget.
		d.w.breaker.OnCancel()
		rl.stats.BusyReplies++
		rl.stats.Redispatches++
		delay := rl.opt.BaseBackoff
		var be *BusyError
		if errors.As(err, &be) && be.After > 0 {
			delay = be.After
		}
		rl.co.logf("dist: shard %d attempt %d: worker %s saturated, rerouting after %v",
			s.id, d.attempt, d.w.t.Name(), delay)
		if len(s.inflight) == 0 {
			rl.afterFunc(delay, event{kind: evRetry, s: s})
		}
		return
	}
	s.failures++
	d.w.breaker.OnFailure()
	s.errs = append(s.errs, fmt.Sprintf("attempt %d on %s: %v", d.attempt, d.w.t.Name(), err))
	if len(s.inflight) > 0 {
		return // a hedge is still in flight; it may yet win
	}
	if s.failures >= rl.opt.MaxAttempts {
		rl.fail(s)
		return
	}
	if !rl.co.budget.Allow() {
		// The fleet-wide retry budget is spent: retrying now would feed
		// a retry storm against a sick fleet. Fail the shard fast; the
		// campaign degrades to FC bounds instead of melting the workers.
		rl.stats.RetryDenied++
		s.errs = append(s.errs, "retry denied: coordinator retry budget exhausted")
		rl.co.logf("dist: shard %d: retry budget exhausted after %d failures, failing fast",
			s.id, s.failures)
		rl.fail(s)
		return
	}
	rl.stats.Retries++
	backoff := rl.opt.BaseBackoff << uint(s.failures-1)
	if backoff <= 0 || backoff > rl.opt.MaxBackoff {
		backoff = rl.opt.MaxBackoff
	}
	jittered := time.Duration(float64(backoff) * (0.5 + rl.rng.Float64()))
	rl.afterFunc(jittered, event{kind: evRetry, s: s})
}

// settle marks the shard done with the given accepted reply and cancels
// racing siblings, attributing each as a hedge loss NOW: the run can end
// before a canceled loser reports back, so attribution tied to its
// reply would silently drop the reason.
func (rl *runLoop) settle(s *shardState, d *dispatch, res *ShardResult) {
	s.done = true
	s.dets = res.Detections
	s.stats = res.Stats
	s.by = d.w.t.Name()
	rl.remaining--
	if d.hedged {
		rl.stats.HedgeWins++
	}
	for _, other := range s.inflight {
		other.cancel(errLostRace)
		rl.stats.HedgeLosses++
	}
}

// onVerifyReply folds one valid reply into a verify shard's checksum
// vote. The shard settles when two workers agree; a disagreement
// escalates to a third worker; outvoted workers take a strike toward
// quarantine. When no second worker exists the shard settles unverified
// — availability beats verification, and a later quarantine of the
// settling worker requeues exactly these shards.
func (rl *runLoop) onVerifyReply(s *shardState, d *dispatch, res *ShardResult) {
	name := d.w.t.Name()
	if s.replied[name] {
		// Same worker answering twice for a verify shard (a hedge pair
		// landed on it before verification started): not an independent
		// vote, ignore the extra reply.
		rl.stats.DuplicateReplies++
		return
	}
	s.replied[name] = true
	s.replies = append(s.replies, vote{w: d.w, d: d, res: res, sum: ChecksumDetections(res.Detections)})

	counts := map[string]int{}
	for _, v := range s.replies {
		counts[v.sum]++
	}
	for sum, n := range counts {
		if n < 2 {
			continue
		}
		// Majority: settle with an agreeing reply, strike every
		// dissenter — its reply was valid and plausible but provably
		// wrong, the Byzantine signature.
		for _, v := range s.replies {
			if v.sum == sum {
				s.verified = true
				rl.stats.VerifiedShards++
				rl.settle(s, v.d, v.res)
				break
			}
		}
		for _, v := range s.replies {
			if v.sum != sum {
				rl.stats.ByzantineReplies++
				rl.strike(v.w, s.id)
			}
		}
		return
	}
	if len(s.replies) >= 3 {
		// Three workers, three answers: no majority is reachable and
		// nothing distinguishes liar from victim. Fail the shard; the
		// campaign degrades to FC bounds rather than guessing.
		s.errs = append(s.errs, fmt.Sprintf("checksum vote: %d replies, all disagree", len(s.replies)))
		rl.co.logf("dist: shard %d: checksum vote unresolvable (%d distinct answers)", s.id, len(counts))
		rl.fail(s)
		return
	}
	if len(s.replies) == 2 {
		rl.stats.VerifyMismatches++
		rl.co.logf("dist: shard %d: checksum mismatch between %s and %s, asking a third worker",
			s.id, s.replies[0].w.t.Name(), s.replies[1].w.t.Name())
	}
	if len(s.inflight) > 0 {
		return // an attempt on another worker is already racing; its reply will vote
	}
	if rl.dispatch(s) {
		rl.stats.VerifyDispatches++
		return
	}
	// No distinct worker available to cast the next vote.
	if len(s.replies) == 1 {
		rl.stats.VerifySkipped++
		rl.co.logf("dist: shard %d: no second worker for verification, settling unverified", s.id)
		rl.settle(s, d, res)
		return
	}
	s.errs = append(s.errs, "checksum vote tie with no third worker available")
	rl.fail(s)
}

// strike charges a worker with one proven-wrong reply and quarantines
// it at the Options.QuarantineAfter threshold.
func (rl *runLoop) strike(w *worker, shard int) {
	w.strikes++
	rl.co.logf("dist: worker %s: byzantine reply on shard %d (strike %d of %d)",
		w.t.Name(), shard, w.strikes, rl.opt.QuarantineAfter)
	if w.strikes >= rl.opt.QuarantineAfter && !w.quarantined {
		rl.quarantine(w)
	}
}

// quarantine bans a worker for Byzantine replies: out of rotation for
// this run and every later one on the coordinator, its in-flight
// dispatches canceled, and — the critical part — every shard it settled
// WITHOUT verification is requeued, because nothing vouches for those
// results anymore. Shards it settled under a checksum majority stand:
// another worker agreed.
func (rl *runLoop) quarantine(w *worker) {
	w.quarantined = true
	w.alive = false
	rl.co.ban(w.t.Name())
	rl.stats.QuarantinedWorkers++
	rl.workerUpGauge(w, 0)
	rl.opt.Metrics.Gauge(fmt.Sprintf("gpustl_dist_worker_quarantined{worker=%q}", w.t.Name())).Set(1)
	rl.co.logf("dist: worker %s: QUARANTINED after %d byzantine replies", w.t.Name(), w.strikes)
	for _, s := range rl.shards {
		for _, d := range s.inflight {
			if d.w == w {
				d.cancel(errQuarantined)
				rl.stats.Preempted++
			}
		}
	}
	for _, s := range rl.shards {
		if s.done && !s.verified && s.by == w.t.Name() {
			s.done = false
			s.by = ""
			s.dets, s.stats = nil, fault.SimStats{}
			s.replies = nil
			s.replied = map[string]bool{}
			rl.remaining++
			rl.stats.RequeuedShards++
			rl.co.logf("dist: shard %d: settled by quarantined worker %s, requeueing", s.id, w.t.Name())
			if len(s.inflight) == 0 {
				rl.dispatchOrPark(s)
			}
		}
	}
}

func (rl *runLoop) onHedge(s *shardState, attempt int) {
	if s.done || s.failed {
		return
	}
	if _, live := s.inflight[attempt]; !live || len(s.inflight) != 1 {
		return
	}
	if rl.dispatch(s) {
		rl.stats.Hedges++
		rl.co.logf("dist: shard %d: hedging straggler attempt %d", s.id, attempt)
	}
}

func (rl *runLoop) workerUpGauge(w *worker, up float64) {
	rl.opt.Metrics.Gauge(fmt.Sprintf("gpustl_dist_worker_up{worker=%q}", w.t.Name())).Set(up)
}

func (rl *runLoop) onWorkerDown(w *worker) {
	if !w.alive {
		return
	}
	w.alive = false
	rl.stats.WorkerDeaths++
	rl.workerUpGauge(w, 0)
	rl.co.logf("dist: worker %s: heartbeat lost, redistributing its in-flight shards", w.t.Name())
	for _, s := range rl.shards {
		for _, d := range s.inflight {
			if d.w == w {
				d.cancel(errWorkerDown)
				rl.stats.Preempted++
			}
		}
	}
}

func (rl *runLoop) onWorkerUp(w *worker) {
	if w.alive || w.quarantined {
		return // a quarantined worker answering pings stays banned
	}
	w.alive = true
	rl.stats.WorkerRevivals++
	rl.workerUpGauge(w, 1)
	rl.co.logf("dist: worker %s: heartbeat recovered", w.t.Name())
	parked := rl.pending
	rl.pending = nil
	for _, s := range parked {
		s.parked = false
		if !s.done && !s.failed && len(s.inflight) == 0 {
			rl.dispatchOrPark(s)
		}
	}
}

func (rl *runLoop) fail(s *shardState) {
	s.failed = true
	rl.remaining--
	rl.co.logf("dist: shard %d (%d faults): permanently failed after %d attempts",
		s.id, len(s.ids), s.failures)
}

// stranded reports whether no alive worker remains and nothing is in
// flight: no capacity left that could ever answer.
func (rl *runLoop) stranded() bool {
	for _, w := range rl.workers {
		if w.alive || w.inflight > 0 {
			return false
		}
	}
	return true
}

// checkStranded arms a grace timer when the run is stranded; if the
// heartbeats revive a worker before it fires (a transient blip — the
// network hiccuped, not the fleet dying), the run continues, otherwise
// failStranded degrades it. Degrading after the grace beats hanging
// forever.
func (rl *runLoop) checkStranded() {
	if rl.strandArmed || rl.remaining == 0 || !rl.stranded() {
		return
	}
	rl.strandArmed = true
	grace := 2 * time.Duration(rl.opt.HeartbeatMisses) * rl.opt.HeartbeatInterval
	rl.afterFunc(grace, event{kind: evStrand})
}

// failStranded (the armed grace timer firing) fails every unsettled
// shard if the run is still stranded.
func (rl *runLoop) failStranded() {
	if !rl.stranded() {
		return
	}
	for _, s := range rl.shards {
		if !s.done && !s.failed {
			s.errs = append(s.errs, "no alive workers")
			rl.fail(s)
		}
	}
}

// finish merges accepted shard replies into the campaign and the final
// Result with its FC bounds.
func (rl *runLoop) finish(camp *fault.Campaign, ordered []fault.TimedPattern, opt fault.SimOptions) (*Result, error) {
	var (
		dets         []fault.Detection
		detIDs       []fault.ID
		failedShards int
		failedFaults int
		shardErrs    []string
	)
	var simStats fault.SimStats
	for _, s := range rl.shards {
		if s.done {
			for _, d := range s.dets {
				gid := s.ids[d.Fault]
				dets = append(dets, fault.Detection{Fault: gid, Pattern: d.Pattern, CC: d.CC})
				detIDs = append(detIDs, gid)
			}
			simStats.Add(s.stats)
			continue
		}
		failedShards++
		failedFaults += len(s.ids)
		shardErrs = append(shardErrs, fmt.Sprintf("shard %d (%d faults): %s",
			s.id, len(s.ids), strings.Join(s.errs, "; ")))
	}
	var opens uint64
	for _, w := range rl.workers {
		opens += w.breaker.Opens()
	}
	rl.stats.BreakerOpens = int(opens - rl.opensStart)
	if !opt.NoDrop {
		if err := camp.RestoreDetected(detIDs); err != nil {
			return nil, err
		}
	}
	detTotal := camp.Detected()
	if opt.NoDrop {
		detTotal += len(detIDs)
	}
	res := &Result{
		Report:          BuildReport(ordered, dets),
		DetectedThisRun: len(dets),
		Shards:          len(rl.shards),
		FailedShards:    failedShards,
		FailedFaults:    failedFaults,
		ShardErrors:     shardErrs,
		Stats:           rl.stats,
		SimStats:        simStats,
	}
	if total := camp.Total(); total > 0 {
		res.FCLower = 100 * float64(detTotal) / float64(total)
		res.FCUpper = 100 * float64(detTotal+failedFaults) / float64(total)
	}
	rl.recordStats(res)
	// Per-tenant usage attribution: the accepted shard replies' summed
	// block counts are the fleet work this campaign consumed.
	if u, tenant := obs.UsageFromContext(rl.loopCtx); u != nil {
		u.AddFaultBlocks(tenant, res.SimStats.Blocks)
	}
	return res, nil
}

// recordStats mirrors the run's Stats into the metrics registry, so a
// scrape of the coordinator process carries the same numbers Result
// reports programmatically.
func (rl *runLoop) recordStats(res *Result) {
	m := rl.opt.Metrics
	if m == nil {
		return
	}
	st := rl.stats
	for _, c := range []struct {
		name string
		n    int
	}{
		{"gpustl_dist_runs_total", 1},
		{"gpustl_dist_shards_total", st.Shards},
		{"gpustl_dist_dispatches_total", st.Dispatches},
		{"gpustl_dist_retries_total", st.Retries},
		{"gpustl_dist_hedges_total", st.Hedges},
		{"gpustl_dist_hedge_wins_total", st.HedgeWins},
		{"gpustl_dist_hedge_losses_total", st.HedgeLosses},
		{"gpustl_dist_preempted_total", st.Preempted},
		{"gpustl_dist_redispatches_total", st.Redispatches},
		{"gpustl_dist_duplicate_replies_total", st.DuplicateReplies},
		{"gpustl_dist_invalid_replies_total", st.InvalidReplies},
		{"gpustl_dist_worker_deaths_total", st.WorkerDeaths},
		{"gpustl_dist_worker_revivals_total", st.WorkerRevivals},
		{"gpustl_dist_failed_shards_total", res.FailedShards},
		{"gpustl_dist_verified_shards_total", st.VerifiedShards},
		{"gpustl_dist_verify_dispatches_total", st.VerifyDispatches},
		{"gpustl_dist_verify_mismatches_total", st.VerifyMismatches},
		{"gpustl_dist_verify_skipped_total", st.VerifySkipped},
		{"gpustl_dist_byzantine_replies_total", st.ByzantineReplies},
		{"gpustl_dist_quarantined_workers_total", st.QuarantinedWorkers},
		{"gpustl_dist_requeued_shards_total", st.RequeuedShards},
		{"gpustl_dist_unavailable_replies_total", st.UnavailableReplies},
		{"gpustl_dist_busy_replies_total", st.BusyReplies},
		{"gpustl_dist_retry_denied_total", st.RetryDenied},
		{"gpustl_dist_breaker_opens_total", st.BreakerOpens},
	} {
		m.Counter(c.name).Add(uint64(c.n))
	}
	// Breaker-state gauges: 0 closed, 0.5 half-open, 1 open — scrapes
	// see at a glance which workers are being routed around.
	for _, w := range rl.workers {
		if w.breaker == nil {
			continue
		}
		v := 0.0
		switch w.breaker.State() {
		case overload.BreakerOpen:
			v = 1
		case overload.BreakerHalfOpen:
			v = 0.5
		}
		m.Gauge(fmt.Sprintf("gpustl_dist_breaker_state{worker=%q}", w.t.Name())).Set(v)
	}
	if res.Degraded() {
		m.Counter("gpustl_dist_degraded_runs_total").Inc()
	}
	m.Gauge("gpustl_dist_fc_lower_pct").Set(res.FCLower)
	m.Gauge("gpustl_dist_fc_upper_pct").Set(res.FCUpper)

	// Engine counters aggregated from the accepted shard replies: how
	// much work the optimized simulator avoided, fleet-wide.
	ss := res.SimStats
	for _, c := range []struct {
		name string
		n    uint64
	}{
		{"gpustl_faultsim_blocks_total", ss.Blocks},
		{"gpustl_faultsim_patterns_total", ss.TotalPatterns},
		{"gpustl_faultsim_unique_patterns_total", ss.UniquePatterns},
		{"gpustl_faultsim_fault_evals_total", ss.FaultEvals},
		{"gpustl_faultsim_cone_skips_total", ss.ConeSkips},
		{"gpustl_faultsim_prescreen_skips_total", ss.PrescreenSkips},
		{"gpustl_faultsim_propagations_total", ss.Propagations},
	} {
		m.Counter(c.name).Add(c.n)
	}
	m.Gauge("gpustl_faultsim_dedup_hit_rate").Set(ss.DedupHitRate())
	m.Gauge("gpustl_faultsim_prescreen_skip_ratio").Set(ss.PrescreenSkipRatio())
	m.Gauge("gpustl_faultsim_block_words").Set(float64(ss.BlockWords))
	m.Gauge("gpustl_faultsim_plan_levels").Set(float64(ss.PlanLevels))
	m.Gauge("gpustl_faultsim_plan_runs").Set(float64(ss.PlanRuns))
}
