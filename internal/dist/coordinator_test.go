package dist

import (
	"context"
	"math/rand"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"gpustl/internal/circuits"
	"gpustl/internal/fault"
	"gpustl/internal/isa"
)

func spModule(t testing.TB) *circuits.Module {
	t.Helper()
	m, err := circuits.Build(circuits.ModuleSP, 0)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func randomSPStream(r *rand.Rand, lanes, n int) []fault.TimedPattern {
	stream := make([]fault.TimedPattern, n)
	for i := range stream {
		fn := circuits.SPFn(r.Intn(circuits.NumSPFns))
		p := circuits.EncodeSPPattern(fn, isa.Cond(r.Intn(isa.NumConds)),
			r.Uint32(), r.Uint32(), r.Uint32())
		stream[i] = fault.TimedPattern{
			CC:   uint64(i * 7),
			Lane: int16(i % lanes),
			Warp: 0,
			PC:   int32(i / 32),
			Pat:  p,
		}
	}
	return stream
}

func newSPCampaign(t testing.TB, m *circuits.Module, nFaults int, seed int64) *fault.Campaign {
	t.Helper()
	c := fault.NewCampaign(m)
	c.SampleFaults(nFaults, seed)
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	return c
}

// fastOptions keeps coordinator timing snappy under test.
func fastOptions() Options {
	return Options{
		MaxAttempts:       4,
		BaseBackoff:       5 * time.Millisecond,
		MaxBackoff:        50 * time.Millisecond,
		HeartbeatInterval: 20 * time.Millisecond,
		HeartbeatMisses:   2,
		// Explicit so the block-width-aware shard sizing (which only
		// shrinks defaulted counts) never folds these small test
		// campaigns into one shard — the tests exercise scheduling.
		Shards: 4,
		Seed:   1,
	}
}

// assertSameReport fails unless the distributed report is bit-identical
// to the serial one: same Detections (order included), same per-pattern
// counts, same stream metadata.
func assertSameReport(t *testing.T, got, want *fault.Report) {
	t.Helper()
	if got.NumPatterns != want.NumPatterns {
		t.Fatalf("NumPatterns = %d, want %d", got.NumPatterns, want.NumPatterns)
	}
	if !reflect.DeepEqual(got.Detections, want.Detections) {
		t.Fatalf("Detections differ: %d vs %d entries (got %v..., want %v...)",
			len(got.Detections), len(want.Detections),
			head(got.Detections), head(want.Detections))
	}
	if !reflect.DeepEqual(got.DetectedPerPattern, want.DetectedPerPattern) {
		t.Fatal("DetectedPerPattern differs")
	}
	if !reflect.DeepEqual(got.CCs, want.CCs) || !reflect.DeepEqual(got.Lanes, want.Lanes) ||
		!reflect.DeepEqual(got.PCs, want.PCs) || !reflect.DeepEqual(got.Warps, want.Warps) {
		t.Fatal("stream metadata differs")
	}
}

func head(d []fault.Detection) []fault.Detection {
	if len(d) > 3 {
		return d[:3]
	}
	return d
}

func TestNewRequiresTransports(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Fatal("New with zero transports should fail")
	}
}

func TestCoordinatorMatchesSerial(t *testing.T) {
	m := spModule(t)
	stream := randomSPStream(rand.New(rand.NewSource(31)), m.Lanes, 1024)

	serial := newSPCampaign(t, m, 1200, 7)
	wantRep := serial.Simulate(stream, fault.SimOptions{Workers: 1})

	co, err := New(fastOptions(), NewLocal("w1"), NewLocal("w2"), NewLocal("w3"))
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	distCamp := newSPCampaign(t, m, 1200, 7)
	res, err := co.Run(context.Background(), distCamp, stream, fault.SimOptions{})
	if err != nil {
		t.Fatal(err)
	}

	assertSameReport(t, res.Report, wantRep)
	if res.Degraded() || res.FailedShards != 0 {
		t.Fatalf("unexpected degradation: %+v", res)
	}
	if res.FCLower != res.FCUpper {
		t.Fatalf("healthy run must have point FC, got [%v, %v]", res.FCLower, res.FCUpper)
	}
	if got, want := res.FCLower, distCamp.Coverage(); got != want {
		t.Fatalf("FC = %v, want campaign coverage %v", got, want)
	}
	if !reflect.DeepEqual(distCamp.DetectedIDs(), serial.DetectedIDs()) {
		t.Fatal("campaign detected-ID sets differ from serial")
	}
	if res.DetectedThisRun != wantRep.DetectedThisRun() {
		t.Fatalf("DetectedThisRun = %d, want %d", res.DetectedThisRun, wantRep.DetectedThisRun())
	}
	if res.Stats.Dispatches < res.Stats.Shards {
		t.Fatalf("stats look wrong: %+v", res.Stats)
	}
}

func TestCoordinatorNoDrop(t *testing.T) {
	m := spModule(t)
	stream := randomSPStream(rand.New(rand.NewSource(32)), m.Lanes, 512)

	serial := newSPCampaign(t, m, 800, 5)
	wantRep := serial.Simulate(stream, fault.SimOptions{NoDrop: true, Workers: 1})

	co, err := New(fastOptions(), NewLocal("w1"), NewLocal("w2"))
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	camp := newSPCampaign(t, m, 800, 5)
	res, err := co.Run(context.Background(), camp, stream, fault.SimOptions{NoDrop: true})
	if err != nil {
		t.Fatal(err)
	}
	assertSameReport(t, res.Report, wantRep)
	if camp.Detected() != 0 {
		t.Fatalf("NoDrop must not commit detections, campaign has %d", camp.Detected())
	}
	wantFC := 100 * float64(res.DetectedThisRun) / float64(camp.Total())
	if res.FCLower != wantFC || res.FCUpper != wantFC {
		t.Fatalf("NoDrop FC = [%v, %v], want %v", res.FCLower, res.FCUpper, wantFC)
	}
}

func TestCoordinatorReverse(t *testing.T) {
	m := spModule(t)
	stream := randomSPStream(rand.New(rand.NewSource(33)), m.Lanes, 512)

	serial := newSPCampaign(t, m, 800, 11)
	wantRep := serial.Simulate(stream, fault.SimOptions{Reverse: true, Workers: 1})

	co, err := New(fastOptions(), NewLocal("w1"), NewLocal("w2"))
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	camp := newSPCampaign(t, m, 800, 11)
	res, err := co.Run(context.Background(), camp, stream, fault.SimOptions{Reverse: true})
	if err != nil {
		t.Fatal(err)
	}
	assertSameReport(t, res.Report, wantRep)
	if !reflect.DeepEqual(camp.DetectedIDs(), serial.DetectedIDs()) {
		t.Fatal("reverse run: detected-ID sets differ")
	}
}

func TestCoordinatorDroppingAcrossRuns(t *testing.T) {
	m := spModule(t)
	r := rand.New(rand.NewSource(34))
	s1 := randomSPStream(r, m.Lanes, 512)
	s2 := randomSPStream(r, m.Lanes, 512)

	serial := newSPCampaign(t, m, 800, 13)
	serial.Simulate(s1, fault.SimOptions{Workers: 1})
	wantRep := serial.Simulate(s2, fault.SimOptions{Workers: 1})

	co, err := New(fastOptions(), NewLocal("w1"), NewLocal("w2"))
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	camp := newSPCampaign(t, m, 800, 13)
	if _, err := co.Run(context.Background(), camp, s1, fault.SimOptions{}); err != nil {
		t.Fatal(err)
	}
	res, err := co.Run(context.Background(), camp, s2, fault.SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// The second run must only see faults the first one did not drop.
	assertSameReport(t, res.Report, wantRep)
	if serial.Detected() != camp.Detected() {
		t.Fatalf("campaign state diverged: %d vs %d", camp.Detected(), serial.Detected())
	}
}

func TestCoordinatorNothingRemaining(t *testing.T) {
	m := spModule(t)
	stream := randomSPStream(rand.New(rand.NewSource(35)), m.Lanes, 256)
	camp := newSPCampaign(t, m, 400, 17)
	camp.Simulate(stream, fault.SimOptions{Workers: 1})
	if err := camp.RestoreDetected(allIDs(camp)); err != nil {
		t.Fatal(err)
	}

	co, err := New(fastOptions(), NewLocal("w1"))
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	res, err := co.Run(context.Background(), camp, stream, fault.SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Shards != 0 || res.DetectedThisRun != 0 || len(res.Report.Detections) != 0 {
		t.Fatalf("fully detected campaign should produce an empty run: %+v", res)
	}
	if res.FCLower != 100 || res.FCUpper != 100 {
		t.Fatalf("FC = [%v, %v], want [100, 100]", res.FCLower, res.FCUpper)
	}
}

func allIDs(c *fault.Campaign) []fault.ID {
	ids := make([]fault.ID, c.Total())
	for i := range ids {
		ids[i] = fault.ID(i)
	}
	return ids
}

func TestCoordinatorRecordActivationsFallsBack(t *testing.T) {
	m := spModule(t)
	stream := randomSPStream(rand.New(rand.NewSource(36)), m.Lanes, 256)
	camp := newSPCampaign(t, m, 400, 19)

	co, err := New(fastOptions(), NewLocal("w1"))
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	res, err := co.Run(context.Background(), camp, stream, fault.SimOptions{RecordActivations: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.ActivatedPerPattern == nil {
		t.Fatal("RecordActivations fallback did not record activations")
	}
	if res.Stats.Dispatches != 0 {
		t.Fatalf("fallback must not dispatch shards, did %d", res.Stats.Dispatches)
	}
}

func TestCoordinatorCanceled(t *testing.T) {
	m := spModule(t)
	stream := randomSPStream(rand.New(rand.NewSource(37)), m.Lanes, 2048)
	camp := newSPCampaign(t, m, 1500, 23)

	co, err := New(fastOptions(), NewLocal("w1"))
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := co.Run(ctx, camp, stream, fault.SimOptions{}); err == nil {
		t.Fatal("canceled context should fail the run")
	}
	if camp.Detected() != 0 {
		t.Fatal("canceled run must not commit detections")
	}
}

func TestHTTPTransportRoundTrip(t *testing.T) {
	m := spModule(t)
	stream := randomSPStream(rand.New(rand.NewSource(38)), m.Lanes, 512)

	serial := newSPCampaign(t, m, 800, 29)
	wantRep := serial.Simulate(stream, fault.SimOptions{Workers: 1})

	srv1 := httptest.NewServer(NewHandler("httpw1", nil))
	defer srv1.Close()
	srv2 := httptest.NewServer(NewHandler("httpw2", t.Logf))
	defer srv2.Close()

	opt := fastOptions()
	// Under the race detector an HTTP round trip to a busy worker can
	// take tens of ms; don't let the heartbeat mistake slow for dead.
	opt.HeartbeatInterval = 100 * time.Millisecond
	opt.HeartbeatMisses = 3
	co, err := New(opt, NewHTTP(srv1.URL), NewHTTP(srv2.URL))
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	camp := newSPCampaign(t, m, 800, 29)
	res, err := co.Run(context.Background(), camp, stream, fault.SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	assertSameReport(t, res.Report, wantRep)
	if !reflect.DeepEqual(camp.DetectedIDs(), serial.DetectedIDs()) {
		t.Fatal("HTTP run: detected-ID sets differ from serial")
	}
}

func TestValidateRejectsBadReplies(t *testing.T) {
	m := spModule(t)
	stream := randomSPStream(rand.New(rand.NewSource(39)), m.Lanes, 128)
	camp := newSPCampaign(t, m, 300, 31)
	req := &ShardRequest{
		Shard: 2, Attempt: 5,
		Module: m.Kind, Lanes: m.Lanes,
		Faults: camp.Faults(), Stream: stream,
	}
	w := NewLocal("w")
	good, err := w.Simulate(context.Background(), &ShardRequest{
		Shard: 2, Attempt: 5, Module: m.Kind, Lanes: m.Lanes,
		Faults: camp.Faults(), Stream: stream,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(good.Detections) == 0 {
		t.Fatal("test needs at least one detection")
	}
	if err := good.Validate(req); err != nil {
		t.Fatalf("genuine reply rejected: %v", err)
	}

	cases := map[string]func(r *ShardResult){
		"wrong shard echo":   func(r *ShardResult) { r.Shard++ },
		"wrong attempt echo": func(r *ShardResult) { r.Attempt-- },
		"fault out of range": func(r *ShardResult) { r.Detections[0].Fault = int32(len(req.Faults)) },
		"negative fault":     func(r *ShardResult) { r.Detections[0].Fault = -1 },
		"pattern out of range": func(r *ShardResult) {
			r.Detections[0].Pattern = int32(len(req.Stream))
		},
		"cc mismatch": func(r *ShardResult) { r.Detections[0].CC++ },
		"duplicate fault": func(r *ShardResult) {
			r.Detections = append(r.Detections, r.Detections[0])
		},
		"order violation": func(r *ShardResult) {
			r.Detections = append(r.Detections, r.Detections[len(r.Detections)-1])
		},
	}
	for name, mangle := range cases {
		bad := cloneResult(good)
		mangle(bad)
		if err := bad.Validate(req); err == nil {
			t.Errorf("%s: corrupted reply passed validation", name)
		}
	}
	if err := (*ShardResult)(nil).Validate(req); err == nil {
		t.Error("nil reply passed validation")
	}
}

func TestSimulateCampaignHealthy(t *testing.T) {
	m := spModule(t)
	stream := randomSPStream(rand.New(rand.NewSource(40)), m.Lanes, 512)

	serial := newSPCampaign(t, m, 800, 37)
	wantRep := serial.Simulate(stream, fault.SimOptions{Workers: 1})

	co, err := New(fastOptions(), NewLocal("w1"), NewLocal("w2"))
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	camp := newSPCampaign(t, m, 800, 37)
	rep, err := co.SimulateCampaign(context.Background(), camp, stream, fault.SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	assertSameReport(t, rep, wantRep)
}

func TestHTTPNameNormalization(t *testing.T) {
	if got := NewHTTP("worker-a:9000").Name(); !strings.HasPrefix(got, "http://") {
		t.Fatalf("bare host:port not normalized: %q", got)
	}
	if got := NewHTTP("https://w/").Name(); got != "https://w" {
		t.Fatalf("scheme mishandled: %q", got)
	}
}
