package dist

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"gpustl/internal/fault"
)

// TestAnyPartitionMatchesSerial is the distribution-safety property the
// whole package rests on: for ANY partition of the remaining fault list
// into k shards — not just the lane-grouped one the coordinator uses —
// merging the per-shard SimulateSubset detections yields the same
// detected-ID set and a Report with identical Detections ordering as one
// serial Simulate run. First detections are per-fault, so shard
// placement cannot matter.
func TestAnyPartitionMatchesSerial(t *testing.T) {
	m := spModule(t)
	stream := randomSPStream(rand.New(rand.NewSource(61)), m.Lanes, 768)

	serial := newSPCampaign(t, m, 1000, 67)
	wantRep := serial.Simulate(stream, fault.SimOptions{Workers: 1})
	wantIDs := serial.DetectedIDs()

	camp := newSPCampaign(t, m, 1000, 67)
	for trial, k := range []int{1, 2, 3, 5, 8} {
		r := rand.New(rand.NewSource(int64(100 + trial)))
		// A uniformly random partition: each fault lands in a random
		// shard, with no lane grouping and no balancing whatsoever.
		shards := make([][]fault.ID, k)
		for i := 0; i < camp.Total(); i++ {
			s := r.Intn(k)
			shards[s] = append(shards[s], fault.ID(i))
		}
		var merged []fault.Detection
		for _, ids := range shards {
			dets, err := camp.SimulateSubset(context.Background(), stream, ids)
			if err != nil {
				t.Fatalf("k=%d: %v", k, err)
			}
			merged = append(merged, dets...)
		}
		rep := BuildReport(stream, merged)
		if !reflect.DeepEqual(rep.Detections, wantRep.Detections) {
			t.Fatalf("k=%d: merged Detections differ from serial (%d vs %d)",
				k, len(rep.Detections), len(wantRep.Detections))
		}
		if !reflect.DeepEqual(rep.DetectedPerPattern, wantRep.DetectedPerPattern) {
			t.Fatalf("k=%d: per-pattern counts differ", k)
		}
		ids := make([]fault.ID, 0, len(merged))
		for _, d := range merged {
			ids = append(ids, d.Fault)
		}
		if got := sortedIDs(ids); !reflect.DeepEqual(got, wantIDs) {
			t.Fatalf("k=%d: detected-ID sets differ (%d vs %d)", k, len(got), len(wantIDs))
		}
		// SimulateSubset must not have mutated the campaign.
		if camp.Detected() != 0 {
			t.Fatalf("k=%d: SimulateSubset mutated campaign state", k)
		}
	}
}

func sortedIDs(ids []fault.ID) []fault.ID {
	out := append([]fault.ID(nil), ids...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// TestPartitionRemainingCovers checks the coordinator's actual
// partitioner: every remaining fault appears in exactly one shard, and
// detected faults in none.
func TestPartitionRemainingCovers(t *testing.T) {
	m := spModule(t)
	stream := randomSPStream(rand.New(rand.NewSource(62)), m.Lanes, 256)
	camp := newSPCampaign(t, m, 600, 71)
	camp.Simulate(stream, fault.SimOptions{Workers: 1}) // drop a few faults first

	for _, k := range []int{1, 2, 4, 9} {
		parts := camp.PartitionRemaining(k)
		seen := map[fault.ID]bool{}
		for _, ids := range parts {
			if len(ids) == 0 {
				t.Fatalf("k=%d: empty shard emitted", k)
			}
			for _, id := range ids {
				if seen[id] {
					t.Fatalf("k=%d: fault %d in two shards", k, id)
				}
				if camp.IsDetected(id) {
					t.Fatalf("k=%d: detected fault %d partitioned", k, id)
				}
				seen[id] = true
			}
		}
		if len(seen) != camp.Remaining() {
			t.Fatalf("k=%d: partition covers %d faults, campaign has %d remaining",
				k, len(seen), camp.Remaining())
		}
	}
}
