// Package dist distributes a fault-simulation campaign across workers.
//
// The bottleneck of the compaction method is its single optimized
// gate-level fault simulation per PTP (paper Sec. III-C). This package
// shards that simulation: a Coordinator partitions a campaign's
// remaining faults with the same lane-grouped partitioning the
// in-process parallel simulator uses (fault.Campaign.PartitionRemaining)
// and dispatches each shard — faults plus the pattern stream — to a
// worker over a pluggable Transport. Because first detections are
// per-fault, the merged result is bit-identical to a serial
// Campaign.Simulate run no matter how shards are placed, retried,
// hedged, duplicated, or reordered.
//
// The coordinator is robust by construction:
//
//   - per-shard deadlines derived from the pattern-stream length;
//   - retry with exponential backoff + jitter, preferring a worker the
//     shard has not failed on;
//   - hedged re-dispatch of straggler shards (first reply wins, the
//     loser is canceled through its context);
//   - heartbeat-based worker health: a worker that stops answering
//     pings is declared dead and its in-flight shards are redistributed;
//   - reply validation: a reply is cross-checked against its request
//     (shard/attempt echo, detection indices, clock cycles, ordering),
//     so corrupted or misdirected payloads are rejected and retried;
//   - graceful degradation: a shard that keeps failing after
//     Options.MaxAttempts attempts is declared failed and the campaign
//     completes with explicit fault-coverage lower/upper bounds instead
//     of an error.
//
// Transports: Local executes shards in-process (tests, single-machine
// parallelism); HTTP speaks JSON to a cmd/stlworker daemon (NewHandler
// is the server side). Chaos decorates any transport with fault
// injection for the chaos test harness.
package dist

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"

	"gpustl/internal/circuits"
	"gpustl/internal/fault"
)

// ShardRequest is the unit of distributed work: one shard of a
// campaign's fault list plus the full pattern stream, self-contained so
// a stateless worker can simulate it with nothing but a module builder.
type ShardRequest struct {
	// Shard and Attempt identify the dispatch; workers echo both so the
	// coordinator can reject stale or misdirected replies.
	Shard   int `json:"shard"`
	Attempt int `json:"attempt"`
	// Module and Lanes select the gate-level model to elaborate.
	Module circuits.ModuleKind `json:"module"`
	Lanes  int                 `json:"lanes"`
	// Faults is the shard's explicit fault list; detections refer to it
	// by index, so coordinator and worker need not share a master list.
	Faults []fault.Fault `json:"faults"`
	// Stream is the ordered pattern stream (already reversed when the
	// campaign runs with Reverse semantics).
	Stream []fault.TimedPattern `json:"stream"`
}

// Detection is one first detection inside a shard reply.
type Detection struct {
	Fault   int32  `json:"fault"`   // index into the request's fault list
	Pattern int32  `json:"pattern"` // index into the request's stream
	CC      uint64 `json:"cc"`      // clock cycle of that pattern
}

// ShardResult is a worker's reply to one ShardRequest.
type ShardResult struct {
	Shard      int         `json:"shard"`
	Attempt    int         `json:"attempt"`
	Worker     string      `json:"worker"`
	Detections []Detection `json:"detections"`
	// Stats carries the worker's engine counters (dedup dictionary hit
	// rate, activation pre-screen skips, ...) for this shard. Advisory
	// telemetry: the coordinator aggregates accepted replies' stats into
	// Result.SimStats, but never bases correctness decisions on them, so
	// Validate leaves them unchecked.
	Stats fault.SimStats `json:"stats"`
	// Checksum is the content checksum of Detections
	// (ChecksumDetections). It catches accidental in-flight corruption
	// cheaply; it does NOT authenticate the worker — a Byzantine worker
	// checksums its own lie consistently, which is exactly why the
	// coordinator's verification re-executes shards on a second worker
	// and votes on these sums. Empty means a legacy worker; the
	// coordinator accepts but cannot cross-check such replies.
	Checksum string `json:"checksum,omitempty"`
}

// ChecksumDetections computes the canonical content checksum of a
// detection list: sha256 over one "fault:pattern:cc" line per detection
// in reply order. Two honest workers simulating the same shard produce
// identical detection lists (the engine is deterministic), so their
// sums match; any divergence is corruption or a lie.
func ChecksumDetections(dets []Detection) string {
	h := sha256.New()
	for _, d := range dets {
		fmt.Fprintf(h, "%d:%d:%d\n", d.Fault, d.Pattern, d.CC)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// VerifyChecksum recomputes the reply's content checksum and compares
// it to the one the worker sent. An empty checksum (legacy worker) is
// accepted without a check.
func (res *ShardResult) VerifyChecksum() error {
	if res.Checksum == "" {
		return nil
	}
	if got := ChecksumDetections(res.Detections); got != res.Checksum {
		return fmt.Errorf("dist: reply checksum mismatch: payload sums to %s, reply claims %s", got, res.Checksum)
	}
	return nil
}

// Validate cross-checks a reply against the request it claims to answer.
// Every reply passes through here before it is merged; a reply that
// fails — wrong shard or attempt echo (misdirected/duplicated), indices
// out of range, clock-cycle mismatch, unsorted or duplicated detections
// (corruption) — is discarded and the dispatch counts as failed, so the
// shard is retried elsewhere.
func (res *ShardResult) Validate(req *ShardRequest) error {
	if res == nil {
		return errors.New("dist: empty reply")
	}
	if res.Shard != req.Shard || res.Attempt != req.Attempt {
		return fmt.Errorf("dist: reply echoes shard %d attempt %d, want shard %d attempt %d",
			res.Shard, res.Attempt, req.Shard, req.Attempt)
	}
	seen := make([]bool, len(req.Faults))
	prev := Detection{Fault: -1, Pattern: -1}
	for i, d := range res.Detections {
		if d.Fault < 0 || int(d.Fault) >= len(req.Faults) {
			return fmt.Errorf("dist: detection %d: fault index %d outside shard (%d faults)",
				i, d.Fault, len(req.Faults))
		}
		if d.Pattern < 0 || int(d.Pattern) >= len(req.Stream) {
			return fmt.Errorf("dist: detection %d: pattern index %d outside stream (%d patterns)",
				i, d.Pattern, len(req.Stream))
		}
		if d.CC != req.Stream[d.Pattern].CC {
			return fmt.Errorf("dist: detection %d: cc %d does not match stream cc %d at pattern %d",
				i, d.CC, req.Stream[d.Pattern].CC, d.Pattern)
		}
		if seen[d.Fault] {
			return fmt.Errorf("dist: detection %d: fault %d detected twice", i, d.Fault)
		}
		seen[d.Fault] = true
		if i > 0 && (d.Pattern < prev.Pattern || (d.Pattern == prev.Pattern && d.Fault <= prev.Fault)) {
			return fmt.Errorf("dist: detections out of (Pattern, Fault) order at %d", i)
		}
		prev = d
	}
	return nil
}
