package dist

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"gpustl/internal/failpoint"
)

// The dist failpoint sites, threaded through the transport wrapper
// below. All are message-shaped: they decide the fate of one shard
// round trip.
var (
	// dist.reply.delay stalls a reply (straggler worker; exercises
	// hedging and deadlines).
	fpReplyDelay = failpoint.New("dist.reply.delay")
	// dist.reply.drop loses a computed reply (network eats the response;
	// the work was done, the coordinator never hears).
	fpReplyDrop = failpoint.New("dist.reply.drop")
	// dist.reply.dup answers with a stale copy of an earlier reply
	// (misdirected or replayed response; the shard/attempt echo is
	// wrong, so validation must catch it).
	fpReplyDup = failpoint.New("dist.reply.dup")
	// dist.reply.reorder delivers replies out of order by swapping the
	// current reply with a held earlier one.
	fpReplyReorder = failpoint.New("dist.reply.reorder")
	// dist.reply.byzantine makes the worker lie plausibly: the reply
	// passes validation and carries a consistent checksum, but its
	// detections are wrong. Only re-execution and voting can catch it.
	fpReplyByzantine = failpoint.New("dist.reply.byzantine")
	// dist.reply.busy bounces the dispatch as a saturated worker would
	// (429 + Retry-After): a brownout. The coordinator must reroute with
	// no failure charge; Config.Delay doubles as the Retry-After hint.
	fpReplyBusy = failpoint.New("dist.reply.busy")
	// dist.transport.error fails the round trip outright (connection
	// refused, TLS error, ...).
	fpTransportErr = failpoint.New("dist.transport.error")
	// dist.ping.error fails heartbeat probes (exercises dead-worker
	// declaration and revival).
	fpPingErr = failpoint.New("dist.ping.error")
)

// faultTransport decorates a Transport with the dist failpoint sites.
type faultTransport struct {
	inner Transport
	allow map[string]bool

	mu    sync.Mutex
	stale *ShardResult // last reply seen, for dup/reorder
	held  *ShardResult // reply held back by an armed reorder
}

// WithFailpoints wraps t with the dist.* failpoint sites. With no names
// the wrapper evaluates every site; naming a subset restricts this
// wrapper to those failpoints, so a chaos schedule can arm
// dist.reply.byzantine globally while only one worker's transport acts
// on it. Disarmed sites cost one atomic load per call.
func WithFailpoints(t Transport, names ...string) Transport {
	ft := &faultTransport{inner: t}
	if len(names) > 0 {
		ft.allow = make(map[string]bool, len(names))
		for _, n := range names {
			ft.allow[n] = true
		}
	}
	return ft
}

func (ft *faultTransport) allowed(fp *failpoint.Failpoint) bool {
	return ft.allow == nil || ft.allow[fp.Name()]
}

// eval gates a failpoint through this wrapper's allow-list before
// advancing its trigger state, so a restricted wrapper leaves the
// shared counters of other wrappers' failpoints untouched.
func (ft *faultTransport) eval(fp *failpoint.Failpoint) (failpoint.Outcome, bool) {
	if !ft.allowed(fp) {
		return failpoint.Outcome{}, false
	}
	return fp.Eval()
}

func (ft *faultTransport) Name() string { return ft.inner.Name() }
func (ft *faultTransport) Close() error { return ft.inner.Close() }

func (ft *faultTransport) Ping(ctx context.Context) error {
	if out, ok := ft.eval(fpPingErr); ok {
		return out.Err
	}
	return ft.inner.Ping(ctx)
}

func (ft *faultTransport) Simulate(ctx context.Context, req *ShardRequest) (*ShardResult, error) {
	if out, ok := ft.eval(fpReplyBusy); ok {
		// Bounce before any work, exactly like a real saturated worker.
		return nil, &BusyError{Worker: ft.inner.Name(), After: out.Delay}
	}
	if out, ok := ft.eval(fpTransportErr); ok {
		return nil, out.Err
	}
	if out, ok := ft.eval(fpReplyDelay); ok {
		select {
		case <-time.After(out.Delay):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	res, err := ft.inner.Simulate(ctx, req)
	if err != nil {
		return nil, err
	}
	if out, ok := ft.eval(fpReplyByzantine); ok {
		byzantineMutate(res, req, out.Bit)
	}
	ft.mu.Lock()
	prev := ft.stale
	ft.stale = res
	ft.mu.Unlock()
	if out, ok := ft.eval(fpReplyDrop); ok {
		return nil, fmt.Errorf("%s: reply lost in flight", out.Msg)
	}
	if _, ok := ft.eval(fpReplyDup); ok && prev != nil && prev != res {
		// Replay an earlier reply verbatim: its shard/attempt echo is
		// stale, so coordinator validation must reject it.
		return prev, nil
	}
	if _, ok := ft.eval(fpReplyReorder); ok {
		ft.mu.Lock()
		swapped := ft.held
		ft.held = res
		ft.mu.Unlock()
		if swapped != nil {
			return swapped, nil
		}
		return res, nil // nothing held yet; start the swap chain
	}
	return res, nil
}

// byzantineMutate turns an honest reply into a plausible lie: the
// mutated detections still pass Validate (indices in range, CCs
// matching the stream, sorted, no duplicates) and the reply's checksum
// is recomputed so it is self-consistent — a Byzantine worker checksums
// what it actually sends. variant (a seeded random int from the
// failpoint) picks the lie deterministically.
func byzantineMutate(res *ShardResult, req *ShardRequest, variant int) {
	if variant < 0 {
		variant = -variant
	}
	detected := make(map[int32]bool, len(res.Detections))
	for _, d := range res.Detections {
		detected[d.Fault] = true
	}
	// Prefer claiming a detection for a fault the simulation did not
	// detect (inflates coverage — the dangerous direction: compaction
	// would drop instructions that are actually needed); fall back to
	// suppressing a real detection.
	var undetected []int32
	for i := range req.Faults {
		if !detected[int32(i)] {
			undetected = append(undetected, int32(i))
		}
	}
	switch {
	case len(undetected) > 0 && len(req.Stream) > 0:
		f := undetected[variant%len(undetected)]
		p := int32(variant % len(req.Stream))
		res.Detections = append(res.Detections, Detection{
			Fault: f, Pattern: p, CC: req.Stream[p].CC,
		})
		sort.Slice(res.Detections, func(i, j int) bool {
			a, b := res.Detections[i], res.Detections[j]
			if a.Pattern != b.Pattern {
				return a.Pattern < b.Pattern
			}
			return a.Fault < b.Fault
		})
	case len(res.Detections) > 0:
		i := variant % len(res.Detections)
		res.Detections = append(res.Detections[:i], res.Detections[i+1:]...)
	default:
		return // nothing to lie about
	}
	res.Checksum = ChecksumDetections(res.Detections)
}
