package dist

import (
	"context"
	"encoding/json"
	"math/rand"
	"testing"
	"time"

	"gpustl/internal/failpoint"
	"gpustl/internal/fault"
)

// TestWireFailpointsStayExact arms every message-shaped dist failpoint
// at once — dropped, duplicated, reordered and delayed replies plus
// outright transport errors — against a fleet of honest workers. The
// validation/retry machinery must absorb all of it: the merged result
// stays byte-identical to a serial simulation.
func TestWireFailpointsStayExact(t *testing.T) {
	defer failpoint.Reset()
	m := spModule(t)
	stream := randomSPStream(rand.New(rand.NewSource(71)), m.Lanes, 384)

	serial := newSPCampaign(t, m, 700, 91)
	wantRep := serial.Simulate(stream, fault.SimOptions{Workers: 1})

	for name, cfg := range map[string]failpoint.Config{
		"dist.reply.drop":      {Kind: failpoint.KindDrop, Prob: 0.2, Seed: 1},
		"dist.reply.dup":       {Kind: failpoint.KindDuplicate, Prob: 0.2, Seed: 2},
		"dist.reply.reorder":   {Kind: failpoint.KindReorder, Prob: 0.3, Seed: 3},
		"dist.reply.delay":     {Kind: failpoint.KindDelay, Delay: 5 * time.Millisecond, Prob: 0.3, Seed: 4},
		"dist.transport.error": {Kind: failpoint.KindError, Prob: 0.15, Seed: 5},
	} {
		if err := failpoint.Enable(name, cfg); err != nil {
			t.Fatal(err)
		}
	}
	chaotic := WithFailpoints(NewLocal("chaotic"))
	opt := chaosOptions()
	co, err := New(opt, chaotic, NewLocal("steady"))
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()

	camp := newSPCampaign(t, m, 700, 91)
	res, err := co.Run(context.Background(), camp, stream, fault.SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded() {
		t.Fatalf("degraded under wire chaos: %v", res.ShardErrors)
	}
	assertSameReport(t, res.Report, wantRep)
}

// TestPingFailpointKillsAndRevives: dist.ping.error with a Times budget
// makes a worker miss enough heartbeats to be declared dead, then
// answer again — death, redistribution and revival all driven from one
// failpoint.
func TestPingFailpointKillsAndRevives(t *testing.T) {
	defer failpoint.Reset()
	m := spModule(t)
	stream := randomSPStream(rand.New(rand.NewSource(72)), m.Lanes, 256)

	serial := newSPCampaign(t, m, 500, 97)
	wantRep := serial.Simulate(stream, fault.SimOptions{Workers: 1})

	if err := failpoint.Enable("dist.ping.error", failpoint.Config{
		Kind: failpoint.KindError, Times: 4,
	}); err != nil {
		t.Fatal(err)
	}
	flaky := WithFailpoints(NewLocal("flaky"), "dist.ping.error")
	opt := fastOptions()
	opt.Shards = 6
	co, err := New(opt, flaky, NewLocal("steady"))
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()

	camp := newSPCampaign(t, m, 500, 97)
	res, err := co.Run(context.Background(), camp, stream, fault.SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded() {
		t.Fatalf("degraded: %v", res.ShardErrors)
	}
	assertSameReport(t, res.Report, wantRep)
}

// TestRestrictedWrapperLeavesOtherSitesAlone: a wrapper restricted to
// one failpoint must not consume trigger budget of others.
func TestRestrictedWrapperLeavesOtherSitesAlone(t *testing.T) {
	defer failpoint.Reset()
	if err := failpoint.Enable("dist.reply.drop", failpoint.Config{
		Kind: failpoint.KindDrop, Times: 1,
	}); err != nil {
		t.Fatal(err)
	}
	// Wrapped only for ping errors: its simulate path must not consume
	// the drop budget.
	ft := WithFailpoints(NewLocal("w"), "dist.ping.error")
	req := &ShardRequest{Module: spModule(t).Kind, Stream: nil, Faults: nil}
	if _, err := ft.Simulate(context.Background(), req); err != nil {
		t.Fatalf("restricted wrapper fired a foreign failpoint: %v", err)
	}
	// An unrestricted wrapper then consumes it.
	all := WithFailpoints(NewLocal("w2"))
	if _, err := all.Simulate(context.Background(), req); err == nil {
		t.Fatal("armed drop failpoint never fired")
	}
}

// FuzzShardReply fuzzes the reply ingestion path end to end: JSON
// decoding of an untrusted worker reply, cross-validation against a
// small request, and checksum verification must never panic, whatever
// bytes arrive — corrupted checksums included.
func FuzzShardReply(f *testing.F) {
	req := &ShardRequest{
		Shard: 1, Attempt: 2,
		Faults: make([]fault.Fault, 4),
		Stream: []fault.TimedPattern{{CC: 10}, {CC: 17}, {CC: 21}},
	}
	good := &ShardResult{
		Shard: 1, Attempt: 2, Worker: "w",
		Detections: []Detection{{Fault: 0, Pattern: 1, CC: 17}, {Fault: 2, Pattern: 2, CC: 21}},
	}
	good.Checksum = ChecksumDetections(good.Detections)
	seed, _ := json.Marshal(good)
	f.Add(seed)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"shard":1,"attempt":2,"detections":[{"fault":-1,"pattern":9,"cc":0}],"checksum":"zz"}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var res ShardResult
		if err := json.Unmarshal(data, &res); err != nil {
			return
		}
		verr := res.Validate(req)
		cerr := res.VerifyChecksum()
		if verr == nil && cerr == nil && res.Checksum != "" {
			// An accepted checksummed reply must re-checksum to itself.
			if ChecksumDetections(res.Detections) != res.Checksum {
				t.Fatal("VerifyChecksum accepted a reply whose checksum does not match")
			}
		}
	})
}
