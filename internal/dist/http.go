package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gpustl/internal/obs"
	"gpustl/internal/overload"
)

// Wire paths of the worker daemon. /healthz is the heartbeat the
// coordinator pings (unhealthy only while draining, for back-compat);
// /livez and /readyz are the orchestrator-facing split: liveness says
// "don't kill me", readiness says "don't route to me" — a draining or
// saturated worker is not-ready but very much alive.
const (
	simulatePath = "/simulate"
	healthPath   = "/healthz"
	livezPath    = "/livez"
	readyzPath   = "/readyz"
)

// drainingHeader marks a worker's 503 as "draining, retry elsewhere"
// rather than a failure: the worker received SIGTERM and is finishing
// its in-flight shards.
const drainingHeader = "X-Gpustl-Draining"

// deadlineHeader carries the dispatch context's deadline to the worker
// as unix nanoseconds, so a worker never burns cycles simulating a
// shard whose campaign already timed out: an expired deadline is
// rejected with 504 before any work, and an unexpired one bounds the
// worker-side simulation even if the client's cancel never arrives.
const deadlineHeader = "X-Gpustl-Deadline"

// ErrUnavailable marks a dispatch rejected by a draining worker. The
// coordinator redistributes the shard without charging a failed attempt
// — a clean shutdown is scheduling, not an error.
var ErrUnavailable = errors.New("dist: worker draining, shard not accepted")

// ErrBusy marks a dispatch rejected by a saturated worker (HTTP 429):
// backpressure, not failure. The coordinator reroutes the shard without
// charging a failed attempt, honoring the worker's Retry-After hint.
var ErrBusy = errors.New("dist: worker saturated, shard not accepted")

// BusyError is the concrete 429 bounce, carrying the worker's
// Retry-After hint. errors.Is(err, ErrBusy) matches it.
type BusyError struct {
	Worker string
	After  time.Duration
}

func (e *BusyError) Error() string {
	return fmt.Sprintf("dist: worker %s saturated, retry after %v", e.Worker, e.After)
}

// Is makes every BusyError match the ErrBusy sentinel.
func (e *BusyError) Is(target error) bool { return target == ErrBusy }

// MaxReplyBytes caps how much of a worker's /simulate reply the client
// will read. A shard result is detections over at most a few thousand
// faults — far below this — so a larger reply means a broken or hostile
// worker, and the client fails that shard (the retry/hedge machinery
// takes over) instead of buffering without bound. Variable so tests can
// shrink it.
var MaxReplyBytes int64 = 64 << 20

// HTTP is the client-side Transport speaking JSON to a cmd/stlworker
// daemon: POST /simulate with a ShardRequest body, GET /healthz for
// heartbeats. Request contexts propagate cancellation, so a hedged
// loser or a dead worker's dispatch aborts the HTTP round trip.
type HTTP struct {
	base   string
	client *http.Client
}

// NewHTTP creates a transport for a worker at addr ("host:port" or a
// full http:// URL). The client enforces no global timeout — per-shard
// deadlines come from the dispatch context.
func NewHTTP(addr string) *HTTP {
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return &HTTP{base: strings.TrimRight(base, "/"), client: &http.Client{}}
}

// Name implements Transport: workers are identified by their base URL.
func (t *HTTP) Name() string { return t.base }

// Simulate implements Transport.
func (t *HTTP) Simulate(ctx context.Context, req *ShardRequest) (*ShardResult, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("dist: encoding shard %d: %w", req.Shard, err)
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, t.base+simulatePath, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	if dl, ok := ctx.Deadline(); ok {
		// Propagate the dispatch deadline so the worker can refuse or
		// bound work on an already-expired campaign.
		hreq.Header.Set(deadlineHeader, strconv.FormatInt(dl.UnixNano(), 10))
	}
	if sc := obs.SpanFromContext(ctx).Context(); sc.Valid() {
		// Propagate trace context so the worker's execution span joins
		// the submitting campaign's trace as a remote child.
		hreq.Header.Set(obs.TraceHeader, sc.Header())
	}
	hres, err := t.client.Do(hreq)
	if err != nil {
		return nil, fmt.Errorf("dist: worker %s: %w", t.base, err)
	}
	defer hres.Body.Close()
	if hres.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(hres.Body, 4096))
		if hres.StatusCode == http.StatusServiceUnavailable && hres.Header.Get(drainingHeader) != "" {
			return nil, fmt.Errorf("dist: worker %s: %w", t.base, ErrUnavailable)
		}
		if hres.StatusCode == http.StatusTooManyRequests {
			after := time.Duration(0)
			if s, perr := strconv.Atoi(strings.TrimSpace(hres.Header.Get("Retry-After"))); perr == nil && s >= 0 {
				after = time.Duration(s) * time.Second
			}
			return nil, &BusyError{Worker: t.base, After: after}
		}
		return nil, fmt.Errorf("dist: worker %s: HTTP %d: %s",
			t.base, hres.StatusCode, strings.TrimSpace(string(msg)))
	}
	// Read through a hard size limit: one extra byte past the cap
	// distinguishes "too big" from a reply that exactly fits, and a
	// truncated body surfaces as a JSON error rather than a hang.
	lr := &io.LimitedReader{R: hres.Body, N: MaxReplyBytes + 1}
	data, err := io.ReadAll(lr)
	if err != nil {
		return nil, fmt.Errorf("dist: worker %s: reading reply: %w", t.base, err)
	}
	if int64(len(data)) > MaxReplyBytes {
		return nil, fmt.Errorf("dist: worker %s: reply exceeds %d-byte limit", t.base, MaxReplyBytes)
	}
	var res ShardResult
	if err := json.Unmarshal(data, &res); err != nil {
		return nil, fmt.Errorf("dist: worker %s: decoding reply: %w", t.base, err)
	}
	return &res, nil
}

// Ping implements Transport.
func (t *HTTP) Ping(ctx context.Context) error {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, t.base+healthPath, nil)
	if err != nil {
		return err
	}
	hres, err := t.client.Do(hreq)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, io.LimitReader(hres.Body, 1024))
	hres.Body.Close()
	if hres.StatusCode != http.StatusOK {
		return fmt.Errorf("dist: worker %s: health HTTP %d", t.base, hres.StatusCode)
	}
	return nil
}

// Close implements Transport.
func (t *HTTP) Close() error {
	t.client.CloseIdleConnections()
	return nil
}

// WorkerOptions tunes the worker daemon's backpressure. The zero value
// disables every limit (accept everything, the pre-overload behavior).
type WorkerOptions struct {
	// MaxConcurrent bounds shards executing simultaneously; MaxQueue
	// more may wait for a slot (the bounded accept queue). A shard
	// arriving past both is answered 429 + Retry-After immediately.
	MaxConcurrent int
	MaxQueue      int
	// MaxInflightBytes bounds the summed request body bytes of admitted
	// shards — per-request memory accounting, so a burst of huge shard
	// requests cannot OOM the worker. Requests without a Content-Length
	// are charged one byte.
	MaxInflightBytes int64
	// RetryAfter is the hint sent with 429 replies (default 1s; HTTP
	// Retry-After has whole-second granularity).
	RetryAfter time.Duration
	// Metrics receives worker-side telemetry (nil disables).
	Metrics *obs.Registry
	// Tracer, when set, opens a remote child span per shard executed
	// under an X-Gpustl-Trace header, so worker-side simulation time is
	// visible inside the submitting campaign's merged trace.
	Tracer *obs.Tracer
	// Logf receives one line per shard served (nil = silent).
	Logf func(format string, args ...any)
}

// WorkerHandler is the worker daemon's http.Handler, with the graceful
// drain machinery cmd/stlworker drives on SIGTERM: StartDrain makes the
// worker reject new shards with a retryable 503 (the coordinator
// redistributes them without charging a failure) and answer heartbeats
// unhealthy (so it stops being picked), while in-flight shards run to
// completion; DrainWait blocks until the last one has been served.
// With WorkerOptions limits it also pushes back under load: a saturated
// worker answers 429 + Retry-After, stays live on /livez, and reports
// not-ready on /readyz.
type WorkerHandler struct {
	mux      *http.ServeMux
	draining atomic.Bool
	inflight sync.WaitGroup
	// executing counts shards past admission and actually simulating —
	// the in_flight number /readyz reports.
	executing atomic.Int64
	slots     *overload.Admission // nil = unlimited concurrency
	bytes     *overload.Admission // nil = unlimited in-flight bytes
}

// QueueDepth reports shards waiting in the bounded accept queue (0
// when the worker runs unlimited).
func (h *WorkerHandler) QueueDepth() int {
	if h.slots == nil {
		return 0
	}
	return h.slots.QueueLen()
}

// Executing reports shards currently simulating.
func (h *WorkerHandler) Executing() int { return int(h.executing.Load()) }

// ServeHTTP implements http.Handler.
func (h *WorkerHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) { h.mux.ServeHTTP(w, r) }

// StartDrain flips the worker into draining mode: new shards are
// rejected retryably, heartbeats answer unhealthy, in-flight shards
// keep running.
func (h *WorkerHandler) StartDrain() { h.draining.Store(true) }

// Draining reports whether StartDrain has been called.
func (h *WorkerHandler) Draining() bool { return h.draining.Load() }

// DrainWait blocks until every in-flight shard accepted before
// StartDrain has been served.
func (h *WorkerHandler) DrainWait() { h.inflight.Wait() }

// Ready reports whether the worker should receive new shards: not
// draining and (when limited) not saturated past its accept queue.
// /readyz serves this; /healthz deliberately does not consider
// saturation — a heartbeat that declared a busy worker dead would
// cancel the very shards it is busy computing.
func (h *WorkerHandler) Ready() bool {
	if h.draining.Load() {
		return false
	}
	if h.slots != nil && h.slots.QueueLen() > 0 {
		return false
	}
	return true
}

// NewHandler returns the worker daemon's handler: POST /simulate
// executes a shard on an in-process Local executor (honoring the
// request's context, so a coordinator-side cancel aborts the
// simulation), GET /healthz answers heartbeats. logf (nil = silent)
// receives one line per shard served.
func NewHandler(name string, logf func(format string, args ...any)) http.Handler {
	return NewHandlerMetrics(name, logf, nil)
}

// NewHandlerMetrics is NewHandler with worker-side telemetry: per-shard
// counters (served, failed, canceled, faults, patterns, detections) and
// a service-latency histogram land in m (nil disables recording), ready
// to be exposed through the daemon's -metrics-addr endpoint.
func NewHandlerMetrics(name string, logf func(format string, args ...any), m *obs.Registry) *WorkerHandler {
	return NewHandlerOptions(name, WorkerOptions{Metrics: m, Logf: logf})
}

// NewHandlerOptions is the fully tunable constructor: NewHandlerMetrics
// plus the WorkerOptions backpressure limits.
func NewHandlerOptions(name string, o WorkerOptions) *WorkerHandler {
	logf := o.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	m := o.Metrics
	if o.RetryAfter <= 0 {
		o.RetryAfter = time.Second
	}
	// The executor carries the worker-side failpoint sites (reply
	// corruption, Byzantine mutation, delays): one atomic load each when
	// disarmed, so production workers pay nothing.
	exec := WithFailpoints(NewLocal(name))
	h := &WorkerHandler{mux: http.NewServeMux()}
	if o.MaxConcurrent > 0 {
		h.slots = overload.NewAdmission(overload.AdmissionOptions{
			Capacity: int64(o.MaxConcurrent), MaxQueue: o.MaxQueue,
			Metrics: m, Name: "worker_slots",
		})
	}
	if o.MaxInflightBytes > 0 {
		h.bytes = overload.NewAdmission(overload.AdmissionOptions{
			Capacity: o.MaxInflightBytes,
			Metrics:  m, Name: "worker_bytes",
		})
	}
	busy := func(w http.ResponseWriter, why string) {
		m.Counter("gpustl_worker_busy_replies_total").Inc()
		secs := int(o.RetryAfter.Round(time.Second) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		http.Error(w, "worker saturated ("+why+"), shard not accepted", http.StatusTooManyRequests)
	}
	h.mux.HandleFunc(healthPath, func(w http.ResponseWriter, r *http.Request) {
		m.Counter("gpustl_worker_pings_total").Inc()
		if h.draining.Load() {
			w.Header().Set(drainingHeader, "1")
			http.Error(w, "worker draining", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, "{\"worker\":%q}\n", name)
	})
	h.mux.HandleFunc(livezPath, func(w http.ResponseWriter, r *http.Request) {
		// Live as long as the process serves HTTP — draining and
		// saturation are routing concerns, not reasons to be killed.
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, "{\"worker\":%q,\"live\":true}\n", name)
	})
	h.mux.HandleFunc(readyzPath, func(w http.ResponseWriter, r *http.Request) {
		// Both the 200 and the 503 carry the same JSON body — queue
		// depth, in-flight count, draining flag — so orchestrators and
		// humans get the whole routing picture either way.
		ready := h.Ready()
		reason := ""
		if !ready {
			reason = "saturated"
			if h.draining.Load() {
				reason = "draining"
				w.Header().Set(drainingHeader, "1")
			}
		}
		body, _ := json.Marshal(struct {
			Worker     string `json:"worker"`
			Ready      bool   `json:"ready"`
			Draining   bool   `json:"draining"`
			QueueDepth int    `json:"queue_depth"`
			InFlight   int    `json:"in_flight"`
			Reason     string `json:"reason,omitempty"`
		}{name, ready, h.draining.Load(), h.QueueDepth(), h.Executing(), reason})
		w.Header().Set("Content-Type", "application/json")
		if !ready {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		w.Write(append(body, '\n'))
	})
	h.mux.HandleFunc(simulatePath, func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		h.inflight.Add(1)
		defer h.inflight.Done()
		if h.draining.Load() {
			m.Counter("gpustl_worker_shards_rejected_total").Inc()
			w.Header().Set(drainingHeader, "1")
			http.Error(w, "worker draining, shard not accepted", http.StatusServiceUnavailable)
			return
		}
		// Memory accounting first — it never queues, so an oversized
		// burst bounces in microseconds — then the concurrency slot,
		// which may wait briefly in the bounded accept queue.
		cost := r.ContentLength
		if cost < 1 {
			cost = 1
		}
		relBytes, ok := h.bytes.TryAcquire(cost)
		if !ok {
			busy(w, "in-flight bytes")
			return
		}
		defer relBytes()
		relSlot, err := h.slots.Acquire(r.Context(), 1)
		if err != nil {
			busy(w, "accept queue full")
			return
		}
		defer relSlot()
		ctx := r.Context()
		if v := r.Header.Get(deadlineHeader); v != "" {
			ns, perr := strconv.ParseInt(v, 10, 64)
			if perr != nil {
				m.Counter("gpustl_worker_bad_requests_total").Inc()
				http.Error(w, "bad "+deadlineHeader+" header", http.StatusBadRequest)
				return
			}
			dl := time.Unix(0, ns)
			if !time.Now().Before(dl) {
				// The campaign already timed out: refuse before any work.
				m.Counter("gpustl_worker_expired_total").Inc()
				http.Error(w, "shard deadline already expired", http.StatusGatewayTimeout)
				return
			}
			var cancel context.CancelFunc
			ctx, cancel = context.WithDeadline(ctx, dl)
			defer cancel()
		}
		var req ShardRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			m.Counter("gpustl_worker_bad_requests_total").Inc()
			http.Error(w, fmt.Sprintf("bad shard request: %v", err), http.StatusBadRequest)
			return
		}
		var span *obs.Span
		if v := r.Header.Get(obs.TraceHeader); v != "" && o.Tracer != nil {
			// Join the submitting campaign's trace as a remote child of
			// the coordinator's client-side shard span. A garbled header
			// is ignored (counted), never fabricated into a trace.
			if sc, perr := obs.ParseTraceHeader(v); perr == nil {
				span = o.Tracer.StartRemote(sc, obs.KindShard,
					fmt.Sprintf("shard-exec:%d", req.Shard))
				span.Annotate("side", "worker")
				span.Annotate("worker", name)
				span.Annotate("attempt", fmt.Sprintf("%d", req.Attempt))
				ctx = obs.ContextWithSpan(ctx, span)
				defer span.End()
			} else {
				m.Counter("gpustl_worker_bad_trace_headers_total").Inc()
			}
		}
		h.executing.Add(1)
		defer h.executing.Add(-1)
		start := time.Now()
		res, err := exec.Simulate(ctx, &req)
		if err != nil {
			span.Annotate("error", err.Error())
			logf("shard %d attempt %d: %v", req.Shard, req.Attempt, err)
			status := http.StatusInternalServerError
			switch {
			case r.Context().Err() != nil:
				// The coordinator canceled (hedge lost, deadline, worker
				// declared dead): the reply will not be read anyway.
				status = http.StatusServiceUnavailable
				m.Counter("gpustl_worker_shards_canceled_total").Inc()
			case ctx.Err() != nil:
				// The propagated campaign deadline expired mid-shard.
				status = http.StatusGatewayTimeout
				m.Counter("gpustl_worker_expired_total").Inc()
			default:
				m.Counter("gpustl_worker_shard_errors_total").Inc()
			}
			http.Error(w, err.Error(), status)
			return
		}
		elapsed := time.Since(start)
		m.Counter("gpustl_worker_shards_total").Inc()
		m.Counter("gpustl_worker_faults_total").Add(uint64(len(req.Faults)))
		m.Counter("gpustl_worker_patterns_total").Add(uint64(len(req.Stream)))
		m.Counter("gpustl_worker_detections_total").Add(uint64(len(res.Detections)))
		m.Histogram("gpustl_worker_shard_seconds", obs.DefLatencyBuckets()).Observe(elapsed.Seconds())
		logf("shard %d attempt %d: %d faults, %d patterns -> %d detections (%v)",
			req.Shard, req.Attempt, len(req.Faults), len(req.Stream),
			len(res.Detections), elapsed.Round(time.Millisecond))
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(res); err != nil {
			logf("shard %d attempt %d: writing reply: %v", req.Shard, req.Attempt, err)
		}
	})
	return h
}
