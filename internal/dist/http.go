package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gpustl/internal/obs"
)

// Wire paths of the worker daemon.
const (
	simulatePath = "/simulate"
	healthPath   = "/healthz"
)

// drainingHeader marks a worker's 503 as "draining, retry elsewhere"
// rather than a failure: the worker received SIGTERM and is finishing
// its in-flight shards.
const drainingHeader = "X-Gpustl-Draining"

// ErrUnavailable marks a dispatch rejected by a draining worker. The
// coordinator redistributes the shard without charging a failed attempt
// — a clean shutdown is scheduling, not an error.
var ErrUnavailable = errors.New("dist: worker draining, shard not accepted")

// MaxReplyBytes caps how much of a worker's /simulate reply the client
// will read. A shard result is detections over at most a few thousand
// faults — far below this — so a larger reply means a broken or hostile
// worker, and the client fails that shard (the retry/hedge machinery
// takes over) instead of buffering without bound. Variable so tests can
// shrink it.
var MaxReplyBytes int64 = 64 << 20

// HTTP is the client-side Transport speaking JSON to a cmd/stlworker
// daemon: POST /simulate with a ShardRequest body, GET /healthz for
// heartbeats. Request contexts propagate cancellation, so a hedged
// loser or a dead worker's dispatch aborts the HTTP round trip.
type HTTP struct {
	base   string
	client *http.Client
}

// NewHTTP creates a transport for a worker at addr ("host:port" or a
// full http:// URL). The client enforces no global timeout — per-shard
// deadlines come from the dispatch context.
func NewHTTP(addr string) *HTTP {
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return &HTTP{base: strings.TrimRight(base, "/"), client: &http.Client{}}
}

// Name implements Transport: workers are identified by their base URL.
func (t *HTTP) Name() string { return t.base }

// Simulate implements Transport.
func (t *HTTP) Simulate(ctx context.Context, req *ShardRequest) (*ShardResult, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("dist: encoding shard %d: %w", req.Shard, err)
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, t.base+simulatePath, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hres, err := t.client.Do(hreq)
	if err != nil {
		return nil, fmt.Errorf("dist: worker %s: %w", t.base, err)
	}
	defer hres.Body.Close()
	if hres.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(hres.Body, 4096))
		if hres.StatusCode == http.StatusServiceUnavailable && hres.Header.Get(drainingHeader) != "" {
			return nil, fmt.Errorf("dist: worker %s: %w", t.base, ErrUnavailable)
		}
		return nil, fmt.Errorf("dist: worker %s: HTTP %d: %s",
			t.base, hres.StatusCode, strings.TrimSpace(string(msg)))
	}
	// Read through a hard size limit: one extra byte past the cap
	// distinguishes "too big" from a reply that exactly fits, and a
	// truncated body surfaces as a JSON error rather than a hang.
	lr := &io.LimitedReader{R: hres.Body, N: MaxReplyBytes + 1}
	data, err := io.ReadAll(lr)
	if err != nil {
		return nil, fmt.Errorf("dist: worker %s: reading reply: %w", t.base, err)
	}
	if int64(len(data)) > MaxReplyBytes {
		return nil, fmt.Errorf("dist: worker %s: reply exceeds %d-byte limit", t.base, MaxReplyBytes)
	}
	var res ShardResult
	if err := json.Unmarshal(data, &res); err != nil {
		return nil, fmt.Errorf("dist: worker %s: decoding reply: %w", t.base, err)
	}
	return &res, nil
}

// Ping implements Transport.
func (t *HTTP) Ping(ctx context.Context) error {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, t.base+healthPath, nil)
	if err != nil {
		return err
	}
	hres, err := t.client.Do(hreq)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, io.LimitReader(hres.Body, 1024))
	hres.Body.Close()
	if hres.StatusCode != http.StatusOK {
		return fmt.Errorf("dist: worker %s: health HTTP %d", t.base, hres.StatusCode)
	}
	return nil
}

// Close implements Transport.
func (t *HTTP) Close() error {
	t.client.CloseIdleConnections()
	return nil
}

// WorkerHandler is the worker daemon's http.Handler, with the graceful
// drain machinery cmd/stlworker drives on SIGTERM: StartDrain makes the
// worker reject new shards with a retryable 503 (the coordinator
// redistributes them without charging a failure) and answer heartbeats
// unhealthy (so it stops being picked), while in-flight shards run to
// completion; DrainWait blocks until the last one has been served.
type WorkerHandler struct {
	mux      *http.ServeMux
	draining atomic.Bool
	inflight sync.WaitGroup
}

// ServeHTTP implements http.Handler.
func (h *WorkerHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) { h.mux.ServeHTTP(w, r) }

// StartDrain flips the worker into draining mode: new shards are
// rejected retryably, heartbeats answer unhealthy, in-flight shards
// keep running.
func (h *WorkerHandler) StartDrain() { h.draining.Store(true) }

// Draining reports whether StartDrain has been called.
func (h *WorkerHandler) Draining() bool { return h.draining.Load() }

// DrainWait blocks until every in-flight shard accepted before
// StartDrain has been served.
func (h *WorkerHandler) DrainWait() { h.inflight.Wait() }

// NewHandler returns the worker daemon's handler: POST /simulate
// executes a shard on an in-process Local executor (honoring the
// request's context, so a coordinator-side cancel aborts the
// simulation), GET /healthz answers heartbeats. logf (nil = silent)
// receives one line per shard served.
func NewHandler(name string, logf func(format string, args ...any)) http.Handler {
	return NewHandlerMetrics(name, logf, nil)
}

// NewHandlerMetrics is NewHandler with worker-side telemetry: per-shard
// counters (served, failed, canceled, faults, patterns, detections) and
// a service-latency histogram land in m (nil disables recording), ready
// to be exposed through the daemon's -metrics-addr endpoint.
func NewHandlerMetrics(name string, logf func(format string, args ...any), m *obs.Registry) *WorkerHandler {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	// The executor carries the worker-side failpoint sites (reply
	// corruption, Byzantine mutation, delays): one atomic load each when
	// disarmed, so production workers pay nothing.
	exec := WithFailpoints(NewLocal(name))
	h := &WorkerHandler{mux: http.NewServeMux()}
	h.mux.HandleFunc(healthPath, func(w http.ResponseWriter, r *http.Request) {
		m.Counter("gpustl_worker_pings_total").Inc()
		if h.draining.Load() {
			w.Header().Set(drainingHeader, "1")
			http.Error(w, "worker draining", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, "{\"worker\":%q}\n", name)
	})
	h.mux.HandleFunc(simulatePath, func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		h.inflight.Add(1)
		defer h.inflight.Done()
		if h.draining.Load() {
			m.Counter("gpustl_worker_shards_rejected_total").Inc()
			w.Header().Set(drainingHeader, "1")
			http.Error(w, "worker draining, shard not accepted", http.StatusServiceUnavailable)
			return
		}
		var req ShardRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			m.Counter("gpustl_worker_bad_requests_total").Inc()
			http.Error(w, fmt.Sprintf("bad shard request: %v", err), http.StatusBadRequest)
			return
		}
		start := time.Now()
		res, err := exec.Simulate(r.Context(), &req)
		if err != nil {
			logf("shard %d attempt %d: %v", req.Shard, req.Attempt, err)
			status := http.StatusInternalServerError
			if r.Context().Err() != nil {
				// The coordinator canceled (hedge lost, deadline, worker
				// declared dead): the reply will not be read anyway.
				status = http.StatusServiceUnavailable
				m.Counter("gpustl_worker_shards_canceled_total").Inc()
			} else {
				m.Counter("gpustl_worker_shard_errors_total").Inc()
			}
			http.Error(w, err.Error(), status)
			return
		}
		elapsed := time.Since(start)
		m.Counter("gpustl_worker_shards_total").Inc()
		m.Counter("gpustl_worker_faults_total").Add(uint64(len(req.Faults)))
		m.Counter("gpustl_worker_patterns_total").Add(uint64(len(req.Stream)))
		m.Counter("gpustl_worker_detections_total").Add(uint64(len(res.Detections)))
		m.Histogram("gpustl_worker_shard_seconds", obs.DefLatencyBuckets()).Observe(elapsed.Seconds())
		logf("shard %d attempt %d: %d faults, %d patterns -> %d detections (%v)",
			req.Shard, req.Attempt, len(req.Faults), len(req.Stream),
			len(res.Detections), elapsed.Round(time.Millisecond))
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(res); err != nil {
			logf("shard %d attempt %d: writing reply: %v", req.Shard, req.Attempt, err)
		}
	})
	return h
}
