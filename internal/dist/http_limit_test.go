package dist

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// fakeWorker serves a fixed /simulate reply body for transport-level
// hostile-reply tests.
func fakeWorker(t *testing.T, body []byte, truncateAt int) *HTTP {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != simulatePath {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if truncateAt > 0 && truncateAt < len(body) {
			// Advertise the full length, send a prefix, then die: the
			// client sees a truncated body mid-JSON.
			w.Header().Set("Content-Length", itoa(len(body)))
			w.Write(body[:truncateAt])
			if f, ok := w.(http.Flusher); ok {
				f.Flush()
			}
			panic(http.ErrAbortHandler)
		}
		w.Write(body)
	}))
	t.Cleanup(srv.Close)
	return NewHTTP(srv.URL)
}

func itoa(n int) string {
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

func TestSimulateRejectsTruncatedReply(t *testing.T) {
	body := []byte(`{"shard":1,"attempt":1,"worker":"w","detections":[]}`)
	tr := fakeWorker(t, body, len(body)/2)
	_, err := tr.Simulate(context.Background(), &ShardRequest{Shard: 1, Attempt: 1})
	if err == nil {
		t.Fatal("truncated reply accepted")
	}
	// A torn body fails at the transport read or the JSON decode — either
	// way the shard errors and the retry machinery takes over.
	if !strings.Contains(err.Error(), "reply") {
		t.Errorf("error does not blame the reply: %v", err)
	}
}

func TestSimulateRejectsOversizedReply(t *testing.T) {
	old := MaxReplyBytes
	MaxReplyBytes = 64
	defer func() { MaxReplyBytes = old }()

	huge := `{"shard":1,"attempt":1,"worker":"` + strings.Repeat("w", 200) + `","detections":[]}`
	tr := fakeWorker(t, []byte(huge), 0)
	_, err := tr.Simulate(context.Background(), &ShardRequest{Shard: 1, Attempt: 1})
	if err == nil || !strings.Contains(err.Error(), "exceeds 64-byte limit") {
		t.Fatalf("oversized reply accepted: %v", err)
	}
}

func TestSimulateAcceptsReplyAtLimit(t *testing.T) {
	body := []byte(`{"shard":1,"attempt":1,"worker":"w","detections":[]}`)
	old := MaxReplyBytes
	MaxReplyBytes = int64(len(body))
	defer func() { MaxReplyBytes = old }()

	tr := fakeWorker(t, body, 0)
	res, err := tr.Simulate(context.Background(), &ShardRequest{Shard: 1, Attempt: 1})
	if err != nil {
		t.Fatalf("exact-limit reply rejected: %v", err)
	}
	if res.Shard != 1 || res.Worker != "w" {
		t.Fatalf("reply: %+v", res)
	}
}
