package dist_test

import (
	"reflect"
	"testing"
	"time"

	"gpustl/internal/circuits"
	"gpustl/internal/core"
	"gpustl/internal/dist"
	"gpustl/internal/fault"
	"gpustl/internal/gpu"
	"gpustl/internal/ptpgen"
)

// TestCompactorWithDistSimulator runs the full five-stage compaction of
// a DU PTP twice — in-process and through a distributed coordinator
// (with one chaotic worker in the fleet) — and requires identical
// results: same compacted program, same FC numbers, same labeling
// counts. This is the contract core.Options.Simulator is wired on.
func TestCompactorWithDistSimulator(t *testing.T) {
	m, err := circuits.Build(circuits.ModuleDU, 0)
	if err != nil {
		t.Fatal(err)
	}
	fc := fault.NewCampaign(m)
	fc.SampleFaults(1500, 2)
	faults := fc.Faults()
	cfg := gpu.DefaultConfig()
	p := ptpgen.IMM(40, 3)

	serial := core.New(cfg, m, faults, core.Options{})
	want, err := serial.CompactPTP(p)
	if err != nil {
		t.Fatal(err)
	}

	co, err := dist.New(dist.Options{
		MaxAttempts:       8,
		BaseBackoff:       2 * time.Millisecond,
		MaxBackoff:        25 * time.Millisecond,
		HeartbeatInterval: 50 * time.Millisecond,
		Shards:            6,
		Seed:              3,
	},
		dist.NewLocal("w1"),
		dist.NewChaos(dist.NewLocal("w2"), dist.ChaosOptions{
			Seed: 7, DropProb: 0.3, CorruptProb: 0.3,
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()

	distd := core.New(cfg, m, faults, core.Options{Simulator: co})
	got, err := distd.CompactPTP(p)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(got.Compacted.Prog, want.Compacted.Prog) {
		t.Fatalf("compacted programs differ: %d vs %d instructions",
			len(got.Compacted.Prog), len(want.Compacted.Prog))
	}
	if got.OrigFC != want.OrigFC || got.CompFC != want.CompFC {
		t.Fatalf("FC differs: %.4f->%.4f vs %.4f->%.4f",
			got.OrigFC, got.CompFC, want.OrigFC, want.CompFC)
	}
	if got.Essential != want.Essential || got.Unessential != want.Unessential {
		t.Fatalf("labeling differs: %d/%d vs %d/%d",
			got.Essential, got.Unessential, want.Essential, want.Unessential)
	}
	if got.DetectedThisRun != want.DetectedThisRun {
		t.Fatalf("DetectedThisRun %d vs %d", got.DetectedThisRun, want.DetectedThisRun)
	}
	if serial.Campaign.Detected() != distd.Campaign.Detected() {
		t.Fatalf("shared campaigns diverged: %d vs %d",
			serial.Campaign.Detected(), distd.Campaign.Detected())
	}
}
