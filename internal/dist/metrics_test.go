package dist

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"gpustl/internal/fault"
	"gpustl/internal/obs"
)

// TestHedgeLoserAttribution pins down that a hedged loser's cancellation
// is attributed as a hedge loss — not dropped, and never inflated into a
// retry: the loser failed because the coordinator canceled it, not
// because the worker misbehaved.
func TestHedgeLoserAttribution(t *testing.T) {
	m := spModule(t)
	stream := randomSPStream(rand.New(rand.NewSource(54)), m.Lanes, 256)

	slow := NewChaos(NewLocal("slow"), ChaosOptions{
		Seed: 201, DelayProb: 1.0, Delay: 10 * time.Second,
	})
	reg := obs.NewRegistry()
	opt := fastOptions()
	opt.Shards = 1 // the single shard lands on the slow worker first
	opt.ShardBaseTimeout = 20 * time.Second
	opt.ShardPatternTimeout = time.Microsecond
	opt.HedgeFraction = 0.002
	opt.Metrics = reg
	co, err := New(opt, slow, NewLocal("fast"))
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()

	camp := newSPCampaign(t, m, 500, 53)
	res, err := co.Run(context.Background(), camp, stream, fault.SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.Hedges == 0 {
		t.Fatalf("straggler was never hedged: %+v", st)
	}
	if st.HedgeWins == 0 {
		t.Fatalf("hedged duplicate settled the shard but HedgeWins = 0: %+v", st)
	}
	if st.HedgeLosses == 0 {
		t.Fatalf("canceled loser was dropped instead of attributed: %+v", st)
	}
	if st.Retries != 0 {
		t.Fatalf("loser cancellation inflated Retries to %d: %+v", st.Retries, st)
	}
	if st.DuplicateReplies != 0 {
		t.Fatalf("canceled loser miscounted as a duplicate reply: %+v", st)
	}

	// The registry must mirror Stats exactly: a scrape and the Result
	// tell the same story.
	snap := reg.Snapshot()
	for name, want := range map[string]int{
		"gpustl_dist_runs_total":          1,
		"gpustl_dist_dispatches_total":    st.Dispatches,
		"gpustl_dist_retries_total":       st.Retries,
		"gpustl_dist_hedges_total":        st.Hedges,
		"gpustl_dist_hedge_wins_total":    st.HedgeWins,
		"gpustl_dist_hedge_losses_total":  st.HedgeLosses,
		"gpustl_dist_preempted_total":     st.Preempted,
		"gpustl_dist_worker_deaths_total": st.WorkerDeaths,
	} {
		if got := snap.Counters[name]; got != uint64(want) {
			t.Errorf("%s = %d, want %d (stats %+v)", name, got, want, st)
		}
	}
	if up := snap.Gauges[`gpustl_dist_worker_up{worker="fast"}`]; up != 1 {
		t.Errorf("fast worker up gauge = %v, want 1", up)
	}
	hs, ok := snap.Histograms[`gpustl_dist_shard_seconds{worker="fast"}`]
	if !ok || hs.Count == 0 {
		t.Errorf("winning worker has no shard latency observation: %+v", snap.Histograms)
	}
}

// TestWorkerDownPreemptionAttribution pins down that shards canceled by
// a dead-worker declaration count as preemptions, not failures.
func TestWorkerDownPreemptionAttribution(t *testing.T) {
	m := spModule(t)
	stream := randomSPStream(rand.New(rand.NewSource(53)), m.Lanes, 512)

	hang := &hangTransport{name: "silent"}
	hang.dead.Store(true)
	opt := fastOptions()
	opt.Shards = 2
	opt.HedgeFraction = -1
	co, err := New(opt, hang, NewLocal("survivor"))
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()

	camp := newSPCampaign(t, m, 800, 47)
	res, err := co.Run(context.Background(), camp, stream, fault.SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.WorkerDeaths != 1 || st.Redispatches == 0 {
		t.Fatalf("dead worker not handled: %+v", st)
	}
	if st.Preempted == 0 {
		t.Fatalf("dead worker's canceled attempts were not attributed as preemptions: %+v", st)
	}
	if st.Retries != 0 {
		t.Fatalf("preemption inflated Retries to %d: %+v", st.Retries, st)
	}
}
