package dist

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"gpustl/internal/failpoint"
	"gpustl/internal/fault"
	"gpustl/internal/obs"
	"gpustl/internal/overload"
)

// failNTransport fails its first n Simulate calls with a genuine error
// (n < 0: fails forever), succeeding after. Pings always succeed — the
// worker is alive, just broken.
type failNTransport struct {
	inner Transport
	mu    sync.Mutex
	n     int
}

func (f *failNTransport) Name() string                   { return f.inner.Name() }
func (f *failNTransport) Close() error                   { return f.inner.Close() }
func (f *failNTransport) Ping(ctx context.Context) error { return f.inner.Ping(ctx) }

func (f *failNTransport) Simulate(ctx context.Context, req *ShardRequest) (*ShardResult, error) {
	f.mu.Lock()
	fail := f.n != 0
	if f.n > 0 {
		f.n--
	}
	f.mu.Unlock()
	if fail {
		return nil, errors.New("dist: test: injected worker failure")
	}
	return f.inner.Simulate(ctx, req)
}

// TestBusyRerouteNoFailureCharge pins down the 429 contract: a
// saturated worker's bounce ("dist.reply.busy") reroutes the shard with
// no failure charge — Retries stays 0, the merge stays byte-identical.
func TestBusyRerouteNoFailureCharge(t *testing.T) {
	m := spModule(t)
	stream := randomSPStream(rand.New(rand.NewSource(61)), m.Lanes, 256)

	serial := newSPCampaign(t, m, 500, 61)
	wantRep := serial.Simulate(stream, fault.SimOptions{Workers: 1})

	if err := failpoint.Enable("dist.reply.busy", failpoint.Config{
		Kind: failpoint.KindError, Delay: 2 * time.Millisecond, Times: 2,
	}); err != nil {
		t.Fatal(err)
	}
	defer failpoint.Disable("dist.reply.busy")

	brown := WithFailpoints(NewLocal("brown"), "dist.reply.busy")
	co, err := New(fastOptions(), brown, NewLocal("steady"))
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	camp := newSPCampaign(t, m, 500, 61)
	res, err := co.Run(context.Background(), camp, stream, fault.SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	assertSameReport(t, res.Report, wantRep)
	st := res.Stats
	if res.Degraded() {
		t.Fatalf("busy bounces degraded the run: %+v", res.ShardErrors)
	}
	if st.BusyReplies == 0 {
		t.Fatalf("brownout never bounced a dispatch: %+v", st)
	}
	if st.Retries != 0 {
		t.Fatalf("busy bounce charged as a retry: %+v", st)
	}
	if st.BreakerOpens != 0 {
		t.Fatalf("busy bounce tripped a breaker: %+v", st)
	}
}

// TestRetryBudgetExhaustion pins down fail-fast under a spent budget:
// with every worker broken and one banked retry token, the coordinator
// stops retrying long before MaxAttempts and degrades instead of
// storming the fleet.
func TestRetryBudgetExhaustion(t *testing.T) {
	m := spModule(t)
	stream := randomSPStream(rand.New(rand.NewSource(62)), m.Lanes, 128)

	opt := fastOptions()
	opt.MaxAttempts = 8
	opt.RetryBudget = 0.001 // effectively: just the banked burst
	opt.RetryBurst = 1
	opt.BreakerThreshold = -1 // isolate the budget from breaker routing
	opt.HedgeFraction = -1
	co, err := New(opt,
		&failNTransport{inner: NewLocal("dead1"), n: -1},
		&failNTransport{inner: NewLocal("dead2"), n: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	camp := newSPCampaign(t, m, 300, 62)
	res, err := co.Run(context.Background(), camp, stream, fault.SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if !res.Degraded() {
		t.Fatalf("broken fleet did not degrade: %+v", st)
	}
	if st.RetryDenied == 0 {
		t.Fatalf("budget never denied a retry: %+v", st)
	}
	if st.Retries > 1 {
		t.Fatalf("retries %d exceed the 1-token budget: %+v", st.Retries, st)
	}
	found := false
	for _, e := range res.ShardErrors {
		if strings.Contains(e, "retry budget exhausted") {
			found = true
		}
	}
	if !found {
		t.Fatalf("shard errors do not name the budget: %v", res.ShardErrors)
	}
}

// TestBreakerTripsAndRoutesAround pins down the breaker lifecycle in
// the coordinator: a persistently failing worker trips its breaker,
// later work routes around it, the merge stays byte-identical, and the
// open state persists into the next Run on the same coordinator.
func TestBreakerTripsAndRoutesAround(t *testing.T) {
	m := spModule(t)
	stream := randomSPStream(rand.New(rand.NewSource(63)), m.Lanes, 256)

	serial := newSPCampaign(t, m, 600, 63)
	wantRep := serial.Simulate(stream, fault.SimOptions{Workers: 1})

	reg := obs.NewRegistry()
	opt := fastOptions()
	opt.MaxAttempts = 8
	opt.BreakerThreshold = 2
	opt.BreakerOpenFor = time.Minute // stays open for the whole test
	opt.HedgeFraction = -1
	opt.Metrics = reg
	co, err := New(opt, &failNTransport{inner: NewLocal("sick"), n: -1}, NewLocal("healthy"))
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	camp := newSPCampaign(t, m, 600, 63)
	res, err := co.Run(context.Background(), camp, stream, fault.SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	assertSameReport(t, res.Report, wantRep)
	if res.Degraded() {
		t.Fatalf("healthy worker should have absorbed everything: %+v", res.ShardErrors)
	}
	if res.Stats.BreakerOpens < 1 {
		t.Fatalf("sick worker never tripped its breaker: %+v", res.Stats)
	}
	snap := reg.Snapshot()
	if g := snap.Gauges[`gpustl_dist_breaker_state{worker="sick"}`]; g != 1 {
		t.Errorf("sick breaker-state gauge = %v, want 1 (open)", g)
	}
	if g := snap.Gauges[`gpustl_dist_breaker_state{worker="healthy"}`]; g != 0 {
		t.Errorf("healthy breaker-state gauge = %v, want 0 (closed)", g)
	}
	if got := snap.Counters["gpustl_dist_breaker_opens_total"]; got != uint64(res.Stats.BreakerOpens) {
		t.Errorf("breaker opens counter = %d, want %d", got, res.Stats.BreakerOpens)
	}

	// Second run on the same coordinator: the breaker is still open, so
	// the sick worker is never dispatched to — zero failures, zero new
	// trips (BreakerOpens is a per-run delta).
	camp2 := newSPCampaign(t, m, 400, 64)
	res2, err := co.Run(context.Background(), camp2, stream, fault.SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Degraded() || res2.Stats.Retries != 0 || res2.Stats.BreakerOpens != 0 {
		t.Fatalf("open breaker not honored across runs: %+v", res2.Stats)
	}
}

// TestRunShedByAdmission pins down the coordinator-level admission
// gate: a saturated pool sheds the whole Run with ErrOverloaded before
// anything is dispatched, and a freed pool admits the retry.
func TestRunShedByAdmission(t *testing.T) {
	m := spModule(t)
	stream := randomSPStream(rand.New(rand.NewSource(65)), m.Lanes, 128)

	pool := overload.NewAdmission(overload.AdmissionOptions{Capacity: 1, MaxQueue: 0})
	opt := fastOptions()
	opt.Admission = pool
	co, err := New(opt, NewLocal("w1"))
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()

	hold, ok := pool.TryAcquire(1)
	if !ok {
		t.Fatal("could not pre-occupy the pool")
	}
	camp := newSPCampaign(t, m, 300, 65)
	if _, err := co.Run(context.Background(), camp, stream, fault.SimOptions{}); !errors.Is(err, overload.ErrOverloaded) {
		t.Fatalf("want ErrOverloaded, got %v", err)
	}
	if camp.Detected() != 0 {
		t.Fatal("shed run committed detections")
	}
	hold()
	res, err := co.Run(context.Background(), camp, stream, fault.SimOptions{})
	if err != nil {
		t.Fatalf("freed pool should admit: %v", err)
	}
	if res.Degraded() {
		t.Fatalf("admitted run degraded: %+v", res.ShardErrors)
	}
}

// TestDeadlineHeaderWorkerSide pins down X-Gpustl-Deadline server
// handling: an expired deadline is refused with 504 before any work, a
// malformed one with 400, and a future one still simulates.
func TestDeadlineHeaderWorkerSide(t *testing.T) {
	m := spModule(t)
	stream := randomSPStream(rand.New(rand.NewSource(66)), m.Lanes, 64)
	camp := newSPCampaign(t, m, 100, 66)
	reg := obs.NewRegistry()
	srv := httptest.NewServer(NewHandlerOptions("dlw", WorkerOptions{Metrics: reg}))
	defer srv.Close()

	body := func() io.Reader {
		data, err := marshalShardRequest(&ShardRequest{
			Shard: 0, Attempt: 0, Module: m.Kind, Lanes: m.Lanes,
			Faults: camp.Faults(), Stream: stream,
		})
		if err != nil {
			t.Fatal(err)
		}
		return strings.NewReader(string(data))
	}
	post := func(deadline string) *http.Response {
		req, err := http.NewRequest(http.MethodPost, srv.URL+simulatePath, body())
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		if deadline != "" {
			req.Header.Set(deadlineHeader, deadline)
		}
		res, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { res.Body.Close() })
		return res
	}

	expired := strconv.FormatInt(time.Now().Add(-time.Second).UnixNano(), 10)
	if res := post(expired); res.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("expired deadline: HTTP %d, want 504", res.StatusCode)
	}
	if got := reg.Snapshot().Counters["gpustl_worker_expired_total"]; got != 1 {
		t.Fatalf("expired counter = %d, want 1", got)
	}
	if res := post("not-a-number"); res.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed deadline: HTTP %d, want 400", res.StatusCode)
	}
	future := strconv.FormatInt(time.Now().Add(time.Minute).UnixNano(), 10)
	if res := post(future); res.StatusCode != http.StatusOK {
		t.Fatalf("future deadline: HTTP %d, want 200", res.StatusCode)
	}
	if res := post(""); res.StatusCode != http.StatusOK {
		t.Fatalf("no deadline: HTTP %d, want 200", res.StatusCode)
	}
}

// TestDeadlineHeaderClientSide pins down that the HTTP transport stamps
// the dispatch deadline onto the request.
func TestDeadlineHeaderClientSide(t *testing.T) {
	var got atomic_string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got.store(r.Header.Get(deadlineHeader))
		http.Error(w, "go away", http.StatusInternalServerError)
	}))
	defer srv.Close()
	tr := NewHTTP(srv.URL)
	defer tr.Close()

	dl := time.Now().Add(time.Minute)
	ctx, cancel := context.WithDeadline(context.Background(), dl)
	defer cancel()
	_, _ = tr.Simulate(ctx, &ShardRequest{})
	ns, err := strconv.ParseInt(got.load(), 10, 64)
	if err != nil {
		t.Fatalf("deadline header %q unparsable: %v", got.load(), err)
	}
	if !time.Unix(0, ns).Equal(dl) {
		t.Fatalf("deadline header = %v, want %v", time.Unix(0, ns), dl)
	}

	got.store("unset")
	_, _ = tr.Simulate(context.Background(), &ShardRequest{})
	if got.load() != "" {
		t.Fatalf("deadline header sent without a ctx deadline: %q", got.load())
	}
}

type atomic_string struct {
	mu sync.Mutex
	s  string
}

func (a *atomic_string) store(s string) { a.mu.Lock(); a.s = s; a.mu.Unlock() }
func (a *atomic_string) load() string   { a.mu.Lock(); defer a.mu.Unlock(); return a.s }

// TestWorkerBackpressure429 pins down the saturated-worker contract:
// past the bounded accept queue the worker answers 429 + Retry-After,
// the client surfaces ErrBusy with the hint, /readyz flips not-ready,
// and /livez stays alive throughout.
func TestWorkerBackpressure429(t *testing.T) {
	m := spModule(t)
	stream := randomSPStream(rand.New(rand.NewSource(67)), m.Lanes, 64)
	camp := newSPCampaign(t, m, 100, 67)
	reg := obs.NewRegistry()
	h := NewHandlerOptions("bp", WorkerOptions{
		MaxConcurrent: 1, MaxQueue: 1, RetryAfter: 2 * time.Second, Metrics: reg,
	})
	srv := httptest.NewServer(h)
	defer srv.Close()
	tr := NewHTTP(srv.URL)
	defer tr.Close()
	req := &ShardRequest{
		Shard: 0, Attempt: 0, Module: m.Kind, Lanes: m.Lanes,
		Faults: camp.Faults(), Stream: stream,
	}

	status := func(path string) int {
		res, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, res.Body)
		res.Body.Close()
		return res.StatusCode
	}
	if status(readyzPath) != http.StatusOK || status(livezPath) != http.StatusOK {
		t.Fatal("fresh worker must be ready and live")
	}

	// Saturate: take the only slot, then fill the accept queue.
	relSlot, ok := h.slots.TryAcquire(1)
	if !ok {
		t.Fatal("could not occupy the slot")
	}
	waiterRel := make(chan func(), 1)
	go func() {
		rel, err := h.slots.Acquire(context.Background(), 1)
		if err != nil {
			t.Error(err)
		}
		waiterRel <- rel
	}()
	deadline := time.Now().Add(2 * time.Second)
	for h.slots.QueueLen() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("queue never filled")
		}
		time.Sleep(100 * time.Microsecond)
	}

	if status(readyzPath) != http.StatusServiceUnavailable {
		t.Fatal("saturated worker must be not-ready")
	}
	if status(livezPath) != http.StatusOK || status(healthPath) != http.StatusOK {
		t.Fatal("saturated worker must stay live and heartbeat-healthy")
	}
	_, err := tr.Simulate(context.Background(), req)
	if !errors.Is(err, ErrBusy) {
		t.Fatalf("saturated worker: want ErrBusy, got %v", err)
	}
	var be *BusyError
	if !errors.As(err, &be) || be.After != 2*time.Second {
		t.Fatalf("Retry-After hint lost: %v", err)
	}
	if got := reg.Snapshot().Counters["gpustl_worker_busy_replies_total"]; got != 1 {
		t.Fatalf("busy counter = %d, want 1", got)
	}

	// Free the capacity: ready again, and the shard goes through.
	relSlot()
	(<-waiterRel)()
	if status(readyzPath) != http.StatusOK {
		t.Fatal("freed worker must be ready again")
	}
	if _, err := tr.Simulate(context.Background(), req); err != nil {
		t.Fatalf("freed worker refused a shard: %v", err)
	}

	// Drain: not-ready (draining), still live.
	h.StartDrain()
	if status(readyzPath) != http.StatusServiceUnavailable || status(livezPath) != http.StatusOK {
		t.Fatal("draining worker must be not-ready but live")
	}
}

// TestWorkerMemoryAccounting429 pins down the per-request byte bound:
// with the in-flight byte budget spent, a new shard request bounces
// with 429 in microseconds (TryAcquire — the bytes pool never queues),
// and flows again once the budget frees. (A single request bigger than
// the whole budget is clamped and admitted alone, by design.)
func TestWorkerMemoryAccounting429(t *testing.T) {
	reg := obs.NewRegistry()
	h := NewHandlerOptions("tiny", WorkerOptions{MaxInflightBytes: 64, Metrics: reg})
	srv := httptest.NewServer(h)
	defer srv.Close()
	tr := NewHTTP(srv.URL)
	defer tr.Close()

	m := spModule(t)
	stream := randomSPStream(rand.New(rand.NewSource(68)), m.Lanes, 64)
	camp := newSPCampaign(t, m, 100, 68)
	req := &ShardRequest{Module: m.Kind, Lanes: m.Lanes, Faults: camp.Faults(), Stream: stream}

	hold, ok := h.bytes.TryAcquire(64) // spend the whole byte budget
	if !ok {
		t.Fatal("could not pre-fill the bytes pool")
	}
	_, err := tr.Simulate(context.Background(), req)
	if !errors.Is(err, ErrBusy) {
		t.Fatalf("full bytes pool: want ErrBusy, got %v", err)
	}
	shed := reg.Snapshot().Counters[`gpustl_overload_shed_total{pool="worker_bytes",reason="queue_full"}`]
	if shed != 1 {
		t.Fatalf("bytes-pool shed counter = %d, want 1", shed)
	}
	hold()
	if _, err := tr.Simulate(context.Background(), req); err != nil {
		t.Fatalf("freed bytes pool refused a shard: %v", err)
	}
}

// marshalShardRequest keeps the test body honest about the wire format
// without exporting anything new.
func marshalShardRequest(req *ShardRequest) ([]byte, error) {
	return json.Marshal(req)
}
