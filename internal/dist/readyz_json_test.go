package dist

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"gpustl/internal/obs"
)

// workerReadyz mirrors the /readyz JSON body.
type workerReadyz struct {
	Worker     string `json:"worker"`
	Ready      bool   `json:"ready"`
	Draining   bool   `json:"draining"`
	QueueDepth int    `json:"queue_depth"`
	InFlight   int    `json:"in_flight"`
	Reason     string `json:"reason"`
}

// TestWorkerReadyzJSONBody pins the /readyz contract: both the 200 and
// the 503 carry a JSON body with the worker's queue depth, in-flight
// count and draining flag, so orchestrators see the same routing
// picture on either side of ready.
func TestWorkerReadyzJSONBody(t *testing.T) {
	h := NewHandlerOptions("rz", WorkerOptions{
		MaxConcurrent: 1, MaxQueue: 1, Metrics: obs.NewRegistry(),
	})
	srv := httptest.NewServer(h)
	defer srv.Close()

	fetch := func() (int, workerReadyz) {
		res, err := http.Get(srv.URL + readyzPath)
		if err != nil {
			t.Fatal(err)
		}
		defer res.Body.Close()
		var body workerReadyz
		if err := json.NewDecoder(res.Body).Decode(&body); err != nil {
			t.Fatalf("/readyz did not return JSON: %v", err)
		}
		return res.StatusCode, body
	}

	code, body := fetch()
	if code != http.StatusOK {
		t.Fatalf("fresh worker /readyz: %d", code)
	}
	if !body.Ready || body.Draining || body.Worker != "rz" ||
		body.QueueDepth != 0 || body.InFlight != 0 || body.Reason != "" {
		t.Fatalf("fresh worker body %+v", body)
	}

	// Occupy the only slot: still ready (queue has room), depth visible.
	rel, ok := h.slots.TryAcquire(1)
	if !ok {
		t.Fatal("could not occupy the slot")
	}
	defer rel()

	h.StartDrain()
	code, body = fetch()
	if code != http.StatusServiceUnavailable {
		t.Fatalf("draining worker /readyz: %d", code)
	}
	if body.Ready || !body.Draining || body.Reason != "draining" {
		t.Fatalf("draining worker body %+v", body)
	}
}
