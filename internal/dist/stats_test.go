package dist

import (
	"context"
	"math/rand"
	"testing"

	"gpustl/internal/fault"
	"gpustl/internal/obs"
)

// TestShardStatsAggregation pins down the dedup-dictionary stats ride of
// the shard protocol: each worker reports its engine counters in the
// ShardResult, the coordinator sums accepted replies into
// Result.SimStats, and the metrics registry mirrors the totals.
func TestShardStatsAggregation(t *testing.T) {
	m := spModule(t)
	base := randomSPStream(rand.New(rand.NewSource(77)), m.Lanes, 128)
	// Repeat every pattern once (distinct clock cycle): half the stream
	// is duplicate stimulus the dictionary must fold away.
	stream := make([]fault.TimedPattern, 0, 2*len(base))
	for _, p := range base {
		stream = append(stream, p)
		dup := p
		dup.CC += 100000
		stream = append(stream, dup)
	}

	reg := obs.NewRegistry()
	opt := fastOptions()
	opt.Metrics = reg
	co, err := New(opt, NewLocal("w0"), NewLocal("w1"))
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()

	camp := newSPCampaign(t, m, 600, 31)
	res, err := co.Run(context.Background(), camp, stream, fault.SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded() {
		t.Fatalf("unexpected degraded run: %+v", res.ShardErrors)
	}

	ss := res.SimStats
	if ss.FaultEvals == 0 || ss.Blocks == 0 {
		t.Fatalf("no engine stats aggregated from shard replies: %+v", ss)
	}
	if ss.TotalPatterns == 0 || ss.UniquePatterns > ss.TotalPatterns {
		t.Fatalf("implausible pattern counters: %+v", ss)
	}
	// Every pattern occurs exactly twice in its lane's stream, so the
	// dictionary folds away at least half of every shard's stimulus.
	if hr := ss.DedupHitRate(); hr < 0.5 {
		t.Fatalf("dedup hit-rate %.3f < 0.5 on a doubled stream: %+v", hr, ss)
	}

	snap := reg.Snapshot()
	for name, want := range map[string]uint64{
		"gpustl_faultsim_blocks_total":          ss.Blocks,
		"gpustl_faultsim_patterns_total":        ss.TotalPatterns,
		"gpustl_faultsim_unique_patterns_total": ss.UniquePatterns,
		"gpustl_faultsim_fault_evals_total":     ss.FaultEvals,
		"gpustl_faultsim_cone_skips_total":      ss.ConeSkips,
		"gpustl_faultsim_prescreen_skips_total": ss.PrescreenSkips,
		"gpustl_faultsim_propagations_total":    ss.Propagations,
	} {
		if got := snap.Counters[name]; got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if g := snap.Gauges["gpustl_faultsim_dedup_hit_rate"]; g != ss.DedupHitRate() {
		t.Errorf("dedup hit-rate gauge = %v, want %v", g, ss.DedupHitRate())
	}
	if g := snap.Gauges["gpustl_faultsim_prescreen_skip_ratio"]; g != ss.PrescreenSkipRatio() {
		t.Errorf("prescreen skip-ratio gauge = %v, want %v", g, ss.PrescreenSkipRatio())
	}
}
