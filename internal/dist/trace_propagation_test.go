package dist

import (
	"context"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"gpustl/internal/fault"
	"gpustl/internal/obs"
)

// TestTracePropagationAcrossProcesses is the wire-level contract of
// fleet tracing: a campaign span opened by the control plane must
// reappear — as one trace — in the coordinator's client-side shard
// spans AND in the HTTP worker's remote execution spans, linked
// parent-to-child across the process boundary, and the three trace
// files must merge into a single tree stltrace can decompose.
func TestTracePropagationAcrossProcesses(t *testing.T) {
	dir := t.TempDir()
	serverTr := obs.NewTracer(filepath.Join(dir, "server.jsonl"))
	coordTr := obs.NewTracer(filepath.Join(dir, "coord.jsonl"))

	// The "worker processes": two HTTP workers, each with its own
	// tracer, as in the server + coordinator + 2 workers deployment.
	workerTrs := []*obs.Tracer{
		obs.NewTracer(filepath.Join(dir, "worker1.jsonl")),
		obs.NewTracer(filepath.Join(dir, "worker2.jsonl")),
	}
	var transports []Transport
	for i, wtr := range workerTrs {
		wh := NewHandlerOptions(fmt.Sprintf("w%d", i+1), WorkerOptions{Tracer: wtr})
		ws := httptest.NewServer(wh)
		defer ws.Close()
		transports = append(transports, NewHTTP(ws.URL))
	}

	opt := fastOptions()
	opt.Shards = 4
	opt.Tracer = coordTr
	co, err := New(opt, transports...)
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()

	// The "server process": the campaign root span rides the context
	// into the coordinator, exactly as stlserver's execute() arranges.
	root := serverTr.Start(nil, obs.KindCampaign, "execute:c1")
	ctx := obs.ContextWithSpan(context.Background(), root)

	m := spModule(t)
	stream := randomSPStream(rand.New(rand.NewSource(5)), m.Lanes, 256)
	camp := newSPCampaign(t, m, 400, 9)
	if _, err := co.Run(ctx, camp, stream, fault.SimOptions{}); err != nil {
		t.Fatal(err)
	}
	root.End()
	for _, tr := range append([]*obs.Tracer{serverTr, coordTr}, workerTrs...) {
		if err := tr.Flush(); err != nil {
			t.Fatal(err)
		}
	}

	read := func(name string) []obs.Event {
		evs, err := obs.ReadTraceFile(filepath.Join(dir, name+".jsonl"))
		if err != nil {
			t.Fatalf("reading %s trace: %v", name, err)
		}
		return evs
	}
	serverEvs, coordEvs := read("server"), read("coord")
	workerEvs := append(read("worker1"), read("worker2")...)
	trace := root.TraceID().String()

	// Coordinator: every client-side shard span joined the campaign
	// trace and parents to the campaign root directly.
	clientByID := map[uint64]bool{}
	for _, ev := range coordEvs {
		if ev.Kind != obs.KindShard {
			continue
		}
		if ev.Trace != trace {
			t.Errorf("coord span %s trace %q, want %q", ev.Name, ev.Trace, trace)
		}
		if ev.Attrs["side"] != "client" {
			t.Errorf("coord span %s side %q, want client", ev.Name, ev.Attrs["side"])
		}
		if ev.Parent != root.ID() {
			t.Errorf("coord span %s parent %#x, want campaign root %#x", ev.Name, ev.Parent, root.ID())
		}
		clientByID[ev.ID] = true
	}
	if len(clientByID) < 4 {
		t.Fatalf("coordinator recorded %d shard spans, want >= 4", len(clientByID))
	}

	// Worker: every execution span is a remote child of a coordinator
	// dispatch span, in the same trace, despite living in another
	// tracer with no shared state.
	workerShards := 0
	for _, ev := range workerEvs {
		if ev.Kind != obs.KindShard {
			continue
		}
		workerShards++
		if !ev.Remote {
			t.Errorf("worker span %s not marked remote", ev.Name)
		}
		if ev.Trace != trace {
			t.Errorf("worker span %s trace %q, want %q", ev.Name, ev.Trace, trace)
		}
		if !clientByID[ev.Parent] {
			t.Errorf("worker span %s parent %#x is no coordinator dispatch span", ev.Name, ev.Parent)
		}
		if !strings.HasPrefix(ev.Name, "shard-exec:") || ev.Attrs["side"] != "worker" {
			t.Errorf("worker span name/side = %s/%s", ev.Name, ev.Attrs["side"])
		}
	}
	if workerShards < 4 {
		t.Fatalf("worker recorded %d execution spans, want >= 4", workerShards)
	}

	// The three files merge into one tree whose critical path tiles the
	// campaign wall — what stltrace prints for this fleet.
	merged, err := obs.MergeTraces([]obs.ProcessTrace{
		{Proc: "server", Events: serverEvs},
		{Proc: "coord", Events: coordEvs},
		{Proc: "worker1", Events: read("worker1")},
		{Proc: "worker2", Events: read("worker2")},
	})
	if err != nil {
		t.Fatal(err)
	}
	cp := merged.CriticalPath(trace)
	if cp == nil {
		t.Fatal("merged trace has no critical path for the campaign")
	}
	if cp.Wall <= 0 || cp.Total != cp.Wall {
		t.Errorf("critical path Total %v != Wall %v", cp.Total, cp.Wall)
	}
	var simulate, transport bool
	for _, c := range cp.Categories {
		switch c.Category {
		case obs.CatSimulate:
			simulate = c.Dur > 0
		case obs.CatTransport:
			transport = c.Dur > 0
		}
	}
	if !simulate || !transport {
		t.Errorf("critical path missing simulate/transport time: %+v", cp.Categories)
	}
}
