package dist

import (
	"context"
	"fmt"
	"sync"

	"gpustl/internal/circuits"
	"gpustl/internal/fault"
)

// Transport carries shard requests to one worker. Implementations must
// be safe for concurrent use: the coordinator dispatches, hedges and
// pings on independent goroutines.
type Transport interface {
	// Name identifies the worker for placement decisions (retries prefer
	// a different name), health state and logs.
	Name() string
	// Simulate executes one shard and returns its detections. It must
	// honor ctx — the coordinator cancels losers of hedged races, shards
	// of dead workers, and dispatches that outlive their deadline.
	Simulate(ctx context.Context, req *ShardRequest) (*ShardResult, error)
	// Ping is the heartbeat probe; an error counts as a missed beat.
	Ping(ctx context.Context) error
	// Close releases the transport's resources.
	Close() error
}

// Local is an in-process Transport: it elaborates the requested module
// (cached per kind/lane count) and simulates the shard on this machine.
// It is the transport used by tests and by single-machine distribution,
// and the execution engine behind the HTTP worker daemon.
type Local struct {
	name string

	mu   sync.Mutex
	mods map[localModKey]*circuits.Module
}

type localModKey struct {
	kind  circuits.ModuleKind
	lanes int
}

// NewLocal creates an in-process worker transport with the given name.
func NewLocal(name string) *Local {
	return &Local{name: name, mods: map[localModKey]*circuits.Module{}}
}

// Name implements Transport.
func (l *Local) Name() string { return l.name }

// module returns the cached gate-level model for kind/lanes.
func (l *Local) module(kind circuits.ModuleKind, lanes int) (*circuits.Module, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	key := localModKey{kind, lanes}
	if m, ok := l.mods[key]; ok {
		return m, nil
	}
	m, err := circuits.Build(kind, lanes)
	if err != nil {
		return nil, fmt.Errorf("dist: worker %s: building %v: %w", l.name, kind, err)
	}
	l.mods[key] = m
	return m, nil
}

// Simulate implements Transport: one throwaway campaign over the
// request's fault list, simulated as a single subset. Detection indices
// refer to the request's fault list, already sorted (Pattern, Fault).
func (l *Local) Simulate(ctx context.Context, req *ShardRequest) (*ShardResult, error) {
	mod, err := l.module(req.Module, req.Lanes)
	if err != nil {
		return nil, err
	}
	camp := fault.NewCampaignWithFaults(mod, req.Faults)
	dets, stats, err := camp.SimulateSubsetStats(ctx, req.Stream, nil)
	if err != nil {
		return nil, err
	}
	res := &ShardResult{
		Shard:      req.Shard,
		Attempt:    req.Attempt,
		Worker:     l.name,
		Detections: make([]Detection, len(dets)),
		Stats:      stats,
	}
	for i, d := range dets {
		res.Detections[i] = Detection{Fault: int32(d.Fault), Pattern: d.Pattern, CC: d.CC}
	}
	res.Checksum = ChecksumDetections(res.Detections)
	return res, nil
}

// Ping implements Transport; an in-process worker is always reachable.
func (l *Local) Ping(ctx context.Context) error { return ctx.Err() }

// Close implements Transport.
func (l *Local) Close() error { return nil }
