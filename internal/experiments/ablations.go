package experiments

import (
	"fmt"
	"io"

	"gpustl/internal/baseline"
	"gpustl/internal/core"
	"gpustl/internal/report"
)

// AblationResult compares design choices the paper calls out: cross-PTP
// fault dropping (the MEM/RAND discussion), reverse-order pattern
// application for SFU_IMM, and SB- versus instruction-granularity removal.
type AblationResult struct {
	// MEM compacted after IMM (with dropping) vs alone (fresh campaign).
	MEMWithDropPct    float64
	MEMWithoutDropPct float64

	// SFU_IMM with reverse vs forward pattern order.
	SFUReversePct float64
	SFUForwardPct float64

	// IMM with SB-granularity vs instruction-granularity removal.
	SBGranPct     float64
	SBGranFCDiff  float64
	InsGranPct    float64
	InsGranFCDiff float64
}

// Ablations runs the three studies.
func Ablations(e *Env) (*AblationResult, error) {
	out := &AblationResult{}

	// 1. Fault dropping.
	withDrop := core.New(e.Cfg, e.DU, e.DUFaults, core.Options{})
	if _, err := withDrop.CompactPTP(e.IMM); err != nil {
		return nil, err
	}
	r, err := withDrop.CompactPTP(e.MEM)
	if err != nil {
		return nil, err
	}
	out.MEMWithDropPct = r.SizeReduction()

	alone := core.New(e.Cfg, e.DU, e.DUFaults, core.Options{})
	if r, err = alone.CompactPTP(e.MEM); err != nil {
		return nil, err
	}
	out.MEMWithoutDropPct = r.SizeReduction()

	// 2. Pattern order for the ATPG-based SFU PTP.
	rev := core.New(e.Cfg, e.SFU, e.SFUFaults, core.Options{ReversePatterns: true})
	if r, err = rev.CompactPTP(e.SFUIMM); err != nil {
		return nil, err
	}
	out.SFUReversePct = r.SizeReduction()
	fwd := core.New(e.Cfg, e.SFU, e.SFUFaults, core.Options{})
	if r, err = fwd.CompactPTP(e.SFUIMM); err != nil {
		return nil, err
	}
	out.SFUForwardPct = r.SizeReduction()

	// 3. Removal granularity.
	sb := core.New(e.Cfg, e.DU, e.DUFaults, core.Options{})
	if r, err = sb.CompactPTP(e.IMM); err != nil {
		return nil, err
	}
	out.SBGranPct, out.SBGranFCDiff = r.SizeReduction(), r.FCDiff()
	ins := core.New(e.Cfg, e.DU, e.DUFaults, core.Options{InstructionGranularity: true})
	if r, err = ins.CompactPTP(e.IMM); err != nil {
		return nil, err
	}
	out.InsGranPct, out.InsGranFCDiff = r.SizeReduction(), r.FCDiff()

	return out, nil
}

// Render writes the ablation table.
func (a *AblationResult) Render(w io.Writer) {
	tb := report.Table{
		Title:   "ABLATIONS (size reduction %, higher = more compaction)",
		Headers: []string{"Study", "Variant A", "Variant B"},
	}
	tb.AddRow("MEM: after IMM (drop) vs alone",
		report.Pct(a.MEMWithDropPct), report.Pct(a.MEMWithoutDropPct))
	tb.AddRow("SFU_IMM: reverse vs forward patterns",
		report.Pct(a.SFUReversePct), report.Pct(a.SFUForwardPct))
	tb.AddRow(fmt.Sprintf("IMM: SB (FC%+.2f) vs instr (FC%+.2f)",
		a.SBGranFCDiff, a.InsGranFCDiff),
		report.Pct(a.SBGranPct), report.Pct(a.InsGranPct))
	tb.Render(w)
}

// BaselineCompareResult quantifies the headline claim: the proposed method
// needs ONE fault simulation per PTP where the iterative prior work needs
// one per candidate block.
type BaselineCompareResult struct {
	ProposedFaultSims int
	BaselineFaultSims int
	ProposedMillis    float64
	BaselineMillis    float64
	ProposedSizePct   float64
	BaselineSizePct   float64
}

// BaselineCompare compacts the IMM PTP with both methods.
func BaselineCompare(e *Env) (*BaselineCompareResult, error) {
	prop := core.New(e.Cfg, e.DU, e.DUFaults, core.Options{})
	pr, err := prop.CompactPTP(e.IMM)
	if err != nil {
		return nil, err
	}
	base := baseline.New(e.Cfg, e.DU, e.DUFaults)
	br, err := base.CompactPTP(e.IMM)
	if err != nil {
		return nil, err
	}
	return &BaselineCompareResult{
		ProposedFaultSims: 1,
		BaselineFaultSims: br.FaultSims,
		ProposedMillis:    float64(pr.CompactionTime.Microseconds()) / 1000,
		BaselineMillis:    float64(br.Time.Microseconds()) / 1000,
		ProposedSizePct:   pr.SizeReduction(),
		BaselineSizePct:   br.SizeReduction(),
	}, nil
}

// Render writes the comparison.
func (b *BaselineCompareResult) Render(w io.Writer) {
	tb := report.Table{
		Title:   "COMPACTION COST: PROPOSED (ONE FAULT SIM) VS ITERATIVE BASELINE",
		Headers: []string{"Method", "Fault sims", "Time (ms)", "Size reduction (%)"},
	}
	tb.AddRow("proposed", fmt.Sprintf("%d", b.ProposedFaultSims),
		fmt.Sprintf("%.1f", b.ProposedMillis), report.Pct(b.ProposedSizePct))
	tb.AddRow("iterative baseline", fmt.Sprintf("%d", b.BaselineFaultSims),
		fmt.Sprintf("%.1f", b.BaselineMillis), report.Pct(b.BaselineSizePct))
	tb.Render(w)
}
