// Package experiments orchestrates the paper's evaluation: it builds the
// STL (the six PTPs of Table I), the target-module fault campaigns, and
// regenerates Table I (PTP features), Table II (Decoder Unit compaction),
// Table III (functional-unit compaction), the whole-STL summary claims,
// and the ablation studies.
//
// Three scales are provided. Small and Medium shrink the PTP sizes and
// sample the fault lists so the suite runs in seconds to minutes on a
// laptop; Paper approaches the instruction counts of the original
// experiments. The *shape* of the results — who compacts most, the effect
// of fault dropping, where FC moves — is preserved across scales.
package experiments

import (
	"fmt"
	"runtime"

	"gpustl/internal/atpg"
	"gpustl/internal/circuits"
	"gpustl/internal/fault"
	"gpustl/internal/gpu"
	"gpustl/internal/ptpgen"
	"gpustl/internal/stl"
	"gpustl/internal/trace"
)

// Scale selects the experiment size.
type Scale int

// Scales.
const (
	Small Scale = iota
	Medium
	Paper
)

// String names the scale.
func (s Scale) String() string {
	switch s {
	case Small:
		return "small"
	case Medium:
		return "medium"
	case Paper:
		return "paper"
	}
	return fmt.Sprintf("Scale(%d)", int(s))
}

// ScaleByName parses a scale name.
func ScaleByName(name string) (Scale, error) {
	for s := Small; s <= Paper; s++ {
		if s.String() == name {
			return s, nil
		}
	}
	return 0, fmt.Errorf("experiments: unknown scale %q (small|medium|paper)", name)
}

// Params holds all experiment knobs.
type Params struct {
	Scale Scale
	Seed  int64

	// PTP sizes.
	IMMSBs, MEMSBs, RANDSBs int
	CNTRLSections           int

	// Fault-list samples per module (0 = full list).
	DUFaults, SPFaults, SFUFaults int

	// ATPG configuration for TPGEN / SFU_IMM.
	ATPGSPFaults  int // target-fault sample for the SP ATPG (0 = full)
	ATPGSFUFaults int
	ATPGBlocks    int // random blocks budget
	ATPGKeepAll   int // keep-all random blocks (pattern-file redundancy)

	// Workers parallelizes the fault simulations (0/1 = serial).
	Workers int
}

// ParamsFor returns the default parameters of a scale.
func ParamsFor(s Scale) Params {
	switch s {
	case Small:
		return Params{
			Scale: s, Seed: 1,
			IMMSBs: 40, MEMSBs: 40, RANDSBs: 60, CNTRLSections: 10,
			DUFaults: 3000, SPFaults: 6000, SFUFaults: 4000,
			ATPGSPFaults: 1500, ATPGSFUFaults: 1000, ATPGBlocks: 96,
			ATPGKeepAll: 3,
		}
	case Medium:
		return Params{
			Scale: s, Seed: 1,
			IMMSBs: 250, MEMSBs: 250, RANDSBs: 400, CNTRLSections: 25,
			DUFaults: 0, SPFaults: 24000, SFUFaults: 12000,
			ATPGSPFaults: 6000, ATPGSFUFaults: 3000, ATPGBlocks: 192,
			ATPGKeepAll: 10,
		}
	default: // Paper
		// PTP sizes approach the paper's; the SP/SFU fault lists stay
		// sampled (the full 240k/129k lists against million-pattern
		// streams are a multi-hour serial campaign, as the paper's own
		// compaction-hours column reflects).
		return Params{
			Scale: s, Seed: 1,
			IMMSBs: 2000, MEMSBs: 2000, RANDSBs: 3200, CNTRLSections: 26,
			DUFaults: 0, SPFaults: 48000, SFUFaults: 24000,
			ATPGSPFaults: 24000, ATPGSFUFaults: 12000, ATPGBlocks: 384,
			ATPGKeepAll: 30,
			Workers:     runtime.GOMAXPROCS(0),
		}
	}
}

// Env is the built experiment environment: modules, fault lists, and the
// STL, ready for the table runs.
type Env struct {
	Params Params
	Cfg    gpu.Config

	DU, SP, SFU *circuits.Module

	DUFaults, SPFaults, SFUFaults []fault.Fault

	// The six PTPs of Table I, in the paper's application order.
	IMM, MEM, CNTRL, TPGEN, RAND, SFUIMM *stl.PTP

	// Conversion losses of the ATPG-based PTPs.
	TPGENDropped, SFUIMMDropped int
}

// BuildEnv constructs modules, fault lists, ATPG pattern sets and PTPs.
func BuildEnv(p Params) (*Env, error) {
	env := &Env{Params: p, Cfg: gpu.DefaultConfig()}

	var err error
	if env.DU, err = circuits.Build(circuits.ModuleDU, 0); err != nil {
		return nil, err
	}
	if env.SP, err = circuits.Build(circuits.ModuleSP, 0); err != nil {
		return nil, err
	}
	if env.SFU, err = circuits.Build(circuits.ModuleSFU, 0); err != nil {
		return nil, err
	}

	sample := func(m *circuits.Module, n int, seed int64) []fault.Fault {
		c := fault.NewCampaign(m)
		if n > 0 {
			c.SampleFaults(n, seed)
		}
		return c.Faults()
	}
	env.DUFaults = sample(env.DU, p.DUFaults, p.Seed)
	env.SPFaults = sample(env.SP, p.SPFaults, p.Seed+1)
	env.SFUFaults = sample(env.SFU, p.SFUFaults, p.Seed+2)

	// Pseudorandom PTPs.
	env.IMM = ptpgen.IMM(p.IMMSBs, p.Seed+10)
	env.MEM = ptpgen.MEM(p.MEMSBs, p.Seed+11)
	env.CNTRL = ptpgen.CNTRL(p.CNTRLSections, p.Seed+12)
	env.RAND = ptpgen.RAND(p.RANDSBs, p.Seed+13)

	// ATPG-based PTPs.
	spOpt := atpg.DefaultOptions(p.Seed + 20)
	spOpt.SampleFaults = p.ATPGSPFaults
	spOpt.RandomBlocks = p.ATPGBlocks
	spOpt.KeepAllBlocks = p.ATPGKeepAll
	spRes := atpg.Generate(env.SP, spOpt)
	env.TPGEN, env.TPGENDropped = ptpgen.TPGEN(spRes.Patterns, p.Seed+21)

	sfuOpt := atpg.DefaultOptions(p.Seed + 22)
	sfuOpt.SampleFaults = p.ATPGSFUFaults
	sfuOpt.RandomBlocks = p.ATPGBlocks
	sfuOpt.KeepAllBlocks = p.ATPGKeepAll
	sfuRes := atpg.Generate(env.SFU, sfuOpt)
	env.SFUIMM, env.SFUIMMDropped = ptpgen.SFUIMM(sfuRes.Patterns, p.Seed+23)

	for _, ptp := range env.PTPs() {
		if err := ptp.Validate(); err != nil {
			return nil, fmt.Errorf("experiments: %w", err)
		}
	}
	return env, nil
}

// PTPs returns the six PTPs in the paper's order.
func (e *Env) PTPs() []*stl.PTP {
	return []*stl.PTP{e.IMM, e.MEM, e.CNTRL, e.TPGEN, e.RAND, e.SFUIMM}
}

// ModuleOf returns the module a PTP targets.
func (e *Env) ModuleOf(p *stl.PTP) *circuits.Module {
	switch p.Target {
	case circuits.ModuleDU:
		return e.DU
	case circuits.ModuleSP:
		return e.SP
	default:
		return e.SFU
	}
}

// FaultsOf returns the campaign fault list of a PTP's target module.
func (e *Env) FaultsOf(p *stl.PTP) []fault.Fault {
	switch p.Target {
	case circuits.ModuleDU:
		return e.DUFaults
	case circuits.ModuleSP:
		return e.SPFaults
	default:
		return e.SFUFaults
	}
}

// RunPTP executes a PTP on the simulated GPU with pattern extraction for
// its own target module and returns the collector and total cycles.
func (e *Env) RunPTP(p *stl.PTP) (*trace.Collector, uint64, error) {
	return e.RunPTPAs(p, p.Target)
}

// RunPTPAs executes a PTP extracting patterns for an explicit target
// module (e.g. the pipeline registers, which any fetch stream exercises).
func (e *Env) RunPTPAs(p *stl.PTP, target circuits.ModuleKind) (*trace.Collector, uint64, error) {
	col := trace.NewCollector(target)
	col.LiteRows = true
	g, err := gpu.New(e.Cfg, col)
	if err != nil {
		return nil, 0, err
	}
	res, err := g.Run(gpu.Kernel{
		Prog:            p.Prog,
		Blocks:          p.Kernel.Blocks,
		ThreadsPerBlock: p.Kernel.ThreadsPerBlock,
		GlobalBase:      p.Data.Base,
		GlobalData:      p.Data.Words,
	})
	if err != nil {
		return nil, 0, fmt.Errorf("experiments: running %s: %w", p.Name, err)
	}
	return col, res.Cycles, nil
}

// GroupFC runs the given PTPs in order against one fresh campaign of the
// module's fault list and returns the cumulative coverage — the combined
// FC of the paper's "IMM+MEM+CNTRL" and "TPGEN+RAND" rows.
func (e *Env) GroupFC(ptps ...*stl.PTP) (float64, error) {
	if len(ptps) == 0 {
		return 0, nil
	}
	m := e.ModuleOf(ptps[0])
	camp := fault.NewCampaignWithFaults(m, e.FaultsOf(ptps[0]))
	for _, p := range ptps {
		if p.Target != ptps[0].Target {
			return 0, fmt.Errorf("experiments: mixed targets in group")
		}
		col, _, err := e.RunPTP(p)
		if err != nil {
			return 0, err
		}
		camp.Simulate(col.Patterns, fault.SimOptions{})
	}
	return camp.Coverage(), nil
}
