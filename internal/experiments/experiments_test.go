package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// smallEnv builds (and caches per test run) the Small-scale environment.
var cachedEnv *Env

func smallEnv(t *testing.T) *Env {
	t.Helper()
	if cachedEnv != nil {
		return cachedEnv
	}
	env, err := BuildEnv(ParamsFor(Small))
	if err != nil {
		t.Fatal(err)
	}
	cachedEnv = env
	return env
}

func TestScaleByName(t *testing.T) {
	for s := Small; s <= Paper; s++ {
		got, err := ScaleByName(s.String())
		if err != nil || got != s {
			t.Errorf("ScaleByName(%q) = %v, %v", s.String(), got, err)
		}
	}
	if _, err := ScaleByName("bogus"); err == nil {
		t.Error("bogus scale accepted")
	}
}

func TestBuildEnvProducesSixPTPs(t *testing.T) {
	env := smallEnv(t)
	names := map[string]bool{}
	for _, p := range env.PTPs() {
		names[p.Name] = true
		if len(p.Prog) == 0 {
			t.Errorf("%s empty", p.Name)
		}
	}
	for _, want := range []string{"IMM", "MEM", "CNTRL", "TPGEN", "RAND", "SFU_IMM"} {
		if !names[want] {
			t.Errorf("missing PTP %s", want)
		}
	}
	if env.TPGENDropped == 0 {
		t.Error("TPGEN conversion dropped nothing; partial conversion not exercised")
	}
}

func TestTableIShape(t *testing.T) {
	env := smallEnv(t)
	t1, err := TableI(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(t1.Rows) != 8 {
		t.Fatalf("rows = %d, want 8 (6 PTPs + 2 combined rows)", len(t1.Rows))
	}
	byName := map[string]PTPStats{}
	for _, r := range t1.Rows {
		byName[r.Name] = r
	}

	// Shape checks against Table I:
	// IMM and MEM are ARC 100% (modulo protected scaffolding), CNTRL less.
	if byName["CNTRL"].ARCPct >= byName["IMM"].ARCPct {
		t.Errorf("CNTRL ARC %.1f >= IMM ARC %.1f", byName["CNTRL"].ARCPct, byName["IMM"].ARCPct)
	}
	// Combined DU FC must be >= each constituent's FC.
	comb := byName["IMM+MEM+CNTRL"]
	for _, n := range []string{"IMM", "MEM", "CNTRL"} {
		if comb.FC+1e-9 < byName[n].FC {
			t.Errorf("combined DU FC %.2f < %s FC %.2f", comb.FC, n, byName[n].FC)
		}
	}
	// Combined SP FC >= TPGEN and RAND.
	sp := byName["TPGEN+RAND"]
	if sp.FC+1e-9 < byName["TPGEN"].FC || sp.FC+1e-9 < byName["RAND"].FC {
		t.Errorf("combined SP FC %.2f below constituents", sp.FC)
	}
	// All FCs meaningful.
	for _, r := range t1.Rows {
		if r.FC <= 20 || r.FC > 100 {
			t.Errorf("%s FC = %.2f implausible", r.Name, r.FC)
		}
		if r.Duration == 0 || r.Size == 0 {
			t.Errorf("%s has zero size/duration", r.Name)
		}
	}

	var buf bytes.Buffer
	t1.Render(&buf)
	if !strings.Contains(buf.String(), "TABLE I") || !strings.Contains(buf.String(), "IMM") {
		t.Error("render output malformed")
	}
}

func TestTableIIShape(t *testing.T) {
	env := smallEnv(t)
	t2, err := TableII(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(t2.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(t2.Rows))
	}
	byName := map[string]CompactRow{}
	for _, r := range t2.Rows {
		byName[r.Name] = r
	}
	// Every PTP must compact (negative size %).
	for _, n := range []string{"IMM", "MEM", "CNTRL", "IMM+MEM+CNTRL"} {
		r := byName[n]
		if r.SizePct >= 0 {
			t.Errorf("%s did not compact: %.2f%%", n, r.SizePct)
		}
		if r.CompSize <= 0 || r.CompDuration == 0 {
			t.Errorf("%s degenerate row: %+v", n, r)
		}
	}
	// The paper's ordering: MEM (after IMM, with dropping) compacts more
	// than IMM. (IMM > CNTRL only emerges at larger scales, where IMM's
	// redundancy dominates; the benches assert it at Medium.)
	if byName["MEM"].SizePct > byName["IMM"].SizePct {
		t.Errorf("MEM (-%.2f) should compact at least as much as IMM (-%.2f)",
			-byName["MEM"].SizePct, -byName["IMM"].SizePct)
	}
	// CNTRL's duration reduction lags its size reduction (paper: -73.51%
	// size but only -36.95% duration — the inadmissible loops dominate
	// runtime), while IMM reduces both roughly equally.
	cn := byName["CNTRL"]
	if -cn.DurPct > -cn.SizePct {
		t.Errorf("CNTRL duration reduction (%.2f) should lag size reduction (%.2f)",
			cn.DurPct, cn.SizePct)
	}
	// Combined FC loss stays small.
	if byName["IMM+MEM+CNTRL"].DiffFC < -2 {
		t.Errorf("combined DU FC diff %.2f", byName["IMM+MEM+CNTRL"].DiffFC)
	}
	t.Logf("Table II: IMM %.2f%%, MEM %.2f%%, CNTRL %.2f%%, comb %.2f%% (FC %+0.2f)",
		byName["IMM"].SizePct, byName["MEM"].SizePct, byName["CNTRL"].SizePct,
		byName["IMM+MEM+CNTRL"].SizePct, byName["IMM+MEM+CNTRL"].DiffFC)
}

func TestTableIIIShape(t *testing.T) {
	env := smallEnv(t)
	t3, err := TableIII(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(t3.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 (TPGEN, RAND, combined, SFU_IMM)", len(t3.Rows))
	}
	byName := map[string]CompactRow{}
	for _, r := range t3.Rows {
		byName[r.Name] = r
	}
	for _, n := range []string{"TPGEN", "RAND", "TPGEN+RAND", "SFU_IMM"} {
		if byName[n].SizePct >= 0 {
			t.Errorf("%s did not compact: %.2f%%", n, byName[n].SizePct)
		}
	}
	// RAND, compacted after TPGEN with dropping, compacts more than TPGEN
	// (the paper: RAND -97.79 vs TPGEN -75.81) and loses the most
	// standalone FC of all PTPs (paper: -17.07).
	if byName["RAND"].SizePct > byName["TPGEN"].SizePct {
		t.Errorf("RAND (%.2f) should compact more than TPGEN (%.2f)",
			byName["RAND"].SizePct, byName["TPGEN"].SizePct)
	}
	if byName["RAND"].DiffFC > byName["TPGEN+RAND"].DiffFC+1e-9 {
		t.Errorf("RAND standalone FC loss (%.2f) should exceed combined (%.2f)",
			byName["RAND"].DiffFC, byName["TPGEN+RAND"].DiffFC)
	}
	// SFU_IMM: data-independent SBs, FC unaffected (paper: 0.0).
	if byName["SFU_IMM"].DiffFC < -0.5 {
		t.Errorf("SFU_IMM FC diff %.2f, want ~0", byName["SFU_IMM"].DiffFC)
	}
	t.Logf("Table III: TPGEN %.2f%%, RAND %.2f%% (FC %+0.2f), comb %.2f%% (FC %+0.2f), SFU %.2f%% (FC %+0.2f)",
		byName["TPGEN"].SizePct, byName["RAND"].SizePct, byName["RAND"].DiffFC,
		byName["TPGEN+RAND"].SizePct, byName["TPGEN+RAND"].DiffFC,
		byName["SFU_IMM"].SizePct, byName["SFU_IMM"].DiffFC)
}

func TestSTLSummaryShape(t *testing.T) {
	env := smallEnv(t)
	t2, err := TableII(env)
	if err != nil {
		t.Fatal(err)
	}
	t3, err := TableIII(env)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := STLSummary(env, t2, t3)
	if err != nil {
		t.Fatal(err)
	}
	if sum.CandidateSizeShare < 80 || sum.CandidateSizeShare > 98 {
		t.Errorf("candidate size share %.2f%%, want ~90%%", sum.CandidateSizeShare)
	}
	if sum.STLSizeReduction <= 0 || sum.STLSizeReduction >= sum.CandidateSizeShare {
		t.Errorf("STL size reduction %.2f%% out of range", sum.STLSizeReduction)
	}
	if sum.STLDurReduction <= 0 || sum.STLDurReduction >= sum.CandidateDurShare {
		t.Errorf("STL duration reduction %.2f%% out of range", sum.STLDurReduction)
	}
	t.Logf("STL: candidates %.2f%% size / %.2f%% dur; reduction %.2f%% size / %.2f%% dur",
		sum.CandidateSizeShare, sum.CandidateDurShare,
		sum.STLSizeReduction, sum.STLDurReduction)
}

func TestAblations(t *testing.T) {
	env := smallEnv(t)
	ab, err := Ablations(env)
	if err != nil {
		t.Fatal(err)
	}
	if ab.MEMWithDropPct < ab.MEMWithoutDropPct {
		t.Errorf("dropping should increase MEM compaction: %.2f vs %.2f",
			ab.MEMWithDropPct, ab.MEMWithoutDropPct)
	}
	if ab.InsGranPct < ab.SBGranPct {
		t.Errorf("instruction granularity should remove more: %.2f vs %.2f",
			ab.InsGranPct, ab.SBGranPct)
	}
	var buf bytes.Buffer
	ab.Render(&buf)
	if !strings.Contains(buf.String(), "ABLATIONS") {
		t.Error("render malformed")
	}
	t.Logf("\n%s", buf.String())
}

func TestExtensions(t *testing.T) {
	env := smallEnv(t)
	x, err := Extensions(env)
	if err != nil {
		t.Fatal(err)
	}
	if x.FP.SizePct >= 0 {
		t.Errorf("FP_RAND did not compact: %.2f%%", x.FP.SizePct)
	}
	if x.PipeCoverage < 60 {
		t.Errorf("pipeline coverage %.2f%%", x.PipeCoverage)
	}
	if len(x.PipeGroups) < 2 {
		t.Errorf("pipe groups: %d", len(x.PipeGroups))
	}
	var buf bytes.Buffer
	x.Render(&buf)
	if !strings.Contains(buf.String(), "EXTENSIONS") {
		t.Error("render malformed")
	}
	t.Logf("\n%s", buf.String())
}

func TestBaselineCompare(t *testing.T) {
	env := smallEnv(t)
	bc, err := BaselineCompare(env)
	if err != nil {
		t.Fatal(err)
	}
	if bc.BaselineFaultSims <= bc.ProposedFaultSims {
		t.Errorf("baseline fault sims %d not > proposed %d",
			bc.BaselineFaultSims, bc.ProposedFaultSims)
	}
	if bc.BaselineMillis < bc.ProposedMillis {
		t.Logf("note: baseline faster at this scale (%.1f vs %.1f ms)",
			bc.BaselineMillis, bc.ProposedMillis)
	}
	t.Logf("proposed: 1 sim %.1fms (-%.2f%%); baseline: %d sims %.1fms (-%.2f%%)",
		bc.ProposedMillis, bc.ProposedSizePct,
		bc.BaselineFaultSims, bc.BaselineMillis, bc.BaselineSizePct)
}
