package experiments

import (
	"fmt"
	"io"

	"gpustl/internal/circuits"
	"gpustl/internal/core"
	"gpustl/internal/fault"
	"gpustl/internal/ptpgen"
	"gpustl/internal/report"
)

// ExtensionsResult covers the substrates beyond the paper's evaluation:
// compaction of an FP32-targeted PTP and sequential coverage of the
// pipeline-register bank.
type ExtensionsResult struct {
	// FPRAND compaction on the FP32 unit.
	FP CompactRow
	// Pipeline-register sequential campaign driven by the IMM fetch
	// stream.
	PipeFaults   int
	PipeCoverage float64
	PipeGroups   []fault.GroupCoverage
}

// Extensions runs the two extension studies at a scale derived from the
// environment's parameters.
func Extensions(e *Env) (*ExtensionsResult, error) {
	out := &ExtensionsResult{}

	// FP32 compaction.
	fp, err := circuits.Build(circuits.ModuleFP32, 0)
	if err != nil {
		return nil, err
	}
	fpFaults := fault.NewCampaign(fp)
	sample := e.Params.SPFaults
	if sample == 0 {
		sample = 48000
	}
	fpFaults.SampleFaults(sample, e.Params.Seed+40)
	comp := core.New(e.Cfg, fp, fpFaults.Faults(),
		core.Options{Workers: e.Params.Workers})
	ptp := ptpgen.FPRAND(e.Params.RANDSBs/2, e.Params.Seed+41)
	res, err := comp.CompactPTP(ptp)
	if err != nil {
		return nil, err
	}
	out.FP = rowFromResult("FP_RAND", res)

	// Pipeline registers: sequential campaign over IMM's fetch stream.
	pipe, err := circuits.Build(circuits.ModulePIPE, 0)
	if err != nil {
		return nil, err
	}
	camp, err := fault.NewSeqCampaign(pipe)
	if err != nil {
		return nil, err
	}
	col, _, err := e.RunPTPAs(e.IMM, circuits.ModulePIPE)
	if err != nil {
		return nil, err
	}
	if _, err := camp.Simulate(col.Patterns); err != nil {
		return nil, err
	}
	out.PipeFaults = camp.Total()
	out.PipeCoverage = camp.Coverage()
	out.PipeGroups = camp.CoverageByGroup()
	return out, nil
}

// Render writes the extensions table.
func (x *ExtensionsResult) Render(w io.Writer) {
	tb := report.Table{
		Title:   "EXTENSIONS (beyond the paper's evaluation)",
		Headers: []string{"Study", "Result"},
	}
	tb.AddRow("FP_RAND on FP32 unit",
		fmt.Sprintf("%d->%d instrs (%.2f%%), Diff FC %+.2f",
			x.FP.OrigSize, x.FP.CompSize, x.FP.SizePct, x.FP.DiffFC))
	tb.AddRow("pipeline registers (sequential)",
		fmt.Sprintf("%d stem faults, %.2f%% coverage from the IMM fetch stream",
			x.PipeFaults, x.PipeCoverage))
	for _, g := range x.PipeGroups {
		name := g.Group
		if name == "" {
			name = "(ungrouped)"
		}
		tb.AddRow("  group "+name, fmt.Sprintf("%d/%d (%.2f%%)",
			g.Detected, g.Total, g.Pct()))
	}
	tb.Render(w)
}
