package experiments

import (
	"fmt"
	"io"
	"time"

	"gpustl/internal/core"
	"gpustl/internal/fault"
	"gpustl/internal/ptpgen"
	"gpustl/internal/report"
	"gpustl/internal/stl"
)

// PTPStats is one row of Table I.
type PTPStats struct {
	Module   string
	Name     string
	Size     int
	ARCPct   float64
	Duration uint64
	FC       float64
}

// TableIResult reproduces Table I: the main features of the evaluated
// PTPs, including the combined rows.
type TableIResult struct {
	Rows []PTPStats
}

// TableI measures every PTP's size, admissible-region percentage, duration
// and standalone FC, plus the two combined-group rows.
func TableI(e *Env) (*TableIResult, error) {
	out := &TableIResult{}
	statsOf := func(p *stl.PTP) (PTPStats, error) {
		col, cycles, err := e.RunPTP(p)
		if err != nil {
			return PTPStats{}, err
		}
		camp := fault.NewCampaignWithFaults(e.ModuleOf(p), e.FaultsOf(p))
		camp.Simulate(col.Patterns, fault.SimOptions{})
		return PTPStats{
			Module:   p.Target.String(),
			Name:     p.Name,
			Size:     len(p.Prog),
			ARCPct:   100 * p.ARCFraction(),
			Duration: cycles,
			FC:       camp.Coverage(),
		}, nil
	}

	var (
		groupSize int
		groupDur  uint64
	)
	for _, p := range []*stl.PTP{e.IMM, e.MEM, e.CNTRL} {
		s, err := statsOf(p)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, s)
		groupSize += s.Size
		groupDur += s.Duration
	}
	duFC, err := e.GroupFC(e.IMM, e.MEM, e.CNTRL)
	if err != nil {
		return nil, err
	}
	out.Rows = append(out.Rows, PTPStats{
		Module: "DU", Name: "IMM+MEM+CNTRL", Size: groupSize,
		ARCPct: groupARC(e.IMM, e.MEM, e.CNTRL), Duration: groupDur, FC: duFC,
	})

	groupSize, groupDur = 0, 0
	for _, p := range []*stl.PTP{e.TPGEN, e.RAND} {
		s, err := statsOf(p)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, s)
		groupSize += s.Size
		groupDur += s.Duration
	}
	spFC, err := e.GroupFC(e.TPGEN, e.RAND)
	if err != nil {
		return nil, err
	}
	out.Rows = append(out.Rows, PTPStats{
		Module: "SP", Name: "TPGEN+RAND", Size: groupSize,
		ARCPct: groupARC(e.TPGEN, e.RAND), Duration: groupDur, FC: spFC,
	})

	s, err := statsOf(e.SFUIMM)
	if err != nil {
		return nil, err
	}
	out.Rows = append(out.Rows, s)
	return out, nil
}

func groupARC(ptps ...*stl.PTP) float64 {
	instrs, arc := 0, 0.0
	for _, p := range ptps {
		instrs += len(p.Prog)
		arc += p.ARCFraction() * float64(len(p.Prog))
	}
	return 100 * arc / float64(instrs)
}

// Table converts the rows into a renderable report.Table.
func (t *TableIResult) Table() report.Table {
	tb := report.Table{
		Title:   "TABLE I. MAIN FEATURES OF THE EVALUATED PTPS",
		Headers: []string{"Target", "PTP", "Size (instr)", "ARC (%)", "Duration (cc)", "FC (%)"},
	}
	for _, r := range t.Rows {
		tb.AddRow(r.Module, r.Name, report.Int(r.Size), report.Pct(r.ARCPct),
			report.Uint(r.Duration), report.Pct(r.FC))
	}
	return tb
}

// Render writes Table I in the paper's layout.
func (t *TableIResult) Render(w io.Writer) {
	tb := t.Table()
	tb.Render(w)
}

// CompactRow is one row of Tables II / III.
type CompactRow struct {
	Name           string
	CompSize       int
	SizePct        float64 // negative = reduction, as printed in the paper
	CompDuration   uint64
	DurPct         float64
	DiffFC         float64
	CompactionTime time.Duration

	// Extra diagnostics beyond the paper's columns.
	OrigSize     int
	OrigDuration uint64
	OrigFC       float64
	CompFC       float64
	RemovedSBs   int
	TotalSBs     int
}

func rowFromResult(name string, r *core.Result) CompactRow {
	return CompactRow{
		Name:           name,
		CompSize:       r.CompSize,
		SizePct:        -r.SizeReduction(),
		CompDuration:   r.CompDuration,
		DurPct:         -r.DurationReduction(),
		DiffFC:         r.FCDiff(),
		CompactionTime: r.CompactionTime,
		OrigSize:       r.OrigSize,
		OrigDuration:   r.OrigDuration,
		OrigFC:         r.OrigFC,
		CompFC:         r.CompFC,
		RemovedSBs:     r.RemovedSBs,
		TotalSBs:       r.TotalSBs,
	}
}

// CompactionResult holds one table's compaction rows plus the compacted
// PTPs for downstream use.
type CompactionResult struct {
	Rows      []CompactRow
	Compacted map[string]*stl.PTP
}

// Table converts the rows into a renderable report.Table.
func (t *CompactionResult) Table(title string) report.Table {
	tb := report.Table{
		Title: title,
		Headers: []string{"PTP", "Size (instr)", "(%)", "Duration (cc)", "(%)",
			"Diff FC (%)", "Compaction time"},
	}
	for _, r := range t.Rows {
		tb.AddRow(r.Name, report.Int(r.CompSize), report.SignedPct(r.SizePct),
			report.Uint(r.CompDuration), report.SignedPct(r.DurPct),
			report.SignedPct(r.DiffFC), report.Dur(r.CompactionTime))
	}
	return tb
}

// Render writes the rows in the layout of Tables II and III.
func (t *CompactionResult) Render(w io.Writer, title string) {
	tb := t.Table(title)
	tb.Render(w)
}

// TableII compacts the Decoder Unit PTPs in the paper's order (IMM, then
// MEM, then CNTRL) with cross-PTP fault dropping, and adds the combined
// row.
func TableII(e *Env) (*CompactionResult, error) {
	c := core.New(e.Cfg, e.DU, e.DUFaults, core.Options{Workers: e.Params.Workers})
	out := &CompactionResult{Compacted: map[string]*stl.PTP{}}

	var results []*core.Result
	for _, p := range []*stl.PTP{e.IMM, e.MEM, e.CNTRL} {
		r, err := c.CompactPTP(p)
		if err != nil {
			return nil, err
		}
		results = append(results, r)
		out.Rows = append(out.Rows, rowFromResult(p.Name, r))
		out.Compacted[p.Name] = r.Compacted
	}
	combined, err := combinedRow(e, "IMM+MEM+CNTRL", results)
	if err != nil {
		return nil, err
	}
	out.Rows = append(out.Rows, combined)
	return out, nil
}

// TableIII compacts the functional-unit PTPs: TPGEN then RAND on the SP
// campaign (with dropping), the combined row, and SFU_IMM with the
// reverse-order pattern application the paper reports for it.
func TableIII(e *Env) (*CompactionResult, error) {
	out := &CompactionResult{Compacted: map[string]*stl.PTP{}}

	sp := core.New(e.Cfg, e.SP, e.SPFaults, core.Options{Workers: e.Params.Workers})
	var results []*core.Result
	for _, p := range []*stl.PTP{e.TPGEN, e.RAND} {
		r, err := sp.CompactPTP(p)
		if err != nil {
			return nil, err
		}
		results = append(results, r)
		out.Rows = append(out.Rows, rowFromResult(p.Name, r))
		out.Compacted[p.Name] = r.Compacted
	}
	combined, err := combinedRow(e, "TPGEN+RAND", results)
	if err != nil {
		return nil, err
	}
	out.Rows = append(out.Rows, combined)

	sfu := core.New(e.Cfg, e.SFU, e.SFUFaults, core.Options{
		ReversePatterns: true, Workers: e.Params.Workers})
	r, err := sfu.CompactPTP(e.SFUIMM)
	if err != nil {
		return nil, err
	}
	out.Rows = append(out.Rows, rowFromResult("SFU_IMM", r))
	out.Compacted["SFU_IMM"] = r.Compacted
	return out, nil
}

// combinedRow aggregates a group of compaction results and evaluates the
// combined original and compacted FC on fresh campaigns.
func combinedRow(e *Env, name string, results []*core.Result) (CompactRow, error) {
	var row CompactRow
	row.Name = name
	var totalTime time.Duration
	var origs, comps []*stl.PTP
	for _, r := range results {
		row.OrigSize += r.OrigSize
		row.CompSize += r.CompSize
		row.OrigDuration += r.OrigDuration
		row.CompDuration += r.CompDuration
		row.RemovedSBs += r.RemovedSBs
		row.TotalSBs += r.TotalSBs
		totalTime += r.CompactionTime
		origs = append(origs, r.Original)
		comps = append(comps, r.Compacted)
	}
	row.SizePct = -100 * (1 - float64(row.CompSize)/float64(row.OrigSize))
	row.DurPct = -100 * (1 - float64(row.CompDuration)/float64(row.OrigDuration))
	row.CompactionTime = totalTime
	origFC, err := e.GroupFC(origs...)
	if err != nil {
		return row, err
	}
	compFC, err := e.GroupFC(comps...)
	if err != nil {
		return row, err
	}
	row.OrigFC, row.CompFC = origFC, compFC
	row.DiffFC = compFC - origFC
	return row, nil
}

// STLSummaryResult reproduces the whole-STL claims of Section IV: the
// DU+FU PTPs' share of the STL, and the overall size/duration reduction
// after compacting only those PTPs.
type STLSummaryResult struct {
	// Shares of the six compaction-candidate PTPs within the whole STL
	// (paper: 90.69% of size, 75.70% of duration).
	CandidateSizeShare float64
	CandidateDurShare  float64

	// Whole-STL reductions (paper: 80.71% size, 64.43% duration).
	STLSizeReduction float64
	STLDurReduction  float64

	TotalSize    int
	TotalDur     uint64
	RestSize     int
	RestDuration uint64
}

// Render writes the summary.
func (s *STLSummaryResult) Render(w io.Writer) {
	fmt.Fprintf(w, "STL summary\n")
	fmt.Fprintf(w, "  whole-STL size: %s instructions, duration: %s cc\n",
		report.Int(s.TotalSize), report.Uint(s.TotalDur))
	fmt.Fprintf(w, "  DU+FU PTPs share: %.2f%% of size, %.2f%% of duration\n",
		s.CandidateSizeShare, s.CandidateDurShare)
	fmt.Fprintf(w, "  whole-STL reduction after compaction: %.2f%% size, %.2f%% duration\n",
		s.STLSizeReduction, s.STLDurReduction)
}

// STLSummary composes the six PTPs with an uncompacted control-unit
// remainder (the STL parts the paper excludes from compaction) and
// computes the whole-STL reduction implied by Tables II and III.
func STLSummary(e *Env, t2, t3 *CompactionResult) (*STLSummaryResult, error) {
	var restSize int
	var restCC uint64
	for _, rest := range RestOfSTL(e) {
		_, cc, err := e.RunPTP(rest)
		if err != nil {
			return nil, err
		}
		restSize += len(rest.Prog)
		restCC += cc
	}

	var candSize, candCompSize int
	var candDur, candCompDur uint64
	for _, rows := range [][]CompactRow{t2.Rows, t3.Rows} {
		for _, r := range rows {
			if r.Name == "IMM+MEM+CNTRL" || r.Name == "TPGEN+RAND" {
				continue // combined rows double-count
			}
			candSize += r.OrigSize
			candCompSize += r.CompSize
			candDur += r.OrigDuration
			candCompDur += r.CompDuration
		}
	}

	total := candSize + restSize
	totalDur := candDur + restCC
	out := &STLSummaryResult{
		CandidateSizeShare: 100 * float64(candSize) / float64(total),
		CandidateDurShare:  100 * float64(candDur) / float64(totalDur),
		STLSizeReduction:   100 * float64(candSize-candCompSize) / float64(total),
		STLDurReduction:    100 * float64(candDur-candCompDur) / float64(totalDur),
		TotalSize:          total,
		TotalDur:           totalDur,
		RestSize:           restSize,
		RestDuration:       restCC,
	}
	return out, nil
}

// RestOfSTL generates the non-candidate remainder of the STL: PTPs
// carefully devised for control units, excluded from compaction because
// any instruction removal would break their test algorithms. It is sized
// so the six candidate PTPs hold roughly the paper's ~90% share of the
// STL's instructions.
func RestOfSTL(e *Env) []*stl.PTP {
	candSize := 0
	for _, p := range e.PTPs() {
		candSize += len(p.Prog)
	}
	// A full-depth divergence-stack walk plus CNTRL-style control tests.
	divg := ptpgen.DIVG(5, 2, e.Params.Seed+31)
	// Together ~10.3% of the STL (90.69% candidate share in the paper).
	sections := (candSize/10 - len(divg.Prog)) / 22
	if sections < 2 {
		sections = 2
	}
	// 256 threads: the remainder's runtime share should not dwarf the
	// candidates' (the paper's non-candidate PTPs hold ~24% of the STL
	// duration).
	rest := ptpgen.CNTRLThreads(sections, 256, e.Params.Seed+30)
	rest.Name = "OTHERS"
	return []*stl.PTP{rest, divg}
}
