// Package failpoint is a deterministic fault-injection registry: named
// injection points compiled into the failure surfaces of the codebase
// (journal appends, shard transports, the resilient runner) that cost
// one atomic load when disarmed and, when armed, fire seeded,
// trigger-counted fault actions — error returns, latency spikes,
// panics, torn/short writes, bit-flip corruption, and drop/duplicate/
// reorder decisions for message-shaped call sites.
//
// Design rules:
//
//   - Zero overhead when disabled. A site holds a *Failpoint whose
//     armed state is an atomic pointer; the disarmed fast path is a
//     single load-and-nil-check, with no map lookup, no lock, and no
//     allocation. Production binaries keep the sites compiled in.
//   - Deterministic. Every armed failpoint owns a rand.Rand seeded from
//     its Config, and its probability rolls and trigger counters are
//     advanced under a lock in evaluation order, so a given seed and
//     call sequence always yields the same fate sequence.
//   - Declared, not stringly created. Sites register their names with
//     New at package init; Enable rejects unknown names, and Names
//     feeds the lint test that insists every registered failpoint is
//     exercised by at least one test.
package failpoint

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Kind enumerates the fault actions a failpoint can inject. Sites
// interpret kinds through the helper they call: Inject handles Error/
// Delay/Panic, InjectWrite additionally applies ShortWrite and Corrupt
// to a payload, and message-shaped sites (the dist transport wrapper)
// read Drop/Duplicate/Reorder from Eval directly.
type Kind int

const (
	KindNone Kind = iota
	// KindError makes the site return Config.Err (or a generic
	// injected-error value).
	KindError
	// KindDelay makes the site sleep Config.Delay before proceeding.
	KindDelay
	// KindPanic makes the site panic with Config.Msg.
	KindPanic
	// KindShortWrite truncates the site's payload to Config.Bytes bytes
	// (default half) and surfaces Config.Err (default io.ErrShortWrite):
	// a torn write, with the prefix really written.
	KindShortWrite
	// KindCorrupt flips one bit of the site's payload (Config.Bit, or a
	// seeded-random bit) and lets the operation succeed: silent rot.
	KindCorrupt
	// KindDrop tells a message-shaped site to do the work but lose the
	// reply.
	KindDrop
	// KindDuplicate tells a message-shaped site to answer with a stale
	// copy of an earlier reply.
	KindDuplicate
	// KindReorder tells a message-shaped site to deliver replies out of
	// order (swap with a held earlier reply).
	KindReorder
)

var kindNames = map[Kind]string{
	KindNone: "none", KindError: "error", KindDelay: "delay",
	KindPanic: "panic", KindShortWrite: "short", KindCorrupt: "corrupt",
	KindDrop: "drop", KindDuplicate: "dup", KindReorder: "reorder",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Config arms one failpoint: the action to take and the trigger policy
// that decides which evaluations fire it.
type Config struct {
	Kind Kind
	// Err is the error KindError returns and KindShortWrite surfaces
	// (defaults: a generic injected error; io.ErrShortWrite).
	Err error
	// Delay is KindDelay's sleep.
	Delay time.Duration
	// Msg is KindPanic's panic message.
	Msg string
	// Bytes is KindShortWrite's kept-prefix length (<=0: half the
	// payload).
	Bytes int
	// Bit selects KindCorrupt's flipped bit; negative picks a seeded
	// random bit per firing.
	Bit int
	// Prob is the firing probability per evaluation (<=0 or >=1 fires
	// on every evaluation that passes After/Times).
	Prob float64
	// After skips the first After evaluations (trigger counting: "fire
	// from the Nth call on").
	After int
	// Times caps the number of firings (0 = unlimited).
	Times int
	// Seed drives the probability rolls and random bit choices.
	Seed int64
}

// Outcome is one firing of a failpoint, with the action parameters
// resolved (error defaulted, random bit drawn).
type Outcome struct {
	Kind  Kind
	Err   error
	Delay time.Duration
	Msg   string
	Bytes int
	// Bit is a seeded random non-negative int; KindCorrupt sites reduce
	// it modulo the payload's bit length, and message-shaped sites may
	// reuse it as a deterministic variant selector.
	Bit int
}

// armed is the state of an enabled failpoint. Counters and the RNG are
// advanced under the mutex so the fate sequence is a pure function of
// (Config, evaluation order).
type armed struct {
	mu    sync.Mutex
	cfg   Config
	rng   *rand.Rand
	evals int
	fires int
}

// Failpoint is one named injection point. Sites create it with New at
// package init and call Eval/Inject/InjectWrite on the hot path.
type Failpoint struct {
	name string
	arm  atomic.Pointer[armed]
}

var (
	regMu    sync.Mutex
	registry = map[string]*Failpoint{}
)

// New registers a named failpoint and returns its handle. Names are
// global and must be unique; registering a duplicate panics (it is a
// programming error, caught at init).
func New(name string) *Failpoint {
	regMu.Lock()
	defer regMu.Unlock()
	if name == "" {
		panic("failpoint: empty name")
	}
	if _, dup := registry[name]; dup {
		panic("failpoint: duplicate registration of " + name)
	}
	fp := &Failpoint{name: name}
	registry[name] = fp
	return fp
}

// Lookup returns the registered failpoint with the given name, or nil.
func Lookup(name string) *Failpoint {
	regMu.Lock()
	defer regMu.Unlock()
	return registry[name]
}

// Names returns every registered failpoint name, sorted. This is the
// surface the name-coverage lint test walks.
func Names() []string {
	regMu.Lock()
	defer regMu.Unlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Armed returns the names of currently enabled failpoints, sorted.
func Armed() []string {
	regMu.Lock()
	defer regMu.Unlock()
	var names []string
	for n, fp := range registry {
		if fp.Enabled() {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names
}

// Enable arms the named failpoint with cfg. Unknown names are an error:
// a chaos schedule referring to a failpoint that no longer exists must
// fail loudly, not silently inject nothing.
func Enable(name string, cfg Config) error {
	fp := Lookup(name)
	if fp == nil {
		return fmt.Errorf("failpoint: unknown failpoint %q (known: %v)", name, Names())
	}
	if cfg.Kind == KindNone {
		return fmt.Errorf("failpoint: enabling %q with no action kind", name)
	}
	if cfg.Kind == KindDelay && cfg.Delay <= 0 {
		return fmt.Errorf("failpoint: enabling %q as delay without a duration", name)
	}
	fp.arm.Store(&armed{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))})
	return nil
}

// Disable disarms the named failpoint (no-op when unknown or disarmed).
func Disable(name string) {
	if fp := Lookup(name); fp != nil {
		fp.arm.Store(nil)
	}
}

// Reset disarms every failpoint. Chaos harnesses call it between
// iterations so no schedule leaks into the next.
func Reset() {
	regMu.Lock()
	defer regMu.Unlock()
	for _, fp := range registry {
		fp.arm.Store(nil)
	}
}

// Name returns the failpoint's registered name.
func (f *Failpoint) Name() string { return f.name }

// Enabled reports whether the failpoint is armed. One atomic load.
func (f *Failpoint) Enabled() bool { return f != nil && f.arm.Load() != nil }

// Eval advances the failpoint's trigger state and reports whether this
// evaluation fires, with the resolved action. The disarmed fast path is
// a single atomic load and returns immediately.
func (f *Failpoint) Eval() (Outcome, bool) {
	if f == nil {
		return Outcome{}, false
	}
	a := f.arm.Load()
	if a == nil {
		return Outcome{}, false
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.evals++
	if a.evals <= a.cfg.After {
		return Outcome{}, false
	}
	if a.cfg.Times > 0 && a.fires >= a.cfg.Times {
		return Outcome{}, false
	}
	if p := a.cfg.Prob; p > 0 && p < 1 && a.rng.Float64() >= p {
		return Outcome{}, false
	}
	a.fires++
	out := Outcome{
		Kind:  a.cfg.Kind,
		Err:   a.cfg.Err,
		Delay: a.cfg.Delay,
		Msg:   a.cfg.Msg,
		Bytes: a.cfg.Bytes,
		Bit:   int(a.rng.Int63()),
	}
	if a.cfg.Bit >= 0 && a.cfg.Kind == KindCorrupt {
		out.Bit = a.cfg.Bit
	}
	if out.Msg == "" {
		out.Msg = fmt.Sprintf("failpoint %s: injected %s", f.name, out.Kind)
	}
	if out.Err == nil {
		switch out.Kind {
		case KindShortWrite:
			out.Err = io.ErrShortWrite
		default:
			out.Err = fmt.Errorf("failpoint %s: injected %s", f.name, out.Kind)
		}
	}
	return out, true
}

// Inject is the plain call-site helper: it sleeps for KindDelay, panics
// for KindPanic, and returns the injected error for every other fired
// kind (nil when the failpoint does not fire).
func (f *Failpoint) Inject() error {
	out, ok := f.Eval()
	if !ok {
		return nil
	}
	switch out.Kind {
	case KindDelay:
		time.Sleep(out.Delay)
		return nil
	case KindPanic:
		panic(out.Msg)
	default:
		return out.Err
	}
}

// InjectWrite is the payload call-site helper, for sites about to write
// p to stable storage or a wire:
//
//   - KindShortWrite returns the kept prefix of p and the injected
//     error; the caller should write exactly the prefix it got and then
//     surface the error, so the torn bytes really land.
//   - KindCorrupt returns a copy of p with one bit flipped and a nil
//     error: the write "succeeds" and the rot is only found on read.
//   - other kinds behave as Inject (payload unchanged).
//
// When the failpoint does not fire, p is returned as-is with nil error.
func (f *Failpoint) InjectWrite(p []byte) ([]byte, error) {
	out, ok := f.Eval()
	if !ok {
		return p, nil
	}
	switch out.Kind {
	case KindShortWrite:
		n := out.Bytes
		if n <= 0 || n >= len(p) {
			n = len(p) / 2
		}
		return p[:n], out.Err
	case KindCorrupt:
		if len(p) == 0 {
			return p, nil
		}
		cp := append([]byte(nil), p...)
		bit := out.Bit % (len(cp) * 8)
		cp[bit/8] ^= 1 << (bit % 8)
		return cp, nil
	case KindDelay:
		time.Sleep(out.Delay)
		return p, nil
	case KindPanic:
		panic(out.Msg)
	default:
		return p, out.Err
	}
}

// ErrInjected is a sentinel some tests use as Config.Err to assert an
// error came from a failpoint rather than the real world.
var ErrInjected = errors.New("failpoint: injected failure")
