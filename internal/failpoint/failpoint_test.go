package failpoint

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"syscall"
	"testing"
	"time"
)

// tfp registers a uniquely named failpoint for this test binary and
// disarms it on cleanup.
func tfp(t *testing.T) *Failpoint {
	t.Helper()
	fp := New("test." + t.Name())
	t.Cleanup(func() { Disable(fp.Name()) })
	return fp
}

func TestDisarmedIsInert(t *testing.T) {
	fp := tfp(t)
	if fp.Enabled() {
		t.Fatal("fresh failpoint reports enabled")
	}
	if err := fp.Inject(); err != nil {
		t.Fatalf("disarmed Inject returned %v", err)
	}
	p := []byte("payload")
	out, err := fp.InjectWrite(p)
	if err != nil || !bytes.Equal(out, p) {
		t.Fatalf("disarmed InjectWrite mutated payload: %q, %v", out, err)
	}
	if _, fired := fp.Eval(); fired {
		t.Fatal("disarmed failpoint fired")
	}
	// A nil handle (site compiled against an optional failpoint) is
	// inert too.
	var nilFP *Failpoint
	if nilFP.Enabled() || nilFP.Inject() != nil {
		t.Fatal("nil failpoint is not inert")
	}
}

func TestTriggerCounting(t *testing.T) {
	fp := tfp(t)
	if err := Enable(fp.Name(), Config{Kind: KindError, Err: ErrInjected, After: 2, Times: 3}); err != nil {
		t.Fatal(err)
	}
	var fired int
	for i := 0; i < 10; i++ {
		if err := fp.Inject(); err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("call %d: wrong error %v", i, err)
			}
			if i < 2 {
				t.Fatalf("fired during the After window at call %d", i)
			}
			fired++
		}
	}
	if fired != 3 {
		t.Fatalf("fired %d times, want exactly Times=3", fired)
	}
}

func TestSeededProbabilityIsDeterministic(t *testing.T) {
	fp := tfp(t)
	fates := func(seed int64) []bool {
		if err := Enable(fp.Name(), Config{Kind: KindError, Prob: 0.4, Seed: seed}); err != nil {
			t.Fatal(err)
		}
		var out []bool
		for i := 0; i < 64; i++ {
			_, fired := fp.Eval()
			out = append(out, fired)
		}
		return out
	}
	a, b := fates(7), fates(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at evaluation %d", i)
		}
	}
	c := fates(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical 64-roll fate sequences")
	}
}

func TestInjectDelayAndPanic(t *testing.T) {
	fp := tfp(t)
	if err := Enable(fp.Name(), Config{Kind: KindDelay, Delay: 10 * time.Millisecond, Times: 1}); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := fp.Inject(); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) < 10*time.Millisecond {
		t.Fatal("delay did not sleep")
	}

	if err := Enable(fp.Name(), Config{Kind: KindPanic, Msg: "boom"}); err != nil {
		t.Fatal(err)
	}
	func() {
		defer func() {
			r := recover()
			if r == nil || !strings.Contains(r.(string), "boom") {
				t.Fatalf("panic = %v, want boom", r)
			}
		}()
		fp.Inject()
		t.Fatal("panic failpoint did not panic")
	}()
}

func TestInjectWriteShortAndCorrupt(t *testing.T) {
	fp := tfp(t)
	p := []byte("0123456789")

	if err := Enable(fp.Name(), Config{Kind: KindShortWrite, Bytes: 3, Err: syscall.ENOSPC}); err != nil {
		t.Fatal(err)
	}
	out, err := fp.InjectWrite(p)
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("short write error = %v, want ENOSPC", err)
	}
	if string(out) != "012" {
		t.Fatalf("kept prefix = %q, want %q", out, "012")
	}

	if err := Enable(fp.Name(), Config{Kind: KindShortWrite}); err != nil {
		t.Fatal(err)
	}
	out, err = fp.InjectWrite(p)
	if !errors.Is(err, io.ErrShortWrite) || len(out) != len(p)/2 {
		t.Fatalf("default short write = (%q, %v), want half prefix + io.ErrShortWrite", out, err)
	}

	if err := Enable(fp.Name(), Config{Kind: KindCorrupt, Bit: 1}); err != nil {
		t.Fatal(err)
	}
	out, err = fp.InjectWrite(p)
	if err != nil {
		t.Fatalf("corrupt must succeed silently, got %v", err)
	}
	if bytes.Equal(out, p) {
		t.Fatal("corrupt did not change the payload")
	}
	if out[0] != p[0]^2 {
		t.Fatalf("bit 1 flip produced %q", out)
	}
	if !bytes.Equal(p, []byte("0123456789")) {
		t.Fatal("corrupt mutated the caller's buffer instead of a copy")
	}
}

func TestEnableRejectsUnknownAndInvalid(t *testing.T) {
	if err := Enable("no.such.failpoint", Config{Kind: KindError}); err == nil {
		t.Fatal("unknown name accepted")
	}
	fp := tfp(t)
	if err := Enable(fp.Name(), Config{}); err == nil {
		t.Fatal("KindNone accepted")
	}
	if err := Enable(fp.Name(), Config{Kind: KindDelay}); err == nil {
		t.Fatal("delay without duration accepted")
	}
}

func TestRegistryListing(t *testing.T) {
	fp := tfp(t)
	found := false
	for _, n := range Names() {
		if n == fp.Name() {
			found = true
		}
	}
	if !found {
		t.Fatal("registered name missing from Names()")
	}
	if err := Enable(fp.Name(), Config{Kind: KindError}); err != nil {
		t.Fatal(err)
	}
	armedHas := false
	for _, n := range Armed() {
		if n == fp.Name() {
			armedHas = true
		}
	}
	if !armedHas {
		t.Fatal("armed name missing from Armed()")
	}
	Disable(fp.Name())
	for _, n := range Armed() {
		if n == fp.Name() {
			t.Fatal("disabled name still listed as armed")
		}
	}
}

func TestEnableSpec(t *testing.T) {
	a, b := tfp(t), New("test."+t.Name()+".b")
	t.Cleanup(func() { Disable(b.Name()) })

	spec := a.Name() + "=error(ENOSPC)|p=0.5|seed=3|after=1|times=2, " + b.Name() + "=delay(15ms)"
	if err := EnableSpec(spec); err != nil {
		t.Fatal(err)
	}
	if !a.Enabled() || !b.Enabled() {
		t.Fatal("spec did not arm both failpoints")
	}
	// The ENOSPC shorthand must produce a syscall.ENOSPC-classifiable
	// error once the trigger window opens.
	a.Eval() // consumed by after=1
	var got error
	for i := 0; i < 32 && got == nil; i++ {
		got = a.Inject()
	}
	if !errors.Is(got, syscall.ENOSPC) {
		t.Fatalf("spec error(ENOSPC) produced %v", got)
	}

	for _, bad := range []string{
		"nonsense",
		a.Name() + "=frobnicate",
		a.Name() + "=delay",
		a.Name() + "=drop(3)",
		a.Name() + "=error|p=x",
		"no.such.failpoint=error",
	} {
		if err := EnableSpec(bad); err == nil {
			t.Fatalf("spec %q accepted", bad)
		}
	}
}

// BenchmarkDisarmedEval documents the zero-overhead claim: a disarmed
// failpoint evaluation is one atomic load (sub-nanosecond on modern
// hardware), so leaving sites compiled into production paths is free.
func BenchmarkDisarmedEval(b *testing.B) {
	fp := New("bench.disarmed")
	defer Disable(fp.Name())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, fired := fp.Eval(); fired {
			b.Fatal("fired")
		}
	}
}
