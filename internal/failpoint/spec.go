package failpoint

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"syscall"
	"time"
)

// EnableSpec arms failpoints from a human-writable spec string, the
// format the -failpoints CLI flags accept. Entries are comma-separated:
//
//	name=action[|mod=value|...]
//
// Actions (parenthesized argument optional unless noted):
//
//	error[(msg)]    return an error; msg "ENOSPC" injects syscall.ENOSPC
//	delay(dur)      sleep a time.ParseDuration duration (required)
//	panic[(msg)]    panic
//	short[(bytes)]  torn write keeping the first bytes bytes
//	corrupt[(bit)]  flip payload bit (default: seeded random bit)
//	drop            compute, then lose the reply
//	dup             answer with a stale earlier reply
//	reorder         deliver replies out of order
//
// Modifiers: p=<float> firing probability, after=<int> skip the first
// N evaluations, times=<int> cap firings, seed=<int> RNG seed,
// delay=<dur> attach a duration to a non-delay action (e.g. the
// Retry-After hint an injected busy reply carries).
//
// Example:
//
//	journal.append.sync=error(ENOSPC)|p=0.1|seed=7,dist.reply.drop=drop|times=3
func EnableSpec(spec string) error {
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, rest, ok := strings.Cut(entry, "=")
		if !ok {
			return fmt.Errorf("failpoint: spec entry %q: want name=action", entry)
		}
		cfg, err := ParseConfig(rest)
		if err != nil {
			return fmt.Errorf("failpoint: spec entry %q: %w", entry, err)
		}
		if err := Enable(strings.TrimSpace(name), cfg); err != nil {
			return err
		}
	}
	return nil
}

// ParseConfig parses the action[|mod=value...] part of a spec entry.
func ParseConfig(s string) (Config, error) {
	parts := strings.Split(s, "|")
	cfg, err := parseAction(strings.TrimSpace(parts[0]))
	if err != nil {
		return Config{}, err
	}
	for _, mod := range parts[1:] {
		key, val, ok := strings.Cut(strings.TrimSpace(mod), "=")
		if !ok {
			return Config{}, fmt.Errorf("modifier %q: want key=value", mod)
		}
		switch key {
		case "p":
			if cfg.Prob, err = strconv.ParseFloat(val, 64); err != nil {
				return Config{}, fmt.Errorf("modifier p=%q: %v", val, err)
			}
		case "after":
			if cfg.After, err = strconv.Atoi(val); err != nil {
				return Config{}, fmt.Errorf("modifier after=%q: %v", val, err)
			}
		case "times":
			if cfg.Times, err = strconv.Atoi(val); err != nil {
				return Config{}, fmt.Errorf("modifier times=%q: %v", val, err)
			}
		case "seed":
			if cfg.Seed, err = strconv.ParseInt(val, 10, 64); err != nil {
				return Config{}, fmt.Errorf("modifier seed=%q: %v", val, err)
			}
		case "delay":
			if cfg.Delay, err = time.ParseDuration(val); err != nil {
				return Config{}, fmt.Errorf("modifier delay=%q: %v", val, err)
			}
		default:
			return Config{}, fmt.Errorf("unknown modifier %q", key)
		}
	}
	return cfg, nil
}

// parseAction parses "kind" or "kind(arg)".
func parseAction(s string) (Config, error) {
	kind, arg := s, ""
	if i := strings.IndexByte(s, '('); i >= 0 {
		if !strings.HasSuffix(s, ")") {
			return Config{}, fmt.Errorf("action %q: unclosed argument", s)
		}
		kind, arg = s[:i], s[i+1:len(s)-1]
	}
	cfg := Config{Bit: -1}
	switch kind {
	case "error":
		cfg.Kind = KindError
		if arg == "ENOSPC" {
			cfg.Err = syscall.ENOSPC
		} else if arg != "" {
			cfg.Err = errors.New(arg)
		}
	case "delay":
		cfg.Kind = KindDelay
		d, err := time.ParseDuration(arg)
		if err != nil {
			return Config{}, fmt.Errorf("action delay: %v", err)
		}
		cfg.Delay = d
	case "panic":
		cfg.Kind = KindPanic
		cfg.Msg = arg
	case "short":
		cfg.Kind = KindShortWrite
		if arg != "" {
			n, err := strconv.Atoi(arg)
			if err != nil {
				return Config{}, fmt.Errorf("action short: %v", err)
			}
			cfg.Bytes = n
		}
	case "corrupt":
		cfg.Kind = KindCorrupt
		if arg != "" {
			bit, err := strconv.Atoi(arg)
			if err != nil {
				return Config{}, fmt.Errorf("action corrupt: %v", err)
			}
			cfg.Bit = bit
		}
	case "drop":
		cfg.Kind = KindDrop
	case "dup":
		cfg.Kind = KindDuplicate
	case "reorder":
		cfg.Kind = KindReorder
	default:
		return Config{}, fmt.Errorf("unknown action %q", kind)
	}
	if arg != "" && (cfg.Kind == KindDrop || cfg.Kind == KindDuplicate || cfg.Kind == KindReorder) {
		return Config{}, fmt.Errorf("action %q takes no argument", kind)
	}
	return cfg, nil
}

// Spec renders the Config as the action[|mod=value...] fragment
// ParseConfig accepts, so a failing chaos schedule can print the exact
// `-failpoints` arming that reproduces it standalone. Error messages
// containing the spec delimiters (comma, pipe, parens) do not
// round-trip; everything the canonical schedules arm does.
func (c Config) Spec() string {
	var b strings.Builder
	switch c.Kind {
	case KindError:
		b.WriteString("error")
		if errors.Is(c.Err, syscall.ENOSPC) {
			b.WriteString("(ENOSPC)")
		} else if c.Err != nil {
			fmt.Fprintf(&b, "(%s)", c.Err)
		}
	case KindDelay:
		fmt.Fprintf(&b, "delay(%s)", c.Delay)
	case KindPanic:
		b.WriteString("panic")
		if c.Msg != "" {
			fmt.Fprintf(&b, "(%s)", c.Msg)
		}
	case KindShortWrite:
		b.WriteString("short")
		if c.Bytes > 0 {
			fmt.Fprintf(&b, "(%d)", c.Bytes)
		}
	case KindCorrupt:
		b.WriteString("corrupt")
		if c.Bit >= 0 {
			fmt.Fprintf(&b, "(%d)", c.Bit)
		}
	case KindDrop:
		b.WriteString("drop")
	case KindDuplicate:
		b.WriteString("dup")
	case KindReorder:
		b.WriteString("reorder")
	default:
		return ""
	}
	if c.Prob > 0 {
		fmt.Fprintf(&b, "|p=%g", c.Prob)
	}
	if c.After > 0 {
		fmt.Fprintf(&b, "|after=%d", c.After)
	}
	if c.Times > 0 {
		fmt.Fprintf(&b, "|times=%d", c.Times)
	}
	if c.Seed != 0 {
		fmt.Fprintf(&b, "|seed=%d", c.Seed)
	}
	if c.Delay > 0 && c.Kind != KindDelay {
		fmt.Fprintf(&b, "|delay=%s", c.Delay)
	}
	return b.String()
}
