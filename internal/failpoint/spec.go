package failpoint

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"syscall"
	"time"
)

// EnableSpec arms failpoints from a human-writable spec string, the
// format the -failpoints CLI flags accept. Entries are comma-separated:
//
//	name=action[|mod=value|...]
//
// Actions (parenthesized argument optional unless noted):
//
//	error[(msg)]    return an error; msg "ENOSPC" injects syscall.ENOSPC
//	delay(dur)      sleep a time.ParseDuration duration (required)
//	panic[(msg)]    panic
//	short[(bytes)]  torn write keeping the first bytes bytes
//	corrupt[(bit)]  flip payload bit (default: seeded random bit)
//	drop            compute, then lose the reply
//	dup             answer with a stale earlier reply
//	reorder         deliver replies out of order
//
// Modifiers: p=<float> firing probability, after=<int> skip the first
// N evaluations, times=<int> cap firings, seed=<int> RNG seed.
//
// Example:
//
//	journal.append.sync=error(ENOSPC)|p=0.1|seed=7,dist.reply.drop=drop|times=3
func EnableSpec(spec string) error {
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, rest, ok := strings.Cut(entry, "=")
		if !ok {
			return fmt.Errorf("failpoint: spec entry %q: want name=action", entry)
		}
		cfg, err := ParseConfig(rest)
		if err != nil {
			return fmt.Errorf("failpoint: spec entry %q: %w", entry, err)
		}
		if err := Enable(strings.TrimSpace(name), cfg); err != nil {
			return err
		}
	}
	return nil
}

// ParseConfig parses the action[|mod=value...] part of a spec entry.
func ParseConfig(s string) (Config, error) {
	parts := strings.Split(s, "|")
	cfg, err := parseAction(strings.TrimSpace(parts[0]))
	if err != nil {
		return Config{}, err
	}
	for _, mod := range parts[1:] {
		key, val, ok := strings.Cut(strings.TrimSpace(mod), "=")
		if !ok {
			return Config{}, fmt.Errorf("modifier %q: want key=value", mod)
		}
		switch key {
		case "p":
			if cfg.Prob, err = strconv.ParseFloat(val, 64); err != nil {
				return Config{}, fmt.Errorf("modifier p=%q: %v", val, err)
			}
		case "after":
			if cfg.After, err = strconv.Atoi(val); err != nil {
				return Config{}, fmt.Errorf("modifier after=%q: %v", val, err)
			}
		case "times":
			if cfg.Times, err = strconv.Atoi(val); err != nil {
				return Config{}, fmt.Errorf("modifier times=%q: %v", val, err)
			}
		case "seed":
			if cfg.Seed, err = strconv.ParseInt(val, 10, 64); err != nil {
				return Config{}, fmt.Errorf("modifier seed=%q: %v", val, err)
			}
		default:
			return Config{}, fmt.Errorf("unknown modifier %q", key)
		}
	}
	return cfg, nil
}

// parseAction parses "kind" or "kind(arg)".
func parseAction(s string) (Config, error) {
	kind, arg := s, ""
	if i := strings.IndexByte(s, '('); i >= 0 {
		if !strings.HasSuffix(s, ")") {
			return Config{}, fmt.Errorf("action %q: unclosed argument", s)
		}
		kind, arg = s[:i], s[i+1:len(s)-1]
	}
	cfg := Config{Bit: -1}
	switch kind {
	case "error":
		cfg.Kind = KindError
		if arg == "ENOSPC" {
			cfg.Err = syscall.ENOSPC
		} else if arg != "" {
			cfg.Err = errors.New(arg)
		}
	case "delay":
		cfg.Kind = KindDelay
		d, err := time.ParseDuration(arg)
		if err != nil {
			return Config{}, fmt.Errorf("action delay: %v", err)
		}
		cfg.Delay = d
	case "panic":
		cfg.Kind = KindPanic
		cfg.Msg = arg
	case "short":
		cfg.Kind = KindShortWrite
		if arg != "" {
			n, err := strconv.Atoi(arg)
			if err != nil {
				return Config{}, fmt.Errorf("action short: %v", err)
			}
			cfg.Bytes = n
		}
	case "corrupt":
		cfg.Kind = KindCorrupt
		if arg != "" {
			bit, err := strconv.Atoi(arg)
			if err != nil {
				return Config{}, fmt.Errorf("action corrupt: %v", err)
			}
			cfg.Bit = bit
		}
	case "drop":
		cfg.Kind = KindDrop
	case "dup":
		cfg.Kind = KindDuplicate
	case "reorder":
		cfg.Kind = KindReorder
	default:
		return Config{}, fmt.Errorf("unknown action %q", kind)
	}
	if arg != "" && (cfg.Kind == KindDrop || cfg.Kind == KindDuplicate || cfg.Kind == KindReorder) {
		return Config{}, fmt.Errorf("action %q takes no argument", kind)
	}
	return cfg, nil
}
