package failpoint

import (
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestParseConfigErrors pins down every spec-parse error path with a
// positioned message: an operator who fat-fingers a -failpoints flag
// must be told which fragment is wrong, not just "bad spec".
func TestParseConfigErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want string // substring the error must carry (the offending fragment)
	}{
		{"unknown action", "frobnicate", `unknown action "frobnicate"`},
		{"unknown action with arg", "explode(now)", `unknown action "explode"`},
		{"empty action", "", `unknown action ""`},
		{"unclosed argument", "error(ENOSPC", `action "error(ENOSPC": unclosed argument`},
		{"delay requires duration", "delay", "action delay:"},
		{"delay bad duration", "delay(fast)", "action delay:"},
		{"short bad bytes", "short(many)", "action short:"},
		{"corrupt bad bit", "corrupt(x)", "action corrupt:"},
		{"drop takes no argument", "drop(3)", `action "drop" takes no argument`},
		{"dup takes no argument", "dup(1)", `action "dup" takes no argument`},
		{"reorder takes no argument", "reorder(1)", `action "reorder" takes no argument`},
		{"malformed times", "error|times=", `modifier times=""`},
		{"non-numeric times", "error|times=three", `modifier times="three"`},
		{"malformed p", "error|p=half", `modifier p="half"`},
		{"malformed after", "error|after=1.5", `modifier after="1.5"`},
		{"malformed seed", "error|seed=0x7", `modifier seed="0x7"`},
		{"malformed delay modifier", "error|delay=soon", `modifier delay="soon"`},
		{"modifier missing value", "error|times", `modifier "times": want key=value`},
		{"unknown modifier", "error|weight=2", `unknown modifier "weight"`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseConfig(tc.in)
			if err == nil {
				t.Fatalf("ParseConfig(%q) accepted", tc.in)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("ParseConfig(%q) error %q does not carry %q", tc.in, err, tc.want)
			}
		})
	}
}

// TestEnableSpecErrors covers the entry-level failures EnableSpec adds
// on top of ParseConfig: missing name=action shape, unregistered and
// empty site names. Every error must quote the offending entry.
func TestEnableSpecErrors(t *testing.T) {
	fp := tfp(t)
	cases := []struct {
		name string
		in   string
		want string
	}{
		{"no equals", "justaname", `spec entry "justaname": want name=action`},
		{"empty site", "=error", `unknown failpoint ""`},
		{"blank site", "  =error", `unknown failpoint ""`},
		{"unregistered site", "no.such.site=error", `unknown failpoint "no.such.site"`},
		{"bad action positioned", fp.Name() + "=warp", `spec entry "` + fp.Name() + `=warp"`},
		{"bad modifier positioned", fp.Name() + "=error|times=x", `modifier times="x"`},
		{"later entry fails", fp.Name() + "=error,oops", `spec entry "oops"`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer Disable(fp.Name())
			err := EnableSpec(tc.in)
			if err == nil {
				t.Fatalf("EnableSpec(%q) accepted", tc.in)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("EnableSpec(%q) error %q does not carry %q", tc.in, err, tc.want)
			}
		})
	}
	// Whitespace and empty entries are tolerated, not errors.
	if err := EnableSpec(" , " + fp.Name() + "=error , "); err != nil {
		t.Fatalf("spec with blank entries rejected: %v", err)
	}
	Disable(fp.Name())
}

// TestConfigSpecRoundTrip: Spec must emit exactly what ParseConfig
// reads back, for every shape the canonical chaos schedules arm — the
// printed repro line is only useful if it re-arms the same fates.
func TestConfigSpecRoundTrip(t *testing.T) {
	cases := []Config{
		{Kind: KindError, Bit: -1},
		{Kind: KindError, Err: syscall.ENOSPC, Prob: 0.1, Seed: 7, Bit: -1},
		{Kind: KindError, After: 1, Times: 1, Seed: 71, Bit: -1},
		{Kind: KindError, Delay: time.Millisecond, Times: 3, Seed: 73, Bit: -1}, // busy reply + Retry-After hint
		{Kind: KindDelay, Delay: 3 * time.Millisecond, Prob: 0.3, Seed: 44, Bit: -1},
		{Kind: KindPanic, Msg: "boom", Times: 2, Bit: -1},
		{Kind: KindShortWrite, Bytes: 5, Times: 3, Seed: 11, Bit: -1},
		{Kind: KindCorrupt, Prob: 1, Seed: 51, Bit: -1},
		{Kind: KindCorrupt, Bit: 3},
		{Kind: KindDrop, Prob: 0.2, Seed: 41, Bit: -1},
		{Kind: KindDuplicate, Prob: 0.2, Seed: 42, Bit: -1},
		{Kind: KindReorder, Prob: 0.3, Seed: 43, Bit: -1},
	}
	for _, want := range cases {
		spec := want.Spec()
		got, err := ParseConfig(spec)
		if err != nil {
			t.Fatalf("ParseConfig(Spec(%+v) = %q): %v", want, spec, err)
		}
		// Err values compare by classification, not identity.
		if (got.Err == nil) != (want.Err == nil) ||
			got.Kind != want.Kind || got.Delay != want.Delay || got.Msg != want.Msg ||
			got.Bytes != want.Bytes || got.Bit != want.Bit || got.Prob != want.Prob ||
			got.After != want.After || got.Times != want.Times || got.Seed != want.Seed {
			t.Fatalf("round trip via %q: got %+v, want %+v", spec, got, want)
		}
	}
	if (Config{Kind: KindNone}).Spec() != "" {
		t.Fatal("KindNone must render as the empty (unarmable) spec")
	}
}

// FuzzParseConfig shakes the spec grammar: any input must either parse
// into a Config whose Spec() re-parses cleanly, or fail with an error —
// never panic, never parse into something its own rendering rejects.
func FuzzParseConfig(f *testing.F) {
	for _, seed := range []string{
		"error", "error(ENOSPC)|p=0.1|seed=7", "delay(15ms)", "panic(boom)|times=2",
		"short(5)|after=1", "corrupt(3)", "drop|p=0.2", "dup", "reorder|seed=43",
		"error|times=", "frobnicate", "delay", "drop(3)", "error|p=x",
		"error|delay=1ms", "error(msg with spaces)|p=0.5|after=1|times=2|seed=9",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, in string) {
		cfg, err := ParseConfig(in)
		if err != nil {
			return
		}
		spec := cfg.Spec()
		if spec == "" {
			t.Fatalf("ParseConfig(%q) accepted but Spec() is unarmable: %+v", in, cfg)
		}
		// Rendering is canonical: it must survive one more round trip,
		// unless the original carried spec delimiters inside an argument
		// (documented non-round-trippable inputs).
		if strings.ContainsAny(in, "|,()") && strings.ContainsAny(cfg.Msg+errString(cfg.Err), "|,()") {
			return
		}
		if _, err := ParseConfig(spec); err != nil {
			t.Fatalf("Spec(%+v) = %q does not re-parse: %v", cfg, spec, err)
		}
	})
}

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}
