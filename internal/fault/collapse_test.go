package fault

import (
	"math/rand"
	"testing"

	"gpustl/internal/netlist"
)

// TestCollapseEquivalenceSemantics verifies the collapsing rules on the
// real SP netlist: every fault the rules remove must have detection
// behaviour identical to its retained representative (the gate-output
// fault of matching polarity) on random pattern blocks.
func TestCollapseEquivalenceSemantics(t *testing.T) {
	m := spModule(t)
	nl := m.NL
	ev, err := netlist.NewEvaluator(nl)
	if err != nil {
		t.Fatal(err)
	}

	r := rand.New(rand.NewSource(91))
	inputs := make([]uint64, len(nl.Inputs))
	for i := range inputs {
		inputs[i] = r.Uint64()
	}
	if err := ev.Run(inputs); err != nil {
		t.Fatal(err)
	}

	// Collect removed faults and their representatives.
	all := AllSites(nl)
	kept := map[netlist.FaultSite]bool{}
	for _, s := range CollapseEquivalent(nl, all) {
		kept[s] = true
	}
	checked := 0
	for _, s := range all {
		if kept[s] || s.Pin < 0 {
			continue
		}
		g := nl.Gates[s.Gate]
		// The representative is the output fault with the dominant
		// polarity per the collapsing rules.
		var rep netlist.FaultSite
		switch g.Kind {
		case netlist.KBuf:
			rep = netlist.FaultSite{Gate: s.Gate, Pin: -1, SA1: s.SA1}
		case netlist.KNot:
			rep = netlist.FaultSite{Gate: s.Gate, Pin: -1, SA1: !s.SA1}
		case netlist.KAnd:
			rep = netlist.FaultSite{Gate: s.Gate, Pin: -1, SA1: false}
		case netlist.KNand:
			rep = netlist.FaultSite{Gate: s.Gate, Pin: -1, SA1: true}
		case netlist.KOr:
			rep = netlist.FaultSite{Gate: s.Gate, Pin: -1, SA1: true}
		case netlist.KNor:
			rep = netlist.FaultSite{Gate: s.Gate, Pin: -1, SA1: false}
		default:
			t.Fatalf("unexpected collapsed fault on %v", g.Kind)
		}
		got := ev.FaultDetect(s)
		want := ev.FaultDetect(rep)
		if got != want {
			t.Fatalf("fault %v (kind %v) detection %#x != representative %v detection %#x",
				s, g.Kind, got, rep, want)
		}
		checked++
		if checked >= 3000 {
			break
		}
	}
	if checked == 0 {
		t.Fatal("no collapsed faults checked")
	}
	t.Logf("verified %d collapsed-fault equivalences", checked)
}
