package fault

import (
	"context"
	"math/rand"
	"testing"

	"gpustl/internal/circuits"
)

// dupStream doubles a stream so every pattern occurs at least twice
// (fresh clock cycles), forcing the unique-pattern dictionary to do real
// work during the equivalence runs.
func dupStream(stream []TimedPattern) []TimedPattern {
	out := make([]TimedPattern, 0, 2*len(stream))
	var cc uint64
	for _, p := range stream {
		q := p
		q.CC = cc
		out = append(out, q)
		cc += 2
	}
	for _, p := range stream {
		q := p
		q.CC = cc
		out = append(out, q)
		cc += 2
	}
	return out
}

// TestOptimizedMatchesReference is the engine equivalence harness: for
// every option combination the optimized path supports, the detections,
// per-pattern counts and campaign drop state must be byte-identical to
// the NoOptimize reference engine — same fault, same first-detecting
// pattern index, same clock cycle.
func TestOptimizedMatchesReference(t *testing.T) {
	cases := []struct {
		name string
		mod  func(testing.TB) *circuits.Module
		opt  SimOptions
	}{
		{"du_serial", duModule, SimOptions{}},
		{"du_reverse", duModule, SimOptions{Reverse: true}},
		{"sp_serial", spModule, SimOptions{}},
		{"sp_reverse", spModule, SimOptions{Reverse: true}},
		{"sp_workers4", spModule, SimOptions{Workers: 4}},
		{"sp_reverse_workers3", spModule, SimOptions{Reverse: true, Workers: 3}},
		// Every supported block width, serial and sharded: detections must
		// be byte-identical to the scalar reference at any W.
		{"du_w1", duModule, SimOptions{BlockWords: 1}},
		{"du_w4", duModule, SimOptions{BlockWords: 4}},
		{"du_w8", duModule, SimOptions{BlockWords: 8}},
		{"du_w16", duModule, SimOptions{BlockWords: 16}},
		{"sp_w4", spModule, SimOptions{BlockWords: 4}},
		{"sp_w8_workers4", spModule, SimOptions{BlockWords: 8, Workers: 4}},
		{"sp_w16_reverse", spModule, SimOptions{BlockWords: 16, Reverse: true}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := tc.mod(t)
			r := rand.New(rand.NewSource(99))
			var stream []TimedPattern
			if m.Lanes > 1 {
				stream = dupStream(randomSPStream(r, m.Lanes, 300))
			} else {
				stream = dupStream(randomDUStream(r, 300))
			}

			run := func(noOpt bool) (*Report, []ID) {
				c := NewCampaign(m)
				c.SampleFaults(1500, 11)
				opt := tc.opt
				opt.NoOptimize = noOpt
				opt.Warnf = t.Logf // reference runs ignore BlockWords with a warning
				rep, err := c.SimulateCtx(context.Background(), stream, opt)
				if err != nil {
					t.Fatal(err)
				}
				return rep, c.DetectedIDs()
			}
			ref, refDet := run(true)
			opt, optDet := run(false)

			if len(ref.Detections) != len(opt.Detections) {
				t.Fatalf("detection counts differ: reference %d, optimized %d",
					len(ref.Detections), len(opt.Detections))
			}
			for i := range ref.Detections {
				if ref.Detections[i] != opt.Detections[i] {
					t.Fatalf("detection %d differs: reference %+v, optimized %+v",
						i, ref.Detections[i], opt.Detections[i])
				}
			}
			for i := range ref.DetectedPerPattern {
				if ref.DetectedPerPattern[i] != opt.DetectedPerPattern[i] {
					t.Fatalf("per-pattern count differs at %d: reference %d, optimized %d",
						i, ref.DetectedPerPattern[i], opt.DetectedPerPattern[i])
				}
			}
			if len(refDet) != len(optDet) {
				t.Fatalf("campaign drop state differs: reference %d detected, optimized %d",
					len(refDet), len(optDet))
			}
			for i := range refDet {
				if refDet[i] != optDet[i] {
					t.Fatalf("detected id %d differs: reference %d, optimized %d",
						i, refDet[i], optDet[i])
				}
			}
			// The optimized engine must actually have optimized: on a
			// doubled stream at least half the patterns are duplicates.
			if hr := opt.Stats.DedupHitRate(); hr < 0.5 {
				t.Fatalf("optimized run deduplicated only %.2f of a doubled stream", hr)
			}
			if ref.Stats.DedupHitRate() != 0 {
				t.Fatalf("reference engine reported dedup %v, want 0", ref.Stats.DedupHitRate())
			}
		})
	}
}

// TestSimulateSubsetMatchesReference verifies the subset entry point (the
// one distributed shards use) against the reference engine run over an
// equivalent explicit-fault campaign.
func TestSimulateSubsetMatchesReference(t *testing.T) {
	m := spModule(t)
	r := rand.New(rand.NewSource(41))
	stream := dupStream(randomSPStream(r, m.Lanes, 256))

	c := NewCampaign(m)
	c.SampleFaults(1200, 13)
	all := c.Faults()
	ids := make([]ID, 0, len(all)/2)
	for id := 0; id < len(all); id += 2 {
		ids = append(ids, ID(id))
	}
	dets, stats, err := c.SimulateSubsetStats(context.Background(), stream, ids)
	if err != nil {
		t.Fatal(err)
	}
	if stats.FaultEvals == 0 || stats.DedupHitRate() < 0.5 {
		t.Fatalf("subset run did not exercise the optimized engine: %+v", stats)
	}

	// Reference: a throwaway campaign holding exactly the subset faults,
	// run through the naive engine. Detection ids map through the subset.
	sub := make([]Fault, len(ids))
	for i, id := range ids {
		sub[i] = all[id]
	}
	refCamp := NewCampaignWithFaults(m, sub)
	ref, err := refCamp.SimulateCtx(context.Background(), stream, SimOptions{NoOptimize: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Detections) != len(dets) {
		t.Fatalf("detection counts differ: reference %d, subset %d", len(ref.Detections), len(dets))
	}
	for i, rd := range ref.Detections {
		want := Detection{Fault: ids[rd.Fault], Pattern: rd.Pattern, CC: rd.CC}
		if dets[i] != want {
			t.Fatalf("detection %d differs: subset %+v, reference-mapped %+v", i, dets[i], want)
		}
	}
}
