// Package fault implements permanent stuck-at fault modeling and an
// optimized gate-level fault simulator for the GPU modules of package
// circuits.
//
// The simulator follows the paper's "optimized fault simulation": instead
// of fault-simulating the whole GPU, only the target module is simulated,
// with module-level fault observability — a fault counts as detected when a
// test pattern produces a discrepancy at the module's outputs. Patterns are
// the per-clock-cycle input vectors extracted by the logic-tracing stage.
//
// Faults are simulated serially with 64 patterns in parallel (one per bit
// of a machine word) and evaluation restricted to each fault's fan-out
// cone; detected faults are dropped immediately. A persistent fault list
// lets several PTPs targeting the same module share one campaign, which is
// the cross-PTP fault-dropping mechanism of the paper's stage 3.
package fault

import (
	"context"
	"fmt"
	"log/slog"
	"math/bits"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"time"

	"gpustl/internal/circuits"
	"gpustl/internal/netlist"
	"gpustl/internal/obs"
)

// ID identifies a fault within a campaign's master list.
type ID int32

// Fault is a single stuck-at fault in one lane (instance) of the module.
type Fault struct {
	Lane int16
	Site netlist.FaultSite
}

// String renders the fault with its lane.
func (f Fault) String() string { return fmt.Sprintf("lane%d.%v", f.Lane, f.Site) }

// AllSites enumerates the uncollapsed single-stuck-at fault universe of a
// netlist: every gate output and every gate input pin, stuck at 0 and 1.
// Primary inputs contribute their (output) stem faults; constants are
// excluded (a stuck constant is undetectable by construction).
func AllSites(nl *netlist.Netlist) []netlist.FaultSite {
	var sites []netlist.FaultSite
	for id := int32(0); id < int32(len(nl.Gates)); id++ {
		g := nl.Gates[id]
		if g.Kind == netlist.KConst0 || g.Kind == netlist.KConst1 {
			continue
		}
		for _, sa1 := range []bool{false, true} {
			sites = append(sites, netlist.FaultSite{Gate: id, Pin: -1, SA1: sa1})
		}
		for p := 0; p < g.NumIn(); p++ {
			for _, sa1 := range []bool{false, true} {
				sites = append(sites, netlist.FaultSite{Gate: id, Pin: int8(p), SA1: sa1})
			}
		}
	}
	return sites
}

// CollapseEquivalent removes structurally equivalent faults within each
// gate (classic fault collapsing rules): for AND/NAND, an input sa0 is
// equivalent to the output sa0 (saX for the inverting forms); dually for
// OR/NOR with sa1; for BUF/NOT every input fault collapses into an output
// fault. The returned list is a subset of sites.
func CollapseEquivalent(nl *netlist.Netlist, sites []netlist.FaultSite) []netlist.FaultSite {
	keep := make([]netlist.FaultSite, 0, len(sites))
	for _, s := range sites {
		if s.Pin < 0 {
			keep = append(keep, s)
			continue
		}
		g := nl.Gates[s.Gate]
		switch g.Kind {
		case netlist.KBuf, netlist.KNot:
			continue // input faults equivalent to output faults
		case netlist.KAnd, netlist.KNand:
			if !s.SA1 {
				continue // input sa0 ≡ output sa0 (AND) / sa1 (NAND)
			}
		case netlist.KOr, netlist.KNor:
			if s.SA1 {
				continue
			}
		}
		keep = append(keep, s)
	}
	return keep
}

// ExpandLanes replicates the per-netlist fault sites across the module's
// lane instances, producing the campaign master list.
func ExpandLanes(sites []netlist.FaultSite, lanes int) []Fault {
	out := make([]Fault, 0, len(sites)*lanes)
	for l := 0; l < lanes; l++ {
		for _, s := range sites {
			out = append(out, Fault{Lane: int16(l), Site: s})
		}
	}
	return out
}

// TimedPattern is one module test pattern with the tracing metadata needed
// to join it against the logic-trace report: the clock cycle it was applied
// on, the lane it entered, and (for validation) the warp and PC of the
// instruction that generated it.
type TimedPattern struct {
	CC   uint64
	Lane int16
	Warp int16
	PC   int32
	Pat  circuits.Pattern
}

// Campaign is a persistent fault-simulation context for one module. The
// fault list survives across Simulate calls, so PTPs applied in sequence
// drop each other's faults, as in the paper's stage-3 fault list report.
type Campaign struct {
	Module *circuits.Module

	faults   []Fault
	detected []bool
	nDet     int

	ev      *netlist.Evaluator
	initErr error // deferred constructor error (e.g. sequential module)

	// stats accumulates engine counters across this campaign's SimulateCtx
	// runs (the per-campaign dictionary effectiveness view); guarded by
	// statsMu only because Stats() may be read while a run is merging.
	statsMu sync.Mutex
	stats   SimStats
	runs    uint64

	// Cone ordering of the fault list (see coneOrdering), built once.
	coneOnce  sync.Once
	coneOrder []ID
	coneRank  []int32
}

// NewCampaign creates a campaign over the module's full uncollapsed
// stuck-at fault list. A campaign over an unsupported (sequential) module
// is created in a failed state: SimulateCtx returns the error, Err exposes
// it.
func NewCampaign(m *circuits.Module) *Campaign {
	sites := AllSites(m.NL)
	c := &Campaign{
		Module:   m,
		faults:   ExpandLanes(sites, m.Lanes),
		detected: make([]bool, len(sites)*m.Lanes),
	}
	c.ev, c.initErr = netlist.NewEvaluator(m.NL)
	return c
}

// NewCampaignWithFaults creates a campaign over an explicit fault list.
func NewCampaignWithFaults(m *circuits.Module, faults []Fault) *Campaign {
	fs := make([]Fault, len(faults))
	copy(fs, faults)
	c := &Campaign{
		Module:   m,
		faults:   fs,
		detected: make([]bool, len(fs)),
	}
	c.ev, c.initErr = netlist.NewEvaluator(m.NL)
	return c
}

// Err returns the campaign's deferred construction error, if any. A
// campaign with a non-nil Err cannot simulate.
func (c *Campaign) Err() error { return c.initErr }

// SampleFaults reduces the campaign to a deterministic random sample of n
// faults (all faults kept when n >= total). Sampling is the standard way to
// keep large campaigns tractable; the paper-scale configuration uses the
// full list.
func (c *Campaign) SampleFaults(n int, seed int64) {
	if n >= len(c.faults) {
		return
	}
	r := rand.New(rand.NewSource(seed))
	idx := r.Perm(len(c.faults))[:n]
	sort.Ints(idx)
	nf := make([]Fault, n)
	for i, j := range idx {
		nf[i] = c.faults[j]
	}
	c.faults = nf
	c.detected = make([]bool, n)
	c.nDet = 0
}

// Faults returns the campaign's master fault list (do not mutate).
func (c *Campaign) Faults() []Fault { return c.faults }

// Total returns the master fault-list size.
func (c *Campaign) Total() int { return len(c.faults) }

// Detected returns how many faults have been detected so far.
func (c *Campaign) Detected() int { return c.nDet }

// Remaining returns how many faults are still undetected.
func (c *Campaign) Remaining() int { return len(c.faults) - c.nDet }

// Coverage returns the cumulative fault coverage in percent.
func (c *Campaign) Coverage() float64 {
	if len(c.faults) == 0 {
		return 0
	}
	return 100 * float64(c.nDet) / float64(len(c.faults))
}

// GroupCoverage is the campaign outcome for one functional group of the
// module's netlist.
type GroupCoverage struct {
	Group    string
	Total    int
	Detected int
}

// Pct returns the group's coverage percentage.
func (g GroupCoverage) Pct() float64 {
	if g.Total == 0 {
		return 0
	}
	return 100 * float64(g.Detected) / float64(g.Total)
}

// CoverageByGroup aggregates the campaign state per functional group of
// the netlist (as tagged by the circuit builders), summed over lanes —
// the diagnostic view of which datapath blocks a PTP tests well.
func (c *Campaign) CoverageByGroup() []GroupCoverage {
	byName := make(map[string]*GroupCoverage)
	order := []string{}
	for id, f := range c.faults {
		g := c.Module.NL.GroupOf(f.Site.Gate)
		gc, ok := byName[g]
		if !ok {
			gc = &GroupCoverage{Group: g}
			byName[g] = gc
			order = append(order, g)
		}
		gc.Total++
		if c.detected[id] {
			gc.Detected++
		}
	}
	out := make([]GroupCoverage, 0, len(order))
	sort.Strings(order)
	for _, g := range order {
		out = append(out, *byName[g])
	}
	return out
}

// Reset clears all detections, restoring the full fault list.
func (c *Campaign) Reset() {
	for i := range c.detected {
		c.detected[i] = false
	}
	c.nDet = 0
}

// IsDetected reports whether fault id has been detected.
func (c *Campaign) IsDetected(id ID) bool { return c.detected[id] }

// DetectedIDs returns the ids of all detected faults, ascending. Together
// with RestoreDetected it lets a checkpointing layer persist and restore
// the cross-PTP fault-dropping state of a campaign.
func (c *Campaign) DetectedIDs() []ID {
	out := make([]ID, 0, c.nDet)
	for id, d := range c.detected {
		if d {
			out = append(out, ID(id))
		}
	}
	return out
}

// RestoreDetected marks the given fault ids as detected (idempotent). Ids
// outside the master list are an error; the campaign is only mutated when
// every id is valid.
func (c *Campaign) RestoreDetected(ids []ID) error {
	for _, id := range ids {
		if id < 0 || int(id) >= len(c.faults) {
			return fmt.Errorf("fault: RestoreDetected: id %d outside master list (%d faults)",
				id, len(c.faults))
		}
	}
	for _, id := range ids {
		if !c.detected[id] {
			c.detected[id] = true
			c.nDet++
		}
	}
	return nil
}

// Detection records the first pattern that detected a fault.
type Detection struct {
	Fault   ID
	Pattern int32 // index into the simulated stream
	CC      uint64
}

// Report is the Fault Sim Report (FSR) of one Simulate run: per-pattern
// detection counts plus the individual first detections, in stream order.
type Report struct {
	NumPatterns int
	// DetectedPerPattern[i] counts faults first detected by stream entry i.
	DetectedPerPattern []int32
	// Detections lists each fault detected during this run.
	Detections []Detection
	// ActivatedPerPattern counts locally activated faults per pattern; only
	// filled when Simulate is called with activations enabled.
	ActivatedPerPattern []int32

	// Stats reports what the simulation engine did on this run: dedup
	// effectiveness, pre-screen and cone-skip hit counts, propagation
	// count. The naive (NoOptimize) engine fills the pattern and
	// evaluation totals with zero skips.
	Stats SimStats

	// Copied stream metadata, so the FSR is self-contained like the
	// paper's text-file report.
	CCs   []uint64
	Lanes []int16
	PCs   []int32
	Warps []int16
}

// DetectedThisRun returns the number of faults the run detected.
func (r *Report) DetectedThisRun() int { return len(r.Detections) }

// SimOptions tunes a Simulate run.
type SimOptions struct {
	// Reverse applies the pattern stream in reverse order (used by the
	// paper for the SFU_IMM PTP, where reverse-order application improved
	// compaction).
	Reverse bool
	// RecordActivations additionally counts locally activated faults per
	// pattern (slower; for small-scale analysis). Activation counters are
	// written per pattern as the stream is walked, which a sharded run
	// cannot do coherently, so this option FORCES serial execution: any
	// explicit Workers > 1 is overridden to 1 and a warning is emitted
	// through Warnf.
	RecordActivations bool
	// NoDrop evaluates every fault against every pattern instead of
	// dropping at first detection (only with RecordActivations analyses).
	NoDrop bool
	// NoOptimize runs the straightforward reference engine: no activation
	// pre-screen, no unique-pattern dedup, no cone-aware scheduling. The
	// optimized engine is detection-for-detection identical by contract
	// (the equivalence tests enforce it); this switch exists for those
	// tests and for debugging. RecordActivations implies NoOptimize: the
	// per-pattern activation counters must see every original pattern,
	// which dedup would fold away.
	NoOptimize bool
	// BlockWords sets the evaluator block width in 64-pattern machine
	// words: each good-circuit sweep covers 64×BlockWords patterns, with
	// stride-BlockWords value arrays throughout the engine. 0 (the
	// default) auto-selects from the deduplicated stream length
	// (AutoBlockWords); values outside [0, netlist.MaxBlockWords] are
	// rejected with an error. Detections are byte-identical at every
	// width — bit order equals stream order, so first detections cannot
	// move. The naive reference engine (NoOptimize/RecordActivations) is
	// always scalar and ignores this knob with a warning.
	BlockWords int
	// Workers runs the fault-serial loop on this many goroutines, each
	// with its own evaluator over a shard of the fault list. Results are
	// bit-identical to the serial run (first detections are per-fault).
	// 0 selects runtime.GOMAXPROCS(0); 1 means serial; negative values
	// are rejected with an error.
	Workers int
	// Warnf receives warnings about option combinations the simulator
	// overrides (e.g. RecordActivations forcing serial execution). nil
	// routes warnings to the default structured logger at WARN level.
	Warnf func(format string, args ...any)
	// Metrics receives batched simulation counters (patterns simulated,
	// faults dropped, throughput). Updates happen once per SimulateCtx
	// call, after the shard merge — never inside the 64-pattern inner
	// loop — so instrumentation cost is independent of campaign size.
	// nil disables metric recording.
	Metrics *obs.Registry
}

// warnf emits a warning through the configured sink, defaulting to the
// process-default slog logger so overridden options are visible even
// when callers do not wire a sink.
func (o SimOptions) warnf(format string, args ...any) {
	if o.Warnf != nil {
		o.Warnf(format, args...)
		return
	}
	slog.Warn(fmt.Sprintf(format, args...))
}

// minFaultsPerWorker bounds the parallel fan-out: spawning a goroutine
// (and building a private evaluator) is only worth a few hundred faults
// of work, so small campaigns scale the worker count down.
const minFaultsPerWorker = 256

// planWorkers validates and resolves SimOptions.Workers: negative values
// are an error, 0 defaults to runtime.GOMAXPROCS(0), RecordActivations
// forces serial (warning when it overrides an explicit setting), and the
// fan-out is capped so every worker has at least minFaultsPerWorker
// faults. Results are identical at any resolved count.
func (c *Campaign) planWorkers(opt SimOptions) (int, error) {
	workers := opt.Workers
	if workers < 0 {
		return 0, fmt.Errorf("fault: SimOptions.Workers = %d is invalid (0 = GOMAXPROCS, 1 = serial)", workers)
	}
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if opt.RecordActivations && workers > 1 {
		if opt.Workers > 1 {
			opt.warnf("fault: RecordActivations forces serial simulation; overriding Workers=%d", opt.Workers)
		}
		workers = 1
	}
	if n := c.Remaining(); workers > 1 && n < workers*minFaultsPerWorker {
		workers = n / minFaultsPerWorker
		if workers < 1 {
			workers = 1
		}
	}
	return workers, nil
}

// Simulate runs the pattern stream against the campaign's remaining
// faults, dropping faults at first detection, and returns the FSR. It is
// the legacy entry point: any failure (a campaign constructed over an
// unsupported module, or a panic inside a simulation worker) aborts the
// caller with a panic. Resilient pipelines should use SimulateCtx, which
// reports failures as errors and honors cancellation.
func (c *Campaign) Simulate(stream []TimedPattern, opt SimOptions) *Report {
	rep, err := c.SimulateCtx(context.Background(), stream, opt)
	if err != nil {
		panic(err)
	}
	return rep
}

// SimulateCtx is Simulate with cancellation and failure isolation: the
// run stops early (returning ctx.Err()) when ctx is canceled, a panic in
// any simulation worker is recovered and returned as an error, and the
// campaign's fault-dropping state is only updated when the whole run
// succeeds — a failed or canceled call leaves the campaign untouched.
func (c *Campaign) SimulateCtx(ctx context.Context, stream []TimedPattern, opt SimOptions) (*Report, error) {
	if c.initErr != nil {
		return nil, fmt.Errorf("fault: campaign over %v unusable: %w", c.Module.Kind, c.initErr)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ordered := stream
	if opt.Reverse {
		ordered = make([]TimedPattern, len(stream))
		for i, p := range stream {
			ordered[len(stream)-1-i] = p
		}
	}

	rep := &Report{
		NumPatterns:        len(ordered),
		DetectedPerPattern: make([]int32, len(ordered)),
		CCs:                make([]uint64, len(ordered)),
		Lanes:              make([]int16, len(ordered)),
		PCs:                make([]int32, len(ordered)),
		Warps:              make([]int16, len(ordered)),
	}
	if opt.RecordActivations {
		rep.ActivatedPerPattern = make([]int32, len(ordered))
	}
	for i, p := range ordered {
		rep.CCs[i] = p.CC
		rep.Lanes[i] = p.Lane
		rep.PCs[i] = p.PC
		rep.Warps[i] = p.Warp
	}

	// Split the stream by lane, keeping global stream indices.
	laneIdx := make([][]int32, c.Module.Lanes)
	for i, p := range ordered {
		if int(p.Lane) >= len(laneIdx) {
			continue // pattern for a lane this module build does not have
		}
		laneIdx[p.Lane] = append(laneIdx[p.Lane], int32(i))
	}

	// Partition the remaining faults into shards, one per worker, each
	// grouped by lane. With one worker this is the plain serial loop.
	workers, err := c.planWorkers(opt)
	if err != nil {
		return nil, err
	}
	shards := c.partitionByLane(workers)
	simStart := time.Now()
	faultsIn := c.Remaining()

	// RecordActivations needs every original pattern walked (dedup would
	// fold the activation counters), so it rides the reference engine.
	naive := opt.NoOptimize || opt.RecordActivations
	if opt.BlockWords < 0 || opt.BlockWords > netlist.MaxBlockWords {
		return nil, fmt.Errorf("fault: SimOptions.BlockWords = %d outside [0, %d] (0 = auto)",
			opt.BlockWords, netlist.MaxBlockWords)
	}
	blockW := 1
	var runStats SimStats
	var lanes []laneStream
	if naive {
		if opt.BlockWords > 1 {
			opt.warnf("fault: the NoOptimize/RecordActivations reference engine is scalar; ignoring BlockWords=%d", opt.BlockWords)
		}
		for _, idxs := range laneIdx {
			runStats.TotalPatterns += uint64(len(idxs))
		}
		runStats.UniquePatterns = runStats.TotalPatterns
	} else {
		// Dedup and pack the stimulus once, shared read-only by every
		// shard; the cone index is built here, before forking workers.
		ci := c.Module.NL.Cone()
		lanes, blockW = buildLaneStreams(c.Module.NL, ordered, laneIdx,
			laneClassUse(ci, c.faults, shards), opt.BlockWords)
		for _, ls := range lanes {
			runStats.TotalPatterns += uint64(ls.total)
			runStats.UniquePatterns += uint64(ls.unique)
		}
	}
	plan := c.Module.NL.Plan()
	runStats.BlockWords = uint64(blockW)
	runStats.PlanLevels = uint64(plan.NumLevels())
	runStats.PlanRuns = uint64(plan.NumRuns())

	// Run the shards. Every worker recovers its own panics: the first
	// error or panic cancels the remaining workers and is surfaced to the
	// caller instead of killing the process.
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		errOnce  sync.Once
		firstErr error
	)
	fail := func(err error) {
		errOnce.Do(func() { firstErr = err })
		cancel()
	}
	runShard := func(shard [][]ID, ev *netlist.Evaluator, activated []int32) (*shardResult, error) {
		if naive {
			return c.simulateShard(sctx, ordered, laneIdx, shard, ev, opt, activated)
		}
		return c.simulateShardOpt(sctx, ordered, lanes, shard, ev)
	}
	results := make([]*shardResult, workers)
	if workers == 1 {
		func() {
			defer func() {
				if v := recover(); v != nil {
					fail(fmt.Errorf("fault: simulation panicked: %v", v))
				}
			}()
			// The campaign's resident serial evaluator is scalar; a wide
			// run borrows a width-matched one from the pool instead.
			ev := c.ev
			if blockW != 1 {
				var err error
				ev, err = c.getEvaluatorW(blockW)
				if err != nil {
					fail(err)
					return
				}
				defer c.putEvaluator(ev)
			}
			sr, err := runShard(shards[0], ev, rep.ActivatedPerPattern)
			if err != nil {
				fail(err)
				return
			}
			results[0] = sr
		}()
	} else {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				defer func() {
					if v := recover(); v != nil {
						fail(fmt.Errorf("fault: simulation worker %d panicked: %v", w, v))
					}
				}()
				ev, err := c.getEvaluatorW(blockW)
				if err != nil {
					fail(err)
					return
				}
				defer c.putEvaluator(ev)
				sr, err := runShard(shards[w], ev, nil)
				if err != nil {
					fail(err)
					return
				}
				results[w] = sr
			}(w)
		}
		wg.Wait()
	}
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Merge shard results into the report and the campaign state.
	for _, sr := range results {
		if sr == nil {
			continue
		}
		for i, n := range sr.perPattern {
			rep.DetectedPerPattern[i] += n
		}
		rep.Detections = append(rep.Detections, sr.detections...)
		runStats.Add(sr.stats)
		if !opt.NoDrop {
			for _, d := range sr.detections {
				c.detected[d.Fault] = true
				c.nDet++
			}
		}
	}
	sortDetections(rep.Detections, ordered)
	rep.Stats = runStats
	c.statsMu.Lock()
	c.stats.Add(runStats)
	c.runs++
	c.statsMu.Unlock()
	c.recordMetrics(opt, len(ordered), faultsIn, len(rep.Detections), runStats, time.Since(simStart))
	// Per-tenant usage attribution (context-carried, once per run like
	// the metrics above): only the full in-process run meters here —
	// SimulateSubset shards report stats to their coordinator, which
	// owns that aggregation and its metering.
	if u, tenant := obs.UsageFromContext(ctx); u != nil {
		u.AddFaultBlocks(tenant, runStats.Blocks)
	}
	return rep, nil
}

// Stats returns the engine counters accumulated across this campaign's
// SimulateCtx runs (SimulateSubset calls report their stats to the caller
// instead — a distributed coordinator owns that aggregation).
func (c *Campaign) Stats() SimStats {
	c.statsMu.Lock()
	defer c.statsMu.Unlock()
	return c.stats
}

// getEvaluator takes a pooled scalar evaluator or builds a fresh one.
func (c *Campaign) getEvaluator() (*netlist.Evaluator, error) {
	return c.getEvaluatorW(1)
}

// getEvaluatorW takes an evaluator of the requested block width from the
// netlist's per-width pool (or builds a fresh one). Pooling at the
// netlist level means the wide scratch arrays survive campaign churn —
// a new campaign over the same circuit starts warm.
func (c *Campaign) getEvaluatorW(w int) (*netlist.Evaluator, error) {
	return c.Module.NL.AcquireEvaluator(w)
}

// putEvaluator returns a worker's evaluator to the netlist pool. The
// campaign's own serial evaluator never enters the pool.
func (c *Campaign) putEvaluator(ev *netlist.Evaluator) {
	if ev != nil && ev != c.ev {
		c.Module.NL.ReleaseEvaluator(ev)
	}
}

// recordMetrics publishes one SimulateCtx run's batched counters. It is
// deliberately called once per run, after the merge: the hot inner loop
// carries zero instrumentation, keeping the overhead bound (<1% of the
// simulation) independent of campaign size.
func (c *Campaign) recordMetrics(opt SimOptions, patterns, faultsIn, dropped int, stats SimStats, elapsed time.Duration) {
	m := opt.Metrics
	if m == nil {
		return
	}
	m.Counter("gpustl_fault_runs_total").Inc()
	m.Counter("gpustl_fault_patterns_simulated_total").Add(uint64(patterns))
	m.Counter("gpustl_fault_dropped_total").Add(uint64(dropped))
	m.Gauge("gpustl_fault_remaining").Set(float64(c.Remaining()))
	m.Gauge("gpustl_fault_coverage_pct").Set(c.Coverage())
	if faultsIn > 0 {
		m.Gauge("gpustl_fault_dropped_ratio").Set(float64(dropped) / float64(faultsIn))
	}
	if s := elapsed.Seconds(); s > 0 {
		m.Gauge("gpustl_fault_patterns_per_second").Set(float64(patterns) / s)
	}
	m.Histogram("gpustl_fault_sim_seconds", obs.DefLatencyBuckets()).Observe(elapsed.Seconds())
	// Engine-effectiveness counters: how much work the optimizations
	// resolved without a full propagation, and how much stimulus the
	// unique-pattern dictionary folded away.
	m.Counter("gpustl_fault_unique_patterns_total").Add(stats.UniquePatterns)
	m.Counter("gpustl_fault_evals_total").Add(stats.FaultEvals)
	m.Counter("gpustl_fault_prescreen_skips_total").Add(stats.PrescreenSkips)
	m.Counter("gpustl_fault_cone_skips_total").Add(stats.ConeSkips)
	m.Counter("gpustl_fault_propagations_total").Add(stats.Propagations)
	m.Gauge("gpustl_fault_dedup_hit_ratio").Set(stats.DedupHitRate())
	m.Gauge("gpustl_fault_prescreen_skip_ratio").Set(stats.PrescreenSkipRatio())
	m.Gauge("gpustl_fault_cone_skip_ratio").Set(stats.ConeSkipRatio())
	// Evaluator shape: the chosen block width and the compiled plan's
	// level/run structure, so dashboards can attribute throughput shifts
	// to width selection rather than guessing from pattern counts.
	m.Gauge("gpustl_fault_block_words").Set(float64(stats.BlockWords))
	m.Gauge("gpustl_fault_plan_levels").Set(float64(stats.PlanLevels))
	m.Gauge("gpustl_fault_plan_runs").Set(float64(stats.PlanRuns))
}

// shardResult carries one worker's detections, to be merged serially.
type shardResult struct {
	perPattern []int32
	detections []Detection
	stats      SimStats
}

// partitionByLane splits the campaign's currently undetected faults into
// k shards, round-robin, with each shard's faults grouped by lane (the
// layout simulateShard consumes). Faults for lanes the module build does
// not have are skipped, matching the simulation loop. Faults are dealt
// in cone order, so every shard's lane list comes out sorted for the
// optimized engine with no per-run sorting; results are independent of
// the deal order because first detections are per-fault.
func (c *Campaign) partitionByLane(k int) [][][]ID {
	if k < 1 {
		k = 1
	}
	shards := make([][][]ID, k)
	perLane := make([]int, c.Module.Lanes)
	order, _ := c.coneOrdering()
	for _, id := range order {
		f := &c.faults[id]
		if !c.detected[id] && int(f.Lane) < c.Module.Lanes {
			perLane[f.Lane]++
		}
	}
	for w := range shards {
		shards[w] = make([][]ID, c.Module.Lanes)
		for lane, cnt := range perLane {
			shards[w][lane] = make([]ID, 0, (cnt+k-1)/k)
		}
	}
	next := 0
	for _, id := range order {
		f := &c.faults[id]
		if c.detected[id] || int(f.Lane) >= c.Module.Lanes {
			continue
		}
		shards[next][f.Lane] = append(shards[next][f.Lane], id)
		next = (next + 1) % k
	}
	return shards
}

// PartitionRemaining splits the campaign's currently undetected faults
// into at most k shards using the same lane-grouped round-robin
// partitioning the in-process parallel simulator uses, flattened to
// plain id lists (lane-major within each shard). Empty shards are
// dropped, so fewer than k shards come back when few faults remain.
// Because first detections are per-fault, simulating the shards in any
// order — or on any mix of workers — and merging the detections yields
// the same result as one serial run.
func (c *Campaign) PartitionRemaining(k int) [][]ID {
	byLane := c.partitionByLane(k)
	out := make([][]ID, 0, k)
	for _, lanes := range byLane {
		var flat []ID
		for _, ids := range lanes {
			flat = append(flat, ids...)
		}
		if len(flat) > 0 {
			out = append(out, flat)
		}
	}
	return out
}

// SimulateSubset runs the pattern stream against an explicit subset of
// the campaign's faults, identified by master-list id, WITHOUT mutating
// campaign state: no fault dropping, no detection marks. It is the
// worker-side half of a distributed campaign — a coordinator partitions
// the fault list with PartitionRemaining, ships each subset (with the
// stream) to a worker, and merges the returned detections. ids == nil
// selects every currently undetected fault. The stream is applied in the
// order given (a coordinator that wants Reverse semantics pre-reverses
// it). Detections carry global stream indices and are sorted by
// (Pattern, Fault); faults already detected in this campaign are
// skipped. Evaluator scratch is pooled per campaign, and concurrent
// SimulateSubset calls on one campaign are safe.
func (c *Campaign) SimulateSubset(ctx context.Context, stream []TimedPattern, ids []ID) ([]Detection, error) {
	dets, _, err := c.SimulateSubsetStats(ctx, stream, ids)
	return dets, err
}

// SimulateSubsetStats is SimulateSubset plus the engine counters of the
// run (dedup hit-rate, pre-screen and cone skips). A distributed worker
// ships these back with its detections so the coordinator can aggregate
// optimization effectiveness across shards; campaign-held cumulative
// stats deliberately stay untouched, preserving SimulateSubset's
// no-campaign-mutation contract.
func (c *Campaign) SimulateSubsetStats(ctx context.Context, stream []TimedPattern, ids []ID) ([]Detection, SimStats, error) {
	if c.initErr != nil {
		return nil, SimStats{}, fmt.Errorf("fault: campaign over %v unusable: %w", c.Module.Kind, c.initErr)
	}
	if err := ctx.Err(); err != nil {
		return nil, SimStats{}, err
	}
	if ids == nil {
		for id := range c.faults {
			if !c.detected[id] {
				ids = append(ids, ID(id))
			}
		}
	}
	laneFaults := make([][]ID, c.Module.Lanes)
	for _, id := range ids {
		if id < 0 || int(id) >= len(c.faults) {
			return nil, SimStats{}, fmt.Errorf("fault: SimulateSubset: id %d outside master list (%d faults)",
				id, len(c.faults))
		}
		f := c.faults[id]
		if c.detected[id] || int(f.Lane) >= c.Module.Lanes {
			continue
		}
		laneFaults[f.Lane] = append(laneFaults[f.Lane], id)
	}
	laneIdx := make([][]int32, c.Module.Lanes)
	for i, p := range stream {
		if int(p.Lane) >= len(laneIdx) {
			continue
		}
		laneIdx[p.Lane] = append(laneIdx[p.Lane], int32(i))
	}
	ci := c.Module.NL.Cone()
	lanes, blockW := buildLaneStreams(c.Module.NL, stream, laneIdx,
		laneClassUse(ci, c.faults, [][][]ID{laneFaults}), 0)
	var stats SimStats
	for _, ls := range lanes {
		stats.TotalPatterns += uint64(ls.total)
		stats.UniquePatterns += uint64(ls.unique)
	}
	plan := c.Module.NL.Plan()
	stats.BlockWords = uint64(blockW)
	stats.PlanLevels = uint64(plan.NumLevels())
	stats.PlanRuns = uint64(plan.NumRuns())
	ev, err := c.getEvaluatorW(blockW)
	if err != nil {
		return nil, SimStats{}, err
	}
	defer c.putEvaluator(ev)
	sr, err := c.simulateShardOpt(ctx, stream, lanes, laneFaults, ev)
	if err != nil {
		return nil, SimStats{}, err
	}
	stats.Add(sr.stats)
	sortDetections(sr.detections, stream)
	return sr.detections, stats, nil
}

// simulateShard runs the fault-serial, 64-pattern-parallel loop for one
// shard of the fault list on a private evaluator. It only reads shared
// state (ordered stream, lane indices, fault list); activation recording
// (serial-only) is the one exception, writing the activated counters
// directly. Cancellation is checked once per 64-pattern block, so a
// canceled context stops the shard within one block's worth of work.
func (c *Campaign) simulateShard(ctx context.Context, ordered []TimedPattern, laneIdx [][]int32,
	laneFaults [][]ID, ev *netlist.Evaluator, opt SimOptions, activated []int32) (*shardResult, error) {

	sr := &shardResult{perPattern: make([]int32, len(ordered))}
	inputs := make([]uint64, len(c.Module.NL.Inputs))

	var seen []uint64 // NoDrop: first-detection-recorded bitset per fault id
	if opt.NoDrop {
		seen = make([]uint64, (len(c.faults)+63)/64)
	}

	for lane := 0; lane < c.Module.Lanes; lane++ {
		idxs := laneIdx[lane]
		remaining := laneFaults[lane]
		if len(idxs) == 0 || len(remaining) == 0 {
			continue
		}
		for blk := 0; blk < len(idxs); blk += 64 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			end := blk + 64
			if end > len(idxs) {
				end = len(idxs)
			}
			n := end - blk
			for i := range inputs {
				inputs[i] = 0
			}
			for s := 0; s < n; s++ {
				ordered[idxs[blk+s]].Pat.ApplyTo(inputs, uint(s))
			}
			if err := ev.Run(inputs); err != nil {
				return nil, err
			}
			sr.stats.Blocks++

			w := 0
			for _, id := range remaining {
				f := c.faults[id]
				sr.stats.FaultEvals++
				sr.stats.Propagations++
				det := ev.FaultDetect(f.Site)
				if n < 64 {
					det &= (1 << uint(n)) - 1
				}
				if opt.RecordActivations && activated != nil {
					act := activationMask(ev, c.Module.NL, f.Site)
					if n < 64 {
						act &= (1 << uint(n)) - 1
					}
					for s := 0; s < n; s++ {
						if act>>uint(s)&1 == 1 {
							activated[idxs[blk+s]]++
						}
					}
				}
				if det == 0 {
					remaining[w] = id
					w++
					continue
				}
				if opt.NoDrop {
					if seen[uint32(id)>>6]>>(uint32(id)&63)&1 == 0 {
						seen[uint32(id)>>6] |= 1 << (uint32(id) & 63)
						first := bits.TrailingZeros64(det)
						gi := idxs[blk+first]
						sr.perPattern[gi]++
						sr.detections = append(sr.detections, Detection{
							Fault: id, Pattern: gi, CC: ordered[gi].CC,
						})
					}
					remaining[w] = id
					w++
					continue
				}
				first := bits.TrailingZeros64(det)
				gi := idxs[blk+first]
				sr.perPattern[gi]++
				sr.detections = append(sr.detections, Detection{
					Fault: id, Pattern: gi, CC: ordered[gi].CC,
				})
			}
			remaining = remaining[:w]
			if len(remaining) == 0 && !opt.RecordActivations {
				break
			}
		}
	}
	return sr, nil
}

// simulateShardOpt is the optimized fault-serial loop: it consumes the
// pre-packed deduplicated lane streams (so there is no per-shard input
// clearing or packing), orders each lane's faults by fan-out cone, and
// resolves most fault×block visits without event-driven propagation —
// via the unchanged-cone test (no primary input in the fault's detection
// support changed since the previous block, so the previous zero
// detection mask carries over) or the activation pre-screen (the site's
// local delta is zero, and detection is a bitwise subset of it). Visits
// that survive both tests combine the delta with the evaluator's
// memoized per-block observability mask (Evaluator.Obs) instead of
// propagating: only fan-out stems fill the memo with a real
// event-driven pass, which every fault in the stem's fan-out-free
// region then shares. The inner loop allocates nothing.
//
// Detections are byte-identical to simulateShard on the original stream:
// a duplicate pattern can never be a first detection (its earlier twin
// detects first), gidx maps every unique slot back to the earliest
// original stream index, and both skip rules only ever elide provably
// zero masks. NoDrop needs no special handling here: a fault is removed
// from the local walk after its first detection either way — later
// patterns cannot produce another first detection — and whether the
// campaign's dropped state is updated is decided at merge time.
func (c *Campaign) simulateShardOpt(ctx context.Context, ordered []TimedPattern, lanes []laneStream,
	laneFaults [][]ID, ev *netlist.Evaluator) (*shardResult, error) {

	if ev.BlockWords() > 1 {
		return c.simulateShardOptWide(ctx, ordered, lanes, laneFaults, ev)
	}
	sr := &shardResult{perPattern: make([]int32, len(ordered))}
	ci := c.Module.NL.Cone()

	// Per-lane walk scratch: fault ids with their sites and cone classes
	// hoisted into parallel arrays, compacted together as faults drop, so
	// the inner loop touches only sequential memory. Sized once to the
	// largest lane and reused.
	var walk []walkFault
	for lane := range lanes {
		ls := &lanes[lane]
		remaining := laneFaults[lane]
		if len(ls.blocks) == 0 || len(remaining) == 0 {
			continue
		}
		c.sortByCone(remaining)
		walk = c.buildWalk(walk, remaining, ci)
		n := len(walk)
		for b := range ls.blocks {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			blk := &ls.blocks[b]
			if err := ev.Run(blk.inputs); err != nil {
				return nil, err
			}
			sr.stats.Blocks++
			sr.stats.FaultEvals += uint64(n)
			mask := ^uint64(0)
			if nv := len(blk.gidx); nv < 64 {
				mask = 1<<uint(nv) - 1
			}

			w := 0
			for i := 0; i < n; i++ {
				f := &walk[i]
				if blk.skip != nil {
					if cl := f.class; blk.skip[cl>>6]>>(uint(cl)&63)&1 == 1 {
						sr.stats.ConeSkips++
						walk[w] = *f
						w++
						continue
					}
				}
				delta := ev.SiteOpDeltaAt(f.op, 0) & mask
				if delta == 0 {
					sr.stats.PrescreenSkips++
					walk[w] = *f
					w++
					continue
				}
				sr.stats.Propagations++
				det := delta & ev.Obs(f.gate)
				if det == 0 {
					walk[w] = *f
					w++
					continue
				}
				first := bits.TrailingZeros64(det)
				gi := blk.gidx[first]
				sr.perPattern[gi]++
				sr.detections = append(sr.detections, Detection{
					Fault: f.id, Pattern: gi, CC: ordered[gi].CC,
				})
			}
			n = w
			walk = walk[:n]
			if n == 0 {
				break
			}
		}
	}
	return sr, nil
}

// walkFault is one live fault of a shard walk: its id with the site's
// compiled activation op, gate (the observability lookup key) and cone
// class (the class-skip key) hoisted into one contiguous record, so the
// inner loop touches sequential memory and dropping a fault is a single
// struct copy.
type walkFault struct {
	id    ID
	gate  int32
	class int32
	op    netlist.SiteOp
}

// walkBufPool recycles walk buffers across shards and campaigns.
var walkBufPool sync.Pool

// buildWalk fills dst (reusing its capacity) with the walk records of a
// shard's remaining faults, in the order given.
func (c *Campaign) buildWalk(dst []walkFault, remaining []ID, ci *netlist.ConeInfo) []walkFault {
	if cap(dst) < len(remaining) {
		dst = make([]walkFault, 0, len(remaining))
	}
	dst = dst[:0]
	for _, id := range remaining {
		site := c.faults[id].Site
		cl := int32(0)
		if g := site.Gate; g >= 0 && int(g) < ci.NumGatesIndexed() {
			cl = ci.ClassOf(g)
		}
		dst = append(dst, walkFault{
			id:    id,
			gate:  site.Gate,
			class: cl,
			op:    netlist.CompileSiteOp(c.Module.NL, site),
		})
	}
	return dst
}

// simulateShardOptWide is simulateShardOpt for block widths above one
// word. The per-visit work stays word-granular on purpose: the visit
// scans the block's 64-pattern words in order, computing the one-word
// site delta (SiteDeltaAt) and, only when it is non-zero, ANDing it with
// the one-word memoized observability (ObsAt), stopping at the first
// word that detects. Word order equals stream order, so the earliest set
// bit at any width names the same unique pattern the scalar walk would —
// and a fault that dies in its first active word pays one word of work,
// not W, which is what makes wide blocks a win on real streams where
// most faults drop almost immediately. The per-visit skip logic and
// stats accounting mirror the scalar loop exactly: a visit whose delta
// is zero across every valid word is a prescreen skip, anything else is
// one propagation.
func (c *Campaign) simulateShardOptWide(ctx context.Context, ordered []TimedPattern, lanes []laneStream,
	laneFaults [][]ID, ev *netlist.Evaluator) (*shardResult, error) {

	sr := &shardResult{perPattern: make([]int32, len(ordered))}
	ci := c.Module.NL.Cone()
	w := ev.BlockWords()

	// The walk buffer is the shard's largest allocation (one entry per
	// undetected fault, rewritten per lane); recycle it across campaigns.
	walk, _ := walkBufPool.Get().([]walkFault)
	defer func() { walkBufPool.Put(walk[:0]) }() //nolint:staticcheck // slice header boxing is fine here
	mask := make([]uint64, w) // valid-pattern mask of the current block
	for lane := range lanes {
		ls := &lanes[lane]
		remaining := laneFaults[lane]
		if len(ls.blocks) == 0 || len(remaining) == 0 {
			continue
		}
		c.sortByCone(remaining)
		walk = c.buildWalk(walk, remaining, ci)
		n := len(walk)
		for b := range ls.blocks {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			blk := &ls.blocks[b]
			if err := ev.Run(blk.inputs); err != nil {
				return nil, err
			}
			sr.stats.Blocks++
			sr.stats.FaultEvals += uint64(n)
			nv := len(blk.gidx)
			words := w // valid words; words-1 may be partial
			for j := range mask {
				mask[j] = ^uint64(0)
			}
			if nv < 64*w {
				words = (nv + 63) / 64
				if rem := nv % 64; rem > 0 {
					mask[words-1] = 1<<uint(rem) - 1
				}
			}

			kept := 0
			for i := 0; i < n; i++ {
				f := &walk[i]
				if blk.skip != nil {
					if cl := f.class; blk.skip[cl>>6]>>(uint(cl)&63)&1 == 1 {
						sr.stats.ConeSkips++
						walk[kept] = *f
						kept++
						continue
					}
				}
				j0, d0 := ev.SiteOpFirstActive(f.op, mask, words)
				if j0 < 0 {
					sr.stats.PrescreenSkips++
					walk[kept] = *f
					kept++
					continue
				}
				sr.stats.Propagations++
				obs := ev.ObsW(f.gate)
				first := -1
				if x := d0 & obs[j0]; x != 0 {
					first = j0*64 + bits.TrailingZeros64(x)
				} else if j, x := ev.SiteOpDetectFrom(f.op, mask, obs, j0+1, words); j >= 0 {
					first = j*64 + bits.TrailingZeros64(x)
				}
				if first < 0 {
					walk[kept] = *f
					kept++
					continue
				}
				gi := blk.gidx[first]
				sr.perPattern[gi]++
				sr.detections = append(sr.detections, Detection{
					Fault: f.id, Pattern: gi, CC: ordered[gi].CC,
				})
			}
			n = kept
			walk = walk[:n]
			if n == 0 {
				break
			}
		}
	}
	return sr, nil
}

// activationMask computes, for the evaluator's current block, on which
// patterns the fault site's forced value differs from the fault-free value.
func activationMask(ev *netlist.Evaluator, nl *netlist.Netlist, s netlist.FaultSite) uint64 {
	var sa uint64
	if s.SA1 {
		sa = ^uint64(0)
	}
	if s.Pin < 0 {
		return ev.Value(s.Gate) ^ sa
	}
	in := nl.Gates[s.Gate].In[s.Pin]
	return ev.Value(in) ^ sa
}

// sortDetections orders detections by (pattern, fault) — the report
// contract — via packed uint64 keys instead of an interface-based sort,
// rebuilding each entry's cc from the stream it indexes into.
func sortDetections(dets []Detection, stream []TimedPattern) {
	if len(dets) < 2 {
		return
	}
	// Faults are non-negative small ints: pack (pattern, fault) into the
	// fewest bits the largest fault id needs, so the radix sort's
	// digit-skip drops the unused high bytes.
	maxF := ID(0)
	for _, d := range dets {
		if d.Fault > maxF {
			maxF = d.Fault
		}
	}
	fBits := uint(bits.Len(uint(maxF)))
	keys := make([]uint64, len(dets))
	for i, d := range dets {
		keys[i] = uint64(uint32(d.Pattern))<<fBits | uint64(uint32(d.Fault))
	}
	radixSortUint64(keys)
	fMask := uint64(1)<<fBits - 1
	for i, k := range keys {
		p := int32(k >> fBits)
		dets[i] = Detection{Fault: ID(uint32(k & fMask)), Pattern: p, CC: stream[p].CC}
	}
}
