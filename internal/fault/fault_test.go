package fault

import (
	"math/rand"
	"testing"

	"gpustl/internal/circuits"
	"gpustl/internal/isa"
	"gpustl/internal/netlist"
	"gpustl/internal/obs"
)

func spModule(t testing.TB) *circuits.Module {
	t.Helper()
	m, err := circuits.Build(circuits.ModuleSP, 0)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func duModule(t testing.TB) *circuits.Module {
	t.Helper()
	m, err := circuits.Build(circuits.ModuleDU, 0)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestAllSitesCounts(t *testing.T) {
	m := spModule(t)
	sites := AllSites(m.NL)
	// Expect 2 output faults per gate plus 2 per input pin; the SP module
	// replicated over 8 lanes must be in the ~200k ballpark of the paper's
	// 191,616 functional-unit faults.
	total := len(sites) * m.Lanes
	if total < 100000 || total > 400000 {
		t.Errorf("SP lane-expanded faults = %d, want ~200k", total)
	}
	t.Logf("SP faults: %d/lane, %d total", len(sites), total)

	for _, s := range sites {
		g := m.NL.Gates[s.Gate]
		if g.Kind == netlist.KConst0 || g.Kind == netlist.KConst1 {
			t.Fatalf("constant gate in fault list: %v", s)
		}
		if s.Pin >= 0 && int(s.Pin) >= g.NumIn() {
			t.Fatalf("pin out of range: %v", s)
		}
	}
}

func TestCollapseEquivalentShrinks(t *testing.T) {
	m := duModule(t)
	sites := AllSites(m.NL)
	col := CollapseEquivalent(m.NL, sites)
	if len(col) >= len(sites) {
		t.Fatalf("collapsing did not shrink: %d -> %d", len(sites), len(col))
	}
	if len(col) < len(sites)/4 {
		t.Fatalf("collapsing too aggressive: %d -> %d", len(sites), len(col))
	}
	t.Logf("DU collapse: %d -> %d", len(sites), len(col))
}

func TestExpandLanes(t *testing.T) {
	sites := []netlist.FaultSite{{Gate: 1, Pin: -1, SA1: true}}
	fs := ExpandLanes(sites, 3)
	if len(fs) != 3 || fs[0].Lane != 0 || fs[2].Lane != 2 {
		t.Fatalf("expand: %+v", fs)
	}
}

// randomSPStream builds n random SP patterns across the module's lanes.
func randomSPStream(r *rand.Rand, lanes, n int) []TimedPattern {
	stream := make([]TimedPattern, n)
	for i := range stream {
		fn := circuits.SPFn(r.Intn(circuits.NumSPFns))
		p := circuits.EncodeSPPattern(fn, isa.Cond(r.Intn(isa.NumConds)),
			r.Uint32(), r.Uint32(), r.Uint32())
		stream[i] = TimedPattern{
			CC:   uint64(i * 7),
			Lane: int16(i % lanes),
			Warp: 0,
			PC:   int32(i / 32),
			Pat:  p,
		}
	}
	return stream
}

func TestSimulateDetectsAndDrops(t *testing.T) {
	m := spModule(t)
	c := NewCampaign(m)
	c.SampleFaults(2000, 1)
	r := rand.New(rand.NewSource(42))
	stream := randomSPStream(r, m.Lanes, 4096)

	rep := c.Simulate(stream, SimOptions{})
	if rep.NumPatterns != len(stream) {
		t.Fatalf("NumPatterns = %d", rep.NumPatterns)
	}
	if got := rep.DetectedThisRun(); got == 0 {
		t.Fatal("no faults detected by 4096 random patterns")
	}
	if c.Detected() != rep.DetectedThisRun() {
		t.Fatalf("campaign detected %d != report %d", c.Detected(), rep.DetectedThisRun())
	}
	cov := c.Coverage()
	if cov < 50 {
		t.Errorf("random-pattern coverage only %.1f%%", cov)
	}
	t.Logf("coverage after 4096 random patterns: %.2f%% (%d/%d)", cov, c.Detected(), c.Total())

	// Per-pattern counts must sum to the total detections.
	var sum int32
	for _, v := range rep.DetectedPerPattern {
		sum += v
	}
	if int(sum) != len(rep.Detections) {
		t.Fatalf("per-pattern sum %d != detections %d", sum, len(rep.Detections))
	}

	// A second identical run must detect nothing new (all dropped).
	rep2 := c.Simulate(stream, SimOptions{})
	if rep2.DetectedThisRun() != 0 {
		t.Fatalf("dropped faults re-detected: %d", rep2.DetectedThisRun())
	}

	// After Reset the same run detects the same faults.
	c.Reset()
	rep3 := c.Simulate(stream, SimOptions{})
	if rep3.DetectedThisRun() != rep.DetectedThisRun() {
		t.Fatalf("after reset: %d != %d", rep3.DetectedThisRun(), rep.DetectedThisRun())
	}
}

func TestSimulateDeterminism(t *testing.T) {
	m := spModule(t)
	r := rand.New(rand.NewSource(4))
	stream := randomSPStream(r, m.Lanes, 1024)

	c1 := NewCampaign(m)
	c1.SampleFaults(500, 7)
	c2 := NewCampaign(m)
	c2.SampleFaults(500, 7)

	r1 := c1.Simulate(stream, SimOptions{})
	r2 := c2.Simulate(stream, SimOptions{})
	if len(r1.Detections) != len(r2.Detections) {
		t.Fatalf("non-deterministic: %d vs %d", len(r1.Detections), len(r2.Detections))
	}
	for i := range r1.Detections {
		if r1.Detections[i] != r2.Detections[i] {
			t.Fatalf("detection %d differs: %+v vs %+v", i, r1.Detections[i], r2.Detections[i])
		}
	}
}

// TestFirstDetectionIsEarliest verifies, against a brute-force per-pattern
// scan, that each fault's recorded detection is the earliest stream
// position that detects it within its lane.
func TestFirstDetectionIsEarliest(t *testing.T) {
	m := spModule(t)
	c := NewCampaign(m)
	c.SampleFaults(150, 3)
	r := rand.New(rand.NewSource(8))
	stream := randomSPStream(r, m.Lanes, 600)
	rep := c.Simulate(stream, SimOptions{})

	// Brute force: single-pattern blocks.
	ev, err := netlist.NewEvaluator(m.NL)
	if err != nil {
		t.Fatal(err)
	}
	inputs := make([]uint64, len(m.NL.Inputs))
	firstDet := map[ID]int32{}
	for si, tp := range stream {
		for i := range inputs {
			inputs[i] = 0
		}
		tp.Pat.ApplyTo(inputs, 0)
		if err := ev.Run(inputs); err != nil {
			t.Fatal(err)
		}
		for id, f := range c.Faults() {
			if int(f.Lane) != int(tp.Lane) {
				continue
			}
			if _, ok := firstDet[ID(id)]; ok {
				continue
			}
			if ev.FaultDetect(f.Site)&1 == 1 {
				firstDet[ID(id)] = int32(si)
			}
		}
	}
	if len(firstDet) != len(rep.Detections) {
		t.Fatalf("brute force found %d detections, sim %d", len(firstDet), len(rep.Detections))
	}
	for _, d := range rep.Detections {
		if want, ok := firstDet[d.Fault]; !ok || want != d.Pattern {
			t.Fatalf("fault %d: sim pattern %d, brute %d (ok=%v)", d.Fault, d.Pattern, want, ok)
		}
	}
}

func TestReverseOrder(t *testing.T) {
	m := spModule(t)
	r := rand.New(rand.NewSource(6))
	stream := randomSPStream(r, m.Lanes, 512)

	c := NewCampaign(m)
	c.SampleFaults(300, 2)
	fwd := c.Simulate(stream, SimOptions{})
	c.Reset()
	rev := c.Simulate(stream, SimOptions{Reverse: true})
	if fwd.DetectedThisRun() != rev.DetectedThisRun() {
		t.Fatalf("total detections must not depend on order: %d vs %d",
			fwd.DetectedThisRun(), rev.DetectedThisRun())
	}
	// The reversed report's metadata must be in reversed stream order.
	if rev.CCs[0] != stream[len(stream)-1].CC {
		t.Fatalf("reverse metadata: first cc %d", rev.CCs[0])
	}
}

func TestActivationRecording(t *testing.T) {
	m := spModule(t)
	c := NewCampaign(m)
	c.SampleFaults(100, 5)
	r := rand.New(rand.NewSource(10))
	stream := randomSPStream(r, m.Lanes, 256)
	rep := c.Simulate(stream, SimOptions{RecordActivations: true, NoDrop: true})
	if rep.ActivatedPerPattern == nil {
		t.Fatal("activations not recorded")
	}
	var act, det int64
	for i := range rep.ActivatedPerPattern {
		act += int64(rep.ActivatedPerPattern[i])
		det += int64(rep.DetectedPerPattern[i])
	}
	if act == 0 {
		t.Fatal("no activations recorded")
	}
	// Every pattern activates roughly half of all stuck-at faults; in
	// aggregate activations must dominate detections.
	if act < det {
		t.Fatalf("activations %d < detections %d", act, det)
	}
}

func TestNoDropRecordsFirstOnly(t *testing.T) {
	m := spModule(t)
	c := NewCampaign(m)
	c.SampleFaults(100, 5)
	r := rand.New(rand.NewSource(12))
	stream := randomSPStream(r, m.Lanes, 512)

	drop := c.Simulate(stream, SimOptions{})
	c.Reset()
	nodrop := c.Simulate(stream, SimOptions{NoDrop: true})
	if drop.DetectedThisRun() != nodrop.DetectedThisRun() {
		t.Fatalf("NoDrop changed detections: %d vs %d",
			drop.DetectedThisRun(), nodrop.DetectedThisRun())
	}
	if c.Detected() != 0 {
		t.Fatalf("NoDrop mutated the campaign fault list: %d", c.Detected())
	}
}

func TestCoverageByGroup(t *testing.T) {
	m := spModule(t)
	c := NewCampaign(m)
	c.SampleFaults(3000, 19)
	r := rand.New(rand.NewSource(20))
	c.Simulate(randomSPStream(r, m.Lanes, 4096), SimOptions{})

	groups := c.CoverageByGroup()
	if len(groups) < 5 {
		t.Fatalf("only %d groups: %+v", len(groups), groups)
	}
	var total, det int
	names := map[string]bool{}
	for _, g := range groups {
		total += g.Total
		det += g.Detected
		names[g.Group] = true
		if g.Detected > g.Total {
			t.Fatalf("group %q: detected %d > total %d", g.Group, g.Detected, g.Total)
		}
	}
	if total != c.Total() || det != c.Detected() {
		t.Fatalf("group sums %d/%d != campaign %d/%d", det, total, c.Detected(), c.Total())
	}
	// The SP builder tags these functional blocks.
	for _, want := range []string{"multiplier", "shifter", "addsub", "result-select"} {
		if !names[want] {
			t.Errorf("missing group %q (have %v)", want, names)
		}
	}
	for _, g := range groups {
		t.Logf("  %-14s %5d/%5d (%.1f%%)", g.Group, g.Detected, g.Total, g.Pct())
	}
}

func TestCampaignWithExplicitFaults(t *testing.T) {
	m := spModule(t)
	sites := AllSites(m.NL)[:10]
	c := NewCampaignWithFaults(m, ExpandLanes(sites, m.Lanes))
	if c.Total() != 10*m.Lanes {
		t.Fatalf("total = %d", c.Total())
	}
	if c.Coverage() != 0 {
		t.Fatalf("initial coverage %f", c.Coverage())
	}
}

func TestLaneIsolation(t *testing.T) {
	// Patterns on lane 0 must not detect lane-1 faults.
	m := spModule(t)
	sites := AllSites(m.NL)[:50]
	c := NewCampaignWithFaults(m, ExpandLanes(sites, m.Lanes))
	r := rand.New(rand.NewSource(14))
	stream := make([]TimedPattern, 500)
	for i := range stream {
		stream[i] = TimedPattern{
			CC:   uint64(i),
			Lane: 0,
			Pat: circuits.EncodeSPPattern(circuits.SPFn(r.Intn(circuits.NumSPFns)),
				isa.CondLT, r.Uint32(), r.Uint32(), r.Uint32()),
		}
	}
	rep := c.Simulate(stream, SimOptions{})
	for _, d := range rep.Detections {
		if c.Faults()[d.Fault].Lane != 0 {
			t.Fatalf("lane-%d fault detected by lane-0 pattern", c.Faults()[d.Fault].Lane)
		}
	}
}

func BenchmarkSimulateSP(b *testing.B) {
	m, err := circuits.Build(circuits.ModuleSP, 0)
	if err != nil {
		b.Fatal(err)
	}
	r := rand.New(rand.NewSource(1))
	stream := randomSPStream(r, m.Lanes, 8192)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := NewCampaign(m)
		c.SampleFaults(5000, 1)
		c.Simulate(stream, SimOptions{})
	}
}

// BenchmarkSimulateSPMetrics is BenchmarkSimulateSP with a live metrics
// registry attached. Comparing the two in BENCH_obs.json proves the
// instrumentation overhead on the fault-sim inner loop is under 1%:
// metrics are recorded once per campaign, after the shard merge, never
// per pattern.
func BenchmarkSimulateSPMetrics(b *testing.B) {
	m, err := circuits.Build(circuits.ModuleSP, 0)
	if err != nil {
		b.Fatal(err)
	}
	r := rand.New(rand.NewSource(1))
	stream := randomSPStream(r, m.Lanes, 8192)
	reg := obs.NewRegistry()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := NewCampaign(m)
		c.SampleFaults(5000, 1)
		c.Simulate(stream, SimOptions{Metrics: reg})
	}
}
