package fault

import (
	"context"
	"math/rand"
	"testing"

	"gpustl/internal/circuits"
)

// FuzzWideBlockEquiv fuzzes the wide-block engine against the NoOptimize
// scalar oracle: for any pattern stream and any block width W the
// optimized detections must be byte-identical — same faults, same first
// detecting pattern index, same clock cycle, same drop set. Bit order
// equals stream order at every width, so any divergence is an engine bug,
// never an accepted reordering.
func FuzzWideBlockEquiv(f *testing.F) {
	mod, err := circuits.Build(circuits.ModuleDU, 0)
	if err != nil {
		f.Fatal(err)
	}

	f.Add(int64(1), uint8(70), uint8(0), false)
	f.Add(int64(2), uint8(1), uint8(1), false)
	f.Add(int64(3), uint8(65), uint8(16), true)
	f.Add(int64(4), uint8(130), uint8(4), false)
	f.Add(int64(5), uint8(9), uint8(8), true)

	f.Fuzz(func(t *testing.T, seed int64, nPat, w uint8, reverse bool) {
		r := rand.New(rand.NewSource(seed))
		stream := randomDUStream(r, 1+int(nPat))
		width := int(w) % 17 // 0 = auto, else an explicit W in [1,16]

		run := func(noOpt bool) (*Report, []ID) {
			c := NewCampaign(mod)
			c.SampleFaults(400, seed)
			opt := SimOptions{Reverse: reverse, BlockWords: width, NoOptimize: noOpt}
			opt.Warnf = func(string, ...any) {} // reference ignores BlockWords
			rep, err := c.SimulateCtx(context.Background(), stream, opt)
			if err != nil {
				t.Fatal(err)
			}
			return rep, c.DetectedIDs()
		}
		ref, refIDs := run(true)
		opt, optIDs := run(false)

		if len(opt.Detections) != len(ref.Detections) {
			t.Fatalf("w=%d: %d detections, reference %d",
				width, len(opt.Detections), len(ref.Detections))
		}
		for i := range ref.Detections {
			if opt.Detections[i] != ref.Detections[i] {
				t.Fatalf("w=%d detection %d: %+v, reference %+v",
					width, i, opt.Detections[i], ref.Detections[i])
			}
		}
		if len(optIDs) != len(refIDs) {
			t.Fatalf("w=%d: dropped %d faults, reference %d", width, len(optIDs), len(refIDs))
		}
		for i := range refIDs {
			if optIDs[i] != refIDs[i] {
				t.Fatalf("w=%d drop %d: fault %d, reference %d",
					width, i, optIDs[i], refIDs[i])
			}
		}
		for p := range ref.DetectedPerPattern {
			if opt.DetectedPerPattern[p] != ref.DetectedPerPattern[p] {
				t.Fatalf("w=%d pattern %d: %d detections, reference %d",
					width, p, opt.DetectedPerPattern[p], ref.DetectedPerPattern[p])
			}
		}
	})
}
