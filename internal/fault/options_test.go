package fault

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"testing"

	"gpustl/internal/circuits"
)

// randomDUStream builds a random single-lane DU pattern stream (raw input
// bits; any bit vector is a legal gate-level pattern).
func randomDUStream(r *rand.Rand, n int) []TimedPattern {
	stream := make([]TimedPattern, n)
	for i := range stream {
		stream[i] = TimedPattern{
			CC:   uint64(i * 3),
			Lane: 0,
			PC:   int32(i),
			Pat:  circuits.Pattern{W: [2]uint64{r.Uint64(), r.Uint64()}},
		}
	}
	return stream
}

// TestWorkersNegativeRejected verifies that a negative worker count is an
// error instead of silently aliasing to serial.
func TestWorkersNegativeRejected(t *testing.T) {
	m := duModule(t)
	c := NewCampaign(m)
	c.SampleFaults(200, 1)
	r := rand.New(rand.NewSource(5))
	stream := randomDUStream(r, 64)

	for _, w := range []int{-1, -8} {
		_, err := c.SimulateCtx(context.Background(), stream, SimOptions{Workers: w})
		if err == nil {
			t.Fatalf("Workers=%d: want error, got nil", w)
		}
		if !strings.Contains(err.Error(), "Workers") {
			t.Fatalf("Workers=%d: error %q does not name the option", w, err)
		}
	}
}

// TestWorkersZeroDefaultsToGOMAXPROCS verifies that Workers=0 resolves to
// runtime.GOMAXPROCS(0) (capped for small campaigns) and that the result
// is identical to an explicit serial run.
func TestWorkersZeroDefaultsToGOMAXPROCS(t *testing.T) {
	m := spModule(t)
	r := rand.New(rand.NewSource(6))
	stream := randomSPStream(r, m.Lanes, 1024)

	run := func(workers int) (*Report, int) {
		c := NewCampaign(m)
		c.SampleFaults(1200, 7)
		rep, err := c.SimulateCtx(context.Background(), stream, SimOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return rep, c.Detected()
	}

	// The plan must resolve 0 to the GOMAXPROCS default (modulo the
	// small-campaign cap), never to serial-by-accident.
	c := NewCampaign(m)
	c.SampleFaults(1200, 7)
	got, err := c.planWorkers(SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := runtime.GOMAXPROCS(0)
	if cap := c.Remaining() / minFaultsPerWorker; want > 1 && cap < want {
		want = cap
		if want < 1 {
			want = 1
		}
	}
	if got != want {
		t.Fatalf("planWorkers(0) = %d, want %d", got, want)
	}

	defRep, defDet := run(0)
	serRep, serDet := run(1)
	if defDet != serDet {
		t.Fatalf("default workers detected %d, serial %d", defDet, serDet)
	}
	if len(defRep.Detections) != len(serRep.Detections) {
		t.Fatalf("detection counts differ: %d vs %d", len(defRep.Detections), len(serRep.Detections))
	}
	for i := range defRep.Detections {
		if defRep.Detections[i] != serRep.Detections[i] {
			t.Fatalf("detection %d differs: %+v vs %+v", i, defRep.Detections[i], serRep.Detections[i])
		}
	}
}

// TestRecordActivationsOverrideWarns verifies that RecordActivations
// forces serial execution with a visible warning through SimOptions.Warnf
// when Workers > 1 was requested, and stays silent when the caller never
// asked for parallelism.
func TestRecordActivationsOverrideWarns(t *testing.T) {
	m := duModule(t)
	r := rand.New(rand.NewSource(8))
	stream := randomDUStream(r, 64)

	var warnings []string
	warnf := func(format string, args ...any) {
		warnings = append(warnings, fmt.Sprintf(format, args...))
	}

	c := NewCampaign(m)
	c.SampleFaults(300, 2)
	_, err := c.SimulateCtx(context.Background(), stream, SimOptions{
		RecordActivations: true, NoDrop: true, Workers: 4, Warnf: warnf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(warnings) != 1 || !strings.Contains(warnings[0], "RecordActivations") {
		t.Fatalf("want one RecordActivations warning, got %q", warnings)
	}

	warnings = nil
	c2 := NewCampaign(m)
	c2.SampleFaults(300, 2)
	if _, err := c2.SimulateCtx(context.Background(), stream, SimOptions{
		RecordActivations: true, NoDrop: true, Warnf: warnf,
	}); err != nil {
		t.Fatal(err)
	}
	if len(warnings) != 0 {
		t.Fatalf("implicit serial must not warn, got %q", warnings)
	}
}
