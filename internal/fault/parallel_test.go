package fault

import (
	"math/rand"
	"runtime"
	"testing"
)

// TestParallelMatchesSerial verifies that worker count never changes the
// outcome: same detections, same first-detection patterns, same campaign
// state.
func TestParallelMatchesSerial(t *testing.T) {
	m := spModule(t)
	r := rand.New(rand.NewSource(21))
	stream := randomSPStream(r, m.Lanes, 2048)

	run := func(workers int) (*Report, int) {
		c := NewCampaign(m)
		c.SampleFaults(1500, 9)
		rep := c.Simulate(stream, SimOptions{Workers: workers})
		return rep, c.Detected()
	}

	refRep, refDet := run(1)
	for _, w := range []int{2, 4, 7} {
		rep, det := run(w)
		if det != refDet {
			t.Fatalf("workers=%d: detected %d != serial %d", w, det, refDet)
		}
		if len(rep.Detections) != len(refRep.Detections) {
			t.Fatalf("workers=%d: %d detections != %d", w, len(rep.Detections), len(refRep.Detections))
		}
		for i := range rep.Detections {
			if rep.Detections[i] != refRep.Detections[i] {
				t.Fatalf("workers=%d: detection %d = %+v, want %+v",
					w, i, rep.Detections[i], refRep.Detections[i])
			}
		}
		for i := range rep.DetectedPerPattern {
			if rep.DetectedPerPattern[i] != refRep.DetectedPerPattern[i] {
				t.Fatalf("workers=%d: per-pattern count %d differs", w, i)
			}
		}
	}
}

// TestParallelDroppingAcrossRuns checks that a parallel run updates the
// shared campaign exactly like a serial one (cross-PTP dropping intact).
func TestParallelDroppingAcrossRuns(t *testing.T) {
	m := spModule(t)
	r := rand.New(rand.NewSource(22))
	s1 := randomSPStream(r, m.Lanes, 1024)
	s2 := randomSPStream(r, m.Lanes, 1024)

	serial := NewCampaign(m)
	serial.SampleFaults(1000, 3)
	serial.Simulate(s1, SimOptions{})
	repS := serial.Simulate(s2, SimOptions{})

	par := NewCampaign(m)
	par.SampleFaults(1000, 3)
	par.Simulate(s1, SimOptions{Workers: 4})
	repP := par.Simulate(s2, SimOptions{Workers: 4})

	if repS.DetectedThisRun() != repP.DetectedThisRun() {
		t.Fatalf("second-run detections differ: %d vs %d",
			repS.DetectedThisRun(), repP.DetectedThisRun())
	}
	if serial.Detected() != par.Detected() {
		t.Fatalf("campaign state differs: %d vs %d", serial.Detected(), par.Detected())
	}
}

func BenchmarkSimulateSPParallel(b *testing.B) {
	m := spModule(b)
	r := rand.New(rand.NewSource(1))
	stream := randomSPStream(r, m.Lanes, 8192)
	workers := runtime.GOMAXPROCS(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := NewCampaign(m)
		c.SampleFaults(5000, 1)
		c.Simulate(stream, SimOptions{Workers: workers})
	}
}
