package fault

import (
	"context"
	"math/rand"
	"strings"
	"testing"

	"gpustl/internal/netlist"
)

func TestSimulateCtxCanceledCommitsNothing(t *testing.T) {
	m := spModule(t)
	c := NewCampaign(m)
	c.SampleFaults(2000, 3)
	stream := randomSPStream(rand.New(rand.NewSource(3)), m.Lanes, 256)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		rep, err := c.SimulateCtx(ctx, stream, SimOptions{Workers: workers})
		if err == nil {
			t.Fatalf("workers=%d: canceled context accepted", workers)
		}
		if rep != nil {
			t.Fatalf("workers=%d: got report despite cancellation", workers)
		}
		if c.Detected() != 0 {
			t.Fatalf("workers=%d: canceled run committed %d detections",
				workers, c.Detected())
		}
	}

	// The same campaign still works once the context is live again.
	rep, err := c.SimulateCtx(context.Background(), stream, SimOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.DetectedThisRun() == 0 {
		t.Fatal("no detections after recovery from cancellation")
	}
}

func TestSimulateCtxWorkerPanicRecovered(t *testing.T) {
	m := spModule(t)
	// A fault site pointing past the end of the gate list makes the
	// evaluator panic with an index error deep inside FaultDetect. The
	// campaign must surface that as an error, not crash the process.
	bogus := []Fault{
		{Lane: 0, Site: netlist.FaultSite{Gate: 1, Pin: -1, SA1: true}},
		{Lane: 0, Site: netlist.FaultSite{Gate: 1 << 20, Pin: -1, SA1: false}},
	}
	stream := randomSPStream(rand.New(rand.NewSource(5)), m.Lanes, 128)
	for _, workers := range []int{1, 4} {
		c := NewCampaignWithFaults(m, bogus)
		rep, err := c.SimulateCtx(context.Background(), stream,
			SimOptions{Workers: workers})
		if err == nil {
			t.Fatalf("workers=%d: bogus fault site did not error", workers)
		}
		if !strings.Contains(err.Error(), "panicked") {
			t.Fatalf("workers=%d: error does not mention panic: %v", workers, err)
		}
		if rep != nil {
			t.Fatalf("workers=%d: got report despite panic", workers)
		}
		if c.Detected() != 0 {
			t.Fatalf("workers=%d: failed run committed %d detections",
				workers, c.Detected())
		}
	}
}

func TestDetectedIDsRestoreRoundTrip(t *testing.T) {
	m := spModule(t)
	c := NewCampaign(m)
	c.SampleFaults(2000, 7)
	stream := randomSPStream(rand.New(rand.NewSource(7)), m.Lanes, 256)
	rep, err := c.SimulateCtx(context.Background(), stream, SimOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.DetectedThisRun() == 0 {
		t.Fatal("no detections to snapshot")
	}

	ids := c.DetectedIDs()
	if len(ids) != c.Detected() {
		t.Fatalf("DetectedIDs len %d != Detected %d", len(ids), c.Detected())
	}
	for i := 1; i < len(ids); i++ {
		if ids[i] <= ids[i-1] {
			t.Fatalf("DetectedIDs not strictly ascending at %d", i)
		}
	}

	// A fresh campaign over the same sampled list restores to the same
	// dropped set: re-simulating the same stream detects nothing new.
	c2 := NewCampaign(m)
	c2.SampleFaults(2000, 7)
	if err := c2.RestoreDetected(ids); err != nil {
		t.Fatal(err)
	}
	if c2.Detected() != c.Detected() {
		t.Fatalf("restored %d detections, want %d", c2.Detected(), c.Detected())
	}
	rep2, err := c2.SimulateCtx(context.Background(), stream, SimOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.DetectedThisRun() != 0 {
		t.Fatalf("restored campaign re-detected %d faults", rep2.DetectedThisRun())
	}

	// Restoring is idempotent; out-of-range ids are rejected untouched.
	if err := c2.RestoreDetected(ids); err != nil {
		t.Fatal(err)
	}
	before := c2.Detected()
	if err := c2.RestoreDetected([]ID{ID(c2.Total() + 5)}); err == nil {
		t.Fatal("out-of-range id accepted")
	}
	if c2.Detected() != before {
		t.Fatal("failed restore mutated campaign")
	}
}

func TestCampaignErrSurfacesSequentialModule(t *testing.T) {
	m := pipeModule(t) // sequential: combinational campaigns must refuse it
	c := NewCampaign(m)
	if c.Err() == nil {
		t.Fatal("campaign over sequential module reports no error")
	}
	stream := pipeStream(8)
	if _, err := c.SimulateCtx(context.Background(), stream, SimOptions{}); err == nil {
		t.Fatal("SimulateCtx ignored construction error")
	}
}
