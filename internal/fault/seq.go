package fault

import (
	"fmt"
	"sort"

	"gpustl/internal/circuits"
	"gpustl/internal/netlist"
)

// SeqCampaign fault-simulates a *sequential* module (one with flip-flops,
// like the pipeline register bank): the pattern stream is one ordered test
// sequence, faulty state diverges across clock cycles, and detection is a
// primary-output discrepancy at any cycle. Machines run 63 faults at a
// time in parallel with the fault-free reference (parallel-fault
// sequential simulation); stem (gate-output) stuck-at faults only, the
// standard model for register banks.
type SeqCampaign struct {
	Module *circuits.Module

	faults   []Fault
	detected []bool
	nDet     int
	ev       *netlist.SeqEvaluator
}

// SeqStemFaults enumerates the stem stuck-at faults of a netlist (the
// fault universe a SeqCampaign targets).
func SeqStemFaults(nl *netlist.Netlist) []Fault {
	var out []Fault
	for id := int32(0); id < int32(len(nl.Gates)); id++ {
		k := nl.Gates[id].Kind
		if k == netlist.KConst0 || k == netlist.KConst1 {
			continue
		}
		out = append(out,
			Fault{Site: netlist.FaultSite{Gate: id, Pin: -1, SA1: false}},
			Fault{Site: netlist.FaultSite{Gate: id, Pin: -1, SA1: true}},
		)
	}
	return out
}

// NewSeqCampaign creates a campaign over the module's stem fault list.
// Sequential modules are single-lane.
func NewSeqCampaign(m *circuits.Module) (*SeqCampaign, error) {
	if m.NL.NumDFFs() == 0 {
		return nil, fmt.Errorf("fault: module %v has no flip-flops; use Campaign", m.Kind)
	}
	faults := SeqStemFaults(m.NL)
	return &SeqCampaign{
		Module:   m,
		faults:   faults,
		detected: make([]bool, len(faults)),
		ev:       netlist.NewSeqEvaluator(m.NL),
	}, nil
}

// Faults returns the campaign's fault list (do not mutate).
func (c *SeqCampaign) Faults() []Fault { return c.faults }

// Total returns the fault-list size.
func (c *SeqCampaign) Total() int { return len(c.faults) }

// Detected returns how many faults have been detected so far.
func (c *SeqCampaign) Detected() int { return c.nDet }

// Coverage returns the cumulative coverage in percent.
func (c *SeqCampaign) Coverage() float64 {
	if len(c.faults) == 0 {
		return 0
	}
	return 100 * float64(c.nDet) / float64(len(c.faults))
}

// Reset clears all detections.
func (c *SeqCampaign) Reset() {
	for i := range c.detected {
		c.detected[i] = false
	}
	c.nDet = 0
}

// CoverageByGroup aggregates the sequential campaign per functional group
// of the netlist, like Campaign.CoverageByGroup.
func (c *SeqCampaign) CoverageByGroup() []GroupCoverage {
	byName := map[string]*GroupCoverage{}
	var order []string
	for id, f := range c.faults {
		g := c.Module.NL.GroupOf(f.Site.Gate)
		gc, ok := byName[g]
		if !ok {
			gc = &GroupCoverage{Group: g}
			byName[g] = gc
			order = append(order, g)
		}
		gc.Total++
		if c.detected[id] {
			gc.Detected++
		}
	}
	sort.Strings(order)
	out := make([]GroupCoverage, 0, len(order))
	for _, g := range order {
		out = append(out, *byName[g])
	}
	return out
}

// Simulate replays the stream as one test sequence (in cc order) against
// every remaining fault and returns a Report compatible with the
// combinational campaign's: per-pattern first-detection counts plus the
// individual detections, ready for the Fig. 2 labeling join. An evaluator
// failure is returned as an error with the campaign state untouched for
// the failing batch.
func (c *SeqCampaign) Simulate(stream []TimedPattern) (*Report, error) {
	ordered := append([]TimedPattern(nil), stream...)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].CC < ordered[j].CC })

	rep := &Report{
		NumPatterns:        len(ordered),
		DetectedPerPattern: make([]int32, len(ordered)),
		CCs:                make([]uint64, len(ordered)),
		Lanes:              make([]int16, len(ordered)),
		PCs:                make([]int32, len(ordered)),
		Warps:              make([]int16, len(ordered)),
	}
	for i, p := range ordered {
		rep.CCs[i] = p.CC
		rep.Lanes[i] = p.Lane
		rep.PCs[i] = p.PC
		rep.Warps[i] = p.Warp
	}

	var remaining []ID
	for id := range c.faults {
		if !c.detected[id] {
			remaining = append(remaining, ID(id))
		}
	}

	numIn := len(c.Module.NL.Inputs)
	inputs := make([]bool, numIn)
	for batch := 0; batch < len(remaining); batch += 63 {
		end := batch + 63
		if end > len(remaining) {
			end = len(remaining)
		}
		ids := remaining[batch:end]
		sites := make([]netlist.FaultSite, len(ids))
		for i, id := range ids {
			sites[i] = c.faults[id].Site
		}
		if err := c.ev.LoadFaults(sites); err != nil {
			// Provably internal: SeqStemFaults only emits stem faults and
			// batches are capped at 63, the two conditions LoadFaults checks.
			panic(err)
		}
		// Every fault in the batch detected → the rest of the sequence
		// cannot add a first detection for this batch; stop replaying it.
		full := (uint64(1)<<uint(len(ids)) - 1) << 1
		var seen uint64
		for si, tp := range ordered {
			if seen == full {
				break
			}
			for i := 0; i < numIn; i++ {
				inputs[i] = tp.Pat.Bit(i)
			}
			det, err := c.ev.Step(inputs)
			if err != nil {
				return nil, fmt.Errorf("fault: sequential simulation of %v: %w", c.Module.Kind, err)
			}
			fresh := det &^ seen
			if fresh == 0 {
				continue
			}
			seen |= fresh
			for k := 1; k <= len(ids); k++ {
				if fresh>>uint(k)&1 == 0 {
					continue
				}
				id := ids[k-1]
				c.detected[id] = true
				c.nDet++
				rep.DetectedPerPattern[si]++
				rep.Detections = append(rep.Detections, Detection{
					Fault: id, Pattern: int32(si), CC: tp.CC,
				})
			}
		}
	}
	sort.Slice(rep.Detections, func(i, j int) bool {
		if rep.Detections[i].Pattern != rep.Detections[j].Pattern {
			return rep.Detections[i].Pattern < rep.Detections[j].Pattern
		}
		return rep.Detections[i].Fault < rep.Detections[j].Fault
	})
	return rep, nil
}
