package fault

import (
	"testing"

	"gpustl/internal/circuits"
)

func pipeModule(t testing.TB) *circuits.Module {
	t.Helper()
	m, err := circuits.Build(circuits.ModulePIPE, 0)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// pipeStream builds a functional fetch sequence: enabled cycles with
// varied words and pcs.
func pipeStream(n int) []TimedPattern {
	out := make([]TimedPattern, n)
	for i := range out {
		word := uint64(i)*0x9E3779B97F4A7C15 + 0x1234
		out[i] = TimedPattern{
			CC: uint64(i * 65), PC: int32(i), Warp: 0,
			Pat: circuits.EncodePIPEPattern(word, uint32(i), true, false),
		}
	}
	return out
}

func TestSeqCampaignDetectsRegisterFaults(t *testing.T) {
	m := pipeModule(t)
	c, err := NewSeqCampaign(m)
	if err != nil {
		t.Fatal(err)
	}
	if c.Total() == 0 {
		t.Fatal("empty fault list")
	}
	rep, err := c.Simulate(pipeStream(128))
	if err != nil {
		t.Fatal(err)
	}
	if rep.DetectedThisRun() == 0 {
		t.Fatal("no sequential detections")
	}
	// A varied fetch stream toggles every register both ways: coverage of
	// the register bank must be high.
	if c.Coverage() < 85 {
		t.Errorf("pipeline register coverage only %.2f%%", c.Coverage())
	}
	t.Logf("PIPE: %d faults, %.2f%% coverage from %d cycles",
		c.Total(), c.Coverage(), rep.NumPatterns)

	// Per-pattern counts sum to detections; ccs preserved.
	var sum int32
	for _, n := range rep.DetectedPerPattern {
		sum += n
	}
	if int(sum) != len(rep.Detections) {
		t.Fatalf("per-pattern sum %d != %d", sum, len(rep.Detections))
	}
	for _, d := range rep.Detections {
		if rep.CCs[d.Pattern] != d.CC {
			t.Fatalf("detection cc mismatch: %+v", d)
		}
	}

	// Second identical run detects nothing new (dropping persists).
	rep2, err := c.Simulate(pipeStream(128))
	if err != nil {
		t.Fatal(err)
	}
	if rep2.DetectedThisRun() != 0 {
		t.Fatalf("re-detected %d", rep2.DetectedThisRun())
	}
	c.Reset()
	rep3, err := c.Simulate(pipeStream(128))
	if err != nil {
		t.Fatal(err)
	}
	if rep3.DetectedThisRun() != rep.DetectedThisRun() {
		t.Fatalf("after reset: %d != %d", rep3.DetectedThisRun(), rep.DetectedThisRun())
	}
}

func TestSeqCampaignStuckValidNeedsFlushlessStream(t *testing.T) {
	// The valid bit stuck at 1 is undetectable in an always-enabled,
	// never-flushed stream (valid is constantly 1 functionally): some
	// faults need flush cycles. Adding flushes must increase coverage.
	m := pipeModule(t)
	plain, err := NewSeqCampaign(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plain.Simulate(pipeStream(64)); err != nil {
		t.Fatal(err)
	}

	flushy, err := NewSeqCampaign(m)
	if err != nil {
		t.Fatal(err)
	}
	stream := pipeStream(64)
	for i := range stream {
		if i%7 == 3 { // periodic flush and stall cycles
			word, pc, _, _ := circuits.DecodePIPEPattern(stream[i].Pat)
			stream[i].Pat = circuits.EncodePIPEPattern(word, pc, i%14 == 3, true)
		}
	}
	if _, err := flushy.Simulate(stream); err != nil {
		t.Fatal(err)
	}
	if flushy.Detected() <= plain.Detected() {
		t.Errorf("flush/stall cycles did not add coverage: %d vs %d",
			flushy.Detected(), plain.Detected())
	}
	t.Logf("coverage: plain %.2f%%, with flush/stall %.2f%%",
		plain.Coverage(), flushy.Coverage())
}

func TestSeqCampaignRejectsCombinational(t *testing.T) {
	m, err := circuits.Build(circuits.ModuleDU, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSeqCampaign(m); err == nil {
		t.Fatal("combinational module accepted")
	}
}
