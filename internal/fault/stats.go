package fault

import (
	"fmt"
	"strings"
)

// SimStats counts what the optimized simulation engine actually did: how
// much stimulus was deduplicated away, how many fault×block evaluations
// were answered by the cone test or the activation pre-screen alone, and
// how many needed a full fan-out-cone propagation. The counters make
// optimization effectiveness observable — a regression here (e.g. a
// stimulus change that defeats dedup) shows up even when wall-clock noise
// hides it.
//
// TotalPatterns/UniquePatterns describe the stream once per run;
// Blocks/FaultEvals/ConeSkips/PrescreenSkips/Propagations sum the work of
// all shards (a fault×block visit is counted exactly once, under exactly
// one of the three outcomes or as a drop-hit propagation).
type SimStats struct {
	// Blocks is the number of pattern-block good-circuit evaluations run
	// (64×BlockWords patterns each).
	Blocks uint64 `json:"blocks"`
	// BlockWords is the evaluator block width of the run, in 64-pattern
	// machine words: each good-circuit sweep covers 64×BlockWords
	// patterns. Merging takes the maximum, so a campaign's cumulative
	// stats report the widest width any of its runs used; the naive
	// engine is always scalar (1).
	BlockWords uint64 `json:"block_words,omitempty"`
	// PlanLevels and PlanRuns describe the netlist's compiled SoA
	// evaluation plan: how many logic levels hold planned gates and how
	// many contiguous (level, kind) gate runs the sweep walks. Properties
	// of the circuit, not of the run; merged by maximum like BlockWords.
	PlanLevels uint64 `json:"plan_levels,omitempty"`
	PlanRuns   uint64 `json:"plan_runs,omitempty"`
	// TotalPatterns is the stream length fed to the run (after lane
	// filtering), including duplicates.
	TotalPatterns uint64 `json:"total_patterns"`
	// UniquePatterns is the stream length after per-lane dedup; the naive
	// engine reports TotalPatterns here (it deduplicates nothing).
	UniquePatterns uint64 `json:"unique_patterns"`
	// FaultEvals counts fault×block visits.
	FaultEvals uint64 `json:"fault_evals"`
	// ConeSkips counts visits resolved by the unchanged-cone test: no
	// primary input in the fault's detection support changed since the
	// previous block, so the (zero) detection mask carries over.
	ConeSkips uint64 `json:"cone_skips"`
	// PrescreenSkips counts visits resolved by the activation pre-screen:
	// the fault site's local delta was zero, so nothing can propagate.
	PrescreenSkips uint64 `json:"prescreen_skips"`
	// Propagations counts visits that computed a real detection mask: in
	// the optimized engine a delta&Obs combination against the memoized
	// observability of the fault site (the shared event-driven propagation
	// that fills a stem's memo is amortized, not per-fault); in the naive
	// engine a full fan-out-cone evaluation.
	Propagations uint64 `json:"propagations"`
}

// Add accumulates o into s. Work counters sum; the configuration-like
// fields (block width, plan shape) merge by maximum, so shard stats
// (which leave them zero) never erase the run-level values.
func (s *SimStats) Add(o SimStats) {
	s.Blocks += o.Blocks
	s.BlockWords = max(s.BlockWords, o.BlockWords)
	s.PlanLevels = max(s.PlanLevels, o.PlanLevels)
	s.PlanRuns = max(s.PlanRuns, o.PlanRuns)
	s.TotalPatterns += o.TotalPatterns
	s.UniquePatterns += o.UniquePatterns
	s.FaultEvals += o.FaultEvals
	s.ConeSkips += o.ConeSkips
	s.PrescreenSkips += o.PrescreenSkips
	s.Propagations += o.Propagations
}

// DedupHitRate returns the fraction of stream patterns eliminated by the
// unique-pattern dictionary, in [0,1].
func (s SimStats) DedupHitRate() float64 {
	if s.TotalPatterns == 0 {
		return 0
	}
	return 1 - float64(s.UniquePatterns)/float64(s.TotalPatterns)
}

// PrescreenSkipRatio returns the fraction of fault×block visits the
// activation pre-screen resolved, in [0,1].
func (s SimStats) PrescreenSkipRatio() float64 {
	if s.FaultEvals == 0 {
		return 0
	}
	return float64(s.PrescreenSkips) / float64(s.FaultEvals)
}

// ConeSkipRatio returns the fraction of fault×block visits the
// unchanged-cone test resolved, in [0,1].
func (s SimStats) ConeSkipRatio() float64 {
	if s.FaultEvals == 0 {
		return 0
	}
	return float64(s.ConeSkips) / float64(s.FaultEvals)
}

// String renders the stats as an aligned report block, in the style of
// trace.OpStats.
func (s SimStats) String() string {
	pct := func(n uint64) float64 {
		if s.FaultEvals == 0 {
			return 0
		}
		return 100 * float64(n) / float64(s.FaultEvals)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "fault-sim engine stats\n")
	fmt.Fprintf(&b, "  patterns    total %12d  unique %12d  dedup hit-rate %6.2f%%\n",
		s.TotalPatterns, s.UniquePatterns, 100*s.DedupHitRate())
	fmt.Fprintf(&b, "  blocks      %12d  (%d patterns / sweep, %d-word blocks)\n",
		s.Blocks, 64*max(s.BlockWords, 1), max(s.BlockWords, 1))
	if s.PlanRuns > 0 {
		fmt.Fprintf(&b, "  eval plan   %12d levels  %6d kind-runs\n", s.PlanLevels, s.PlanRuns)
	}
	fmt.Fprintf(&b, "  fault evals %12d\n", s.FaultEvals)
	fmt.Fprintf(&b, "    cone-skipped      %12d  %6.2f%%\n", s.ConeSkips, pct(s.ConeSkips))
	fmt.Fprintf(&b, "    prescreen-skipped %12d  %6.2f%%\n", s.PrescreenSkips, pct(s.PrescreenSkips))
	fmt.Fprintf(&b, "    propagated        %12d  %6.2f%%\n", s.Propagations, pct(s.Propagations))
	return b.String()
}
