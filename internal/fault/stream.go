package fault

import (
	"slices"
	"sort"

	"gpustl/internal/circuits"
	"gpustl/internal/netlist"
)

// AutoBlockWords picks the evaluator block width, in 64-pattern machine
// words, for a run whose largest per-lane deduplicated stream holds the
// given number of patterns: the narrowest width of the supported sweep
// set {1, 4, 8, 16} whose single block still covers the stream. Wider
// blocks amortize the per-fault visit cost (site delta, observability
// memo, skip bookkeeping) over more patterns, but cost proportionally
// more per good-circuit sweep — so there is no point going wider than
// the stream.
func AutoBlockWords(patterns int) int {
	switch {
	case patterns <= 64:
		return 1
	case patterns <= 4*64:
		return 4
	case patterns <= 8*64:
		return 8
	}
	return netlist.MaxBlockWords
}

// blockStim is the precomputed stimulus of one block (64×W patterns) of
// a lane's deduplicated stream: the packed input vectors Evaluator.Run
// consumes, the global stream index of each slot's earliest original
// occurrence, and the per-cone-class skip set. Blocks are built once per
// run and shared read-only across shards, hoisting the per-shard input
// clearing and re-packing out of the hot loop entirely.
type blockStim struct {
	inputs []uint64 // W packed words per primary input, input-major
	gidx   []int32  // first-occurrence global stream index per slot
	// skip is a bitset over cone-equivalence classes: bit c set when this
	// block's projection onto class c's detection support is identical to
	// an earlier block's. A fault of class c still undetected here was
	// undetected on that earlier block under the same effective stimulus,
	// so its detection mask is a known zero and the whole evaluation can
	// be skipped. nil on the first block and for classes never marked.
	skip []uint64
}

// laneStream is one lane's deduplicated, pre-packed pattern stream.
type laneStream struct {
	blocks []blockStim
	total  int // original pattern count, duplicates included
	unique int // patterns kept after dedup
}

// buildLaneStreams deduplicates and packs the per-lane streams for one
// simulation run. Dedup is per lane: a TimedPattern whose input vector
// (circuits.Pattern is a comparable value) already occurred earlier in
// the same lane's stream is dropped, and any detection it would have
// produced is attributed to that earlier occurrence — which is exactly
// where the reference engine first detects it, since identical stimulus
// yields identical detection masks. First-occurrence order is preserved,
// so first-detection indices and cc values are byte-identical.
//
// classUsed[lane] restricts the block-level skip analysis to cone
// classes that actually contain undetected faults in that lane; nil
// analyses every class.
//
// reqWords fixes the block width in 64-pattern words; 0 lets
// AutoBlockWords pick it from the largest per-lane unique stream (which
// is why dedup runs as a first phase, before any packing). The chosen
// width is returned alongside the streams so the caller can build
// matching evaluators.
func buildLaneStreams(nl *netlist.Netlist, ordered []TimedPattern, laneIdx [][]int32,
	classUsed [][]uint64, reqWords int) ([]laneStream, int) {

	numIn := len(nl.Inputs)
	lanes := make([]laneStream, len(laneIdx))

	// Phase 1: per-lane dedup into first-occurrence-ordered unique lists.
	// The dictionary is per lane. An exact-match open-addressed table
	// (power-of-two, ≤50% load) replaces map[Pattern]struct{}: the hash
	// only picks buckets, equality is the comparison of the packed
	// words, so dedup is exact either way — just without per-insert
	// hashing and bucket bookkeeping overhead.
	type uniqStream struct {
		pats []circuits.Pattern
		gidx []int32
	}
	uniq := make([]uniqStream, len(laneIdx))
	var table []int32 // open-addressed dictionary: slot -> pats index
	maxUnique := 0
	for lane, idxs := range laneIdx {
		lanes[lane].total = len(idxs)
		if len(idxs) == 0 {
			continue
		}
		need := 2
		for need < 2*len(idxs) {
			need <<= 1
		}
		if len(table) < need {
			table = make([]int32, need)
		}
		tbl := table[:need]
		for i := range tbl {
			tbl[i] = -1
		}
		hmask := uint64(need - 1)
		u := &uniq[lane]
		u.pats = make([]circuits.Pattern, 0, len(idxs))
		u.gidx = make([]int32, 0, len(idxs))
		for _, gi := range idxs {
			p := ordered[gi].Pat
			h := hashPattern(p) & hmask
			dup := false
			for {
				j := tbl[h]
				if j < 0 {
					tbl[h] = int32(len(u.pats))
					break
				}
				if u.pats[j] == p {
					dup = true
					break
				}
				h = (h + 1) & hmask
			}
			if dup {
				continue
			}
			u.pats = append(u.pats, p)
			u.gidx = append(u.gidx, gi)
		}
		lanes[lane].unique = len(u.pats)
		if len(u.pats) > maxUnique {
			maxUnique = len(u.pats)
		}
	}

	w := reqWords
	if w <= 0 {
		w = AutoBlockWords(maxUnique)
	}

	// Phase 2: pack each lane's unique stream into 64×w-pattern blocks,
	// one 64-pattern transpose per word. Bit order equals stream order —
	// pattern s of a block sits at word s/64, bit s%64 — so the earliest
	// set bit of any detection mask is the earliest unique pattern at
	// every width.
	bp := 64 * w
	for lane := range lanes {
		u, ls := &uniq[lane], &lanes[lane]
		if len(u.pats) == 0 {
			continue
		}
		ls.blocks = make([]blockStim, 0, (len(u.pats)+bp-1)/bp)
		for base := 0; base < len(u.pats); base += bp {
			end := base + bp
			if end > len(u.pats) {
				end = len(u.pats)
			}
			blk := blockStim{
				inputs: make([]uint64, numIn*w),
				gidx:   u.gidx[base:end:end],
			}
			for word := 0; base+word*64 < end; word++ {
				lo := base + word*64
				hi := min(lo+64, end)
				circuits.PackPatternsAt(u.pats[lo:hi], blk.inputs, numIn, w, word)
			}
			ls.blocks = append(ls.blocks, blk)
		}
		var used []uint64
		if classUsed != nil {
			used = classUsed[lane]
		}
		buildClassSkips(nl.Cone(), numIn, ls, used, w)
	}
	return lanes, w
}

// hashPattern mixes a pattern's packed words into a table-bucket hash.
// Collisions only cost probes — matching is exact — so a fast mixer is
// all that is needed.
func hashPattern(p circuits.Pattern) uint64 {
	h := p.W[0]*0x9E3779B97F4A7C15 ^ p.W[1]*0xBF58476D1CE4E5B9
	h ^= h >> 32
	h *= 0xD6E8FEB86659FD93
	h ^= h >> 29
	return h
}

// buildClassSkips marks, for every block and cone class, whether the
// block's stimulus projected onto the class's detection support already
// occurred in an earlier block of the lane. Matching is hash-bucketed
// with exact word comparison, so a hash collision can never produce an
// unsound skip. Projections compare all w words of each support input;
// only the last block of a lane can be partial, so an earlier matching
// block is always full and its (zero) detection mask covers every
// pattern the current block can present — a partial block's zero-padded
// tail matching means the earlier block really held those values too.
func buildClassSkips(ci *netlist.ConeInfo, numIn int, ls *laneStream, used []uint64, w int) {
	if len(ls.blocks) < 2 {
		return
	}
	nc := ci.NumClasses()
	skipWords := (nc + 63) / 64
	seen := make(map[uint64][]int32) // projected-stimulus hash -> block indices
	for c := int32(0); c < int32(nc); c++ {
		if used != nil && used[c>>6]>>(uint(c)&63)&1 == 0 {
			continue // no undetected fault of this class in this lane
		}
		ins := ci.ClassInputs(c)
		if len(ins) >= numIn {
			// Full detection support: the projection is the whole block.
			// Lane dedup guarantees distinct blocks hold disjoint pattern
			// sets, so two full projections can never match — skipping the
			// analysis loses nothing.
			continue
		}
		if len(ins) == 0 {
			// Empty detection support: every block's projection matches the
			// first block's, no hashing needed.
			for b := 1; b < len(ls.blocks); b++ {
				blk := &ls.blocks[b]
				if blk.skip == nil {
					blk.skip = make([]uint64, skipWords)
				}
				blk.skip[c>>6] |= 1 << (uint(c) & 63)
			}
			continue
		}
		clear(seen)
		for b := range ls.blocks {
			blk := &ls.blocks[b]
			h := uint64(14695981039346656037)
			for _, idx := range ins {
				for j := int(idx) * w; j < (int(idx)+1)*w; j++ {
					h ^= blk.inputs[j]
					h *= 1099511628211
				}
			}
			dup := false
			for _, pb := range seen[h] {
				prev := ls.blocks[pb].inputs
				same := true
				for _, idx := range ins {
					for j := int(idx) * w; j < (int(idx)+1)*w; j++ {
						if blk.inputs[j] != prev[j] {
							same = false
							break
						}
					}
					if !same {
						break
					}
				}
				if same {
					dup = true
					break
				}
			}
			if dup {
				if blk.skip == nil {
					blk.skip = make([]uint64, skipWords)
				}
				blk.skip[c>>6] |= 1 << (uint(c) & 63)
			} else {
				seen[h] = append(seen[h], int32(b))
			}
		}
	}
}

// laneClassUse returns, per lane, the set of cone classes (as a bitset)
// that contain at least one fault from the given per-lane fault lists —
// the only classes the block-skip analysis needs to consider.
func laneClassUse(ci *netlist.ConeInfo, faults []Fault, laneFaults [][][]ID) [][]uint64 {
	words := (ci.NumClasses() + 63) / 64
	out := make([][]uint64, 0)
	var lanes int
	for _, shard := range laneFaults {
		if len(shard) > lanes {
			lanes = len(shard)
		}
	}
	out = make([][]uint64, lanes)
	for i := range out {
		out[i] = make([]uint64, words)
	}
	for _, shard := range laneFaults {
		for lane, ids := range shard {
			for _, id := range ids {
				g := faults[id].Site.Gate
				if g < 0 || int(g) >= ci.NumGatesIndexed() {
					// A corrupt fault site panics inside the worker's
					// recover during simulation; the prep stage must not
					// crash the whole process on it.
					continue
				}
				c := ci.ClassOf(g)
				out[lane][c>>6] |= 1 << (uint(c) & 63)
			}
		}
	}
	return out
}

// coneOrdering returns the campaign's fault ids sorted by fan-out cone —
// (first reachable output, cone class, id) — and the inverse rank per
// id. Faults ordered this way run consecutively over overlapping gate
// sets (warm observability memos and stamps), and the class-skip test
// resolves whole runs of neighbours together. The ordering is a property
// of the netlist and the fault list alone, so it is computed once per
// campaign; when the three key components fit, they are packed into one
// uint64 per fault and sorted without a comparison callback.
func (c *Campaign) coneOrdering() ([]ID, []int32) {
	c.coneOnce.Do(func() {
		ci := c.Module.NL.Cone()
		n := len(c.faults)
		c.coneOrder = make([]ID, n)
		c.coneRank = make([]int32, n)
		key := func(id int) (fo1 uint32, cl uint32) {
			// A corrupt site (out-of-range gate) sorts first with a zero
			// key; it still panics inside a worker's recover when
			// simulated, exactly as the reference engine does.
			if g := c.faults[id].Site.Gate; g >= 0 && int(g) < ci.NumGatesIndexed() {
				return uint32(ci.FirstOut(g) + 1), uint32(ci.ClassOf(g))
			}
			return 0, 0
		}
		nOut1 := len(c.Module.NL.Outputs) + 1
		base := ci.NumClasses() + 1
		if nPairs := nOut1 * base; nPairs <= 1<<21 && n < 1<<31 {
			// The (fo1, class) pair space is tiny next to the fault list, so
			// a stable two-pass counting sort replaces any comparison sort:
			// ids scatter in ascending order, which is exactly the
			// (first output, class, id) order the engine wants.
			pair := make([]int32, n)
			count := make([]int32, nPairs+1)
			for id, f := range c.faults {
				var p int32
				if g := f.Site.Gate; g >= 0 && int(g) < ci.NumGatesIndexed() {
					p = (ci.FirstOut(g)+1)*int32(base) + ci.ClassOf(g)
				}
				pair[id] = p
				count[p+1]++
			}
			for i := 1; i < len(count); i++ {
				count[i] += count[i-1]
			}
			for id, p := range pair {
				c.coneOrder[count[p]] = ID(id)
				count[p]++
			}
		} else {
			for id := range c.coneOrder {
				c.coneOrder[id] = ID(id)
			}
			sort.Slice(c.coneOrder, func(i, j int) bool {
				a, b := c.coneOrder[i], c.coneOrder[j]
				af, ac := key(int(a))
				bf, bc := key(int(b))
				if af != bf {
					return af < bf
				}
				if ac != bc {
					return ac < bc
				}
				return a < b
			})
		}
		for i, id := range c.coneOrder {
			c.coneRank[id] = int32(i)
		}
	})
	return c.coneOrder, c.coneRank
}

// radixSortUint64 sorts keys ascending with an LSD byte radix sort.
// Passes whose digit is constant across all keys are skipped, so keys
// that only use their low bytes pay only for those bytes. The engine
// sorts packed multi-thousand-key slices on every run (cone ordering,
// detection report), where the O(n) passes beat a comparison sort by
// roughly an order of magnitude; tiny inputs fall back to slices.Sort.
func radixSortUint64(keys []uint64) {
	n := len(keys)
	if n < 128 {
		slices.Sort(keys)
		return
	}
	src, dst := keys, make([]uint64, n)
	for shift := uint(0); shift < 64; shift += 8 {
		var count [256]int
		for _, k := range src {
			count[k>>shift&0xff]++
		}
		if count[src[0]>>shift&0xff] == n {
			continue
		}
		sum := 0
		for i, cnt := range count {
			count[i] = sum
			sum += cnt
		}
		for _, k := range src {
			d := k >> shift & 0xff
			dst[count[d]] = k
			count[d]++
		}
		src, dst = dst, src
	}
	if &src[0] != &keys[0] {
		copy(keys, src)
	}
}

// sortByCone orders a shard's fault ids by the campaign's cone ordering.
// Shard lists produced by partitionByLane are already in this order, so
// this only pays for externally supplied id lists (SimulateSubset). Order
// within a shard does not affect results — first detections are
// per-fault — so this is purely a locality sort.
func (c *Campaign) sortByCone(ids []ID) {
	_, rank := c.coneOrdering()
	sort.Slice(ids, func(i, j int) bool { return rank[ids[i]] < rank[ids[j]] })
}
