package fault

import (
	"slices"
	"sort"

	"gpustl/internal/circuits"
	"gpustl/internal/netlist"
)

// blockStim is the precomputed stimulus of one 64-pattern block of a
// lane's deduplicated stream: the packed input vectors Evaluator.Run
// consumes, the global stream index of each slot's earliest original
// occurrence, and the per-cone-class skip set. Blocks are built once per
// run and shared read-only across shards, hoisting the per-shard input
// clearing and re-packing out of the hot loop entirely.
type blockStim struct {
	inputs []uint64 // one packed word per primary input
	gidx   []int32  // first-occurrence global stream index per slot
	// skip is a bitset over cone-equivalence classes: bit c set when this
	// block's projection onto class c's detection support is identical to
	// an earlier block's. A fault of class c still undetected here was
	// undetected on that earlier block under the same effective stimulus,
	// so its detection mask is a known zero and the whole evaluation can
	// be skipped. nil on the first block and for classes never marked.
	skip []uint64
}

// laneStream is one lane's deduplicated, pre-packed pattern stream.
type laneStream struct {
	blocks []blockStim
	total  int // original pattern count, duplicates included
	unique int // patterns kept after dedup
}

// buildLaneStreams deduplicates and packs the per-lane streams for one
// simulation run. Dedup is per lane: a TimedPattern whose input vector
// (circuits.Pattern is a comparable value) already occurred earlier in
// the same lane's stream is dropped, and any detection it would have
// produced is attributed to that earlier occurrence — which is exactly
// where the reference engine first detects it, since identical stimulus
// yields identical detection masks. First-occurrence order is preserved,
// so first-detection indices and cc values are byte-identical.
//
// classUsed[lane] restricts the block-level skip analysis to cone
// classes that actually contain undetected faults in that lane; nil
// analyses every class.
func buildLaneStreams(nl *netlist.Netlist, ordered []TimedPattern, laneIdx [][]int32,
	classUsed [][]uint64) []laneStream {

	numIn := len(nl.Inputs)
	lanes := make([]laneStream, len(laneIdx))
	var (
		table []int32            // open-addressed dictionary: slot -> keys index
		keys  []circuits.Pattern // unique patterns, first-occurrence order
		pats  [64]circuits.Pattern
	)
	for lane, idxs := range laneIdx {
		ls := &lanes[lane]
		ls.total = len(idxs)
		// The dictionary is per lane. An exact-match open-addressed table
		// (power-of-two, ≤50% load) replaces map[Pattern]struct{}: the hash
		// only picks buckets, equality is the comparison of the packed
		// words, so dedup is exact either way — just without per-insert
		// hashing and bucket bookkeeping overhead.
		need := 2
		for need < 2*len(idxs) {
			need <<= 1
		}
		if len(table) < need {
			table = make([]int32, need)
		}
		tbl := table[:need]
		for i := range tbl {
			tbl[i] = -1
		}
		hmask := uint64(need - 1)
		if cap(keys) < len(idxs) {
			keys = make([]circuits.Pattern, 0, len(idxs))
		}
		keys = keys[:0]
		ls.blocks = make([]blockStim, 0, (len(idxs)+63)/64)
		var cur *blockStim
		for _, gi := range idxs {
			p := ordered[gi].Pat
			h := hashPattern(p) & hmask
			dup := false
			for {
				j := tbl[h]
				if j < 0 {
					tbl[h] = int32(len(keys))
					keys = append(keys, p)
					break
				}
				if keys[j] == p {
					dup = true
					break
				}
				h = (h + 1) & hmask
			}
			if dup {
				continue
			}
			if cur == nil {
				ls.blocks = append(ls.blocks, blockStim{
					inputs: make([]uint64, numIn),
					gidx:   make([]int32, 0, 64),
				})
				cur = &ls.blocks[len(ls.blocks)-1]
			}
			pats[len(cur.gidx)] = p
			cur.gidx = append(cur.gidx, gi)
			ls.unique++
			if len(cur.gidx) == 64 {
				circuits.PackPatterns(pats[:], cur.inputs)
				cur = nil
			}
		}
		if cur != nil {
			circuits.PackPatterns(pats[:len(cur.gidx)], cur.inputs)
		}
		var used []uint64
		if classUsed != nil {
			used = classUsed[lane]
		}
		buildClassSkips(nl.Cone(), numIn, ls, used)
	}
	return lanes
}

// hashPattern mixes a pattern's packed words into a table-bucket hash.
// Collisions only cost probes — matching is exact — so a fast mixer is
// all that is needed.
func hashPattern(p circuits.Pattern) uint64 {
	h := p.W[0]*0x9E3779B97F4A7C15 ^ p.W[1]*0xBF58476D1CE4E5B9
	h ^= h >> 32
	h *= 0xD6E8FEB86659FD93
	h ^= h >> 29
	return h
}

// buildClassSkips marks, for every block and cone class, whether the
// block's stimulus projected onto the class's detection support already
// occurred in an earlier block of the lane. Matching is hash-bucketed
// with exact word comparison, so a hash collision can never produce an
// unsound skip. Every block except the last holds a full 64 valid
// patterns, so an earlier matching block's (zero) detection mask covers
// all patterns the current block can present.
func buildClassSkips(ci *netlist.ConeInfo, numIn int, ls *laneStream, used []uint64) {
	if len(ls.blocks) < 2 {
		return
	}
	nc := ci.NumClasses()
	skipWords := (nc + 63) / 64
	seen := make(map[uint64][]int32) // projected-stimulus hash -> block indices
	for c := int32(0); c < int32(nc); c++ {
		if used != nil && used[c>>6]>>(uint(c)&63)&1 == 0 {
			continue // no undetected fault of this class in this lane
		}
		ins := ci.ClassInputs(c)
		if len(ins) >= numIn {
			// Full detection support: the projection is the whole block.
			// Lane dedup guarantees distinct blocks hold disjoint pattern
			// sets, so two full projections can never match — skipping the
			// analysis loses nothing.
			continue
		}
		if len(ins) == 0 {
			// Empty detection support: every block's projection matches the
			// first block's, no hashing needed.
			for b := 1; b < len(ls.blocks); b++ {
				blk := &ls.blocks[b]
				if blk.skip == nil {
					blk.skip = make([]uint64, skipWords)
				}
				blk.skip[c>>6] |= 1 << (uint(c) & 63)
			}
			continue
		}
		clear(seen)
		for b := range ls.blocks {
			blk := &ls.blocks[b]
			h := uint64(14695981039346656037)
			for _, idx := range ins {
				h ^= blk.inputs[idx]
				h *= 1099511628211
			}
			dup := false
			for _, pb := range seen[h] {
				prev := ls.blocks[pb].inputs
				same := true
				for _, idx := range ins {
					if blk.inputs[idx] != prev[idx] {
						same = false
						break
					}
				}
				if same {
					dup = true
					break
				}
			}
			if dup {
				if blk.skip == nil {
					blk.skip = make([]uint64, skipWords)
				}
				blk.skip[c>>6] |= 1 << (uint(c) & 63)
			} else {
				seen[h] = append(seen[h], int32(b))
			}
		}
	}
}

// laneClassUse returns, per lane, the set of cone classes (as a bitset)
// that contain at least one fault from the given per-lane fault lists —
// the only classes the block-skip analysis needs to consider.
func laneClassUse(ci *netlist.ConeInfo, faults []Fault, laneFaults [][][]ID) [][]uint64 {
	words := (ci.NumClasses() + 63) / 64
	out := make([][]uint64, 0)
	var lanes int
	for _, shard := range laneFaults {
		if len(shard) > lanes {
			lanes = len(shard)
		}
	}
	out = make([][]uint64, lanes)
	for i := range out {
		out[i] = make([]uint64, words)
	}
	for _, shard := range laneFaults {
		for lane, ids := range shard {
			for _, id := range ids {
				g := faults[id].Site.Gate
				if g < 0 || int(g) >= ci.NumGatesIndexed() {
					// A corrupt fault site panics inside the worker's
					// recover during simulation; the prep stage must not
					// crash the whole process on it.
					continue
				}
				c := ci.ClassOf(g)
				out[lane][c>>6] |= 1 << (uint(c) & 63)
			}
		}
	}
	return out
}

// coneOrdering returns the campaign's fault ids sorted by fan-out cone —
// (first reachable output, cone class, id) — and the inverse rank per
// id. Faults ordered this way run consecutively over overlapping gate
// sets (warm observability memos and stamps), and the class-skip test
// resolves whole runs of neighbours together. The ordering is a property
// of the netlist and the fault list alone, so it is computed once per
// campaign; when the three key components fit, they are packed into one
// uint64 per fault and sorted without a comparison callback.
func (c *Campaign) coneOrdering() ([]ID, []int32) {
	c.coneOnce.Do(func() {
		ci := c.Module.NL.Cone()
		n := len(c.faults)
		c.coneOrder = make([]ID, n)
		c.coneRank = make([]int32, n)
		key := func(id int) (fo1 uint32, cl uint32) {
			// A corrupt site (out-of-range gate) sorts first with a zero
			// key; it still panics inside a worker's recover when
			// simulated, exactly as the reference engine does.
			if g := c.faults[id].Site.Gate; g >= 0 && int(g) < ci.NumGatesIndexed() {
				return uint32(ci.FirstOut(g) + 1), uint32(ci.ClassOf(g))
			}
			return 0, 0
		}
		if len(c.Module.NL.Outputs) < 1<<15 && ci.NumClasses() < 1<<16 && n < 1<<31 {
			keys := make([]uint64, n)
			for id := range c.faults {
				fo1, cl := key(id)
				keys[id] = uint64(fo1)<<48 | uint64(cl)<<32 | uint64(uint32(id))
			}
			slices.Sort(keys)
			for i, k := range keys {
				c.coneOrder[i] = ID(uint32(k))
			}
		} else {
			for id := range c.coneOrder {
				c.coneOrder[id] = ID(id)
			}
			sort.Slice(c.coneOrder, func(i, j int) bool {
				a, b := c.coneOrder[i], c.coneOrder[j]
				af, ac := key(int(a))
				bf, bc := key(int(b))
				if af != bf {
					return af < bf
				}
				if ac != bc {
					return ac < bc
				}
				return a < b
			})
		}
		for i, id := range c.coneOrder {
			c.coneRank[id] = int32(i)
		}
	})
	return c.coneOrder, c.coneRank
}

// sortByCone orders a shard's fault ids by the campaign's cone ordering.
// Shard lists produced by partitionByLane are already in this order, so
// this only pays for externally supplied id lists (SimulateSubset). Order
// within a shard does not affect results — first detections are
// per-fault — so this is purely a locality sort.
func (c *Campaign) sortByCone(ids []ID) {
	_, rank := c.coneOrdering()
	sort.Slice(ids, func(i, j int) bool { return rank[ids[i]] < rank[ids[j]] })
}
