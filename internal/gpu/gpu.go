// Package gpu implements a functional, cycle-accounted simulator of a
// FlexGripPlus-like GPU Streaming Multiprocessor (SM).
//
// The model follows the organization of FlexGripPlus (an open-source GPU
// compatible with the NVIDIA G80 architecture): a single SM executing one
// warp instruction at a time through five stages (fetch, decode, read,
// execute, write), with a configurable number of SP lanes (8, 16 or 32),
// two SFU lanes, a SIMT divergence stack, a general-purpose register file,
// and global / shared / constant memories.
//
// The simulator is *functional* — instruction semantics are computed in Go —
// but every stage advances a clock-cycle counter using a calibrated timing
// model, and a Monitor receives per-cycle events (fetched words, decoded
// instructions, per-lane operand tuples). Those events are exactly the
// tracing information the compaction method of the paper extracts from its
// RTL and gate-level logic simulations.
package gpu

import (
	"context"
	"errors"
	"fmt"
	"math"

	"gpustl/internal/isa"
)

// WarpSize is the number of threads in a warp, as in the G80 architecture.
const WarpSize = 32

// Space identifies a memory space for monitor events.
type Space uint8

// Memory spaces.
const (
	SpaceGlobal Space = iota
	SpaceShared
	SpaceConstant
)

// String returns the space name.
func (s Space) String() string {
	switch s {
	case SpaceGlobal:
		return "global"
	case SpaceShared:
		return "shared"
	case SpaceConstant:
		return "constant"
	}
	return fmt.Sprintf("Space(%d)", uint8(s))
}

// Timing holds the per-stage clock-cycle costs of the SM pipeline. The SM
// processes one warp instruction at a time (as FlexGripPlus does), so an
// instruction's duration is the sum of its stage costs; execute-stage cost
// is per sub-warp pass (WarpSize/NumSPs passes for SP-class work,
// WarpSize/NumSFUs for SFU work).
type Timing struct {
	Fetch  int // fetch stage cycles
	Decode int // decode stage cycles
	Read   int // operand read cycles
	Write  int // write-back cycles

	ALUPass int // integer SP pass cycles
	FPUPass int // floating-point SP pass cycles
	SFUPass int // SFU pass cycles
	MemPass int // memory pass cycles (latency to the memory subsystem)

	CtrlExec int // execute cycles of control instructions (whole warp)
}

// DefaultTiming is calibrated so that, with 8 SP lanes and one 32-thread
// warp, an ALU instruction costs ~65 cc, a memory instruction ~97 cc and an
// SFU instruction ~69 cc — matching the cc-per-instruction ratios implied by
// Table I of the paper.
var DefaultTiming = Timing{
	Fetch:  4,
	Decode: 4,
	Read:   8,
	Write:  5,

	ALUPass:  11,
	FPUPass:  11,
	SFUPass:  3,
	MemPass:  19,
	CtrlExec: 24,
}

// Config describes the simulated GPU.
type Config struct {
	NumSMs  int // streaming multiprocessors (0 = 1); blocks round-robin
	NumSPs  int // SP lanes per SM: 8, 16 or 32 (FlexGripPlus options)
	NumSFUs int // SFU lanes per SM (FlexGripPlus has 2)

	GlobalWords   int // global memory size in 32-bit words
	SharedWords   int // shared memory words per block
	ConstantWords int // constant memory words

	Timing Timing

	// MaxCycles aborts runaway kernels (0 = default limit).
	MaxCycles uint64
	// StackDepth caps the SIMT divergence stack (FlexGripPlus stores it in
	// a dedicated memory). 0 = default (32).
	StackDepth int
}

// DefaultConfig returns the configuration used throughout the paper's
// experiments: one SM with 8 SP cores and 2 SFUs.
func DefaultConfig() Config {
	return Config{
		NumSPs:        8,
		NumSFUs:       2,
		GlobalWords:   1 << 20, // 4 MiB
		SharedWords:   1 << 12, // 16 KiB
		ConstantWords: 1 << 14, // 64 KiB
		Timing:        DefaultTiming,
	}
}

func (c *Config) validate() error {
	if c.NumSMs < 0 {
		return errors.New("gpu: NumSMs must be non-negative")
	}
	switch c.NumSPs {
	case 8, 16, 32:
	default:
		return fmt.Errorf("gpu: NumSPs must be 8, 16 or 32; got %d", c.NumSPs)
	}
	if c.NumSFUs <= 0 || WarpSize%c.NumSFUs != 0 {
		return fmt.Errorf("gpu: NumSFUs must divide %d; got %d", WarpSize, c.NumSFUs)
	}
	if c.GlobalWords <= 0 || c.SharedWords <= 0 || c.ConstantWords <= 0 {
		return errors.New("gpu: memory sizes must be positive")
	}
	return nil
}

// Kernel is a parallel program plus its launch configuration, mirroring a
// CUDA kernel launched on FlexGripPlus.
type Kernel struct {
	Prog            []isa.Instruction
	Blocks          int // grid size in blocks (executed sequentially on 1 SM)
	ThreadsPerBlock int // must be a multiple of WarpSize

	// GlobalInit seeds global memory: word index -> value.
	GlobalBase uint32   // word-aligned byte address of the data segment
	GlobalData []uint32 // initial contents at GlobalBase
	// ConstantData seeds constant memory from word 0.
	ConstantData []uint32
}

// Monitor observes the execution. Implementations must not mutate the
// simulator. All callbacks carry the current clock cycle. A nil Monitor
// disables tracing.
type Monitor interface {
	// Fetch fires once per warp instruction with the raw 64-bit word — the
	// input pattern seen by the Decoder Unit.
	Fetch(cc uint64, warp, pc int, word isa.Word)
	// Decode fires after the decode stage with the decoded instruction.
	Decode(cc uint64, warp, pc int, in isa.Instruction)
	// ALUOp fires once per active thread of an ALU/FPU-class instruction,
	// with the SP lane it executes on and its operand tuple.
	ALUOp(cc uint64, warp, pc, lane, thread int, op isa.Opcode, a, b, c uint32)
	// SFUOp fires once per active thread of an SFU-class instruction.
	SFUOp(cc uint64, warp, pc, lane, thread int, op isa.Opcode, a uint32)
	// MemOp fires once per active thread of a memory instruction.
	MemOp(cc uint64, warp, pc, thread int, op isa.Opcode, space Space, addr uint32)
	// Store fires for every architecturally visible write (GST/SST) — the
	// observable points of the PTP.
	Store(cc uint64, warp, pc, thread int, space Space, addr, value uint32)
	// Retire fires when the instruction completes write-back; ccEnd is the
	// last cycle the instruction occupies.
	Retire(ccStart, ccEnd uint64, warp, pc int)
}

// NopMonitor is a Monitor with empty callbacks, for embedding.
type NopMonitor struct{}

func (NopMonitor) Fetch(uint64, int, int, isa.Word)                                     {}
func (NopMonitor) Decode(uint64, int, int, isa.Instruction)                             {}
func (NopMonitor) ALUOp(uint64, int, int, int, int, isa.Opcode, uint32, uint32, uint32) {}
func (NopMonitor) SFUOp(uint64, int, int, int, int, isa.Opcode, uint32)                 {}
func (NopMonitor) MemOp(uint64, int, int, int, isa.Opcode, Space, uint32)               {}
func (NopMonitor) Store(uint64, int, int, int, Space, uint32, uint32)                   {}
func (NopMonitor) Retire(uint64, uint64, int, int)                                      {}

var _ Monitor = NopMonitor{}

// Result summarizes a kernel run.
type Result struct {
	Cycles       uint64 // total clock cycles
	Instructions uint64 // dynamic warp-instructions executed
	Global       []uint32
}

// stackEntry is one SIMT reconvergence-stack record (Fung-style: the top of
// stack holds the executing PC and active mask; RPC is the reconvergence
// point at which the entry pops).
type stackEntry struct {
	pc   int
	rpc  int
	mask uint32
}

const noRPC = math.MaxInt32

// warpState is the per-warp architectural state.
type warpState struct {
	id    int
	stack []stackEntry // SIMT stack; top = current pc/mask
	calls []int        // return addresses (uniform CAL/RET)

	pendingRPC int // set by SSY, consumed by the next divergent branch

	regs  [][isa.NumGPR]uint32 // [WarpSize] GPRs
	preds [][isa.NumPred]bool  // [WarpSize] predicates

	exited  uint32 // lanes permanently done
	atBar   bool   // parked at a barrier
	done    bool
	invalid uint32 // lanes beyond ThreadsPerBlock (none: tpb % WarpSize == 0)
}

func (w *warpState) top() *stackEntry { return &w.stack[len(w.stack)-1] }

// GPU is the simulator instance. Create with New, run kernels with Run.
type GPU struct {
	cfg Config
	mon Monitor

	global   []uint32
	shared   []uint32
	constant []uint32

	cc     uint64
	dyn    uint64
	warps  []*warpState
	nwarps int
	block  int
	tpb    int

	// Cooperative cancellation for the current RunCtx call: the scheduler
	// polls ctx once every ctxPollRounds scheduling rounds.
	ctx       context.Context
	ctxRounds uint
}

// New creates a simulator. A nil monitor disables tracing; with several
// SMs the monitor observes SM 0 only, as the paper's hardware monitor is
// incorporated in one SM of the GPU.
func New(cfg Config, mon Monitor) (*GPU, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.NumSMs == 0 {
		cfg.NumSMs = 1
	}
	if cfg.MaxCycles == 0 {
		cfg.MaxCycles = 1 << 34
	}
	if cfg.StackDepth == 0 {
		cfg.StackDepth = 32
	}
	if mon == nil {
		mon = NopMonitor{}
	}
	return &GPU{cfg: cfg, mon: mon}, nil
}

// ErrLimit reports that a kernel exceeded the configured cycle budget.
var ErrLimit = errors.New("gpu: cycle limit exceeded")

// ErrStack reports SIMT divergence-stack overflow.
var ErrStack = errors.New("gpu: divergence stack overflow")

// ctxPollRounds is how many scheduling rounds pass between context
// checks in RunCtx — frequent enough to cancel within microseconds,
// rare enough to stay invisible in profiles.
const ctxPollRounds = 256

// Run executes the kernel to completion and returns the run summary,
// including the final global memory image.
func (g *GPU) Run(k Kernel) (Result, error) {
	return g.RunCtx(context.Background(), k)
}

// RunCtx is Run with cooperative cancellation: the warp scheduler polls
// ctx periodically and aborts the kernel with ctx.Err() when it is
// canceled or times out. Determinism is unaffected — a run that completes
// returns exactly what Run would.
func (g *GPU) RunCtx(ctx context.Context, k Kernel) (Result, error) {
	g.ctx = ctx
	g.ctxRounds = 0
	defer func() { g.ctx = nil }()
	if len(k.Prog) == 0 {
		return Result{}, errors.New("gpu: empty program")
	}
	if k.ThreadsPerBlock <= 0 || k.ThreadsPerBlock%WarpSize != 0 {
		return Result{}, fmt.Errorf("gpu: ThreadsPerBlock must be a positive multiple of %d", WarpSize)
	}
	if k.Blocks <= 0 {
		return Result{}, errors.New("gpu: Blocks must be positive")
	}

	g.global = make([]uint32, g.cfg.GlobalWords)
	g.constant = make([]uint32, g.cfg.ConstantWords)
	copy(g.constant, k.ConstantData)
	base := int(k.GlobalBase / 4)
	for i, v := range k.GlobalData {
		g.global[(base+i)%len(g.global)] = v
	}
	g.cc = 0
	g.dyn = 0
	g.tpb = k.ThreadsPerBlock

	// Blocks are distributed round-robin over the SMs by the general
	// controller; each SM keeps its own clock. The hardware monitor
	// observes SM 0 only, as in the paper's tracing setup.
	smCC := make([]uint64, g.cfg.NumSMs)
	userMon := g.mon
	maxCC := func() uint64 {
		m := smCC[0]
		for _, c := range smCC[1:] {
			if c > m {
				m = c
			}
		}
		return m
	}
	for b := 0; b < k.Blocks; b++ {
		sm := b % g.cfg.NumSMs
		g.block = b
		g.cc = smCC[sm]
		if sm == 0 {
			g.mon = userMon
		} else {
			g.mon = NopMonitor{}
		}
		err := g.runBlock(k)
		smCC[sm] = g.cc
		if err != nil {
			g.mon = userMon
			return Result{Cycles: maxCC(), Instructions: g.dyn, Global: g.global}, err
		}
	}
	g.mon = userMon
	return Result{Cycles: maxCC(), Instructions: g.dyn, Global: g.global}, nil
}

func (g *GPU) runBlock(k Kernel) error {
	g.shared = make([]uint32, g.cfg.SharedWords)
	g.nwarps = k.ThreadsPerBlock / WarpSize
	g.warps = make([]*warpState, g.nwarps)
	for w := range g.warps {
		ws := &warpState{
			id:         w,
			stack:      []stackEntry{{pc: 0, rpc: noRPC, mask: 0xffffffff}},
			pendingRPC: noRPC,
			regs:       make([][isa.NumGPR]uint32, WarpSize),
			preds:      make([][isa.NumPred]bool, WarpSize),
		}
		g.warps[w] = ws
	}

	// FlexGripPlus dispatches warps one at a time; we round-robin among
	// runnable warps, executing one full instruction per scheduling slot.
	for {
		if g.ctxRounds++; g.ctxRounds%ctxPollRounds == 0 {
			if err := g.ctx.Err(); err != nil {
				return fmt.Errorf("gpu: kernel aborted: %w", err)
			}
		}
		ran := false
		allAtBar := true
		anyLive := false
		for _, w := range g.warps {
			if w.done {
				continue
			}
			anyLive = true
			if w.atBar {
				continue
			}
			allAtBar = false
			if err := g.step(k, w); err != nil {
				return err
			}
			ran = true
			if g.cc > g.cfg.MaxCycles {
				return fmt.Errorf("%w (%d cc)", ErrLimit, g.cc)
			}
		}
		if !anyLive {
			return nil
		}
		if !ran {
			if allAtBar {
				// Release the barrier.
				for _, w := range g.warps {
					w.atBar = false
				}
				continue
			}
			return errors.New("gpu: scheduler deadlock")
		}
	}
}

// step executes one instruction of warp w.
func (g *GPU) step(k Kernel, w *warpState) error {
	// Reconvergence / empty-mask maintenance before fetch.
	for len(w.stack) > 0 {
		t := w.top()
		if t.mask&^w.exited == 0 {
			w.stack = w.stack[:len(w.stack)-1]
			continue
		}
		if t.pc == t.rpc {
			// Reconverge: drop this entry; the next one holds the merged mask.
			w.stack = w.stack[:len(w.stack)-1]
			continue
		}
		break
	}
	if len(w.stack) == 0 {
		w.done = true
		return nil
	}
	t := w.top()
	pc := t.pc
	active := t.mask &^ w.exited
	if pc < 0 || pc >= len(k.Prog) {
		// Falling off the program ends the warp (implicit EXIT).
		w.done = true
		return nil
	}

	in := k.Prog[pc]
	ccStart := g.cc
	tim := g.cfg.Timing

	// Fetch.
	g.mon.Fetch(g.cc, w.id, pc, isa.Encode(in))
	g.cc += uint64(tim.Fetch)

	// Decode.
	g.mon.Decode(g.cc, w.id, pc, in)
	g.cc += uint64(tim.Decode)

	// Guard predicate: mask off lanes where the guard fails.
	exec := active
	if in.Pg != isa.PredAlways {
		var m uint32
		for l := 0; l < WarpSize; l++ {
			if active&(1<<l) == 0 {
				continue
			}
			if w.preds[l][in.Pg] == in.PSense {
				m |= 1 << l
			}
		}
		exec = m
	}

	// Operand read stage.
	g.cc += uint64(tim.Read)

	var err error
	switch isa.ClassOf(in.Op) {
	case isa.ClassALU, isa.ClassFPU:
		g.execALU(w, pc, in, exec)
	case isa.ClassSFU:
		g.execSFU(w, pc, in, exec)
	case isa.ClassMem:
		g.execMem(w, pc, in, exec)
	case isa.ClassCtrl:
		err = g.execCtrl(w, pc, in, exec, active)
	}
	if err != nil {
		return err
	}

	// Write-back.
	g.cc += uint64(tim.Write)
	g.dyn++
	g.mon.Retire(ccStart, g.cc-1, w.id, pc)
	return nil
}

// advancePC moves the warp past a non-branch instruction.
func advancePC(w *warpState) { w.top().pc++ }

func (g *GPU) execALU(w *warpState, pc int, in isa.Instruction, exec uint32) {
	tim := g.cfg.Timing
	passLat := tim.ALUPass
	if isa.ClassOf(in.Op) == isa.ClassFPU {
		passLat = tim.FPUPass
	}
	passes := WarpSize / g.cfg.NumSPs
	for p := 0; p < passes; p++ {
		ccPass := g.cc
		for lane := 0; lane < g.cfg.NumSPs; lane++ {
			t := p*g.cfg.NumSPs + lane
			if exec&(1<<t) == 0 {
				continue
			}
			a, b, c := g.operands(w, t, in)
			g.mon.ALUOp(ccPass, w.id, pc, lane, t, in.Op, a, b, c)
			res, pr := evalALU(in, a, b, c, g.special(w, t))
			if isa.WritesRd(in.Op) {
				w.regs[t][in.Rd] = res
			}
			if isa.SetsPred(in.Op) {
				w.preds[t][in.Pd] = pr
			}
		}
		g.cc += uint64(passLat)
	}
	advancePC(w)
}

func (g *GPU) execSFU(w *warpState, pc int, in isa.Instruction, exec uint32) {
	passes := WarpSize / g.cfg.NumSFUs
	for p := 0; p < passes; p++ {
		ccPass := g.cc
		for lane := 0; lane < g.cfg.NumSFUs; lane++ {
			t := p*g.cfg.NumSFUs + lane
			if exec&(1<<t) == 0 {
				continue
			}
			a := w.regs[t][in.Ra]
			g.mon.SFUOp(ccPass, w.id, pc, lane, t, in.Op, a)
			w.regs[t][in.Rd] = evalSFU(in.Op, a)
		}
		g.cc += uint64(g.cfg.Timing.SFUPass)
	}
	advancePC(w)
}

func (g *GPU) execMem(w *warpState, pc int, in isa.Instruction, exec uint32) {
	passes := WarpSize / g.cfg.NumSPs
	for p := 0; p < passes; p++ {
		ccPass := g.cc
		for lane := 0; lane < g.cfg.NumSPs; lane++ {
			t := p*g.cfg.NumSPs + lane
			if exec&(1<<t) == 0 {
				continue
			}
			addr := w.regs[t][in.Ra] + uint32(in.Imm)
			switch in.Op {
			case isa.OpGLD:
				g.mon.MemOp(ccPass, w.id, pc, t, in.Op, SpaceGlobal, addr)
				w.regs[t][in.Rd] = g.global[int(addr/4)%len(g.global)]
			case isa.OpGST:
				v := w.regs[t][in.Rb]
				g.mon.MemOp(ccPass, w.id, pc, t, in.Op, SpaceGlobal, addr)
				g.global[int(addr/4)%len(g.global)] = v
				g.mon.Store(ccPass, w.id, pc, t, SpaceGlobal, addr, v)
			case isa.OpSLD:
				g.mon.MemOp(ccPass, w.id, pc, t, in.Op, SpaceShared, addr)
				w.regs[t][in.Rd] = g.shared[int(addr/4)%len(g.shared)]
			case isa.OpSST:
				v := w.regs[t][in.Rb]
				g.mon.MemOp(ccPass, w.id, pc, t, in.Op, SpaceShared, addr)
				g.shared[int(addr/4)%len(g.shared)] = v
				g.mon.Store(ccPass, w.id, pc, t, SpaceShared, addr, v)
			case isa.OpLDC:
				g.mon.MemOp(ccPass, w.id, pc, t, in.Op, SpaceConstant, addr)
				w.regs[t][in.Rd] = g.constant[int(addr/4)%len(g.constant)]
			}
		}
		g.cc += uint64(g.cfg.Timing.MemPass)
	}
	advancePC(w)
}

func (g *GPU) execCtrl(w *warpState, pc int, in isa.Instruction, exec, active uint32) error {
	g.cc += uint64(g.cfg.Timing.CtrlExec)
	t := w.top()
	switch in.Op {
	case isa.OpNOP:
		t.pc++

	case isa.OpSSY:
		w.pendingRPC = pc + 1 + int(in.Imm)
		t.pc++

	case isa.OpBRA:
		target := pc + 1 + int(in.Imm)
		taken := exec
		notTaken := active &^ exec
		switch {
		case taken == 0:
			t.pc++
		case notTaken == 0:
			t.pc = target
		default:
			// Divergence: the current entry becomes the reconvergence
			// record; both sides are pushed, taken side on top.
			rpc := w.pendingRPC
			if rpc == noRPC {
				rpc = pc + 1
			}
			w.pendingRPC = noRPC
			if len(w.stack)+2 > g.cfg.StackDepth {
				return fmt.Errorf("%w (warp %d, pc %d)", ErrStack, w.id, pc)
			}
			t.pc = rpc
			w.stack = append(w.stack,
				stackEntry{pc: pc + 1, rpc: rpc, mask: notTaken},
				stackEntry{pc: target, rpc: rpc, mask: taken},
			)
		}

	case isa.OpBAR:
		t.pc++
		w.atBar = true

	case isa.OpCAL:
		// Calls must be warp-uniform (all active lanes take them).
		w.calls = append(w.calls, pc+1)
		t.pc = pc + 1 + int(in.Imm)

	case isa.OpRET:
		if len(w.calls) == 0 {
			// RET outside a call ends the warp, as on real hardware where
			// the top-level return terminates the kernel thread.
			w.exited |= active
			t.mask = 0
			return nil
		}
		t.pc = w.calls[len(w.calls)-1]
		w.calls = w.calls[:len(w.calls)-1]

	case isa.OpEXIT:
		w.exited |= exec
		if notDone := active &^ exec; notDone != 0 {
			// Predicated EXIT: surviving lanes continue.
			t.pc++
		} else {
			t.mask &^= w.exited
		}
	}
	return nil
}

// operands fetches the (a, b, c) inputs of an ALU/FPU instruction for
// thread t: a = R[Ra] (or a special register for S2R), b = R[Rb] or the
// immediate, c = R[Rd] for the multiply-add accumulators.
func (g *GPU) operands(w *warpState, t int, in isa.Instruction) (a, b, c uint32) {
	if isa.ReadsRa(in.Op) {
		a = w.regs[t][in.Ra]
	}
	switch {
	case isa.ReadsRb(in.Op):
		b = w.regs[t][in.Rb]
	case isa.HasImm(in.Op) || in.Op == isa.OpMVI:
		b = uint32(in.Imm)
	}
	if isa.ReadsRd(in.Op) {
		c = w.regs[t][in.Rd]
	}
	return a, b, c
}

// special resolves S2R special-register reads for thread t of warp w.
func (g *GPU) special(w *warpState, t int) func(int32) uint32 {
	return func(sr int32) uint32 {
		switch sr {
		case isa.SRTid:
			return uint32(w.id*WarpSize + t)
		case isa.SRNTid:
			return uint32(g.tpb)
		case isa.SRCTAid:
			return uint32(g.block)
		case isa.SRWarp:
			return uint32(w.id)
		case isa.SRLane:
			return uint32(t % WarpSize)
		}
		return 0
	}
}

// evalALU computes the result and predicate outcome of an ALU/FPU-class
// instruction given its operand values.
func evalALU(in isa.Instruction, a, b, c uint32, special func(int32) uint32) (res uint32, pred bool) {
	switch in.Op {
	case isa.OpMOV:
		res = a
	case isa.OpMVI:
		res = b
	case isa.OpS2R:
		res = special(in.Imm)
	case isa.OpIADD, isa.OpIADDI:
		res = a + b
	case isa.OpISUB, isa.OpISUBI:
		res = a - b
	case isa.OpIMUL, isa.OpIMULI:
		res = a * b
	case isa.OpIMAD:
		res = a*b + c
	case isa.OpIMIN:
		res = uint32(min(int32(a), int32(b)))
	case isa.OpIMAX:
		res = uint32(max(int32(a), int32(b)))
	case isa.OpINEG:
		res = -a
	case isa.OpAND, isa.OpANDI:
		res = a & b
	case isa.OpOR, isa.OpORI:
		res = a | b
	case isa.OpXOR, isa.OpXORI:
		res = a ^ b
	case isa.OpNOT:
		res = ^a
	case isa.OpSHL, isa.OpSHLI:
		res = a << (b & 31)
	case isa.OpSHR, isa.OpSHRI:
		res = a >> (b & 31)
	case isa.OpISET, isa.OpISETI:
		pred = intCond(in.Cond, int32(a), int32(b))
		if pred {
			res = 0xffffffff
		}
	case isa.OpFSET:
		pred = floatCond(in.Cond, f32(a), f32(b))
		if pred {
			res = 0xffffffff
		}
	case isa.OpFADD:
		res = u32(f32(a) + f32(b))
	case isa.OpFMUL:
		res = u32(f32(a) * f32(b))
	case isa.OpFFMA:
		res = u32(f32(a)*f32(b) + f32(c))
	case isa.OpFMIN:
		res = u32(float32(math.Min(float64(f32(a)), float64(f32(b)))))
	case isa.OpFMAX:
		res = u32(float32(math.Max(float64(f32(a)), float64(f32(b)))))
	case isa.OpF2I:
		res = uint32(int32(f32(a)))
	case isa.OpI2F:
		res = u32(float32(int32(a)))
	}
	return res, pred
}

// evalSFU computes an SFU transcendental.
func evalSFU(op isa.Opcode, a uint32) uint32 {
	x := float64(f32(a))
	var y float64
	switch op {
	case isa.OpRCP:
		y = 1 / x
	case isa.OpRSQ:
		y = 1 / math.Sqrt(x)
	case isa.OpSIN:
		y = math.Sin(x)
	case isa.OpCOS:
		y = math.Cos(x)
	case isa.OpLG2:
		y = math.Log2(x)
	case isa.OpEX2:
		y = math.Exp2(x)
	}
	return u32(float32(y))
}

func intCond(c isa.Cond, a, b int32) bool {
	switch c {
	case isa.CondEQ:
		return a == b
	case isa.CondNE:
		return a != b
	case isa.CondLT:
		return a < b
	case isa.CondLE:
		return a <= b
	case isa.CondGT:
		return a > b
	case isa.CondGE:
		return a >= b
	}
	return false
}

func floatCond(c isa.Cond, a, b float32) bool {
	switch c {
	case isa.CondEQ:
		return a == b
	case isa.CondNE:
		return a != b
	case isa.CondLT:
		return a < b
	case isa.CondLE:
		return a <= b
	case isa.CondGT:
		return a > b
	case isa.CondGE:
		return a >= b
	}
	return false
}

func f32(u uint32) float32 { return math.Float32frombits(u) }
func u32(f float32) uint32 { return math.Float32bits(f) }
