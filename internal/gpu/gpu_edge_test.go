package gpu

import (
	"errors"
	"testing"
)

func TestDivergenceStackOverflow(t *testing.T) {
	cfg := DefaultConfig()
	cfg.StackDepth = 4
	g, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Nested divergence deeper than the stack: each level diverges inside
	// the taken arm of the previous one, so entries accumulate (1 base +
	// 2 per live divergence).
	prog := mustProg(t, `
		S2R R0, SR_LANE
		ANDI R1, R0, 1
		ISETI R2, R1, 0, EQ, P0
		SSY end1
		@P0 BRA deep1
		BRA end1
	deep1:
		ANDI R1, R0, 2
		ISETI R2, R1, 0, EQ, P1
		SSY end2
		@P1 BRA deep2
		BRA end2
	deep2:
		ANDI R1, R0, 4
		ISETI R2, R1, 0, EQ, P0
		SSY end3
		@P0 BRA deep3
		BRA end3
	deep3:
		NOP
	end3:
		NOP
	end2:
		NOP
	end1:
		EXIT
	`)
	_, err = g.Run(Kernel{Prog: prog, Blocks: 1, ThreadsPerBlock: 32})
	if err == nil {
		t.Fatal("deep divergence did not overflow a 4-entry stack")
	}
	if !errors.Is(err, ErrStack) {
		t.Fatalf("wrong error: %v", err)
	}
	// The default 32-entry stack handles the same program.
	g2, _ := New(DefaultConfig(), nil)
	if _, err := g2.Run(Kernel{Prog: prog, Blocks: 1, ThreadsPerBlock: 32}); err != nil {
		t.Fatalf("default stack failed: %v", err)
	}
}

func TestAllSpecialRegisters(t *testing.T) {
	res := run(t, `
		S2R  R0, SR_TID
		SHLI R1, R0, 2
		S2R  R2, SR_NTID
		S2R  R3, SR_CTAID
		S2R  R4, SR_WARP
		S2R  R5, SR_LANE
		IADD R6, R2, R3      ; ntid + ctaid
		SHLI R6, R6, 8
		IADD R6, R6, R4      ; + warp
		SHLI R6, R6, 8
		IADD R6, R6, R5      ; + lane
		GST  [R1+0], R6
		EXIT
	`, 64, nil)
	for tid := uint32(0); tid < 64; tid++ {
		want := ((64+0)<<8+(tid/32))<<8 + (tid % 32)
		if got := word(res, tid*4); got != want {
			t.Fatalf("thread %d packed specials = %#x, want %#x", tid, got, want)
		}
	}
}

func TestFMinFMaxF2IEdges(t *testing.T) {
	res := run(t, `
		MVI  R1, 5
		I2F  R2, R1          ; 5.0
		MVI  R3, -3
		I2F  R4, R3          ; -3.0
		FMIN R5, R2, R4      ; -3.0
		FMAX R6, R2, R4      ; 5.0
		F2I  R7, R5
		F2I  R8, R6
		MVI  R9, 0
		GST  [R9+0], R7
		GST  [R9+4], R8
		EXIT
	`, 32, nil)
	if int32(word(res, 0)) != -3 || word(res, 4) != 5 {
		t.Fatalf("fmin/fmax = %d, %d", int32(word(res, 0)), word(res, 4))
	}
}

func TestGuardSenseInverted(t *testing.T) {
	res := run(t, `
		S2R   R0, SR_TID
		SHLI  R1, R0, 2
		ISETI R9, R0, 16, LT, P0
		MVI   R2, 0
		@!P0 MVI R2, 7       ; only tid >= 16
		GST   [R1+0], R2
		EXIT
	`, 32, nil)
	for tid := uint32(0); tid < 32; tid++ {
		want := uint32(0)
		if tid >= 16 {
			want = 7
		}
		if got := word(res, tid*4); got != want {
			t.Fatalf("thread %d got %d, want %d", tid, got, want)
		}
	}
}

func TestNestedCalls(t *testing.T) {
	res := run(t, `
		S2R  R0, SR_TID
		SHLI R1, R0, 2
		MVI  R2, 1
		CAL  a
		GST  [R1+0], R2
		EXIT
	a:
		IADDI R2, R2, 10
		CAL  bfn
		IADDI R2, R2, 100
		RET
	bfn:
		IADDI R2, R2, 1000
		RET
	`, 32, nil)
	// 1 + 10 + 1000 + 100 = 1111.
	for tid := uint32(0); tid < 32; tid++ {
		if got := word(res, tid*4); got != 1111 {
			t.Fatalf("thread %d got %d, want 1111", tid, got)
		}
	}
}

func TestRETAtTopLevelEndsWarp(t *testing.T) {
	res := run(t, `
		S2R  R0, SR_TID
		SHLI R1, R0, 2
		MVI  R2, 3
		GST  [R1+0], R2
		RET                   ; top-level return == exit
		MVI  R2, 9            ; must not execute
		GST  [R1+0], R2
		EXIT
	`, 32, nil)
	for tid := uint32(0); tid < 32; tid++ {
		if got := word(res, tid*4); got != 3 {
			t.Fatalf("thread %d got %d, want 3", tid, got)
		}
	}
}

func TestFallOffProgramEnd(t *testing.T) {
	// A program without EXIT terminates when the PC runs past the end.
	res := run(t, `
		MVI R1, 8
		MVI R2, 0
		GST [R2+0], R1
	`, 32, nil)
	if word(res, 0) != 8 {
		t.Fatalf("got %d", word(res, 0))
	}
}

func TestUnalignedAddressesMasked(t *testing.T) {
	// Byte addresses are word-aligned by masking the low bits.
	res := run(t, `
		MVI R1, 42
		MVI R2, 6            ; unaligned: lands in word 1
		GST [R2+0], R1
		MVI R3, 4
		GLD R4, [R3+0]
		MVI R5, 0
		GST [R5+0], R4
		EXIT
	`, 32, nil)
	if word(res, 0) != 42 {
		t.Fatalf("unaligned store/load chain got %d", word(res, 0))
	}
}

func TestSFUWidthVariant(t *testing.T) {
	for _, sfus := range []int{1, 2, 4} {
		cfg := DefaultConfig()
		cfg.NumSFUs = sfus
		g, err := New(cfg, nil)
		if err != nil {
			t.Fatalf("NumSFUs=%d: %v", sfus, err)
		}
		res, err := g.Run(Kernel{Prog: mustProg(t, `
			MVI R1, 4
			I2F R2, R1
			RSQ R3, R2
			F2I R4, R3        ; 0 (0.5 truncates)
			MVI R5, 0
			GST [R5+0], R3
			EXIT`), Blocks: 1, ThreadsPerBlock: 32})
		if err != nil {
			t.Fatal(err)
		}
		if res.Global[0] != 0x3f000000 { // 0.5f
			t.Fatalf("NumSFUs=%d: rsq(4) = %#x", sfus, res.Global[0])
		}
	}
}

func TestMemOpClassesTiming(t *testing.T) {
	// Memory instructions must cost more than ALU ones under the default
	// timing (the MEM PTP's higher cc/instr in Table I).
	alu := run(t, repeatInstr("IADD R2, R1, R1", 100), 32, nil)
	mem := run(t, repeatInstr("GST [R1+0], R2", 100), 32, nil)
	if mem.Cycles <= alu.Cycles {
		t.Fatalf("mem %d cc <= alu %d cc", mem.Cycles, alu.Cycles)
	}
}

func repeatInstr(in string, n int) string {
	src := "MVI R1, 64\n"
	for i := 0; i < n; i++ {
		src += in + "\n"
	}
	return src + "EXIT\n"
}
