package gpu

import (
	"math"
	"testing"

	"gpustl/internal/asm"
	"gpustl/internal/isa"
)

func mustProg(t *testing.T, src string) []isa.Instruction {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return p
}

func run(t *testing.T, src string, tpb int, mon Monitor) Result {
	t.Helper()
	g, err := New(DefaultConfig(), mon)
	if err != nil {
		t.Fatal(err)
	}
	res, err := g.Run(Kernel{Prog: mustProg(t, src), Blocks: 1, ThreadsPerBlock: tpb})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res
}

// word reads global memory word i from the result.
func word(res Result, byteAddr uint32) uint32 { return res.Global[byteAddr/4] }

func TestStraightLineArithmetic(t *testing.T) {
	res := run(t, `
		MVI  R1, 21
		MVI  R2, 2
		IMUL R3, R1, R2
		MVI  R4, 0
		GST  [R4+0], R3
		EXIT
	`, 32, nil)
	if got := word(res, 0); got != 42 {
		t.Fatalf("result = %d, want 42", got)
	}
	if res.Cycles == 0 || res.Instructions != 6 {
		t.Fatalf("cycles=%d instrs=%d", res.Cycles, res.Instructions)
	}
}

func TestPerThreadTID(t *testing.T) {
	res := run(t, `
		S2R   R0, SR_TID
		SHLI  R1, R0, 2      ; byte address = tid*4
		IMULI R2, R0, 3
		GST   [R1+0], R2
		EXIT
	`, 32, nil)
	for tid := uint32(0); tid < 32; tid++ {
		if got := word(res, tid*4); got != tid*3 {
			t.Fatalf("thread %d stored %d, want %d", tid, got, tid*3)
		}
	}
}

func TestMultiWarp(t *testing.T) {
	res := run(t, `
		S2R  R0, SR_TID
		SHLI R1, R0, 2
		S2R  R2, SR_WARP
		GST  [R1+0], R2
		EXIT
	`, 128, nil)
	for tid := uint32(0); tid < 128; tid++ {
		if got := word(res, tid*4); got != tid/32 {
			t.Fatalf("thread %d warp = %d, want %d", tid, got, tid/32)
		}
	}
}

func TestSharedMemory(t *testing.T) {
	res := run(t, `
		S2R  R0, SR_TID
		SHLI R1, R0, 2
		IADDI R2, R0, 100
		SST  [R1+0], R2      ; shared[tid] = tid+100
		MVI  R3, 124
		ISUB R3, R3, R1      ; reversed index
		SLD  R4, [R3+0]      ; shared[31-tid]
		GST  [R1+0], R4
		EXIT
	`, 32, nil)
	for tid := uint32(0); tid < 32; tid++ {
		want := (31 - tid) + 100
		if got := word(res, tid*4); got != want {
			t.Fatalf("thread %d got %d, want %d", tid, got, want)
		}
	}
}

func TestConstantMemory(t *testing.T) {
	g, _ := New(DefaultConfig(), nil)
	res, err := g.Run(Kernel{
		Prog: mustProg(t, `
			S2R  R0, SR_TID
			SHLI R1, R0, 2
			LDC  R2, [R1+0]
			GST  [R1+0], R2
			EXIT`),
		Blocks: 1, ThreadsPerBlock: 32,
		ConstantData: []uint32{7, 8, 9, 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []uint32{7, 8, 9, 10} {
		if got := word(res, uint32(i*4)); got != want {
			t.Fatalf("const[%d] = %d, want %d", i, got, want)
		}
	}
}

func TestGlobalDataInit(t *testing.T) {
	g, _ := New(DefaultConfig(), nil)
	res, err := g.Run(Kernel{
		Prog: mustProg(t, `
			S2R  R0, SR_TID
			SHLI R1, R0, 2
			GLD  R2, [R1+4096]
			IADDI R2, R2, 1
			GST  [R1+0], R2
			EXIT`),
		Blocks: 1, ThreadsPerBlock: 32,
		GlobalBase: 4096, GlobalData: []uint32{10, 20, 30},
	})
	if err != nil {
		t.Fatal(err)
	}
	if word(res, 0) != 11 || word(res, 4) != 21 || word(res, 8) != 31 {
		t.Fatalf("got %d %d %d", word(res, 0), word(res, 4), word(res, 8))
	}
}

func TestIfElseDivergence(t *testing.T) {
	// threads with tid < 16 take the else path (BRA when P0 true means
	// "skip then"), others run the then path; all must reconverge.
	res := run(t, `
		S2R   R0, SR_TID
		SHLI  R1, R0, 2
		ISETI R9, R0, 16, LT, P0
		SSY   endif
		@P0 BRA else_
		MVI   R2, 111        ; then: tid >= 16
		BRA   endif
	else_:
		MVI   R2, 222        ; else: tid < 16
	endif:
		IADDI R2, R2, 1      ; runs once per thread after reconvergence
		GST   [R1+0], R2
		EXIT
	`, 32, nil)
	for tid := uint32(0); tid < 32; tid++ {
		want := uint32(112)
		if tid < 16 {
			want = 223
		}
		if got := word(res, tid*4); got != want {
			t.Fatalf("thread %d got %d, want %d", tid, got, want)
		}
	}
}

func TestUniformLoop(t *testing.T) {
	res := run(t, `
		S2R   R0, SR_TID
		SHLI  R1, R0, 2
		MVI   R2, 0          ; acc
		MVI   R3, 0          ; i
	loop:
		IADD  R2, R2, R3
		IADDI R3, R3, 1
		ISETI R9, R3, 5, LT, P0
		@P0 BRA loop
		GST   [R1+0], R2     ; 0+1+2+3+4 = 10
		EXIT
	`, 32, nil)
	for tid := uint32(0); tid < 32; tid++ {
		if got := word(res, tid*4); got != 10 {
			t.Fatalf("thread %d sum = %d, want 10", tid, got)
		}
	}
}

func TestDivergentLoopTripCounts(t *testing.T) {
	// Each thread iterates tid%4+1 times; sum = trip count.
	res := run(t, `
		S2R   R0, SR_TID
		SHLI  R1, R0, 2
		ANDI  R5, R0, 3
		IADDI R5, R5, 1      ; trips = tid%4 + 1
		MVI   R2, 0
		MVI   R3, 0
		SSY   after
	loop:
		IADDI R2, R2, 1
		IADDI R3, R3, 1
		ISET  R9, R3, R5, LT, P0
		@P0 BRA loop
	after:
		GST   [R1+0], R2
		EXIT
	`, 32, nil)
	for tid := uint32(0); tid < 32; tid++ {
		want := tid%4 + 1
		if got := word(res, tid*4); got != want {
			t.Fatalf("thread %d count = %d, want %d", tid, got, want)
		}
	}
}

func TestNestedIf(t *testing.T) {
	res := run(t, `
		S2R   R0, SR_TID
		SHLI  R1, R0, 2
		MVI   R2, 0
		ISETI R9, R0, 16, LT, P0
		SSY   out
		@P0 BRA half
		BRA   out
	half:                     ; tid < 16
		ISETI R9, R0, 8, LT, P1
		SSY   out2
		@P1 BRA quarter
		BRA   out2
	quarter:                  ; tid < 8
		IADDI R2, R2, 100
	out2:
		IADDI R2, R2, 10
	out:
		IADDI R2, R2, 1
		GST   [R1+0], R2
		EXIT
	`, 32, nil)
	for tid := uint32(0); tid < 32; tid++ {
		var want uint32
		switch {
		case tid < 8:
			want = 111
		case tid < 16:
			want = 11
		default:
			want = 1
		}
		if got := word(res, tid*4); got != want {
			t.Fatalf("thread %d got %d, want %d", tid, got, want)
		}
	}
}

func TestCallReturn(t *testing.T) {
	res := run(t, `
		S2R   R0, SR_TID
		SHLI  R1, R0, 2
		MVI   R2, 5
		CAL   double
		CAL   double
		GST   [R1+0], R2      ; 5*4 = 20
		EXIT
	double:
		IADD  R2, R2, R2
		RET
	`, 32, nil)
	for tid := uint32(0); tid < 32; tid++ {
		if got := word(res, tid*4); got != 20 {
			t.Fatalf("thread %d got %d, want 20", tid, got)
		}
	}
}

func TestBarrier(t *testing.T) {
	// Warp 0 writes shared, all warps barrier, warp 1 reads warp 0's data.
	res := run(t, `
		S2R   R0, SR_TID
		SHLI  R1, R0, 2
		IADDI R2, R0, 1000
		SST   [R1+0], R2     ; shared[tid] = tid + 1000
		BAR
		MVI   R3, 255
		ISUB  R3, R3, R0     ; 255 - tid
		SHLI  R3, R3, 2
		SLD   R4, [R3+0]     ; shared[255-tid], written by the other warps
		GST   [R1+0], R4
		EXIT
	`, 256, nil)
	for tid := uint32(0); tid < 256; tid++ {
		want := (255 - tid) + 1000
		if got := word(res, tid*4); got != want {
			t.Fatalf("thread %d got %d, want %d", tid, got, want)
		}
	}
}

func TestPredicatedExecution(t *testing.T) {
	res := run(t, `
		S2R   R0, SR_TID
		SHLI  R1, R0, 2
		MVI   R2, 7
		ISETI R9, R0, 1, EQ, P1
		@P1  MVI R2, 99       ; only thread 1
		@!P1 IADDI R2, R2, 1  ; everyone else
		GST   [R1+0], R2
		EXIT
	`, 32, nil)
	for tid := uint32(0); tid < 32; tid++ {
		want := uint32(8)
		if tid == 1 {
			want = 99
		}
		if got := word(res, tid*4); got != want {
			t.Fatalf("thread %d got %d, want %d", tid, got, want)
		}
	}
}

func TestFloatOps(t *testing.T) {
	res := run(t, `
		MVI  R1, 3
		I2F  R2, R1          ; 3.0
		MVI  R3, 4
		I2F  R4, R3          ; 4.0
		FMUL R5, R2, R4      ; 12.0
		FADD R5, R5, R2      ; 15.0
		FFMA R5, R2, R4      ; 3*4 + 15 = 27.0
		F2I  R6, R5
		MVI  R7, 0
		GST  [R7+0], R6
		EXIT
	`, 32, nil)
	if got := word(res, 0); got != 27 {
		t.Fatalf("float chain = %d, want 27", got)
	}
}

func TestSFUOps(t *testing.T) {
	res := run(t, `
		MVI  R1, 4
		I2F  R2, R1
		RSQ  R3, R2          ; 1/2
		RCP  R4, R3          ; 2
		F2I  R5, R4
		MVI  R7, 0
		GST  [R7+0], R5
		EXIT
	`, 32, nil)
	if got := word(res, 0); got != 2 {
		t.Fatalf("rcp(rsq(4)) = %d, want 2", got)
	}
}

func TestSFUAccuracy(t *testing.T) {
	cases := []struct {
		op   isa.Opcode
		x, y float64
	}{
		{isa.OpSIN, 1.0, math.Sin(1.0)},
		{isa.OpCOS, 0.5, math.Cos(0.5)},
		{isa.OpLG2, 8.0, 3.0},
		{isa.OpEX2, 3.0, 8.0},
	}
	for _, c := range cases {
		got := math.Float32frombits(evalSFU(c.op, math.Float32bits(float32(c.x))))
		if math.Abs(float64(got)-c.y) > 1e-5 {
			t.Errorf("%v(%g) = %g, want %g", c.op, c.x, got, c.y)
		}
	}
}

func TestExitMasksThreads(t *testing.T) {
	res := run(t, `
		S2R   R0, SR_TID
		SHLI  R1, R0, 2
		MVI   R2, 1
		GST   [R1+0], R2
		ISETI R9, R0, 16, LT, P0
		@P0 EXIT              ; lower half leaves early
		MVI   R2, 2
		GST   [R1+0], R2
		EXIT
	`, 32, nil)
	for tid := uint32(0); tid < 32; tid++ {
		want := uint32(1)
		if tid >= 16 {
			want = 2
		}
		if got := word(res, tid*4); got != want {
			t.Fatalf("thread %d got %d, want %d", tid, got, want)
		}
	}
}

func TestInvalidKernels(t *testing.T) {
	g, _ := New(DefaultConfig(), nil)
	if _, err := g.Run(Kernel{Prog: nil, Blocks: 1, ThreadsPerBlock: 32}); err == nil {
		t.Error("empty program accepted")
	}
	p := mustProg(t, "EXIT")
	if _, err := g.Run(Kernel{Prog: p, Blocks: 1, ThreadsPerBlock: 33}); err == nil {
		t.Error("non-multiple ThreadsPerBlock accepted")
	}
	if _, err := g.Run(Kernel{Prog: p, Blocks: 0, ThreadsPerBlock: 32}); err == nil {
		t.Error("zero blocks accepted")
	}
}

func TestInvalidConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumSPs = 7
	if _, err := New(cfg, nil); err == nil {
		t.Error("NumSPs=7 accepted")
	}
	cfg = DefaultConfig()
	cfg.NumSFUs = 3
	if _, err := New(cfg, nil); err == nil {
		t.Error("NumSFUs=3 accepted")
	}
}

func TestCycleLimit(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxCycles = 500
	g, _ := New(cfg, nil)
	_, err := g.Run(Kernel{Prog: mustProg(t, "loop: BRA loop"), Blocks: 1, ThreadsPerBlock: 32})
	if err == nil {
		t.Fatal("infinite loop not caught")
	}
}

func TestSPWidthVariants(t *testing.T) {
	// FlexGripPlus supports 8, 16 or 32 SPs; results must agree, cycles
	// must shrink with more lanes.
	var cycles []uint64
	for _, sps := range []int{8, 16, 32} {
		cfg := DefaultConfig()
		cfg.NumSPs = sps
		g, err := New(cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		res, err := g.Run(Kernel{Prog: mustProg(t, `
			S2R   R0, SR_TID
			SHLI  R1, R0, 2
			IMULI R2, R0, 7
			GST   [R1+0], R2
			EXIT`), Blocks: 1, ThreadsPerBlock: 32})
		if err != nil {
			t.Fatal(err)
		}
		for tid := uint32(0); tid < 32; tid++ {
			if got := res.Global[tid]; got != tid*7 {
				t.Fatalf("%d SPs: thread %d got %d", sps, tid, got)
			}
		}
		cycles = append(cycles, res.Cycles)
	}
	if !(cycles[0] > cycles[1] && cycles[1] > cycles[2]) {
		t.Errorf("cycles should decrease with SP count: %v", cycles)
	}
}

// traceCollector checks monitor event plumbing.
type traceCollector struct {
	NopMonitor
	fetches  int
	decodes  int
	aluOps   int
	sfuOps   int
	memOps   int
	stores   int
	retires  int
	lastCC   uint64
	ccSorted bool
}

func (c *traceCollector) Fetch(cc uint64, warp, pc int, w isa.Word) {
	c.fetches++
	c.lastCC = cc
}
func (c *traceCollector) Decode(cc uint64, warp, pc int, in isa.Instruction) { c.decodes++ }
func (c *traceCollector) ALUOp(cc uint64, warp, pc, lane, thread int, op isa.Opcode, a, b, cop uint32) {
	c.aluOps++
}
func (c *traceCollector) SFUOp(cc uint64, warp, pc, lane, thread int, op isa.Opcode, a uint32) {
	c.sfuOps++
}
func (c *traceCollector) MemOp(cc uint64, warp, pc, thread int, op isa.Opcode, sp Space, addr uint32) {
	c.memOps++
}
func (c *traceCollector) Store(cc uint64, warp, pc, thread int, sp Space, addr, v uint32) {
	c.stores++
}
func (c *traceCollector) Retire(ccStart, ccEnd uint64, warp, pc int) { c.retires++ }

func TestMonitorEvents(t *testing.T) {
	mon := &traceCollector{}
	run(t, `
		S2R   R0, SR_TID      ; ALU x32
		SHLI  R1, R0, 2       ; ALU x32
		SIN   R2, R1          ; SFU x32
		GST   [R1+0], R2      ; MEM x32 + store x32
		EXIT
	`, 32, mon)
	if mon.fetches != 5 || mon.decodes != 5 || mon.retires != 5 {
		t.Errorf("fetch/decode/retire = %d/%d/%d, want 5 each", mon.fetches, mon.decodes, mon.retires)
	}
	if mon.aluOps != 64 {
		t.Errorf("aluOps = %d, want 64", mon.aluOps)
	}
	if mon.sfuOps != 32 {
		t.Errorf("sfuOps = %d, want 32", mon.sfuOps)
	}
	if mon.memOps != 32 || mon.stores != 32 {
		t.Errorf("memOps/stores = %d/%d, want 32/32", mon.memOps, mon.stores)
	}
}

func TestALUCostCalibration(t *testing.T) {
	// One warp, ALU-heavy program: the paper's Table I implies roughly
	// 60-75 cc per instruction per warp for such PTPs.
	const n = 200
	src := "MVI R1, 1\n"
	for i := 0; i < n-2; i++ {
		src += "IADD R2, R1, R1\n"
	}
	src += "EXIT\n"
	res := run(t, src, 32, nil)
	perInstr := float64(res.Cycles) / float64(res.Instructions)
	if perInstr < 50 || perInstr > 90 {
		t.Errorf("ALU cc/instr = %.1f, want within [50, 90]", perInstr)
	}
}

func TestMultipleBlocks(t *testing.T) {
	g, _ := New(DefaultConfig(), nil)
	res, err := g.Run(Kernel{
		Prog: mustProg(t, `
			S2R   R0, SR_TID
			S2R   R2, SR_CTAID
			IMULI R3, R2, 128     ; block offset in bytes (32 threads * 4)
			SHLI  R1, R0, 2
			IADD  R1, R1, R3
			GST   [R1+0], R2
			EXIT`),
		Blocks: 3, ThreadsPerBlock: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	for b := uint32(0); b < 3; b++ {
		for tid := uint32(0); tid < 32; tid++ {
			if got := res.Global[b*32+tid]; got != b {
				t.Fatalf("block %d thread %d got %d", b, tid, got)
			}
		}
	}
}
