package gpu

import "testing"

const multiSMProg = `
	S2R   R0, SR_TID
	S2R   R2, SR_CTAID
	IMULI R3, R2, 128
	SHLI  R1, R0, 2
	IADD  R1, R1, R3
	IMAD  R4, R2, R0
	IADDI R4, R4, 3
	GST   [R1+0], R4
	EXIT
`

func TestMultiSMSameResults(t *testing.T) {
	// The same grid must produce identical memory whatever the SM count.
	var ref []uint32
	for _, sms := range []int{1, 2, 4} {
		cfg := DefaultConfig()
		cfg.NumSMs = sms
		g, err := New(cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		res, err := g.Run(Kernel{Prog: mustProg(t, multiSMProg), Blocks: 8, ThreadsPerBlock: 32})
		if err != nil {
			t.Fatal(err)
		}
		out := res.Global[:8*32]
		if ref == nil {
			ref = append([]uint32(nil), out...)
			continue
		}
		for i := range ref {
			if out[i] != ref[i] {
				t.Fatalf("NumSMs=%d: word %d = %d, want %d", sms, i, out[i], ref[i])
			}
		}
	}
}

func TestMultiSMCyclesScale(t *testing.T) {
	// With B blocks over S SMs, the makespan is ~B/S of the 1-SM run.
	run := func(sms int) uint64 {
		cfg := DefaultConfig()
		cfg.NumSMs = sms
		g, _ := New(cfg, nil)
		res, err := g.Run(Kernel{Prog: mustProg(t, multiSMProg), Blocks: 8, ThreadsPerBlock: 32})
		if err != nil {
			t.Fatal(err)
		}
		return res.Cycles
	}
	c1, c4 := run(1), run(4)
	if c4 >= c1 {
		t.Fatalf("4 SMs not faster: %d vs %d", c4, c1)
	}
	ratio := float64(c1) / float64(c4)
	if ratio < 3.5 || ratio > 4.5 {
		t.Errorf("speedup = %.2f, want ~4", ratio)
	}
}

func TestMultiSMMonitorSeesSM0Only(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumSMs = 4
	mon := &traceCollector{}
	g, _ := New(cfg, mon)
	res, err := g.Run(Kernel{Prog: mustProg(t, multiSMProg), Blocks: 8, ThreadsPerBlock: 32})
	if err != nil {
		t.Fatal(err)
	}
	// 8 blocks over 4 SMs: SM 0 runs blocks 0 and 4 -> 2 x 9 fetches.
	if mon.fetches != 2*9 {
		t.Errorf("monitor saw %d fetches, want %d (SM 0's two blocks)", mon.fetches, 18)
	}
	if res.Instructions != 8*9 {
		t.Errorf("dynamic instructions = %d, want %d", res.Instructions, 72)
	}
}

func TestMultiSMConfigValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumSMs = -1
	if _, err := New(cfg, nil); err == nil {
		t.Fatal("negative NumSMs accepted")
	}
}
