package gpu

import "testing"

// TestExactCycleAccounting pins the timing model: the cycle count of a
// known program must equal the sum of the per-stage formula, so timing
// regressions (which would silently shift every Table I/II/III duration)
// are caught exactly.
func TestExactCycleAccounting(t *testing.T) {
	tim := DefaultTiming
	fixed := uint64(tim.Fetch + tim.Decode + tim.Read + tim.Write)

	aluCC := fixed + uint64((WarpSize/8)*tim.ALUPass)
	memCC := fixed + uint64((WarpSize/8)*tim.MemPass)
	sfuCC := fixed + uint64((WarpSize/2)*tim.SFUPass)
	ctlCC := fixed + uint64(tim.CtrlExec)

	cases := []struct {
		name string
		src  string
		want uint64
	}{
		{"alu", "IADD R1, R2, R3\nEXIT", aluCC + ctlCC},
		{"mem", "GST [R1+0], R2\nEXIT", memCC + ctlCC},
		{"sfu", "SIN R1, R2\nEXIT", sfuCC + ctlCC},
		{"mix", "MVI R1, 5\nGLD R2, [R1+0]\nRCP R3, R2\nEXIT",
			aluCC + memCC + sfuCC + ctlCC}, // MVI is ALU-class
	}
	for _, c := range cases {
		res := run(t, c.src, 32, nil)
		if res.Cycles != c.want {
			t.Errorf("%s: %d cc, want %d", c.name, res.Cycles, c.want)
		}
	}

	// Two warps double everything (the SM runs one warp at a time).
	res := run(t, "IADD R1, R2, R3\nEXIT", 64, nil)
	if res.Cycles != 2*(aluCC+ctlCC) {
		t.Errorf("2 warps: %d cc, want %d", res.Cycles, 2*(aluCC+ctlCC))
	}

	// Wider SM: fewer passes.
	cfg := DefaultConfig()
	cfg.NumSPs = 32
	g, _ := New(cfg, nil)
	r32, err := g.Run(Kernel{Prog: mustProg(t, "IADD R1, R2, R3\nEXIT"),
		Blocks: 1, ThreadsPerBlock: 32})
	if err != nil {
		t.Fatal(err)
	}
	want32 := (fixed + uint64(tim.ALUPass)) + ctlCC
	if r32.Cycles != want32 {
		t.Errorf("32 SPs: %d cc, want %d", r32.Cycles, want32)
	}
}

// TestTimingConfigurable checks a custom timing flows through.
func TestTimingConfigurable(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Timing = Timing{Fetch: 1, Decode: 1, Read: 1, Write: 1,
		ALUPass: 1, FPUPass: 1, SFUPass: 1, MemPass: 1, CtrlExec: 1}
	g, _ := New(cfg, nil)
	res, err := g.Run(Kernel{Prog: mustProg(t, "IADD R1, R2, R3\nEXIT"),
		Blocks: 1, ThreadsPerBlock: 32})
	if err != nil {
		t.Fatal(err)
	}
	// 4 (fixed) + 4 passes + 4 (fixed) + 1 ctrl = 13.
	if res.Cycles != 13 {
		t.Errorf("unit timing: %d cc, want 13", res.Cycles)
	}
}
