package isa

import "testing"

// FuzzDecode checks that arbitrary 64-bit words never panic the decoder
// and that successfully decoded words re-encode to the same bits.
func FuzzDecode(f *testing.F) {
	f.Add(uint64(0))
	f.Add(^uint64(0))
	f.Add(uint64(Encode(Instruction{Op: OpIADD, Rd: 1, Ra: 2, Rb: 3, Pg: PredAlways})))
	f.Add(uint64(Encode(Instruction{Op: OpBRA, Imm: -5, Pg: 1, PSense: true})))
	f.Fuzz(func(t *testing.T, w uint64) {
		in, err := Decode(Word(w))
		if err != nil {
			return
		}
		if got := Encode(in); uint64(got) != w {
			t.Fatalf("re-encode of %#x gives %#x", w, uint64(got))
		}
		// Derived properties must be callable on any decoded instruction.
		_ = ClassOf(in.Op)
		_ = HasImm(in.Op)
		_ = in.Op.String()
	})
}
