package isa

import "testing"

// TestEncodingStability pins the binary encoding of representative
// instructions. Serialized artifacts (VCDE pattern files, DU netlist
// inputs, saved traces) consume raw words; any change to these values is
// a breaking format change and must be made deliberately.
func TestEncodingStability(t *testing.T) {
	pin := map[string]struct {
		in   Instruction
		want uint64
	}{
		"nop":  {Instruction{Op: OpNOP, Pg: PredAlways, PSense: true}, 0xf0},
		"iadd": {Instruction{Op: OpIADD, Rd: 3, Ra: 1, Rb: 2, Pg: PredAlways, PSense: true}, 0x10304200000000f0},
		"mvi":  {Instruction{Op: OpMVI, Rd: 63, Imm: -1, Pg: PredAlways, PSense: true}, 0xbf000fffffffff0},
		"bra":  {Instruction{Op: OpBRA, Imm: -3, Pg: 0, PSense: true}, 0xbc0000fffffffd10},
		"gst":  {Instruction{Op: OpGST, Ra: 10, Rb: 11, Imm: 64, Pg: PredAlways, PSense: true}, 0xa8028b00000040f0},
		"iset": {Instruction{Op: OpISETI, Rd: 5, Ra: 4, Imm: 100, Cond: CondLT, Pd: 1, Pg: PredAlways, PSense: true}, 0x68510000000064f5},
		"sin":  {Instruction{Op: OpSIN, Rd: 8, Ra: 7, Pg: 2, PSense: false}, 0x9481c00000000040},
		"exit": {Instruction{Op: OpEXIT, Pg: PredAlways, PSense: true}, 0xcc000000000000f0},
	}
	for name, c := range pin {
		got := uint64(Encode(c.in))
		if got != c.want {
			t.Errorf("%s: Encode = %#x, want %#x (breaking encoding change!)",
				name, got, c.want)
		}
	}
}
