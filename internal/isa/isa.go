// Package isa defines the SASS-like instruction-set architecture of the
// simulated GPU model used throughout this repository.
//
// The ISA mirrors the one supported by FlexGripPlus (a G80-compatible
// open-source GPU model): 52 assembly opcodes spanning integer and
// floating-point arithmetic, logic and shift operations, memory accesses to
// the global/shared/constant spaces, Special Function Unit (SFU)
// transcendentals, predicate-setting comparisons, and SIMT control flow
// (SSY/BRA divergence, BAR, CAL/RET, EXIT).
//
// Instructions are 64-bit words. The package provides the binary
// encoding/decoding used by the GPU fetch/decode stages and by the
// gate-level Decoder Unit model, which consumes raw instruction words as its
// test patterns.
package isa

import "fmt"

// Opcode identifies one of the 52 supported assembly instructions.
type Opcode uint8

// The 52 opcodes of the simulated SASS-like ISA.
const (
	OpNOP Opcode = iota // no operation

	// Data movement.
	OpMOV // Rd = Ra
	OpMVI // Rd = imm
	OpS2R // Rd = special register (thread/block identifiers)

	// Integer arithmetic.
	OpIADD  // Rd = Ra + Rb
	OpIADDI // Rd = Ra + imm
	OpISUB  // Rd = Ra - Rb
	OpISUBI // Rd = Ra - imm
	OpIMUL  // Rd = Ra * Rb (low 32 bits)
	OpIMULI // Rd = Ra * imm
	OpIMAD  // Rd = Ra * Rb + Rd
	OpIMIN  // Rd = min(Ra, Rb) signed
	OpIMAX  // Rd = max(Ra, Rb) signed
	OpINEG  // Rd = -Ra

	// Bitwise logic and shifts.
	OpAND  // Rd = Ra & Rb
	OpANDI // Rd = Ra & imm
	OpOR   // Rd = Ra | Rb
	OpORI  // Rd = Ra | imm
	OpXOR  // Rd = Ra ^ Rb
	OpXORI // Rd = Ra ^ imm
	OpNOT  // Rd = ^Ra
	OpSHL  // Rd = Ra << (Rb & 31)
	OpSHLI // Rd = Ra << (imm & 31)
	OpSHR  // Rd = Ra >> (Rb & 31) logical
	OpSHRI // Rd = Ra >> (imm & 31) logical

	// Predicate-setting comparisons. Cond selects the comparison; the
	// result (all-ones / zero) is written to Rd and mirrored into the
	// predicate register named by the instruction's Pd field.
	OpISET  // Rd, Pd = Ra <cond> Rb (integer)
	OpISETI // Rd, Pd = Ra <cond> imm
	OpFSET  // Rd, Pd = Ra <cond> Rb (float)

	// Floating point (FP32 units).
	OpFADD // Rd = Ra + Rb
	OpFMUL // Rd = Ra * Rb
	OpFFMA // Rd = Ra * Rb + Rd
	OpFMIN // Rd = min(Ra, Rb)
	OpFMAX // Rd = max(Ra, Rb)
	OpF2I  // Rd = int32(float(Ra))
	OpI2F  // Rd = float32(int(Ra))

	// SFU transcendentals (operate on FP32 values).
	OpRCP // Rd = 1 / Ra
	OpRSQ // Rd = 1 / sqrt(Ra)
	OpSIN // Rd = sin(Ra)
	OpCOS // Rd = cos(Ra)
	OpLG2 // Rd = log2(Ra)
	OpEX2 // Rd = 2**Ra

	// Memory. Addresses are byte addresses formed as Ra + imm.
	OpGLD // Rd = global[Ra + imm]
	OpGST // global[Ra + imm] = Rb
	OpSLD // Rd = shared[Ra + imm]
	OpSST // shared[Ra + imm] = Rb
	OpLDC // Rd = constant[Ra + imm]

	// Control flow.
	OpSSY  // push reconvergence point at PC+imm on the divergence stack
	OpBRA  // branch to PC+imm (predicated; may diverge)
	OpBAR  // block-wide barrier
	OpCAL  // call subroutine at PC+imm
	OpRET  // return from subroutine
	OpEXIT // thread exit

	opcodeCount // sentinel; must equal 52
)

// NumOpcodes is the number of defined opcodes (52, as in FlexGripPlus).
const NumOpcodes = int(opcodeCount)

// Cond is the comparison condition used by ISET/ISETI/FSET.
type Cond uint8

// Comparison conditions.
const (
	CondEQ Cond = iota
	CondNE
	CondLT
	CondLE
	CondGT
	CondGE
	condCount
)

// NumConds is the number of comparison conditions.
const NumConds = int(condCount)

// String returns the assembly mnemonic of the condition.
func (c Cond) String() string {
	switch c {
	case CondEQ:
		return "EQ"
	case CondNE:
		return "NE"
	case CondLT:
		return "LT"
	case CondLE:
		return "LE"
	case CondGT:
		return "GT"
	case CondGE:
		return "GE"
	}
	return fmt.Sprintf("Cond(%d)", uint8(c))
}

// Special registers readable through S2R.
const (
	SRTid   = 0 // thread index within the block
	SRNTid  = 1 // threads per block
	SRCTAid = 2 // block index within the grid
	SRWarp  = 3 // warp index within the block
	SRLane  = 4 // lane index within the warp
)

// NumGPR is the number of general-purpose registers per thread.
const NumGPR = 64

// NumPred is the number of single-bit predicate registers per thread.
const NumPred = 4

// PredAlways marks an instruction as unconditional: no predicate guard.
const PredAlways = 7

// Instruction is the decoded form of one 64-bit instruction word.
type Instruction struct {
	Op   Opcode
	Rd   uint8 // destination register (or store-source selector for GST/SST)
	Ra   uint8 // first source register
	Rb   uint8 // second source register (register formats only)
	Imm  int32 // immediate operand / branch displacement / address offset
	Cond Cond  // comparison condition (ISET/ISETI/FSET)
	Pd   uint8 // predicate destination (ISET/ISETI/FSET)
	// Guard predicate: the instruction executes in lanes where predicate
	// register Pg equals PSense. Pg == PredAlways disables the guard.
	Pg     uint8
	PSense bool
}

// Word is a raw 64-bit encoded instruction.
type Word uint64

// Bit layout of the 64-bit instruction word. All field widths are chosen so
// that every architectural field has a dedicated, non-overlapping range;
// the Decoder Unit netlist extracts exactly these slices.
//
//	[63:58] opcode     (6 bits)
//	[57:52] Rd         (6 bits)
//	[51:46] Ra         (6 bits)
//	[45:40] Rb         (6 bits)
//	[39: 8] imm32      (32 bits)
//	[ 7: 5] Pg         (3 bits; 7 = always)
//	[    4] PSense
//	[ 3: 1] Cond       (3 bits)
//	[    0] Pd         (1 bit: predicate P0/P1 destination pair selector)
//
// Pd has only one encoded bit; predicate destinations are restricted to
// P0/P1 in the binary format (the assembler accepts P0..P3 and folds).
const (
	shiftOp   = 58
	shiftRd   = 52
	shiftRa   = 46
	shiftRb   = 40
	shiftImm  = 8
	shiftPg   = 5
	shiftPSen = 4
	shiftCond = 1
	shiftPd   = 0
)

// Encode packs the instruction into its 64-bit binary word.
func Encode(in Instruction) Word {
	var w uint64
	w |= uint64(in.Op&0x3f) << shiftOp
	w |= uint64(in.Rd&0x3f) << shiftRd
	w |= uint64(in.Ra&0x3f) << shiftRa
	w |= uint64(in.Rb&0x3f) << shiftRb
	w |= uint64(uint32(in.Imm)) << shiftImm
	w |= uint64(in.Pg&0x7) << shiftPg
	if in.PSense {
		w |= 1 << shiftPSen
	}
	w |= uint64(in.Cond&0x7) << shiftCond
	w |= uint64(in.Pd&0x1) << shiftPd
	return Word(w)
}

// Decode unpacks a 64-bit word into its instruction fields. Decoding never
// fails structurally; ErrBadOpcode is returned for out-of-range opcodes so
// callers can treat corrupted words as illegal instructions.
func Decode(w Word) (Instruction, error) {
	u := uint64(w)
	in := Instruction{
		Op:     Opcode(u >> shiftOp & 0x3f),
		Rd:     uint8(u >> shiftRd & 0x3f),
		Ra:     uint8(u >> shiftRa & 0x3f),
		Rb:     uint8(u >> shiftRb & 0x3f),
		Imm:    int32(uint32(u >> shiftImm)),
		Pg:     uint8(u >> shiftPg & 0x7),
		PSense: u>>shiftPSen&1 == 1,
		Cond:   Cond(u >> shiftCond & 0x7),
		Pd:     uint8(u >> shiftPd & 0x1),
	}
	if int(in.Op) >= NumOpcodes {
		return in, fmt.Errorf("isa: %w: %d", ErrBadOpcode, in.Op)
	}
	if int(in.Cond) >= NumConds {
		return in, fmt.Errorf("isa: %w: bad cond %d", ErrBadOpcode, in.Cond)
	}
	return in, nil
}

// ErrBadOpcode reports an instruction word whose opcode field does not name
// a defined instruction.
var ErrBadOpcode = fmt.Errorf("illegal opcode")

// Class groups opcodes by the functional unit that executes them; the GPU
// timing model and the gate-level module mapping both key off it.
type Class uint8

// Functional-unit classes.
const (
	ClassALU  Class = iota // SP integer/logic datapath
	ClassFPU               // SP floating-point datapath
	ClassSFU               // special function unit
	ClassMem               // load/store pipeline
	ClassCtrl              // control flow, barriers, NOP
)

// String returns a short name for the class.
func (c Class) String() string {
	switch c {
	case ClassALU:
		return "ALU"
	case ClassFPU:
		return "FPU"
	case ClassSFU:
		return "SFU"
	case ClassMem:
		return "MEM"
	case ClassCtrl:
		return "CTRL"
	}
	return fmt.Sprintf("Class(%d)", uint8(c))
}

// ClassOf returns the functional-unit class executing op.
func ClassOf(op Opcode) Class {
	switch op {
	case OpFADD, OpFMUL, OpFFMA, OpFMIN, OpFMAX, OpF2I, OpI2F, OpFSET:
		return ClassFPU
	case OpRCP, OpRSQ, OpSIN, OpCOS, OpLG2, OpEX2:
		return ClassSFU
	case OpGLD, OpGST, OpSLD, OpSST, OpLDC:
		return ClassMem
	case OpNOP, OpSSY, OpBRA, OpBAR, OpCAL, OpRET, OpEXIT:
		return ClassCtrl
	default:
		return ClassALU
	}
}

// HasImm reports whether op carries a meaningful immediate operand.
func HasImm(op Opcode) bool {
	switch op {
	case OpMVI, OpIADDI, OpISUBI, OpIMULI, OpANDI, OpORI, OpXORI,
		OpSHLI, OpSHRI, OpISETI,
		OpGLD, OpGST, OpSLD, OpSST, OpLDC,
		OpSSY, OpBRA, OpCAL:
		return true
	}
	return false
}

// ReadsRb reports whether op reads the Rb register field.
func ReadsRb(op Opcode) bool {
	switch op {
	case OpIADD, OpISUB, OpIMUL, OpIMAD, OpIMIN, OpIMAX,
		OpAND, OpOR, OpXOR, OpSHL, OpSHR,
		OpISET, OpFSET,
		OpFADD, OpFMUL, OpFFMA, OpFMIN, OpFMAX,
		OpGST, OpSST:
		return true
	}
	return false
}

// ReadsRa reports whether op reads the Ra register field.
func ReadsRa(op Opcode) bool {
	switch op {
	case OpNOP, OpMVI, OpS2R, OpSSY, OpBRA, OpBAR, OpCAL, OpRET, OpEXIT:
		return false
	}
	return true
}

// ReadsRd reports whether op reads its destination register as an input
// (the multiply-add accumulators).
func ReadsRd(op Opcode) bool {
	return op == OpIMAD || op == OpFFMA
}

// WritesRd reports whether op writes a general-purpose destination register.
func WritesRd(op Opcode) bool {
	switch op {
	case OpNOP, OpGST, OpSST, OpSSY, OpBRA, OpBAR, OpCAL, OpRET, OpEXIT:
		return false
	}
	return true
}

// IsBranch reports whether op can redirect control flow.
func IsBranch(op Opcode) bool {
	switch op {
	case OpBRA, OpCAL, OpRET, OpEXIT:
		return true
	}
	return false
}

// SetsPred reports whether op writes a predicate register.
func SetsPred(op Opcode) bool {
	return op == OpISET || op == OpISETI || op == OpFSET
}

var opNames = [NumOpcodes]string{
	OpNOP: "NOP", OpMOV: "MOV", OpMVI: "MVI", OpS2R: "S2R",
	OpIADD: "IADD", OpIADDI: "IADDI", OpISUB: "ISUB", OpISUBI: "ISUBI",
	OpIMUL: "IMUL", OpIMULI: "IMULI", OpIMAD: "IMAD",
	OpIMIN: "IMIN", OpIMAX: "IMAX", OpINEG: "INEG",
	OpAND: "AND", OpANDI: "ANDI", OpOR: "OR", OpORI: "ORI",
	OpXOR: "XOR", OpXORI: "XORI", OpNOT: "NOT",
	OpSHL: "SHL", OpSHLI: "SHLI", OpSHR: "SHR", OpSHRI: "SHRI",
	OpISET: "ISET", OpISETI: "ISETI", OpFSET: "FSET",
	OpFADD: "FADD", OpFMUL: "FMUL", OpFFMA: "FFMA",
	OpFMIN: "FMIN", OpFMAX: "FMAX", OpF2I: "F2I", OpI2F: "I2F",
	OpRCP: "RCP", OpRSQ: "RSQ", OpSIN: "SIN", OpCOS: "COS",
	OpLG2: "LG2", OpEX2: "EX2",
	OpGLD: "GLD", OpGST: "GST", OpSLD: "SLD", OpSST: "SST", OpLDC: "LDC",
	OpSSY: "SSY", OpBRA: "BRA", OpBAR: "BAR",
	OpCAL: "CAL", OpRET: "RET", OpEXIT: "EXIT",
}

// String returns the assembly mnemonic of the opcode.
func (op Opcode) String() string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return fmt.Sprintf("Opcode(%d)", uint8(op))
}

// OpcodeByName returns the opcode with the given mnemonic.
func OpcodeByName(name string) (Opcode, bool) {
	op, ok := nameToOp[name]
	return op, ok
}

var nameToOp = func() map[string]Opcode {
	m := make(map[string]Opcode, NumOpcodes)
	for op, n := range opNames {
		m[n] = Opcode(op)
	}
	return m
}()
