package isa

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestOpcodeCount(t *testing.T) {
	if NumOpcodes != 52 {
		t.Fatalf("NumOpcodes = %d, want 52 (FlexGripPlus ISA size)", NumOpcodes)
	}
}

func TestOpcodeNamesComplete(t *testing.T) {
	for op := Opcode(0); int(op) < NumOpcodes; op++ {
		name := op.String()
		if name == "" {
			t.Errorf("opcode %d has no mnemonic", op)
		}
		got, ok := OpcodeByName(name)
		if !ok || got != op {
			t.Errorf("OpcodeByName(%q) = %v, %v; want %v, true", name, got, ok, op)
		}
	}
}

func TestOpcodeByNameUnknown(t *testing.T) {
	if _, ok := OpcodeByName("BOGUS"); ok {
		t.Fatal("OpcodeByName accepted an unknown mnemonic")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cases := []Instruction{
		{Op: OpNOP, Pg: PredAlways},
		{Op: OpIADD, Rd: 3, Ra: 1, Rb: 2, Pg: PredAlways},
		{Op: OpMVI, Rd: 63, Imm: -1, Pg: PredAlways},
		{Op: OpMVI, Rd: 0, Imm: 0x7fffffff, Pg: PredAlways},
		{Op: OpMVI, Rd: 0, Imm: -0x80000000, Pg: PredAlways},
		{Op: OpISETI, Rd: 5, Ra: 4, Imm: 100, Cond: CondLT, Pd: 1, Pg: PredAlways},
		{Op: OpBRA, Imm: -12, Pg: 2, PSense: true},
		{Op: OpGST, Rd: 0, Ra: 10, Rb: 11, Imm: 1024, Pg: PredAlways},
		{Op: OpEXIT, Pg: PredAlways},
	}
	for _, in := range cases {
		w := Encode(in)
		out, err := Decode(w)
		if err != nil {
			t.Fatalf("Decode(Encode(%+v)): %v", in, err)
		}
		if out != in {
			t.Errorf("round trip: got %+v, want %+v", out, in)
		}
	}
}

// randomInstruction draws an instruction with all fields in their encodable
// ranges.
func randomInstruction(r *rand.Rand) Instruction {
	return Instruction{
		Op:     Opcode(r.Intn(NumOpcodes)),
		Rd:     uint8(r.Intn(NumGPR)),
		Ra:     uint8(r.Intn(NumGPR)),
		Rb:     uint8(r.Intn(NumGPR)),
		Imm:    int32(r.Uint32()),
		Cond:   Cond(r.Intn(NumConds)),
		Pd:     uint8(r.Intn(2)),
		Pg:     uint8(r.Intn(8)),
		PSense: r.Intn(2) == 1,
	}
}

func TestEncodeDecodeProperty(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	f := func() bool {
		in := randomInstruction(r)
		out, err := Decode(Encode(in))
		return err == nil && out == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeBadOpcode(t *testing.T) {
	w := Word(uint64(NumOpcodes) << 58)
	if _, err := Decode(w); err == nil {
		t.Fatal("Decode accepted an out-of-range opcode")
	}
	w = Word(uint64(63) << 58)
	if _, err := Decode(w); err == nil {
		t.Fatal("Decode accepted opcode 63")
	}
}

func TestDecodeBadCond(t *testing.T) {
	in := Instruction{Op: OpISET, Pg: PredAlways}
	w := Encode(in) | Word(uint64(7)<<1) // force cond=7, undefined
	if _, err := Decode(w); err == nil {
		t.Fatal("Decode accepted an out-of-range condition")
	}
}

func TestClassOfCoversAllOpcodes(t *testing.T) {
	want := map[Opcode]Class{
		OpIADD: ClassALU, OpSHLI: ClassALU, OpISET: ClassALU,
		OpFADD: ClassFPU, OpFFMA: ClassFPU, OpFSET: ClassFPU, OpI2F: ClassFPU,
		OpRCP: ClassSFU, OpSIN: ClassSFU, OpEX2: ClassSFU,
		OpGLD: ClassMem, OpSST: ClassMem, OpLDC: ClassMem,
		OpNOP: ClassCtrl, OpBRA: ClassCtrl, OpEXIT: ClassCtrl, OpBAR: ClassCtrl,
	}
	for op, cls := range want {
		if got := ClassOf(op); got != cls {
			t.Errorf("ClassOf(%v) = %v, want %v", op, got, cls)
		}
	}
	// Every opcode must map to a class with a printable name.
	for op := Opcode(0); int(op) < NumOpcodes; op++ {
		if ClassOf(op).String() == "" {
			t.Errorf("ClassOf(%v) has empty name", op)
		}
	}
}

func TestOperandPredicates(t *testing.T) {
	if !HasImm(OpMVI) || HasImm(OpIADD) {
		t.Error("HasImm wrong for MVI/IADD")
	}
	if !ReadsRb(OpGST) || ReadsRb(OpGLD) {
		t.Error("ReadsRb wrong for GST/GLD")
	}
	if ReadsRa(OpMVI) || !ReadsRa(OpGLD) {
		t.Error("ReadsRa wrong for MVI/GLD")
	}
	if !ReadsRd(OpIMAD) || !ReadsRd(OpFFMA) || ReadsRd(OpIADD) {
		t.Error("ReadsRd wrong")
	}
	if WritesRd(OpGST) || WritesRd(OpBRA) || !WritesRd(OpGLD) || !WritesRd(OpSIN) {
		t.Error("WritesRd wrong")
	}
	if !IsBranch(OpBRA) || !IsBranch(OpEXIT) || IsBranch(OpSSY) || IsBranch(OpBAR) {
		t.Error("IsBranch wrong")
	}
	if !SetsPred(OpISETI) || SetsPred(OpIADD) {
		t.Error("SetsPred wrong")
	}
}

func TestCondString(t *testing.T) {
	names := map[Cond]string{CondEQ: "EQ", CondNE: "NE", CondLT: "LT",
		CondLE: "LE", CondGT: "GT", CondGE: "GE"}
	for c, n := range names {
		if c.String() != n {
			t.Errorf("Cond(%d).String() = %q, want %q", c, c.String(), n)
		}
	}
}

func TestEncodeFieldIsolation(t *testing.T) {
	// Changing one field must not disturb the decode of the others.
	base := Instruction{Op: OpIADD, Rd: 1, Ra: 2, Rb: 3, Imm: 4, Pg: PredAlways}
	mut := base
	mut.Imm = -99
	a, _ := Decode(Encode(base))
	b, _ := Decode(Encode(mut))
	if a.Rd != b.Rd || a.Ra != b.Ra || a.Rb != b.Rb || a.Op != b.Op {
		t.Fatal("immediate field overlaps register/opcode fields")
	}
	if b.Imm != -99 {
		t.Fatalf("imm = %d, want -99", b.Imm)
	}
}
