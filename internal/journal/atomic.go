package journal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

// WriteFileAtomic durably replaces path with data: the bytes go to a
// temp file in the same directory, the file is fsync'd and closed, the
// temp file is renamed over path, and the directory is fsync'd so the
// rename itself survives power loss. A crash at any point leaves either
// the old file or the new one, never a mix and never a half-written
// file under the final name.
//
// Plain temp-file-plus-rename (what the PR-1 checkpoint writer did) is
// NOT durable: without the file fsync the rename can land before the
// data, and without the directory fsync the rename itself can be lost.
func WriteFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("journal: creating temp file for %s: %w", path, err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("journal: writing %s: %w", path, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("journal: syncing %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("journal: closing temp file for %s: %w", path, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("journal: committing %s: %w", path, err)
	}
	return SyncDir(dir)
}

// SyncDir fsyncs a directory, making recent renames and creations in it
// durable. Filesystems that cannot fsync directories (some network and
// overlay mounts return EINVAL or ENOTSUP) are tolerated — there is
// nothing more a userspace writer can do there.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("journal: opening directory %s: %w", dir, err)
	}
	err = d.Sync()
	cerr := d.Close()
	if err != nil && !errors.Is(err, syscall.EINVAL) && !errors.Is(err, syscall.ENOTSUP) {
		return fmt.Errorf("journal: syncing directory %s: %w", dir, err)
	}
	if cerr != nil {
		return fmt.Errorf("journal: closing directory %s: %w", dir, cerr)
	}
	return nil
}
