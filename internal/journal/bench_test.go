package journal

import (
	"path/filepath"
	"testing"
)

type benchBody struct {
	Index int    `json:"index"`
	Name  string `json:"name"`
	Hash  string `json:"hash"`
}

// BenchmarkJournalAppend measures one fsync'd record append — the
// per-PTP durability cost the runner pays.
func BenchmarkJournalAppend(b *testing.B) {
	path := filepath.Join(b.TempDir(), "bench.wal")
	j, _, err := Open(path)
	if err != nil {
		b.Fatal(err)
	}
	defer j.Close()
	body := benchBody{Index: 1, Name: "IMM", Hash: "0123456789abcdef0123456789abcdef"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := j.Append("outcome", body); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkJournalReplay measures scanning a 1000-record journal — the
// resume-time recovery cost.
func BenchmarkJournalReplay(b *testing.B) {
	path := filepath.Join(b.TempDir(), "bench.wal")
	j, _, err := Open(path)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if _, err := j.Append("outcome", benchBody{Index: i, Name: "IMM"}); err != nil {
			b.Fatal(err)
		}
	}
	j.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rp, err := Scan(path)
		if err != nil || len(rp.Records) != 1000 {
			b.Fatalf("replay: %v, %d records", err, len(rp.Records))
		}
	}
}
