package journal

import (
	"errors"
	"path/filepath"
	"syscall"
	"testing"

	"gpustl/internal/failpoint"
)

// TestAppendShortWriteIsSurfacedAndHealed exercises the
// journal.append.write failpoint: a torn write must be reported as
// ErrShortWrite (not discovered later as a CRC torn-tail), the partial
// bytes must be truncated away, and a retry of the same record must
// succeed and leave a clean journal.
func TestAppendShortWriteIsSurfacedAndHealed(t *testing.T) {
	defer failpoint.Reset()
	path := filepath.Join(t.TempDir(), "campaign.wal")
	j, _ := openT(t, path)
	defer j.Close()

	if _, err := j.Append("item", payload{N: 1}); err != nil {
		t.Fatal(err)
	}

	if err := failpoint.Enable("journal.append.write", failpoint.Config{
		Kind: failpoint.KindShortWrite, Times: 1,
	}); err != nil {
		t.Fatal(err)
	}
	_, err := j.Append("item", payload{N: 2})
	if !errors.Is(err, ErrShortWrite) {
		t.Fatalf("torn append error = %v, want ErrShortWrite", err)
	}

	// The tail healed in place: the same record can be appended again
	// and the on-disk file is a clean two-record journal.
	seq, err := j.Append("item", payload{N: 2})
	if err != nil || seq != 2 {
		t.Fatalf("retry after torn append: seq=%d err=%v", seq, err)
	}
	rp, err := Scan(path)
	if err != nil {
		t.Fatal(err)
	}
	if rp.Truncated || len(rp.Records) != 2 {
		t.Fatalf("post-heal replay: truncated=%v kind=%s records=%d",
			rp.Truncated, rp.Kind, len(rp.Records))
	}
}

// TestAppendDiskFullIsDistinct exercises ENOSPC classification via the
// write failpoint: callers must be able to errors.Is on ErrDiskFull to
// distinguish "environment out of space" from corruption.
func TestAppendDiskFullIsDistinct(t *testing.T) {
	defer failpoint.Reset()
	path := filepath.Join(t.TempDir(), "campaign.wal")
	j, _ := openT(t, path)
	defer j.Close()

	if err := failpoint.Enable("journal.append.write", failpoint.Config{
		Kind: failpoint.KindShortWrite, Bytes: 5, Err: syscall.ENOSPC, Times: 1,
	}); err != nil {
		t.Fatal(err)
	}
	_, err := j.Append("item", payload{N: 1})
	if !errors.Is(err, ErrDiskFull) {
		t.Fatalf("ENOSPC append error = %v, want ErrDiskFull", err)
	}
	if errors.Is(err, ErrShortWrite) {
		t.Fatalf("ENOSPC misclassified as plain short write: %v", err)
	}

	// Healed: the journal is empty and appendable once space "returns".
	seq, err := j.Append("item", payload{N: 1})
	if err != nil || seq != 1 {
		t.Fatalf("append after ENOSPC cleared: seq=%d err=%v", seq, err)
	}
}

// TestAppendSyncFailureHealsTail exercises journal.append.sync: a
// failed fsync drops the unacknowledged record (its durability is
// unknown) so the journal stays a clean prefix, and an ENOSPC-flavored
// sync failure classifies as ErrDiskFull.
func TestAppendSyncFailureHealsTail(t *testing.T) {
	defer failpoint.Reset()
	path := filepath.Join(t.TempDir(), "campaign.wal")
	j, _ := openT(t, path)
	defer j.Close()

	if _, err := j.Append("item", payload{N: 1}); err != nil {
		t.Fatal(err)
	}
	if err := failpoint.Enable("journal.append.sync", failpoint.Config{
		Kind: failpoint.KindError, Err: syscall.ENOSPC, Times: 1,
	}); err != nil {
		t.Fatal(err)
	}
	_, err := j.Append("item", payload{N: 2})
	if !errors.Is(err, ErrDiskFull) {
		t.Fatalf("sync ENOSPC error = %v, want ErrDiskFull", err)
	}
	if j.Seq() != 1 {
		t.Fatalf("seq advanced to %d across a failed sync", j.Seq())
	}

	seq, err := j.Append("item", payload{N: 2})
	if err != nil || seq != 2 {
		t.Fatalf("retry after failed sync: seq=%d err=%v", seq, err)
	}
	rp, err := Scan(path)
	if err != nil {
		t.Fatal(err)
	}
	if rp.Truncated || len(rp.Records) != 2 {
		t.Fatalf("post-sync-failure replay: truncated=%v records=%d", rp.Truncated, len(rp.Records))
	}
}

// TestAppendCorruptionLandsSilently exercises the bit-flip action: the
// append "succeeds", and the rot is only found by the next Scan as a
// CRC mismatch (or torn framing if the flip hit the JSON structure) —
// the failure mode recovery truncates.
func TestAppendCorruptionLandsSilently(t *testing.T) {
	defer failpoint.Reset()
	path := filepath.Join(t.TempDir(), "campaign.wal")
	j, _ := openT(t, path)

	if _, err := j.Append("item", payload{N: 1}); err != nil {
		t.Fatal(err)
	}
	if err := failpoint.Enable("journal.append.write", failpoint.Config{
		Kind: failpoint.KindCorrupt, Seed: 42, Times: 1,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := j.Append("item", payload{N: 2}); err != nil {
		t.Fatalf("corrupting append must succeed silently, got %v", err)
	}
	j.Close()

	rp, err := Scan(path)
	if err != nil {
		t.Fatal(err)
	}
	if !rp.Truncated || len(rp.Records) != 1 {
		t.Fatalf("corrupted record not caught: truncated=%v records=%d", rp.Truncated, len(rp.Records))
	}
	if rp.Kind != CorruptCRC && rp.Kind != CorruptTorn {
		t.Fatalf("corruption kind = %s", rp.Kind)
	}

	// Reopen truncates the rotten record and appends continue cleanly.
	j2, rp2 := openT(t, path)
	defer j2.Close()
	if len(rp2.Records) != 1 || j2.Seq() != 1 {
		t.Fatalf("reopen after rot: records=%d seq=%d", len(rp2.Records), j2.Seq())
	}
	if seq, err := j2.Append("item", payload{N: 2}); err != nil || seq != 2 {
		t.Fatalf("append after rot recovery: seq=%d err=%v", seq, err)
	}
}
