package journal

import (
	"bytes"
	"testing"
)

// FuzzDecodeRecord checks the record decoder never panics on arbitrary
// bytes, and that whatever it accepts re-encodes to an identical frame
// (so a journal survives being rewritten record by record).
func FuzzDecodeRecord(f *testing.F) {
	if line, err := EncodeRecord(1, "outcome", map[string]int{"n": 7}); err == nil {
		f.Add(bytes.TrimSuffix(line, []byte("\n")))
	}
	f.Add([]byte(`{"seq":1,"type":"meta","crc":"00000000","body":{}}`))
	f.Add([]byte(`{"seq":9,"ty`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte{0x00, 0xff, 0xfe})
	f.Fuzz(func(t *testing.T, line []byte) {
		rec, err := DecodeRecord(line)
		if err != nil {
			return
		}
		reenc, err := EncodeRecord(rec.Seq, rec.Type, rec.Body)
		if err != nil {
			t.Fatalf("accepted record does not re-encode: %v", err)
		}
		rec2, err := DecodeRecord(bytes.TrimSuffix(reenc, []byte("\n")))
		if err != nil {
			t.Fatalf("re-encoded record does not decode: %v", err)
		}
		if rec2.Seq != rec.Seq || rec2.Type != rec.Type || !bytes.Equal(rec2.Body, rec.Body) {
			t.Fatalf("round trip changed the record: %+v != %+v", rec2, rec)
		}
	})
}
