// Package journal is the durability substrate of long compaction
// campaigns: an append-only, fsync'd write-ahead journal (JSONL with a
// per-record CRC32C and a monotonic sequence number), atomic+durable
// file replacement, and checksum sidecars for output artifacts.
//
// The journal is crash-only by design: writers never rewrite existing
// bytes, recovery is a forward scan that keeps every record before the
// first corrupt or torn one, and reopening for append truncates the bad
// tail so the file is always a clean prefix of valid records. A
// multi-hour campaign killed at any instant therefore loses at most the
// record being written, and a reader can state exactly what was
// salvaged.
package journal

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// castagnoli is the CRC32C polynomial table (the same polynomial
// storage systems use; hardware-accelerated on most CPUs).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCRC marks a record whose stored CRC32C does not match its content.
var ErrCRC = errors.New("CRC32C mismatch")

// Record is one journal entry: a monotonically increasing sequence
// number (starting at 1), a caller-defined type tag, the CRC32C of
// "<seq>:<type>:<body>" in lowercase hex, and the JSON body verbatim.
// One record is one line of the journal file.
type Record struct {
	Seq  uint64          `json:"seq"`
	Type string          `json:"type"`
	CRC  string          `json:"crc"`
	Body json.RawMessage `json:"body"`
}

// crcOf computes the record checksum over the sequence number, the type
// tag and the exact body bytes, so corruption of any of the three is
// detected.
func crcOf(seq uint64, typ string, body []byte) uint32 {
	h := crc32.New(castagnoli)
	fmt.Fprintf(h, "%d:%s:", seq, typ)
	h.Write(body)
	return h.Sum32()
}

// EncodeRecord marshals body and frames it as one journal line
// (including the trailing newline).
func EncodeRecord(seq uint64, typ string, body any) ([]byte, error) {
	if typ == "" {
		return nil, errors.New("journal: empty record type")
	}
	b, err := json.Marshal(body)
	if err != nil {
		return nil, fmt.Errorf("journal: encoding %s record: %w", typ, err)
	}
	rec := Record{Seq: seq, Type: typ, CRC: fmt.Sprintf("%08x", crcOf(seq, typ, b)), Body: b}
	line, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("journal: framing %s record: %w", typ, err)
	}
	return append(line, '\n'), nil
}

// DecodeRecord parses one journal line (without the newline) and
// verifies its checksum. A mismatch returns an error wrapping ErrCRC.
func DecodeRecord(line []byte) (*Record, error) {
	var rec Record
	if err := json.Unmarshal(line, &rec); err != nil {
		return nil, fmt.Errorf("journal: malformed record: %w", err)
	}
	if rec.Type == "" {
		return nil, errors.New("journal: record has no type")
	}
	if len(rec.Body) == 0 {
		return nil, fmt.Errorf("journal: %s record has no body", rec.Type)
	}
	var stored uint32
	if n, err := fmt.Sscanf(rec.CRC, "%08x", &stored); n != 1 || err != nil || len(rec.CRC) != 8 {
		return nil, fmt.Errorf("journal: %s record seq %d: bad CRC field %q", rec.Type, rec.Seq, rec.CRC)
	}
	if got := crcOf(rec.Seq, rec.Type, rec.Body); got != stored {
		return nil, fmt.Errorf("journal: %s record seq %d: %w (stored %s, computed %08x)",
			rec.Type, rec.Seq, ErrCRC, rec.CRC, got)
	}
	return &rec, nil
}

// CorruptKind classifies why a journal scan stopped early.
type CorruptKind string

const (
	CorruptNone CorruptKind = ""               // clean journal
	CorruptTorn CorruptKind = "torn-record"    // partial/garbled write (crash mid-append)
	CorruptCRC  CorruptKind = "crc-mismatch"   // bit rot: framing intact, checksum wrong
	CorruptSeq  CorruptKind = "sequence-break" // records out of order or missing
)

// Replay is the result of scanning a journal file: every record before
// the first corruption, plus an exact account of what (if anything) was
// lost.
type Replay struct {
	Path    string
	Records []Record
	// GoodSize is the byte offset just past the last valid record —
	// the offset recovery truncates to.
	GoodSize  int64
	TotalSize int64
	// Truncated reports that the file has content past GoodSize that
	// failed validation; Kind and Reason say why.
	Truncated bool
	Kind      CorruptKind
	Reason    string
}

// Scan reads the journal at path and validates it record by record,
// stopping at the first torn or corrupt record. A missing file is not
// an error: it returns an empty replay, so first runs start fresh.
// Scan never modifies the file.
func Scan(path string) (*Replay, error) {
	rp := &Replay{Path: path}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return rp, nil
	}
	if err != nil {
		return nil, fmt.Errorf("journal: reading %s: %w", path, err)
	}
	rp.TotalSize = int64(len(data))
	off := 0
	for off < len(data) {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			rp.Truncated = true
			rp.Kind = CorruptTorn
			rp.Reason = fmt.Sprintf("torn record at byte %d (no trailing newline)", off)
			break
		}
		rec, err := DecodeRecord(data[off : off+nl])
		if err != nil {
			rp.Truncated = true
			rp.Kind = CorruptTorn
			if errors.Is(err, ErrCRC) {
				rp.Kind = CorruptCRC
			}
			rp.Reason = fmt.Sprintf("record %d at byte %d: %v", len(rp.Records)+1, off, err)
			break
		}
		if rec.Seq != uint64(len(rp.Records))+1 {
			rp.Truncated = true
			rp.Kind = CorruptSeq
			rp.Reason = fmt.Sprintf("sequence break at byte %d: record claims seq %d, want %d",
				off, rec.Seq, len(rp.Records)+1)
			break
		}
		rp.Records = append(rp.Records, *rec)
		off += nl + 1
		rp.GoodSize = int64(off)
	}
	return rp, nil
}

// Journal is an open write-ahead journal positioned for append. Every
// Append is fsync'd before it returns, so an acknowledged record
// survives a crash or power loss.
type Journal struct {
	f    *os.File
	path string
	seq  uint64
}

// Open scans the journal at path (creating it if absent), truncates any
// torn or corrupt tail so the file is a clean prefix of valid records,
// and returns the journal ready for append together with the replay of
// what survived. Callers decide what a truncated tail means; Open only
// guarantees the file is consistent afterwards.
func Open(path string) (*Journal, *Replay, error) {
	rp, err := Scan(path)
	if err != nil {
		return nil, nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o666)
	if err != nil {
		return nil, nil, fmt.Errorf("journal: opening %s: %w", path, err)
	}
	if rp.GoodSize < rp.TotalSize {
		// Drop the bad tail, durably, before anything is appended
		// after it.
		if err := f.Truncate(rp.GoodSize); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("journal: truncating %s to byte %d: %w", path, rp.GoodSize, err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("journal: syncing %s: %w", path, err)
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("journal: seeking %s: %w", path, err)
	}
	// Make the directory entry itself durable: a freshly created
	// journal must not vanish with a power loss after its first
	// acknowledged append.
	if err := SyncDir(filepath.Dir(path)); err != nil {
		f.Close()
		return nil, nil, err
	}
	return &Journal{f: f, path: path, seq: uint64(len(rp.Records))}, rp, nil
}

// Seq returns the sequence number of the last appended record (0 when
// the journal is empty).
func (j *Journal) Seq() uint64 { return j.seq }

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Append frames body as the next record, writes it, and fsyncs the file
// before returning the record's sequence number. On error the in-memory
// sequence number is not advanced; the on-disk tail (if partially
// written) is exactly the torn-record case recovery handles.
func (j *Journal) Append(typ string, body any) (uint64, error) {
	line, err := EncodeRecord(j.seq+1, typ, body)
	if err != nil {
		return 0, err
	}
	if _, err := j.f.Write(line); err != nil {
		return 0, fmt.Errorf("journal: appending to %s: %w", j.path, err)
	}
	if err := j.f.Sync(); err != nil {
		return 0, fmt.Errorf("journal: syncing %s: %w", j.path, err)
	}
	j.seq++
	return j.seq, nil
}

// Close closes the journal file.
func (j *Journal) Close() error { return j.f.Close() }
