// Package journal is the durability substrate of long compaction
// campaigns: an append-only, fsync'd write-ahead journal (JSONL with a
// per-record CRC32C and a monotonic sequence number), atomic+durable
// file replacement, and checksum sidecars for output artifacts.
//
// The journal is crash-only by design: writers never rewrite existing
// bytes, recovery is a forward scan that keeps every record before the
// first corrupt or torn one, and reopening for append truncates the bad
// tail so the file is always a clean prefix of valid records. A
// multi-hour campaign killed at any instant therefore loses at most the
// record being written, and a reader can state exactly what was
// salvaged.
package journal

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"syscall"

	"gpustl/internal/failpoint"
)

// castagnoli is the CRC32C polynomial table (the same polynomial
// storage systems use; hardware-accelerated on most CPUs).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCRC marks a record whose stored CRC32C does not match its content.
var ErrCRC = errors.New("CRC32C mismatch")

// ErrDiskFull marks an append that failed because the filesystem is out
// of space (ENOSPC) or quota (EDQUOT). Callers should treat it as an
// environmental condition — pause or fail the campaign — rather than
// journal corruption: the tail has already been healed when Append
// returns it.
var ErrDiskFull = errors.New("journal: disk full")

// ErrShortWrite marks an append where the kernel accepted fewer bytes
// than the record needs (a torn write observed at write time rather than
// at recovery). Like ErrDiskFull it is surfaced distinctly — previously
// such a tail was only discovered on the next Scan and misreported as a
// CRC torn-tail — and the partial bytes are truncated away before Append
// returns.
var ErrShortWrite = errors.New("journal: short write")

// Failpoints on the append path. journal.append.write intercepts the
// record write (error / torn short write / bit corruption); it fires
// before bytes reach the kernel so torn and corrupt payloads really
// land on disk. journal.append.sync injects fsync failures (e.g.
// error(ENOSPC): data accepted into the page cache, no room to flush).
var (
	fpAppendWrite = failpoint.New("journal.append.write")
	fpAppendSync  = failpoint.New("journal.append.sync")
)

// isDiskFull reports whether err is an out-of-space condition.
func isDiskFull(err error) bool {
	return errors.Is(err, syscall.ENOSPC) || errors.Is(err, syscall.EDQUOT)
}

// classifyWriteErr maps a raw write error (and byte count) to the
// journal's distinct error kinds.
func classifyWriteErr(err error, wrote, want int) error {
	switch {
	case err != nil && isDiskFull(err):
		return fmt.Errorf("%w (wrote %d of %d bytes): %v", ErrDiskFull, wrote, want, err)
	case err != nil && errors.Is(err, io.ErrShortWrite):
		return fmt.Errorf("%w (wrote %d of %d bytes)", ErrShortWrite, wrote, want)
	case err != nil:
		return err
	case wrote < want:
		return fmt.Errorf("%w (wrote %d of %d bytes)", ErrShortWrite, wrote, want)
	default:
		return nil
	}
}

// Record is one journal entry: a monotonically increasing sequence
// number (starting at 1), a caller-defined type tag, the CRC32C of
// "<seq>:<type>:<body>" in lowercase hex, and the JSON body verbatim.
// One record is one line of the journal file.
type Record struct {
	Seq  uint64          `json:"seq"`
	Type string          `json:"type"`
	CRC  string          `json:"crc"`
	Body json.RawMessage `json:"body"`
}

// crcOf computes the record checksum over the sequence number, the type
// tag and the exact body bytes, so corruption of any of the three is
// detected.
func crcOf(seq uint64, typ string, body []byte) uint32 {
	h := crc32.New(castagnoli)
	fmt.Fprintf(h, "%d:%s:", seq, typ)
	h.Write(body)
	return h.Sum32()
}

// EncodeRecord marshals body and frames it as one journal line
// (including the trailing newline).
func EncodeRecord(seq uint64, typ string, body any) ([]byte, error) {
	if typ == "" {
		return nil, errors.New("journal: empty record type")
	}
	b, err := json.Marshal(body)
	if err != nil {
		return nil, fmt.Errorf("journal: encoding %s record: %w", typ, err)
	}
	rec := Record{Seq: seq, Type: typ, CRC: fmt.Sprintf("%08x", crcOf(seq, typ, b)), Body: b}
	line, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("journal: framing %s record: %w", typ, err)
	}
	return append(line, '\n'), nil
}

// DecodeRecord parses one journal line (without the newline) and
// verifies its checksum. A mismatch returns an error wrapping ErrCRC.
func DecodeRecord(line []byte) (*Record, error) {
	var rec Record
	if err := json.Unmarshal(line, &rec); err != nil {
		return nil, fmt.Errorf("journal: malformed record: %w", err)
	}
	if rec.Type == "" {
		return nil, errors.New("journal: record has no type")
	}
	if len(rec.Body) == 0 {
		return nil, fmt.Errorf("journal: %s record has no body", rec.Type)
	}
	var stored uint32
	if n, err := fmt.Sscanf(rec.CRC, "%08x", &stored); n != 1 || err != nil || len(rec.CRC) != 8 {
		return nil, fmt.Errorf("journal: %s record seq %d: bad CRC field %q", rec.Type, rec.Seq, rec.CRC)
	}
	if got := crcOf(rec.Seq, rec.Type, rec.Body); got != stored {
		return nil, fmt.Errorf("journal: %s record seq %d: %w (stored %s, computed %08x)",
			rec.Type, rec.Seq, ErrCRC, rec.CRC, got)
	}
	return &rec, nil
}

// CorruptKind classifies why a journal scan stopped early.
type CorruptKind string

const (
	CorruptNone CorruptKind = ""               // clean journal
	CorruptTorn CorruptKind = "torn-record"    // partial/garbled write (crash mid-append)
	CorruptCRC  CorruptKind = "crc-mismatch"   // bit rot: framing intact, checksum wrong
	CorruptSeq  CorruptKind = "sequence-break" // records out of order or missing
)

// Replay is the result of scanning a journal file: every record before
// the first corruption, plus an exact account of what (if anything) was
// lost.
type Replay struct {
	Path    string
	Records []Record
	// GoodSize is the byte offset just past the last valid record —
	// the offset recovery truncates to.
	GoodSize  int64
	TotalSize int64
	// Truncated reports that the file has content past GoodSize that
	// failed validation; Kind and Reason say why.
	Truncated bool
	Kind      CorruptKind
	Reason    string
}

// Scan reads the journal at path and validates it record by record,
// stopping at the first torn or corrupt record. A missing file is not
// an error: it returns an empty replay, so first runs start fresh.
// Scan never modifies the file.
func Scan(path string) (*Replay, error) {
	rp := &Replay{Path: path}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return rp, nil
	}
	if err != nil {
		return nil, fmt.Errorf("journal: reading %s: %w", path, err)
	}
	rp.TotalSize = int64(len(data))
	off := 0
	for off < len(data) {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			rp.Truncated = true
			rp.Kind = CorruptTorn
			rp.Reason = fmt.Sprintf("torn record at byte %d (no trailing newline)", off)
			break
		}
		rec, err := DecodeRecord(data[off : off+nl])
		if err != nil {
			rp.Truncated = true
			rp.Kind = CorruptTorn
			if errors.Is(err, ErrCRC) {
				rp.Kind = CorruptCRC
			}
			rp.Reason = fmt.Sprintf("record %d at byte %d: %v", len(rp.Records)+1, off, err)
			break
		}
		if rec.Seq != uint64(len(rp.Records))+1 {
			rp.Truncated = true
			rp.Kind = CorruptSeq
			rp.Reason = fmt.Sprintf("sequence break at byte %d: record claims seq %d, want %d",
				off, rec.Seq, len(rp.Records)+1)
			break
		}
		rp.Records = append(rp.Records, *rec)
		off += nl + 1
		rp.GoodSize = int64(off)
	}
	return rp, nil
}

// Journal is an open write-ahead journal positioned for append. Every
// Append is fsync'd before it returns, so an acknowledged record
// survives a crash or power loss.
type Journal struct {
	f    *os.File
	path string
	seq  uint64
	// off is the byte offset of the clean end of the journal: just past
	// the last fully acknowledged record. Failed appends truncate back
	// to it so a write-time error never leaves a torn tail for the next
	// Scan to misreport as corruption.
	off int64
}

// Open scans the journal at path (creating it if absent), truncates any
// torn or corrupt tail so the file is a clean prefix of valid records,
// and returns the journal ready for append together with the replay of
// what survived. Callers decide what a truncated tail means; Open only
// guarantees the file is consistent afterwards.
func Open(path string) (*Journal, *Replay, error) {
	rp, err := Scan(path)
	if err != nil {
		return nil, nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o666)
	if err != nil {
		return nil, nil, fmt.Errorf("journal: opening %s: %w", path, err)
	}
	if rp.GoodSize < rp.TotalSize {
		// Drop the bad tail, durably, before anything is appended
		// after it.
		if err := f.Truncate(rp.GoodSize); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("journal: truncating %s to byte %d: %w", path, rp.GoodSize, err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("journal: syncing %s: %w", path, err)
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("journal: seeking %s: %w", path, err)
	}
	// Make the directory entry itself durable: a freshly created
	// journal must not vanish with a power loss after its first
	// acknowledged append.
	if err := SyncDir(filepath.Dir(path)); err != nil {
		f.Close()
		return nil, nil, err
	}
	return &Journal{f: f, path: path, seq: uint64(len(rp.Records)), off: rp.GoodSize}, rp, nil
}

// Seq returns the sequence number of the last appended record (0 when
// the journal is empty).
func (j *Journal) Seq() uint64 { return j.seq }

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Size returns the byte offset of the clean end of the journal: every
// acknowledged record, replayed and appended alike. Callers meter
// bytes written in a session as the delta between two Size calls.
func (j *Journal) Size() int64 { return j.off }

// Append frames body as the next record, writes it, and fsyncs the file
// before returning the record's sequence number. Failures are surfaced
// distinctly — ErrDiskFull for ENOSPC/EDQUOT, ErrShortWrite for a torn
// write observed at write time — and in both cases the partial tail is
// truncated back to the last acknowledged record before Append returns,
// so the caller may retry the same record and a concurrent crash still
// recovers a clean journal. The in-memory sequence number advances only
// on full success.
func (j *Journal) Append(typ string, body any) (uint64, error) {
	line, err := EncodeRecord(j.seq+1, typ, body)
	if err != nil {
		return 0, err
	}
	// The write failpoint decides what reaches the kernel: the full
	// line, a torn prefix (plus an error), or a bit-flipped copy.
	toWrite, injected := fpAppendWrite.InjectWrite(line)
	n, werr := j.f.Write(toWrite)
	if werr == nil && injected != nil {
		// Injected torn write: the prefix landed, now surface the error
		// the real kernel would have returned.
		werr = injected
	}
	if cerr := classifyWriteErr(werr, n, len(line)); cerr != nil {
		if herr := j.truncateTail(); herr != nil {
			return 0, fmt.Errorf("journal: appending to %s: %w (and healing tail failed: %v)", j.path, cerr, herr)
		}
		return 0, fmt.Errorf("journal: appending to %s: %w", j.path, cerr)
	}
	serr := fpAppendSync.Inject()
	if serr == nil {
		serr = j.f.Sync()
	}
	if serr != nil {
		// The record may or may not be durable; drop it so the journal
		// stays a clean prefix of acknowledged records. Record bodies
		// are deterministic, so a retry rewrites identical content.
		if isDiskFull(serr) {
			serr = fmt.Errorf("%w: %v", ErrDiskFull, serr)
		}
		if herr := j.truncateTail(); herr != nil {
			return 0, fmt.Errorf("journal: syncing %s: %w (and healing tail failed: %v)", j.path, serr, herr)
		}
		return 0, fmt.Errorf("journal: syncing %s: %w", j.path, serr)
	}
	j.seq++
	j.off += int64(len(toWrite))
	return j.seq, nil
}

// truncateTail durably discards any partially written record, restoring
// the file to the last acknowledged offset. Truncate does not move the
// file offset, so it must seek back explicitly or the next append would
// leave a hole of zero bytes.
func (j *Journal) truncateTail() error {
	if err := j.f.Truncate(j.off); err != nil {
		return err
	}
	if err := j.f.Sync(); err != nil {
		return err
	}
	_, err := j.f.Seek(j.off, io.SeekStart)
	return err
}

// Close closes the journal file.
func (j *Journal) Close() error { return j.f.Close() }
