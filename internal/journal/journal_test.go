package journal

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

type payload struct {
	N int    `json:"n"`
	S string `json:"s"`
}

func openT(t *testing.T, path string) (*Journal, *Replay) {
	t.Helper()
	j, rp, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	return j, rp
}

func TestAppendScanRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "campaign.wal")
	j, rp := openT(t, path)
	if rp.Truncated || len(rp.Records) != 0 {
		t.Fatalf("fresh journal replay: %+v", rp)
	}
	for i := 1; i <= 10; i++ {
		seq, err := j.Append("item", payload{N: i, S: strings.Repeat("x", i)})
		if err != nil {
			t.Fatal(err)
		}
		if seq != uint64(i) {
			t.Fatalf("seq %d, want %d", seq, i)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	rp2, err := Scan(path)
	if err != nil {
		t.Fatal(err)
	}
	if rp2.Truncated || len(rp2.Records) != 10 {
		t.Fatalf("replay: truncated=%v records=%d", rp2.Truncated, len(rp2.Records))
	}
	for i, rec := range rp2.Records {
		if rec.Seq != uint64(i+1) || rec.Type != "item" {
			t.Fatalf("record %d: %+v", i, rec)
		}
	}
	if rp2.GoodSize != rp2.TotalSize {
		t.Errorf("GoodSize %d != TotalSize %d on a clean journal", rp2.GoodSize, rp2.TotalSize)
	}
}

func TestReopenContinuesSequence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "campaign.wal")
	j, _ := openT(t, path)
	j.Append("a", payload{N: 1})
	j.Close()

	j2, rp := openT(t, path)
	if len(rp.Records) != 1 || j2.Seq() != 1 {
		t.Fatalf("reopen: records=%d seq=%d", len(rp.Records), j2.Seq())
	}
	if _, err := j2.Append("a", payload{N: 2}); err != nil {
		t.Fatal(err)
	}
	j2.Close()

	rp2, err := Scan(path)
	if err != nil || len(rp2.Records) != 2 {
		t.Fatalf("after reopen append: %v, %d records", err, len(rp2.Records))
	}
}

func TestTornTailIsTruncatedOnOpen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "campaign.wal")
	j, _ := openT(t, path)
	j.Append("a", payload{N: 1})
	j.Append("a", payload{N: 2})
	j.Close()

	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: half a record, no newline.
	if err := os.WriteFile(path, append(append([]byte{}, good...), []byte(`{"seq":3,"ty`)...), 0o666); err != nil {
		t.Fatal(err)
	}

	j2, rp := openT(t, path)
	defer j2.Close()
	if !rp.Truncated || rp.Kind != CorruptTorn {
		t.Fatalf("torn tail not detected: %+v", rp)
	}
	if len(rp.Records) != 2 || rp.GoodSize != int64(len(good)) {
		t.Fatalf("salvage: %d records, GoodSize %d want %d", len(rp.Records), rp.GoodSize, len(good))
	}
	// Open must have truncated the tail.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, good) {
		t.Errorf("tail not truncated: %d bytes, want %d", len(data), len(good))
	}
	// And appending after recovery continues the good sequence.
	if seq, err := j2.Append("a", payload{N: 3}); err != nil || seq != 3 {
		t.Fatalf("append after recovery: seq=%d err=%v", seq, err)
	}
}

func TestFlippedCRCByteStopsReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "campaign.wal")
	j, _ := openT(t, path)
	j.Append("a", payload{N: 1, S: "first"})
	j.Append("a", payload{N: 2, S: "second"})
	j.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte inside the second record's body.
	idx := bytes.LastIndex(data, []byte("second"))
	data[idx] ^= 0x20
	if err := os.WriteFile(path, data, 0o666); err != nil {
		t.Fatal(err)
	}

	rp, err := Scan(path)
	if err != nil {
		t.Fatal(err)
	}
	if !rp.Truncated || rp.Kind != CorruptCRC {
		t.Fatalf("flipped byte not classified as CRC corruption: %+v", rp)
	}
	if len(rp.Records) != 1 || rp.Records[0].Seq != 1 {
		t.Fatalf("salvage kept %d records, want the 1 before the corruption", len(rp.Records))
	}
	if !strings.Contains(rp.Reason, "CRC32C mismatch") {
		t.Errorf("reason does not explain the corruption: %q", rp.Reason)
	}
}

func TestSequenceBreakStopsReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "campaign.wal")
	j, _ := openT(t, path)
	j.Append("a", payload{N: 1})
	j.Close()

	// Append a record with a skipped sequence number (valid CRC).
	line, err := EncodeRecord(5, "a", payload{N: 5})
	if err != nil {
		t.Fatal(err)
	}
	f, _ := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o666)
	f.Write(line)
	f.Close()

	rp, err := Scan(path)
	if err != nil {
		t.Fatal(err)
	}
	if !rp.Truncated || rp.Kind != CorruptSeq || len(rp.Records) != 1 {
		t.Fatalf("sequence break not detected: %+v", rp)
	}
}

func TestScanMissingFile(t *testing.T) {
	rp, err := Scan(filepath.Join(t.TempDir(), "nope.wal"))
	if err != nil {
		t.Fatal(err)
	}
	if rp.Truncated || len(rp.Records) != 0 || rp.TotalSize != 0 {
		t.Fatalf("missing file replay: %+v", rp)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	for _, line := range []string{
		``,
		`not json`,
		`{"seq":1,"type":"","crc":"00000000","body":{}}`,
		`{"seq":1,"type":"a","crc":"zzzz","body":{}}`,
		`{"seq":1,"type":"a","crc":"00000000"}`,
		`{"seq":1,"type":"a","crc":"00000000","body":{}} trailing`,
	} {
		if _, err := DecodeRecord([]byte(line)); err == nil {
			t.Errorf("accepted %q", line)
		}
	}
}

func TestWriteFileAtomicReplaces(t *testing.T) {
	path := filepath.Join(t.TempDir(), "artifact.json")
	if err := WriteFileAtomic(path, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(path, []byte("v2-longer")); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil || string(data) != "v2-longer" {
		t.Fatalf("read back %q, %v", data, err)
	}
	// No temp droppings.
	entries, _ := os.ReadDir(filepath.Dir(path))
	if len(entries) != 1 {
		t.Errorf("%d directory entries after atomic writes, want 1", len(entries))
	}
}

func TestSumRoundTripAndCorruption(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "stl.json")
	data := []byte(`{"ptps":[]}`)
	if err := WriteFileAtomic(path, data); err != nil {
		t.Fatal(err)
	}

	// No sidecar yet.
	if err := VerifyFileSum(path); err == nil || !strings.Contains(err.Error(), "no checksum sidecar") {
		t.Fatalf("missing sidecar: %v", err)
	}

	if err := WriteSum(path, data); err != nil {
		t.Fatal(err)
	}
	if err := VerifyFileSum(path); err != nil {
		t.Fatalf("clean artifact flagged: %v", err)
	}

	// Corrupt the artifact: CRC mismatch, explicit diagnostic.
	bad := append([]byte{}, data...)
	bad[2] ^= 0xff
	os.WriteFile(path, bad, 0o666)
	if err := VerifyFileSum(path); err == nil || !strings.Contains(err.Error(), "corrupted") {
		t.Fatalf("corruption not detected: %v", err)
	}

	// Truncate the artifact: size mismatch diagnostic.
	os.WriteFile(path, data[:4], 0o666)
	if err := VerifyFileSum(path); err == nil || !strings.Contains(err.Error(), "size") {
		t.Fatalf("truncation not detected: %v", err)
	}
}
