package journal

import (
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
)

// ErrNoSum reports that an artifact has no checksum sidecar (written by
// an older version, or by hand). Callers typically tolerate it.
var ErrNoSum = errors.New("no checksum sidecar")

// SumPath returns the checksum sidecar path for an artifact.
func SumPath(path string) string { return path + ".sum" }

// WriteSum writes path's checksum sidecar ("<path>.sum"), recording the
// CRC32C and byte size of data. The sidecar itself is written with
// WriteFileAtomic so it is never torn.
//
// Sidecar format (one line): "crc32c=XXXXXXXX size=N  name\n".
func WriteSum(path string, data []byte) error {
	line := fmt.Sprintf("crc32c=%08x size=%d  %s\n",
		crc32.Checksum(data, castagnoli), len(data), filepath.Base(path))
	return WriteFileAtomic(SumPath(path), []byte(line))
}

// VerifyFileSum checks an artifact against its checksum sidecar. It
// returns nil when the checksum and size match, an error wrapping
// ErrNoSum when the sidecar is missing, and a descriptive error on any
// mismatch (corrupt artifact, corrupt sidecar, or size drift).
func VerifyFileSum(path string) error {
	sumData, err := os.ReadFile(SumPath(path))
	if os.IsNotExist(err) {
		return fmt.Errorf("journal: %s: %w", path, ErrNoSum)
	}
	if err != nil {
		return fmt.Errorf("journal: reading %s: %w", SumPath(path), err)
	}
	var wantCRC uint32
	var wantSize int64
	line := strings.TrimSpace(string(sumData))
	if n, err := fmt.Sscanf(line, "crc32c=%08x size=%d", &wantCRC, &wantSize); n != 2 || err != nil {
		return fmt.Errorf("journal: %s: malformed checksum sidecar %q", path, line)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("journal: reading %s: %w", path, err)
	}
	if int64(len(data)) != wantSize {
		return fmt.Errorf("journal: %s: size %d, sidecar records %d (artifact truncated or rewritten without its checksum)",
			path, len(data), wantSize)
	}
	if got := crc32.Checksum(data, castagnoli); got != wantCRC {
		return fmt.Errorf("journal: %s: CRC32C %08x, sidecar records %08x (artifact corrupted)",
			path, got, wantCRC)
	}
	return nil
}
