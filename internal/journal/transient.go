package journal

import (
	"context"
	"errors"
)

// IsTransient reports whether err is an environmental, retry-worthy
// condition — an overload shed, an expired deadline or cancellation, a
// full disk — rather than journal corruption or a logic error. The
// distinction drives how callers react to a failed campaign step: a
// transient failure before a record committed means "resume and retry
// later" (the journal is a clean prefix of valid records, nothing needs
// quarantining or fsck), while CRC mismatches, torn records and other
// errors mean the bytes themselves are suspect.
//
// Overload sheds are recognized structurally, by a Transient() bool
// method on any error in the chain (overload.ErrOverloaded carries
// one): this package sits below internal/overload and must not import
// it. Wrapped errors are unwrapped via errors.Is/errors.As.
func IsTransient(err error) bool {
	var te interface{ Transient() bool }
	if errors.As(err, &te) && te.Transient() {
		return true
	}
	return errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, context.Canceled) ||
		errors.Is(err, ErrDiskFull)
}
