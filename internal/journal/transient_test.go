package journal_test

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"gpustl/internal/journal"
	"gpustl/internal/overload"
)

// External test package: journal itself must not import overload (obs
// sits between them), but the test proves the structural Transient()
// classification still recognizes the real sentinel.
func TestIsTransient(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"overload shed", overload.ErrOverloaded, true},
		{"wrapped overload shed", fmt.Errorf("run: campaign shed: %w", overload.ErrOverloaded), true},
		{"deadline", context.DeadlineExceeded, true},
		{"canceled", context.Canceled, true},
		{"disk full", journal.ErrDiskFull, true},
		{"wrapped disk full", fmt.Errorf("append: %w", journal.ErrDiskFull), true},
		{"crc mismatch", journal.ErrCRC, false},
		{"short write", journal.ErrShortWrite, false},
		{"plain error", errors.New("stage exploded"), false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := journal.IsTransient(tc.err); got != tc.want {
				t.Fatalf("IsTransient(%v) = %v, want %v", tc.err, got, tc.want)
			}
		})
	}
}
