package netlist

import (
	"math/rand"
	"testing"
)

// benchCircuit is the shared workload of the evaluator benchmarks: one
// random 3000-gate DAG, reused across widths so ns/op is comparable
// between BenchmarkEvalRun and every BenchmarkEvalRunWide width.
func benchCircuit(b *testing.B) *Netlist {
	b.Helper()
	return randomCircuit(b, rand.New(rand.NewSource(7)), 96, 3000)
}

func benchEvalRun(b *testing.B, w int) {
	nl := benchCircuit(b)
	ev, err := NewEvaluatorWide(nl, w)
	if err != nil {
		b.Fatal(err)
	}
	r := rand.New(rand.NewSource(11))
	in := make([]uint64, len(nl.Inputs)*w)
	for i := range in {
		in[i] = r.Uint64()
	}
	b.SetBytes(int64(len(nl.Gates) * w * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ev.Run(in); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(64*w), "patterns/block")
}

// BenchmarkEvalRun sweeps one 64-pattern block through the compiled
// levelized SoA plan (W = 1).
func BenchmarkEvalRun(b *testing.B) { benchEvalRun(b, 1) }

// BenchmarkEvalRunWide sweeps wide blocks (W words = 64×W patterns per
// sweep) through the same plan; per-pattern throughput should rise with
// W until the value arrays fall out of cache.
func BenchmarkEvalRunWide(b *testing.B) {
	b.Run("w4", func(b *testing.B) { benchEvalRun(b, 4) })
	b.Run("w8", func(b *testing.B) { benchEvalRun(b, 8) })
	b.Run("w16", func(b *testing.B) { benchEvalRun(b, 16) })
}
