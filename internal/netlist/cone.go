package netlist

import "math/bits"

// ConeInfo caches per-gate cone metadata used by the fault simulator's
// cone-aware scheduling: for every gate, the set of primary inputs that
// can influence the detection of a fault at that gate (the input support
// of every primary output reachable from it), and the first reachable
// primary-output index (a stable key for grouping faults with overlapping
// cones). It is built once per Netlist on first use and is immutable
// afterwards, so it is safe to share across goroutines.
type ConeInfo struct {
	// Words is the uint64 width of each DetSupp row: one bit per primary
	// input, in Netlist.Inputs order.
	Words int

	detSupp  []uint64 // len(Gates)×Words rows
	firstOut []int32  // smallest reachable output index, or -1

	// Cone-equivalence classes: gates with identical detection-support
	// rows share a class. Faults in one class have detection functions
	// over the same primary-input subset, so a stimulus block whose
	// projection onto that subset repeats an earlier block's yields the
	// same detection mask for every fault in the class.
	classOf     []int32   // class id per gate
	classInputs [][]int32 // primary-input indices per class (support set)
}

// DetSupp returns the detection-support bitset of a gate: bit i is set
// when primary input i can influence some primary output reachable from
// the gate. If none of these inputs changed between two Run blocks, both
// the fault's activation and its detection mask are unchanged. The
// returned slice must not be mutated.
func (ci *ConeInfo) DetSupp(gate int32) []uint64 {
	return ci.detSupp[int(gate)*ci.Words : (int(gate)+1)*ci.Words]
}

// FirstOut returns the smallest primary-output index reachable from the
// gate, or -1 when the gate reaches no output (its faults are undetectable).
func (ci *ConeInfo) FirstOut(gate int32) int32 { return ci.firstOut[gate] }

// Intersects reports whether changed (a Words-wide primary-input bitset)
// overlaps the gate's detection support.
func (ci *ConeInfo) Intersects(gate int32, changed []uint64) bool {
	row := ci.detSupp[int(gate)*ci.Words : (int(gate)+1)*ci.Words]
	for w, c := range changed {
		if row[w]&c != 0 {
			return true
		}
	}
	return false
}

// SupportSize returns the number of primary inputs in the gate's
// detection support.
func (ci *ConeInfo) SupportSize(gate int32) int {
	n := 0
	for _, w := range ci.DetSupp(gate) {
		n += bits.OnesCount64(w)
	}
	return n
}

// NumClasses returns the number of cone-equivalence classes.
func (ci *ConeInfo) NumClasses() int { return len(ci.classInputs) }

// NumGatesIndexed returns how many gates the cone index covers (the
// netlist's gate count at build time); callers validating externally
// supplied gate ids can bounds-check against it.
func (ci *ConeInfo) NumGatesIndexed() int { return len(ci.classOf) }

// ClassOf returns the gate's cone-equivalence class id.
func (ci *ConeInfo) ClassOf(gate int32) int32 { return ci.classOf[gate] }

// ClassInputs returns the primary-input indices (ascending) that form a
// class's detection support. The returned slice must not be mutated.
func (ci *ConeInfo) ClassInputs(class int32) []int32 { return ci.classInputs[class] }

// Cone returns the lazily built cone metadata for the netlist.
func (n *Netlist) Cone() *ConeInfo {
	n.coneOnce.Do(func() { n.cone = buildCone(n) })
	return n.cone
}

func buildCone(n *Netlist) *ConeInfo {
	ng := len(n.Gates)
	words := (len(n.Inputs) + 63) / 64
	ci := &ConeInfo{
		Words:    words,
		detSupp:  make([]uint64, ng*words),
		firstOut: make([]int32, ng),
	}

	// Forward pass over the topological order: fsupp(g) = primary inputs
	// reaching g. DFF inputs are not combinational dependencies (levelize
	// treats a DFF as a level-0 source), so they contribute nothing here.
	inBit := make([]int32, ng)
	for i := range inBit {
		inBit[i] = -1
	}
	for i, net := range n.Inputs {
		inBit[net] = int32(i)
	}
	fsupp := make([]uint64, ng*words)
	for _, id := range n.order {
		g := &n.Gates[id]
		row := fsupp[int(id)*words : (int(id)+1)*words]
		if b := inBit[id]; b >= 0 {
			row[b/64] |= 1 << uint(b%64)
		}
		if g.Kind == KDFF {
			continue
		}
		for p := 0; p < g.NumIn(); p++ {
			src := fsupp[int(g.In[p])*words : (int(g.In[p])+1)*words]
			for w := range row {
				row[w] |= src[w]
			}
		}
	}

	// Seed outputs: a fault at output net o is observed through o itself,
	// whose value depends on fsupp(o). A net listed several times keeps the
	// smallest output index.
	for i := range ci.firstOut {
		ci.firstOut[i] = -1
	}
	for oi, o := range n.Outputs {
		row := ci.detSupp[int(o)*words : (int(o)+1)*words]
		src := fsupp[int(o)*words : (int(o)+1)*words]
		for w := range row {
			row[w] |= src[w]
		}
		if ci.firstOut[o] < 0 {
			ci.firstOut[o] = int32(oi)
		}
	}

	// Reverse topological pass: dsupp(g) ∪= dsupp(c) for every consumer c.
	// Consumers sit at strictly higher levels, so walking the order
	// backwards sees them finalized. Fanout edges into DFF data pins were
	// never recorded, matching the combinational-only detection semantics.
	for i := len(n.order) - 1; i >= 0; i-- {
		id := n.order[i]
		row := ci.detSupp[int(id)*words : (int(id)+1)*words]
		for _, c := range n.fanout[id] {
			src := ci.detSupp[int(c)*words : (int(c)+1)*words]
			for w := range row {
				row[w] |= src[w]
			}
			if fo := ci.firstOut[c]; fo >= 0 && (ci.firstOut[id] < 0 || fo < ci.firstOut[id]) {
				ci.firstOut[id] = fo
			}
		}
	}

	// Group gates by identical detection-support rows into classes:
	// hash-bucketed with exact row comparison against a representative
	// gate, so hash collisions can never merge distinct classes.
	ci.classOf = make([]int32, ng)
	byHash := map[uint64][]int32{} // row hash -> candidate class ids
	classRep := []int32{}          // representative gate per class
	for id := 0; id < ng; id++ {
		row := ci.detSupp[id*words : (id+1)*words]
		h := uint64(14695981039346656037)
		for _, w := range row {
			h ^= w
			h *= 1099511628211
		}
		class := int32(-1)
		for _, cand := range byHash[h] {
			rep := ci.detSupp[int(classRep[cand])*words : (int(classRep[cand])+1)*words]
			same := true
			for w := range row {
				if row[w] != rep[w] {
					same = false
					break
				}
			}
			if same {
				class = cand
				break
			}
		}
		if class < 0 {
			class = int32(len(classRep))
			classRep = append(classRep, int32(id))
			byHash[h] = append(byHash[h], class)
		}
		ci.classOf[id] = class
	}
	ci.classInputs = make([][]int32, len(classRep))
	for class, rep := range classRep {
		row := ci.detSupp[int(rep)*words : (int(rep)+1)*words]
		var ins []int32
		for w, v := range row {
			for v != 0 {
				b := bits.TrailingZeros64(v)
				ins = append(ins, int32(w*64+b))
				v &= v - 1
			}
		}
		ci.classInputs[class] = ins
	}
	return ci
}
