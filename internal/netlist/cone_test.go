package netlist

import (
	"math"
	"math/rand"
	"testing"
)

// bruteDetSupp computes a gate's detection support with an independent
// recursive reachability: outputs reachable from g via fanout, then the
// union of their input cones via fan-in recursion.
func bruteDetSupp(nl *Netlist, gate int32) (support map[int32]bool, firstOut int32) {
	reached := map[int32]bool{gate: true}
	stack := []int32{gate}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, c := range nl.Fanout(id) {
			if !reached[c] {
				reached[c] = true
				stack = append(stack, c)
			}
		}
	}
	isInput := map[int32]bool{}
	for _, in := range nl.Inputs {
		isInput[in] = true
	}
	support = map[int32]bool{}
	var fanin func(id int32, seen map[int32]bool)
	fanin = func(id int32, seen map[int32]bool) {
		if seen[id] {
			return
		}
		seen[id] = true
		if isInput[id] {
			support[id] = true
		}
		g := nl.Gates[id]
		if g.Kind == KDFF {
			return
		}
		for p := 0; p < g.NumIn(); p++ {
			fanin(g.In[p], seen)
		}
	}
	firstOut = -1
	for oi, o := range nl.Outputs {
		if reached[o] {
			if firstOut < 0 {
				firstOut = int32(oi)
			}
			fanin(o, map[int32]bool{})
		}
	}
	return support, firstOut
}

// TestConeMatchesBruteForce checks DetSupp and FirstOut on random
// circuits against the recursive reachability oracle.
func TestConeMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	for trial := 0; trial < 10; trial++ {
		nl := randomCircuit(t, r, 4+r.Intn(10), 20+r.Intn(120))
		ci := nl.Cone()
		inPos := map[int32]int{}
		for i, net := range nl.Inputs {
			inPos[net] = i
		}
		for gid := range nl.Gates {
			want, wantFirst := bruteDetSupp(nl, int32(gid))
			if got := ci.FirstOut(int32(gid)); got != wantFirst {
				t.Fatalf("trial %d gate %d: FirstOut %d want %d", trial, gid, got, wantFirst)
			}
			row := ci.DetSupp(int32(gid))
			for net, i := range inPos {
				got := row[i/64]>>uint(i%64)&1 == 1
				if got != want[net] {
					t.Fatalf("trial %d gate %d input %d (net %d): in support %v want %v",
						trial, gid, i, net, got, want[net])
				}
			}
			if got, want := ci.SupportSize(int32(gid)), len(want); got != want {
				t.Fatalf("trial %d gate %d: SupportSize %d want %d", trial, gid, got, want)
			}
		}
	}
}

// TestConeSkipInvariant checks the property the fault simulator's
// cone-skip relies on: changing only inputs outside a gate's detection
// support changes neither the fault's activation nor its detection mask.
func TestConeSkipInvariant(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	for trial := 0; trial < 10; trial++ {
		nl := randomCircuit(t, r, 6+r.Intn(8), 30+r.Intn(120))
		ci := nl.Cone()
		ev := mustEval(t, nl)
		base := make([]uint64, len(nl.Inputs))
		for i := range base {
			base[i] = r.Uint64()
		}
		for probe := 0; probe < 30; probe++ {
			gid := int32(r.Intn(len(nl.Gates)))
			g := nl.Gates[gid]
			pin := int8(-1)
			if n := g.NumIn(); n > 0 && r.Intn(2) == 0 {
				pin = int8(r.Intn(n))
			}
			f := FaultSite{Gate: gid, Pin: pin, SA1: r.Intn(2) == 1}

			mustRun(t, ev, base)
			wantDelta := ev.SiteDelta(f)
			wantDet := ev.FaultDetect(f)

			// Scramble every input outside the detection support.
			row := ci.DetSupp(gid)
			mutated := append([]uint64(nil), base...)
			for i := range mutated {
				if row[i/64]>>uint(i%64)&1 == 0 {
					mutated[i] = r.Uint64()
				}
			}
			mustRun(t, ev, mutated)
			// SiteDelta invariance holds only for gates that reach an
			// output (fsupp(g) ⊆ dsupp(g) needs a reachable output);
			// elsewhere the cone-skip relies solely on detection staying 0.
			if got := ev.SiteDelta(f); ci.FirstOut(gid) >= 0 && got != wantDelta {
				t.Fatalf("trial %d fault %v: SiteDelta changed %#x -> %#x on out-of-cone input change",
					trial, f, wantDelta, got)
			}
			if got := ev.FaultDetect(f); got != wantDet {
				t.Fatalf("trial %d fault %v: detection changed %#x -> %#x on out-of-cone input change",
					trial, f, wantDet, got)
			}
		}
	}
}

// TestSiteDeltaSubset checks that SiteDelta==0 implies no detection and
// that the detection mask is always a bitwise subset of the site delta —
// the two facts the activation pre-screen rests on.
func TestSiteDeltaSubset(t *testing.T) {
	r := rand.New(rand.NewSource(47))
	for trial := 0; trial < 10; trial++ {
		nl := randomCircuit(t, r, 4+r.Intn(10), 30+r.Intn(150))
		ev := mustEval(t, nl)
		inputs := make([]uint64, len(nl.Inputs))
		for i := range inputs {
			inputs[i] = r.Uint64()
		}
		mustRun(t, ev, inputs)
		for probe := 0; probe < 60; probe++ {
			gid := int32(r.Intn(len(nl.Gates)))
			g := nl.Gates[gid]
			pin := int8(-1)
			if n := g.NumIn(); n > 0 && r.Intn(2) == 0 {
				pin = int8(r.Intn(n))
			}
			f := FaultSite{Gate: gid, Pin: pin, SA1: r.Intn(2) == 1}
			delta := ev.SiteDelta(f)
			det := ev.FaultDetect(f)
			if det&^delta != 0 {
				t.Fatalf("trial %d fault %v: detection %#x not a subset of delta %#x", trial, f, det, delta)
			}
			if masked := ev.FaultDetectDelta(f, delta&0xffff); masked&^0xffff != 0 || masked != det&0xffff {
				t.Fatalf("trial %d fault %v: masked delta gave %#x want %#x", trial, f, masked, det&0xffff)
			}
		}
	}
}

// TestObsFactorsDetection checks the exact factorization the optimized
// engine's detection path relies on: for every gate, Obs equals the
// detection mask of an all-ones flip, and for arbitrary faults
// FaultDetect == SiteDelta & Obs. Obs answers are memoized per block, so
// every gate is probed twice (cold and warm) and across two Run blocks
// to catch stale-memo bugs.
func TestObsFactorsDetection(t *testing.T) {
	r := rand.New(rand.NewSource(59))
	for trial := 0; trial < 10; trial++ {
		nl := randomCircuit(t, r, 4+r.Intn(10), 30+r.Intn(150))
		ev := mustEval(t, nl)
		ref := mustEval(t, nl) // reference: never touched by Obs memoization
		inputs := make([]uint64, len(nl.Inputs))
		for block := 0; block < 2; block++ {
			for i := range inputs {
				inputs[i] = r.Uint64()
			}
			mustRun(t, ev, inputs)
			mustRun(t, ref, inputs)
			for round := 0; round < 2; round++ {
				for gid := range nl.Gates {
					want := ref.FaultDetectDelta(FaultSite{Gate: int32(gid), Pin: -1}, ^uint64(0))
					if got := ev.Obs(int32(gid)); got != want {
						t.Fatalf("trial %d block %d round %d gate %d: Obs %#x want %#x",
							trial, block, round, gid, got, want)
					}
				}
			}
			for probe := 0; probe < 60; probe++ {
				gid := int32(r.Intn(len(nl.Gates)))
				g := nl.Gates[gid]
				pin := int8(-1)
				if n := g.NumIn(); n > 0 && r.Intn(2) == 0 {
					pin = int8(r.Intn(n))
				}
				f := FaultSite{Gate: gid, Pin: pin, SA1: r.Intn(2) == 1}
				want := ref.FaultDetect(f)
				if got := ev.SiteDelta(f) & ev.Obs(gid); got != want {
					t.Fatalf("trial %d block %d fault %v: delta&Obs %#x want %#x", trial, block, f, got, want)
				}
			}
		}
	}
}

// TestObsEpochWrap forces the uint32 wrap of the per-block memo epoch
// and asserts Run drops every memoized mask.
func TestObsEpochWrap(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	nl := randomCircuit(t, r, 8, 120)
	ev := mustEval(t, nl)
	inputs := make([]uint64, len(nl.Inputs))
	for i := range inputs {
		inputs[i] = r.Uint64()
	}
	mustRun(t, ev, inputs)
	want := make([]uint64, len(nl.Gates))
	for gid := range nl.Gates {
		want[gid] = ev.Obs(int32(gid))
	}

	// Poison: every gate claims a memoized garbage mask in the epoch the
	// wrap restarts at (1). Run must still invalidate all of them.
	for i := range ev.obsStamp {
		ev.obsStamp[i] = 1
		ev.obsVal[i] = r.Uint64()
	}
	ev.obsEpoch = math.MaxUint32 // next Run increments to 0 -> wrap
	mustRun(t, ev, inputs)
	for gid := range nl.Gates {
		if got := ev.Obs(int32(gid)); got != want[gid] {
			t.Fatalf("gate %d after obs epoch wrap: got %#x want %#x", gid, got, want[gid])
		}
	}
}

// TestEpochWrap forces the uint32 epoch wrap inside FaultDetect and
// asserts the stamp/sched arrays are cleared: stale stamps that happen to
// collide with the restarted epoch would otherwise feed garbage faulty
// values into the evaluation.
func TestEpochWrap(t *testing.T) {
	r := rand.New(rand.NewSource(53))
	nl := randomCircuit(t, r, 8, 120)
	ev := mustEval(t, nl)
	inputs := make([]uint64, len(nl.Inputs))
	for i := range inputs {
		inputs[i] = r.Uint64()
	}
	mustRun(t, ev, inputs)

	faults := make([]FaultSite, 0, 32)
	for len(faults) < 32 {
		faults = append(faults, FaultSite{Gate: int32(r.Intn(len(nl.Gates))), Pin: -1, SA1: r.Intn(2) == 1})
	}
	want := make([]uint64, len(faults))
	for i, f := range faults {
		want[i] = ev.FaultDetect(f)
	}

	// Poison the scratch: pretend every net was marked in the epoch the
	// wrap restarts at (1), with garbage faulty values. A wrap that fails
	// to clear stamps would read these as current.
	for i := range ev.stamp {
		ev.stamp[i] = 1
		ev.sched[i] = 1
		ev.faulty[i] = r.Uint64()
	}
	ev.epoch = math.MaxUint32 // next FaultDetect increments to 0 -> wrap

	for i, f := range faults {
		if got := ev.FaultDetect(f); got != want[i] {
			t.Fatalf("fault %v after epoch wrap: got %#x want %#x", f, got, want[i])
		}
	}
	if ev.epoch == 0 || ev.epoch > uint32(len(faults)) {
		t.Fatalf("epoch after wrap = %d, want within [1,%d]", ev.epoch, len(faults))
	}
}
