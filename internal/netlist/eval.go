package netlist

import (
	"errors"
	"fmt"
)

// FaultSite identifies a single stuck-at fault: the output (Pin == -1) or
// an input pin of a gate, stuck at 1 (SA1) or 0.
type FaultSite struct {
	Gate int32
	Pin  int8 // -1 for the output net, 0..2 for input pins
	SA1  bool
}

// String renders the fault in the usual pin/polarity notation.
func (f FaultSite) String() string {
	v := 0
	if f.SA1 {
		v = 1
	}
	if f.Pin < 0 {
		return fmt.Sprintf("g%d.out/sa%d", f.Gate, v)
	}
	return fmt.Sprintf("g%d.in%d/sa%d", f.Gate, f.Pin, v)
}

// Evaluator computes blocks of 64×W patterns at once over a Netlist (one
// pattern per bit of W machine words per net) and evaluates single-
// stuck-at faulty circuits by propagating differences through the
// fault's fan-out cone only. The fault-free sweep runs over the
// netlist's compiled SoA plan: per-level, per-kind tight loops with no
// per-gate dispatch in the inner body.
//
// W (BlockWords) is fixed at construction; net n's good values occupy
// good[n*W : (n+1)*W], pattern p at word p/64, bit p%64 — bit order is
// stream order, so first detections are identical at every width. The
// faulty-cone machinery is deliberately word-granular at every width:
// SiteDeltaAt, ObsAt and FaultDetectDeltaAt operate on one 64-pattern
// word offset of the wide block, so a caller scanning words in order
// stops paying the moment a detection (or a proven zero) appears — most
// faults die in their first active word, and the block's later words are
// only ever touched for the survivors. The offset-free scalar methods
// (SiteDelta, FaultDetect, Obs, Output, Value) are the W == 1
// specialization the reference engine, ATPG and tests use; they require
// a width-1 evaluator.
type Evaluator struct {
	nl   *Netlist
	w    int // words per net value; 64*w patterns per block
	plan *EvalPlan
	gf   []uint64 // combined good|faulty backing: good = gf[:ng*w], faulty = gf[ng*w:]
	good []uint64 // len(Gates)*w, stride w

	// Faulty-cone scratch, reset lazily via epoch stamps. faulty is
	// stride-w: a wide stem propagation (stemObsW) writes whole rows in
	// one cone walk so the scheduling cost amortizes over all W words,
	// while the scalar propagation (W == 1) addresses the same array
	// one word per net.
	faulty []uint64 // stride w
	stamp  []uint32
	sched  []uint32
	epoch  uint32
	bucket [][]int32
	lvls   []int32

	// Per-block observability memo (see Obs/ObsW), one W-word row per
	// net, invalidated by Run via its own epoch.
	obsVal   []uint64 // stride w
	obsStamp []uint32
	obsEpoch uint32
	obsChain []int32
	isOut    []bool

	// Primary-output nets marked in the current faulty epoch; lets the
	// detect scan visit only touched outputs instead of all of them.
	touchedOuts []int32

	flipBuf []uint64 // sensFlipW's flipped-input row, w words

	// stems caches the netlist's static stem cones (fetched on first wide
	// stem fill); see StemCones.
	stems []StemCone
}

// ErrSequential reports that a combinational-only entry point was handed
// a netlist with flip-flops.
var ErrSequential = errors.New("netlist: sequential netlist; use NewSeqEvaluator")

// NewEvaluator creates a width-1 (64 patterns per block) evaluator for a
// combinational netlist. It returns ErrSequential on netlists with
// flip-flops — use NewSeqEvaluator for those.
func NewEvaluator(nl *Netlist) (*Evaluator, error) {
	return NewEvaluatorWide(nl, 1)
}

// MaxBlockWords bounds the evaluator block width: 16 words sweep 1024
// patterns per fault-free evaluation, the widest batch the fault
// engine's auto-tuner selects.
const MaxBlockWords = 16

// NewEvaluatorWide creates an evaluator computing w words (64×w
// patterns) per net per block. w must be in [1, MaxBlockWords].
func NewEvaluatorWide(nl *Netlist, w int) (*Evaluator, error) {
	if nl.NumDFFs() > 0 {
		return nil, fmt.Errorf("netlist: NewEvaluator on %s: %w", nl.Name, ErrSequential)
	}
	if w < 1 || w > MaxBlockWords {
		return nil, fmt.Errorf("netlist: block width %d words outside [1, %d]", w, MaxBlockWords)
	}
	ng := len(nl.Gates)
	// good and faulty share one backing array so compiled stem-cone ops
	// can address either copy as a slot into a single buffer (stemcone.go).
	gf := make([]uint64, 2*ng*w)
	e := &Evaluator{
		nl:       nl,
		w:        w,
		plan:     nl.Plan(),
		gf:       gf,
		good:     gf[: ng*w : ng*w],
		faulty:   gf[ng*w:],
		stamp:    make([]uint32, ng),
		sched:    make([]uint32, ng),
		bucket:   make([][]int32, nl.maxLvl+1),
		obsVal:   make([]uint64, ng*w),
		obsStamp: make([]uint32, ng),
		isOut:    make([]bool, ng),
		flipBuf:  make([]uint64, w),
	}
	for _, o := range nl.Outputs {
		e.isOut[o] = true
	}
	// Constants never change: load their rows once instead of per Run.
	for id, g := range nl.Gates {
		if g.Kind == KConst1 {
			row := e.row(e.good, int32(id))
			for j := range row {
				row[j] = ^uint64(0)
			}
		}
	}
	return e, nil
}

// AcquireEvaluator returns an evaluator of the given block width for this
// netlist, recycled from the netlist's pool when one is available and
// freshly built otherwise. Evaluator scratch is epoch-guarded, so a
// recycled evaluator behaves exactly like a fresh one; pass it back with
// ReleaseEvaluator when done to keep the warm arrays circulating.
func (n *Netlist) AcquireEvaluator(w int) (*Evaluator, error) {
	if w >= 1 && w <= MaxBlockWords {
		if v := n.evPool[w-1].Get(); v != nil {
			return v.(*Evaluator), nil
		}
	}
	return NewEvaluatorWide(n, w)
}

// ReleaseEvaluator returns an evaluator to its netlist's pool. Evaluators
// of other netlists (or nil) are ignored. The caller must not use the
// evaluator after releasing it.
func (n *Netlist) ReleaseEvaluator(e *Evaluator) {
	if e == nil || e.nl != n {
		return
	}
	n.evPool[e.w-1].Put(e)
}

// Netlist returns the circuit under evaluation.
func (e *Evaluator) Netlist() *Netlist { return e.nl }

// BlockWords returns the evaluator's block width in 64-pattern words.
func (e *Evaluator) BlockWords() int { return e.w }

// PatternsPerBlock returns how many patterns one Run sweeps (64×W).
func (e *Evaluator) PatternsPerBlock() int { return 64 * e.w }

// row returns net's w-word value row inside one of the stride-w arrays.
func (e *Evaluator) row(a []uint64, net int32) []uint64 {
	i := int(net) * e.w
	return a[i : i+e.w : i+e.w]
}

func gateFn(k Kind, a, b, s uint64) uint64 {
	switch k {
	case KBuf:
		return a
	case KNot:
		return ^a
	case KAnd:
		return a & b
	case KOr:
		return a | b
	case KXor:
		return a ^ b
	case KNand:
		return ^(a & b)
	case KNor:
		return ^(a | b)
	case KXnor:
		return ^(a ^ b)
	case KMux:
		// In[0]=sel (passed as a), In[1]=lo (b), In[2]=hi (s).
		return (a & s) | (^a & b)
	case KConst1:
		return ^uint64(0)
	}
	return 0 // KConst0, KInput handled by caller
}

// Run evaluates the fault-free circuit for one block of patterns.
// inputs holds W words per primary input, input-major: input i occupies
// inputs[i*W : (i+1)*W], pattern p at word p/64 bit p%64 (with W == 1
// this is the classic one-word-per-input layout). It returns an error
// (leaving the previous evaluation intact) when the input length does
// not match the circuit and block width.
func (e *Evaluator) Run(inputs []uint64) error {
	if len(inputs) != len(e.nl.Inputs)*e.w {
		return fmt.Errorf("netlist: Run got %d input words, circuit %s has %d inputs × %d block words",
			len(inputs), e.nl.Name, len(e.nl.Inputs), e.w)
	}
	e.obsEpoch++
	if e.obsEpoch == 0 { // uint32 wrap: drop every memoized mask for real
		for i := range e.obsStamp {
			e.obsStamp[i] = 0
		}
		e.obsEpoch = 1
	}
	if e.w == 1 {
		for i, net := range e.nl.Inputs {
			e.good[net] = inputs[i]
		}
		e.runScalar()
	} else {
		w := e.w
		for i, net := range e.nl.Inputs {
			copy(e.row(e.good, net), inputs[i*w:(i+1)*w])
		}
		e.runWide()
	}
	return nil
}

// runScalar sweeps the compiled plan at W == 1: one kind dispatch per
// run, then a tight loop with direct good-array indexing.
func (e *Evaluator) runScalar() {
	p := e.plan
	good := e.good
	for ri := range p.runs {
		r := &p.runs[ri]
		out := p.out[r.Start:r.End]
		in0 := p.in0[r.Start:r.End]
		in1 := p.in1[r.Start:r.End]
		in2 := p.in2[r.Start:r.End]
		switch r.Kind {
		case KBuf:
			for i, o := range out {
				good[o] = good[in0[i]]
			}
		case KNot:
			for i, o := range out {
				good[o] = ^good[in0[i]]
			}
		case KAnd:
			for i, o := range out {
				good[o] = good[in0[i]] & good[in1[i]]
			}
		case KOr:
			for i, o := range out {
				good[o] = good[in0[i]] | good[in1[i]]
			}
		case KXor:
			for i, o := range out {
				good[o] = good[in0[i]] ^ good[in1[i]]
			}
		case KNand:
			for i, o := range out {
				good[o] = ^(good[in0[i]] & good[in1[i]])
			}
		case KNor:
			for i, o := range out {
				good[o] = ^(good[in0[i]] | good[in1[i]])
			}
		case KXnor:
			for i, o := range out {
				good[o] = ^(good[in0[i]] ^ good[in1[i]])
			}
		case KMux:
			for i, o := range out {
				s := good[in0[i]]
				good[o] = (s & good[in2[i]]) | (^s & good[in1[i]])
			}
		}
	}
}

// runWide sweeps the compiled plan at W > 1: per run, per gate, a
// branch-free loop over the W words of the operand rows.
func (e *Evaluator) runWide() {
	p := e.plan
	w := e.w
	good := e.good
	for ri := range p.runs {
		r := &p.runs[ri]
		out := p.out[r.Start:r.End]
		in0 := p.in0[r.Start:r.End]
		in1 := p.in1[r.Start:r.End]
		in2 := p.in2[r.Start:r.End]
		switch r.Kind {
		case KBuf:
			for i, o := range out {
				oi, ai := int(o)*w, int(in0[i])*w
				copy(good[oi:oi+w], good[ai:ai+w])
			}
		case KNot:
			for i, o := range out {
				oi, ai := int(o)*w, int(in0[i])*w
				ov, av := good[oi:oi+w:oi+w], good[ai:ai+w:ai+w]
				for j := range ov {
					ov[j] = ^av[j]
				}
			}
		case KAnd:
			for i, o := range out {
				oi, ai, bi := int(o)*w, int(in0[i])*w, int(in1[i])*w
				ov, av, bv := good[oi:oi+w:oi+w], good[ai:ai+w:ai+w], good[bi:bi+w:bi+w]
				for j := range ov {
					ov[j] = av[j] & bv[j]
				}
			}
		case KOr:
			for i, o := range out {
				oi, ai, bi := int(o)*w, int(in0[i])*w, int(in1[i])*w
				ov, av, bv := good[oi:oi+w:oi+w], good[ai:ai+w:ai+w], good[bi:bi+w:bi+w]
				for j := range ov {
					ov[j] = av[j] | bv[j]
				}
			}
		case KXor:
			for i, o := range out {
				oi, ai, bi := int(o)*w, int(in0[i])*w, int(in1[i])*w
				ov, av, bv := good[oi:oi+w:oi+w], good[ai:ai+w:ai+w], good[bi:bi+w:bi+w]
				for j := range ov {
					ov[j] = av[j] ^ bv[j]
				}
			}
		case KNand:
			for i, o := range out {
				oi, ai, bi := int(o)*w, int(in0[i])*w, int(in1[i])*w
				ov, av, bv := good[oi:oi+w:oi+w], good[ai:ai+w:ai+w], good[bi:bi+w:bi+w]
				for j := range ov {
					ov[j] = ^(av[j] & bv[j])
				}
			}
		case KNor:
			for i, o := range out {
				oi, ai, bi := int(o)*w, int(in0[i])*w, int(in1[i])*w
				ov, av, bv := good[oi:oi+w:oi+w], good[ai:ai+w:ai+w], good[bi:bi+w:bi+w]
				for j := range ov {
					ov[j] = ^(av[j] | bv[j])
				}
			}
		case KXnor:
			for i, o := range out {
				oi, ai, bi := int(o)*w, int(in0[i])*w, int(in1[i])*w
				ov, av, bv := good[oi:oi+w:oi+w], good[ai:ai+w:ai+w], good[bi:bi+w:bi+w]
				for j := range ov {
					ov[j] = ^(av[j] ^ bv[j])
				}
			}
		case KMux:
			for i, o := range out {
				oi, si, li, hi := int(o)*w, int(in0[i])*w, int(in1[i])*w, int(in2[i])*w
				ov := good[oi : oi+w : oi+w]
				sv, lv, hv := good[si:si+w:si+w], good[li:li+w:li+w], good[hi:hi+w:hi+w]
				for j := range ov {
					ov[j] = (sv[j] & hv[j]) | (^sv[j] & lv[j])
				}
			}
		}
	}
}

// Output returns the packed good value of primary output i after Run
// (W == 1; wide evaluators use OutputW).
func (e *Evaluator) Output(i int) uint64 { return e.good[e.nl.Outputs[i]] }

// OutputW returns the W-word good value row of primary output i after
// Run. The returned slice must not be mutated.
func (e *Evaluator) OutputW(i int) []uint64 { return e.row(e.good, e.nl.Outputs[i]) }

// Value returns the packed good value of an arbitrary net after Run
// (W == 1; wide evaluators use ValueW).
func (e *Evaluator) Value(net int32) uint64 { return e.good[net] }

// ValueW returns the W-word good value row of an arbitrary net after
// Run. The returned slice must not be mutated.
func (e *Evaluator) ValueW(net int32) []uint64 { return e.row(e.good, net) }

// get reads a net's value under the current faulty epoch (W == 1).
func (e *Evaluator) get(net int32) uint64 {
	if e.stamp[net] == e.epoch {
		return e.faulty[net]
	}
	return e.good[net]
}

// markTouch stamps a net as faulty-valued this epoch (first time only)
// and schedules its consumers; the caller stores the value itself —
// one word for the scalar propagation, a whole row for the wide one.
func (e *Evaluator) markTouch(net int32) {
	if e.stamp[net] == e.epoch {
		return
	}
	e.stamp[net] = e.epoch
	if e.isOut[net] {
		e.touchedOuts = append(e.touchedOuts, net)
	}
	for _, c := range e.nl.fanout[net] {
		if e.sched[c] != e.epoch {
			e.sched[c] = e.epoch
			l := e.nl.level[c]
			if len(e.bucket[l]) == 0 {
				e.pushLvl(l)
			}
			e.bucket[l] = append(e.bucket[l], c)
		}
	}
}

// mark records a faulty value on a net and schedules its consumers
// (W == 1).
func (e *Evaluator) mark(net int32, val uint64) {
	e.markTouch(net)
	e.faulty[net] = val
}

// evalFaulty computes gate id under the current faulty values (W == 1).
// A single switch with direct operand reads: this is the innermost call
// of every scalar cone propagation, so it avoids the generic arity loop
// and scratch array of the gateFn path.
func (e *Evaluator) evalFaulty(id int32) uint64 {
	g := &e.nl.Gates[id]
	switch g.Kind {
	case KBuf:
		return e.get(g.In[0])
	case KNot:
		return ^e.get(g.In[0])
	case KAnd:
		return e.get(g.In[0]) & e.get(g.In[1])
	case KOr:
		return e.get(g.In[0]) | e.get(g.In[1])
	case KXor:
		return e.get(g.In[0]) ^ e.get(g.In[1])
	case KNand:
		return ^(e.get(g.In[0]) & e.get(g.In[1]))
	case KNor:
		return ^(e.get(g.In[0]) | e.get(g.In[1]))
	case KXnor:
		return ^(e.get(g.In[0]) ^ e.get(g.In[1]))
	case KMux:
		s := e.get(g.In[0])
		return (s & e.get(g.In[2])) | (^s & e.get(g.In[1]))
	}
	return e.get(id) // KInput, KConst0, KConst1: sources keep their value
}

// faultyRow returns net's current W-word value row: its faulty row when
// marked this epoch, its fault-free row otherwise.
func (e *Evaluator) faultyRow(net int32) []uint64 {
	if e.stamp[net] == e.epoch {
		return e.row(e.faulty, net)
	}
	return e.row(e.good, net)
}

// gateFnW is gateFn over W-word rows. rows[p] is input pin p's value
// row; dst must not alias any of them.
func gateFnW(k Kind, rows [3][]uint64, dst []uint64) {
	a, b, s := rows[0], rows[1], rows[2]
	switch k {
	case KBuf:
		copy(dst, a)
	case KNot:
		for j := range dst {
			dst[j] = ^a[j]
		}
	case KAnd:
		for j := range dst {
			dst[j] = a[j] & b[j]
		}
	case KOr:
		for j := range dst {
			dst[j] = a[j] | b[j]
		}
	case KXor:
		for j := range dst {
			dst[j] = a[j] ^ b[j]
		}
	case KNand:
		for j := range dst {
			dst[j] = ^(a[j] & b[j])
		}
	case KNor:
		for j := range dst {
			dst[j] = ^(a[j] | b[j])
		}
	case KXnor:
		for j := range dst {
			dst[j] = ^(a[j] ^ b[j])
		}
	case KMux:
		for j := range dst {
			dst[j] = (a[j] & s[j]) | (^a[j] & b[j])
		}
	}
}

// evalFaultyW computes gate id's W-word row under the current faulty
// values into dst, returning the OR of its per-word differences from the
// gate's fault-free row grow (non-zero iff the gate diverged). dst may be
// the gate's own faulty row: a combinational gate never feeds itself, so
// no operand row aliases it. The kind switch fetches exactly the operand
// rows each kind needs and the divergence test rides the same pass that
// writes dst — this is the innermost call of every wide cone propagation,
// and a separate compare loop would re-read both rows.
func (e *Evaluator) evalFaultyW(id int32, dst, grow []uint64) uint64 {
	g := &e.nl.Gates[id]
	var d uint64
	switch g.Kind {
	case KBuf:
		a := e.faultyRow(g.In[0])
		for j := range dst {
			dst[j] = a[j]
			d |= a[j] ^ grow[j]
		}
	case KNot:
		a := e.faultyRow(g.In[0])
		for j := range dst {
			v := ^a[j]
			dst[j] = v
			d |= v ^ grow[j]
		}
	case KAnd:
		a, b := e.faultyRow(g.In[0]), e.faultyRow(g.In[1])
		for j := range dst {
			v := a[j] & b[j]
			dst[j] = v
			d |= v ^ grow[j]
		}
	case KOr:
		a, b := e.faultyRow(g.In[0]), e.faultyRow(g.In[1])
		for j := range dst {
			v := a[j] | b[j]
			dst[j] = v
			d |= v ^ grow[j]
		}
	case KXor:
		a, b := e.faultyRow(g.In[0]), e.faultyRow(g.In[1])
		for j := range dst {
			v := a[j] ^ b[j]
			dst[j] = v
			d |= v ^ grow[j]
		}
	case KNand:
		a, b := e.faultyRow(g.In[0]), e.faultyRow(g.In[1])
		for j := range dst {
			v := ^(a[j] & b[j])
			dst[j] = v
			d |= v ^ grow[j]
		}
	case KNor:
		a, b := e.faultyRow(g.In[0]), e.faultyRow(g.In[1])
		for j := range dst {
			v := ^(a[j] | b[j])
			dst[j] = v
			d |= v ^ grow[j]
		}
	case KXnor:
		a, b := e.faultyRow(g.In[0]), e.faultyRow(g.In[1])
		for j := range dst {
			v := ^(a[j] ^ b[j])
			dst[j] = v
			d |= v ^ grow[j]
		}
	case KMux:
		s, l, h := e.faultyRow(g.In[0]), e.faultyRow(g.In[1]), e.faultyRow(g.In[2])
		for j := range dst {
			v := (s[j] & h[j]) | (^s[j] & l[j])
			dst[j] = v
			d |= v ^ grow[j]
		}
	default: // sources keep their value
		a := e.faultyRow(id)
		for j := range dst {
			dst[j] = a[j]
			d |= a[j] ^ grow[j]
		}
	}
	return d
}

// SiteDelta returns the packed mask of patterns on which the stuck-at
// fault's site output differs from the fault-free value of the last Run —
// the local activation of the fault (W == 1; wide evaluators use
// SiteDeltaAt per word). Gate functions are bitwise, so a bit that is
// zero here stays zero on every downstream net: SiteDelta == 0 proves
// FaultDetect would return 0 without propagating anything, and the
// detection mask is always a bitwise subset of the site delta.
func (e *Evaluator) SiteDelta(f FaultSite) uint64 { return e.SiteDeltaAt(f, 0) }

// SiteDeltaAt is SiteDelta for word offset off of the current wide
// block: the activation mask of patterns off×64 .. off×64+63.
func (e *Evaluator) SiteDeltaAt(f FaultSite, off int) uint64 {
	var sa uint64
	if f.SA1 {
		sa = ^uint64(0)
	}
	w := e.w
	if f.Pin < 0 {
		return sa ^ e.good[int(f.Gate)*w+off]
	}
	// Evaluate the gate under good inputs with the faulty pin forced. This
	// deliberately bypasses getAt(): outside an epoch it would read stale
	// faulty values from the previous propagation.
	g := &e.nl.Gates[f.Gate]
	var v [3]uint64
	for p := 0; p < g.NumIn(); p++ {
		if int8(p) == f.Pin {
			v[p] = sa
		} else {
			v[p] = e.good[int(g.In[p])*w+off]
		}
	}
	return gateFn(g.Kind, v[0], v[1], v[2]) ^ e.good[int(f.Gate)*w+off]
}

// SiteOpKind enumerates the primitive activation functions a compiled
// fault site reduces to (see CompileSiteOp).
type SiteOpKind uint8

const (
	SopBuf     SiteOpKind = iota // delta = good[A]
	SopNot                       // delta = ^good[A]
	SopXor                       // delta = good[A] ^ good[B]
	SopXnor                      // delta = ^(good[A] ^ good[B])
	SopAndXor                    // delta = (good[A] & good[B]) ^ good[C]
	SopAndnXor                   // delta = (^good[A] & good[B]) ^ good[C]
	SopOrXor                     // delta = (good[A] | good[B]) ^ good[C]
	SopOrnXor                    // delta = (^good[A] | good[B]) ^ good[C]
)

// SiteOp is a fault site's activation function compiled to a primitive
// over fault-free net values: evaluating the site's gate with the stuck
// pin forced, then XOR-ing with the fault-free output, algebraically
// simplifies against the constant — an AND with a pin stuck at 0 is
// constant 0, stuck at 1 passes the other input through, and so on. The
// result is one to three loads and a couple of ALU ops per word instead
// of a gate-kind dispatch with a forced-operand loop, which matters
// because the activation pre-screen runs for every fault×word visit of
// the simulation inner loop.
type SiteOp struct {
	A, B, C int32
	Op      SiteOpKind
}

// CompileSiteOp compiles a fault site against its netlist. It must only
// be called with sites that are valid for nl (the fault enumerator's
// output); out-of-range sites panic, exactly as SiteDelta would.
func CompileSiteOp(nl *Netlist, f FaultSite) SiteOp {
	g := f.Gate
	cv := func(one bool) SiteOp { // site output forced to a constant
		if one {
			return SiteOp{Op: SopNot, A: g}
		}
		return SiteOp{Op: SopBuf, A: g}
	}
	if f.Pin < 0 {
		return cv(f.SA1) // delta = sa ^ good[g]
	}
	gt := &nl.Gates[g]
	in := gt.In
	pass := func(src int32, inv bool) SiteOp { // site output = (^)good[src]
		if inv {
			return SiteOp{Op: SopXnor, A: src, B: g}
		}
		return SiteOp{Op: SopXor, A: src, B: g}
	}
	other := int32(-1)
	if gt.NumIn() == 2 {
		other = in[1-f.Pin]
	}
	switch gt.Kind {
	case KBuf:
		return cv(f.SA1) // forced input passes straight through
	case KNot:
		return cv(!f.SA1)
	case KAnd:
		if !f.SA1 {
			return cv(false)
		}
		return pass(other, false)
	case KOr:
		if f.SA1 {
			return cv(true)
		}
		return pass(other, false)
	case KNand:
		if !f.SA1 {
			return cv(true)
		}
		return pass(other, true)
	case KNor:
		if f.SA1 {
			return cv(false)
		}
		return pass(other, true)
	case KXor:
		return pass(other, f.SA1)
	case KXnor:
		return pass(other, !f.SA1)
	case KMux:
		sel, lo, hi := in[0], in[1], in[2]
		switch f.Pin {
		case 0: // forced select picks one data input
			if f.SA1 {
				return pass(hi, false)
			}
			return pass(lo, false)
		case 1: // lo forced: sa0 → sel&hi, sa1 → ^sel|hi
			if f.SA1 {
				return SiteOp{Op: SopOrnXor, A: sel, B: hi, C: g}
			}
			return SiteOp{Op: SopAndXor, A: sel, B: hi, C: g}
		default: // hi forced: sa0 → ^sel&lo, sa1 → sel|lo
			if f.SA1 {
				return SiteOp{Op: SopOrXor, A: sel, B: lo, C: g}
			}
			return SiteOp{Op: SopAndnXor, A: sel, B: lo, C: g}
		}
	}
	// Pin faults cannot exist on source gates (no input pins); fall back
	// to the constant form so a malformed site still yields SiteDelta's
	// answer for an un-evaluated source (good[g] itself).
	return cv(f.SA1)
}

// SiteOpDeltaAt evaluates a compiled site op for word offset off of the
// current block: the activation mask SiteDeltaAt would return for the
// fault the op was compiled from.
func (e *Evaluator) SiteOpDeltaAt(op SiteOp, off int) uint64 {
	w := e.w
	good := e.good
	switch op.Op {
	case SopBuf:
		return good[int(op.A)*w+off]
	case SopNot:
		return ^good[int(op.A)*w+off]
	case SopXor:
		return good[int(op.A)*w+off] ^ good[int(op.B)*w+off]
	case SopXnor:
		return ^(good[int(op.A)*w+off] ^ good[int(op.B)*w+off])
	case SopAndXor:
		return (good[int(op.A)*w+off] & good[int(op.B)*w+off]) ^ good[int(op.C)*w+off]
	case SopAndnXor:
		return (^good[int(op.A)*w+off] & good[int(op.B)*w+off]) ^ good[int(op.C)*w+off]
	case SopOrXor:
		return (good[int(op.A)*w+off] | good[int(op.B)*w+off]) ^ good[int(op.C)*w+off]
	default: // SopOrnXor
		return (^good[int(op.A)*w+off] | good[int(op.B)*w+off]) ^ good[int(op.C)*w+off]
	}
}

// SiteOpFirstActive scans words 0..words-1 of the current block for the
// first word where the compiled site op's activation, masked by the
// block's valid-pattern mask, is non-zero, and returns its index and
// masked value (or -1, 0 when the site never activates — the activation
// pre-screen outcome). The op switch is hoisted out of the word loop, so
// the common all-zero scan runs as one tight loop per site shape.
func (e *Evaluator) SiteOpFirstActive(op SiteOp, mask []uint64, words int) (int, uint64) {
	w := e.w
	good := e.good
	switch op.Op {
	case SopBuf:
		a := int(op.A) * w
		for j := 0; j < words; j++ {
			if d := good[a+j] & mask[j]; d != 0 {
				return j, d
			}
		}
	case SopNot:
		a := int(op.A) * w
		for j := 0; j < words; j++ {
			if d := ^good[a+j] & mask[j]; d != 0 {
				return j, d
			}
		}
	case SopXor:
		a, b := int(op.A)*w, int(op.B)*w
		for j := 0; j < words; j++ {
			if d := (good[a+j] ^ good[b+j]) & mask[j]; d != 0 {
				return j, d
			}
		}
	case SopXnor:
		a, b := int(op.A)*w, int(op.B)*w
		for j := 0; j < words; j++ {
			if d := ^(good[a+j] ^ good[b+j]) & mask[j]; d != 0 {
				return j, d
			}
		}
	case SopAndXor:
		a, b, c := int(op.A)*w, int(op.B)*w, int(op.C)*w
		for j := 0; j < words; j++ {
			if d := (good[a+j]&good[b+j] ^ good[c+j]) & mask[j]; d != 0 {
				return j, d
			}
		}
	case SopAndnXor:
		a, b, c := int(op.A)*w, int(op.B)*w, int(op.C)*w
		for j := 0; j < words; j++ {
			if d := (^good[a+j]&good[b+j] ^ good[c+j]) & mask[j]; d != 0 {
				return j, d
			}
		}
	case SopOrXor:
		a, b, c := int(op.A)*w, int(op.B)*w, int(op.C)*w
		for j := 0; j < words; j++ {
			if d := ((good[a+j] | good[b+j]) ^ good[c+j]) & mask[j]; d != 0 {
				return j, d
			}
		}
	default: // SopOrnXor
		a, b, c := int(op.A)*w, int(op.B)*w, int(op.C)*w
		for j := 0; j < words; j++ {
			if d := ((^good[a+j] | good[b+j]) ^ good[c+j]) & mask[j]; d != 0 {
				return j, d
			}
		}
	}
	return -1, 0
}

// SiteOpDetectFrom scans words from..words-1 for the first word where the
// compiled site op's activation, masked by the block's valid-pattern mask
// AND the site gate's observability row, is non-zero — the detection scan
// that follows a successful activation pre-screen. Like SiteOpFirstActive
// the op switch is hoisted out of the word loop, so the scan decodes the
// op once instead of once per word.
func (e *Evaluator) SiteOpDetectFrom(op SiteOp, mask, obs []uint64, from, words int) (int, uint64) {
	w := e.w
	good := e.good
	switch op.Op {
	case SopBuf:
		a := int(op.A) * w
		for j := from; j < words; j++ {
			if d := good[a+j] & mask[j] & obs[j]; d != 0 {
				return j, d
			}
		}
	case SopNot:
		a := int(op.A) * w
		for j := from; j < words; j++ {
			if d := ^good[a+j] & mask[j] & obs[j]; d != 0 {
				return j, d
			}
		}
	case SopXor:
		a, b := int(op.A)*w, int(op.B)*w
		for j := from; j < words; j++ {
			if d := (good[a+j] ^ good[b+j]) & mask[j] & obs[j]; d != 0 {
				return j, d
			}
		}
	case SopXnor:
		a, b := int(op.A)*w, int(op.B)*w
		for j := from; j < words; j++ {
			if d := ^(good[a+j] ^ good[b+j]) & mask[j] & obs[j]; d != 0 {
				return j, d
			}
		}
	case SopAndXor:
		a, b, c := int(op.A)*w, int(op.B)*w, int(op.C)*w
		for j := from; j < words; j++ {
			if d := (good[a+j]&good[b+j] ^ good[c+j]) & mask[j] & obs[j]; d != 0 {
				return j, d
			}
		}
	case SopAndnXor:
		a, b, c := int(op.A)*w, int(op.B)*w, int(op.C)*w
		for j := from; j < words; j++ {
			if d := (^good[a+j]&good[b+j] ^ good[c+j]) & mask[j] & obs[j]; d != 0 {
				return j, d
			}
		}
	case SopOrXor:
		a, b, c := int(op.A)*w, int(op.B)*w, int(op.C)*w
		for j := from; j < words; j++ {
			if d := ((good[a+j] | good[b+j]) ^ good[c+j]) & mask[j] & obs[j]; d != 0 {
				return j, d
			}
		}
	default: // SopOrnXor
		a, b, c := int(op.A)*w, int(op.B)*w, int(op.C)*w
		for j := from; j < words; j++ {
			if d := ((^good[a+j] | good[b+j]) ^ good[c+j]) & mask[j] & obs[j]; d != 0 {
				return j, d
			}
		}
	}
	return -1, 0
}

// FaultDetect evaluates the circuit with the given stuck-at fault against
// the pattern block loaded by the last Run (W == 1). It returns a packed
// mask with bit i set when pattern i produces a primary-output
// discrepancy.
func (e *Evaluator) FaultDetect(f FaultSite) uint64 {
	return e.FaultDetectDelta(f, e.SiteDelta(f))
}

// FaultDetectDelta is FaultDetect with the fault site's local delta
// (SiteDelta, possibly masked down to the valid patterns of a partial
// block) already in hand (W == 1): it propagates the delta through the
// fan-out cone and returns the detection mask, a bitwise subset of
// delta. A zero delta returns 0 immediately without consuming an epoch.
func (e *Evaluator) FaultDetectDelta(f FaultSite, delta uint64) uint64 {
	if delta == 0 {
		return 0
	}
	e.bumpEpoch()
	e.mark(f.Gate, e.good[f.Gate]^delta)

	// Propagate level by level. mark pushes a level onto the e.lvls
	// min-heap when its bucket first becomes non-empty; consumers always
	// sit at strictly higher levels, so popping the minimum processes each
	// touched level exactly once and a drained bucket never regrows.
	for len(e.lvls) > 0 {
		l := e.popLvl()
		gates := e.bucket[l]
		for k := 0; k < len(gates); k++ {
			id := gates[k]
			v := e.evalFaulty(id)
			if v != e.good[id] {
				e.mark(id, v)
			} else if e.stamp[id] == e.epoch {
				// A previously marked gate converged back to good.
				e.faulty[id] = v
			}
		}
		e.bucket[l] = gates[:0]
	}

	// Only outputs actually marked this epoch can differ; a marked output
	// that converged back to good contributes zero either way.
	var detect uint64
	for _, out := range e.touchedOuts {
		detect |= e.faulty[out] ^ e.good[out]
	}
	return detect
}

// bumpEpoch starts a fresh faulty-propagation epoch.
func (e *Evaluator) bumpEpoch() {
	e.epoch++
	if e.epoch == 0 { // uint32 wrap: clear stamps once every 2^32 faults
		for i := range e.stamp {
			e.stamp[i] = 0
			e.sched[i] = 0
		}
		e.epoch = 1
	}
	e.lvls = e.lvls[:0]
	e.touchedOuts = e.touchedOuts[:0]
}

// Obs returns the packed observability mask of a gate's output net for
// the block loaded by the last Run (W == 1; wide evaluators use ObsAt
// per word): bit s is set when flipping the net on pattern s alone
// produces a primary-output discrepancy. Gate functions are bitwise, so
// the patterns are independent and the detection mask of any single-site
// fault factors exactly:
//
//	FaultDetectDelta(f, delta) == delta & Obs(f.Gate)
//
// bit s of the detection depends only on whether the site flipped on
// pattern s (delta bit s) and on whether a flip there reaches an output
// on pattern s (Obs bit s).
//
// Masks are memoized per net per Run block. A net with a single
// consuming pin inherits the consumer's mask filtered by the consumer's
// local flip-sensitivity — exact, because the flip reaches the consumer
// through that one edge and every side input holds its fault-free
// value — so whole fanout-free chains resolve with one gate evaluation
// per link. A fanout stem's mask is computed once per block by
// propagating an all-ones flip through its cone and is then shared by
// every fault in the fanout-free region feeding the stem.
func (e *Evaluator) Obs(gate int32) uint64 {
	g := gate
	for e.obsStamp[g] != e.obsEpoch {
		fo := e.nl.fanout[g]
		if len(fo) == 1 {
			e.obsChain = append(e.obsChain, g)
			g = fo[0]
			continue
		}
		var v uint64
		if e.isOut[g] { // a primary output observes any flip directly
			v = ^uint64(0)
		} else if len(fo) > 1 { // fanout stem: one explicit cone propagation
			v = e.FaultDetectDelta(FaultSite{Gate: g, Pin: -1}, ^uint64(0))
		}
		e.obsVal[g], e.obsStamp[g] = v, e.obsEpoch
	}
	obs := e.obsVal[g]
	for i := len(e.obsChain) - 1; i >= 0; i-- {
		gi := e.obsChain[i]
		obs &= e.sensFlip(gi, e.nl.fanout[gi][0])
		if e.isOut[gi] { // directly observed, whatever happens downstream
			obs = ^uint64(0)
		}
		e.obsVal[gi], e.obsStamp[gi] = obs, e.obsEpoch
	}
	e.obsChain = e.obsChain[:0]
	return e.obsVal[gate]
}

// ObsW is Obs for wide evaluators: the returned W-word row (which must
// not be mutated) is the gate's observability mask for the whole block,
// pattern p at word p/64 bit p%64. The memoization scheme is the same as
// Obs's; a stem's row is filled by a single event-driven cone walk whose
// scheduling cost amortizes over all W words (stemObsW).
func (e *Evaluator) ObsW(gate int32) []uint64 {
	g := gate
	for e.obsStamp[g] != e.obsEpoch {
		fo := e.nl.fanout[g]
		if len(fo) == 1 {
			e.obsChain = append(e.obsChain, g)
			g = fo[0]
			continue
		}
		dst := e.row(e.obsVal, g)
		if e.isOut[g] { // a primary output observes any flip directly
			for j := range dst {
				dst[j] = ^uint64(0)
			}
		} else if len(fo) > 1 { // fanout stem: one explicit cone propagation
			e.stemObsW(g, dst)
		} else {
			for j := range dst {
				dst[j] = 0
			}
		}
		e.obsStamp[g] = e.obsEpoch
	}
	obs := e.row(e.obsVal, g)
	for i := len(e.obsChain) - 1; i >= 0; i-- {
		gi := e.obsChain[i]
		dst := e.row(e.obsVal, gi)
		if e.isOut[gi] { // directly observed, whatever happens downstream
			for j := range dst {
				dst[j] = ^uint64(0)
			}
		} else {
			e.sensFlipW(gi, e.nl.fanout[gi][0], dst)
			for j := range dst {
				dst[j] &= obs[j]
			}
		}
		e.obsStamp[gi] = e.obsEpoch
		obs = dst
	}
	e.obsChain = e.obsChain[:0]
	return e.row(e.obsVal, gate)
}

// stemObsW fills dst with the W-word observability row of fanout stem g:
// the detection mask of an all-ones flip at g.
//
// Flipping a stem for a whole block diverges essentially its entire
// static cone — across 64×W patterns some pattern sensitizes almost
// every path — so the fill walks the precomputed level-ordered cone list
// (StemCones) in one flat loop: every cone gate is pre-stamped into the
// faulty epoch and evaluated exactly once, with no per-gate scheduling
// (fan-out scans, level buckets, divergence tests) at all. Stems whose
// cone exceeded the netlist's cache budget use the event-driven walk of
// FaultDetectDelta on whole rows instead.
func (e *Evaluator) stemObsW(g int32, dst []uint64) {
	if e.stems == nil {
		e.stems = e.nl.StemCones()
	}
	frow, grow := e.row(e.faulty, g), e.row(e.good, g)
	for j := range frow {
		frow[j] = ^grow[j]
	}

	if sc := &e.stems[g]; sc.Ops != nil {
		// The compiled cone resolves every operand to the good or faulty
		// half of the combined buffer at build time, so the flat walk
		// needs no epoch, no stamps, and no per-operand source checks.
		if e.w == 16 {
			evalConeOps16(e.gf, sc.Ops)
		} else {
			evalConeOps(e.gf, sc.Ops, e.w)
		}
		for j := range dst {
			dst[j] = 0
		}
		for _, out := range sc.Outs {
			fr, gr := e.row(e.faulty, out), e.row(e.good, out)
			for j := range dst {
				dst[j] |= fr[j] ^ gr[j]
			}
		}
		return
	}

	e.bumpEpoch()
	e.markTouch(g)
	// Same level-ordered walk as FaultDetectDelta, on whole rows.
	for len(e.lvls) > 0 {
		l := e.popLvl()
		gates := e.bucket[l]
		for k := 0; k < len(gates); k++ {
			id := gates[k]
			if e.evalFaultyW(id, e.row(e.faulty, id), e.row(e.good, id)) != 0 {
				e.markTouch(id)
			}
			// A gate already marked this epoch that converged back to good
			// keeps its (now equal) row — reads stay consistent either way.
		}
		e.bucket[l] = gates[:0]
	}

	for j := range dst {
		dst[j] = 0
	}
	for _, out := range e.touchedOuts {
		fr, gr := e.row(e.faulty, out), e.row(e.good, out)
		for j := range dst {
			dst[j] |= fr[j] ^ gr[j]
		}
	}
}

// sensFlip returns the mask of patterns on which gate c's fault-free
// output flips when net from flips, every other input held at its
// fault-free value (W == 1). Pins are matched by net, so a net feeding
// several pins of c flips all of them together, exactly as a real flip
// would.
func (e *Evaluator) sensFlip(from, c int32) uint64 {
	g := &e.nl.Gates[c]
	var v [3]uint64
	for p := 0; p < g.NumIn(); p++ {
		v[p] = e.good[g.In[p]]
		if g.In[p] == from {
			v[p] = ^v[p]
		}
	}
	return gateFn(g.Kind, v[0], v[1], v[2]) ^ e.good[c]
}

// sensFlipW is sensFlip on W-word rows, written into dst (which must not
// alias a good row).
func (e *Evaluator) sensFlipW(from, c int32, dst []uint64) {
	g := &e.nl.Gates[c]
	var rows [3][]uint64
	flipped := false
	for p := 0; p < g.NumIn(); p++ {
		r := e.row(e.good, g.In[p])
		if g.In[p] == from {
			if !flipped {
				for j := range e.flipBuf {
					e.flipBuf[j] = ^r[j]
				}
				flipped = true
			}
			r = e.flipBuf
		}
		rows[p] = r
	}
	gateFnW(g.Kind, rows, dst)
	grow := e.row(e.good, c)
	for j := range dst {
		dst[j] ^= grow[j]
	}
}

// pushLvl inserts a level into the e.lvls min-heap.
func (e *Evaluator) pushLvl(l int32) {
	e.lvls = append(e.lvls, l)
	i := len(e.lvls) - 1
	for i > 0 {
		p := (i - 1) / 2
		if e.lvls[p] <= e.lvls[i] {
			break
		}
		e.lvls[p], e.lvls[i] = e.lvls[i], e.lvls[p]
		i = p
	}
}

// popLvl removes and returns the smallest level from the e.lvls min-heap.
func (e *Evaluator) popLvl() int32 {
	top := e.lvls[0]
	n := len(e.lvls) - 1
	e.lvls[0] = e.lvls[n]
	e.lvls = e.lvls[:n]
	i := 0
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if c+1 < n && e.lvls[c+1] < e.lvls[c] {
			c++
		}
		if e.lvls[i] <= e.lvls[c] {
			break
		}
		e.lvls[i], e.lvls[c] = e.lvls[c], e.lvls[i]
		i = c
	}
	return top
}

// EvalOnce evaluates the fault-free circuit on a single pattern given as
// booleans and returns the outputs. It is a convenience for tests and the
// ATPG engine; bulk work should use Run.
func (e *Evaluator) EvalOnce(pattern []bool) ([]bool, error) {
	in := make([]uint64, len(pattern)*e.w)
	for i, b := range pattern {
		if b {
			in[i*e.w] = 1
		}
	}
	if err := e.Run(in); err != nil {
		return nil, err
	}
	out := make([]bool, len(e.nl.Outputs))
	for i := range out {
		out[i] = e.OutputW(i)[0]&1 == 1
	}
	return out, nil
}

// PackInputsU64 packs word-level pattern values into per-bit input vectors
// for a width-1 block. words[p] holds the pattern-p value of a bus whose
// bit i feeds input busStart+i; the packed vectors are OR-ed into dst.
func PackInputsU64(dst []uint64, busStart int, width int, words []uint64) {
	PackInputsWide(dst, 1, busStart, width, words)
}

// PackInputsWide is PackInputsU64 for W-word blocks: dst holds W words
// per input, input-major (the layout Evaluator.Run consumes), and
// words[p] lands in word p/64 bit p%64 of each touched input row. It
// accepts up to 64×W patterns.
func PackInputsWide(dst []uint64, w int, busStart int, width int, words []uint64) {
	for p, word := range words {
		bit := uint64(1) << uint(p%64)
		wd := p / 64
		for i := 0; i < width; i++ {
			if word>>uint(i)&1 == 1 {
				dst[(busStart+i)*w+wd] |= bit
			}
		}
	}
}
