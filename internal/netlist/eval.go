package netlist

import (
	"errors"
	"fmt"
)

// FaultSite identifies a single stuck-at fault: the output (Pin == -1) or
// an input pin of a gate, stuck at 1 (SA1) or 0.
type FaultSite struct {
	Gate int32
	Pin  int8 // -1 for the output net, 0..2 for input pins
	SA1  bool
}

// String renders the fault in the usual pin/polarity notation.
func (f FaultSite) String() string {
	v := 0
	if f.SA1 {
		v = 1
	}
	if f.Pin < 0 {
		return fmt.Sprintf("g%d.out/sa%d", f.Gate, v)
	}
	return fmt.Sprintf("g%d.in%d/sa%d", f.Gate, f.Pin, v)
}

// Evaluator computes 64 patterns at once over a Netlist (one pattern per
// bit of a uint64) and evaluates single-stuck-at faulty circuits by
// propagating differences through the fault's fan-out cone only.
type Evaluator struct {
	nl   *Netlist
	good []uint64

	// Faulty-cone scratch, reset lazily via epoch stamps.
	faulty []uint64
	stamp  []uint32
	sched  []uint32
	epoch  uint32
	bucket [][]int32
	lvls   []int32
}

// ErrSequential reports that a combinational-only entry point was handed
// a netlist with flip-flops.
var ErrSequential = errors.New("netlist: sequential netlist; use NewSeqEvaluator")

// NewEvaluator creates an evaluator for a combinational netlist. It
// returns ErrSequential on netlists with flip-flops — use NewSeqEvaluator
// for those.
func NewEvaluator(nl *Netlist) (*Evaluator, error) {
	if nl.NumDFFs() > 0 {
		return nil, fmt.Errorf("netlist: NewEvaluator on %s: %w", nl.Name, ErrSequential)
	}
	return &Evaluator{
		nl:     nl,
		good:   make([]uint64, len(nl.Gates)),
		faulty: make([]uint64, len(nl.Gates)),
		stamp:  make([]uint32, len(nl.Gates)),
		sched:  make([]uint32, len(nl.Gates)),
		bucket: make([][]int32, nl.maxLvl+1),
	}, nil
}

// Netlist returns the circuit under evaluation.
func (e *Evaluator) Netlist() *Netlist { return e.nl }

func gateFn(k Kind, a, b, s uint64) uint64 {
	switch k {
	case KBuf:
		return a
	case KNot:
		return ^a
	case KAnd:
		return a & b
	case KOr:
		return a | b
	case KXor:
		return a ^ b
	case KNand:
		return ^(a & b)
	case KNor:
		return ^(a | b)
	case KXnor:
		return ^(a ^ b)
	case KMux:
		// In[0]=sel (passed as a), In[1]=lo (b), In[2]=hi (s).
		return (a & s) | (^a & b)
	case KConst1:
		return ^uint64(0)
	}
	return 0 // KConst0, KInput handled by caller
}

// Run evaluates the fault-free circuit for a block of up to 64 patterns.
// inputs[i] packs the values of primary input i, one pattern per bit. It
// returns an error (leaving the previous evaluation intact) when the input
// arity does not match the circuit.
func (e *Evaluator) Run(inputs []uint64) error {
	if len(inputs) != len(e.nl.Inputs) {
		return fmt.Errorf("netlist: Run got %d input vectors, circuit %s has %d inputs",
			len(inputs), e.nl.Name, len(e.nl.Inputs))
	}
	for i, net := range e.nl.Inputs {
		e.good[net] = inputs[i]
	}
	for _, id := range e.nl.order {
		g := &e.nl.Gates[id]
		switch g.Kind {
		case KInput:
			// already loaded
		case KConst0:
			e.good[id] = 0
		case KConst1:
			e.good[id] = ^uint64(0)
		default:
			e.good[id] = gateFn(g.Kind, e.good[g.In[0]],
				e.in64(g, 1), e.in64(g, 2))
		}
	}
	return nil
}

func (e *Evaluator) in64(g *Gate, pin int) uint64 {
	if g.In[pin] < 0 {
		return 0
	}
	return e.good[g.In[pin]]
}

// Output returns the packed good value of primary output i after Run.
func (e *Evaluator) Output(i int) uint64 { return e.good[e.nl.Outputs[i]] }

// Value returns the packed good value of an arbitrary net after Run.
func (e *Evaluator) Value(net int32) uint64 { return e.good[net] }

// get reads a net's value in the current faulty evaluation.
func (e *Evaluator) get(net int32) uint64 {
	if e.stamp[net] == e.epoch {
		return e.faulty[net]
	}
	return e.good[net]
}

// mark records a faulty value on a net and schedules its consumers.
func (e *Evaluator) mark(net int32, val uint64) {
	if e.stamp[net] != e.epoch {
		e.stamp[net] = e.epoch
		for _, c := range e.nl.fanout[net] {
			if e.sched[c] != e.epoch {
				e.sched[c] = e.epoch
				l := e.nl.level[c]
				if len(e.bucket[l]) == 0 {
					e.lvls = append(e.lvls, l)
				}
				e.bucket[l] = append(e.bucket[l], c)
			}
		}
	}
	e.faulty[net] = val
}

// evalFaultyGate computes gate id under the current faulty values, forcing
// pin forcedPin (if >= 0) to forcedVal.
func (e *Evaluator) evalFaultyGate(id int32, forcedPin int8, forcedVal uint64) uint64 {
	g := &e.nl.Gates[id]
	switch g.Kind {
	case KInput, KConst0, KConst1:
		return e.get(id)
	}
	var v [3]uint64
	for p := 0; p < g.NumIn(); p++ {
		if int8(p) == forcedPin {
			v[p] = forcedVal
		} else {
			v[p] = e.get(g.In[p])
		}
	}
	return gateFn(g.Kind, v[0], v[1], v[2])
}

// FaultDetect evaluates the circuit with the given stuck-at fault against
// the pattern block loaded by the last Run. It returns a packed mask with
// bit i set when pattern i produces a primary-output discrepancy.
func (e *Evaluator) FaultDetect(f FaultSite) uint64 {
	e.epoch++
	if e.epoch == 0 { // uint32 wrap: clear stamps once every 2^32 faults
		for i := range e.stamp {
			e.stamp[i] = 0
			e.sched[i] = 0
		}
		e.epoch = 1
	}
	e.lvls = e.lvls[:0]

	var sa uint64
	if f.SA1 {
		sa = ^uint64(0)
	}
	if f.Pin < 0 {
		if sa != e.good[f.Gate] {
			e.mark(f.Gate, sa)
		}
	} else {
		v := e.evalFaultyGate(f.Gate, f.Pin, sa)
		if v != e.good[f.Gate] {
			e.mark(f.Gate, v)
		}
	}

	// Propagate level by level. Levels only ever grow, so a simple index
	// walk over the recorded levels in ascending order is sound; new levels
	// are appended and the slice re-sorted cheaply via insertion position.
	for i := 0; i < len(e.lvls); i++ {
		// Find the smallest unprocessed level (few levels are touched, so a
		// linear scan is cheap and avoids a heap).
		minJ := i
		for j := i + 1; j < len(e.lvls); j++ {
			if e.lvls[j] < e.lvls[minJ] {
				minJ = j
			}
		}
		e.lvls[i], e.lvls[minJ] = e.lvls[minJ], e.lvls[i]
		l := e.lvls[i]
		gates := e.bucket[l]
		for k := 0; k < len(gates); k++ { // bucket may grow? no: same level never regrows
			id := gates[k]
			v := e.evalFaultyGate(id, -1, 0)
			if v != e.good[id] {
				e.mark(id, v)
			} else if e.stamp[id] == e.epoch {
				// A previously marked gate converged back to good.
				e.faulty[id] = v
			}
		}
		e.bucket[l] = gates[:0]
	}

	var detect uint64
	for _, out := range e.nl.Outputs {
		if e.stamp[out] == e.epoch {
			detect |= e.faulty[out] ^ e.good[out]
		}
	}
	return detect
}

// EvalOnce evaluates the fault-free circuit on a single pattern given as
// booleans and returns the outputs. It is a convenience for tests and the
// ATPG engine; bulk work should use Run.
func (e *Evaluator) EvalOnce(pattern []bool) ([]bool, error) {
	in := make([]uint64, len(pattern))
	for i, b := range pattern {
		if b {
			in[i] = 1
		}
	}
	if err := e.Run(in); err != nil {
		return nil, err
	}
	out := make([]bool, len(e.nl.Outputs))
	for i := range out {
		out[i] = e.Output(i)&1 == 1
	}
	return out, nil
}

// PackInputsU64 packs word-level pattern values into per-bit input vectors.
// words[p] holds the pattern-p value of a bus whose bit i feeds input
// busStart+i; the packed vectors are OR-ed into dst.
func PackInputsU64(dst []uint64, busStart int, width int, words []uint64) {
	for p, w := range words {
		for i := 0; i < width; i++ {
			if w>>uint(i)&1 == 1 {
				dst[busStart+i] |= 1 << uint(p)
			}
		}
	}
}
