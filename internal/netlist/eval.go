package netlist

import (
	"errors"
	"fmt"
)

// FaultSite identifies a single stuck-at fault: the output (Pin == -1) or
// an input pin of a gate, stuck at 1 (SA1) or 0.
type FaultSite struct {
	Gate int32
	Pin  int8 // -1 for the output net, 0..2 for input pins
	SA1  bool
}

// String renders the fault in the usual pin/polarity notation.
func (f FaultSite) String() string {
	v := 0
	if f.SA1 {
		v = 1
	}
	if f.Pin < 0 {
		return fmt.Sprintf("g%d.out/sa%d", f.Gate, v)
	}
	return fmt.Sprintf("g%d.in%d/sa%d", f.Gate, f.Pin, v)
}

// Evaluator computes 64 patterns at once over a Netlist (one pattern per
// bit of a uint64) and evaluates single-stuck-at faulty circuits by
// propagating differences through the fault's fan-out cone only.
type Evaluator struct {
	nl   *Netlist
	good []uint64

	// Faulty-cone scratch, reset lazily via epoch stamps.
	faulty []uint64
	stamp  []uint32
	sched  []uint32
	epoch  uint32
	bucket [][]int32
	lvls   []int32

	// Per-block observability memo (see Obs), invalidated by Run via its
	// own epoch.
	obsVal   []uint64
	obsStamp []uint32
	obsEpoch uint32
	obsChain []int32
	isOut    []bool

	// Primary-output nets marked in the current faulty epoch; lets the
	// detect scan visit only touched outputs instead of all of them.
	touchedOuts []int32
}

// ErrSequential reports that a combinational-only entry point was handed
// a netlist with flip-flops.
var ErrSequential = errors.New("netlist: sequential netlist; use NewSeqEvaluator")

// NewEvaluator creates an evaluator for a combinational netlist. It
// returns ErrSequential on netlists with flip-flops — use NewSeqEvaluator
// for those.
func NewEvaluator(nl *Netlist) (*Evaluator, error) {
	if nl.NumDFFs() > 0 {
		return nil, fmt.Errorf("netlist: NewEvaluator on %s: %w", nl.Name, ErrSequential)
	}
	e := &Evaluator{
		nl:       nl,
		good:     make([]uint64, len(nl.Gates)),
		faulty:   make([]uint64, len(nl.Gates)),
		stamp:    make([]uint32, len(nl.Gates)),
		sched:    make([]uint32, len(nl.Gates)),
		bucket:   make([][]int32, nl.maxLvl+1),
		obsVal:   make([]uint64, len(nl.Gates)),
		obsStamp: make([]uint32, len(nl.Gates)),
		isOut:    make([]bool, len(nl.Gates)),
	}
	for _, o := range nl.Outputs {
		e.isOut[o] = true
	}
	return e, nil
}

// Netlist returns the circuit under evaluation.
func (e *Evaluator) Netlist() *Netlist { return e.nl }

func gateFn(k Kind, a, b, s uint64) uint64 {
	switch k {
	case KBuf:
		return a
	case KNot:
		return ^a
	case KAnd:
		return a & b
	case KOr:
		return a | b
	case KXor:
		return a ^ b
	case KNand:
		return ^(a & b)
	case KNor:
		return ^(a | b)
	case KXnor:
		return ^(a ^ b)
	case KMux:
		// In[0]=sel (passed as a), In[1]=lo (b), In[2]=hi (s).
		return (a & s) | (^a & b)
	case KConst1:
		return ^uint64(0)
	}
	return 0 // KConst0, KInput handled by caller
}

// Run evaluates the fault-free circuit for a block of up to 64 patterns.
// inputs[i] packs the values of primary input i, one pattern per bit. It
// returns an error (leaving the previous evaluation intact) when the input
// arity does not match the circuit.
func (e *Evaluator) Run(inputs []uint64) error {
	if len(inputs) != len(e.nl.Inputs) {
		return fmt.Errorf("netlist: Run got %d input vectors, circuit %s has %d inputs",
			len(inputs), e.nl.Name, len(e.nl.Inputs))
	}
	e.obsEpoch++
	if e.obsEpoch == 0 { // uint32 wrap: drop every memoized mask for real
		for i := range e.obsStamp {
			e.obsStamp[i] = 0
		}
		e.obsEpoch = 1
	}
	for i, net := range e.nl.Inputs {
		e.good[net] = inputs[i]
	}
	for _, id := range e.nl.order {
		g := &e.nl.Gates[id]
		switch g.Kind {
		case KInput:
			// already loaded
		case KConst0:
			e.good[id] = 0
		case KConst1:
			e.good[id] = ^uint64(0)
		default:
			e.good[id] = gateFn(g.Kind, e.good[g.In[0]],
				e.in64(g, 1), e.in64(g, 2))
		}
	}
	return nil
}

func (e *Evaluator) in64(g *Gate, pin int) uint64 {
	if g.In[pin] < 0 {
		return 0
	}
	return e.good[g.In[pin]]
}

// Output returns the packed good value of primary output i after Run.
func (e *Evaluator) Output(i int) uint64 { return e.good[e.nl.Outputs[i]] }

// Value returns the packed good value of an arbitrary net after Run.
func (e *Evaluator) Value(net int32) uint64 { return e.good[net] }

// get reads a net's value in the current faulty evaluation.
func (e *Evaluator) get(net int32) uint64 {
	if e.stamp[net] == e.epoch {
		return e.faulty[net]
	}
	return e.good[net]
}

// mark records a faulty value on a net and schedules its consumers.
func (e *Evaluator) mark(net int32, val uint64) {
	if e.stamp[net] != e.epoch {
		e.stamp[net] = e.epoch
		if e.isOut[net] {
			e.touchedOuts = append(e.touchedOuts, net)
		}
		for _, c := range e.nl.fanout[net] {
			if e.sched[c] != e.epoch {
				e.sched[c] = e.epoch
				l := e.nl.level[c]
				if len(e.bucket[l]) == 0 {
					e.pushLvl(l)
				}
				e.bucket[l] = append(e.bucket[l], c)
			}
		}
	}
	e.faulty[net] = val
}

// evalFaulty computes gate id under the current faulty values. A single
// switch with direct operand reads: this is the innermost call of every
// cone propagation, so it avoids the generic arity loop and scratch
// array of the gateFn path.
func (e *Evaluator) evalFaulty(id int32) uint64 {
	g := &e.nl.Gates[id]
	switch g.Kind {
	case KBuf:
		return e.get(g.In[0])
	case KNot:
		return ^e.get(g.In[0])
	case KAnd:
		return e.get(g.In[0]) & e.get(g.In[1])
	case KOr:
		return e.get(g.In[0]) | e.get(g.In[1])
	case KXor:
		return e.get(g.In[0]) ^ e.get(g.In[1])
	case KNand:
		return ^(e.get(g.In[0]) & e.get(g.In[1]))
	case KNor:
		return ^(e.get(g.In[0]) | e.get(g.In[1]))
	case KXnor:
		return ^(e.get(g.In[0]) ^ e.get(g.In[1]))
	case KMux:
		s := e.get(g.In[0])
		return (s & e.get(g.In[2])) | (^s & e.get(g.In[1]))
	}
	return e.get(id) // KInput, KConst0, KConst1: sources keep their value
}

// SiteDelta returns the packed mask of patterns on which the stuck-at
// fault's site output differs from the fault-free value of the last Run —
// the local activation of the fault. Gate functions are bitwise, so a bit
// that is zero here stays zero on every downstream net: SiteDelta == 0
// proves FaultDetect would return 0 without propagating anything, and the
// detection mask is always a bitwise subset of the site delta.
func (e *Evaluator) SiteDelta(f FaultSite) uint64 {
	var sa uint64
	if f.SA1 {
		sa = ^uint64(0)
	}
	if f.Pin < 0 {
		return sa ^ e.good[f.Gate]
	}
	// Evaluate the gate under good inputs with the faulty pin forced. This
	// deliberately bypasses get(): outside an epoch it would read stale
	// faulty values from the previous FaultDetect.
	g := &e.nl.Gates[f.Gate]
	var v [3]uint64
	for p := 0; p < g.NumIn(); p++ {
		if int8(p) == f.Pin {
			v[p] = sa
		} else {
			v[p] = e.good[g.In[p]]
		}
	}
	return gateFn(g.Kind, v[0], v[1], v[2]) ^ e.good[f.Gate]
}

// FaultDetect evaluates the circuit with the given stuck-at fault against
// the pattern block loaded by the last Run. It returns a packed mask with
// bit i set when pattern i produces a primary-output discrepancy.
func (e *Evaluator) FaultDetect(f FaultSite) uint64 {
	return e.FaultDetectDelta(f, e.SiteDelta(f))
}

// FaultDetectDelta is FaultDetect with the fault site's local delta
// (SiteDelta, possibly masked down to the valid patterns of a partial
// block) already in hand: it propagates the difference through the fan-out
// cone and returns the detection mask, a bitwise subset of delta. A zero
// delta returns 0 immediately without consuming an epoch.
func (e *Evaluator) FaultDetectDelta(f FaultSite, delta uint64) uint64 {
	if delta == 0 {
		return 0
	}
	e.epoch++
	if e.epoch == 0 { // uint32 wrap: clear stamps once every 2^32 faults
		for i := range e.stamp {
			e.stamp[i] = 0
			e.sched[i] = 0
		}
		e.epoch = 1
	}
	e.lvls = e.lvls[:0]
	e.touchedOuts = e.touchedOuts[:0]
	e.mark(f.Gate, e.good[f.Gate]^delta)

	// Propagate level by level. mark() pushes a level onto the e.lvls
	// min-heap when its bucket first becomes non-empty; consumers always
	// sit at strictly higher levels, so popping the minimum processes each
	// touched level exactly once and a drained bucket never regrows.
	for len(e.lvls) > 0 {
		l := e.popLvl()
		gates := e.bucket[l]
		for k := 0; k < len(gates); k++ {
			id := gates[k]
			v := e.evalFaulty(id)
			if v != e.good[id] {
				e.mark(id, v)
			} else if e.stamp[id] == e.epoch {
				// A previously marked gate converged back to good.
				e.faulty[id] = v
			}
		}
		e.bucket[l] = gates[:0]
	}

	// Only outputs actually marked this epoch can differ; a marked output
	// that converged back to good contributes zero either way.
	var detect uint64
	for _, out := range e.touchedOuts {
		detect |= e.faulty[out] ^ e.good[out]
	}
	return detect
}

// Obs returns the packed observability mask of a gate's output net for
// the block loaded by the last Run: bit s is set when flipping the net
// on pattern s alone produces a primary-output discrepancy. Gate
// functions are bitwise, so the 64 patterns are independent and the
// detection mask of any single-site fault factors exactly:
//
//	FaultDetectDelta(f, delta) == delta & Obs(f.Gate)
//
// bit s of the detection depends only on whether the site flipped on
// pattern s (delta bit s) and on whether a flip there reaches an output
// on pattern s (Obs bit s).
//
// Masks are memoized per Run block. A net with a single consuming pin
// inherits the consumer's mask filtered by the consumer's local
// flip-sensitivity — exact, because the flip reaches the consumer
// through that one edge and every side input holds its fault-free
// value — so whole fanout-free chains resolve with one gate evaluation
// per link. A fanout stem's mask is computed once by propagating an
// all-ones flip through its cone and is then shared by every fault in
// the fanout-free region feeding it.
func (e *Evaluator) Obs(gate int32) uint64 {
	g := gate
	for e.obsStamp[g] != e.obsEpoch {
		fo := e.nl.fanout[g]
		if len(fo) == 1 {
			e.obsChain = append(e.obsChain, g)
			g = fo[0]
			continue
		}
		var v uint64
		if len(fo) > 1 { // fanout stem: one explicit cone propagation
			v = e.FaultDetectDelta(FaultSite{Gate: g, Pin: -1}, ^uint64(0))
		} else if e.isOut[g] { // pure sink: observable iff a primary output
			v = ^uint64(0)
		}
		e.obsVal[g], e.obsStamp[g] = v, e.obsEpoch
	}
	obs := e.obsVal[g]
	for i := len(e.obsChain) - 1; i >= 0; i-- {
		gi := e.obsChain[i]
		obs &= e.sensFlip(gi, e.nl.fanout[gi][0])
		if e.isOut[gi] { // directly observed, whatever happens downstream
			obs = ^uint64(0)
		}
		e.obsVal[gi], e.obsStamp[gi] = obs, e.obsEpoch
	}
	e.obsChain = e.obsChain[:0]
	return e.obsVal[gate]
}

// sensFlip returns the mask of patterns on which gate c's fault-free
// output flips when net from flips, every other input held at its
// fault-free value. Pins are matched by net, so a net feeding several
// pins of c flips all of them together, exactly as a real flip would.
func (e *Evaluator) sensFlip(from, c int32) uint64 {
	g := &e.nl.Gates[c]
	var v [3]uint64
	for p := 0; p < g.NumIn(); p++ {
		v[p] = e.good[g.In[p]]
		if g.In[p] == from {
			v[p] = ^v[p]
		}
	}
	return gateFn(g.Kind, v[0], v[1], v[2]) ^ e.good[c]
}

// pushLvl inserts a level into the e.lvls min-heap.
func (e *Evaluator) pushLvl(l int32) {
	e.lvls = append(e.lvls, l)
	i := len(e.lvls) - 1
	for i > 0 {
		p := (i - 1) / 2
		if e.lvls[p] <= e.lvls[i] {
			break
		}
		e.lvls[p], e.lvls[i] = e.lvls[i], e.lvls[p]
		i = p
	}
}

// popLvl removes and returns the smallest level from the e.lvls min-heap.
func (e *Evaluator) popLvl() int32 {
	top := e.lvls[0]
	n := len(e.lvls) - 1
	e.lvls[0] = e.lvls[n]
	e.lvls = e.lvls[:n]
	i := 0
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if c+1 < n && e.lvls[c+1] < e.lvls[c] {
			c++
		}
		if e.lvls[i] <= e.lvls[c] {
			break
		}
		e.lvls[i], e.lvls[c] = e.lvls[c], e.lvls[i]
		i = c
	}
	return top
}

// EvalOnce evaluates the fault-free circuit on a single pattern given as
// booleans and returns the outputs. It is a convenience for tests and the
// ATPG engine; bulk work should use Run.
func (e *Evaluator) EvalOnce(pattern []bool) ([]bool, error) {
	in := make([]uint64, len(pattern))
	for i, b := range pattern {
		if b {
			in[i] = 1
		}
	}
	if err := e.Run(in); err != nil {
		return nil, err
	}
	out := make([]bool, len(e.nl.Outputs))
	for i := range out {
		out[i] = e.Output(i)&1 == 1
	}
	return out, nil
}

// PackInputsU64 packs word-level pattern values into per-bit input vectors.
// words[p] holds the pattern-p value of a bus whose bit i feeds input
// busStart+i; the packed vectors are OR-ed into dst.
func PackInputsU64(dst []uint64, busStart int, width int, words []uint64) {
	for p, w := range words {
		for i := 0; i < width; i++ {
			if w>>uint(i)&1 == 1 {
				dst[busStart+i] |= 1 << uint(p)
			}
		}
	}
}
