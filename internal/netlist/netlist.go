// Package netlist provides a gate-level combinational circuit
// representation with 64-way bit-parallel evaluation and single-stuck-at
// faulty evaluation restricted to the fault's fan-out cone.
//
// It plays the role of the synthesized (Nangate 15 nm) gate-level netlists
// the paper fault-simulates: package circuits builds the Decoder Unit, SP
// datapath and SFU datapath on top of these primitives, and package fault
// runs stuck-at campaigns over them.
package netlist

import (
	"errors"
	"fmt"
	"sync"
)

// Kind enumerates the supported cell types, a small subset of a standard
// cell library.
type Kind uint8

// Gate kinds. Input gates have no fan-in; Const gates drive fixed values;
// Mux selects In[1] when In[0] is 0 and In[2] when In[0] is 1.
const (
	KInput Kind = iota
	KConst0
	KConst1
	KBuf
	KNot
	KAnd
	KOr
	KXor
	KNand
	KNor
	KXnor
	KMux
	// KDFF is a D flip-flop: a state element whose output acts as a level-0
	// source during combinational evaluation and samples its single input
	// when SeqEvaluator clocks it. Only SeqEvaluator understands DFFs.
	KDFF
	kindCount
)

// NumKinds is the number of gate kinds.
const NumKinds = int(kindCount)

var kindNames = [NumKinds]string{
	"INPUT", "CONST0", "CONST1", "BUF", "NOT", "AND", "OR", "XOR",
	"NAND", "NOR", "XNOR", "MUX", "DFF",
}

// String returns the cell name.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// arityTab holds arity+1 per kind so the zero value flags unknown kinds.
var arityTab = [NumKinds]int8{
	KInput: 1, KConst0: 1, KConst1: 1,
	KBuf: 2, KNot: 2, KDFF: 2,
	KAnd: 3, KOr: 3, KXor: 3, KNand: 3, KNor: 3, KXnor: 3,
	KMux: 4,
}

// arity returns the required fan-in count of a kind, or -1 if unknown.
// A table lookup rather than a switch: this sits on the fault
// simulator's hottest paths (SiteDelta and faulty gate evaluation).
func arity(k Kind) int {
	if int(k) < len(arityTab) {
		return int(arityTab[k]) - 1
	}
	return -1
}

// Gate is one cell; its output net id equals its index in Netlist.Gates.
type Gate struct {
	Kind Kind
	In   [3]int32 // fan-in net ids; unused entries are -1
}

// NumIn returns the fan-in count of the gate.
func (g Gate) NumIn() int { return arity(g.Kind) }

// Netlist is an immutable, levelized combinational circuit.
type Netlist struct {
	Name    string
	Gates   []Gate
	Inputs  []int32 // primary-input net ids, in declaration order
	Outputs []int32 // primary-output net ids, in declaration order

	InputNames  []string // one per Inputs entry
	OutputNames []string

	level  []int32   // topological level per gate
	order  []int32   // gate ids in non-decreasing level order
	fanout [][]int32 // consumers of each net
	maxLvl int32

	groups  []string
	gateGrp []uint16

	coneOnce sync.Once // lazily built cone metadata (see cone.go)
	cone     *ConeInfo

	planOnce sync.Once // lazily compiled SoA evaluation plan (see plan.go)
	plan     *EvalPlan

	stemOnce  sync.Once // lazily built static stem cones (see stemcone.go)
	stemCones []StemCone

	// evPool recycles evaluators per block width (index w-1). The
	// expensive part of an evaluator is its width-strided scratch —
	// good/faulty/observability arrays, megabytes at the widest setting —
	// and that outlives any single simulation campaign over the circuit,
	// so the pool lives here rather than with any one caller.
	evPool [MaxBlockWords]sync.Pool
}

// Groups returns the functional group names declared during construction
// (index 0 is the default ungrouped label).
func (n *Netlist) Groups() []string { return n.groups }

// GroupOf returns the functional group of a gate.
func (n *Netlist) GroupOf(gate int32) string {
	if int(gate) >= len(n.gateGrp) {
		return ""
	}
	return n.groups[n.gateGrp[gate]]
}

// NumGates returns the number of cells, excluding primary inputs and
// constants (the convention used when counting circuit size).
func (n *Netlist) NumGates() int {
	c := 0
	for _, g := range n.Gates {
		if g.Kind != KInput && g.Kind != KConst0 && g.Kind != KConst1 {
			c++
		}
	}
	return c
}

// NumNets returns the total net count (gates + inputs + constants).
func (n *Netlist) NumNets() int { return len(n.Gates) }

// Levels returns the logic depth of the circuit.
func (n *Netlist) Levels() int { return int(n.maxLvl) }

// Fanout returns the consumer gate ids of a net.
func (n *Netlist) Fanout(net int32) []int32 { return n.fanout[net] }

// Builder constructs a Netlist.
type Builder struct {
	name  string
	gates []Gate
	ins   []int32
	outs  []int32
	inNm  []string
	outNm []string
	c0    int32
	c1    int32

	groups   []string
	groupIdx map[string]uint16
	curGroup uint16
	gateGrp  []uint16

	// err holds the first construction error (e.g. a bad ConnectD), so
	// builder chains need not check every call; Build surfaces it.
	err error
}

// recordErr keeps the first construction error for Build to report.
func (b *Builder) recordErr(err error) {
	if b.err == nil {
		b.err = err
	}
}

// NewBuilder returns an empty builder for a circuit with the given name.
func NewBuilder(name string) *Builder {
	b := &Builder{name: name, c0: -1, c1: -1, groupIdx: map[string]uint16{}}
	b.SetGroup("") // default (ungrouped)
	return b
}

// SetGroup labels all gates created from now on with the given functional
// group (e.g. "multiplier", "shifter"); coverage reports aggregate per
// group. The empty string is the default ungrouped label.
func (b *Builder) SetGroup(name string) {
	if idx, ok := b.groupIdx[name]; ok {
		b.curGroup = idx
		return
	}
	idx := uint16(len(b.groups))
	b.groups = append(b.groups, name)
	b.groupIdx[name] = idx
	b.curGroup = idx
}

func (b *Builder) add(k Kind, in ...int32) int32 {
	g := Gate{Kind: k, In: [3]int32{-1, -1, -1}}
	copy(g.In[:], in)
	b.gates = append(b.gates, g)
	b.gateGrp = append(b.gateGrp, b.curGroup)
	return int32(len(b.gates) - 1)
}

// Input declares a named primary input and returns its net.
func (b *Builder) Input(name string) int32 {
	n := b.add(KInput)
	b.ins = append(b.ins, n)
	b.inNm = append(b.inNm, name)
	return n
}

// InputBus declares width named inputs name[0..width-1], LSB first.
func (b *Builder) InputBus(name string, width int) []int32 {
	bus := make([]int32, width)
	for i := range bus {
		bus[i] = b.Input(fmt.Sprintf("%s[%d]", name, i))
	}
	return bus
}

// Const0 returns the constant-0 net (created on first use).
func (b *Builder) Const0() int32 {
	if b.c0 < 0 {
		b.c0 = b.add(KConst0)
	}
	return b.c0
}

// Const1 returns the constant-1 net (created on first use).
func (b *Builder) Const1() int32 {
	if b.c1 < 0 {
		b.c1 = b.add(KConst1)
	}
	return b.c1
}

// Logic gates.

func (b *Builder) Buf(a int32) int32     { return b.add(KBuf, a) }
func (b *Builder) Not(a int32) int32     { return b.add(KNot, a) }
func (b *Builder) And(a, c int32) int32  { return b.add(KAnd, a, c) }
func (b *Builder) Or(a, c int32) int32   { return b.add(KOr, a, c) }
func (b *Builder) Xor(a, c int32) int32  { return b.add(KXor, a, c) }
func (b *Builder) Nand(a, c int32) int32 { return b.add(KNand, a, c) }
func (b *Builder) Nor(a, c int32) int32  { return b.add(KNor, a, c) }
func (b *Builder) Xnor(a, c int32) int32 { return b.add(KXnor, a, c) }

// Mux returns sel ? hi : lo.
func (b *Builder) Mux(sel, lo, hi int32) int32 { return b.add(KMux, sel, lo, hi) }

// AndN reduces any number of nets with a balanced AND tree.
func (b *Builder) AndN(nets ...int32) int32 { return b.tree(KAnd, b.Const1(), nets) }

// OrN reduces any number of nets with a balanced OR tree.
func (b *Builder) OrN(nets ...int32) int32 { return b.tree(KOr, b.Const0(), nets) }

// XorN reduces any number of nets with a balanced XOR tree.
func (b *Builder) XorN(nets ...int32) int32 { return b.tree(KXor, b.Const0(), nets) }

func (b *Builder) tree(k Kind, empty int32, nets []int32) int32 {
	switch len(nets) {
	case 0:
		return empty
	case 1:
		return nets[0]
	}
	mid := len(nets) / 2
	return b.add(k, b.tree(k, empty, nets[:mid]), b.tree(k, empty, nets[mid:]))
}

// Output declares a named primary output driven by net.
func (b *Builder) Output(name string, net int32) {
	b.outs = append(b.outs, net)
	b.outNm = append(b.outNm, name)
}

// OutputBus declares width named outputs name[0..width-1], LSB first.
func (b *Builder) OutputBus(name string, nets []int32) {
	for i, n := range nets {
		b.Output(fmt.Sprintf("%s[%d]", name, i), n)
	}
}

// Build validates, levelizes and freezes the circuit.
func (b *Builder) Build() (*Netlist, error) {
	if b.err != nil {
		return nil, b.err
	}
	n := &Netlist{
		Name:        b.name,
		Gates:       b.gates,
		Inputs:      b.ins,
		Outputs:     b.outs,
		InputNames:  b.inNm,
		OutputNames: b.outNm,
		groups:      b.groups,
		gateGrp:     b.gateGrp,
	}
	if len(n.Outputs) == 0 {
		return nil, errors.New("netlist: no outputs")
	}
	ng := int32(len(n.Gates))
	for id, g := range n.Gates {
		want := g.NumIn()
		for p := 0; p < 3; p++ {
			in := g.In[p]
			if p < want {
				if in < 0 || in >= ng {
					return nil, fmt.Errorf("netlist: gate %d (%v) pin %d: bad net %d", id, g.Kind, p, in)
				}
				// Builders only reference already-created nets, so the
				// combinational graph is acyclic by construction; DFF data
				// inputs are the one sanctioned feedback path.
				if in >= int32(id) && g.Kind != KDFF {
					return nil, fmt.Errorf("netlist: gate %d references later net %d (cycle?)", id, in)
				}
			} else if in != -1 {
				return nil, fmt.Errorf("netlist: gate %d (%v) has excess pin %d", id, g.Kind, p)
			}
		}
	}
	for i, o := range n.Outputs {
		if o < 0 || o >= ng {
			return nil, fmt.Errorf("netlist: output %d: bad net %d", i, o)
		}
	}
	n.levelize()
	return n, nil
}

func (n *Netlist) levelize() {
	n.level = make([]int32, len(n.Gates))
	n.fanout = make([][]int32, len(n.Gates))
	for id, g := range n.Gates {
		var lvl int32
		if g.Kind != KDFF { // a DFF is a level-0 state source; its D edge
			for p := 0; p < g.NumIn(); p++ { // is sampled at clock time only
				in := g.In[p]
				if n.level[in] >= lvl {
					lvl = n.level[in] + 1
				}
				n.fanout[in] = append(n.fanout[in], int32(id))
			}
		}
		n.level[id] = lvl
		if lvl > n.maxLvl {
			n.maxLvl = lvl
		}
	}
	// Counting sort by level gives a topological order grouped by level.
	counts := make([]int32, n.maxLvl+2)
	for _, l := range n.level {
		counts[l+1]++
	}
	for i := 1; i < len(counts); i++ {
		counts[i] += counts[i-1]
	}
	n.order = make([]int32, len(n.Gates))
	pos := make([]int32, len(counts))
	copy(pos, counts)
	for id := range n.Gates {
		l := n.level[id]
		n.order[pos[l]] = int32(id)
		pos[l]++
	}
}

// Level returns the topological level of a net.
func (n *Netlist) Level(net int32) int32 { return n.level[net] }

// Order returns the gate ids in topological (level) order. The returned
// slice must not be mutated.
func (n *Netlist) Order() []int32 { return n.order }
