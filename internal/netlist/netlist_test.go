package netlist

import (
	"math/rand"
	"testing"
)

// buildAdder4 returns a 4-bit ripple adder: s = a + b (mod 16), with carry.
func buildAdder4(t testing.TB) *Netlist {
	t.Helper()
	b := NewBuilder("adder4")
	a := b.InputBus("a", 4)
	c := b.InputBus("b", 4)
	carry := b.Const0()
	sum := make([]int32, 4)
	for i := 0; i < 4; i++ {
		axb := b.Xor(a[i], c[i])
		sum[i] = b.Xor(axb, carry)
		carry = b.Or(b.And(a[i], c[i]), b.And(axb, carry))
	}
	b.OutputBus("s", sum)
	b.Output("cout", carry)
	nl, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return nl
}

// mustEval builds a combinational evaluator or fails the test.
func mustEval(t *testing.T, nl *Netlist) *Evaluator {
	t.Helper()
	ev, err := NewEvaluator(nl)
	if err != nil {
		t.Fatal(err)
	}
	return ev
}

// mustRun runs a pattern block or fails the test.
func mustRun(t *testing.T, ev *Evaluator, inputs []uint64) {
	t.Helper()
	if err := ev.Run(inputs); err != nil {
		t.Fatal(err)
	}
}

// mustEvalOnce evaluates one pattern or fails the test.
func mustEvalOnce(t *testing.T, ev *Evaluator, pattern []bool) []bool {
	t.Helper()
	out, err := ev.EvalOnce(pattern)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// mustStep clocks a sequential evaluator or fails the test.
func mustStep(t *testing.T, e *SeqEvaluator, inputs []bool) uint64 {
	t.Helper()
	det, err := e.Step(inputs)
	if err != nil {
		t.Fatal(err)
	}
	return det
}

func TestAdderExhaustive(t *testing.T) {
	nl := buildAdder4(t)
	ev := mustEval(t, nl)
	for a := 0; a < 16; a++ {
		for c := 0; c < 16; c++ {
			in := make([]bool, 8)
			for i := 0; i < 4; i++ {
				in[i] = a>>i&1 == 1
				in[4+i] = c>>i&1 == 1
			}
			out := mustEvalOnce(t, ev, in)
			got := 0
			for i := 0; i < 4; i++ {
				if out[i] {
					got |= 1 << i
				}
			}
			if out[4] {
				got |= 16
			}
			if got != a+c {
				t.Fatalf("%d+%d = %d, want %d", a, c, got, a+c)
			}
		}
	}
}

func TestPackedEvalMatchesSingle(t *testing.T) {
	nl := buildAdder4(t)
	ev := mustEval(t, nl)
	// Pack 64 random patterns and compare with per-pattern evaluation.
	r := rand.New(rand.NewSource(2))
	pat := make([][]bool, 64)
	in := make([]uint64, 8)
	for p := 0; p < 64; p++ {
		pat[p] = make([]bool, 8)
		for i := range pat[p] {
			pat[p][i] = r.Intn(2) == 1
			if pat[p][i] {
				in[i] |= 1 << uint(p)
			}
		}
	}
	mustRun(t, ev, in)
	packed := make([]uint64, 5)
	for i := 0; i < 5; i++ {
		packed[i] = ev.Output(i)
	}
	ev2 := mustEval(t, nl)
	for p := 0; p < 64; p++ {
		out := mustEvalOnce(t, ev2, pat[p])
		for i := 0; i < 5; i++ {
			if got := packed[i]>>uint(p)&1 == 1; got != out[i] {
				t.Fatalf("pattern %d output %d: packed %v != single %v", p, i, got, out[i])
			}
		}
	}
}

// bruteFaultDetect evaluates the faulty circuit by rebuilding gate values
// with the fault forced, without cone restriction — the oracle for
// FaultDetect.
func bruteFaultDetect(nl *Netlist, inputs []uint64, f FaultSite) uint64 {
	good := make([]uint64, len(nl.Gates))
	bad := make([]uint64, len(nl.Gates))
	evalAll := func(vals []uint64, faulty bool) {
		for i, net := range nl.Inputs {
			vals[net] = inputs[i]
		}
		for _, id := range nl.order {
			g := nl.Gates[id]
			var v uint64
			switch g.Kind {
			case KInput:
				v = vals[id]
			case KConst0:
				v = 0
			case KConst1:
				v = ^uint64(0)
			default:
				var pins [3]uint64
				for p := 0; p < g.NumIn(); p++ {
					pins[p] = vals[g.In[p]]
					if faulty && id == f.Gate && int8(p) == f.Pin {
						if f.SA1 {
							pins[p] = ^uint64(0)
						} else {
							pins[p] = 0
						}
					}
				}
				v = gateFn(g.Kind, pins[0], pins[1], pins[2])
			}
			if faulty && id == f.Gate && f.Pin < 0 {
				if f.SA1 {
					v = ^uint64(0)
				} else {
					v = 0
				}
			}
			vals[id] = v
		}
	}
	evalAll(good, false)
	evalAll(bad, true)
	var det uint64
	for _, o := range nl.Outputs {
		det |= good[o] ^ bad[o]
	}
	return det
}

func TestFaultDetectMatchesBruteForce(t *testing.T) {
	nl := buildAdder4(t)
	ev := mustEval(t, nl)
	r := rand.New(rand.NewSource(9))
	inputs := make([]uint64, 8)
	for i := range inputs {
		inputs[i] = r.Uint64()
	}
	mustRun(t, ev, inputs)
	for gid := int32(0); gid < int32(len(nl.Gates)); gid++ {
		g := nl.Gates[gid]
		pins := []int8{-1}
		for p := 0; p < g.NumIn(); p++ {
			pins = append(pins, int8(p))
		}
		for _, pin := range pins {
			for _, sa1 := range []bool{false, true} {
				f := FaultSite{Gate: gid, Pin: pin, SA1: sa1}
				got := ev.FaultDetect(f)
				want := bruteFaultDetect(nl, inputs, f)
				if got != want {
					t.Fatalf("fault %v: got %#x, want %#x", f, got, want)
				}
			}
		}
	}
}

func TestFaultDetectRepeatedCalls(t *testing.T) {
	// Epoch reuse must not leak faulty values between calls.
	nl := buildAdder4(t)
	ev := mustEval(t, nl)
	inputs := []uint64{5, 9, 0xff, 0, 1, 2, 3, 4}
	mustRun(t, ev, inputs)
	f := FaultSite{Gate: nl.Outputs[0], Pin: -1, SA1: true}
	first := ev.FaultDetect(f)
	for i := 0; i < 10; i++ {
		if got := ev.FaultDetect(f); got != first {
			t.Fatalf("call %d: %#x != %#x", i, got, first)
		}
	}
	// Interleave with other faults.
	other := FaultSite{Gate: nl.Outputs[1], Pin: -1, SA1: false}
	ev.FaultDetect(other)
	if got := ev.FaultDetect(f); got != first {
		t.Fatalf("after interleave: %#x != %#x", got, first)
	}
}

func TestFaultOnMuxCircuit(t *testing.T) {
	b := NewBuilder("mux")
	s := b.Input("s")
	a := b.Input("a")
	c := b.Input("c")
	b.Output("y", b.Mux(s, a, c))
	nl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ev := mustEval(t, nl)
	// s=0 selects a; s=1 selects c. Patterns: bit0: s=0,a=1,c=0; bit1: s=1,a=0,c=1.
	ev.Run([]uint64{0b10, 0b01, 0b10})
	if got := ev.Output(0); got != 0b11 {
		t.Fatalf("mux good output = %#b, want 0b11", got)
	}
	// Stuck sel at 0: pattern 1 now selects a=0 → detected on pattern 1.
	det := ev.FaultDetect(FaultSite{Gate: nl.Gates[nl.Outputs[0]].In[0], Pin: -1, SA1: false})
	if det != 0b10 {
		t.Fatalf("sel/sa0 detect = %#b, want 0b10", det)
	}
}

func TestBuilderValidation(t *testing.T) {
	b := NewBuilder("bad")
	b.Input("a")
	if _, err := b.Build(); err == nil {
		t.Error("netlist with no outputs accepted")
	}

	b2 := NewBuilder("bad2")
	x := b2.Input("a")
	b2.Output("y", x+100) // dangling net id
	if _, err := b2.Build(); err == nil {
		t.Error("dangling output accepted")
	}
}

func TestLevelization(t *testing.T) {
	nl := buildAdder4(t)
	// Every gate's level must exceed its fan-ins' levels.
	for id, g := range nl.Gates {
		for p := 0; p < g.NumIn(); p++ {
			if nl.Level(g.In[p]) >= nl.Level(int32(id)) {
				t.Fatalf("gate %d level %d <= input level %d", id,
					nl.Level(int32(id)), nl.Level(g.In[p]))
			}
		}
	}
	if nl.Levels() <= 0 {
		t.Error("zero depth")
	}
	if nl.NumGates() <= 0 || nl.NumNets() <= nl.NumGates() {
		t.Errorf("gates=%d nets=%d", nl.NumGates(), nl.NumNets())
	}
}

func TestTreeReducers(t *testing.T) {
	b := NewBuilder("trees")
	in := b.InputBus("x", 7)
	b.Output("and", b.AndN(in...))
	b.Output("or", b.OrN(in...))
	b.Output("xor", b.XorN(in...))
	b.Output("and0", b.AndN())
	b.Output("or0", b.OrN())
	nl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ev := mustEval(t, nl)
	for v := 0; v < 128; v++ {
		in := make([]bool, 7)
		ones := 0
		for i := 0; i < 7; i++ {
			in[i] = v>>i&1 == 1
			if in[i] {
				ones++
			}
		}
		out := mustEvalOnce(t, ev, in)
		if out[0] != (ones == 7) || out[1] != (ones > 0) || out[2] != (ones%2 == 1) {
			t.Fatalf("v=%d: and=%v or=%v xor=%v", v, out[0], out[1], out[2])
		}
		if !out[3] || out[4] {
			t.Fatal("empty reducers wrong")
		}
	}
}

func TestFaultSiteString(t *testing.T) {
	if s := (FaultSite{Gate: 3, Pin: -1, SA1: true}).String(); s != "g3.out/sa1" {
		t.Errorf("got %q", s)
	}
	if s := (FaultSite{Gate: 7, Pin: 1, SA1: false}).String(); s != "g7.in1/sa0" {
		t.Errorf("got %q", s)
	}
}

func TestKindStrings(t *testing.T) {
	for k := Kind(0); int(k) < NumKinds; k++ {
		if k.String() == "" {
			t.Errorf("kind %d has no name", k)
		}
	}
}
