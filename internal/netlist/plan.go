package netlist

// EvalPlan is the compiled structure-of-arrays form of a netlist's
// combinational sweep: gates are flattened into level order and, within
// each level, sorted by Kind into contiguous runs, with the output and
// input net indices of every planned gate hoisted into parallel int32
// arrays. Evaluator.Run walks the runs with one kind dispatch per run
// and a branch-free loop over the run's gates, instead of one switch and
// one Gate load per gate — the one-pass levelized sweep of GATSPI-style
// GPU simulators, on CPU words.
//
// Source gates (inputs, constants, flip-flops) are excluded: their
// values are loaded outside the sweep and no run ever writes them. The
// plan is a property of the netlist alone, built once and shared
// read-only by every evaluator at any block width.
type EvalPlan struct {
	runs []GateRun
	out  []int32 // output net per planned gate, plan order
	in0  []int32 // first input net per planned gate
	in1  []int32 // second input net, -1 when the kind has fewer pins
	in2  []int32 // third input net (mux hi), -1 otherwise

	levels int // levels containing at least one run
}

// GateRun is one contiguous run of same-kind gates within one level of
// the plan: plan indices Start..End-1 all hold gates of kind Kind.
type GateRun struct {
	Kind  Kind
	Level int32
	Start int32
	End   int32
}

// Len returns the number of gates in the run.
func (r GateRun) Len() int { return int(r.End - r.Start) }

// Runs returns the plan's gate runs in sweep order. The returned slice
// must not be mutated.
func (p *EvalPlan) Runs() []GateRun { return p.runs }

// NumRuns returns the number of (level, kind) gate runs in the plan.
func (p *EvalPlan) NumRuns() int { return len(p.runs) }

// NumLevels returns how many levels contain at least one planned gate.
func (p *EvalPlan) NumLevels() int { return p.levels }

// NumGates returns the number of planned (non-source) gates.
func (p *EvalPlan) NumGates() int { return len(p.out) }

// Plan returns the lazily compiled SoA evaluation plan for the netlist.
// Like Cone, it is built once and immutable afterwards, so it is safe to
// share across goroutines.
func (n *Netlist) Plan() *EvalPlan {
	n.planOnce.Do(func() { n.plan = buildPlan(n) })
	return n.plan
}

// planned reports whether a gate takes part in the combinational sweep.
// Inputs and constants are loaded before the sweep; DFF outputs are
// level-0 state sources whose values only change when a sequential
// evaluator clocks them.
func planned(k Kind) bool {
	switch k {
	case KInput, KConst0, KConst1, KDFF:
		return false
	}
	return true
}

func buildPlan(n *Netlist) *EvalPlan {
	p := &EvalPlan{}
	var byKind [NumKinds][]int32
	for i := 0; i < len(n.order); {
		lvl := n.level[n.order[i]]
		j := i
		for j < len(n.order) && n.level[n.order[j]] == lvl {
			j++
		}
		for k := range byKind {
			byKind[k] = byKind[k][:0]
		}
		any := false
		for _, id := range n.order[i:j] {
			if k := n.Gates[id].Kind; planned(k) {
				byKind[k] = append(byKind[k], id)
				any = true
			}
		}
		if any {
			p.levels++
		}
		for k := range byKind {
			gs := byKind[k]
			if len(gs) == 0 {
				continue
			}
			start := int32(len(p.out))
			for _, id := range gs {
				g := &n.Gates[id]
				p.out = append(p.out, id)
				p.in0 = append(p.in0, g.In[0])
				p.in1 = append(p.in1, g.In[1])
				p.in2 = append(p.in2, g.In[2])
			}
			p.runs = append(p.runs, GateRun{
				Kind: Kind(k), Level: lvl, Start: start, End: int32(len(p.out)),
			})
		}
		i = j
	}
	return p
}
