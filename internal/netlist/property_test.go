package netlist

import (
	"math/rand"
	"testing"
)

// randomCircuit builds a random combinational DAG with the given number of
// inputs and gates; every gate kind is exercised.
func randomCircuit(t testing.TB, r *rand.Rand, nIn, nGates int) *Netlist {
	t.Helper()
	b := NewBuilder("random")
	nets := make([]int32, 0, nIn+nGates)
	for i := 0; i < nIn; i++ {
		nets = append(nets, b.InputBus("i", 1)...)
	}
	pick := func() int32 { return nets[r.Intn(len(nets))] }
	for g := 0; g < nGates; g++ {
		var n int32
		switch Kind(2 + r.Intn(NumKinds-2)) { // skip KInput, KConst0 as random picks
		case KConst1:
			n = b.Const1()
		case KBuf:
			n = b.Buf(pick())
		case KNot:
			n = b.Not(pick())
		case KAnd:
			n = b.And(pick(), pick())
		case KOr:
			n = b.Or(pick(), pick())
		case KXor:
			n = b.Xor(pick(), pick())
		case KNand:
			n = b.Nand(pick(), pick())
		case KNor:
			n = b.Nor(pick(), pick())
		case KXnor:
			n = b.Xnor(pick(), pick())
		case KMux:
			n = b.Mux(pick(), pick(), pick())
		default:
			n = b.Buf(pick())
		}
		nets = append(nets, n)
	}
	// A handful of outputs drawn from the deepest nets.
	for i := 0; i < 4; i++ {
		b.Output("o", nets[len(nets)-1-i*3])
	}
	nl, err := b.Build()
	if err != nil {
		t.Fatalf("random circuit invalid: %v", err)
	}
	return nl
}

// TestRandomCircuitsPackedVsSingle cross-checks the 64-way packed
// evaluator against per-pattern evaluation on random circuits.
func TestRandomCircuitsPackedVsSingle(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 25; trial++ {
		nl := randomCircuit(t, r, 4+r.Intn(12), 20+r.Intn(200))
		ev := mustEval(t, nl)
		nIn := len(nl.Inputs)

		inputs := make([]uint64, nIn)
		for i := range inputs {
			inputs[i] = r.Uint64()
		}
		mustRun(t, ev, inputs)
		packed := make([]uint64, len(nl.Outputs))
		for i := range packed {
			packed[i] = ev.Output(i)
		}

		ev2 := mustEval(t, nl)
		for p := 0; p < 64; p += 7 {
			pat := make([]bool, nIn)
			for i := range pat {
				pat[i] = inputs[i]>>uint(p)&1 == 1
			}
			out := mustEvalOnce(t, ev2, pat)
			for i := range out {
				if got := packed[i]>>uint(p)&1 == 1; got != out[i] {
					t.Fatalf("trial %d pattern %d output %d: packed %v single %v",
						trial, p, i, got, out[i])
				}
			}
		}
	}
}

// TestRandomCircuitsFaultDetectVsBrute cross-checks cone-limited faulty
// evaluation against the whole-circuit oracle on random circuits and
// random fault samples.
func TestRandomCircuitsFaultDetectVsBrute(t *testing.T) {
	r := rand.New(rand.NewSource(33))
	for trial := 0; trial < 12; trial++ {
		nl := randomCircuit(t, r, 4+r.Intn(10), 30+r.Intn(150))
		ev := mustEval(t, nl)
		inputs := make([]uint64, len(nl.Inputs))
		for i := range inputs {
			inputs[i] = r.Uint64()
		}
		mustRun(t, ev, inputs)

		for probe := 0; probe < 40; probe++ {
			gid := int32(r.Intn(len(nl.Gates)))
			g := nl.Gates[gid]
			pin := int8(-1)
			if n := g.NumIn(); n > 0 && r.Intn(2) == 0 {
				pin = int8(r.Intn(n))
			}
			f := FaultSite{Gate: gid, Pin: pin, SA1: r.Intn(2) == 1}
			got := ev.FaultDetect(f)
			want := bruteFaultDetect(nl, inputs, f)
			if got != want {
				t.Fatalf("trial %d fault %v: got %#x want %#x", trial, f, got, want)
			}
		}
	}
}

// TestRandomCircuitsLevelInvariant checks the levelization invariant on
// random circuits.
func TestRandomCircuitsLevelInvariant(t *testing.T) {
	r := rand.New(rand.NewSource(35))
	for trial := 0; trial < 10; trial++ {
		nl := randomCircuit(t, r, 6, 120)
		seen := make([]bool, len(nl.Gates))
		prevLevel := int32(-1)
		for _, id := range nl.Order() {
			if seen[id] {
				t.Fatal("duplicate in order")
			}
			seen[id] = true
			if nl.Level(id) < prevLevel {
				t.Fatal("order not level-sorted")
			}
			prevLevel = nl.Level(id)
			for p := 0; p < nl.Gates[id].NumIn(); p++ {
				if !seen[nl.Gates[id].In[p]] {
					t.Fatal("gate ordered before its input")
				}
			}
		}
	}
}

// TestPackInputsWideRoundTrip is the transpose round-trip property of the
// wide input packer: for every block width, packing word-level pattern
// values and then reading each (pattern, bit) back out of the stride-W
// rows must reproduce the original words exactly — PackInputsWide is a
// pure bit transpose, never lossy, at any W.
func TestPackInputsWideRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(97))
	for _, w := range []int{1, 2, 4, 8, 16} {
		for trial := 0; trial < 20; trial++ {
			width := 1 + r.Intn(64)
			busStart := r.Intn(8)
			nIn := busStart + width + r.Intn(4)
			nPat := 1 + r.Intn(64*w)
			words := make([]uint64, nPat)
			var widthMask uint64 = ^uint64(0)
			if width < 64 {
				widthMask = 1<<uint(width) - 1
			}
			for p := range words {
				words[p] = r.Uint64() & widthMask
			}

			dst := make([]uint64, nIn*w)
			PackInputsWide(dst, w, busStart, width, words)

			// Unpack: bit p%64 of word p/64 of row busStart+i is bit i of
			// pattern p.
			for p, want := range words {
				var got uint64
				for i := 0; i < width; i++ {
					got |= dst[(busStart+i)*w+p/64] >> uint(p%64) & 1 << uint(i)
				}
				if got != want {
					t.Fatalf("w=%d trial=%d pattern %d: unpacked %#x, want %#x",
						w, trial, p, got, want)
				}
			}

			// Rows outside the bus stay untouched.
			for n := 0; n < busStart; n++ {
				for j := 0; j < w; j++ {
					if dst[n*w+j] != 0 {
						t.Fatalf("w=%d trial=%d: row %d below busStart dirtied", w, trial, n)
					}
				}
			}

			// Packing the same patterns as W=1 chunks must agree word for
			// word with the wide layout (the chunked form PackInputsU64
			// callers use).
			for wd := 0; wd*64 < nPat; wd++ {
				lo, hi := wd*64, min(nPat, (wd+1)*64)
				chunk := make([]uint64, nIn)
				PackInputsU64(chunk, busStart, width, words[lo:hi])
				for n := 0; n < nIn; n++ {
					if chunk[n] != dst[n*w+wd] {
						t.Fatalf("w=%d trial=%d word %d net %d: chunked %#x wide %#x",
							w, trial, wd, n, chunk[n], dst[n*w+wd])
					}
				}
			}
		}
	}
}
