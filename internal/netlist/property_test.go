package netlist

import (
	"math/rand"
	"testing"
)

// randomCircuit builds a random combinational DAG with the given number of
// inputs and gates; every gate kind is exercised.
func randomCircuit(t testing.TB, r *rand.Rand, nIn, nGates int) *Netlist {
	t.Helper()
	b := NewBuilder("random")
	nets := make([]int32, 0, nIn+nGates)
	for i := 0; i < nIn; i++ {
		nets = append(nets, b.InputBus("i", 1)...)
	}
	pick := func() int32 { return nets[r.Intn(len(nets))] }
	for g := 0; g < nGates; g++ {
		var n int32
		switch Kind(2 + r.Intn(NumKinds-2)) { // skip KInput, KConst0 as random picks
		case KConst1:
			n = b.Const1()
		case KBuf:
			n = b.Buf(pick())
		case KNot:
			n = b.Not(pick())
		case KAnd:
			n = b.And(pick(), pick())
		case KOr:
			n = b.Or(pick(), pick())
		case KXor:
			n = b.Xor(pick(), pick())
		case KNand:
			n = b.Nand(pick(), pick())
		case KNor:
			n = b.Nor(pick(), pick())
		case KXnor:
			n = b.Xnor(pick(), pick())
		case KMux:
			n = b.Mux(pick(), pick(), pick())
		default:
			n = b.Buf(pick())
		}
		nets = append(nets, n)
	}
	// A handful of outputs drawn from the deepest nets.
	for i := 0; i < 4; i++ {
		b.Output("o", nets[len(nets)-1-i*3])
	}
	nl, err := b.Build()
	if err != nil {
		t.Fatalf("random circuit invalid: %v", err)
	}
	return nl
}

// TestRandomCircuitsPackedVsSingle cross-checks the 64-way packed
// evaluator against per-pattern evaluation on random circuits.
func TestRandomCircuitsPackedVsSingle(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 25; trial++ {
		nl := randomCircuit(t, r, 4+r.Intn(12), 20+r.Intn(200))
		ev := mustEval(t, nl)
		nIn := len(nl.Inputs)

		inputs := make([]uint64, nIn)
		for i := range inputs {
			inputs[i] = r.Uint64()
		}
		mustRun(t, ev, inputs)
		packed := make([]uint64, len(nl.Outputs))
		for i := range packed {
			packed[i] = ev.Output(i)
		}

		ev2 := mustEval(t, nl)
		for p := 0; p < 64; p += 7 {
			pat := make([]bool, nIn)
			for i := range pat {
				pat[i] = inputs[i]>>uint(p)&1 == 1
			}
			out := mustEvalOnce(t, ev2, pat)
			for i := range out {
				if got := packed[i]>>uint(p)&1 == 1; got != out[i] {
					t.Fatalf("trial %d pattern %d output %d: packed %v single %v",
						trial, p, i, got, out[i])
				}
			}
		}
	}
}

// TestRandomCircuitsFaultDetectVsBrute cross-checks cone-limited faulty
// evaluation against the whole-circuit oracle on random circuits and
// random fault samples.
func TestRandomCircuitsFaultDetectVsBrute(t *testing.T) {
	r := rand.New(rand.NewSource(33))
	for trial := 0; trial < 12; trial++ {
		nl := randomCircuit(t, r, 4+r.Intn(10), 30+r.Intn(150))
		ev := mustEval(t, nl)
		inputs := make([]uint64, len(nl.Inputs))
		for i := range inputs {
			inputs[i] = r.Uint64()
		}
		mustRun(t, ev, inputs)

		for probe := 0; probe < 40; probe++ {
			gid := int32(r.Intn(len(nl.Gates)))
			g := nl.Gates[gid]
			pin := int8(-1)
			if n := g.NumIn(); n > 0 && r.Intn(2) == 0 {
				pin = int8(r.Intn(n))
			}
			f := FaultSite{Gate: gid, Pin: pin, SA1: r.Intn(2) == 1}
			got := ev.FaultDetect(f)
			want := bruteFaultDetect(nl, inputs, f)
			if got != want {
				t.Fatalf("trial %d fault %v: got %#x want %#x", trial, f, got, want)
			}
		}
	}
}

// TestRandomCircuitsLevelInvariant checks the levelization invariant on
// random circuits.
func TestRandomCircuitsLevelInvariant(t *testing.T) {
	r := rand.New(rand.NewSource(35))
	for trial := 0; trial < 10; trial++ {
		nl := randomCircuit(t, r, 6, 120)
		seen := make([]bool, len(nl.Gates))
		prevLevel := int32(-1)
		for _, id := range nl.Order() {
			if seen[id] {
				t.Fatal("duplicate in order")
			}
			seen[id] = true
			if nl.Level(id) < prevLevel {
				t.Fatal("order not level-sorted")
			}
			prevLevel = nl.Level(id)
			for p := 0; p < nl.Gates[id].NumIn(); p++ {
				if !seen[nl.Gates[id].In[p]] {
					t.Fatal("gate ordered before its input")
				}
			}
		}
	}
}
