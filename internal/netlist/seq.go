package netlist

import (
	"errors"
	"fmt"
)

// Sequential extension: D flip-flops. A DFF's output behaves as a state
// source during combinational evaluation (level 0, like a primary input);
// its D input is sampled when the clock ticks. DFFs are created as
// placeholders first and connected after the downstream logic exists, so
// feedback through registers is expressible while the combinational part
// stays acyclic.

// DFF declares a flip-flop and returns its output (Q) net. Connect its D
// input later with ConnectD; Build fails on dangling DFFs.
func (b *Builder) DFF() int32 {
	n := b.add(KDFF)
	b.gates[n].In[0] = -1
	return n
}

// DFFBus declares width flip-flops.
func (b *Builder) DFFBus(width int) []int32 {
	out := make([]int32, width)
	for i := range out {
		out[i] = b.DFF()
	}
	return out
}

// ConnectD wires net d to the flip-flop's data input. A bad target is
// reported both in the returned error and — so chained builder code need
// not check every call — by Build, which fails with the first recorded
// builder error.
func (b *Builder) ConnectD(dff, d int32) error {
	if dff < 0 || int(dff) >= len(b.gates) || b.gates[dff].Kind != KDFF {
		err := fmt.Errorf("netlist: ConnectD on non-DFF net %d", dff)
		b.recordErr(err)
		return err
	}
	if d < 0 || int(d) >= len(b.gates) {
		err := fmt.Errorf("netlist: ConnectD(%d): bad data net %d", dff, d)
		b.recordErr(err)
		return err
	}
	b.gates[dff].In[0] = d
	return nil
}

// NumDFFs returns the flip-flop count of the netlist.
func (n *Netlist) NumDFFs() int {
	c := 0
	for _, g := range n.Gates {
		if g.Kind == KDFF {
			c++
		}
	}
	return c
}

// SeqEvaluator simulates a sequential netlist cycle by cycle with 64
// machines in parallel: bit 0 of every packed word is the fault-free
// machine, bits 1..63 carry faulty machines, each with one stem stuck-at
// fault forced after every evaluation (parallel-fault sequential
// simulation). Faulty state diverges naturally across cycles through the
// flip-flops.
type SeqEvaluator struct {
	nl    *Netlist
	vals  []uint64
	state []uint64 // per-DFF packed Q values
	dffs  []int32

	force0 map[int32]uint64 // per-net force-to-0 machine masks
	force1 map[int32]uint64
}

// NewSeqEvaluator creates a sequential evaluator with no faults loaded.
func NewSeqEvaluator(nl *Netlist) *SeqEvaluator {
	e := &SeqEvaluator{
		nl:     nl,
		vals:   make([]uint64, len(nl.Gates)),
		force0: map[int32]uint64{},
		force1: map[int32]uint64{},
	}
	for id, g := range nl.Gates {
		if g.Kind == KDFF {
			e.dffs = append(e.dffs, int32(id))
		}
	}
	e.state = make([]uint64, len(e.dffs))
	return e
}

// LoadFaults assigns up to 63 stem (gate-output) stuck-at faults to
// machines 1..len(faults). It resets the state.
func (e *SeqEvaluator) LoadFaults(faults []FaultSite) error {
	if len(faults) > 63 {
		return errors.New("netlist: at most 63 faults per sequential batch")
	}
	for k := range e.force0 {
		delete(e.force0, k)
	}
	for k := range e.force1 {
		delete(e.force1, k)
	}
	for i, f := range faults {
		if f.Pin >= 0 {
			return fmt.Errorf("netlist: sequential simulation supports stem faults only (got %v)", f)
		}
		bit := uint64(1) << uint(i+1)
		if f.SA1 {
			e.force1[f.Gate] |= bit
		} else {
			e.force0[f.Gate] |= bit
		}
	}
	e.Reset()
	return nil
}

// Reset clears all flip-flops (all machines).
func (e *SeqEvaluator) Reset() {
	for i := range e.state {
		e.state[i] = 0
	}
}

// Step applies one input vector (one bit per primary input, broadcast to
// all machines), evaluates the cycle, clocks the flip-flops, and returns
// a mask of machines whose primary outputs differ from machine 0. It
// returns an error (without clocking the state) when the input arity does
// not match the circuit.
func (e *SeqEvaluator) Step(inputs []bool) (uint64, error) {
	if len(inputs) != len(e.nl.Inputs) {
		return 0, fmt.Errorf("netlist: Step got %d inputs, circuit %s has %d",
			len(inputs), e.nl.Name, len(e.nl.Inputs))
	}
	for i, net := range e.nl.Inputs {
		var v uint64
		if inputs[i] {
			v = ^uint64(0)
		}
		e.vals[net] = e.forced(net, v)
	}
	di := 0
	for _, id := range e.nl.Order() {
		g := &e.nl.Gates[id]
		switch g.Kind {
		case KInput:
			// loaded above
		case KConst0:
			e.vals[id] = e.forced(id, 0)
		case KConst1:
			e.vals[id] = e.forced(id, ^uint64(0))
		case KDFF:
			// State source; order of e.dffs follows gate order.
			e.vals[id] = e.forced(id, e.state[e.dffIndex(id, &di)])
		default:
			v := gateFn(g.Kind, e.vals[g.In[0]], e.seqIn(g, 1), e.seqIn(g, 2))
			e.vals[id] = e.forced(id, v)
		}
	}
	// Detection: any output bit differing from machine 0.
	var det uint64
	for _, out := range e.nl.Outputs {
		v := e.vals[out]
		good := v & 1
		ref := uint64(0)
		if good == 1 {
			ref = ^uint64(0)
		}
		det |= v ^ ref
	}
	// Clock: sample D inputs.
	for i, id := range e.dffs {
		d := e.nl.Gates[id].In[0]
		e.state[i] = e.vals[d]
	}
	return det &^ 1, nil
}

func (e *SeqEvaluator) seqIn(g *Gate, pin int) uint64 {
	if g.In[pin] < 0 {
		return 0
	}
	return e.vals[g.In[pin]]
}

// dffIndex resolves the state slot of a DFF; e.dffs is in ascending gate
// order and Order() visits level-0 gates in ascending id order, so a
// moving cursor suffices.
func (e *SeqEvaluator) dffIndex(id int32, cursor *int) int {
	for e.dffs[*cursor] != id {
		*cursor++
		if *cursor >= len(e.dffs) {
			*cursor = 0
		}
	}
	return *cursor
}

func (e *SeqEvaluator) forced(net int32, v uint64) uint64 {
	if m, ok := e.force1[net]; ok {
		v |= m
	}
	if m, ok := e.force0[net]; ok {
		v &^= m
	}
	return v
}

// OutputBit returns output i of machine 0 after the last Step.
func (e *SeqEvaluator) OutputBit(i int) bool {
	return e.vals[e.nl.Outputs[i]]&1 == 1
}
