package netlist

import (
	"math/rand"
	"testing"
)

// buildCounter returns a 4-bit counter with enable: q' = en ? q+1 : q.
func buildCounter(t testing.TB) *Netlist {
	t.Helper()
	b := NewBuilder("counter")
	en := b.Input("en")
	q := b.DFFBus(4)
	carry := en
	for i := 0; i < 4; i++ {
		sum := b.Xor(q[i], carry)
		carry = b.And(q[i], carry)
		b.ConnectD(q[i], sum)
	}
	b.OutputBus("q", q)
	nl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return nl
}

func counterValue(e *SeqEvaluator) int {
	v := 0
	for i := 0; i < 4; i++ {
		if e.OutputBit(i) {
			v |= 1 << i
		}
	}
	return v
}

func TestSeqCounterCounts(t *testing.T) {
	nl := buildCounter(t)
	if nl.NumDFFs() != 4 {
		t.Fatalf("DFFs = %d", nl.NumDFFs())
	}
	e := NewSeqEvaluator(nl)
	// Outputs read the DFF Q values computed during the step (pre-clock
	// state), so after k enabled steps the visible count is k-1.
	for step := 0; step < 20; step++ {
		mustStep(t, e, []bool{true})
		want := step % 16
		if got := counterValue(e); got != want {
			t.Fatalf("step %d: count %d, want %d", step, got, want)
		}
	}
	// Stall: the state stops advancing (the first stalled step still shows
	// the value clocked by the last enabled step; after that it holds).
	mustStep(t, e, []bool{false})
	before := counterValue(e)
	for i := 0; i < 3; i++ {
		mustStep(t, e, []bool{false})
		if got := counterValue(e); got != before {
			t.Fatalf("stall changed count %d -> %d", before, got)
		}
	}
}

func TestSeqEvaluatorRejectsPinFaults(t *testing.T) {
	nl := buildCounter(t)
	e := NewSeqEvaluator(nl)
	if err := e.LoadFaults([]FaultSite{{Gate: 1, Pin: 0, SA1: true}}); err == nil {
		t.Fatal("pin fault accepted")
	}
	if err := e.LoadFaults(make([]FaultSite, 64)); err == nil {
		t.Fatal("64-fault batch accepted")
	}
}

// TestSeqBatchMatchesSingle cross-checks 63-fault batches against
// single-fault runs on the counter.
func TestSeqBatchMatchesSingle(t *testing.T) {
	nl := buildCounter(t)
	r := rand.New(rand.NewSource(71))
	seq := make([][]bool, 40)
	for i := range seq {
		seq[i] = []bool{r.Intn(4) != 0}
	}

	var sites []FaultSite
	for id := int32(0); id < int32(len(nl.Gates)); id++ {
		if k := nl.Gates[id].Kind; k == KConst0 || k == KConst1 {
			continue
		}
		sites = append(sites, FaultSite{Gate: id, Pin: -1, SA1: false},
			FaultSite{Gate: id, Pin: -1, SA1: true})
	}

	firstDetect := func(fs []FaultSite) map[FaultSite]int {
		out := map[FaultSite]int{}
		for batch := 0; batch < len(fs); batch += 63 {
			end := batch + 63
			if end > len(fs) {
				end = len(fs)
			}
			e := NewSeqEvaluator(nl)
			if err := e.LoadFaults(fs[batch:end]); err != nil {
				t.Fatal(err)
			}
			var seen uint64
			for step, in := range seq {
				det := mustStep(t, e, in) &^ seen
				seen |= det
				for k := 1; k <= end-batch; k++ {
					if det>>uint(k)&1 == 1 {
						out[fs[batch+k-1]] = step
					}
				}
			}
		}
		return out
	}

	batched := firstDetect(sites)
	for _, s := range sites {
		single := firstDetect([]FaultSite{s})
		want, okW := single[s]
		got, okG := batched[s]
		if okW != okG || want != got {
			t.Fatalf("fault %v: single (%d,%v) != batched (%d,%v)", s, want, okW, got, okG)
		}
	}
}

// TestSeqStateFaultNeedsCycles checks a fault that only becomes observable
// after state accumulates: stuck carry in the counter.
func TestSeqStateFaultNeedsCycles(t *testing.T) {
	nl := buildCounter(t)
	// The carry AND of bit 0 (first KAnd gate) stuck at 0: counting stops
	// propagating into bit 1, detectable only at the 2nd enabled cycle.
	var carryAnd int32 = -1
	for id, g := range nl.Gates {
		if g.Kind == KAnd {
			carryAnd = int32(id)
			break
		}
	}
	if carryAnd < 0 {
		t.Fatal("no AND gate")
	}
	e := NewSeqEvaluator(nl)
	if err := e.LoadFaults([]FaultSite{{Gate: carryAnd, Pin: -1, SA1: false}}); err != nil {
		t.Fatal(err)
	}
	det1 := mustStep(t, e, []bool{true}) // q: 0 -> 1, carry irrelevant
	if det1 != 0 {
		t.Fatalf("fault visible too early: %#x", det1)
	}
	det2 := mustStep(t, e, []bool{true}) // good q -> 2; faulty stays 1... observed next
	det3 := mustStep(t, e, []bool{true})
	if det2&2 == 0 && det3&2 == 0 {
		t.Fatal("stuck carry never detected")
	}
}
