package netlist

// StemCone is the static downstream cone of one fanout stem, compiled to
// a flat op list in non-decreasing level order (so a single forward pass
// evaluates producers before consumers), plus the primary-output nets the
// stem reaches — including the stem itself when it is an output.
//
// The wide observability fill flips a stem to the complement of its
// fault-free row across a whole block (64×W patterns). Such a flip
// diverges essentially the entire cone — across hundreds of patterns
// some pattern sensitizes almost every path — so an event-driven walk
// re-discovers the same static cone every block while paying scheduling
// (stamps, fan-out scans, level buckets) per gate per fill. Evaluating
// the precompiled op list instead makes the fill a flat loop whose only
// per-gate work is the gate function itself.
//
// Each op's operand slots are resolved at build time: an operand inside
// the cone (or the stem itself) reads the faulty half of the evaluator's
// combined good|faulty buffer, anything else reads the good half. That
// removes the per-operand stamp check (a data-dependent load) the
// event-driven walk needs to decide which copy holds the operand.
type StemCone struct {
	Ops  []ConeOp // compiled cone in level order; nil when over budget
	Outs []int32  // reachable primary-output nets (stem included when an output)
}

// ConeOp is one compiled cone gate: Kind selects the gate function and
// Dst/A/B/C are row slots into the evaluator's combined buffer — slot s
// addresses words s*w .. s*w+w-1, with slots below len(Gates) in the good
// half and slots offset by len(Gates) in the faulty half. Dst always
// points at the faulty half.
type ConeOp struct {
	Dst, A, B, C int32
	Kind         uint8
}

// Compiled cone op kinds, mirroring the combinational gate kinds a cone
// can contain (sources have no input pins, so they never appear in a
// fan-out cone).
const (
	copBuf uint8 = iota
	copNot
	copAnd
	copOr
	copXor
	copNand
	copNor
	copXnor
	copMux
)

// stemConeBudget bounds the total number of cone ops cached per netlist.
// Stems past the budget keep nil lists and the observability fill falls
// back to the event-driven walk for them.
const stemConeBudget = 1 << 23

// StemCones returns the per-gate static cone cache, indexed by gate id;
// non-stem gates (fanout below two) hold empty entries. Built once per
// netlist on first use and immutable afterwards, so it is safe to share
// across evaluators and goroutines.
func (n *Netlist) StemCones() []StemCone {
	n.stemOnce.Do(func() { n.stemCones = buildStemCones(n) })
	return n.stemCones
}

func buildStemCones(n *Netlist) []StemCone {
	ng := len(n.Gates)
	cones := make([]StemCone, ng)

	isOut := make([]bool, ng)
	for _, o := range n.Outputs {
		isOut[o] = true
	}

	// Gates that reach no primary output can never influence an
	// observability row; leaving them out of the lists skips their
	// evaluation on every fill. Their consumers are equally unreachable,
	// so no retained gate ever reads a dropped gate's row.
	reach := n.Cone().firstOut

	// Per-stem reachability with epoch-stamped visits; level buckets are
	// reused across stems to emit each cone in level order without a sort.
	seen := make([]uint32, ng)
	epoch := uint32(0)
	buckets := make([][]int32, n.maxLvl+1)
	queue := make([]int32, 0, 256)
	budget := stemConeBudget

	for g := int32(0); g < int32(ng); g++ {
		if len(n.fanout[g]) < 2 {
			continue
		}
		epoch++
		queue = queue[:0]
		seen[g] = epoch
		total := 0
		for _, c := range n.fanout[g] {
			if seen[c] != epoch && reach[c] >= 0 {
				seen[c] = epoch
				queue = append(queue, c)
			}
		}
		for qi := 0; qi < len(queue); qi++ {
			id := queue[qi]
			l := n.level[id]
			buckets[l] = append(buckets[l], id)
			total++
			for _, c := range n.fanout[id] {
				if seen[c] != epoch && reach[c] >= 0 {
					seen[c] = epoch
					queue = append(queue, c)
				}
			}
		}
		if total > budget {
			for l := range buckets {
				buckets[l] = buckets[l][:0]
			}
			continue // over budget: this stem falls back to the event walk
		}
		budget -= total
		sc := &cones[g]
		sc.Ops = make([]ConeOp, 0, total)
		for l := range buckets {
			for _, id := range buckets[l] {
				sc.Ops = append(sc.Ops, compileConeOp(n, seen, epoch, id))
				if isOut[id] {
					sc.Outs = append(sc.Outs, id)
				}
			}
			buckets[l] = buckets[l][:0]
		}
		if isOut[g] {
			sc.Outs = append(sc.Outs, g)
		}
	}
	return cones
}

// compileConeOp resolves gate id into a ConeOp for the stem whose cone
// membership is marked in seen with the given epoch: member operands
// (including the stem) read the faulty half, everything else the good
// half. Operands always sit at strictly lower levels than their consumer,
// so member operands are written before any op reads them.
func compileConeOp(n *Netlist, seen []uint32, epoch uint32, id int32) ConeOp {
	ng := int32(len(n.Gates))
	slot := func(net int32) int32 {
		if seen[net] == epoch {
			return ng + net
		}
		return net
	}
	g := &n.Gates[id]
	op := ConeOp{Dst: ng + id}
	switch g.Kind {
	case KBuf:
		op.Kind, op.A = copBuf, slot(g.In[0])
	case KNot:
		op.Kind, op.A = copNot, slot(g.In[0])
	case KAnd:
		op.Kind, op.A, op.B = copAnd, slot(g.In[0]), slot(g.In[1])
	case KOr:
		op.Kind, op.A, op.B = copOr, slot(g.In[0]), slot(g.In[1])
	case KXor:
		op.Kind, op.A, op.B = copXor, slot(g.In[0]), slot(g.In[1])
	case KNand:
		op.Kind, op.A, op.B = copNand, slot(g.In[0]), slot(g.In[1])
	case KNor:
		op.Kind, op.A, op.B = copNor, slot(g.In[0]), slot(g.In[1])
	case KXnor:
		op.Kind, op.A, op.B = copXnor, slot(g.In[0]), slot(g.In[1])
	case KMux:
		op.Kind = copMux
		op.A, op.B, op.C = slot(g.In[0]), slot(g.In[1]), slot(g.In[2])
	default:
		// Sources have no fan-in and can never be enqueued as a consumer;
		// keep a harmless self-copy so an unexpected kind stays a no-op.
		op.Kind, op.A = copBuf, id
	}
	return op
}

// evalConeOps runs a compiled cone against the evaluator's combined
// good|faulty buffer at width w. evalConeOps16 is the same loop with the
// dominant width fixed so every word loop has a constant trip count and
// no bounds checks.
func evalConeOps(gf []uint64, ops []ConeOp, w int) {
	for i := range ops {
		op := &ops[i]
		dst := gf[int(op.Dst)*w : int(op.Dst)*w+w]
		a := gf[int(op.A)*w:]
		a = a[:len(dst)]
		switch op.Kind {
		case copBuf:
			copy(dst, a)
		case copNot:
			for j := range dst {
				dst[j] = ^a[j]
			}
		case copAnd:
			b := gf[int(op.B)*w:]
			b = b[:len(dst)]
			for j := range dst {
				dst[j] = a[j] & b[j]
			}
		case copOr:
			b := gf[int(op.B)*w:]
			b = b[:len(dst)]
			for j := range dst {
				dst[j] = a[j] | b[j]
			}
		case copXor:
			b := gf[int(op.B)*w:]
			b = b[:len(dst)]
			for j := range dst {
				dst[j] = a[j] ^ b[j]
			}
		case copNand:
			b := gf[int(op.B)*w:]
			b = b[:len(dst)]
			for j := range dst {
				dst[j] = ^(a[j] & b[j])
			}
		case copNor:
			b := gf[int(op.B)*w:]
			b = b[:len(dst)]
			for j := range dst {
				dst[j] = ^(a[j] | b[j])
			}
		case copXnor:
			b := gf[int(op.B)*w:]
			b = b[:len(dst)]
			for j := range dst {
				dst[j] = ^(a[j] ^ b[j])
			}
		case copMux:
			b := gf[int(op.B)*w:]
			b = b[:len(dst)]
			c := gf[int(op.C)*w:]
			c = c[:len(dst)]
			for j := range dst {
				dst[j] = (a[j] & c[j]) | (^a[j] & b[j])
			}
		}
	}
}

func evalConeOps16(gf []uint64, ops []ConeOp) {
	for i := range ops {
		op := &ops[i]
		dst := (*[16]uint64)(gf[int(op.Dst)*16:])
		a := (*[16]uint64)(gf[int(op.A)*16:])
		switch op.Kind {
		case copBuf:
			*dst = *a
		case copNot:
			for j := range dst {
				dst[j] = ^a[j]
			}
		case copAnd:
			b := (*[16]uint64)(gf[int(op.B)*16:])
			for j := range dst {
				dst[j] = a[j] & b[j]
			}
		case copOr:
			b := (*[16]uint64)(gf[int(op.B)*16:])
			for j := range dst {
				dst[j] = a[j] | b[j]
			}
		case copXor:
			b := (*[16]uint64)(gf[int(op.B)*16:])
			for j := range dst {
				dst[j] = a[j] ^ b[j]
			}
		case copNand:
			b := (*[16]uint64)(gf[int(op.B)*16:])
			for j := range dst {
				dst[j] = ^(a[j] & b[j])
			}
		case copNor:
			b := (*[16]uint64)(gf[int(op.B)*16:])
			for j := range dst {
				dst[j] = ^(a[j] | b[j])
			}
		case copXnor:
			b := (*[16]uint64)(gf[int(op.B)*16:])
			for j := range dst {
				dst[j] = ^(a[j] ^ b[j])
			}
		case copMux:
			b := (*[16]uint64)(gf[int(op.B)*16:])
			c := (*[16]uint64)(gf[int(op.C)*16:])
			for j := range dst {
				dst[j] = (a[j] & c[j]) | (^a[j] & b[j])
			}
		}
	}
}
