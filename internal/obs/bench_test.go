package obs

import (
	"testing"
)

// The hot-path benchmarks backing BENCH_obs.json: a counter increment
// and a span start/stop must stay cheap enough that instrumenting the
// fault-sim inner loop (which batches updates per shard anyway) costs
// well under 1% of the simulation itself.

func BenchmarkObsCounterInc(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench_total")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkObsCounterIncParallel(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench_total")
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkObsHistogramObserve(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("bench_seconds", DefLatencyBuckets())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(0.0042)
	}
}

func BenchmarkObsSpanStartStop(b *testing.B) {
	tr := NewTracer("")
	root := tr.Start(nil, KindCampaign, "bench")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := tr.Start(root, KindStage, "stage")
		sp.End()
	}
}

func BenchmarkObsNilCounterInc(b *testing.B) {
	var r *Registry
	c := r.Counter("bench_total")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// The disarmed fleet-tracing path: every shard dispatch calls these
// even when no tracer is configured, so they must be near-free.
func BenchmarkObsNilTracerSpan(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := tr.Start(nil, KindShard, "shard")
		_ = sp.Context()
		sp.Annotate("side", "client")
		sp.End()
	}
}

func BenchmarkObsTraceHeaderRoundTrip(b *testing.B) {
	sc := SpanContext{Trace: NewTraceID(), Span: 0xabcdef12, Flags: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := sc.Header()
		if _, err := ParseTraceHeader(h); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkObsHistogramObserveExemplar(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("bench_seconds", DefLatencyBuckets())
	tid := NewTraceID().String()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.ObserveExemplar(0.0042, tid)
	}
}

func BenchmarkObsNilUsageMeter(b *testing.B) {
	var u *UsageMeter
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u.AddFaultBlocks("t", 64)
	}
}
