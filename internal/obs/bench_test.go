package obs

import (
	"testing"
)

// The hot-path benchmarks backing BENCH_obs.json: a counter increment
// and a span start/stop must stay cheap enough that instrumenting the
// fault-sim inner loop (which batches updates per shard anyway) costs
// well under 1% of the simulation itself.

func BenchmarkObsCounterInc(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench_total")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkObsCounterIncParallel(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench_total")
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkObsHistogramObserve(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("bench_seconds", DefLatencyBuckets())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(0.0042)
	}
}

func BenchmarkObsSpanStartStop(b *testing.B) {
	tr := NewTracer("")
	root := tr.Start(nil, KindCampaign, "bench")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := tr.Start(root, KindStage, "stage")
		sp.End()
	}
}

func BenchmarkObsNilCounterInc(b *testing.B) {
	var r *Registry
	c := r.Counter("bench_total")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}
