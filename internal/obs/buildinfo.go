package obs

import (
	"fmt"
	"runtime"
	"runtime/debug"
)

// RegisterBuildInfo publishes the classic build-info gauge — value 1,
// identity in the labels — so fleet rollouts are visible as label
// transitions in metrics. Every daemon (stlserver, stlworker,
// stlcompact) registers it at startup with its component name.
func RegisterBuildInfo(r *Registry, component string) {
	if r == nil {
		return
	}
	version := "unknown"
	if bi, ok := debug.ReadBuildInfo(); ok {
		if bi.Main.Version != "" {
			version = bi.Main.Version
		}
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" && len(s.Value) >= 12 {
				version = s.Value[:12]
			}
		}
	}
	r.Gauge(fmt.Sprintf(`gpustl_build_info{component=%q,version=%q,goversion=%q}`,
		component, version, runtime.Version())).Set(1)
}
