package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Exemplar is one concrete observation attached to a histogram bucket:
// the value, the trace it belongs to, and when it happened. It is the
// link from an aggregate ("p99 latency is burning the SLO") to a
// specific campaign trace stltrace can open.
type Exemplar struct {
	Value   float64
	TraceID string
	TimeNS  int64
}

// ObserveExemplar records v like Observe and additionally attaches the
// trace ID as the bucket's exemplar (last writer wins — operators want
// a recent offending trace, not the first ever). The Observe hot path
// is untouched: exemplar storage is a separate mutex-guarded slot per
// bucket, and callers use ObserveExemplar only on per-campaign or
// per-shard observations, never in inner loops.
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	if h == nil {
		return
	}
	h.Observe(v)
	if traceID == "" {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.exMu.Lock()
	if h.ex == nil {
		h.ex = make([]Exemplar, len(h.bounds)+1)
	}
	h.ex[i] = Exemplar{Value: v, TraceID: traceID, TimeNS: time.Now().UnixNano()}
	h.exMu.Unlock()
}

// exemplar returns the bucket's exemplar and whether one is set.
func (h *Histogram) exemplar(bucket int) (Exemplar, bool) {
	h.exMu.Lock()
	defer h.exMu.Unlock()
	if h.ex == nil || bucket >= len(h.ex) || h.ex[bucket].TraceID == "" {
		return Exemplar{}, false
	}
	return h.ex[bucket], true
}

// WriteOpenMetrics renders the registry in the OpenMetrics text format:
// the same series WritePrometheus emits, plus `# {trace_id="..."}`
// exemplars on histogram buckets and the terminating `# EOF`. The
// classic text format cannot carry exemplars, so /metrics serves this
// only when the scraper asks for it via Accept negotiation.
func (r *Registry) WriteOpenMetrics(w io.Writer) error {
	if r == nil {
		_, err := io.WriteString(w, "# EOF\n")
		return err
	}
	r.mu.RLock()
	defer r.mu.RUnlock()

	var names []string
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.gauges {
		names = append(names, n)
	}
	for n := range r.hists {
		names = append(names, n)
	}
	sort.Strings(names)

	typed := map[string]bool{}
	for _, name := range names {
		base, labels := splitSeries(name)
		switch {
		case r.gauges[name] != nil:
			if !typed[base] {
				if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n", base); err != nil {
					return err
				}
				typed[base] = true
			}
			if _, err := fmt.Fprintf(w, "%s %g\n", name, r.gauges[name].Value()); err != nil {
				return err
			}
		case r.hists[name] != nil:
			if !typed[base] {
				if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", base); err != nil {
					return err
				}
				typed[base] = true
			}
			h := r.hists[name]
			cum := uint64(0)
			for i, b := range h.bounds {
				cum += h.counts[i].Load()
				line := fmt.Sprintf("%s %d", bucketSeries(base, labels, fmt.Sprintf("%g", b)), cum)
				if ex, ok := h.exemplar(i); ok {
					line += fmt.Sprintf(" # {trace_id=%q} %g %.3f",
						ex.TraceID, ex.Value, float64(ex.TimeNS)/1e9)
				}
				if _, err := fmt.Fprintln(w, line); err != nil {
					return err
				}
			}
			cum += h.counts[len(h.bounds)].Load()
			line := fmt.Sprintf("%s %d", bucketSeries(base, labels, "+Inf"), cum)
			if ex, ok := h.exemplar(len(h.bounds)); ok {
				line += fmt.Sprintf(" # {trace_id=%q} %g %.3f",
					ex.TraceID, ex.Value, float64(ex.TimeNS)/1e9)
			}
			if _, err := fmt.Fprintln(w, line); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s %g\n", series(base+"_sum", labels), h.Sum()); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s %d\n", series(base+"_count", labels), h.Count()); err != nil {
				return err
			}
		default:
			// OpenMetrics declares counter metadata on the name sans
			// _total; the sample keeps the full series name.
			md := strings.TrimSuffix(base, "_total")
			if !typed[md] {
				if _, err := fmt.Fprintf(w, "# TYPE %s counter\n", md); err != nil {
					return err
				}
				typed[md] = true
			}
			if _, err := fmt.Fprintf(w, "%s %d\n", name, r.counters[name].Value()); err != nil {
				return err
			}
		}
	}
	_, err := io.WriteString(w, "# EOF\n")
	return err
}
