package obs

import (
	"net/http/httptest"
	"strings"
	"testing"
)

func TestObserveExemplarAttachesTrace(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat_seconds", []float64{0.1, 1})
	tid := NewTraceID().String()

	h.ObserveExemplar(0.05, tid)
	if got := h.Count(); got != 1 {
		t.Fatalf("exemplar observation not counted: %d", got)
	}
	ex, ok := h.exemplar(0)
	if !ok || ex.TraceID != tid || ex.Value != 0.05 {
		t.Fatalf("bucket 0 exemplar = %+v ok=%v, want trace %s value 0.05", ex, ok, tid)
	}

	// Last writer wins within a bucket.
	tid2 := NewTraceID().String()
	h.ObserveExemplar(0.07, tid2)
	if ex, _ := h.exemplar(0); ex.TraceID != tid2 {
		t.Errorf("bucket exemplar not replaced: %+v", ex)
	}

	// +Inf bucket gets its own slot.
	h.ObserveExemplar(30, tid)
	if ex, ok := h.exemplar(2); !ok || ex.TraceID != tid {
		t.Errorf("+Inf exemplar = %+v ok=%v", ex, ok)
	}

	// Empty trace ID observes without attaching.
	h.ObserveExemplar(0.5, "")
	if _, ok := h.exemplar(1); ok {
		t.Error("empty trace ID attached an exemplar")
	}

	// Nil histogram is a no-op.
	var nilH *Histogram
	nilH.ObserveExemplar(1, tid)
}

func TestWriteOpenMetricsCarriesExemplars(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("reqs_total").Add(2)
	reg.Gauge("depth").Set(3)
	h := reg.Histogram("lat_seconds", []float64{0.1, 1})
	tid := NewTraceID().String()
	h.ObserveExemplar(0.05, tid)

	var sb strings.Builder
	if err := reg.WriteOpenMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasSuffix(out, "# EOF\n") {
		t.Errorf("OpenMetrics output not terminated with # EOF:\n%s", out)
	}
	// Counter metadata drops _total; the sample keeps it.
	if !strings.Contains(out, "# TYPE reqs counter\n") || !strings.Contains(out, "reqs_total 2\n") {
		t.Errorf("counter rendering wrong:\n%s", out)
	}
	exLine := `lat_seconds_bucket{le="0.1"} 1 # {trace_id="` + tid + `"} 0.05`
	if !strings.Contains(out, exLine) {
		t.Errorf("bucket exemplar missing; want prefix %q in:\n%s", exLine, out)
	}
	// Buckets without exemplars stay plain.
	if !strings.Contains(out, `lat_seconds_bucket{le="+Inf"} 1`+"\n") {
		t.Errorf("+Inf bucket wrong:\n%s", out)
	}

	// Nil registry still emits a terminated document.
	sb.Reset()
	var nilReg *Registry
	if err := nilReg.WriteOpenMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.String() != "# EOF\n" {
		t.Errorf("nil registry OpenMetrics = %q", sb.String())
	}
}

func TestMetricsEndpointContentNegotiation(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat_seconds", []float64{0.1, 1})
	tid := NewTraceID().String()
	h.ObserveExemplar(0.05, tid)
	mux := NewDebugMuxSLO(reg, "", nil)

	// Default scrape: classic text format, no exemplars.
	rr := httptest.NewRecorder()
	mux.ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rr.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("default content type = %q", ct)
	}
	if strings.Contains(rr.Body.String(), "trace_id") {
		t.Error("classic text format leaked exemplars")
	}

	// OpenMetrics negotiation: exemplars present.
	req := httptest.NewRequest("GET", "/metrics", nil)
	req.Header.Set("Accept", "application/openmetrics-text; version=1.0.0")
	rr = httptest.NewRecorder()
	mux.ServeHTTP(rr, req)
	if ct := rr.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/openmetrics-text") {
		t.Errorf("openmetrics content type = %q", ct)
	}
	body := rr.Body.String()
	if !strings.Contains(body, `trace_id="`+tid+`"`) {
		t.Errorf("openmetrics scrape missing exemplar:\n%s", body)
	}
	if !strings.HasSuffix(body, "# EOF\n") {
		t.Error("openmetrics scrape not terminated with # EOF")
	}
}
