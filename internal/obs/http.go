package obs

import (
	"expvar"
	"net/http"
	"net/http/pprof"
	"strings"
)

// NewDebugMux builds the operator endpoint a daemon serves on its
// -metrics-addr: Prometheus text on /metrics, the expvar JSON snapshot
// on /debug/vars, and the full net/http/pprof suite under /debug/pprof/.
// The registry is also published into the process expvar namespace
// under publishName (skipped when empty), so /debug/vars carries the
// same numbers a Prometheus scrape sees.
func NewDebugMux(reg *Registry, publishName string) *http.ServeMux {
	return NewDebugMuxSLO(reg, publishName, nil)
}

// NewDebugMuxSLO is NewDebugMux plus the SLO burn-rate page on
// /debug/slo (a nil engine serves 404 there). A scraper that sends
// Accept: application/openmetrics-text gets the OpenMetrics rendering
// of /metrics — the same series plus trace-ID exemplars on histogram
// buckets; everyone else gets the classic text format.
func NewDebugMuxSLO(reg *Registry, publishName string, slo *SLOEngine) *http.ServeMux {
	if publishName != "" {
		reg.PublishExpvar(publishName)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if strings.Contains(r.Header.Get("Accept"), "application/openmetrics-text") {
			w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
			reg.WriteOpenMetrics(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.Handle("/debug/slo", slo.Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
