package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
)

// NewLogger builds the structured logger the cmds share: slog text
// (human terminals) or JSON (log shippers) at the given level, with
// the component attached to every record so interleaved output from
// the compactor, the coordinator and the workers stays attributable.
func NewLogger(w io.Writer, component string, level slog.Level, jsonFormat bool) *slog.Logger {
	opts := &slog.HandlerOptions{Level: level}
	var h slog.Handler
	if jsonFormat {
		h = slog.NewJSONHandler(w, opts)
	} else {
		h = slog.NewTextHandler(w, opts)
	}
	l := slog.New(h)
	if component != "" {
		l = l.With("component", component)
	}
	return l
}

// Logf adapts a slog.Logger to the printf-style `Logf func(format,
// args...)` sinks the pipeline options expose (run.Options.Logf,
// dist.Options.Logf, fault.SimOptions.Warnf), so packages keep their
// dependency-free injection points while the cmds log structurally.
// level selects the record level; a nil logger yields a no-op sink.
func Logf(l *slog.Logger, level slog.Level) func(format string, args ...any) {
	if l == nil {
		return func(string, ...any) {}
	}
	return func(format string, args ...any) {
		l.Log(context.Background(), level, fmt.Sprintf(format, args...))
	}
}
